# mixed query file: datalog and SQL
Q4(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)
SELECT a.AuName, j.Topic FROM T1 a, T2 j WHERE a.Journal = j.Journal AND j.Topic = 'XML'
