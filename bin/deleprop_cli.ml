(* deleprop: command-line front end.

   Subcommands:
     classify  -d db.txt -q queries.dl          query classes, forest checks
     views     -d db.txt -q queries.dl          materialize and print views
     solve     -d db.txt -q queries.dl -x 'Q(a, b)' [-x ...] [--algo A] [--balanced]
               propagate the deletions, print the plan and its side-effect

   File formats: see lib/relational/serial.mli (databases) and
   lib/cq/parser.mli (queries). *)

module R = Relational
module D = Deleprop

let ( let* ) = Result.bind

let load_db path =
  try Ok (R.Serial.instance_of_file path) with
  | R.Serial.Parse_error (line, msg) ->
    Error (Printf.sprintf "%s:%d: %s" path line msg)
  | Sys_error m -> Error m

(* query files may mix datalog lines and SQL lines; a line starting with
   SELECT (any case) is SQL and needs the schema; SQL queries are named
   Q1, Q2, ... by position *)
let load_queries ?schema path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    let lines =
      String.split_on_char '\n' text
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    let parse i line =
      let lower = String.lowercase_ascii line in
      if String.length lower >= 7 && String.sub lower 0 7 = "select " then
        match schema with
        | None -> Error (Printf.sprintf "%s: SQL query needs a database schema" path)
        | Some schema -> (
          match Cq.Sql.query_of_string ~schema ~name:(Printf.sprintf "Q%d" (i + 1)) line with
          | Ok q -> Ok q
          | Error e -> Error (Format.asprintf "%s: %a" path Cq.Sql.pp_error e))
      else
        try Ok (Cq.Parser.query_of_string line)
        with Cq.Parser.Parse_error m -> Error (Printf.sprintf "%s: %s" path m)
    in
    List.mapi parse lines
    |> List.fold_left
         (fun acc q ->
           match (acc, q) with
           | Ok acc, Ok q -> Ok (q :: acc)
           | (Error _ as e), _ | _, (Error _ as e) ->
             (match e with Error m -> Error m | Ok _ -> assert false))
         (Ok [])
    |> Result.map List.rev
  with Sys_error m -> Error m

let parse_deletion spec =
  try Ok (R.Serial.fact_of_string spec)
  with R.Serial.Parse_error (_, msg) -> Error (Printf.sprintf "bad deletion %S: %s" spec msg)

(* ---- classify ---- *)

let classify db_path q_path with_stats =
  let* db = load_db db_path in
  let* queries = load_queries ~schema:(R.Instance.schema db) q_path in
  let schema = R.Instance.schema db in
  List.iter
    (fun (q : Cq.Query.t) ->
      Cq.Query.check schema q;
      Format.printf "%a@.  arity %d; %a@." Cq.Query.pp q (Cq.Query.arity q)
        Cq.Classify.pp_profile
        (Cq.Classify.profile schema q))
    queries;
  let dual = Hypergraph.Dual.of_queries queries in
  Format.printf "dual hypergraph: %d relations, %d queries; forest case: %b@."
    (Hypergraph.Hgraph.num_vertices dual)
    (Hypergraph.Hgraph.num_edges dual)
    (Hypergraph.Dual.is_forest_case queries);
  if with_stats then begin
    match D.Problem.make ~db ~queries ~deletions:[] ~allow_non_key_preserving:true () with
    | p -> (
      match D.Provenance.build p with
      | prov -> Format.printf "%a@." D.Stats.pp (D.Stats.compute prov)
      | exception D.Provenance.Ambiguous_witness _ ->
        Format.printf "stats: skipped (non-key-preserving query set)@.")
    | exception Invalid_argument m -> Format.printf "stats: skipped (%s)@." m
  end;
  Ok ()

(* ---- views ---- *)

let views db_path q_path =
  let* db = load_db db_path in
  let* queries = load_queries ~schema:(R.Instance.schema db) q_path in
  List.iter
    (fun (q : Cq.Query.t) ->
      let view = Cq.Eval.evaluate db q in
      Format.printf "@[<v 2>%s (%d tuples):@ %a@]@." q.name (R.Tuple.Set.cardinal view)
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut R.Tuple.pp)
        (R.Tuple.Set.elements view))
    queries;
  Ok ()

(* ---- solve ---- *)

type algo = Auto | Brute | Primal_dual | Lowdeg | Dp | General | Single

let algo_of_string = function
  | "auto" -> Ok Auto
  | "brute" -> Ok Brute
  | "primal-dual" -> Ok Primal_dual
  | "lowdeg" -> Ok Lowdeg
  | "dp" -> Ok Dp
  | "general" -> Ok General
  | "single" -> Ok Single
  | s -> Error (s ^ ": expected auto|brute|primal-dual|lowdeg|dp|general|single")

(* machine-readable solve output: one versioned object via the shared
   encoder ([Report.versioned] stamps schema_version) *)
let outcome_report name (o : D.Side_effect.outcome) =
  D.Report.versioned
    [
      ("algorithm", D.Report.String name);
      ( "deleted",
        D.Report.List
          (List.map
             (fun t -> D.Report.String (Format.asprintf "%a" R.Stuple.pp t))
             (R.Stuple.Set.elements o.D.Side_effect.deleted)) );
      ("cost", D.Report.Float o.D.Side_effect.cost);
      ( "side_effect",
        D.Report.List
          (List.map
             (fun vt -> D.Report.String (Format.asprintf "%a" D.Vtuple.pp vt))
             (D.Vtuple.Set.elements o.D.Side_effect.side_effect)) );
    ]

let print_report r = print_string (D.Report.to_string r); print_newline ()

let report name (o : D.Side_effect.outcome) =
  Format.printf "algorithm: %s@." name;
  Format.printf "plan: delete %d source tuple(s)@." (R.Stuple.Set.cardinal o.D.Side_effect.deleted);
  R.Stuple.Set.iter (fun t -> Format.printf "  - %a@." R.Stuple.pp t) o.D.Side_effect.deleted;
  Format.printf "%a@." D.Side_effect.pp o;
  if not (D.Vtuple.Set.is_empty o.D.Side_effect.side_effect) then begin
    Format.printf "side-effect view tuples:@.";
    D.Vtuple.Set.iter
      (fun vt -> Format.printf "  - %a@." D.Vtuple.pp vt)
      o.D.Side_effect.side_effect
  end

let solve db_path q_path deletion_specs algo balanced explain_flag plan_flag
    no_decompose json =
  let* db = load_db db_path in
  let* queries = load_queries ~schema:(R.Instance.schema db) q_path in
  let* algo = algo_of_string algo in
  let* deletions =
    List.fold_left
      (fun acc spec ->
        let* acc = acc in
        let* d = parse_deletion spec in
        Ok (d :: acc))
      (Ok []) deletion_specs
  in
  let deletions = List.map (fun (q, t) -> (q, [ t ])) deletions in
  let* problem =
    try Ok (D.Problem.make ~db ~queries ~deletions ())
    with Invalid_argument m -> Error m
  in
  let* prov =
    try Ok (D.Provenance.build problem)
    with D.Provenance.Ambiguous_witness vt ->
      Error
        (Format.asprintf
           "view tuple %a has several witnesses — the query set is not key preserving"
           D.Vtuple.pp vt)
  in
  if plan_flag then begin
    let arena = D.Arena.build prov in
    let r = D.Planner.solve ~decompose:(not no_decompose) arena in
    if json then begin
      match r.D.Planner.solutions with
      | [] -> Error "no feasible solution"
      | _ ->
        print_report
          (D.Report.versioned
             [
               ("decomposed", D.Report.Bool r.D.Planner.decomposed);
               ( "solutions",
                 D.Report.List (List.map D.Report.solution r.D.Planner.solutions)
               );
               ( "failures",
                 D.Report.List (List.map D.Report.failure r.D.Planner.failures) );
               ( "shards",
                 D.Report.List
                   (List.map D.Report.shard_decision r.D.Planner.shards) );
               ("degraded", D.Report.Bool r.D.Planner.degraded);
             ]);
        Ok ()
    end
    else begin
    if r.D.Planner.decomposed then begin
      Format.printf "planner: %d independent shard(s)@."
        (List.length r.D.Planner.shards);
      List.iter
        (fun d -> Format.printf "  %a@." D.Planner.pp_shard_decision d)
        r.D.Planner.shards
    end
    else
      Format.printf "planner: single active component, whole-instance portfolio@.";
    List.iter
      (fun f -> Format.printf "  solver %a@." D.Portfolio.pp_failure f)
      r.D.Planner.failures;
    match r.D.Planner.solutions with
    | [] -> Error "no feasible solution"
    | s :: _ ->
      Format.printf "certificate: %a@." D.Solution.pp_certificate
        s.D.Solution.certificate;
      report s.D.Solution.algorithm s.D.Solution.outcome;
      if explain_flag then
        Format.printf "%a@." D.Explain.pp (D.Explain.explain prov s.D.Solution.deleted);
      Ok ()
    end
  end
  else if balanced then begin
    let r =
      match algo with
      | Brute -> D.Balanced.solve_exact prov
      | Dp -> (
        match D.Balanced.solve_dp prov with
        | Ok r -> r
        | Error e ->
          Format.printf "note: %a; falling back to the general approximation@."
            D.Dp_tree.pp_error e;
          D.Balanced.solve_general prov)
      | _ -> D.Balanced.solve_general prov
    in
    if json then print_report (outcome_report "balanced" r.D.Balanced.outcome)
    else begin
      report "balanced" r.D.Balanced.outcome;
      if explain_flag then
        Format.printf "%a@." D.Explain.pp (D.Explain.explain prov r.D.Balanced.deletion)
    end;
    Ok ()
  end
  else begin
    let auto () =
      (* exact when the pivot DP applies; else primal-dual on forests;
         else the general reduction *)
      match D.Dp_tree.solve prov with
      | Ok r -> ("dp (pivot forest, exact)", r.D.Dp_tree.outcome)
      | Error _ ->
        if Hypergraph.Dual.is_forest_case queries then
          ("primal-dual (forest, l-approx)", (D.Primal_dual.solve prov).D.Primal_dual.outcome)
        else begin
          match D.General_approx.solve prov with
          | Some r -> ("general (Claim 1 approx)", r.D.General_approx.outcome)
          | None -> failwith "unsolvable instance"
        end
    in
    let name, outcome =
      match algo with
      | Auto -> auto ()
      | Brute -> (
        match D.Brute.solve prov with
        | Some r -> ("brute (exact)", r.D.Brute.outcome)
        | None -> failwith "infeasible")
      | Primal_dual -> ("primal-dual", (D.Primal_dual.solve prov).D.Primal_dual.outcome)
      | Lowdeg -> ("lowdeg", (D.Lowdeg.solve prov).D.Lowdeg.outcome)
      | Dp -> (
        match D.Dp_tree.solve prov with
        | Ok r -> ("dp", r.D.Dp_tree.outcome)
        | Error e -> failwith (Format.asprintf "dp inapplicable: %a" D.Dp_tree.pp_error e))
      | General -> (
        match D.General_approx.solve prov with
        | Some r -> ("general", r.D.General_approx.outcome)
        | None -> failwith "unsolvable")
      | Single -> (
        match D.Single_query.solve prov with
        | Ok r -> ("single-query", r.D.Single_query.outcome)
        | Error e -> failwith (Format.asprintf "single inapplicable: %a" D.Single_query.pp_error e))
    in
    if json then print_report (outcome_report name outcome)
    else begin
      report name outcome;
      if explain_flag then
        Format.printf "%a@." D.Explain.pp
          (D.Explain.explain prov outcome.D.Side_effect.deleted)
    end;
    Ok ()
  end

(* ---- source side-effect ---- *)

let source db_path q_path deletion_specs exact =
  let* db = load_db db_path in
  let* queries = load_queries ~schema:(R.Instance.schema db) q_path in
  let* deletions =
    List.fold_left
      (fun acc spec ->
        let* acc = acc in
        let* d = parse_deletion spec in
        Ok (d :: acc))
      (Ok []) deletion_specs
  in
  let deletions = List.map (fun (q, t) -> (q, [ t ])) deletions in
  let* problem =
    try Ok (D.Problem.make ~db ~queries ~deletions ()) with Invalid_argument m -> Error m
  in
  let prov = D.Provenance.build problem in
  let result =
    if exact then D.Source_side_effect.solve_exact prov
    else D.Source_side_effect.solve_greedy prov
  in
  match result with
  | None -> Error "infeasible"
  | Some r ->
    Format.printf "objective: fewest deleted source tuples (%s)@."
      (if exact then "exact" else "greedy");
    Format.printf "source cost: %g@." r.D.Source_side_effect.source_cost;
    R.Stuple.Set.iter
      (fun t -> Format.printf "  - %a@." R.Stuple.pp t)
      r.D.Source_side_effect.deletion;
    Format.printf "view damage of this plan: %g@."
      r.D.Source_side_effect.outcome.D.Side_effect.cost;
    Ok ()

(* ---- run: whole-instance problem files ---- *)

let run_problem path algo balanced explain_flag =
  let* problem =
    try Ok (D.Problem_file.of_file path) with
    | D.Problem_file.Parse_error (line, m) -> Error (Printf.sprintf "%s:%d: %s" path line m)
    | Sys_error m -> Error m
  in
  let* algo = algo_of_string algo in
  let* prov =
    try Ok (D.Provenance.build problem)
    with D.Provenance.Ambiguous_witness vt ->
      Error
        (Format.asprintf
           "view tuple %a has several witnesses — the query set is not key preserving"
           D.Vtuple.pp vt)
  in
  let queries = problem.D.Problem.queries in
  if balanced then begin
    let r =
      match algo with
      | Brute -> D.Balanced.solve_exact prov
      | _ -> D.Balanced.solve_general prov
    in
    report "balanced" r.D.Balanced.outcome;
    if explain_flag then
      Format.printf "%a@." D.Explain.pp (D.Explain.explain prov r.D.Balanced.deletion);
    Ok ()
  end
  else begin
    let name, outcome =
      match algo with
      | Auto -> (
        match D.Dp_tree.solve prov with
        | Ok r -> ("dp (pivot forest, exact)", r.D.Dp_tree.outcome)
        | Error _ ->
          if Hypergraph.Dual.is_forest_case queries then
            ("primal-dual (forest, l-approx)", (D.Primal_dual.solve prov).D.Primal_dual.outcome)
          else (
            match D.General_approx.solve prov with
            | Some r -> ("general (Claim 1 approx)", r.D.General_approx.outcome)
            | None -> failwith "unsolvable instance"))
      | Brute -> (
        match D.Brute.solve prov with
        | Some r -> ("brute (exact)", r.D.Brute.outcome)
        | None -> failwith "infeasible")
      | Primal_dual -> ("primal-dual", (D.Primal_dual.solve prov).D.Primal_dual.outcome)
      | Lowdeg -> ("lowdeg", (D.Lowdeg.solve prov).D.Lowdeg.outcome)
      | Dp -> (
        match D.Dp_tree.solve prov with
        | Ok r -> ("dp", r.D.Dp_tree.outcome)
        | Error e -> failwith (Format.asprintf "dp inapplicable: %a" D.Dp_tree.pp_error e))
      | General -> (
        match D.General_approx.solve prov with
        | Some r -> ("general", r.D.General_approx.outcome)
        | None -> failwith "unsolvable")
      | Single -> (
        match D.Single_query.solve prov with
        | Ok r -> ("single-query", r.D.Single_query.outcome)
        | Error e ->
          failwith (Format.asprintf "single inapplicable: %a" D.Single_query.pp_error e))
    in
    report name outcome;
    if explain_flag then
      Format.printf "%a@." D.Explain.pp (D.Explain.explain prov outcome.D.Side_effect.deleted);
    Ok ()
  end

(* ---- insert: missing-answer propagation ---- *)

let insert db_path q_path target_spec objective =
  let* db = load_db db_path in
  let* queries = load_queries ~schema:(R.Instance.schema db) q_path in
  let* qname, target = parse_deletion target_spec in
  let* problem =
    try Ok (D.Problem.make ~db ~queries ~deletions:[] ())
    with Invalid_argument m -> Error m
  in
  let* objective =
    match objective with
    | "fewest-insertions" -> Ok D.Insertion.Fewest_insertions
    | "fewest-new-views" -> Ok D.Insertion.Fewest_new_views
    | s -> Error (s ^ ": expected fewest-insertions|fewest-new-views")
  in
  match D.Insertion.solve ~objective problem ~query:qname ~target with
  | Error e -> Error (Format.asprintf "%a" D.Insertion.pp_error e)
  | Ok r ->
    Format.printf "insert %d source tuple(s):@."
      (R.Stuple.Set.cardinal r.D.Insertion.insertions);
    R.Stuple.Set.iter (fun t -> Format.printf "  + %a@." R.Stuple.pp t) r.D.Insertion.insertions;
    Format.printf "collateral new view tuples (weighted %g):@." r.D.Insertion.side_effect;
    D.Vtuple.Set.iter
      (fun vt -> Format.printf "  ~ %a@." D.Vtuple.pp vt)
      r.D.Insertion.new_views;
    Ok ()

(* ---- diagnose: certain/possible deletions across optimal plans ---- *)

let diagnose db_path q_path deletion_specs =
  let* db = load_db db_path in
  let* queries = load_queries ~schema:(R.Instance.schema db) q_path in
  let* deletions =
    List.fold_left
      (fun acc spec ->
        let* acc = acc in
        let* d = parse_deletion spec in
        Ok (d :: acc))
      (Ok []) deletion_specs
  in
  let deletions = List.map (fun (q, t) -> (q, [ t ])) deletions in
  let* problem =
    try Ok (D.Problem.make ~db ~queries ~deletions ~allow_non_key_preserving:true ())
    with Invalid_argument m -> Error m
  in
  let result =
    match D.Provenance.build problem with
    | prov -> D.Diagnosis.diagnose prov
    | exception D.Provenance.Ambiguous_witness _ ->
      D.Diagnosis.diagnose_ground_truth problem
  in
  match result with
  | Some d ->
    Format.printf "%a@." D.Diagnosis.pp d;
    Ok ()
  | None -> Error "infeasible"

(* ---- batch: replay a scripted session on the incremental engine ---- *)

let pp_request ppf (r : D.Delta_request.t) = D.Delta_request.pp ppf r

let request_strings (reqs : D.Delta_request.t list) =
  List.concat_map
    (fun (r : D.Delta_request.t) ->
      List.map
        (fun t -> Format.asprintf "%s%a" r.D.Delta_request.view R.Tuple.pp t)
        r.D.Delta_request.tuples)
    reqs

(* One round of the batch session as a [Report.t] — the per-round shape
   is unchanged from the hand-rolled encoder it replaces; the engine's
   stats object comes from [Engine.Stats.to_json]. *)
let batch_round_report (r : Engine.Script.round) =
  let solve_like ~op ~applies reqs =
    let p = r.Engine.Script.plan in
    let solutions = match p with Some p -> p.Engine.solutions | None -> [] in
    let failures = match p with Some p -> p.Engine.failures | None -> [] in
    [
      ("op", D.Report.String op);
      ( "requests",
        D.Report.List
          (List.map (fun s -> D.Report.String s) (request_strings reqs)) );
      ("solutions", D.Report.List (List.map D.Report.solution solutions));
      ("failures", D.Report.List (List.map D.Report.failure failures));
      ( "degraded",
        D.Report.Bool (match p with Some p -> p.Engine.degraded | None -> false)
      );
      ( "decomposed",
        D.Report.Bool
          (match p with Some p -> p.Engine.decomposed | None -> false) );
      ( "shards",
        D.Report.Int
          (match p with Some p -> List.length p.Engine.shards | None -> 0) );
      ( "shards_cached",
        D.Report.Int (match p with Some p -> p.Engine.shards_cached | None -> 0)
      );
      ( "applied",
        match (applies, solutions) with
        | true, s :: _ -> D.Report.String s.D.Solution.algorithm
        | _ -> D.Report.Null );
    ]
  in
  let fact st = D.Report.String (Format.asprintf "%a" R.Stuple.pp st) in
  let fields =
    match r.Engine.Script.op with
    | Engine.Script.Solve reqs -> solve_like ~op:"solve" ~applies:true reqs
    | Engine.Script.Propose reqs -> solve_like ~op:"propose" ~applies:false reqs
    | Engine.Script.Insert st -> [ ("op", D.Report.String "insert"); ("fact", fact st) ]
    | Engine.Script.Delete st -> [ ("op", D.Report.String "delete"); ("fact", fact st) ]
  in
  let err =
    match r.Engine.Script.error with
    | Some e -> [ ("error", D.Report.String e) ]
    | None -> []
  in
  D.Report.Obj ((("round", D.Report.Int r.Engine.Script.number) :: fields) @ err)

let batch_report_round (r : Engine.Script.round) =
  let solve_like ~verb ~applies reqs =
    Format.printf "round %d: %s %a@." r.Engine.Script.number verb
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_request)
      reqs;
    (match r.Engine.Script.plan with
    | Some p ->
      List.iter
        (fun f -> Format.printf "  solver %a@." D.Portfolio.pp_failure f)
        p.Engine.failures;
      if p.Engine.decomposed then
        List.iter
          (fun d -> Format.printf "  shard %a@." D.Planner.pp_shard_decision d)
          p.Engine.shards;
      if p.Engine.degraded then Format.printf "  degraded to unbudgeted greedy@."
    | None -> ());
    let solutions =
      match r.Engine.Script.plan with Some p -> p.Engine.solutions | None -> []
    in
    match solutions with
    | [] -> if r.Engine.Script.error = None then Format.printf "  no feasible solution@."
    | best :: rest ->
      Format.printf "  %s %a@." (if applies then "applied" else "proposed")
        D.Solution.pp best;
      List.iter
        (fun (s : D.Solution.t) ->
          Format.printf "  also: %s cost %g (%a, %.2f ms)@." s.D.Solution.algorithm
            (D.Solution.cost s) D.Solution.pp_certificate s.D.Solution.certificate
            s.D.Solution.elapsed_ms)
        rest
  in
  (match r.Engine.Script.op with
  | Engine.Script.Solve reqs -> solve_like ~verb:"solve" ~applies:true reqs
  | Engine.Script.Propose reqs -> solve_like ~verb:"propose" ~applies:false reqs
  | Engine.Script.Insert st ->
    Format.printf "round %d: insert %a@." r.Engine.Script.number R.Stuple.pp st
  | Engine.Script.Delete st ->
    Format.printf "round %d: delete %a@." r.Engine.Script.number R.Stuple.pp st);
  match r.Engine.Script.error with
  | Some e -> Format.printf "  failed: %s@." e
  | None -> ()

let batch db_path q_path rounds_path algos exact_threshold plan domains budget_ms
    compact_threshold journal recover keep_going shard_cache snapshot
    snapshot_every fsync segment_bytes json =
  let* db = load_db db_path in
  let* queries = load_queries ~schema:(R.Instance.schema db) q_path in
  let* ops = Engine.Script.parse_file rounds_path in
  let algorithms = match algos with [] -> None | l -> Some l in
  let* eng =
    try
      Ok
        (Engine.create ?algorithms ?exact_threshold ~plan ?domains ?budget_ms
           ?compact_threshold ?journal ~recover ?shard_cache ?snapshot
           ?snapshot_every ~fsync ?segment_bytes db queries)
    with
    | Invalid_argument m -> Error m
    | Engine.Journal.Error e -> Error (Format.asprintf "%a" Engine.Journal.pp_error e)
  in
  Fun.protect
    ~finally:(fun () -> Engine.close eng)
    (fun () ->
      let* rounds = Engine.Script.replay ~keep_going eng ops in
      if json then
        print_report
          (D.Report.versioned
             [
               ("rounds", D.Report.List (List.map batch_round_report rounds));
               ("stats", Engine.Stats.to_json (Engine.stats eng));
             ])
      else begin
        List.iter batch_report_round rounds;
        Format.printf "session stats:@.%a@." Engine.pp_stats (Engine.stats eng)
      end;
      Ok ())

(* ---- cmdliner wiring ---- *)

open Cmdliner

let db_arg =
  Arg.(required & opt (some file) None & info [ "d"; "db" ] ~docv:"DB" ~doc:"Database file.")

let q_arg =
  Arg.(required & opt (some file) None & info [ "q"; "queries" ] ~docv:"QUERIES" ~doc:"Query file.")

let handle = function Ok () -> `Ok () | Error m -> `Error (false, m)

let classify_cmd =
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print instance statistics.") in
  Cmd.v (Cmd.info "classify" ~doc:"Classify queries and the dual hypergraph")
    Term.(ret (const (fun d q s -> handle (classify d q s)) $ db_arg $ q_arg $ stats))

let views_cmd =
  Cmd.v (Cmd.info "views" ~doc:"Materialize and print the views")
    Term.(ret (const (fun d q -> handle (views d q)) $ db_arg $ q_arg))

let solve_cmd =
  let deletions =
    Arg.(value & opt_all string [] & info [ "x"; "delete" ] ~docv:"FACT"
           ~doc:"View tuple to delete, e.g. 'Q3(John, XML)'. Repeatable.")
  in
  let algo =
    Arg.(value & opt string "auto" & info [ "a"; "algo" ] ~docv:"ALGO"
           ~doc:"auto | brute | primal-dual | lowdeg | dp | general | single")
  in
  let balanced =
    Arg.(value & flag & info [ "b"; "balanced" ] ~doc:"Optimize the balanced objective.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print a per-tuple propagation report.")
  in
  let plan =
    Arg.(value & flag & info [ "plan" ]
           ~doc:"Shatter-and-plan: decompose into independent components, solve each \
                 with the cheapest adequate tier (exact where small or forest-shaped) \
                 and recombine; prints the per-shard decisions.")
  in
  let no_decompose =
    Arg.(value & flag & info [ "no-decompose" ]
           ~doc:"With --plan: skip the decomposition and run the whole-instance \
                 portfolio (for comparing the two paths).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the result as one JSON object (schema_version-stamped; \
                 suppresses the human-readable report and --explain).")
  in
  Cmd.v (Cmd.info "solve" ~doc:"Propagate view deletions to the source database")
    Term.(
      ret
        (const (fun d q x a b e p nd j -> handle (solve d q x a b e p nd j))
        $ db_arg $ q_arg $ deletions $ algo $ balanced $ explain $ plan
        $ no_decompose $ json))

let insert_cmd =
  let target =
    Arg.(required & opt (some string) None & info [ "t"; "target" ] ~docv:"FACT"
           ~doc:"Missing view tuple, e.g. 'Q4(Alice, TKDE, XML)'.")
  in
  let objective =
    Arg.(value & opt string "fewest-new-views" & info [ "objective" ] ~docv:"OBJ"
           ~doc:"fewest-insertions | fewest-new-views")
  in
  Cmd.v
    (Cmd.info "insert" ~doc:"Propagate a missing view answer back as source insertions")
    Term.(ret (const (fun d q t o -> handle (insert d q t o)) $ db_arg $ q_arg $ target $ objective))

let diagnose_cmd =
  let deletions =
    Arg.(value & opt_all string [] & info [ "x"; "delete" ] ~docv:"FACT"
           ~doc:"View tuple to delete. Repeatable.")
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Enumerate all optimal propagation plans; report certain/possible deletions")
    Term.(ret (const (fun d q x -> handle (diagnose d q x)) $ db_arg $ q_arg $ deletions))

let run_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PROBLEM"
           ~doc:"Problem file (db + queries + deletions + weights).")
  in
  let algo =
    Arg.(value & opt string "auto" & info [ "a"; "algo" ] ~docv:"ALGO"
           ~doc:"auto | brute | primal-dual | lowdeg | dp | general | single")
  in
  let balanced =
    Arg.(value & flag & info [ "b"; "balanced" ] ~doc:"Optimize the balanced objective.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print a per-tuple propagation report.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Solve a whole-instance problem file")
    Term.(
      ret
        (const (fun p a b e -> handle (run_problem p a b e))
        $ path $ algo $ balanced $ explain))

let source_cmd =
  let deletions =
    Arg.(value & opt_all string [] & info [ "x"; "delete" ] ~docv:"FACT"
           ~doc:"View tuple to delete. Repeatable.")
  in
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"Exact branch-and-bound instead of greedy.")
  in
  Cmd.v
    (Cmd.info "source"
       ~doc:"Propagate with the source side-effect objective (fewest deleted tuples)")
    Term.(ret (const (fun d q x e -> handle (source d q x e)) $ db_arg $ q_arg $ deletions $ exact))

let batch_cmd =
  let rounds =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"ROUNDS"
           ~doc:"Round script: 'solve FACT[; FACT...]' | 'propose FACT[; FACT...]' \
                 | 'insert FACT' | 'delete FACT', one per line ('propose' solves \
                 without committing).")
  in
  let algos =
    Arg.(value & opt_all string [] & info [ "a"; "algo" ] ~docv:"ALGO"
           ~doc:"Restrict the portfolio to this algorithm (repeatable): brute | primal-dual | lowdeg | dp-tree | general | greedy.")
  in
  let exact_threshold =
    Arg.(value & opt (some int) None & info [ "exact-threshold" ] ~docv:"N"
           ~doc:"Run brute force when at most N candidate tuples (default 16).")
  in
  let plan =
    Arg.(value & flag & info [ "plan" ]
           ~doc:"Route rounds through the shatter-and-plan solver: independent \
                 components solve separately (exact where cheap) and recombine.")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
           ~doc:"Size of the session's domain pool (default: all cores; 1 = sequential).")
  in
  let budget_ms =
    Arg.(value & opt (some float) None & info [ "budget-ms" ] ~docv:"MS"
           ~doc:"Per-round wall-clock budget: solvers that outlive it are recorded as \
                 timed out and the round degrades gracefully.")
  in
  let compact_threshold =
    Arg.(value & opt (some float) None & info [ "compact-threshold" ] ~docv:"R"
           ~doc:"Tombstone regime: 0 compacts the index eagerly on every \
                 delete; R > 0 lets dead slots accumulate and compacts only \
                 when their ratio exceeds R (amortized; the JSON stats report \
                 tombstone_ratio and compactions). Default: 0.5 with --plan, \
                 0 without.")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"PATH"
           ~doc:"Journal committed operations to PATH (crash-recoverable log).")
  in
  let recover =
    Arg.(value & flag & info [ "recover" ]
           ~doc:"Replay an existing journal on top of the database before running the \
                 script (requires --journal).")
  in
  let keep_going =
    Arg.(value & flag & info [ "keep-going" ]
           ~doc:"Record a failing round's error and continue instead of stopping the \
                 session.")
  in
  let shard_cache =
    Arg.(value & opt (some int) None & info [ "shard-cache" ] ~docv:"N"
           ~doc:"With --plan: bound the shard solution cache to N memoized \
                 component answers (default 512; 0 disables). Untouched \
                 components splice their cached answer instead of re-solving; \
                 the JSON stats report shards_cached / shards_resolved and \
                 the cache's lifetime shard_cache_hits.")
  in
  let snapshot =
    Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"PATH"
           ~doc:"With --journal and --plan: persist the shard solution cache \
                 to PATH (atomic, CRC-checked snapshots) so --recover starts \
                 warm — the first post-recovery round splices untouched \
                 components instead of re-solving them. A missing, torn or \
                 corrupt snapshot degrades to a cold cache (reported in the \
                 stats' snapshot object), never a failed recovery.")
  in
  let snapshot_every =
    Arg.(value & opt (some int) None & info [ "snapshot-every" ] ~docv:"N"
           ~doc:"Re-snapshot once N journal records accumulate past the last \
                 snapshot (default 16; 0 = only at checkpoints).")
  in
  let fsync =
    Arg.(value & flag & info [ "fsync" ]
           ~doc:"Fsync the journal after every append (durability against \
                 power loss, not just process death, at a per-append cost).")
  in
  let segment_bytes =
    Arg.(value & opt (some int) None & info [ "segment-bytes" ] ~docv:"N"
           ~doc:"Rotate the journal into sealed segments of about N bytes \
                 (bounds the size of any single file a crash can tear).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the session as one JSON object (schema_version-stamped).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Replay a scripted deletion session on the incremental engine")
    Term.(
      ret
        (const (fun d q r a e p dm b ct jr rc k sc sn se fs sb j ->
             handle (batch d q r a e p dm b ct jr rc k sc sn se fs sb j))
        $ db_arg $ q_arg $ rounds $ algos $ exact_threshold $ plan $ domains
        $ budget_ms $ compact_threshold $ journal $ recover $ keep_going
        $ shard_cache $ snapshot $ snapshot_every $ fsync $ segment_bytes
        $ json))

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let () =
  (* global -v flag: peel it off before cmdliner parsing *)
  let verbose = Array.exists (fun a -> a = "-v" || a = "--verbose") Sys.argv in
  setup_logs verbose;
  let args =
    Array.to_list Sys.argv
    |> List.filter (fun a -> a <> "-v" && a <> "--verbose")
    |> Array.of_list
  in
  let info =
    Cmd.info "deleprop" ~version:"1.0.0"
      ~doc:"Deletion propagation for multiple key-preserving conjunctive queries             (-v anywhere enables solver traces)"
  in
  exit
    (Cmd.eval ~argv:args
       (Cmd.group info
          [ classify_cmd; views_cmd; solve_cmd; source_cmd; insert_cmd; diagnose_cmd;
            run_cmd; batch_cmd ]))
