module R = Relational

type t = {
  view : string;
  tuples : R.Tuple.t list;
}

type error =
  | Unknown_view of { view : string; known : string list }
  | Not_in_view of { view : string; tuple : R.Tuple.t }

let make ~view tuples = { view; tuples }

let of_legacy l = List.map (fun (view, tuples) -> { view; tuples }) l
let to_legacy rs = List.map (fun r -> (r.view, r.tuples)) rs

let validate ~views rs =
  let rec go = function
    | [] -> Ok ()
    | r :: tl -> (
      match Smap.find_opt r.view views with
      | None ->
        Error (Unknown_view { view = r.view; known = List.map fst (Smap.bindings views) })
      | Some v ->
        let rec check = function
          | [] -> go tl
          | t :: ts ->
            if R.Tuple.Set.mem t v then check ts
            else Error (Not_in_view { view = r.view; tuple = t })
        in
        check r.tuples)
  in
  go rs

let pp ppf r =
  Format.fprintf ppf "@[<h>%s: %a@]" r.view
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") R.Tuple.pp)
    r.tuples

let pp_error ppf = function
  | Unknown_view { view; known } ->
    Format.fprintf ppf "unknown view %s (known: %a)" view
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Format.pp_print_string)
      known
  | Not_in_view { view; tuple } ->
    Format.fprintf ppf "tuple %a is not in view %s" R.Tuple.pp tuple view

let error_to_string e = Format.asprintf "%a" pp_error e
