(** The built-in solver implementations, packaged as {!Solver.S} modules
    and self-registered (in portfolio order: brute, primal-dual, lowdeg,
    dp-tree, general, greedy) when this module is linked. *)

(** The registry with all built-ins guaranteed registered — referencing
    the registry through this call (rather than {!Solver.all}) forces
    the module's initialization, so the built-ins cannot be dropped by
    dead-code elimination of an otherwise unused [Solvers]. *)
val registered : unit -> (module Solver.S) list

(** A LowDeg variant with a caller-imposed wide-pruning threshold,
    certified [Ratio (2 * threshold)]. The {!Planner} runs shards with
    the {e parent} instance's √‖V‖ ([Lowdeg.default_wide_threshold]) in
    addition to the shard-natural registry solver: the variant prunes
    exactly what the whole-instance LowDeg prunes on the component, so
    the decomposed portfolio's winner can never cost more than the whole
    instance one's. Not registered; pass via [extra]. *)
val lowdeg : ?name:string -> wide_threshold:float -> unit -> (module Solver.S)
