module R = Relational
module Bitset = Setcover.Bitset

let src = Logs.Src.create "deleprop.primal_dual" ~doc:"PrimeDualVSE (Algorithm 1)"

module Log = (val Logs.src_log src : Logs.LOG)

type result = {
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  duals : float Vtuple.Map.t;
  dual_value : float;
  forest_case : bool;
}

let eps = 1e-9

(* ---- arena kernel ----

   The solver proper: integer ids, flat arrays for capacities and duals,
   bitsets for the deletable/ignored restrictions. The processing order
   (Algorithm 1's lca order) is precomputed by [Arena.build] — it depends
   only on the provenance, not on the restriction, so the LowDeg τ-sweep
   shares it across all thresholds. *)

let reverse_delete_arena ?budget (a : Arena.t) chosen_in_order =
  (* drop a chosen tuple (scanning in reverse addition order) whenever all
     bad witnesses remain hit without it — lines 7-10 of Algorithm 1 *)
  let nv = Arena.num_vtuples a in
  let count = Array.make nv 0 in
  List.iter
    (fun sid ->
      Array.iter
        (fun vid -> if Bitset.mem a.Arena.bad vid then count.(vid) <- count.(vid) + 1)
        a.Arena.containing.(sid))
    chosen_in_order;
  List.fold_left
    (fun kept sid ->
      Budget.tick_o budget;
      let redundant = ref true in
      Array.iter
        (fun vid ->
          if Bitset.mem a.Arena.bad vid && count.(vid) < 2 then redundant := false)
        a.Arena.containing.(sid);
      if !redundant then begin
        Array.iter
          (fun vid -> if Bitset.mem a.Arena.bad vid then count.(vid) <- count.(vid) - 1)
          a.Arena.containing.(sid);
        kept
      end
      else sid :: kept)
    []
    (List.rev chosen_in_order)

let solve_arena ?(reverse_delete = true) ?budget (a : Arena.t) ~deletable
    ~ignored_preserved =
  let ns = Arena.num_stuples a and nv = Arena.num_vtuples a in
  (* capacity of a source tuple: total weight of its preserved,
     non-ignored view tuples (ascending vid = ascending Vtuple order, so
     the float sums match the reference implementation exactly) *)
  let capacity = Array.make ns 0.0 in
  for sid = 0 to ns - 1 do
    let c = ref 0.0 in
    Array.iter
      (fun vid ->
        if Bitset.mem a.Arena.preserved vid && not (Bitset.mem ignored_preserved vid)
        then c := !c +. a.Arena.weights.(vid))
      a.Arena.containing.(sid);
    capacity.(sid) <- !c
  done;
  let used = Array.make ns 0.0 in
  let headroom sid = capacity.(sid) -. used.(sid) in
  let chosen = ref [] in
  let chosen_mask = Array.make ns false in
  let duals = Array.make nv 0.0 in
  let has_dual = Array.make nv false in
  let infeasible = ref false in
  Array.iter
    (fun vid ->
      if not !infeasible then begin
        Budget.tick_o budget;
        let w = a.Arena.witness.(vid) in
        let any_deletable = ref false and any_chosen = ref false in
        Array.iter
          (fun sid ->
            if Bitset.mem deletable sid then begin
              any_deletable := true;
              if chosen_mask.(sid) then any_chosen := true
            end)
          w;
        if not !any_deletable then infeasible := true
        else if not !any_chosen then begin
          (* raise the dual as much as possible: up to the smallest headroom *)
          let delta = ref infinity in
          Array.iter
            (fun sid ->
              if Bitset.mem deletable sid then
                delta := Float.min !delta (headroom sid))
            w;
          let delta = Float.max 0.0 !delta in
          duals.(vid) <- delta;
          has_dual.(vid) <- true;
          Log.debug (fun m ->
              m "raise dual of %a by %g" Vtuple.pp a.Arena.vtuples.(vid) delta);
          Array.iter
            (fun sid ->
              if Bitset.mem deletable sid then used.(sid) <- used.(sid) +. delta)
            w;
          (* all saturated witness tuples are chosen (line 5) *)
          Array.iter
            (fun sid ->
              if
                Bitset.mem deletable sid
                && headroom sid <= eps
                && not chosen_mask.(sid)
              then begin
                chosen := sid :: !chosen;
                chosen_mask.(sid) <- true
              end)
            w
        end
        else begin
          duals.(vid) <- 0.0;
          has_dual.(vid) <- true
        end
      end)
    a.Arena.bad_order;
  if !infeasible then None
  else begin
    let chosen_in_order = List.rev !chosen in
    let deletion_ids =
      if reverse_delete then reverse_delete_arena ?budget a chosen_in_order
      else chosen_in_order
    in
    let deletion = Arena.to_stuple_set a deletion_ids in
    let outcome = Side_effect.eval a.Arena.prov deletion in
    let duals_map = ref Vtuple.Map.empty in
    let dual_value = ref 0.0 in
    for vid = 0 to nv - 1 do
      if has_dual.(vid) then begin
        duals_map := Vtuple.Map.add a.Arena.vtuples.(vid) duals.(vid) !duals_map;
        dual_value := !dual_value +. duals.(vid)
      end
    done;
    Log.info (fun m ->
        m "picked %d tuples (%d before reverse-delete), cost %g, dual %g, forest=%b"
          (R.Stuple.Set.cardinal deletion)
          (List.length chosen_in_order) outcome.Side_effect.cost !dual_value
          a.Arena.forest_case);
    Some
      {
        deletion;
        outcome;
        duals = !duals_map;
        dual_value = !dual_value;
        forest_case = a.Arena.forest_case;
      }
  end

let solve ?(reverse_delete = true) prov =
  let a = Arena.build prov in
  match
    solve_arena ~reverse_delete a
      ~deletable:(Bitset.full (Arena.num_stuples a))
      ~ignored_preserved:(Bitset.create (Arena.num_vtuples a))
  with
  | Some r -> r
  | None ->
    (* with every tuple deletable, each bad witness is non-empty, so the
       run cannot be infeasible *)
    assert false

let solve_restricted prov ~deletable ~ignored_preserved =
  let a = Arena.build prov in
  solve_arena ~reverse_delete:true a
    ~deletable:(Arena.of_stuple_set a deletable)
    ~ignored_preserved:(Arena.of_vtuple_set a ignored_preserved)

(* The answer's per-candidate decomposition: every killed preserved view
   tuple's weight charged to the content-minimal deleted member of its
   witness, stamped with the arena's live ‖V‖ — the splice guard
   re-derives the √‖V‖ threshold bucket from it after a split. Shared by
   every portfolio member that funnels through this kernel (LowDeg's
   τ-sweep) or answers with an unstructured deleted-set (greedy, the
   general reduction). *)
let decomposition (a : Arena.t) ~deleted =
  {
    Decomposition.d_vtuples = Arena.live_vtuples a;
    d_parts =
      Decomposition.contributions a.Arena.prov ~deleted
        ~cert:Decomposition.Slice_heuristic;
    d_structure = Decomposition.Contributions;
  }
