module R = Relational
module Bitset = Setcover.Bitset

let src = Logs.Src.create "deleprop.primal_dual" ~doc:"PrimeDualVSE (Algorithm 1)"

module Log = (val Logs.src_log src : Logs.LOG)

type result = {
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  duals : float Vtuple.Map.t;
  dual_value : float;
  forest_case : bool;
}

let eps = 1e-9

(* ---- arena kernel ----

   The solver proper: integer ids, flat arrays for capacities and duals,
   bitsets for the deletable/ignored restrictions. The processing order
   (Algorithm 1's lca order) is precomputed by [Arena.build] — it depends
   only on the provenance, not on the restriction, so the LowDeg τ-sweep
   shares it across all thresholds. *)

let reverse_delete_arena ?budget (a : Arena.t) chosen_in_order =
  (* drop a chosen tuple (scanning in reverse addition order) whenever all
     bad witnesses remain hit without it — lines 7-10 of Algorithm 1 *)
  let nv = Arena.num_vtuples a in
  let count = Array.make nv 0 in
  List.iter
    (fun sid ->
      Array.iter
        (fun vid -> if Bitset.mem a.Arena.bad vid then count.(vid) <- count.(vid) + 1)
        a.Arena.containing.(sid))
    chosen_in_order;
  List.fold_left
    (fun kept sid ->
      Budget.tick_o budget;
      let redundant = ref true in
      Array.iter
        (fun vid ->
          if Bitset.mem a.Arena.bad vid && count.(vid) < 2 then redundant := false)
        a.Arena.containing.(sid);
      if !redundant then begin
        Array.iter
          (fun vid -> if Bitset.mem a.Arena.bad vid then count.(vid) <- count.(vid) - 1)
          a.Arena.containing.(sid);
        kept
      end
      else sid :: kept)
    []
    (List.rev chosen_in_order)

let solve_arena ?(reverse_delete = true) ?budget (a : Arena.t) ~deletable
    ~ignored_preserved =
  let ns = Arena.num_stuples a and nv = Arena.num_vtuples a in
  (* capacity of a source tuple: total weight of its preserved,
     non-ignored view tuples (ascending vid = ascending Vtuple order, so
     the float sums match the reference implementation exactly) *)
  let capacity = Array.make ns 0.0 in
  for sid = 0 to ns - 1 do
    let c = ref 0.0 in
    Array.iter
      (fun vid ->
        if Bitset.mem a.Arena.preserved vid && not (Bitset.mem ignored_preserved vid)
        then c := !c +. a.Arena.weights.(vid))
      a.Arena.containing.(sid);
    capacity.(sid) <- !c
  done;
  let used = Array.make ns 0.0 in
  let headroom sid = capacity.(sid) -. used.(sid) in
  let chosen = ref [] in
  let chosen_mask = Array.make ns false in
  let duals = Array.make nv 0.0 in
  let has_dual = Array.make nv false in
  let infeasible = ref false in
  Array.iter
    (fun vid ->
      if not !infeasible then begin
        Budget.tick_o budget;
        let w = a.Arena.witness.(vid) in
        let any_deletable = ref false and any_chosen = ref false in
        Array.iter
          (fun sid ->
            if Bitset.mem deletable sid then begin
              any_deletable := true;
              if chosen_mask.(sid) then any_chosen := true
            end)
          w;
        if not !any_deletable then infeasible := true
        else if not !any_chosen then begin
          (* raise the dual as much as possible: up to the smallest headroom *)
          let delta = ref infinity in
          Array.iter
            (fun sid ->
              if Bitset.mem deletable sid then
                delta := Float.min !delta (headroom sid))
            w;
          let delta = Float.max 0.0 !delta in
          duals.(vid) <- delta;
          has_dual.(vid) <- true;
          Log.debug (fun m ->
              m "raise dual of %a by %g" Vtuple.pp a.Arena.vtuples.(vid) delta);
          Array.iter
            (fun sid ->
              if Bitset.mem deletable sid then used.(sid) <- used.(sid) +. delta)
            w;
          (* all saturated witness tuples are chosen (line 5) *)
          Array.iter
            (fun sid ->
              if
                Bitset.mem deletable sid
                && headroom sid <= eps
                && not chosen_mask.(sid)
              then begin
                chosen := sid :: !chosen;
                chosen_mask.(sid) <- true
              end)
            w
        end
        else begin
          duals.(vid) <- 0.0;
          has_dual.(vid) <- true
        end
      end)
    a.Arena.bad_order;
  if !infeasible then None
  else begin
    let chosen_in_order = List.rev !chosen in
    let deletion_ids =
      if reverse_delete then reverse_delete_arena ?budget a chosen_in_order
      else chosen_in_order
    in
    let deletion = Arena.to_stuple_set a deletion_ids in
    let outcome = Side_effect.eval a.Arena.prov deletion in
    let duals_map = ref Vtuple.Map.empty in
    let dual_value = ref 0.0 in
    for vid = 0 to nv - 1 do
      if has_dual.(vid) then begin
        duals_map := Vtuple.Map.add a.Arena.vtuples.(vid) duals.(vid) !duals_map;
        dual_value := !dual_value +. duals.(vid)
      end
    done;
    Log.info (fun m ->
        m "picked %d tuples (%d before reverse-delete), cost %g, dual %g, forest=%b"
          (R.Stuple.Set.cardinal deletion)
          (List.length chosen_in_order) outcome.Side_effect.cost !dual_value
          a.Arena.forest_case);
    Some
      {
        deletion;
        outcome;
        duals = !duals_map;
        dual_value = !dual_value;
        forest_case = a.Arena.forest_case;
      }
  end

let solve ?(reverse_delete = true) prov =
  let a = Arena.build prov in
  match
    solve_arena ~reverse_delete a
      ~deletable:(Bitset.full (Arena.num_stuples a))
      ~ignored_preserved:(Bitset.create (Arena.num_vtuples a))
  with
  | Some r -> r
  | None ->
    (* with every tuple deletable, each bad witness is non-empty, so the
       run cannot be infeasible *)
    assert false

let solve_restricted prov ~deletable ~ignored_preserved =
  let a = Arena.build prov in
  solve_arena ~reverse_delete:true a
    ~deletable:(Arena.of_stuple_set a deletable)
    ~ignored_preserved:(Arena.of_vtuple_set a ignored_preserved)

(* ---- reference (pre-arena) implementation ----

   The seed code path over persistent sets and string-keyed hashtables,
   kept verbatim for differential testing and the [arena] benchmark
   group. The arena kernel above must match it result for result. *)

(* Processing order of the bad view tuples: by decreasing depth of the
   shallowest witness tuple ("lca") when the query set admits a relation
   forest, else by decreasing witness size. Deterministic tie-break. *)
let processing_order (prov : Provenance.t) =
  let bad = Vtuple.Set.elements prov.Provenance.bad in
  match Hypergraph.Rel_tree.of_queries prov.Provenance.problem.Problem.queries with
  | Some tree ->
    let lca_depth vt =
      R.Stuple.Set.fold
        (fun st acc -> min acc (Hypergraph.Rel_tree.depth tree st.R.Stuple.rel))
        (Provenance.witness_of prov vt)
        max_int
    in
    let keyed = List.map (fun vt -> (lca_depth vt, vt)) bad in
    ( true,
      List.sort
        (fun (da, a) (db, b) ->
          if da <> db then Int.compare db da else Vtuple.compare a b)
        keyed
      |> List.map snd )
  | None ->
    let size vt = R.Stuple.Set.cardinal (Provenance.witness_of prov vt) in
    let keyed = List.map (fun vt -> (size vt, vt)) bad in
    ( false,
      List.sort
        (fun (sa, a) (sb, b) ->
          if sa <> sb then Int.compare sb sa else Vtuple.compare a b)
        keyed
      |> List.map snd )

let reverse_delete_reference (prov : Provenance.t) chosen_in_order =
  (* drop a chosen tuple (scanning in reverse addition order) whenever all
     bad witnesses remain hit without it — lines 7-10 of Algorithm 1 *)
  let hits st =
    Vtuple.Set.inter (Provenance.vtuples_containing prov st) prov.Provenance.bad
  in
  let count = Hashtbl.create 64 in
  let bump vt d =
    let k = Vtuple.to_string vt in
    Hashtbl.replace count k (d + Option.value ~default:0 (Hashtbl.find_opt count k))
  in
  let get vt = Option.value ~default:0 (Hashtbl.find_opt count (Vtuple.to_string vt)) in
  List.iter (fun st -> Vtuple.Set.iter (fun vt -> bump vt 1) (hits st)) chosen_in_order;
  List.fold_left
    (fun kept st ->
      let h = hits st in
      if Vtuple.Set.for_all (fun vt -> get vt >= 2) h then begin
        Vtuple.Set.iter (fun vt -> bump vt (-1)) h;
        kept
      end
      else R.Stuple.Set.add st kept)
    R.Stuple.Set.empty
    (List.rev chosen_in_order)

let solve_general_reference (prov : Provenance.t) ~reverse_delete:do_rd ~deletable
    ~ignored_preserved =
  let forest_case, order = processing_order prov in
  let weights = prov.Provenance.problem.Problem.weights in
  let capacity st =
    Vtuple.Set.fold
      (fun vt acc ->
        if
          Vtuple.Set.mem vt prov.Provenance.preserved
          && not (Vtuple.Set.mem vt ignored_preserved)
        then acc +. Weights.get weights vt
        else acc)
      (Provenance.vtuples_containing prov st)
      0.0
  in
  let used : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let headroom st =
    capacity st -. Option.value ~default:0.0 (Hashtbl.find_opt used (R.Stuple.to_string st))
  in
  let draw st d =
    let k = R.Stuple.to_string st in
    Hashtbl.replace used k (d +. Option.value ~default:0.0 (Hashtbl.find_opt used k))
  in
  let chosen = ref [] in
  let chosen_set = ref R.Stuple.Set.empty in
  let duals = ref Vtuple.Map.empty in
  let infeasible = ref false in
  List.iter
    (fun vt ->
      if not !infeasible then begin
        let witness =
          R.Stuple.Set.filter (fun st -> R.Stuple.Set.mem st deletable)
            (Provenance.witness_of prov vt)
        in
        if R.Stuple.Set.is_empty witness then infeasible := true
        else if R.Stuple.Set.is_empty (R.Stuple.Set.inter witness !chosen_set) then begin
          (* raise the dual as much as possible: up to the smallest headroom *)
          let delta =
            R.Stuple.Set.fold (fun st acc -> min acc (headroom st)) witness infinity
          in
          let delta = max 0.0 delta in
          duals := Vtuple.Map.add vt delta !duals;
          R.Stuple.Set.iter (fun st -> draw st delta) witness;
          (* all saturated witness tuples are chosen (line 5) *)
          R.Stuple.Set.iter
            (fun st ->
              if headroom st <= eps && not (R.Stuple.Set.mem st !chosen_set) then begin
                chosen := st :: !chosen;
                chosen_set := R.Stuple.Set.add st !chosen_set
              end)
            witness
        end
        else duals := Vtuple.Map.add vt 0.0 !duals
      end)
    order;
  if !infeasible then None
  else begin
    let chosen_in_order = List.rev !chosen in
    let deletion =
      if do_rd then reverse_delete_reference prov chosen_in_order
      else R.Stuple.Set.of_list chosen_in_order
    in
    let outcome = Side_effect.eval prov deletion in
    let dual_value = Vtuple.Map.fold (fun _ v acc -> acc +. v) !duals 0.0 in
    Some { deletion; outcome; duals = !duals; dual_value; forest_case }
  end

let all_tuples (prov : Provenance.t) =
  R.Instance.fold R.Stuple.Set.add prov.Provenance.problem.Problem.db R.Stuple.Set.empty

let solve_reference ?(reverse_delete = true) prov =
  match
    solve_general_reference prov ~reverse_delete ~deletable:(all_tuples prov)
      ~ignored_preserved:Vtuple.Set.empty
  with
  | Some r -> r
  | None -> assert false

let solve_restricted_reference prov ~deletable ~ignored_preserved =
  solve_general_reference prov ~reverse_delete:true ~deletable ~ignored_preserved
