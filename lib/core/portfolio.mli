(** Solver portfolio: run every algorithm applicable to an instance and
    rank the outcomes. The paper's algorithms have incomparable
    guarantees (l vs 2√‖V‖ vs exact-on-pivot-forests vs the general
    reduction); at run time the cheapest feasible answer simply wins.

    [Brute] participates only when the candidate set is small
    ([exact_threshold], default 16 candidates). *)

(** All applicable solvers over a prebuilt arena, as ranked
    {!Solution.t}s (feasible only, cheapest first, each carrying its
    guarantee certificate). Never empty for well-formed instances
    (primal-dual always applies). [only] keeps just the named algorithms
    (["brute"], ["primal-dual"], ["lowdeg"], ["dp-tree"], ["general"],
    ["greedy"]); with neither [domains] nor [pool] the fan-out is
    sequential, [pool] runs it on a persistent {!Par.Pool.t} (the
    engine's mode), [domains] spawns per call. *)
val solutions :
  ?exact_threshold:int ->
  ?only:string list ->
  ?domains:int ->
  ?pool:Par.Pool.t ->
  Arena.t ->
  Solution.t list

(** The pre-{!Solution.t} result dialect, kept so existing callers
    compile unchanged. New code wants {!solutions}. *)
type entry = {
  algorithm : string;
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;
  elapsed_ms : float;   (** wall-clock time of this solver — truthful
                            even when solvers run on parallel domains *)
}

val entry_of_solution : Solution.t -> entry

(** Deprecated dialect of {!solutions}: compiles a fresh arena and
    down-converts. Ranking ties on cost now keep solver order (no longer
    broken by [elapsed_ms]), making the order deterministic. *)
val run : ?exact_threshold:int -> Provenance.t -> entry list

(** The winner of {!run}. *)
val best : ?exact_threshold:int -> Provenance.t -> entry

(** Like {!run}, but the solver fan-out executes in parallel — on fresh
    domains ([domains] defaults to [Domain.recommended_domain_count ()])
    or on [pool] when given. The provenance index and all inputs are
    immutable, so sharing is safe; wall-clock approaches the slowest
    solver plus domain overhead — a win only when several solvers are
    individually expensive (on small instances the spawn cost dominates;
    see the [e21_pipeline/portfolio_*] benches). [elapsed_ms] is
    per-solver wall time. *)
val run_parallel :
  ?exact_threshold:int -> ?domains:int -> ?pool:Par.Pool.t -> Provenance.t -> entry list
