(** Solver portfolio: run every registered algorithm ({!Solver},
    {!Solvers}) on an instance and rank the outcomes. The paper's
    algorithms have incomparable guarantees (l vs 2√‖V‖ vs
    exact-on-pivot-forests vs the general reduction); at run time the
    cheapest feasible answer simply wins. This module is pure policy —
    the algorithms themselves live in the {!Solver} registry, the
    attempt classification in {!Solver.run}.

    [Brute] participates only when the candidate set is small
    ([exact_threshold], default 16 candidates).

    The fan-out is {e resilient}: a solver that crashes or outlives the
    round's time budget is recorded in {!report.failures} and skipped —
    it never takes the round (or a pool worker) down with it — and a
    degradation ladder guarantees a budgeted round still answers. *)

type failure_reason = Solver.failure_reason =
  | Timed_out           (** the round budget expired inside the solver *)
  | Crashed of string   (** the solver raised; payload is [Printexc.to_string] *)

type failure = Solver.failure = {
  algorithm : string;
  elapsed_ms : float;   (** wall-clock spent before the solver died *)
  reason : failure_reason;
}

type report = {
  solutions : Solution.t list;  (** feasible only, cheapest first *)
  failures : failure list;      (** solvers that timed out or crashed *)
  degraded : bool;
      (** true when no solver finished with a feasible answer and the
          ladder fell back to an unbudgeted greedy pass — [solutions] is
          then that single heuristic answer *)
}

val pp_failure : Format.formatter -> failure -> unit

(** All applicable solvers over a prebuilt arena. Solutions are ranked
    {!Solution.t}s (feasible only, cheapest first, each carrying its
    guarantee certificate). [only] keeps just the named algorithms
    (["brute"], ["primal-dual"], ["lowdeg"], ["dp-tree"], ["general"],
    ["greedy"]); with neither [domains] nor [pool] the fan-out is
    sequential, [pool] runs it on a persistent {!Par.Pool.t} (the
    engine's mode), [domains] spawns per call.

    [budget_ms] arms one shared deadline for the round: solvers tick it
    cooperatively and unwind with {!Budget.Expired} on expiry (recorded
    as [Timed_out]); LowDeg instead salvages its best finished threshold
    and certifies it {!Solution.Anytime}. When every solver fails, the
    round degrades to the always-terminating greedy pass (run unbudgeted
    and outside the failpoint registry) and sets [degraded].

    Fault-injection hook: each solver attempt first crosses
    [Failpoint.hit ("solver." ^ name)].

    [extra] appends caller-supplied solver modules (e.g. the
    {!Planner}'s parent-threshold LowDeg variant) after the registry
    list — they bypass the [only] filter and rank after the built-ins on
    cost ties. *)
val solutions_report :
  ?exact_threshold:int ->
  ?only:string list ->
  ?extra:(module Solver.S) list ->
  ?domains:int ->
  ?pool:Par.Pool.t ->
  ?budget_ms:float ->
  Arena.t ->
  report

(** [solutions_report] without the failure detail — never empty for
    well-formed instances (primal-dual always applies, and the
    degradation ladder backstops budgeted rounds). *)
val solutions :
  ?exact_threshold:int ->
  ?only:string list ->
  ?domains:int ->
  ?pool:Par.Pool.t ->
  ?budget_ms:float ->
  Arena.t ->
  Solution.t list

(** The pre-{!Solution.t} result dialect, kept so existing callers
    compile unchanged. New code wants {!solutions}. *)
type entry = {
  algorithm : string;
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;
  elapsed_ms : float;   (** wall-clock time of this solver — truthful
                            even when solvers run on parallel domains *)
}

val entry_of_solution : Solution.t -> entry

(** Deprecated dialect of {!solutions}: compiles a fresh arena and
    down-converts. Ranking ties on cost now keep solver order (no longer
    broken by [elapsed_ms]), making the order deterministic. *)
val run : ?exact_threshold:int -> Provenance.t -> entry list

(** The winner of {!run}. *)
val best : ?exact_threshold:int -> Provenance.t -> entry

(** Like {!run}, but the solver fan-out executes in parallel — on fresh
    domains ([domains] defaults to [Domain.recommended_domain_count ()])
    or on [pool] when given. The provenance index and all inputs are
    immutable, so sharing is safe; wall-clock approaches the slowest
    solver plus domain overhead — a win only when several solvers are
    individually expensive (on small instances the spawn cost dominates;
    see the [e21_pipeline/portfolio_*] benches). [elapsed_ms] is
    per-solver wall time. *)
val run_parallel :
  ?exact_threshold:int -> ?domains:int -> ?pool:Par.Pool.t -> Provenance.t -> entry list
