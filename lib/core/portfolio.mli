(** Solver portfolio: run every algorithm applicable to an instance and
    rank the outcomes. The paper's algorithms have incomparable
    guarantees (l vs 2√‖V‖ vs exact-on-pivot-forests vs the general
    reduction); at run time the cheapest feasible answer simply wins.

    [Brute] participates only when the candidate set is small
    ([exact_threshold], default 16 candidates). *)

type entry = {
  algorithm : string;
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;
  elapsed_ms : float;   (** wall-clock time of this solver — truthful
                            even when solvers run on parallel domains *)
}

(** All applicable solvers, feasible results only, cheapest first. Never
    empty for well-formed instances (primal-dual always applies). *)
val run : ?exact_threshold:int -> Provenance.t -> entry list

(** The winner of {!run}. *)
val best : ?exact_threshold:int -> Provenance.t -> entry

(** Like {!run}, but the solver fan-out executes on a {!Par} domain pool
    ([domains] defaults to [Domain.recommended_domain_count ()]). The
    provenance index and all inputs are immutable, so sharing is safe;
    wall-clock approaches the slowest solver plus domain overhead — a win
    only when several solvers are individually expensive (on small
    instances the spawn cost dominates; see the [e21_pipeline/portfolio_*]
    benches). [elapsed_ms] is per-solver wall time. *)
val run_parallel : ?exact_threshold:int -> ?domains:int -> Provenance.t -> entry list
