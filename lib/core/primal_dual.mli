(** [PrimeDualVSE] (Algorithm 1, §IV.C): primal-dual l-approximation for
    the forest case, in the style of Garg–Vazirani multicut on trees [25].

    Each source tuple [t] carries capacity = total weight of preserved
    view tuples joined through it (deleting [t] costs at most that).
    Bad view tuples are processed by decreasing depth of their witness's
    shallowest tuple (the paper's [lca]); each raises its dual variable
    until some witness tuple saturates; saturated tuples are deleted; a
    reverse-delete pass keeps the solution minimal (lines 7–10).

    The returned dual value [Σ f_r] is a lower-bound certificate for the
    LP relaxation with per-tuple capacities; Theorem 3's ratio [l]
    (= max query arity) is validated against brute force in experiment
    E4. When the query set is not a forest the algorithm still returns a
    feasible minimal solution, processing bad tuples in witness-size
    order — only the guarantee is void. *)

type result = {
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;
  duals : float Vtuple.Map.t;   (** f_r for each bad view tuple *)
  dual_value : float;           (** Σ f_r *)
  forest_case : bool;           (** did the instance admit the tree order? *)
}

(** [reverse_delete] (default true) controls the pruning pass of lines
    7–10; disabling it is the ablation of experiment E15 — the solution
    stays feasible but keeps every saturated tuple.

    Runs on a freshly compiled {!Arena.t}; see {!solve_arena} to reuse
    one arena across many calls. *)
val solve : ?reverse_delete:bool -> Provenance.t -> result

(** [solve_restricted prov ~deletable ~ignored_preserved] — the variant
    Algorithm 2 calls: tuples outside [deletable] are never chosen, and
    preserved view tuples in [ignored_preserved] contribute no capacity
    (they are the pruned wide tuples [R'_>]). Returns [None] when some
    bad witness has no deletable tuple (infeasible sub-instance). *)
val solve_restricted :
  Provenance.t ->
  deletable:Relational.Stuple.Set.t ->
  ignored_preserved:Vtuple.Set.t ->
  result option

(** The kernel both entry points above compile to: Algorithm 1 over a
    prebuilt arena, with the restriction expressed as bitsets over arena
    ids. The LowDeg τ-sweep calls this once per threshold on a shared
    arena. [None] iff some bad witness has no deletable tuple.

    [budget] is ticked once per bad view tuple and once per
    reverse-delete candidate; on expiry the run unwinds with
    {!Budget.Expired} — the dual raising is not anytime (a partial run
    leaves bad tuples unhit), so there is no partial result to salvage
    and the caller (portfolio, τ-sweep) records the attempt as timed
    out. *)
val solve_arena :
  ?reverse_delete:bool ->
  ?budget:Budget.t ->
  Arena.t ->
  deletable:Setcover.Bitset.t ->
  ignored_preserved:Setcover.Bitset.t ->
  result option

(** The approximate tier's decomposable-solution record
    ({!Decomposition.Contributions}): one part per deleted candidate,
    its cost slice the killed preserved weight charged to it, stamped
    with the arena's live ‖V‖. Shared by every portfolio member whose
    answer is an unstructured deleted-set (the τ-sweep, greedy, the
    general reduction). *)
val decomposition : Arena.t -> deleted:Relational.Stuple.Set.t -> Decomposition.t
