(** First-class live component index: the partition plus per-component
    member rosters, maintained incrementally across the whole delta
    lifecycle.

    {!Arena.partition} answers "which component does this slot belong
    to?" in O(1), but enumerating a component's {e members} — what every
    planner round needs to build its proto-shards — meant sweeping the
    full [comp_of_vid]/[comp_of_sid] arrays ({!Arena.active_components}),
    the residual O(‖D‖ + ‖V‖) term in otherwise component-local rounds.
    This module owns both: the canonical partition {e and} ascending
    member rosters per component, patched by the same transitions the
    partition itself uses — deletes re-roster only the affected
    components' fragments ({!delete} delegates the labels to
    {!Arena.partition_delete}), inserts re-roster only the merged
    components ({!insert} / {!Arena.partition_insert}), and compaction
    remaps member ids without a global rebuild ({!compact}). {!active}
    is then an O(‖ΔV‖ + active·log active) lookup that returns the {e
    same} proto-shards, bit-identical, that the sweep would have built.

    The index additionally carries one {e solve memo} per component —
    the fingerprint and ΔV of the component's last planner answer —
    which is what the split-aware cache reuse in {!Planner.seed_fragments}
    restricts onto surviving fragments. Memos are advisory: dropping one
    never changes an answer, only forfeits a reuse.

    Lockstep differential tests ([test/test_compindex.ml]) drive random
    mixed delta streams (splits, merges, resurrections, compactions)
    through this index and through scratch recomputation and check the
    partitions, rosters and {!active} outputs are bit-identical. *)

type t

(** The canonical partition the index maintains — exactly what
    [Arena.partition] would compute from the same arena (bit-identical
    labels; the lockstep suite enforces it). *)
val partition : t -> Arena.partition

(** [of_partition p] — bucket [p]'s members into rosters (one
    O(‖D‖ + ‖V‖) pass; the only full sweep the index ever does). *)
val of_partition : Arena.partition -> t

(** [build a] = [of_partition (Arena.partition a)]. *)
val build : Arena.t -> t

(** Ascending live member ids of component [c]. The returned arrays are
    owned by the index — callers must not mutate them. A component with
    no view tuples has an empty [vids_of]. *)

val sids_of : t -> int -> int array
val vids_of : t -> int -> int array

(** [delete t ~before ~dd a'] — the index after committing the deletion
    [dd] ([a' = Arena.delete before ~dd _], possibly compacted; same
    contract as {!Arena.partition_delete}). On the tombstone path only
    the affected components re-roster (their fragments re-bucket, and
    their memos drop — {!Planner.seed_fragments} may re-seed the
    untouched fragment); every other component shares its roster and
    memo with [t]. *)
val delete : t -> before:Arena.t -> dd:Relational.Stuple.Set.t -> Arena.t -> t

(** [insert t ~before a'] — the index after an insertion
    ([a' = Arena.extend before ~ins _]; same contract as
    {!Arena.partition_insert}). On the resurrect path only components
    that merged or gained a member re-roster (memos drop); the rest
    share. The merge path re-buckets from scratch (ids moved). *)
val insert : t -> before:Arena.t -> Arena.t -> t

(** [compact t ~before] — the index over [Arena.compact before]: labels
    survive ({!Arena.compact_partition}), roster ids remap to the
    compacted arena's, and memos survive too — their fingerprints are
    compaction-invariant ({!Fingerprint}) and their ΔV vids remap with
    the rosters. *)
val compact : t -> before:Arena.t -> t

(** [active t a] — the proto-shards of the components holding a bad
    view tuple of [a], ascending by component, each roster ascending:
    bit-identical to [Arena.active_components ~partition:(partition t) a]
    but O(‖ΔV‖ + active·log active) instead of O(‖D‖ + ‖V‖). [a] must
    share the index's physical id space (the session arena or a
    [with_deletions] re-stamp of it). *)
val active : t -> Arena.t -> Arena.proto_shard array

(** {2 Solve memos (split-aware reuse)} *)

(** [record_memo t ~component ~fp ~bad] — remember that [component] was
    last solved as the shard fingerprinted [fp] under the ΔV [bad]
    (ascending parent vids). Overwrites any previous memo. *)
val record_memo : t -> component:int -> fp:Fingerprint.t -> bad:int array -> unit

(** The component's memo, if its roster has not changed since it was
    recorded (re-rostering drops memos). *)
val memo : t -> int -> (Fingerprint.t * int array) option
