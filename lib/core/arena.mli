(** The compiled, integer-dense form of a {!Provenance.t}.

    Key preservation makes the tuple↔witness incidence structure a fixed
    bipartite graph (every view tuple has exactly one witness), so the
    solver hot loops never need the persistent tree-based sets the
    provenance index is built from. [build] interns every source tuple
    and view tuple to a contiguous id — in [Stuple.compare] /
    [Vtuple.compare] order, so id order coincides with set order and
    arena folds replay the exact float-accumulation sequences of the
    set-based reference implementations — and lowers the witness and
    containing maps to int arrays, with bad/preserved as {!Setcover.Bitset}s.

    Solvers run on the arrays and convert back to sets only at the API
    boundary; see {!Primal_dual.solve_arena} and {!Lowdeg.solve}. *)

module R := Relational

type t = private {
  prov : Provenance.t;                (** the index this arena compiles *)
  stuples : R.Stuple.t array;         (** sid -> source tuple, sorted; every tuple of [D] *)
  vtuples : Vtuple.t array;           (** vid -> view tuple, sorted; all of [V] *)
  witness : int array array;          (** vid -> witness sids, ascending *)
  containing : int array array;       (** sid -> vids whose witness contains it, ascending *)
  bad : Setcover.Bitset.t;            (** ΔV as vids *)
  preserved : Setcover.Bitset.t;      (** V \ ΔV as vids *)
  weights : float array;              (** vid -> preservation weight *)
  bad_order : int array;              (** bad vids in the primal-dual processing
                                          order (decreasing lca depth on forests,
                                          else decreasing witness size) *)
  forest_case : bool;                 (** did the query set admit the tree order? *)
}

(** Compile a provenance index. Cost is one hashtable pass over tuples
    plus the sorted traversals of the witness/containing maps. *)
val build : Provenance.t -> t

(** [with_deletions a prov] — the arena re-stamped for
    [prov = Provenance.with_deletions a.prov reqs]: bad/preserved
    bitsets and the processing order recomputed, every array shared.
    Equals [build prov] without the interning pass. *)
val with_deletions : t -> Provenance.t -> t

(** [delete a ~dd prov] — the arena after committing the source deletion
    [dd], where [prov = Provenance.delete a.prov dd]: dead source and
    view ids drop out, survivors compact order-preservingly (id order is
    sorted-tuple order, which deletion preserves), witness rows remap and
    containing re-inverts. Equals [build prov] with no tuple comparisons
    or hashing. [dd] must be tuples of the arena's database. *)
val delete : t -> dd:R.Stuple.Set.t -> Provenance.t -> t

(** [extend a ~ins prov] — the arena after committing the source
    insertion [ins], where [prov] is [a.prov] with every tuple of [ins]
    {!Provenance.insert}ed: the two sorted runs merge (existing ids keep
    their relative order, shifting only past the inserted tuples — no
    re-interning pass), surviving witness rows remap, gained view tuples
    intern their witness by bisection, and containing re-inverts.
    Equals [build prov]. [ins] must be disjoint from the arena's
    database. *)
val extend : t -> ins:R.Stuple.Set.t -> Provenance.t -> t

val num_stuples : t -> int
val num_vtuples : t -> int

(** Interning lookups; [Invalid_argument] on tuples unknown to the
    arena. *)

val stuple_id : t -> R.Stuple.t -> int
val vtuple_id : t -> Vtuple.t -> int

(** Boundary conversions. [of_stuple_set]/[of_vtuple_set] silently drop
    tuples the arena does not know (they can occur in no witness, so
    every solver treats them as absent anyway). *)

val of_stuple_set : t -> R.Stuple.Set.t -> Setcover.Bitset.t
val of_vtuple_set : t -> Vtuple.Set.t -> Setcover.Bitset.t
val to_stuple_set : t -> int list -> R.Stuple.Set.t

(** {2 Connected components}

    The stuple↔vtuple incidence graph shatters into independent
    components: a view tuple's witness lies entirely inside one
    component, so solving per component and unioning the per-shard
    deletions is exact for both feasibility and cost. *)

type partition = {
  comp_of_sid : int array;      (** sid -> component id *)
  comp_of_vid : int array;      (** vid -> component of its witness
                                    ([-1] for an empty witness, which
                                    cannot occur on built arenas) *)
  num_components : int;
}

(** Union-find over the witness rows, O(‖D‖ + Σ|witness| α). Components
    are numbered canonically (by first appearance in ascending sid
    order), so membership-equal partitions are structurally equal.
    The partition depends only on the witness structure — it is valid
    unchanged for any [with_deletions] re-stamp of the same arena. *)
val partition : t -> partition

(** [partition_delete p ~before ~dd a'] — the partition of
    [a' = delete before ~dd prov'], patched incrementally from
    [p = partition before]: deletions only split components (no witness
    row ever gains a member), so only components containing a deleted
    tuple are re-unioned, the rest keep their membership. Bit-identical
    to [partition a'] (checked by the engine differential suite). *)
val partition_delete : partition -> before:t -> dd:R.Stuple.Set.t -> t -> partition

(** [partition_insert p ~before a'] — the partition of
    [a' = extend before ~ins prov'], patched incrementally from
    [p = partition before]: insertions only {e merge} components (every
    old witness row survives intact), so the old components are re-used
    wholesale via one chain-union each and only the {e gained} witness
    rows — the rows that can bridge shards — are unioned in.
    Bit-identical to [partition a'] (checked by the engine differential
    suite). *)
val partition_insert : partition -> before:t -> t -> partition

(** One active component, compiled as a standalone arena over the
    restricted provenance ({!Provenance.restrict}) — solvers never see
    foreign ids. Position [k] of the shard arena corresponds to the
    parent id [global_sids.(k)] / [global_vids.(k)] (id order is
    sorted-tuple order on both sides, and the shard's tuples form an
    ascending subsequence of the parent's). *)
type shard = {
  arena : t;
  component : int;              (** parent component id *)
  global_sids : int array;      (** shard sid -> parent sid, ascending *)
  global_vids : int array;      (** shard vid -> parent vid, ascending *)
}

(** An active component {e before} compilation: just its member ids in
    the parent arena (both ascending). Everything a shard arena will
    contain is a pure function of these lists and the parent — which is
    what lets {!Fingerprint.shard} key a memo cache without paying for
    {!materialize}. *)
type proto_shard = {
  p_component : int;            (** parent component id *)
  p_sids : int array;           (** member parent sids, ascending *)
  p_vids : int array;           (** member parent vids, ascending *)
}

(** [active_components ?partition a] — the components of [a] containing
    at least one bad view tuple, ascending by component id; components
    with nothing to solve are skipped. [partition] (default: computed
    fresh) lets a session reuse its incrementally maintained one. An
    arena with no bad tuples yields [[||]]. Cheap: two id sweeps, no
    provenance restriction. *)
val active_components : ?partition:partition -> t -> proto_shard array

(** Compile one proto-shard into a standalone solvable {!shard}
    (restrict + build — the expensive step [shatter] pays for every
    active component, and a memoizing planner pays only for the dirty
    ones). *)
val materialize : t -> proto_shard -> shard

(** [shatter ?partition a] = [active_components] + {!materialize} on
    every proto-shard. *)
val shatter : ?partition:partition -> t -> shard array

(** [preserved_degree a sid] — number of preserved view tuples whose
    witness contains the tuple (the LowDeg degree). *)
val preserved_degree : t -> int -> int

(** Sids occurring in at least one bad witness, ascending — the
    candidate deletions. *)
val candidate_ids : t -> int array
