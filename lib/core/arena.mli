(** The compiled, integer-dense form of a {!Provenance.t}.

    Key preservation makes the tuple↔witness incidence structure a fixed
    bipartite graph (every view tuple has exactly one witness), so the
    solver hot loops never need the persistent tree-based sets the
    provenance index is built from. [build] interns every source tuple
    and view tuple to a contiguous id — in [Stuple.compare] /
    [Vtuple.compare] order, so id order coincides with set order and
    arena folds replay the exact float-accumulation sequences of the
    set-based reference implementations — and lowers the witness and
    containing maps to int arrays, with bad/preserved as {!Setcover.Bitset}s.

    Solvers run on the arrays and convert back to sets only at the API
    boundary; see {!Primal_dual.solve_arena} and {!Lowdeg.solve}. *)

module R := Relational

type t = private {
  prov : Provenance.t;                (** the index this arena compiles *)
  stuples : R.Stuple.t array;         (** sid -> source tuple, sorted; every tuple of [D] *)
  vtuples : Vtuple.t array;           (** vid -> view tuple, sorted; all of [V] *)
  witness : int array array;          (** vid -> witness sids, ascending *)
  containing : int array array;       (** sid -> vids whose witness contains it, ascending *)
  bad : Setcover.Bitset.t;            (** ΔV as vids *)
  preserved : Setcover.Bitset.t;      (** V \ ΔV as vids *)
  weights : float array;              (** vid -> preservation weight *)
  bad_order : int array;              (** bad vids in the primal-dual processing
                                          order (decreasing lca depth on forests,
                                          else decreasing witness size) *)
  forest_case : bool;                 (** did the query set admit the tree order? *)
  dead_s : Setcover.Bitset.t;         (** tombstoned sids (excluded from every
                                          live bitset; slots reusable by
                                          re-insertion) *)
  dead_v : Setcover.Bitset.t;         (** tombstoned vids *)
  generation : int;                   (** bumped by every tombstoning delta;
                                          0 on built/compacted arenas *)
  depths : int array option;          (** sid -> rel-tree depth memo ([None]
                                          in the non-forest case); a pure
                                          function of the physical layout,
                                          shared across re-stamps *)
}

(** Compile a provenance index. Cost is one hashtable pass over tuples
    plus the sorted traversals of the witness/containing maps. *)
val build : Provenance.t -> t

(** [with_deletions a prov] — the arena re-stamped for
    [prov = Provenance.with_deletions a.prov reqs]: bad/preserved
    bitsets and the processing order recomputed, every array shared.
    Equals [build prov] without the interning pass. *)
val with_deletions : t -> Provenance.t -> t

(** [delete a ~dd prov] — the arena after committing the source deletion
    [dd], where [prov = Provenance.delete a.prov dd]: the deleted sids
    and every view tuple whose witness meets [dd] are {e tombstoned} —
    marked dead, generation bumped — and no id moves, so every array is
    shared and the cost is O(‖dd‖ + Σ|containing(dd)|). Live-equivalent
    to [build prov]: [compact (delete a ~dd prov)] is bit-identical to
    [build prov]. [dd] must be live tuples of the arena's database. *)
val delete : t -> dd:R.Stuple.Set.t -> Provenance.t -> t

(** [extend a ~ins prov] — the arena after committing the source
    insertion [ins], where [prov] is [a.prov] with every tuple of [ins]
    {!Provenance.insert}ed. Two regimes: if every inserted tuple (and
    every view answer it re-creates) bisects to a tombstoned slot whose
    stored row and weight match [prov] exactly, the dead bits flip back
    in place — the delete/re-insert fast path, no id movement.
    Otherwise the arena is compacted and the two sorted runs merge
    (existing ids keep their relative order, shifting only past the
    inserted tuples), surviving witness rows remap, gained view tuples
    intern their witness by bisection, and containing re-inverts — the
    result then equals [build prov]. [ins] must be disjoint from the
    arena's {e live} database. *)
val extend : t -> ins:R.Stuple.Set.t -> Provenance.t -> t

(** [can_extend_in_place a ~ins prov] — would [extend] take the
    resurrection fast path? Lets a caller that must keep derived state
    (partitions, dirty flags) aligned with the physical layout compact
    {e before} a merge-path extend rather than after. *)
val can_extend_in_place : t -> ins:R.Stuple.Set.t -> Provenance.t -> bool

(** [compact a] — gather the live slots, dropping every tombstone:
    survivors land order-preservingly exactly where a fresh [build] of
    [a.prov] puts them (bit-identical, including re-stamped ΔV state),
    generation resets to 0. The identity (physically [== a]) on arenas
    with no tombstones, hence idempotent. *)
val compact : t -> t

val num_stuples : t -> int
val num_vtuples : t -> int

(** Live counts — [num_stuples]/[num_vtuples] minus tombstones. These
    are the semantic ‖D‖ and ‖V‖ of the instance the arena currently
    represents. *)

val live_stuples : t -> int
val live_vtuples : t -> int

(** Does the arena carry any tombstone? *)
val tombstoned : t -> bool

(** Dead slots as a fraction of all physical slots (0 when empty) — the
    engine's compaction trigger. *)
val tombstone_ratio : t -> float

(** Interning lookups; [Invalid_argument] on tuples unknown to the
    arena. *)

val stuple_id : t -> R.Stuple.t -> int
val vtuple_id : t -> Vtuple.t -> int

(** Boundary conversions. [of_stuple_set]/[of_vtuple_set] silently drop
    tuples the arena does not know (they can occur in no witness, so
    every solver treats them as absent anyway). *)

val of_stuple_set : t -> R.Stuple.Set.t -> Setcover.Bitset.t
val of_vtuple_set : t -> Vtuple.Set.t -> Setcover.Bitset.t
val to_stuple_set : t -> int list -> R.Stuple.Set.t

(** {2 Connected components}

    The stuple↔vtuple incidence graph shatters into independent
    components: a view tuple's witness lies entirely inside one
    component, so solving per component and unioning the per-shard
    deletions is exact for both feasibility and cost. *)

type partition = {
  comp_of_sid : int array;      (** sid -> component id ([-1] for
                                    tombstoned slots) *)
  comp_of_vid : int array;      (** vid -> component of its witness
                                    ([-1] for tombstoned slots and empty
                                    witnesses, the latter impossible on
                                    built arenas) *)
  num_components : int;
}

(** Union-find over the live witness rows, O(‖D‖ + Σ|witness| α).
    Components are numbered canonically (by first appearance in
    ascending {e live} sid order), so membership-equal partitions are
    structurally equal — in particular the partition of a tombstoned
    arena assigns the same labels as the partition of its compacted
    form. The partition depends only on the live witness structure — it
    is valid unchanged for any [with_deletions] re-stamp of the same
    arena. *)
val partition : t -> partition

(** [compact_partition ~before p] — the partition of [compact before]
    given [p = partition before]: live entries gather, labels (and so
    [num_components]) are untouched, because canonical numbering already
    skips dead slots. Component-keyed state (dirty flags, caches)
    survives compaction without remapping. The identity when [before]
    carries no tombstone. *)
val compact_partition : before:t -> partition -> partition

(** [partition_delete p ~before ~dd a'] — the partition of
    [a' = delete before ~dd prov'], patched incrementally from
    [p = partition before]: deletions only split components (no witness
    row ever gains a member), so only components containing a deleted
    tuple are re-unioned, the rest keep their membership. When [a']
    shares [before]'s physical arrays (the tombstone regime) the
    correspondence is the identity; otherwise [a'] must be the compacted
    form. Bit-identical to [partition a'] (checked by the engine
    differential suite). *)
val partition_delete : partition -> before:t -> dd:R.Stuple.Set.t -> t -> partition

(** [partition_insert p ~before a'] — the partition of
    [a' = extend before ~ins prov'], patched incrementally from
    [p = partition before]: insertions only {e merge} components (every
    old witness row survives intact), so the old components are re-used
    wholesale via one chain-union each and only the {e gained} witness
    rows — the rows that can bridge shards — are unioned in. Handles
    both [extend] regimes: in-place resurrection (shared arrays) and
    the compact-and-merge path. Bit-identical to [partition a']
    (checked by the engine differential suite). *)
val partition_insert : partition -> before:t -> t -> partition

(** One active component, compiled as a standalone arena over the
    restricted provenance ({!Provenance.restrict}) — solvers never see
    foreign ids. Position [k] of the shard arena corresponds to the
    parent id [global_sids.(k)] / [global_vids.(k)] (id order is
    sorted-tuple order on both sides, and the shard's tuples form an
    ascending subsequence of the parent's). *)
type shard = {
  arena : t;
  component : int;              (** parent component id *)
  global_sids : int array;      (** shard sid -> parent sid, ascending *)
  global_vids : int array;      (** shard vid -> parent vid, ascending *)
}

(** An active component {e before} compilation: just its member ids in
    the parent arena (both ascending). Everything a shard arena will
    contain is a pure function of these lists and the parent — which is
    what lets {!Fingerprint.shard} key a memo cache without paying for
    {!materialize}. *)
type proto_shard = {
  p_component : int;            (** parent component id *)
  p_sids : int array;           (** member parent sids, ascending *)
  p_vids : int array;           (** member parent vids, ascending *)
}

(** [active_components ?partition a] — the components of [a] containing
    at least one bad view tuple, ascending by component id; components
    with nothing to solve are skipped. [partition] (default: computed
    fresh) lets a session reuse its incrementally maintained one. An
    arena with no bad tuples yields [[||]]. Cheap: two id sweeps, no
    provenance restriction. *)
val active_components : ?partition:partition -> t -> proto_shard array

(** Compile one proto-shard into a standalone solvable {!shard}
    (restrict + build — the expensive step [shatter] pays for every
    active component, and a memoizing planner pays only for the dirty
    ones). *)
val materialize : t -> proto_shard -> shard

(** [shatter ?partition a] = [active_components] + {!materialize} on
    every proto-shard. *)
val shatter : ?partition:partition -> t -> shard array

(** [preserved_degree a sid] — number of preserved view tuples whose
    witness contains the tuple (the LowDeg degree). *)
val preserved_degree : t -> int -> int

(** Sids occurring in at least one bad witness, ascending — the
    candidate deletions. *)
val candidate_ids : t -> int array
