(** A materialized-view manager: the operational wrapper that makes the
    propagation machinery usable as a running system. Register queries
    once; views are materialized eagerly and kept fresh {e incrementally}
    under source deletions (delta rules, {!Cq.Maintain}) and insertions
    (specialized delta evaluation) — never by full re-evaluation.

    This is the substrate a QOCO-style cleaning loop (§V) runs on:
    propose a repair with any solver, [apply] it, views stay consistent,
    iterate. Immutable/persistent: every operation returns a new manager.
    Consistency with from-scratch evaluation is property-tested. *)

type t

val create : Relational.Instance.t -> Cq.Query.t list -> t

val db : t -> Relational.Instance.t
val queries : t -> Cq.Query.t list

(** Materialized view of a registered query.
    Raises [Invalid_argument] on unknown names. *)
val view : t -> string -> Relational.Tuple.Set.t

(** Apply a deletion set; all views refreshed incrementally. *)
val delete : t -> Relational.Stuple.Set.t -> t

(** Insert one tuple (key-checked: raises [Relational.Relation.Key_violation]
    like the underlying instance); views extended by delta evaluation. *)
val insert : t -> Relational.Stuple.t -> t

val insert_all : t -> Relational.Stuple.Set.t -> t

(** Apply a symmetric update — deletes first, then inserts, the
    {!Delta} contract — refreshing every view incrementally on both
    sides. *)
val apply_delta : t -> Delta.t -> t

(** Adopt already-materialized views without re-evaluating the queries —
    the caller asserts [views] = each query evaluated on [db] (e.g. the
    engine, which just built a provenance index holding exactly those
    views). No validation happens here; use {!create} otherwise. *)
val of_views :
  Relational.Instance.t ->
  Cq.Query.t list ->
  Relational.Tuple.Set.t Smap.t ->
  t

(** Build a {!Problem.t} over the current state (the bridge to the
    solvers). Requests are validated against the materialized views
    first, so bad input surfaces as a typed {!Delta_request.error}
    instead of an [Invalid_argument] from deep inside [Problem.make]. *)
val problem :
  requests:Delta_request.t list ->
  ?weights:Weights.t ->
  t ->
  (Problem.t, Delta_request.error) result
