module R = Relational
module Tg = Hypergraph.Tuple_graph

let src = Logs.Src.create "deleprop.dp_tree" ~doc:"DPTreeVSE (Algorithm 4)"

module Log = (val Logs.src_log src : Logs.LOG)

type objective = Standard | Balanced

type result = {
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  pivots : R.Stuple.t list;
  optimum : float;
  decomp : Decomposition.forest_tree list;
      (** one recorded tree per non-empty graph component, in [pivots]
          order: node parent/depth/cut/value/slack — what
          {!Decomposition.restrict_forest} replays after a split *)
}

type error =
  | Not_a_forest
  | No_pivot

let pp_error ppf = function
  | Not_a_forest -> Format.fprintf ppf "data dual graph is not a forest"
  | No_pivot -> Format.fprintf ppf "a component has no pivot tuple"

let graph_of (prov : Provenance.t) =
  let paths =
    Vtuple.Map.fold (fun _ path acc -> path :: acc) prov.Provenance.witness_path []
  in
  Tg.of_witness_paths paths

(* Partition view tuples into the components of the graph; returns
   (component root witness, vtuples) keyed by an arbitrary component
   representative. *)
let components_with_vtuples (prov : Provenance.t) graph =
  let visited = ref R.Stuple.Set.empty in
  let comps = ref [] in
  List.iter
    (fun v ->
      if not (R.Stuple.Set.mem v !visited) then
        match Tg.Rooted.at graph v with
        | None -> ()
        | Some r ->
          let members = R.Stuple.Set.of_list (Tg.Rooted.by_increasing_depth r) in
          visited := R.Stuple.Set.union !visited members;
          comps := members :: !comps)
    (Tg.vertices graph);
  List.map
    (fun members ->
      let vts =
        Vtuple.Map.fold
          (fun vt w acc ->
            if R.Stuple.Set.mem (R.Stuple.Set.choose w) members then vt :: acc else acc)
          prov.Provenance.witness []
      in
      (members, vts))
    !comps

let solve ?(objective = Standard) ?budget (prov : Provenance.t) =
  let graph = graph_of prov in
  if not (Tg.is_forest graph) then Error Not_a_forest
  else begin
    let weights = prov.Provenance.problem.Problem.weights in
    let comps = components_with_vtuples prov graph in
    let exception Fail of error in
    try
      let deletion, pivots, optimum, trees =
        List.fold_left
          (fun (deletion, pivots, optimum, trees) (_, vts) ->
            if vts = [] then (deletion, pivots, optimum, trees)
            else begin
              let witnesses = List.map (Provenance.witness_of prov) vts in
              match Tg.find_pivot graph witnesses with
              | None -> raise (Fail No_pivot)
              | Some pivot ->
                Log.debug (fun m ->
                    m "component pivot %a, %d view tuples" R.Stuple.pp pivot
                      (List.length vts));
                let rooted =
                  match Tg.Rooted.at graph pivot with
                  | Some r -> r
                  | None -> raise (Fail Not_a_forest)
                in
                (* endpoint of each view tuple = deepest witness tuple *)
                let key st = R.Stuple.to_string st in
                let w_pres_end : (string, float) Hashtbl.t = Hashtbl.create 64 in
                let w_bad_end : (string, float) Hashtbl.t = Hashtbl.create 64 in
                List.iter
                  (fun vt ->
                    Budget.tick_o budget;
                    let w = Provenance.witness_of prov vt in
                    let endpoint =
                      R.Stuple.Set.fold
                        (fun v best ->
                          match best with
                          | None -> Some v
                          | Some b ->
                            if Tg.Rooted.depth rooted v > Tg.Rooted.depth rooted b then Some v
                            else best)
                        w None
                      |> Option.get
                    in
                    let tbl =
                      if Vtuple.Set.mem vt prov.Provenance.bad then w_bad_end else w_pres_end
                    in
                    let k = key endpoint in
                    Hashtbl.replace tbl k
                      (Weights.get weights vt
                      +. Option.value ~default:0.0 (Hashtbl.find_opt tbl k)))
                  vts;
                let pres_end st = Option.value ~default:0.0 (Hashtbl.find_opt w_pres_end (key st)) in
                let bad_end st = Option.value ~default:0.0 (Hashtbl.find_opt w_bad_end (key st)) in
                let has_bad_end st = Hashtbl.mem w_bad_end (key st) in
                (* bottom-up DP *)
                let subtree_pres : (string, float) Hashtbl.t = Hashtbl.create 64 in
                let value : (string, float) Hashtbl.t = Hashtbl.create 64 in
                let cut : (string, bool) Hashtbl.t = Hashtbl.create 64 in
                let slack : (string, float) Hashtbl.t = Hashtbl.create 64 in
                let order = Tg.Rooted.by_increasing_depth rooted in
                let order_rev = List.rev order in
                List.iter
                  (fun st ->
                    Budget.tick_o budget;
                    let children = Tg.Rooted.children rooted st in
                    let sp =
                      pres_end st
                      +. List.fold_left
                           (fun acc c -> acc +. Hashtbl.find subtree_pres (key c))
                           0.0 children
                    in
                    Hashtbl.replace subtree_pres (key st) sp;
                    let children_value =
                      List.fold_left
                        (fun acc c -> acc +. Hashtbl.find value (key c))
                        0.0 children
                    in
                    let cut_cost = sp in
                    let nocut_cost =
                      match objective with
                      | Standard ->
                        if has_bad_end st then infinity else children_value
                      | Balanced -> bad_end st +. children_value
                    in
                    if cut_cost < nocut_cost then begin
                      Hashtbl.replace value (key st) cut_cost;
                      Hashtbl.replace cut (key st) true
                    end
                    else begin
                      Hashtbl.replace value (key st) nocut_cost;
                      Hashtbl.replace cut (key st) false;
                      (* how much preserved weight the subtree can lose
                         before cutting becomes strictly cheaper *)
                      Hashtbl.replace slack (key st) (cut_cost -. nocut_cost)
                    end)
                  order_rev;
                (* reconstruct: descend while not cut *)
                let deletion = ref deletion in
                let rec walk st =
                  if Hashtbl.find cut (key st) then
                    deletion := R.Stuple.Set.add st !deletion
                  else List.iter walk (Tg.Rooted.children rooted st)
                in
                walk pivot;
                (* record the rooted tree: parent/depth plus the DP's
                   per-node decision state, keyed by tuple content *)
                let parent_of : (string, string) Hashtbl.t = Hashtbl.create 64 in
                List.iter
                  (fun st ->
                    List.iter
                      (fun c -> Hashtbl.replace parent_of (key c) (key st))
                      (Tg.Rooted.children rooted st))
                  order;
                let nodes =
                  List.map
                    (fun st ->
                      let k = key st in
                      ( k,
                        {
                          Decomposition.fn_parent = Hashtbl.find_opt parent_of k;
                          fn_depth = Tg.Rooted.depth rooted st;
                          fn_cut = Hashtbl.find cut k;
                          fn_value = Hashtbl.find value k;
                          fn_slack =
                            Option.value ~default:0.0 (Hashtbl.find_opt slack k);
                        } ))
                    order
                in
                let tree =
                  { Decomposition.ft_pivot = key pivot; ft_nodes = nodes }
                in
                ( !deletion,
                  pivot :: pivots,
                  optimum +. Hashtbl.find value (key pivot),
                  tree :: trees )
            end)
          (R.Stuple.Set.empty, [], 0.0, []) comps
      in
      let outcome = Side_effect.eval prov deletion in
      Ok { deletion; outcome; pivots = List.rev pivots; optimum; decomp = List.rev trees }
    with Fail e -> Error e
  end

let applicable prov =
  match solve prov with
  | Ok _ -> true
  | Error _ -> false
