module R = Relational

type certificate =
  | Exact
  | Dual_bound of float
  | Ratio of float
  | Heuristic
  | Anytime
  | Composite of {
      shards : int;
      factor : float option;
    }

type t = {
  algorithm : string;
  deleted : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  elapsed_ms : float;
  certificate : certificate;
  decomposition : Decomposition.t option;
}

let cost s = s.outcome.Side_effect.cost
let feasible s = s.outcome.Side_effect.feasible

(* stable sort, cost only: ties keep the solver-list order, so ranking is
   a pure function of the solver outputs — never of wall-clock noise.
   (The engine's differential tests compare ranked lists bit for bit.) *)
let rank solutions =
  solutions |> List.filter feasible
  |> List.stable_sort (fun a b -> Float.compare (cost a) (cost b))

let pp_certificate ppf = function
  | Exact -> Format.fprintf ppf "exact"
  | Dual_bound v -> Format.fprintf ppf "dual bound %g" v
  | Ratio r -> Format.fprintf ppf "ratio %g" r
  | Heuristic -> Format.fprintf ppf "heuristic"
  | Anytime -> Format.fprintf ppf "anytime (budget hit)"
  | Composite { shards; factor = Some f } ->
    Format.fprintf ppf "composite over %d shard(s), factor %g" shards f
  | Composite { shards; factor = None } ->
    Format.fprintf ppf "composite over %d shard(s), no factor" shards

let pp ppf s =
  Format.fprintf ppf "@[<v 2>%s (%a, %.2f ms): cost %g, delete %d tuple(s)%a@]"
    s.algorithm pp_certificate s.certificate s.elapsed_ms (cost s)
    (R.Stuple.Set.cardinal s.deleted)
    (fun ppf set ->
      R.Stuple.Set.iter (fun st -> Format.fprintf ppf "@ - %a" R.Stuple.pp st) set)
    s.deleted

(* ---- JSON ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* shortest decimal that round-trips the float *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_json s =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"algorithm\":\"";
  Buffer.add_string b (json_escape s.algorithm);
  Buffer.add_string b "\",\"deleted\":[";
  let first = ref true in
  R.Stuple.Set.iter
    (fun st ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_char b '"';
      Buffer.add_string b (json_escape (Format.asprintf "%a" R.Stuple.pp st));
      Buffer.add_char b '"')
    s.deleted;
  let o = s.outcome in
  Buffer.add_string b
    (Printf.sprintf
       "],\"feasible\":%b,\"cost\":%s,\"balanced_cost\":%s,\"side_effect\":%d,\"residual_bad\":%d,\"elapsed_ms\":%s,"
       o.Side_effect.feasible (json_float o.Side_effect.cost)
       (json_float o.Side_effect.balanced_cost)
       (Vtuple.Set.cardinal o.Side_effect.side_effect)
       (Vtuple.Set.cardinal o.Side_effect.residual_bad)
       (json_float s.elapsed_ms));
  Buffer.add_string b "\"certificate\":";
  (match s.certificate with
  | Exact -> Buffer.add_string b "{\"kind\":\"exact\"}"
  | Heuristic -> Buffer.add_string b "{\"kind\":\"heuristic\"}"
  | Anytime -> Buffer.add_string b "{\"kind\":\"anytime\"}"
  | Dual_bound v ->
    Buffer.add_string b (Printf.sprintf "{\"kind\":\"dual-bound\",\"value\":%s}" (json_float v))
  | Ratio r ->
    Buffer.add_string b (Printf.sprintf "{\"kind\":\"ratio\",\"value\":%s}" (json_float r))
  | Composite { shards; factor } ->
    Buffer.add_string b (Printf.sprintf "{\"kind\":\"composite\",\"shards\":%d" shards);
    (match factor with
    | Some f -> Buffer.add_string b (Printf.sprintf ",\"value\":%s}" (json_float f))
    | None -> Buffer.add_char b '}'));
  (match s.decomposition with
  | None -> ()
  | Some d ->
    Buffer.add_string b
      (Printf.sprintf ",\"decomposition\":{\"structure\":\"%s\",\"parts\":%d,\"vtuples\":%d}"
         (Decomposition.structure_name d.Decomposition.d_structure)
         (List.length d.Decomposition.d_parts)
         d.Decomposition.d_vtuples));
  Buffer.add_char b '}';
  Buffer.contents b
