module R = Relational

type t = int64

(* FNV-1a over the native 63-bit int lane (boxed Int64 arithmetic
   allocates per mixed word — the planner hashes every clean shard every
   round, so the inner loop must not). The multiply wraps mod 2^63; the
   result widens to int64 only once, at the end. Every ingredient is
   length-prefixed or tagged, so concatenation ambiguities ("ab"+"c" vs
   "a"+"bc") cannot collide structurally — remaining collisions are the
   63-bit birthday bound, far below anything a bounded LRU will ever
   hold. *)
let fnv_basis = Int64.to_int 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3

let mix h x = (h lxor x) * fnv_prime

let mix_string h s =
  let h = ref (mix h (String.length s)) in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

let mix_value h (v : R.Value.t) =
  match v with
  | R.Value.Int i -> mix (mix h 0) i
  | R.Value.Str s -> mix_string (mix h 1) s

let mix_tuple h (tp : R.Tuple.t) =
  let n = R.Tuple.arity tp in
  let h = ref (mix h n) in
  for i = 0 to n - 1 do
    h := mix_value !h (R.Tuple.get tp i)
  done;
  !h

let mix_float h f = mix h (Int64.to_int (Int64.bits_of_float f))

(* Live slots only, witness sids hashed by their rank among live sids —
   so the hash is invariant under compaction (tombstoned arena ≡ its
   compacted form) and, on an arena with no tombstones, bit-identical to
   the naive whole-array stream (rank = sid there). *)
let arena (a : Arena.t) =
  let ns_phys = Arena.num_stuples a and nv_phys = Arena.num_vtuples a in
  let h = ref (mix (mix fnv_basis (Arena.live_stuples a)) (Arena.live_vtuples a)) in
  let rank = Array.make (max 1 ns_phys) (-1) in
  let k = ref 0 in
  for sid = 0 to ns_phys - 1 do
    if not (Setcover.Bitset.mem a.Arena.dead_s sid) then begin
      rank.(sid) <- !k;
      incr k;
      let st = a.Arena.stuples.(sid) in
      h := mix_tuple (mix_string !h st.R.Stuple.rel) st.R.Stuple.tuple
    end
  done;
  for vid = 0 to nv_phys - 1 do
    if not (Setcover.Bitset.mem a.Arena.dead_v vid) then begin
      let vt = a.Arena.vtuples.(vid) in
      h := mix_tuple (mix_string !h vt.Vtuple.query) vt.Vtuple.tuple;
      h := mix_float !h a.Arena.weights.(vid);
      h := mix !h (if Setcover.Bitset.mem a.Arena.bad vid then 1 else 0);
      (* the witness row pins the incidence structure, so instances that
         happen to share tuple content but join differently stay apart *)
      let row = a.Arena.witness.(vid) in
      h := mix !h (Array.length row);
      Array.iter (fun sid -> h := mix !h rank.(sid)) row
    end
  done;
  Int64.of_int !h

(* The same hash, computed for one component straight off the parent
   arena — no [Provenance.restrict], no [Arena.build]. The shard arena's
   position [k] is the parent id [p_sids.(k)] / [p_vids.(k)] (ascending
   on both sides, see [Arena.materialize]), so every shard-local
   ingredient is recoverable: tuples and weights read through the id
   lists, and a witness row's shard-local sids are the parent sids'
   ranks within [p_sids]. Tombstone-invariant by the same argument:
   proto-shards enumerate live member ids only ([Arena.active_components]
   skips dead slots) and a live vid's witness references live sids, so
   the hash over a tombstoned parent equals the hash over its compacted
   form — dead slots never feed a byte into the stream. *)
let shard ?bad (a : Arena.t) (ps : Arena.proto_shard) =
  (* [?bad] overrides the parent's ΔV bitset — the split-reuse path
     hashes a fragment under the memoized request, not the current one *)
  let bad = match bad with Some b -> b | None -> a.Arena.bad in
  let sids = ps.Arena.p_sids and vids = ps.Arena.p_vids in
  let ns = Array.length sids and nv = Array.length vids in
  let h = ref (mix (mix fnv_basis ns) nv) in
  Array.iter
    (fun gsid ->
      let st = a.Arena.stuples.(gsid) in
      h := mix_tuple (mix_string !h st.R.Stuple.rel) st.R.Stuple.tuple)
    sids;
  let rank gsid =
    let lo = ref 0 and hi = ref (ns - 1) and r = ref (-1) in
    while !r < 0 do
      let mid = (!lo + !hi) / 2 in
      if sids.(mid) = gsid then r := mid
      else if sids.(mid) < gsid then lo := mid + 1
      else hi := mid - 1
    done;
    !r
  in
  Array.iter
    (fun gvid ->
      let vt = a.Arena.vtuples.(gvid) in
      h := mix_tuple (mix_string !h vt.Vtuple.query) vt.Vtuple.tuple;
      h := mix_float !h a.Arena.weights.(gvid);
      h := mix !h (if Setcover.Bitset.mem bad gvid then 1 else 0);
      let row = a.Arena.witness.(gvid) in
      h := mix !h (Array.length row);
      Array.iter (fun gsid -> h := mix !h (rank gsid)) row)
    vids;
  Int64.of_int !h

let equal = Int64.equal
let compare = Int64.compare
let to_hex fp = Printf.sprintf "%016Lx" fp

(* inverse of [to_hex]: exactly 16 hex digits (Int64.of_string on a 0x
   literal accepts the full unsigned range, wrapping into the sign bit) *)
let of_hex s =
  if String.length s <> 16 then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some fp when to_hex fp = String.lowercase_ascii s -> Some fp
    | _ -> None

let pp ppf fp = Format.pp_print_string ppf (to_hex fp)
