(** A small work-stealing domain pool for the embarrassingly-parallel
    outer loops (the LowDeg τ-sweep, the portfolio fan-out).

    Inputs must be safe to process concurrently — in this codebase every
    solver input (provenance, arena) is immutable, and each worker
    allocates its own mutable state. *)

(** [map ~domains f xs] — [List.map f xs], the applications distributed
    over [domains] domains (the calling domain included). Result order
    matches input order regardless of scheduling, so deterministic [f]
    gives deterministic results. [domains] defaults to
    [Domain.recommended_domain_count ()], is clamped to [1 .. length xs],
    and [domains <= 1] degrades to a plain sequential map with no domain
    spawned. The first exception raised by [f] is re-raised after all
    workers finish. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
