(** Work-stealing domain parallelism for the embarrassingly-parallel
    outer loops (the LowDeg τ-sweep, the portfolio fan-out).

    Inputs must be safe to process concurrently — in this codebase every
    solver input (provenance, arena) is immutable, and each worker
    allocates its own mutable state.

    Two execution strategies share one calling convention:
    {!map} without a pool spawns fresh domains per call (fine for one-off
    sweeps); a {!Pool.t} keeps its domains parked between calls, so a
    long-lived session (the engine) pays the spawn cost once.

    Each strategy comes in two dialects: [map] re-raises the first
    exception once every item has run, while [map_result] captures each
    item's outcome as a [result] — the failure-isolation dialect the
    portfolio uses so one crashing solver cannot abort its siblings. *)

(** A persistent pool of [size - 1] worker domains (the calling domain is
    always the [size]-th worker). Workers idle on a condition variable
    between jobs; {!Pool.map} publishes a job, participates in the drain,
    and returns when every item is done. One job runs at a time —
    concurrent callers serialize, and a {!Pool.map} from inside a worker
    (nested parallelism) degrades to a sequential map rather than
    deadlocking. *)
module Pool : sig
  type t

  (** [create ?domains ()] — [domains] (default
      [Domain.recommended_domain_count ()]) is the total worker count
      including the caller; [domains = 1] creates a pool that never
      spawns and maps sequentially. Raises [Invalid_argument] when
      [domains < 1] — zero or negative sizes are programming errors, not
      requests for a sequential pool. *)
  val create : ?domains:int -> unit -> t

  val size : t -> int

  (** Same contract as {!Par.map}: order-preserving, first exception
      re-raised after the job drains. After {!shutdown} (or from inside a
      pool worker) this runs sequentially. *)
  val map : t -> ('a -> 'b) -> 'a list -> 'b list

  (** Order-preserving, one [result] per input item: [Error e] where the
      function raised [e], [Ok y] elsewhere. Never raises itself; a pool
      surviving a failing job stays usable for the next one. *)
  val map_result : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list

  (** Park and join the worker domains. Idempotent, and safe to call
      from several domains concurrently — callers serialize and every
      one returns after the workers are joined. A pool whose owner
      forgets to call this leaks idle domains until process exit but
      does not block it. *)
  val shutdown : t -> unit
end

(** [map ~domains f xs] — [List.map f xs], the applications distributed
    over [domains] domains (the calling domain included). Result order
    matches input order regardless of scheduling, so deterministic [f]
    gives deterministic results. [domains] defaults to
    [Domain.recommended_domain_count ()], is clamped above by
    [length xs], and [domains = 1] degrades to a plain sequential map
    with no domain spawned; [domains < 1] raises [Invalid_argument].
    The first exception raised by [f] is re-raised after all workers
    finish.

    When [pool] is given it wins over [domains]: the job runs on the
    pool's parked workers with no domain spawned. *)
val map : ?domains:int -> ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list

(** The failure-isolating dialect of {!map}: same strategies and
    ordering, but each item's outcome is captured as a [result] instead
    of the first exception aborting the batch. *)
val map_result :
  ?domains:int -> ?pool:Pool.t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
