(** Work-stealing domain parallelism for the embarrassingly-parallel
    outer loops (the LowDeg τ-sweep, the portfolio fan-out).

    Inputs must be safe to process concurrently — in this codebase every
    solver input (provenance, arena) is immutable, and each worker
    allocates its own mutable state.

    Two execution strategies share one calling convention:
    {!map} without a pool spawns fresh domains per call (fine for one-off
    sweeps); a {!Pool.t} keeps its domains parked between calls, so a
    long-lived session (the engine) pays the spawn cost once. *)

(** A persistent pool of [size - 1] worker domains (the calling domain is
    always the [size]-th worker). Workers idle on a condition variable
    between jobs; {!Pool.map} publishes a job, participates in the drain,
    and returns when every item is done. One job runs at a time —
    concurrent callers serialize, and a {!Pool.map} from inside a worker
    (nested parallelism) degrades to a sequential map rather than
    deadlocking. *)
module Pool : sig
  type t

  (** [create ?domains ()] — [domains] (default
      [Domain.recommended_domain_count ()]) is the total worker count
      including the caller; [domains <= 1] creates a pool that never
      spawns and maps sequentially. *)
  val create : ?domains:int -> unit -> t

  val size : t -> int

  (** Same contract as {!Par.map}: order-preserving, first exception
      re-raised after the job drains. After {!shutdown} (or from inside a
      pool worker) this is a plain sequential [List.map]. *)
  val map : t -> ('a -> 'b) -> 'a list -> 'b list

  (** Park and join the worker domains. Idempotent. A pool whose owner
      forgets to call this leaks idle domains until process exit but
      does not block it. *)
  val shutdown : t -> unit
end

(** [map ~domains f xs] — [List.map f xs], the applications distributed
    over [domains] domains (the calling domain included). Result order
    matches input order regardless of scheduling, so deterministic [f]
    gives deterministic results. [domains] defaults to
    [Domain.recommended_domain_count ()], is clamped to [1 .. length xs],
    and [domains <= 1] degrades to a plain sequential map with no domain
    spawned. The first exception raised by [f] is re-raised after all
    workers finish.

    When [pool] is given it wins over [domains]: the job runs on the
    pool's parked workers with no domain spawned. *)
val map : ?domains:int -> ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list
