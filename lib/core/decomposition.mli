(** Decomposable solutions: the structure of an answer, recorded at
    solve time.

    Every solver tier annotates its winning answer with a map from the
    answer's connected sub-structures to their local deleted-set, cost
    slice and certificate slice:
    - {e brute force} — witness groups: candidates connected through a
      bad or touched preserved witness;
    - {e forest DP} — one tree per graph component: the pivot plus
      every node's recorded parent/depth/cut/value/slack, enough to
      replay the cut-frontier decisions under a projection;
    - {e approximate portfolio} — per-candidate contributions: each
      killed preserved view tuple charged to the content-minimal
      deleted member of its witness.

    Everything is keyed by tuple {e content} ({!Relational.Stuple.Set},
    fact-string keys), never by arena ids — a decomposition survives
    compaction, renumbering and re-materialization unchanged, which is
    what lets {!Planner.seed_fragments} project cached answers onto the
    surviving fragments of a component split. *)

type cert_slice =
  | Slice_exact
  | Slice_ratio of float
  | Slice_heuristic

type part = {
  p_label : string;                         (** sub-structure id (fact string) *)
  p_deleted : Relational.Stuple.Set.t;      (** its local deleted-set *)
  p_cost : float;                           (** its cost slice *)
  p_cert : cert_slice;                      (** its certificate slice *)
}

(** One forest-DP node, keyed by {!Relational.Stuple.to_string}. [fn_slack]
    is [cut_cost -. nocut_cost] at solve time for uncut nodes (how much
    preserved weight the subtree can lose before the decision flips),
    [0.0] on cut nodes. *)
type forest_node = {
  fn_parent : string option;
  fn_depth : int;
  fn_cut : bool;
  fn_value : float;
  fn_slack : float;
}

type forest_tree = {
  ft_pivot : string;
  ft_nodes : (string * forest_node) list;   (** increasing recorded depth *)
}

type structure =
  | Witness_groups
  | Forest of forest_tree list
  | Contributions

type t = {
  d_vtuples : int;
      (** live ‖V‖ of the solved shard — the approximate tier's splice
          guard re-derives the √‖V‖ threshold bucket from it *)
  d_parts : part list;
  d_structure : structure;
}

val structure_name : structure -> string
val pp : Format.formatter -> t -> unit
val pp_cert_slice : Format.formatter -> cert_slice -> unit

(** Stuple content key, [Relational.Stuple.to_string]. *)
val key : Relational.Stuple.t -> string

(** Per-candidate contribution parts for an approximate answer (one part
    per deleted stuple, costs disjoint and summing to the outcome cost). *)
val contributions :
  Provenance.t -> deleted:Relational.Stuple.Set.t -> cert:cert_slice -> part list

(** [restrict_forest tree ~surviving ~lost_end] — the {e restrict}
    operation for forest answers: project a recorded tree onto the
    fragment of nodes satisfying [surviving]. [lost_end] charges each
    preserved view tuple lost with the split to its recorded endpoint
    key. Checks that the projection replays to the identical cut
    frontier (lost regions carried no value; no surviving uncut node
    flips once the lost weight leaves its subtree) and returns the
    restricted tree with values and slacks discounted so chained splits
    restrict again; [Error reason] when any guard refuses. *)
val restrict_forest :
  forest_tree ->
  surviving:(string -> bool) ->
  lost_end:(string * float) list ->
  (forest_tree, string) result
