(** First-class solver abstraction.

    Every deletion-propagation algorithm is packaged as a module of this
    signature and registered here; {!Portfolio} and {!Planner} are thin
    policies over the registry (which solvers to run on which arena, in
    which order) rather than hardcoded fan-outs. *)

module type S = sig
  val name : string
  (** Registry key, e.g. ["primal-dual"]. *)

  val exact : bool
  (** Does a successful run return a provably optimal answer? *)

  val applicable : Arena.t -> bool
  (** Cheap structural test: can this solver possibly produce an answer
      on the instance? Used by the {!Planner} to classify shards; a
      solver whose [solve] returns [None] on inapplicable instances may
      conservatively answer [true]. *)

  val solve : ?budget:Budget.t -> Arena.t -> Solution.t option
  (** One attempt. [None] when inapplicable or infeasible under the
      solver's restriction; raises {!Budget.Expired} (or anything else)
      on failure — {!run} classifies. Implementations leave
      [elapsed_ms = 0.]; {!run} stamps the measured wall-clock. *)
end

type failure_reason =
  | Timed_out
  | Crashed of string

type failure = {
  algorithm : string;
  elapsed_ms : float;
  reason : failure_reason;
}

type attempt =
  | Solved of Solution.t
  | Inapplicable
  | Failed of failure

val pp_failure : Format.formatter -> failure -> unit

(** One classified attempt — no exception leaves this wrapper, so a
    crashing or timed-out solver never takes a round (or a pool worker)
    down with it. Crosses [Failpoint.hit ("solver." ^ name)] first and
    stamps the solution's [elapsed_ms] with the measured wall-clock
    ([Unix.gettimeofday]: process CPU time lies on parallel domains). *)
val run : ?budget:Budget.t -> (module S) -> Arena.t -> attempt

(** {2 Registry}

    Insertion-ordered; registering a name again replaces the entry in
    place (the order is observable — {!Solution.rank} is stable, so
    cost ties resolve to the earlier-registered solver). The built-in
    algorithms register themselves from {!Solvers}. *)

val register : (module S) -> unit
val find : string -> (module S) option
val all : unit -> (module S) list
val names : unit -> string list
