module R = Relational

type t = {
  deletes : R.Stuple.Set.t;
  inserts : R.Stuple.Set.t;
}

let empty = { deletes = R.Stuple.Set.empty; inserts = R.Stuple.Set.empty }

let is_empty t =
  R.Stuple.Set.is_empty t.deletes && R.Stuple.Set.is_empty t.inserts

let make ?(deletes = R.Stuple.Set.empty) ?(inserts = R.Stuple.Set.empty) () =
  { deletes; inserts }

let of_deletes deletes = { empty with deletes }
let of_inserts inserts = { empty with inserts }

let cardinal t = R.Stuple.Set.cardinal t.deletes + R.Stuple.Set.cardinal t.inserts

let pp ppf t =
  let pp_facts ppf s =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
      R.Stuple.pp ppf (R.Stuple.Set.elements s)
  in
  Format.fprintf ppf "@[<hv>-{%a}@ +{%a}@]" pp_facts t.deletes pp_facts t.inserts
