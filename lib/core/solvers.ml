module R = Relational
module Bitset = Setcover.Bitset

let solution ?decomposition ~name ~certificate deleted outcome =
  {
    Solution.algorithm = name;
    deleted;
    outcome;
    certificate;
    elapsed_ms = 0.0;
    decomposition;
  }

(* ---- decomposition plumbing ----

   Cost slicing shared by the structured tiers: charge each killed
   preserved view tuple to the sub-structure owning the content-minimal
   deleted member of its witness. Witness containment keeps a killed
   tuple's witness inside one witness group / one tree component, so the
   slices are disjoint and sum to the outcome cost. *)
let slice_costs prov ~owner_of ~deleted (outcome : Side_effect.outcome) =
  let weights = prov.Provenance.problem.Problem.weights in
  let acc : (string, float) Hashtbl.t = Hashtbl.create 16 in
  Vtuple.Set.iter
    (fun vt ->
      let hit = R.Stuple.Set.inter (Provenance.witness_of prov vt) deleted in
      match R.Stuple.Set.min_elt_opt hit with
      | None -> ()
      | Some st -> (
        match owner_of st with
        | None -> ()
        | Some label ->
          Hashtbl.replace acc label
            (Weights.get weights vt
            +. Option.value ~default:0.0 (Hashtbl.find_opt acc label))))
    outcome.Side_effect.side_effect;
  fun label -> Option.value ~default:0.0 (Hashtbl.find_opt acc label)

let brute_decomposition (a : Arena.t) (r : Brute.result) =
  let prov = a.Arena.prov in
  let groups = Brute.witness_groups prov in
  let member : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun g ->
      let label = Decomposition.key (R.Stuple.Set.min_elt g) in
      R.Stuple.Set.iter
        (fun st -> Hashtbl.replace member (Decomposition.key st) label)
        g)
    groups;
  let owner_of st = Hashtbl.find_opt member (Decomposition.key st) in
  let cost_of = slice_costs prov ~owner_of ~deleted:r.Brute.deletion r.Brute.outcome in
  {
    Decomposition.d_vtuples = Arena.live_vtuples a;
    d_parts =
      List.map
        (fun g ->
          let label = Decomposition.key (R.Stuple.Set.min_elt g) in
          {
            Decomposition.p_label = label;
            p_deleted = R.Stuple.Set.inter r.Brute.deletion g;
            p_cost = cost_of label;
            p_cert = Decomposition.Slice_exact;
          })
        groups;
    d_structure = Decomposition.Witness_groups;
  }

let dp_decomposition (a : Arena.t) (r : Dp_tree.result) =
  let prov = a.Arena.prov in
  let member : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (t : Decomposition.forest_tree) ->
      List.iter
        (fun (k, _) -> Hashtbl.replace member k t.Decomposition.ft_pivot)
        t.Decomposition.ft_nodes)
    r.Dp_tree.decomp;
  let owner_of st = Hashtbl.find_opt member (Decomposition.key st) in
  let cost_of = slice_costs prov ~owner_of ~deleted:r.Dp_tree.deletion r.Dp_tree.outcome in
  {
    Decomposition.d_vtuples = Arena.live_vtuples a;
    d_parts =
      List.map
        (fun (t : Decomposition.forest_tree) ->
          let label = t.Decomposition.ft_pivot in
          {
            Decomposition.p_label = label;
            p_deleted =
              R.Stuple.Set.filter
                (fun st -> owner_of st = Some label)
                r.Dp_tree.deletion;
            p_cost = cost_of label;
            p_cert = Decomposition.Slice_exact;
          })
        r.Dp_tree.decomp;
    d_structure = Decomposition.Forest r.Dp_tree.decomp;
  }

module Brute_force : Solver.S = struct
  let name = "brute"
  let exact = true
  let applicable _ = true

  let solve ?budget (a : Arena.t) =
    Brute.solve ?budget a.Arena.prov
    |> Option.map (fun (r : Brute.result) ->
           solution ~name ~certificate:Solution.Exact
             ~decomposition:(brute_decomposition a r)
             r.Brute.deletion r.Brute.outcome)
end

module Primal_dual_s : Solver.S = struct
  let name = "primal-dual"
  let exact = false
  let applicable _ = true

  let solve ?budget (a : Arena.t) =
    (* [Primal_dual.solve] minus the arena compile: full deletable set,
       nothing ignored *)
    match
      Primal_dual.solve_arena ?budget a
        ~deletable:(Bitset.full (Arena.num_stuples a))
        ~ignored_preserved:(Bitset.create (Arena.num_vtuples a))
    with
    | None -> None
    | Some r ->
      Some
        (solution ~name
           ~certificate:(Solution.Dual_bound r.Primal_dual.dual_value)
           ~decomposition:(Primal_dual.decomposition a ~deleted:r.Primal_dual.deletion)
           r.Primal_dual.deletion r.Primal_dual.outcome)
end

(* Theorem 4's ratio is 2τ* ≤ 2√‖V‖ with √‖V‖ the wide-pruning
   threshold; with a caller-imposed threshold the same analysis gives
   2 * threshold. A budget-truncated sweep is only anytime — ratio
   void. *)
let lowdeg_module ~name ~wide_threshold : (module Solver.S) =
  (module struct
    let name = name
    let exact = false
    let applicable _ = true

    let solve ?budget (a : Arena.t) =
      let threshold =
        match wide_threshold with
        | Some t -> t
        | None -> Lowdeg.default_wide_threshold a
      in
      let r = Lowdeg.solve_arena ~wide_threshold:threshold ?budget a in
      let cert =
        if r.Lowdeg.complete then Solution.Ratio (2.0 *. threshold)
        else Solution.Anytime
      in
      Some
        (solution ~name ~certificate:cert
           ~decomposition:(Lowdeg.decomposition a r)
           r.Lowdeg.deletion r.Lowdeg.outcome)
  end)

let lowdeg ?(name = "lowdeg-global") ~wide_threshold () =
  lowdeg_module ~name ~wide_threshold:(Some wide_threshold)

module Dp_tree_s : Solver.S = struct
  let name = "dp-tree"
  let exact = true
  let applicable (a : Arena.t) = Dp_tree.applicable a.Arena.prov

  let solve ?budget (a : Arena.t) =
    match Dp_tree.solve ?budget a.Arena.prov with
    | Ok r ->
      Some
        (solution ~name ~certificate:Solution.Exact
           ~decomposition:(dp_decomposition a r)
           r.Dp_tree.deletion r.Dp_tree.outcome)
    | Error _ -> None
end

module General_s : Solver.S = struct
  let name = "general"
  let exact = false
  let applicable _ = true

  let solve ?budget (a : Arena.t) =
    General_approx.solve ?budget a.Arena.prov
    |> Option.map (fun (r : General_approx.result) ->
           solution ~name
             ~certificate:(Solution.Ratio r.General_approx.claimed_bound)
             ~decomposition:(Primal_dual.decomposition a ~deleted:r.General_approx.deletion)
             r.General_approx.deletion r.General_approx.outcome)
end

module Greedy_s : Solver.S = struct
  let name = "greedy"
  let exact = false
  let applicable _ = true

  let solve ?budget:_ (a : Arena.t) =
    let r = Single_query.solve_greedy_multi a.Arena.prov in
    Some
      (solution ~name ~certificate:Solution.Heuristic
         ~decomposition:(Primal_dual.decomposition a ~deleted:r.Single_query.deletion)
         r.Single_query.deletion r.Single_query.outcome)
end

let () =
  List.iter Solver.register
    [
      (module Brute_force : Solver.S);
      (module Primal_dual_s);
      lowdeg_module ~name:"lowdeg" ~wide_threshold:None;
      (module Dp_tree_s);
      (module General_s);
      (module Greedy_s);
    ]

let registered () = Solver.all ()
