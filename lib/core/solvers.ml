module Bitset = Setcover.Bitset

let solution ~name ~certificate deleted outcome =
  { Solution.algorithm = name; deleted; outcome; certificate; elapsed_ms = 0.0 }

module Brute_force : Solver.S = struct
  let name = "brute"
  let exact = true
  let applicable _ = true

  let solve ?budget (a : Arena.t) =
    Brute.solve ?budget a.Arena.prov
    |> Option.map (fun (r : Brute.result) ->
           solution ~name ~certificate:Solution.Exact r.Brute.deletion r.Brute.outcome)
end

module Primal_dual_s : Solver.S = struct
  let name = "primal-dual"
  let exact = false
  let applicable _ = true

  let solve ?budget (a : Arena.t) =
    (* [Primal_dual.solve] minus the arena compile: full deletable set,
       nothing ignored *)
    match
      Primal_dual.solve_arena ?budget a
        ~deletable:(Bitset.full (Arena.num_stuples a))
        ~ignored_preserved:(Bitset.create (Arena.num_vtuples a))
    with
    | None -> None
    | Some r ->
      Some
        (solution ~name
           ~certificate:(Solution.Dual_bound r.Primal_dual.dual_value)
           r.Primal_dual.deletion r.Primal_dual.outcome)
end

(* Theorem 4's ratio is 2τ* ≤ 2√‖V‖ with √‖V‖ the wide-pruning
   threshold; with a caller-imposed threshold the same analysis gives
   2 * threshold. A budget-truncated sweep is only anytime — ratio
   void. *)
let lowdeg_module ~name ~wide_threshold : (module Solver.S) =
  (module struct
    let name = name
    let exact = false
    let applicable _ = true

    let solve ?budget (a : Arena.t) =
      let threshold =
        match wide_threshold with
        | Some t -> t
        | None -> Lowdeg.default_wide_threshold a
      in
      let r = Lowdeg.solve_arena ~wide_threshold:threshold ?budget a in
      let cert =
        if r.Lowdeg.complete then Solution.Ratio (2.0 *. threshold)
        else Solution.Anytime
      in
      Some (solution ~name ~certificate:cert r.Lowdeg.deletion r.Lowdeg.outcome)
  end)

let lowdeg ?(name = "lowdeg-global") ~wide_threshold () =
  lowdeg_module ~name ~wide_threshold:(Some wide_threshold)

module Dp_tree_s : Solver.S = struct
  let name = "dp-tree"
  let exact = true
  let applicable (a : Arena.t) = Dp_tree.applicable a.Arena.prov

  let solve ?budget (a : Arena.t) =
    match Dp_tree.solve ?budget a.Arena.prov with
    | Ok r -> Some (solution ~name ~certificate:Solution.Exact r.Dp_tree.deletion r.Dp_tree.outcome)
    | Error _ -> None
end

module General_s : Solver.S = struct
  let name = "general"
  let exact = false
  let applicable _ = true

  let solve ?budget (a : Arena.t) =
    General_approx.solve ?budget a.Arena.prov
    |> Option.map (fun (r : General_approx.result) ->
           solution ~name
             ~certificate:(Solution.Ratio r.General_approx.claimed_bound)
             r.General_approx.deletion r.General_approx.outcome)
end

module Greedy_s : Solver.S = struct
  let name = "greedy"
  let exact = false
  let applicable _ = true

  let solve ?budget:_ (a : Arena.t) =
    let r = Single_query.solve_greedy_multi a.Arena.prov in
    Some
      (solution ~name ~certificate:Solution.Heuristic r.Single_query.deletion
         r.Single_query.outcome)
end

let () =
  List.iter Solver.register
    [
      (module Brute_force : Solver.S);
      (module Primal_dual_s);
      lowdeg_module ~name:"lowdeg" ~wide_threshold:None;
      (module Dp_tree_s);
      (module General_s);
      (module Greedy_s);
    ]

let registered () = Solver.all ()
