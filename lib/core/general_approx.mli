(** The general-case approximation (§IV.A, Claim 1).

    Reduce view side-effect to Red-Blue Set Cover (one set per tuple
    joined into the views, §IV.A (a)–(c)), run Peleg's LowDeg algorithm,
    and map the cover back to a source deletion. The reduction preserves
    feasibility and cost, so the RBSC ratio transfers:
    [O(2·sqrt(l · ‖V‖ · log ‖ΔV‖))]. *)

type result = {
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;
  claimed_bound : float;
      (** Claim 1's ratio [2·sqrt(l · ‖V‖ · log ‖ΔV‖)] for this
          instance — experiments compare measured ratio against it. *)
}

(** [budget] is ticked before the reduction and once per greedy /
    threshold step inside the RBSC solvers; on expiry the run unwinds
    with {!Budget.Expired}. *)
val solve : ?budget:Budget.t -> Provenance.t -> result option

(** The bound alone. *)
val bound : Problem.t -> float
