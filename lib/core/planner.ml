module R = Relational
module Bitset = Setcover.Bitset

let src = Logs.Src.create "deleprop.planner" ~doc:"shatter-and-plan solver"

module Log = (val Logs.src_log src : Logs.LOG)

type classification =
  | Exact_small
  | Exact_forest
  | Approximate

type shard_decision = {
  component : int;
  stuples : int;
  vtuples : int;
  bad : int;
  classification : classification;
  winner : string;
  cost : float;
  exact : bool;
  degraded : bool;
}

type report = {
  solutions : Solution.t list;
  failures : Portfolio.failure list;
  degraded : bool;
  decomposed : bool;
  shards : shard_decision list;
}

let pp_classification ppf = function
  | Exact_small -> Format.fprintf ppf "exact-small"
  | Exact_forest -> Format.fprintf ppf "exact-forest"
  | Approximate -> Format.fprintf ppf "approximate"

let pp_shard_decision ppf d =
  Format.fprintf ppf
    "component %d (%d tuples, %d views, %d bad): %a -> %s, cost %g%s%s"
    d.component d.stuples d.vtuples d.bad pp_classification d.classification
    d.winner d.cost
    (if d.exact then " (exact)" else "")
    (if d.degraded then " [degraded]" else "")

(* One shard, solved through the tier ladder. Each tier is a restricted
   portfolio round on the shard arena (sequential — the fan-out across
   shards already owns the parallelism); a tier whose solvers all fail
   passes its recorded failures down to the next. *)
let solve_shard ~exact_threshold ~only ~budget_ms ~wide_global
    (sh : Arena.shard) =
  let sa = sh.Arena.arena in
  let allowed name =
    match only with None -> true | Some names -> List.mem name names
  in
  let run ?extra names =
    Portfolio.solutions_report ~exact_threshold ~only:names ?extra
      ?budget_ms sa
  in
  let approx () =
    let extra =
      if allowed "lowdeg" then [ Solvers.lowdeg ~wide_threshold:wide_global () ]
      else []
    in
    run ~extra
      (List.filter allowed [ "primal-dual"; "lowdeg"; "general"; "greedy" ])
  in
  let tiers =
    (if allowed "brute"
        && Array.length (Arena.candidate_ids sa) <= exact_threshold
     then [ (Exact_small, fun () -> run [ "brute" ]) ]
     else [])
    @ (if allowed "dp-tree" && Dp_tree.applicable sa.Arena.prov then
         [ (Exact_forest, fun () -> run [ "dp-tree" ]) ]
       else [])
    @ [ (Approximate, approx) ]
  in
  let rec attempt acc = function
    | [] -> assert false
    | [ (cls, f) ] ->
      let r = f () in
      (cls, { r with Portfolio.failures = acc @ r.Portfolio.failures })
    | (cls, f) :: rest ->
      let r = f () in
      if r.Portfolio.solutions <> [] && not r.Portfolio.degraded then
        (cls, { r with Portfolio.failures = acc @ r.Portfolio.failures })
      else attempt (acc @ r.Portfolio.failures) rest
  in
  attempt [] tiers

(* Guarantee composition: the optimum of an independent-component
   instance is the sum of the shard optima, so the union's cost is
   within max_c factor_c of it. A primal-dual shard carries a
   multiplicative factor only on forest instances (Theorem 3's l). *)
let factor_of ~l (sh : Arena.shard) (w : Solution.t) =
  match w.Solution.certificate with
  | Solution.Exact -> Some 1.0
  | Solution.Ratio r -> Some r
  | Solution.Dual_bound _ ->
    if sh.Arena.arena.Arena.forest_case then Some l else None
  | Solution.Heuristic | Solution.Anytime | Solution.Composite _ -> None

let solve ?(exact_threshold = 16) ?only ?domains ?pool ?budget_ms
    ?(decompose = true) ?partition (a : Arena.t) =
  let whole () =
    let r =
      Portfolio.solutions_report ~exact_threshold ?only ?domains ?pool
        ?budget_ms a
    in
    { solutions = r.Portfolio.solutions; failures = r.Portfolio.failures;
      degraded = r.Portfolio.degraded; decomposed = false; shards = [] }
  in
  if not decompose then whole ()
  else
    let shards = Arena.shatter ?partition a in
    let n = Array.length shards in
    if n <= 1 then whole ()
    else begin
      let t0 = Unix.gettimeofday () in
      let shard_budget =
        Option.map (fun ms -> ms /. float_of_int n) budget_ms
      in
      let wide_global = Lowdeg.default_wide_threshold a in
      let task =
        solve_shard ~exact_threshold ~only ~budget_ms:shard_budget ~wide_global
      in
      let shard_list = Array.to_list shards in
      let results =
        match (domains, pool) with
        | None, None -> List.map (fun sh -> Ok (task sh)) shard_list
        | _ -> Par.map_result ?domains ?pool task shard_list
      in
      let solved =
        List.map2
          (fun sh -> function
            | Error e ->
              Log.warn (fun m ->
                  m "shard %d crashed outside the solver wrapper: %s"
                    sh.Arena.component (Printexc.to_string e));
              None
            | Ok (cls, (r : Portfolio.report)) -> (
              match r.Portfolio.solutions with
              | [] ->
                Log.warn (fun m ->
                    m "shard %d produced no feasible answer" sh.Arena.component);
                None
              | w :: _ -> Some (sh, cls, w, r)))
          shard_list results
      in
      if List.exists Option.is_none solved then begin
        (* an unsolved shard would make the union infeasible — retreat to
           the whole instance rather than return garbage *)
        Log.warn (fun m -> m "decomposed solve incomplete; retrying whole");
        whole ()
      end
      else
        let solved = List.filter_map Fun.id solved in
        let decisions =
          List.map
            (fun (sh, cls, (w : Solution.t), (r : Portfolio.report)) ->
              { component = sh.Arena.component;
                stuples = Arena.num_stuples sh.Arena.arena;
                vtuples = Arena.num_vtuples sh.Arena.arena;
                bad = Bitset.cardinal sh.Arena.arena.Arena.bad;
                classification = cls; winner = w.Solution.algorithm;
                cost = Solution.cost w;
                exact = (w.Solution.certificate = Solution.Exact);
                degraded = r.Portfolio.degraded })
            solved
        in
        let deleted =
          List.fold_left
            (fun acc (_, _, (w : Solution.t), _) ->
              R.Stuple.Set.union acc w.Solution.deleted)
            R.Stuple.Set.empty solved
        in
        let outcome = Side_effect.eval a.Arena.prov deleted in
        let l = float_of_int (Problem.max_arity a.Arena.prov.Provenance.problem) in
        let factor =
          List.fold_left
            (fun acc (sh, _, w, _) ->
              match (acc, factor_of ~l sh w) with
              | Some f, Some g -> Some (Float.max f g)
              | _ -> None)
            (Some 1.0) solved
        in
        let composite =
          { Solution.algorithm = "planner"; deleted; outcome;
            elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
            certificate = Solution.Composite { shards = n; factor } }
        in
        { solutions = [ composite ];
          failures =
            List.concat_map (fun (_, _, _, r) -> r.Portfolio.failures) solved;
          degraded = List.exists (fun (d : shard_decision) -> d.degraded) decisions;
          decomposed = true; shards = decisions }
    end
