module R = Relational
module Bitset = Setcover.Bitset

let src = Logs.Src.create "deleprop.planner" ~doc:"shatter-and-plan solver"

module Log = (val Logs.src_log src : Logs.LOG)

type classification =
  | Exact_small
  | Exact_forest
  | Approximate

type shard_decision = {
  component : int;
  stuples : int;
  vtuples : int;
  bad : int;
  classification : classification;
  winner : string;
  cost : float;
  exact : bool;
  degraded : bool;
  cached : bool;
  fingerprint : Fingerprint.t option;
      (* the shard's cache key, when the answer entered (or came from)
         the shard cache — what the engine's component memos record for
         split-aware reuse *)
}

type report = {
  solutions : Solution.t list;
  failures : Portfolio.failure list;
  degraded : bool;
  decomposed : bool;
  shards : shard_decision list;
  shards_cached : int;
}

let pp_classification ppf = function
  | Exact_small -> Format.fprintf ppf "exact-small"
  | Exact_forest -> Format.fprintf ppf "exact-forest"
  | Approximate -> Format.fprintf ppf "approximate"

let pp_shard_decision ppf d =
  Format.fprintf ppf
    "component %d (%d tuples, %d views, %d bad): %a -> %s, cost %g%s%s%s"
    d.component d.stuples d.vtuples d.bad pp_classification d.classification
    d.winner d.cost
    (if d.exact then " (exact)" else "")
    (if d.degraded then " [degraded]" else "")
    (if d.cached then " [cached]" else "")

(* ---- shard solution cache ---- *)

(* What a future round needs to splice a clean shard's answer back in
   without re-running any solver: the decision fields plus the deleted
   set (for the union) and the certificate (for the composite factor).
   The shard outcome itself is never stored — the composite's outcome is
   re-evaluated on the whole arena each round anyway. *)
type cache_entry = {
  e_classification : classification;
  e_winner : string;
  e_deleted : R.Stuple.Set.t;
  e_cost : float;
  e_certificate : Solution.certificate;
  e_forest : bool;
      (* the shard arena's forest_case flag — needed to recompose the
         guarantee factor without materializing the shard *)
  e_threshold : float;
      (* the parent instance's √‖V‖ wide-pruning threshold at solve
         time — the one solver input that is *not* a function of the
         shard's own content *)
  e_split : bool;
      (* seeded by [seed_fragments] (a restriction of a solved parent
         entry onto a surviving fragment) rather than solved directly —
         splicing such an entry counts as a fragment reuse *)
  e_decomposition : Decomposition.t option;
      (* the winner's per-sub-structure decomposition, recorded at solve
         time — what [seed_fragments] projects onto a surviving fragment
         for the forest and approximate tiers. [None] on entries loaded
         from v2 snapshots (and on nothing else): such entries still
         splice normally but are ineligible for forest/approximate
         fragment seeding. *)
}

type cache = {
  lru : (Fingerprint.t, cache_entry) Setcover.Lru.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
      (* approximate-tier entries dropped by proactive bucket eviction *)
  mutable last_bucket : int option;
      (* the parent √‖V‖ threshold bucket the cache last solved under —
         a drift triggers the eviction sweep *)
  mutable fragment_reuses : int;
      (* spliced entries that were seeded by fragment restriction rather
         than solved — the payoff counter for split-aware reuse *)
  mutable fragment_reuses_exact : int;
  mutable fragment_reuses_forest : int;
  mutable fragment_reuses_approx : int;
      (* [fragment_reuses] split by the seeded entry's tier *)
}

let create_cache ?(capacity = 512) () =
  { lru = Setcover.Lru.create ~capacity; hits = 0; misses = 0; evictions = 0;
    last_bucket = None; fragment_reuses = 0; fragment_reuses_exact = 0;
    fragment_reuses_forest = 0; fragment_reuses_approx = 0 }

let cache_length c = Setcover.Lru.length c.lru
let cache_hits c = c.hits
let cache_misses c = c.misses
let cache_evictions c = c.evictions
let cache_fragment_reuses c = c.fragment_reuses
let cache_fragment_reuses_exact c = c.fragment_reuses_exact
let cache_fragment_reuses_forest c = c.fragment_reuses_forest
let cache_fragment_reuses_approx c = c.fragment_reuses_approx

let cache_clear c =
  Setcover.Lru.clear c.lru;
  c.last_bucket <- None

(* ---- snapshot hooks (crash-consistent warm recovery) ----

   A cache's observable state is plain data: the (fingerprint, entry)
   bindings in recency order plus the four counters. The engine's
   snapshot codec serializes exactly this pair and a recovered session
   restores it, so a re-warmed cache is bit-identical to the live one it
   was written from — including future eviction order and the lifetime
   hit counters the stats report. *)

type cache_stats = {
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_last_bucket : int option;
  s_fragment_reuses : int;
  s_fragment_reuses_exact : int;
  s_fragment_reuses_forest : int;
  s_fragment_reuses_approx : int;
}

let cache_stats c =
  { s_hits = c.hits; s_misses = c.misses; s_evictions = c.evictions;
    s_last_bucket = c.last_bucket; s_fragment_reuses = c.fragment_reuses;
    s_fragment_reuses_exact = c.fragment_reuses_exact;
    s_fragment_reuses_forest = c.fragment_reuses_forest;
    s_fragment_reuses_approx = c.fragment_reuses_approx }

(* most-recently-used first ([Lru.fold] visits MRU first and cons
   reverses, so rev restores visit order) *)
let cache_entries c =
  List.rev (Setcover.Lru.fold (fun fp e acc -> (fp, e) :: acc) c.lru [])

(* [entries] MRU-first, as [cache_entries] returns them: adding in
   reverse (LRU-first) rebuilds the same recency chain. Bindings beyond
   the capacity simply evict in order, so restoring into a smaller cache
   keeps the most recent ones. *)
let cache_restore ?stats c entries =
  Setcover.Lru.clear c.lru;
  List.iter (fun (fp, e) -> Setcover.Lru.add c.lru fp e) (List.rev entries);
  match stats with
  | None -> ()
  | Some s ->
    c.hits <- s.s_hits;
    c.misses <- s.s_misses;
    c.evictions <- s.s_evictions;
    c.last_bucket <- s.s_last_bucket;
    c.fragment_reuses <- s.s_fragment_reuses;
    c.fragment_reuses_exact <- s.s_fragment_reuses_exact;
    c.fragment_reuses_forest <- s.s_fragment_reuses_forest;
    c.fragment_reuses_approx <- s.s_fragment_reuses_approx

(* The LowDeg wide-pruning test is [float_of_int width > threshold]
   over integer widths, so two thresholds with the same floor prune
   identically: the effective cutoff is ⌊t⌋ + 1 either way. *)
let threshold_bucket t = int_of_float (Float.floor t)

(* Proactive threshold-bucket eviction: when the parent √‖V‖ bucket
   drifts, every approximate-tier entry solved under the old bucket is
   dead weight — [entry_reusable] would skip it at splice time anyway,
   but until then it occupies an LRU slot a live entry could use. One
   sweep per drift (not per round: [last_bucket] latches). Exact-tier
   entries never saw the threshold and stay. *)
let evict_stale_buckets c ~wide_global =
  let bucket = threshold_bucket wide_global in
  match c.last_bucket with
  | Some b when b = bucket -> ()
  | _ ->
    c.last_bucket <- Some bucket;
    let stale =
      Setcover.Lru.fold
        (fun fp e acc ->
          match e.e_classification with
          | Approximate when threshold_bucket e.e_threshold <> bucket ->
            fp :: acc
          | _ -> acc)
        c.lru []
    in
    List.iter
      (fun fp ->
        Setcover.Lru.remove c.lru fp;
        c.evictions <- c.evictions + 1)
      stale;
    if stale <> [] then
      Log.debug (fun m ->
          m "threshold bucket drifted to %d: evicted %d stale entr(ies)" bucket
            (List.length stale))

(* May [e] stand in for re-solving its shard under the current parent
   threshold? Exact tiers never saw the threshold; the approximate tier
   ran the parent-threshold LowDeg variant, whose *behaviour* (hence
   every solver's cost and the ranking) depends only on the threshold
   bucket. Its Ratio certificate quotes the exact float, but that is
   rewritten on reuse (see [entry_certificate]). *)
let entry_reusable ~wide_global e =
  match e.e_classification with
  | Exact_small | Exact_forest -> true
  | Approximate ->
    threshold_bucket e.e_threshold = threshold_bucket wide_global

(* the parent-threshold LowDeg variant certifies Ratio (2 · threshold)
   with the parent's exact float — a fresh solve under an equal-bucket
   threshold returns the same deletion at the same cost but quotes the
   *current* float, so splicing rewrites the certificate to match *)
let entry_certificate ~wide_global e =
  match e.e_certificate with
  | Solution.Ratio _ when String.equal e.e_winner "lowdeg-global" ->
    Solution.Ratio (2.0 *. wide_global)
  | c -> c

(* One shard, solved through the tier ladder. Each tier is a restricted
   portfolio round on the shard arena (sequential — the fan-out across
   shards already owns the parallelism); a tier whose solvers all fail
   passes its recorded failures down to the next. *)
let solve_shard ~exact_threshold ~only ~budget_ms ~wide_global
    (sh : Arena.shard) =
  let sa = sh.Arena.arena in
  let allowed name =
    match only with None -> true | Some names -> List.mem name names
  in
  let run ?extra names =
    Portfolio.solutions_report ~exact_threshold ~only:names ?extra
      ?budget_ms sa
  in
  let approx () =
    let extra =
      if allowed "lowdeg" then [ Solvers.lowdeg ~wide_threshold:wide_global () ]
      else []
    in
    run ~extra
      (List.filter allowed [ "primal-dual"; "lowdeg"; "general"; "greedy" ])
  in
  let tiers =
    (if allowed "brute"
        && Array.length (Arena.candidate_ids sa) <= exact_threshold
     then [ (Exact_small, fun () -> run [ "brute" ]) ]
     else [])
    @ (if allowed "dp-tree" && Dp_tree.applicable sa.Arena.prov then
         [ (Exact_forest, fun () -> run [ "dp-tree" ]) ]
       else [])
    @ [ (Approximate, approx) ]
  in
  let rec attempt acc = function
    | [] -> assert false
    | [ (cls, f) ] ->
      let r = f () in
      (cls, { r with Portfolio.failures = acc @ r.Portfolio.failures })
    | (cls, f) :: rest ->
      let r = f () in
      if r.Portfolio.solutions <> [] && not r.Portfolio.degraded then
        (cls, { r with Portfolio.failures = acc @ r.Portfolio.failures })
      else attempt (acc @ r.Portfolio.failures) rest
  in
  attempt [] tiers

(* a shard's answer as the recombination step consumes it — either
   freshly solved or spliced from the cache (which never pays for
   [Arena.materialize], so only plain data crosses this interface) *)
type shard_result = {
  r_component : int;
  r_stuples : int;
  r_vtuples : int;
  r_bad : int;
  r_forest : bool;
  r_classification : classification;
  r_winner : string;
  r_deleted : R.Stuple.Set.t;
  r_cost : float;
  r_certificate : Solution.certificate;
  r_degraded : bool;
  r_failures : Portfolio.failure list;
  r_cached : bool;
  r_fingerprint : Fingerprint.t option;
}

(* Only deterministic answers may be memoized: a degraded ladder, an
   [Anytime] certificate or any recorded timeout/crash means the budget
   shaped the result, and a replay under different load could differ. *)
let cacheable (r : Portfolio.report) (w : Solution.t) =
  (not r.Portfolio.degraded)
  && r.Portfolio.failures = []
  && w.Solution.certificate <> Solution.Anytime

(* Guarantee composition: the optimum of an independent-component
   instance is the sum of the shard optima, so the union's cost is
   within max_c factor_c of it. A primal-dual shard carries a
   multiplicative factor only on forest instances (Theorem 3's l). *)
let factor_of ~l ~forest (cert : Solution.certificate) =
  match cert with
  | Solution.Exact -> Some 1.0
  | Solution.Ratio r -> Some r
  | Solution.Dual_bound _ -> if forest then Some l else None
  | Solution.Heuristic | Solution.Anytime | Solution.Composite _ -> None

let solve ?(exact_threshold = 16) ?only ?domains ?pool ?budget_ms
    ?(decompose = true) ?partition ?index ?cache ?dirty (a : Arena.t) =
  let whole () =
    (* the whole-instance portfolio iterates the physical arrays, so a
       tombstoned arena compacts first (the identity otherwise) *)
    let a = Arena.compact a in
    let r =
      Portfolio.solutions_report ~exact_threshold ?only ?domains ?pool
        ?budget_ms a
    in
    { solutions = r.Portfolio.solutions; failures = r.Portfolio.failures;
      degraded = r.Portfolio.degraded; decomposed = false; shards = [];
      shards_cached = 0 }
  in
  if not decompose then whole ()
  else
    (* [index] enumerates active components in O(‖ΔV‖ + active) off the
       live rosters; the sweep path walks the full comp arrays. Both
       produce bit-identical proto-shards (lockstep-tested). *)
    let protos =
      match index with
      | Some ix -> Component_index.active ix a
      | None -> Arena.active_components ?partition a
    in
    let n = Array.length protos in
    (* n = 1 routes through the shard pipeline like any other round: the
       single active component still fingerprints into the shard cache
       (and gets the whole budget), so sessions whose instance shatters
       into one component are no longer locked out of memoization *)
    if n = 0 then whole ()
    else begin
      let t0 = Unix.gettimeofday () in
      let wide_global = Lowdeg.default_wide_threshold a in
      (match cache with
      | Some c -> evict_stale_buckets c ~wide_global
      | None -> ());
      let is_dirty =
        match (cache, dirty) with
        | None, _ -> fun _ -> true   (* no cache: nothing to splice from *)
        | Some _, None -> fun _ -> true
        | Some _, Some f -> f
      in
      let bad_of (ps : Arena.proto_shard) =
        Array.fold_left
          (fun k gvid -> if Bitset.mem a.Arena.bad gvid then k + 1 else k)
          0 ps.Arena.p_vids
      in
      (* Consult the cache for clean shards only — dirty components
         re-solve unconditionally, so a fingerprint collision can only
         matter on a component no delta has touched since it was last
         solved (where the entry is right by construction). A hit costs
         one parent-side hash ([Fingerprint.shard]); the shard is never
         materialized. *)
      let splice (ps : Arena.proto_shard) =
        match cache with
        | None -> None
        | Some c ->
          if is_dirty ps.Arena.p_component then None
          else begin
            let fp = Fingerprint.shard a ps in
            match Setcover.Lru.find c.lru fp with
            | Some e when entry_reusable ~wide_global e ->
              c.hits <- c.hits + 1;
              if e.e_split then begin
                c.fragment_reuses <- c.fragment_reuses + 1;
                match e.e_classification with
                | Exact_small ->
                  c.fragment_reuses_exact <- c.fragment_reuses_exact + 1
                | Exact_forest ->
                  c.fragment_reuses_forest <- c.fragment_reuses_forest + 1
                | Approximate ->
                  c.fragment_reuses_approx <- c.fragment_reuses_approx + 1
              end;
              Some
                { r_component = ps.Arena.p_component;
                  r_stuples = Array.length ps.Arena.p_sids;
                  r_vtuples = Array.length ps.Arena.p_vids;
                  r_bad = bad_of ps; r_forest = e.e_forest;
                  r_classification = e.e_classification;
                  r_winner = e.e_winner; r_deleted = e.e_deleted;
                  r_cost = e.e_cost;
                  r_certificate = entry_certificate ~wide_global e;
                  r_degraded = false; r_failures = []; r_cached = true;
                  r_fingerprint = Some fp }
            | _ ->
              c.misses <- c.misses + 1;
              None
          end
      in
      let proto_list = Array.to_list protos in
      let spliced = List.map splice proto_list in
      let to_solve =
        List.filter_map
          (fun (ps, s) -> match s with None -> Some ps | Some _ -> None)
          (List.combine proto_list spliced)
      in
      (* the budget splits across the shards actually being re-solved —
         a spliced shard consumes no wall-clock, so its share belongs to
         the fresh solves, not to an idle slot *)
      let shard_budget =
        Option.map
          (fun ms -> ms /. float_of_int (max 1 (List.length to_solve)))
          budget_ms
      in
      (* materialization (restrict + build) happens inside the task, so
         the fan-out parallelizes it along with the solving — and clean
         shards never pay it at all *)
      let task ps =
        let sh = Arena.materialize a ps in
        let cls, r =
          solve_shard ~exact_threshold ~only ~budget_ms:shard_budget
            ~wide_global sh
        in
        (sh, cls, r)
      in
      let fresh_results =
        match (domains, pool) with
        | None, None -> List.map (fun ps -> Ok (task ps)) to_solve
        | _ -> Par.map_result ?domains ?pool task to_solve
      in
      (* re-assemble in shard order: each missing slot takes the next
         fresh result; solved shards feed the cache as they land *)
      let fresh = ref fresh_results in
      let solved =
        List.map2
          (fun (ps : Arena.proto_shard) -> function
            | Some r -> Some r
            | None -> (
              let result =
                match !fresh with
                | r :: tl ->
                  fresh := tl;
                  r
                | [] -> assert false
              in
              match result with
              | Error e ->
                Log.warn (fun m ->
                    m "shard %d crashed outside the solver wrapper: %s"
                      ps.Arena.p_component (Printexc.to_string e));
                None
              | Ok (sh, cls, (r : Portfolio.report)) -> (
                match r.Portfolio.solutions with
                | [] ->
                  Log.warn (fun m ->
                      m "shard %d produced no feasible answer"
                        ps.Arena.p_component);
                  None
                | w :: _ ->
                  let forest = sh.Arena.arena.Arena.forest_case in
                  let fp =
                    match cache with
                    | Some c when cacheable r w ->
                      let fp = Fingerprint.arena sh.Arena.arena in
                      Setcover.Lru.add c.lru fp
                        { e_classification = cls;
                          e_winner = w.Solution.algorithm;
                          e_deleted = w.Solution.deleted;
                          e_cost = Solution.cost w;
                          e_certificate = w.Solution.certificate;
                          e_forest = forest; e_threshold = wide_global;
                          e_split = false;
                          e_decomposition = w.Solution.decomposition };
                      Some fp
                    | _ -> None
                  in
                  Some
                    { r_component = ps.Arena.p_component;
                      r_stuples = Arena.num_stuples sh.Arena.arena;
                      r_vtuples = Arena.num_vtuples sh.Arena.arena;
                      r_bad = Bitset.cardinal sh.Arena.arena.Arena.bad;
                      r_forest = forest; r_classification = cls;
                      r_winner = w.Solution.algorithm;
                      r_deleted = w.Solution.deleted;
                      r_cost = Solution.cost w;
                      r_certificate = w.Solution.certificate;
                      r_degraded = r.Portfolio.degraded;
                      r_failures = r.Portfolio.failures; r_cached = false;
                      r_fingerprint = fp }))
          )
          proto_list spliced
      in
      if List.exists Option.is_none solved then begin
        (* an unsolved shard would make the union infeasible — retreat to
           the whole instance rather than return garbage *)
        Log.warn (fun m -> m "decomposed solve incomplete; retrying whole");
        whole ()
      end
      else
        let solved = List.filter_map Fun.id solved in
        let decisions =
          List.map
            (fun r ->
              { component = r.r_component; stuples = r.r_stuples;
                vtuples = r.r_vtuples; bad = r.r_bad;
                classification = r.r_classification; winner = r.r_winner;
                cost = r.r_cost;
                exact = (r.r_certificate = Solution.Exact);
                degraded = r.r_degraded; cached = r.r_cached;
                fingerprint = r.r_fingerprint })
            solved
        in
        let deleted =
          List.fold_left
            (fun acc r -> R.Stuple.Set.union acc r.r_deleted)
            R.Stuple.Set.empty solved
        in
        let outcome = Side_effect.eval a.Arena.prov deleted in
        let l = float_of_int (Problem.max_arity a.Arena.prov.Provenance.problem) in
        let factor =
          List.fold_left
            (fun acc r ->
              match (acc, factor_of ~l ~forest:r.r_forest r.r_certificate) with
              | Some f, Some g -> Some (Float.max f g)
              | _ -> None)
            (Some 1.0) solved
        in
        let composite =
          { Solution.algorithm = "planner"; deleted; outcome;
            elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
            certificate = Solution.Composite { shards = n; factor };
            (* the per-shard decompositions live in the cache entries;
               the composite itself is never cached *)
            decomposition = None }
        in
        let n_cached =
          List.length (List.filter (fun r -> r.r_cached) solved)
        in
        { solutions = [ composite ];
          failures = List.concat_map (fun r -> r.r_failures) solved;
          degraded = List.exists (fun (d : shard_decision) -> d.degraded) decisions;
          decomposed = true; shards = decisions; shards_cached = n_cached }
    end

(* ---- split-aware fragment seeding ----

   When a committed deletion shatters a component, the fragment that
   still holds the memoized request's ΔV may be solvable by restriction
   of the parent's cached entry — re-keyed under the fragment's
   fingerprint without running a solver. All three tiers participate,
   each under its own soundness guards on top of the shared ones (ΔV
   intact and confined to one fragment with a live roster). The two
   *identity* tiers additionally demand that no killed view tuple's
   witness meets the candidate set — their deleted sets live inside the
   candidates, so an untouched neighborhood pins the answer's cost in
   place; the forest tier instead *replays* killed weight through its
   recorded tree, so it tolerates deletions the identity tiers refuse:

   + [Exact_small]: the brute enumeration is a function of the candidate
     set, the bad view tuples and the candidate-incident preserved
     tuples — all of which survive verbatim — so the parent entry *is*
     the fragment's answer (identity restriction).

   + [Exact_forest]: the recorded {!Decomposition.forest_tree} is
     projected through {!Decomposition.restrict_forest}: lost preserved
     endpoint weight is discounted down the recorded tree and every
     surviving uncut node must retain enough recorded slack that its
     cut/no-cut decision cannot flip; the fragment must also keep the
     parent's pivot as the content-minimal common witness member so a
     fresh solve would root identically. The entry's cost shrinks by
     the pivot's replayed discount — killed preserved weight under the
     recorded cut frontier is already gone on the fragment.

   + [Approximate]: identity restriction, additionally requiring that
     the fragment's √‖V‖ bucket equals the parent shard's recorded one
     (so the shard-local LowDeg sweep prunes identically), that the
     fragment is not forest-DP applicable (a fresh solve would change
     tier), and that the winner's certificate is rewritable — "general"
     is excluded because its ratio reads the restricted instance's
     sizes; a winning "lowdeg" [Ratio] is rewritten to the fragment's
     own [2√‖V_F‖].

   The seeded entry is what a fresh solve of the fragment under the same
   ΔV would have cached — bit-identical winner, deleted set, cost and
   certificate (enforced by the lockstep suites in
   [test/test_compindex.ml] and [test/test_decomp_splice.ml]) — and
   [e_split] marks it so splices count into the per-tier
   [fragment_reuses_*] counters. Entries without a recorded
   decomposition (loaded from v2 snapshots) seed only through the
   [Exact_small] identity path. *)

let local_bucket nv = threshold_bucket (sqrt (float_of_int nv))

(* Would a fresh solve of the fragment take the forest tier? Structural
   probe mirroring [Dp_tree.applicable] on the fragment's witness paths:
   the fragment is one arena component, hence one tuple-graph component,
   so applicability is [is_forest] plus a pivot for that component. *)
let fragment_dp_applicable (after : Arena.t) ~f_vids =
  let prov = after.Arena.prov in
  let paths =
    Array.fold_left
      (fun acc v ->
        (Vtuple.Map.find after.Arena.vtuples.(v) prov.Provenance.witness_path)
        :: acc)
      [] f_vids
  in
  let g = Hypergraph.Tuple_graph.of_witness_paths paths in
  Hypergraph.Tuple_graph.is_forest g
  &&
  let witnesses =
    Array.fold_left
      (fun acc v -> Provenance.witness_of prov after.Arena.vtuples.(v) :: acc)
      [] f_vids
  in
  Hypergraph.Tuple_graph.find_pivot g witnesses <> None

(* [Exact_small]: identity; only the live-roster size in the recorded
   decomposition is refreshed so chained splits see fragment-local
   metadata. *)
let restrict_small_entry ~nvf (e : cache_entry) =
  Some
    { e with
      e_split = true;
      e_decomposition =
        Option.map
          (fun d -> { d with Decomposition.d_vtuples = nvf })
          e.e_decomposition }

(* [Exact_forest]: replay the recorded DP tree onto the surviving
   roster. [lost_pres] are the parent component's preserved vids that
   died or landed in another fragment; each one's endpoint (deepest
   witness member under the recorded depths, ties to the
   content-earliest, mirroring the solver's fold) charges its weight to
   [lost_end]. *)
let restrict_forest_entry ~(before : Arena.t) ~(after : Arena.t) ~f_sids
    ~f_vids ~lost_pres (e : cache_entry) =
  match e.e_decomposition with
  | Some
      ({ Decomposition.d_structure = Decomposition.Forest [ tree ]; _ } as d)
    -> (
    let nvf = Array.length f_vids in
    (* fresh solves root at the content-minimal common witness member;
       the recorded pivot must still be it *)
    let cnt : (int, int) Hashtbl.t = Hashtbl.create 16 in
    Array.iter
      (fun v ->
        Array.iter
          (fun s ->
            Hashtbl.replace cnt s
              (succ (Option.value ~default:0 (Hashtbl.find_opt cnt s))))
          after.Arena.witness.(v))
      f_vids;
    let min_common =
      Hashtbl.fold
        (fun sid k best ->
          if k <> nvf then best
          else
            match best with
            | None -> Some sid
            | Some b ->
              if
                R.Stuple.compare after.Arena.stuples.(sid)
                  after.Arena.stuples.(b)
                < 0
              then Some sid
              else best)
        cnt None
    in
    match min_common with
    | Some sid
      when String.equal
             (Decomposition.key after.Arena.stuples.(sid))
             tree.Decomposition.ft_pivot -> (
      let depth : (string, int) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (k, n) -> Hashtbl.replace depth k n.Decomposition.fn_depth)
        tree.Decomposition.ft_nodes;
      let lost_end : (string, float) Hashtbl.t = Hashtbl.create 16 in
      let complete =
        List.for_all
          (fun v ->
            let members =
              Array.to_list before.Arena.witness.(v)
              |> List.map (fun s -> before.Arena.stuples.(s))
              |> List.sort R.Stuple.compare
            in
            match members with
            | [] -> false
            | first :: rest -> (
              let endpoint =
                List.fold_left
                  (fun best st ->
                    match best with
                    | None -> None
                    | Some b -> (
                      match
                        ( Hashtbl.find_opt depth (Decomposition.key st),
                          Hashtbl.find_opt depth (Decomposition.key b) )
                      with
                      | Some dst, Some db ->
                        if dst > db then Some st else best
                      | _ -> None))
                  (Some first) rest
              in
              match endpoint with
              | None -> false (* a member outside the recorded tree *)
              | Some st ->
                let k = Decomposition.key st in
                Hashtbl.replace lost_end k
                  (before.Arena.weights.(v)
                  +. Option.value ~default:0.0 (Hashtbl.find_opt lost_end k));
                true))
          lost_pres
      in
      if not complete then None
      else
        let surv : (string, unit) Hashtbl.t = Hashtbl.create 64 in
        Array.iter
          (fun sid ->
            Hashtbl.replace surv
              (Decomposition.key after.Arena.stuples.(sid))
              ())
          f_sids;
        match
          Decomposition.restrict_forest tree
            ~surviving:(fun k -> Hashtbl.mem surv k)
            ~lost_end:(Hashtbl.fold (fun k w acc -> (k, w) :: acc) lost_end [])
        with
        | Error reason ->
          Log.debug (fun m -> m "forest restriction refused: %s" reason);
          None
        | Ok tree' ->
          (* the pivot's replayed DP value is the fragment's optimum;
             killed preserved weight the frontier would have deleted is
             already gone, so the answer's cost drops by exactly the
             pivot's discount *)
          let pivot_value t =
            match List.assoc_opt t.Decomposition.ft_pivot t.Decomposition.ft_nodes with
            | Some n -> n.Decomposition.fn_value
            | None -> 0.0
          in
          let discount = pivot_value tree -. pivot_value tree' in
          Some
            { e with
              e_split = true;
              e_cost = e.e_cost -. discount;
              e_decomposition =
                Some
                  { Decomposition.d_vtuples = nvf;
                    d_parts =
                      List.map
                        (fun (pt : Decomposition.part) ->
                          if String.equal pt.Decomposition.p_label
                               tree.Decomposition.ft_pivot
                          then { pt with Decomposition.p_cost = pt.p_cost -. discount }
                          else pt)
                        d.Decomposition.d_parts;
                    d_structure = Decomposition.Forest [ tree' ] } })
    | _ -> None)
  | _ -> None

(* [Approximate]: identity under the extra guards described above. *)
let restrict_approx_entry ~(after : Arena.t) ~f_vids (e : cache_entry) =
  match e.e_decomposition with
  | Some ({ Decomposition.d_structure = Decomposition.Contributions; _ } as d)
    ->
    let nvf = Array.length f_vids in
    let winner_ok =
      List.mem e.e_winner [ "primal-dual"; "lowdeg"; "lowdeg-global"; "greedy" ]
    in
    if
      winner_ok
      && local_bucket nvf = local_bucket d.Decomposition.d_vtuples
      && not (fragment_dp_applicable after ~f_vids)
    then
      let cert =
        match e.e_certificate with
        | Solution.Ratio _ when String.equal e.e_winner "lowdeg" ->
          Solution.Ratio (2.0 *. sqrt (float_of_int nvf))
        | c -> c
      in
      Some
        { e with
          e_split = true;
          e_certificate = cert;
          e_decomposition = Some { d with Decomposition.d_vtuples = nvf } }
    else None
  | _ -> None

let seed_fragments c ~(before : Arena.t) ~before_index ~dd ~(after : Arena.t)
    ~after_index =
  if not (before.Arena.stuples == after.Arena.stuples) then []
  else begin
    let p = Component_index.partition before_index in
    let p' = Component_index.partition after_index in
    (* affected old components, each considered once, ascending *)
    let affected =
      List.sort_uniq Int.compare
        (R.Stuple.Set.fold
           (fun st acc ->
             p.Arena.comp_of_sid.(Arena.stuple_id before st) :: acc)
           dd [])
    in
    let newly_dead vid =
      Bitset.mem after.Arena.dead_v vid
      && not (Bitset.mem before.Arena.dead_v vid)
    in
    let seed comp =
      match Component_index.memo before_index comp with
      | None -> None
      | Some (fp, bad) -> (
        if Array.length bad = 0 then None
        else
          match Setcover.Lru.find c.lru fp with
          | None -> None
          | Some e ->
            (* the memoized ΔV must have survived intact and landed in
               one fragment (witness containment guarantees its
               candidates and their incident views went with it) *)
            if
              Array.for_all
                (fun v -> not (Bitset.mem after.Arena.dead_v v))
                bad
            then begin
              let f = p'.Arena.comp_of_vid.(bad.(0)) in
              if
                f >= 0
                && Array.for_all (fun v -> p'.Arena.comp_of_vid.(v) = f) bad
              then begin
                let f_sids = Component_index.sids_of after_index f in
                let f_vids = Component_index.vids_of after_index f in
                (* an empty roster has nothing to answer for; seeding it
                   would only park a dead entry in the LRU *)
                if Array.length f_sids = 0 || Array.length f_vids = 0 then
                  None
                else begin
                  let candidates = Hashtbl.create 16 in
                  Array.iter
                    (fun v ->
                      Array.iter
                        (fun s -> Hashtbl.replace candidates s ())
                        after.Arena.witness.(v))
                    bad;
                  (* identity tiers additionally require that the
                     deletion killed no view tuple whose witness meets
                     the candidate set — their deleted sets live inside
                     the candidates, so an untouched neighborhood pins
                     the answer's side effect in place. The forest tier
                     skips this check: its tree replay discounts killed
                     preserved weight explicitly, and any killed view
                     that would meet the candidates is exactly what the
                     lost-endpoint accounting absorbs. *)
                  let touched = ref false in
                  R.Stuple.Set.iter
                    (fun st ->
                      let sid = Arena.stuple_id before st in
                      if p.Arena.comp_of_sid.(sid) = comp then
                        Array.iter
                          (fun vid ->
                            if newly_dead vid then
                              Array.iter
                                (fun wsid ->
                                  if Hashtbl.mem candidates wsid then
                                    touched := true)
                                before.Arena.witness.(vid))
                          before.Arena.containing.(sid))
                    dd;
                  begin
                    let restricted =
                      match e.e_classification with
                      | Exact_small ->
                        if !touched then None
                        else restrict_small_entry ~nvf:(Array.length f_vids) e
                      | Exact_forest ->
                        let bad_set = Hashtbl.create 16 in
                        Array.iter
                          (fun v -> Hashtbl.replace bad_set v ())
                          bad;
                        let lost_pres =
                          Array.fold_left
                            (fun acc v ->
                              if Hashtbl.mem bad_set v then acc
                              else if
                                Bitset.mem after.Arena.dead_v v
                                || p'.Arena.comp_of_vid.(v) <> f
                              then v :: acc
                              else acc)
                            []
                            (Component_index.vids_of before_index comp)
                        in
                        restrict_forest_entry ~before ~after ~f_sids ~f_vids
                          ~lost_pres e
                      | Approximate ->
                        if !touched then None
                        else restrict_approx_entry ~after ~f_vids e
                    in
                    match restricted with
                    | None -> None
                    | Some e' ->
                      let bb = Bitset.create (Arena.num_vtuples after) in
                      Array.iter (Bitset.add bb) bad;
                      let ps =
                        { Arena.p_component = f; p_sids = f_sids;
                          p_vids = f_vids }
                      in
                      let fpf = Fingerprint.shard ~bad:bb after ps in
                      Setcover.Lru.add c.lru fpf e';
                      Component_index.record_memo after_index ~component:f
                        ~fp:fpf ~bad;
                      Some f
                  end
                end
              end
              else None
            end
            else None)
    in
    List.filter_map seed affected
  end
