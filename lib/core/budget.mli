(** Per-round time budgets with cooperative cancellation.

    A {!t} is a wall-clock deadline. Solver hot loops call {!tick} (or
    {!tick_o} when the budget is optional), which raises {!Expired} once
    the deadline passes — the loop unwinds, the caller catches the
    exception at a clean boundary (the portfolio fan-out, a τ-sweep) and
    degrades: return the best feasible answer so far, or report the
    solver as timed out.

    The clock read is throttled: {!check}/{!tick} consult the real clock
    only every {!tick_mask}+1 calls, so a tick in an inner loop costs an
    increment and a branch almost always. Expiry is therefore detected up
    to {!tick_mask} iterations late — deadlines are best-effort, never
    violated by more than one clock-read interval of loop work. *)

type t

(** Raised by {!tick}/{!tick_o} once the deadline has passed. Solvers
    let it escape; {!Portfolio.solutions_report} records the solver as
    timed out instead of failing the round. *)
exception Expired

(** [of_ms ms] — a budget expiring [ms] milliseconds from now.
    [ms <= 0] gives an already-expired budget (every tick raises).
    Raises [Invalid_argument] on NaN. *)
val of_ms : float -> t

(** Unthrottled deadline test: reads the clock on every call. *)
val expired : t -> bool

(** Throttled deadline test — the cheap per-iteration probe. Only every
    64th call reads the clock; the rest return the last verdict
    (sticky once expired). *)
val check : t -> bool

(** [tick b] — {!check}, raising {!Expired} on a positive verdict. *)
val tick : t -> unit

(** [tick_o b] — {!tick} when [b] is [Some], no-op on [None]: the form
    solver loops use, since budgets are optional everywhere. *)
val tick_o : t option -> unit

(** Milliseconds until the deadline, clamped at 0. *)
val remaining_ms : t -> float

(** The throttle interval minus one (a power of two); exposed so tests
    can call {!tick} enough times to guarantee a clock read. *)
val tick_mask : int
