module R = Relational

type result = {
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  claimed_bound : float;
}

let bound (problem : Problem.t) =
  let l = float_of_int (Problem.max_arity problem) in
  let v = float_of_int (Problem.view_size problem) in
  let dv = float_of_int (max 2 (Problem.deletion_size problem)) in
  2.0 *. sqrt (l *. v *. log dv)

let solve ?budget prov =
  Budget.tick_o budget;
  let m = Reduction.to_red_blue prov in
  let tick () = Budget.tick_o budget in
  match Setcover.Red_blue.solve_approx ~tick m.Reduction.instance with
  | None -> None
  | Some sol ->
    let deletion = Reduction.deletion_of_red_blue m sol in
    let outcome = Side_effect.eval prov deletion in
    Some { deletion; outcome; claimed_bound = bound prov.Provenance.problem }
