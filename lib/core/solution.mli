(** The one result shape every solving surface speaks.

    {!Portfolio.solutions}, [Engine.request] and the CLI's JSON output
    all produce this record; the per-solver result types
    ([Primal_dual.result], [Lowdeg.result], …) stay as richer internal
    shapes, adapted here at the portfolio boundary. *)

(** What the algorithm can promise about its answer:
    - [Exact] — provably optimal (brute force, pivot-forest DP);
    - [Dual_bound v] — a feasible dual of value [v] lower-bounds the
      optimum (primal-dual, Theorem 3);
    - [Ratio r] — within factor [r] of the optimum (LowDeg's 2√‖V‖,
      the general reduction's Claim-1 bound);
    - [Heuristic] — feasible, no guarantee;
    - [Anytime] — the best feasible answer found before a time budget
      expired: a partial sweep, so the solver's usual ratio is void;
    - [Composite] — the union of independent per-component solutions
      ({!Planner}): [factor] is the max of the shard factors (exact
      shards contribute 1, a LowDeg shard its 2√‖V_c‖, a forest-case
      primal-dual shard its arity bound [l]), [None] when some shard
      carries no multiplicative guarantee. Component independence makes
      the max sound: the optimum decomposes as the sum of per-shard
      optima, and each shard's cost is within its own factor of its
      shard optimum. *)
type certificate =
  | Exact
  | Dual_bound of float
  | Ratio of float
  | Heuristic
  | Anytime
  | Composite of {
      shards : int;
      factor : float option;
    }

type t = {
  algorithm : string;
  deleted : Relational.Stuple.Set.t;    (** ΔD, the proposed source deletion *)
  outcome : Side_effect.outcome;        (** its evaluated side-effect *)
  elapsed_ms : float;                   (** wall-clock of this solver alone *)
  certificate : certificate;
  decomposition : Decomposition.t option;
      (** the answer's per-sub-structure cost decomposition, recorded at
          solve time ({!Decomposition}); [None] when the producing
          surface does not decompose (composite recombinations, legacy
          snapshot entries) *)
}

val cost : t -> float
val feasible : t -> bool

(** Feasible solutions only, cheapest first. The sort is stable on cost
    alone — ties keep their input (solver-list) order, never broken by
    [elapsed_ms] — so ranking is deterministic run to run. *)
val rank : t list -> t list

val pp : Format.formatter -> t -> unit
val pp_certificate : Format.formatter -> certificate -> unit

(** One-line JSON object: [algorithm], [deleted] (fact strings in
    {!Relational.Serial.fact_of_string} syntax), [feasible], [cost],
    [balanced_cost], [side_effect] / [residual_bad] (cardinalities),
    [elapsed_ms], [certificate] as [{"kind": ..., "value": ...}], and —
    when the answer decomposes — a [decomposition] summary object
    (structure name, part count, solved ‖V‖). *)
val to_json : t -> string
