(** A typed deletion intent: "remove these tuples from this view".

    Replaces the stringly [(string * Tuple.t list) list] that used to
    flow between {!Matview}, the solvers and the CLI — requests are
    validated against the registered views up front, with a real error
    type instead of [Invalid_argument] deep inside [Problem.make]. *)

type t = {
  view : string;                       (** a registered query name *)
  tuples : Relational.Tuple.t list;    (** answer tuples to remove from it *)
}

type error =
  | Unknown_view of { view : string; known : string list }
  | Not_in_view of { view : string; tuple : Relational.Tuple.t }

val make : view:string -> Relational.Tuple.t list -> t

(** Bridges to the legacy association-list shape (still accepted by
    [Problem.make]). *)

val of_legacy : (string * Relational.Tuple.t list) list -> t list
val to_legacy : t list -> (string * Relational.Tuple.t list) list

(** [validate ~views rs] — first error in request order, if any: every
    request must name a view in [views] and every tuple must be a current
    answer of it. *)
val validate :
  views:Relational.Tuple.Set.t Smap.t -> t list -> (unit, error) result

val pp : Format.formatter -> t -> unit
val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string
