module R = Relational

type t = {
  db : R.Instance.t;
  queries : Cq.Query.t list;
  deletions : R.Tuple.Set.t Smap.t;
  weights : Weights.t;
  fds : (string * R.Fd.t) list;
}

let find_query queries name =
  List.find_opt (fun (q : Cq.Query.t) -> String.equal q.name name) queries

let make ~db ~queries ~deletions ?(weights = Weights.uniform) ?(fds = [])
    ?(allow_non_key_preserving = false) () =
  if queries = [] then invalid_arg "Problem.make: empty query set";
  let names = List.map (fun (q : Cq.Query.t) -> q.name) queries in
  if List.length names <> List.length (List.sort_uniq String.compare names) then
    invalid_arg "Problem.make: duplicate query names";
  let schema = R.Instance.schema db in
  List.iter (Cq.Query.check schema) queries;
  List.iter
    (fun (rel, (fd : R.Fd.t)) ->
      match R.Schema.Db.find_opt schema rel with
      | None -> invalid_arg ("Problem.make: FD on unknown relation " ^ rel)
      | Some _ ->
        let r = R.Instance.relation db rel in
        (match R.Fd.violations r fd with
        | [] -> ()
        | (t1, t2) :: _ ->
          invalid_arg
            (Format.asprintf "Problem.make: FD %a violated on %s by %a / %a" R.Fd.pp fd
               rel R.Tuple.pp t1 R.Tuple.pp t2)))
    fds;
  if not allow_non_key_preserving then Cq.Classify.check_key_preserving schema queries;
  let deletions =
    List.fold_left
      (fun acc (qname, tuples) ->
        match find_query queries qname with
        | None -> invalid_arg ("Problem.make: deletion on unknown query " ^ qname)
        | Some q ->
          let view = Cq.Eval.evaluate db q in
          let ts = R.Tuple.Set.of_list tuples in
          R.Tuple.Set.iter
            (fun t ->
              if not (R.Tuple.Set.mem t view) then
                invalid_arg
                  (Format.asprintf "Problem.make: deletion %a not in view %s" R.Tuple.pp
                     t qname))
            ts;
          let prev = Option.value ~default:R.Tuple.Set.empty (Smap.find_opt qname acc) in
          Smap.add qname (R.Tuple.Set.union prev ts) acc)
      Smap.empty deletions
  in
  { db; queries; deletions; weights; fds }

let patch ~db ~deletions t = { t with db; deletions }

let query t name =
  match find_query t.queries name with
  | Some q -> q
  | None -> invalid_arg ("Problem.query: unknown query " ^ name)

let view t name = Cq.Eval.evaluate t.db (query t name)

let deletion t name =
  ignore (query t name);
  Option.value ~default:R.Tuple.Set.empty (Smap.find_opt name t.deletions)

let max_arity t =
  List.fold_left (fun acc q -> max acc (Cq.Query.arity q)) 0 t.queries

let view_size t =
  List.fold_left
    (fun acc (q : Cq.Query.t) -> acc + R.Tuple.Set.cardinal (view t q.name))
    0 t.queries

let deletion_size t =
  Smap.fold (fun _ s acc -> acc + R.Tuple.Set.cardinal s) t.deletions 0

let pp ppf t =
  Format.fprintf ppf "@[<v>database:@ %a@ queries:@ %a@ deletions:@ %a@]"
    R.Instance.pp t.db
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Cq.Query.pp)
    t.queries
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (q, s) ->
         Format.fprintf ppf "%s: %a" q
           (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
              R.Tuple.pp)
           (R.Tuple.Set.elements s)))
    (Smap.bindings t.deletions)
