module R = Relational

type t = {
  problem : Problem.t;
  views : R.Tuple.Set.t Smap.t;
  witness : R.Stuple.Set.t Vtuple.Map.t;
  witness_path : R.Stuple.t list Vtuple.Map.t;
  containing : Vtuple.Set.t R.Stuple.Map.t;
  bad : Vtuple.Set.t;
  preserved : Vtuple.Set.t;
}

exception Ambiguous_witness of Vtuple.t

(* body order, consecutive duplicates collapsed (self-join reusing a
   tuple) — the [witness_path] entry of one witness *)
let path_of_witness (w : Cq.Eval.witness) =
  Array.to_list w
  |> List.fold_left
       (fun acc st ->
         match acc with
         | prev :: _ when R.Stuple.equal prev st -> acc
         | _ -> st :: acc)
       []
  |> List.rev

let build (problem : Problem.t) =
  let db = problem.Problem.db in
  let views, witness, witness_path =
    List.fold_left
      (fun (views, witness, witness_path) (q : Cq.Query.t) ->
        let prov = Cq.Eval.provenance db q in
        let view =
          R.Tuple.Map.fold (fun t _ acc -> R.Tuple.Set.add t acc) prov R.Tuple.Set.empty
        in
        let witness, witness_path =
          R.Tuple.Map.fold
            (fun tup ws (witness, witness_path) ->
              let vt = Vtuple.make q.name tup in
              match ws with
              | [ w ] ->
                ( Vtuple.Map.add vt (Cq.Eval.witness_set w) witness,
                  Vtuple.Map.add vt (path_of_witness w) witness_path )
              | [] -> assert false
              | _ :: _ :: _ ->
                (* distinct assignments, same head tuple *)
                raise (Ambiguous_witness vt))
            prov (witness, witness_path)
        in
        (Smap.add q.name view views, witness, witness_path))
      (Smap.empty, Vtuple.Map.empty, Vtuple.Map.empty)
      problem.Problem.queries
  in
  (* total [containing] map: every tuple of D gets an entry *)
  let containing =
    R.Instance.fold
      (fun st acc -> R.Stuple.Map.add st Vtuple.Set.empty acc)
      db R.Stuple.Map.empty
  in
  let containing =
    Vtuple.Map.fold
      (fun vt ws acc ->
        R.Stuple.Set.fold
          (fun st acc ->
            R.Stuple.Map.update st
              (fun cur -> Some (Vtuple.Set.add vt (Option.value ~default:Vtuple.Set.empty cur)))
              acc)
          ws acc)
      witness containing
  in
  let bad =
    Smap.fold
      (fun qname ts acc ->
        R.Tuple.Set.fold (fun t acc -> Vtuple.Set.add (Vtuple.make qname t) acc) ts acc)
      problem.Problem.deletions Vtuple.Set.empty
  in
  let all =
    Smap.fold
      (fun qname view acc ->
        R.Tuple.Set.fold (fun t acc -> Vtuple.Set.add (Vtuple.make qname t) acc) view acc)
      views Vtuple.Set.empty
  in
  { problem; views; witness; witness_path; containing;
    bad; preserved = Vtuple.Set.diff all bad }

let all_vtuples t = Vtuple.Set.union t.bad t.preserved

let witness_of t vt =
  match Vtuple.Map.find_opt vt t.witness with
  | Some w -> w
  | None -> invalid_arg (Format.asprintf "Provenance.witness_of: unknown %a" Vtuple.pp vt)

let vtuples_containing t st =
  Option.value ~default:Vtuple.Set.empty (R.Stuple.Map.find_opt st t.containing)

let kills t dd =
  R.Stuple.Set.fold
    (fun st acc -> Vtuple.Set.union acc (vtuples_containing t st))
    dd Vtuple.Set.empty

let candidates t =
  Vtuple.Set.fold
    (fun vt acc -> R.Stuple.Set.union acc (witness_of t vt))
    t.bad R.Stuple.Set.empty

let preserved_weight_through t st =
  let w = t.problem.Problem.weights in
  Vtuple.Set.fold
    (fun vt acc -> if Vtuple.Set.mem vt t.preserved then acc +. Weights.get w vt else acc)
    (vtuples_containing t st) 0.0

(* ---- incremental maintenance ----

   The index splits cleanly along the ΔV axis: [views], [witness],
   [witness_path] and [containing] depend only on (D, Q), while [bad],
   [preserved] and [problem.deletions] depend on ΔV. Re-targeting the
   deletions therefore reuses every map; deleting source tuples shrinks
   the maps by exactly the killed rows. Both constructions are checked
   bit-identical to [build] on the patched problem by the engine's
   differential property suite. *)

let with_deletions t (reqs : Delta_request.t list) =
  let deletions =
    List.fold_left
      (fun acc (r : Delta_request.t) ->
        let prev =
          Option.value ~default:R.Tuple.Set.empty (Smap.find_opt r.Delta_request.view acc)
        in
        Smap.add r.Delta_request.view
          (R.Tuple.Set.union prev (R.Tuple.Set.of_list r.Delta_request.tuples))
          acc)
      Smap.empty reqs
  in
  let bad =
    Smap.fold
      (fun qname ts acc ->
        R.Tuple.Set.fold
          (fun tup acc ->
            let vt = Vtuple.make qname tup in
            if not (Vtuple.Map.mem vt t.witness) then
              invalid_arg
                (Format.asprintf "Provenance.with_deletions: unknown view tuple %a"
                   Vtuple.pp vt);
            Vtuple.Set.add vt acc)
          ts acc)
      deletions Vtuple.Set.empty
  in
  let all = all_vtuples t in
  {
    t with
    problem = Problem.patch ~db:t.problem.Problem.db ~deletions t.problem;
    bad;
    preserved = Vtuple.Set.diff all bad;
  }

let delete t dd =
  let killed = kills t dd in
  let views =
    Vtuple.Set.fold
      (fun vt acc ->
        Smap.update vt.Vtuple.query
          (Option.map (R.Tuple.Set.remove vt.Vtuple.tuple))
          acc)
      killed t.views
  in
  let witness = Vtuple.Set.fold (fun vt m -> Vtuple.Map.remove vt m) killed t.witness in
  let witness_path =
    Vtuple.Set.fold (fun vt m -> Vtuple.Map.remove vt m) killed t.witness_path
  in
  let containing =
    (* deleted tuples lose their rows; surviving members of each killed
       witness lose that view tuple from theirs *)
    let c = R.Stuple.Set.fold (fun st m -> R.Stuple.Map.remove st m) dd t.containing in
    Vtuple.Set.fold
      (fun vt c ->
        R.Stuple.Set.fold
          (fun st c ->
            if R.Stuple.Set.mem st dd then c
            else R.Stuple.Map.update st (Option.map (Vtuple.Set.remove vt)) c)
          (witness_of t vt) c)
      killed c
  in
  let bad = Vtuple.Set.diff t.bad killed in
  let preserved = Vtuple.Set.diff t.preserved killed in
  let db = R.Instance.delete t.problem.Problem.db dd in
  let deletions =
    Smap.fold
      (fun qname ts acc ->
        let ts' =
          R.Tuple.Set.filter
            (fun tup -> not (Vtuple.Set.mem (Vtuple.make qname tup) killed))
            ts
        in
        if R.Tuple.Set.is_empty ts' then acc else Smap.add qname ts' acc)
      t.problem.Problem.deletions Smap.empty
  in
  {
    problem = Problem.patch ~db ~deletions t.problem;
    views;
    witness;
    witness_path;
    containing;
    bad;
    preserved;
  }

let insert t st =
  let db = t.problem.Problem.db in
  let db' = R.Instance.add_stuple db st in
  (* the new tuple gets its [containing] row up front — the map stays
     total on D even when [st] joins into nothing *)
  let containing = R.Stuple.Map.add st Vtuple.Set.empty t.containing in
  let views, witness, witness_path, containing, gained =
    List.fold_left
      (fun acc (q : Cq.Query.t) ->
        R.Tuple.Map.fold
          (fun tup ws (views, witness, witness_path, containing, gained) ->
            let vt = Vtuple.make q.Cq.Query.name tup in
            match ws with
            | [ w ] when not (Vtuple.Map.mem vt witness) ->
              let wset = Cq.Eval.witness_set w in
              ( Smap.update vt.Vtuple.query
                  (Option.map (R.Tuple.Set.add tup))
                  views,
                Vtuple.Map.add vt wset witness,
                Vtuple.Map.add vt (path_of_witness w) witness_path,
                R.Stuple.Set.fold
                  (fun member c ->
                    R.Stuple.Map.update member
                      (fun cur ->
                        Some
                          (Vtuple.Set.add vt
                             (Option.value ~default:Vtuple.Set.empty cur)))
                      c)
                  wset containing,
                Vtuple.Set.add vt gained )
          | _ ->
            (* ≥ 2 new witnesses, or a second derivation of an
               existing answer: the extended instance is no longer
               key preserving, exactly what [build] on it raises *)
            raise (Ambiguous_witness vt))
          (Cq.Maintain.gained_answers db q st)
          acc)
      (t.views, t.witness, t.witness_path, containing, Vtuple.Set.empty)
      t.problem.Problem.queries
  in
  (* gained view tuples are never in ΔV (they did not exist when the
     deletions were requested), so [bad] is untouched *)
  let preserved = Vtuple.Set.union t.preserved gained in
  {
    t with
    problem = Problem.patch ~db:db' ~deletions:t.problem.Problem.deletions t.problem;
    views;
    witness;
    witness_path;
    containing;
    preserved;
  }

let restrict t ~stuples ~vtuples =
  let db =
    R.Stuple.Set.fold
      (fun st acc -> R.Instance.add_stuple acc st)
      stuples
      (R.Instance.empty (R.Instance.schema t.problem.Problem.db))
  in
  let views =
    List.fold_left
      (fun m (q : Cq.Query.t) -> Smap.add q.Cq.Query.name R.Tuple.Set.empty m)
      Smap.empty t.problem.Problem.queries
  in
  let views =
    Vtuple.Set.fold
      (fun vt m ->
        Smap.update vt.Vtuple.query (Option.map (R.Tuple.Set.add vt.Vtuple.tuple)) m)
      vtuples views
  in
  let witness =
    Vtuple.Set.fold
      (fun vt m -> Vtuple.Map.add vt (witness_of t vt) m)
      vtuples Vtuple.Map.empty
  in
  let witness_path =
    Vtuple.Set.fold
      (fun vt m -> Vtuple.Map.add vt (Vtuple.Map.find vt t.witness_path) m)
      vtuples Vtuple.Map.empty
  in
  let containing =
    R.Stuple.Set.fold
      (fun st m ->
        R.Stuple.Map.add st (Vtuple.Set.inter (vtuples_containing t st) vtuples) m)
      stuples R.Stuple.Map.empty
  in
  let bad = Vtuple.Set.inter t.bad vtuples in
  let preserved = Vtuple.Set.diff vtuples bad in
  let deletions =
    Vtuple.Set.fold
      (fun vt acc ->
        let prev =
          Option.value ~default:R.Tuple.Set.empty (Smap.find_opt vt.Vtuple.query acc)
        in
        Smap.add vt.Vtuple.query (R.Tuple.Set.add vt.Vtuple.tuple prev) acc)
      bad Smap.empty
  in
  {
    problem = Problem.patch ~db ~deletions t.problem;
    views;
    witness;
    witness_path;
    containing;
    bad;
    preserved;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>bad: %d, preserved: %d@ %a@]" (Vtuple.Set.cardinal t.bad)
    (Vtuple.Set.cardinal t.preserved)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (vt, ws) ->
         Format.fprintf ppf "%a <- {%a}" Vtuple.pp vt
           (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
              R.Stuple.pp)
           (R.Stuple.Set.elements ws)))
    (Vtuple.Map.bindings t.witness)
