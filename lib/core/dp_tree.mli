(** [DPTreeVSE] (Algorithm 4, §IV.E): exact polynomial dynamic
    programming for forest data dual graphs with pivot tuples.

    Requirements checked at run time: the witness paths of all view
    tuples form a forest at the tuple level, and each component has a
    pivot tuple from which every witness is a root path. Rooted at the
    pivot, a view tuple dies iff some tuple on the path to its endpoint
    (deepest witness tuple) is deleted — i.e. iff the endpoint lies in a
    deleted subtree. The DP walks the tree bottom-up deciding cut /
    don't-cut per node:

    - standard objective: a node carrying a bad endpoint with no cut
      above it must be cut; otherwise cut when the preserved weight of
      the subtree is cheaper than the best of the children;
    - balanced objective: surviving bad endpoints are simply priced
      instead of forced.

    Exactness is validated against brute force in experiment E7. *)

type objective = Standard | Balanced

type result = {
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;
  pivots : Relational.Stuple.t list;  (** one per component with view tuples *)
  optimum : float;                    (** the DP value = proven optimal cost *)
  decomp : Decomposition.forest_tree list;
      (** the recorded trees, in [pivots] order: per-node parent, depth,
          cut decision, DP value and decision slack — the structural
          record {!Decomposition.restrict_forest} projects onto a
          surviving fragment after a component split *)
}

type error =
  | Not_a_forest
  | No_pivot   (** some component admits no pivot tuple *)

(** [budget] is ticked once per view-tuple endpoint computation and once
    per DP node; on expiry the run unwinds with {!Budget.Expired} — the
    DP is exact-or-nothing, there is no partial answer to salvage. *)
val solve :
  ?objective:objective -> ?budget:Budget.t -> Provenance.t ->
  (result, error) Stdlib.result

(** Does the instance satisfy the structural requirement? *)
val applicable : Provenance.t -> bool

val pp_error : Format.formatter -> error -> unit
