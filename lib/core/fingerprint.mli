(** Canonical content fingerprints for arenas.

    [arena a] is an FNV-1a hash (mixed on the native 63-bit int lane)
    over everything a solver can
    observe of [a]: the interned source tuples (relation + values), the
    view tuples (query + values), their preservation weights, the bad
    (ΔV) markers, and the witness incidence rows. Two arenas with the
    same content hash identically — and because a shard arena is rebuilt
    over shard-local ids in sorted-tuple order ({!Arena.shatter}), a
    shard's fingerprint is invariant under the parent's component
    numbering and under any id compaction earlier deltas performed. That
    makes it a sound memo key for per-shard solutions ({!Planner}): same
    fingerprint ⟹ same shard instance ⟹ same deterministic solver
    answer.

    Collisions are possible in principle (64-bit hash); the planner's
    cache pairs fingerprint lookup with the engine's conservative dirty
    tracking, which only consults the cache for components no delta has
    touched since they were last solved. *)

type t = int64

(** Fingerprint an arena's full solver-visible content (tuples, views,
    weights, ΔV, witness structure). Live slots only, witness sids
    hashed by live rank — a tombstoned arena hashes identically to its
    compacted form, and an arena with no tombstones identically to the
    pre-tombstone stream. O(‖D‖ + ‖V‖ + Σ|witness|). *)
val arena : Arena.t -> t

(** [shard a ps] = [arena (materialize a ps).arena], computed straight
    off the parent — no provenance restriction, no arena build. This is
    what makes consulting the cache for a clean component far cheaper
    than preparing to re-solve it: the planner only pays
    {!Arena.materialize} for dirty shards and cache misses. The equality
    with the built shard's fingerprint is enforced by a property test
    ([test/test_shardcache.ml]).

    [?bad] overrides the parent's ΔV bitset (same physical vid space):
    the split-aware reuse path ({!Planner.seed_fragments}) uses it to
    hash a surviving fragment under the {e memoized} request rather than
    whatever ΔV the arena currently carries. *)
val shard : ?bad:Setcover.Bitset.t -> Arena.t -> Arena.proto_shard -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val to_hex : t -> string

(** Inverse of {!to_hex}: parses exactly 16 lowercase/uppercase hex
    digits, [None] on anything else. The snapshot codec round-trips
    fingerprints through this pair. *)
val of_hex : string -> t option

val pp : Format.formatter -> t -> unit
