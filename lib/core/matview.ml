module R = Relational

type t = {
  db : R.Instance.t;
  queries : Cq.Query.t list;
  views : R.Tuple.Set.t Smap.t;
}

let create db queries =
  let schema = R.Instance.schema db in
  List.iter (Cq.Query.check schema) queries;
  let views =
    List.fold_left
      (fun m (q : Cq.Query.t) -> Smap.add q.name (Cq.Eval.evaluate db q) m)
      Smap.empty queries
  in
  { db; queries; views }

let db t = t.db
let queries t = t.queries

let view t name =
  match Smap.find_opt name t.views with
  | Some v -> v
  | None -> invalid_arg ("Matview.view: unknown query " ^ name)

let delete t dd =
  let views =
    Smap.mapi
      (fun name old ->
        let q = List.find (fun (q : Cq.Query.t) -> q.name = name) t.queries in
        Cq.Maintain.refresh t.db q ~view:old dd)
      t.views
  in
  { t with db = R.Instance.delete t.db dd; views }

let insert t st =
  let views =
    Smap.mapi
      (fun name old ->
        let q = List.find (fun (q : Cq.Query.t) -> q.name = name) t.queries in
        Cq.Maintain.extend t.db q ~view:old st)
      t.views
  in
  { t with db = R.Instance.add_stuple t.db st; views }

let insert_all t sts = R.Stuple.Set.fold (fun st acc -> insert acc st) sts t

let apply_delta t (delta : Delta.t) =
  let t = delete t delta.Delta.deletes in
  insert_all t delta.Delta.inserts

let of_views db queries views = { db; queries; views }

let problem ~requests ?weights t =
  match Delta_request.validate ~views:t.views requests with
  | Error _ as e -> e
  | Ok () ->
    Ok
      (Problem.make ~db:t.db ~queries:t.queries
         ~deletions:(Delta_request.to_legacy requests)
         ?weights ~allow_non_key_preserving:true ())
