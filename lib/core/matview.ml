module R = Relational

type t = {
  db : R.Instance.t;
  queries : Cq.Query.t list;
  views : R.Tuple.Set.t Smap.t;
}

let create db queries =
  let schema = R.Instance.schema db in
  List.iter (Cq.Query.check schema) queries;
  let views =
    List.fold_left
      (fun m (q : Cq.Query.t) -> Smap.add q.name (Cq.Eval.evaluate db q) m)
      Smap.empty queries
  in
  { db; queries; views }

let db t = t.db
let queries t = t.queries

let view t name =
  match Smap.find_opt name t.views with
  | Some v -> v
  | None -> invalid_arg ("Matview.view: unknown query " ^ name)

let delete t dd =
  let views =
    Smap.mapi
      (fun name old ->
        let q = List.find (fun (q : Cq.Query.t) -> q.name = name) t.queries in
        Cq.Maintain.refresh t.db q ~view:old dd)
      t.views
  in
  { t with db = R.Instance.delete t.db dd; views }

(* delta insertion: answers gained by [st] = union over atoms of matching
   relation of the specialized query's answers on the database AFTER the
   insertion (so derivations using the new tuple several times are
   caught) *)
let gained db' (q : Cq.Query.t) (st : R.Stuple.t) =
  List.mapi (fun i a -> (i, a)) q.body
  |> List.fold_left
       (fun acc (i, (atom : Cq.Atom.t)) ->
         if atom.rel <> st.rel then acc
         else
           match Cq.Atom.matches atom st.tuple with
           | None -> acc
           | Some bindings ->
             let f v =
               List.assoc_opt v bindings |> Option.map (fun value -> Cq.Term.Const value)
             in
             let specialized = Cq.Query.substitute f q in
             (* drop the bound atom? keep it: it matches the new tuple and
                possibly others; correctness over speed *)
             ignore i;
             R.Tuple.Set.union acc (Cq.Eval.evaluate db' specialized))
       R.Tuple.Set.empty

let insert t st =
  let db' = R.Instance.add_stuple t.db st in
  let views =
    Smap.mapi
      (fun name old ->
        let q = List.find (fun (q : Cq.Query.t) -> q.name = name) t.queries in
        R.Tuple.Set.union old (gained db' q st))
      t.views
  in
  { t with db = db'; views }

let insert_all t sts = R.Stuple.Set.fold (fun st acc -> insert acc st) sts t

let of_views db queries views = { db; queries; views }

let problem ~requests ?weights t =
  match Delta_request.validate ~views:t.views requests with
  | Error _ as e -> e
  | Ok () ->
    Ok
      (Problem.make ~db:t.db ~queries:t.queries
         ~deletions:(Delta_request.to_legacy requests)
         ?weights ~allow_non_key_preserving:true ())

let problem_legacy ~deletions ?weights t =
  Problem.make ~db:t.db ~queries:t.queries ~deletions ?weights
    ~allow_non_key_preserving:true ()
[@@deprecated "use Matview.problem with typed Delta_request.t values"]
