(** Shared JSON encoding for machine-readable reports.

    Every front end (CLI subcommands, the engine's stats surface)
    assembles values of {!t} and serializes with {!to_string} — field
    spellings, escaping, and the schema stamp live in one place instead
    of per-subcommand string builders. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string  (** pre-encoded JSON, spliced verbatim *)

(** The report schema version, stamped on top-level solve/batch objects.
    Bumped on renames/removals; 3 since the deprecated [index_hits] /
    [cache_hits] stats aliases were dropped (2 was the unified stats
    encoding of PR 7). *)
val schema_version : int

val to_string : t -> string

(** JSON string escaping (the body, without the surrounding quotes). *)
val escape : string -> string

(** {2 Shared encoders} *)

val solution : Solution.t -> t
val failure : Portfolio.failure -> t
val shard_decision : Planner.shard_decision -> t

(** [versioned fields] — an [Obj] with ["schema_version"] prepended. *)
val versioned : (string * t) list -> t
