(** Fault-injection registry.

    A failpoint is a named site in production code ([Portfolio] runs one
    per solver, the journal writer runs ["journal.append"]) that does
    nothing unless an action has been armed for its name — via
    {!set}, or via the [DELEPROP_FAILPOINTS] environment variable at
    first use. The resilience test suite arms points programmatically to
    drive solver crashes and torn journal writes; CI arms a benign set
    through the environment so the whole suite runs with the machinery
    live.

    Environment syntax (comma-separated [name=action]):
    {v
    DELEPROP_FAILPOINTS="solver.greedy=raise,journal.append=delay:5"
    DELEPROP_FAILPOINTS="journal.append=crash_after_bytes:128"
    v}

    Programmatic {!set}/{!clear} override the environment entry of the
    same name. The registry is a process-wide table guarded by a mutex —
    safe to consult from pool workers. *)

type action =
  | Raise                      (** raise {!Injected} at the site *)
  | Delay_ms of int            (** sleep that long, then continue *)
  | Crash_after_bytes of int
      (** journal writer only: write exactly this many more payload
          bytes, then raise {!Injected} mid-record — a torn write *)

(** Raised by sites whose action is [Raise] (and by the journal writer
    when its byte allowance runs out). Carries the failpoint name. *)
exception Injected of string

(** Arm [name]. Replaces any previous action for the name. *)
val set : string -> action -> unit

(** Disarm [name] (also shadows an environment entry of that name). *)
val clear : string -> unit

(** Disarm everything and forget the cached environment — the next
    lookup re-reads [DELEPROP_FAILPOINTS]. Test isolation. *)
val reset : unit -> unit

(** The armed action, if any. [Crash_after_bytes] consumers ({!Journal})
    use this to track their allowance. *)
val find : string -> action option

(** Execute the site: no-op when unarmed or armed [Crash_after_bytes]
    (which only the journal writer interprets); sleeps on [Delay_ms];
    raises {!Injected} on [Raise]. *)
val hit : string -> unit

(** Parse the environment syntax. Unknown or malformed entries raise
    [Invalid_argument] — a misspelled injection must not silently test
    nothing. *)
val parse : string -> (string * action) list
