(** Fault-injection registry.

    A failpoint is a named site in production code ([Portfolio] runs one
    per solver, the journal writer runs ["journal.append"], the snapshot
    writer runs ["snapshot.write"] / ["snapshot.rename"] /
    ["snapshot.corrupt"]) that does nothing unless an action has been
    armed for its name — via {!set}, or via the [DELEPROP_FAILPOINTS]
    environment variable at first use. The resilience test suite arms
    points programmatically to drive solver crashes and torn journal
    writes; CI arms a benign set through the environment so the whole
    suite runs with the machinery live.

    Environment syntax (comma-separated [name=action]):
    {v
    DELEPROP_FAILPOINTS="solver.greedy=raise,journal.append=delay:5"
    DELEPROP_FAILPOINTS="journal.append=crash_after_bytes:128"
    DELEPROP_FAILPOINTS="snapshot.corrupt=corrupt_byte:40"
    v}

    Environment entries are validated against the registered site names
    ({!register}; the static journal/snapshot sites and every
    ["solver.<name>"] are pre-registered): an unknown name raises
    [Invalid_argument] at the first lookup instead of silently testing
    nothing.

    Programmatic {!set}/{!clear} override the environment entry of the
    same name. The registry is a process-wide table guarded by a mutex —
    safe to consult from pool workers. *)

type action =
  | Raise                      (** raise {!Injected} at the site *)
  | Delay_ms of int            (** sleep that long, then continue *)
  | Crash_after_bytes of int
      (** journal/snapshot writers only: write exactly this many more
          payload bytes, then raise {!Injected} mid-record — a torn
          write *)
  | Corrupt_byte of int
      (** snapshot writer only: complete the write, then flip one bit of
          the byte at this offset (mod file size) — at-rest corruption *)

(** Raised by sites whose action is [Raise] (and by the journal writer
    when its byte allowance runs out). Carries the failpoint name. *)
exception Injected of string

(** Arm [name]. Replaces any previous action for the name, and registers
    [name] as a known site. *)
val set : string -> action -> unit

(** Disarm [name] (also shadows an environment entry of that name). *)
val clear : string -> unit

(** Disarm everything and forget the cached environment — the next
    lookup re-reads [DELEPROP_FAILPOINTS]. Test isolation. (Site names
    registered so far stay known.) *)
val reset : unit -> unit

(** Declare [name] a known failpoint site, making it legal in
    [DELEPROP_FAILPOINTS]. Production sites register themselves (the
    solver adapters at module init); tests using ad-hoc names go through
    {!set}, which registers implicitly. *)
val register : string -> unit

(** All registered site names, sorted. *)
val names : unit -> string list

(** The armed action, if any. [Crash_after_bytes] / [Corrupt_byte]
    consumers ({!Journal}, the snapshot writer) use this to track their
    allowance. Raises [Invalid_argument] if [DELEPROP_FAILPOINTS] names
    an unregistered site. *)
val find : string -> action option

(** Execute the site: no-op when unarmed or armed [Crash_after_bytes] /
    [Corrupt_byte] (which only the writers interpret); sleeps on
    [Delay_ms]; raises {!Injected} on [Raise]. *)
val hit : string -> unit

(** Parse the environment syntax. Malformed entries raise
    [Invalid_argument]; name validation happens at lookup time against
    the registered sites. *)
val parse : string -> (string * action) list
