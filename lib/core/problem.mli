(** Deletion-propagation problem instances (§II.C).

    An instance bundles the source database [D], the key-preserving query
    set [Q], the views [V_i = Q_i(D)] (materialized on construction), the
    intended deletions [ΔV], and preservation weights. *)

type t = private {
  db : Relational.Instance.t;
  queries : Cq.Query.t list;
  deletions : Relational.Tuple.Set.t Smap.t;  (** query name -> ΔV_i *)
  weights : Weights.t;
  fds : (string * Relational.Fd.t) list;
      (** declared functional dependencies, per relation — validated
          against the data at construction and available to the
          FD-extended classifiers *)
}

(** [make ~db ~queries ~deletions ()] validates:
    - query names are distinct and every query checks against the schema;
    - every query is key preserving (pass [~allow_non_key_preserving:true]
      to skip, for experiments on the general semantics);
    - every deletion names an existing query and is a subset of its view;
    - every declared FD ([fds], default none) names a known relation and
      attributes, and holds on the data.
    Raises [Invalid_argument] otherwise. *)
val make :
  db:Relational.Instance.t ->
  queries:Cq.Query.t list ->
  deletions:(string * Relational.Tuple.t list) list ->
  ?weights:Weights.t ->
  ?fds:(string * Relational.Fd.t) list ->
  ?allow_non_key_preserving:bool ->
  unit ->
  t

(** [patch ~db ~deletions t] — replace the database and the deletion map
    {e without} re-running any validation (no re-evaluation of the views,
    no FD or membership checks). Trusted constructor for incremental
    maintainers ({!Provenance.delete}, the engine) whose invariants
    already guarantee well-formedness; anyone else wants {!make}. *)
val patch :
  db:Relational.Instance.t ->
  deletions:Relational.Tuple.Set.t Smap.t ->
  t ->
  t

val query : t -> string -> Cq.Query.t

(** The materialized view [Q_i(D)] (computed, not cached — use
    {!Provenance.build} for the indexed form). *)
val view : t -> string -> Relational.Tuple.Set.t

(** ΔV_i of a query ([empty] when none was specified). *)
val deletion : t -> string -> Relational.Tuple.Set.t

(** The paper's [l]: max arity over the query set. *)
val max_arity : t -> int

(** ‖V‖ and ‖ΔV‖: total number of view tuples / deletion tuples. *)
val view_size : t -> int

val deletion_size : t -> int

val pp : Format.formatter -> t -> unit
