module R = Relational
module Bitset = Setcover.Bitset

let src = Logs.Src.create "deleprop.portfolio" ~doc:"solver portfolio"

module Log = (val Logs.src_log src : Logs.LOG)

type entry = {
  algorithm : string;
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  elapsed_ms : float;
}

type failure_reason =
  | Timed_out
  | Crashed of string

type failure = {
  algorithm : string;
  elapsed_ms : float;
  reason : failure_reason;
}

type report = {
  solutions : Solution.t list;
  failures : failure list;
  degraded : bool;
}

let pp_failure ppf f =
  match f.reason with
  | Timed_out -> Format.fprintf ppf "%s: timed out after %.1fms" f.algorithm f.elapsed_ms
  | Crashed msg -> Format.fprintf ppf "%s: crashed (%s)" f.algorithm msg

let solvers_for ?(exact_threshold = 16) ?budget (a : Arena.t) =
  let prov = a.Arena.prov in
  let candidates = Array.length (Arena.candidate_ids a) in
  let solvers =
    [
      (if candidates <= exact_threshold then
         Some
           ( "brute",
             fun () ->
               Brute.solve ?budget prov
               |> Option.map (fun (r : Brute.result) ->
                      (r.Brute.deletion, r.Brute.outcome, Solution.Exact)) )
       else None);
      Some
        ( "primal-dual",
          fun () ->
            (* [Primal_dual.solve] minus the arena compile: full deletable
               set, nothing ignored *)
            match
              Primal_dual.solve_arena ?budget a
                ~deletable:(Bitset.full (Arena.num_stuples a))
                ~ignored_preserved:(Bitset.create (Arena.num_vtuples a))
            with
            | None -> None
            | Some r ->
              Some
                ( r.Primal_dual.deletion, r.Primal_dual.outcome,
                  Solution.Dual_bound r.Primal_dual.dual_value ) );
      Some
        ( "lowdeg",
          fun () ->
            let r = Lowdeg.solve_arena ?budget a in
            (* Theorem 4's ratio 2√‖V‖, off the arena (no re-evaluation);
               a budget-truncated sweep is only anytime — ratio void *)
            let cert =
              if r.Lowdeg.complete then
                Solution.Ratio (2.0 *. sqrt (float_of_int (Arena.num_vtuples a)))
              else Solution.Anytime
            in
            Some (r.Lowdeg.deletion, r.Lowdeg.outcome, cert) );
      Some
        ( "dp-tree",
          fun () ->
            match Dp_tree.solve ?budget prov with
            | Ok r -> Some (r.Dp_tree.deletion, r.Dp_tree.outcome, Solution.Exact)
            | Error _ -> None );
      Some
        ( "general",
          fun () ->
            General_approx.solve ?budget prov
            |> Option.map (fun (r : General_approx.result) ->
                   ( r.General_approx.deletion, r.General_approx.outcome,
                     Solution.Ratio r.General_approx.claimed_bound )) );
      Some
        ( "greedy",
          fun () ->
            let r = Single_query.solve_greedy_multi prov in
            Some (r.Single_query.deletion, r.Single_query.outcome, Solution.Heuristic) );
    ]
    |> List.filter_map Fun.id
  in
  solvers

(* One solver attempt, classified — no exception leaves this wrapper, so
   a crashing or timed-out solver never takes the round (or a pool
   worker) down with it. [Sys.time] is process CPU time, which lies once
   solvers run on parallel domains, hence [Unix.gettimeofday]. *)
type attempt =
  | Solved of Solution.t
  | Inapplicable
  | Failed of failure

let attempt (name, f) =
  let t0 = Unix.gettimeofday () in
  let elapsed () = (Unix.gettimeofday () -. t0) *. 1000.0 in
  match
    Failpoint.hit ("solver." ^ name);
    f ()
  with
  | None -> Inapplicable
  | Some (deleted, outcome, certificate) ->
    Solved
      { Solution.algorithm = name; deleted; outcome; certificate;
        elapsed_ms = elapsed () }
  | exception Budget.Expired ->
    Failed { algorithm = name; elapsed_ms = elapsed (); reason = Timed_out }
  | exception e ->
    Failed { algorithm = name; elapsed_ms = elapsed (); reason = Crashed (Printexc.to_string e) }

(* Bottom rung of the degradation ladder: the greedy pass terminates in
   polynomial time with a feasible answer whenever one exists, so a
   round whose every budgeted solver timed out or crashed still
   answers. Runs unbudgeted and outside the failpoint registry — it is
   the last resort, not an injection target. *)
let degraded_solution (a : Arena.t) =
  let t0 = Unix.gettimeofday () in
  let r = Single_query.solve_greedy_multi a.Arena.prov in
  let sol =
    { Solution.algorithm = "greedy"; deleted = r.Single_query.deletion;
      outcome = r.Single_query.outcome; certificate = Solution.Heuristic;
      elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 }
  in
  if Solution.feasible sol then Some sol else None

let solutions_report ?exact_threshold ?only ?domains ?pool ?budget_ms (a : Arena.t) =
  let budget = Option.map Budget.of_ms budget_ms in
  let solvers = solvers_for ?exact_threshold ?budget a in
  let solvers =
    match only with
    | None -> solvers
    | Some names -> List.filter (fun (name, _) -> List.mem name names) solvers
  in
  let attempts =
    match (domains, pool) with
    | None, None -> List.map attempt solvers
    | _ ->
      (* [attempt] swallows its own exceptions; [map_result] is the belt
         under those braces — a worker dying outside the wrapper still
         surfaces as a classified failure, never as a dead pool *)
      Par.map_result ?domains ?pool attempt solvers
      |> List.map2
           (fun (name, _) -> function
             | Ok att -> att
             | Error e ->
               Failed { algorithm = name; elapsed_ms = 0.0; reason = Crashed (Printexc.to_string e) })
           solvers
  in
  let failures =
    List.filter_map (function Failed f -> Some f | _ -> None) attempts
  in
  List.iter (fun f -> Log.warn (fun m -> m "%a" pp_failure f)) failures;
  let ranked =
    List.filter_map (function Solved s -> Some s | _ -> None) attempts
    |> Solution.rank
  in
  match ranked with
  | _ :: _ -> { solutions = ranked; failures; degraded = false }
  | [] -> (
    match degraded_solution a with
    | Some s ->
      Log.warn (fun m ->
          m "no solver produced a feasible answer; degraded to unbudgeted greedy");
      { solutions = [ s ]; failures; degraded = true }
    | None -> { solutions = []; failures; degraded = false })

let solutions ?exact_threshold ?only ?domains ?pool ?budget_ms (a : Arena.t) =
  (solutions_report ?exact_threshold ?only ?domains ?pool ?budget_ms a).solutions

(* ---- legacy entry points (pre-[Solution.t] dialect) ---- *)

let entry_of_solution (s : Solution.t) =
  {
    algorithm = s.Solution.algorithm;
    deletion = s.Solution.deleted;
    outcome = s.Solution.outcome;
    elapsed_ms = s.Solution.elapsed_ms;
  }

let run ?exact_threshold prov =
  solutions ?exact_threshold (Arena.build prov) |> List.map entry_of_solution

let run_parallel ?exact_threshold ?domains ?pool prov =
  let domains =
    (* historical default: fan out even with neither knob given *)
    match (domains, pool) with
    | None, None -> Some (Domain.recommended_domain_count ())
    | _ -> domains
  in
  solutions ?exact_threshold ?domains ?pool (Arena.build prov)
  |> List.map entry_of_solution

let best ?exact_threshold prov =
  match run ?exact_threshold prov with
  | e :: _ -> e
  | [] -> assert false (* primal-dual always yields a feasible entry *)
