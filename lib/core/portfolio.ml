module R = Relational

let src = Logs.Src.create "deleprop.portfolio" ~doc:"solver portfolio"

module Log = (val Logs.src_log src : Logs.LOG)

type entry = {
  algorithm : string;
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  elapsed_ms : float;
}

type failure_reason = Solver.failure_reason =
  | Timed_out
  | Crashed of string

type failure = Solver.failure = {
  algorithm : string;
  elapsed_ms : float;
  reason : failure_reason;
}

type report = {
  solutions : Solution.t list;
  failures : failure list;
  degraded : bool;
}

let pp_failure = Solver.pp_failure

(* Policy over the registry: everything runs except brute, which
   participates only on small candidate sets. Applicability is NOT
   pre-filtered — a structurally inapplicable solver (dp-tree off a
   forest) still crosses its failpoint and classifies as [Inapplicable],
   so fault injection observes every registered algorithm. *)
let solvers_for ?(exact_threshold = 16) (a : Arena.t) =
  let candidates = Array.length (Arena.candidate_ids a) in
  Solvers.registered ()
  |> List.filter (fun (module S : Solver.S) ->
         (not (String.equal S.name "brute")) || candidates <= exact_threshold)

(* Bottom rung of the degradation ladder: the greedy pass terminates in
   polynomial time with a feasible answer whenever one exists, so a
   round whose every budgeted solver timed out or crashed still
   answers. Runs unbudgeted and outside the failpoint registry — it is
   the last resort, not an injection target. *)
let degraded_solution (a : Arena.t) =
  let t0 = Unix.gettimeofday () in
  let r = Single_query.solve_greedy_multi a.Arena.prov in
  let sol =
    { Solution.algorithm = "greedy"; deleted = r.Single_query.deletion;
      outcome = r.Single_query.outcome; certificate = Solution.Heuristic;
      elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
      (* degraded answers are never cached, so nothing reads a
         decomposition off them *)
      decomposition = None }
  in
  if Solution.feasible sol then Some sol else None

let solutions_report ?exact_threshold ?only ?extra ?domains ?pool ?budget_ms
    (a : Arena.t) =
  let budget = Option.map Budget.of_ms budget_ms in
  let solvers = solvers_for ?exact_threshold a in
  let solvers =
    match only with
    | None -> solvers
    | Some names ->
      List.filter (fun (module S : Solver.S) -> List.mem S.name names) solvers
  in
  let solvers = solvers @ Option.value extra ~default:[] in
  let attempts =
    match (domains, pool) with
    | None, None -> List.map (fun s -> Solver.run ?budget s a) solvers
    | _ ->
      (* [Solver.run] swallows its own exceptions; [map_result] is the
         belt under those braces — a worker dying outside the wrapper
         still surfaces as a classified failure, never as a dead pool *)
      Par.map_result ?domains ?pool (fun s -> Solver.run ?budget s a) solvers
      |> List.map2
           (fun (module S : Solver.S) -> function
             | Ok att -> att
             | Error e ->
               Solver.Failed
                 { algorithm = S.name; elapsed_ms = 0.0;
                   reason = Crashed (Printexc.to_string e) })
           solvers
  in
  let failures =
    List.filter_map (function Solver.Failed f -> Some f | _ -> None) attempts
  in
  List.iter (fun f -> Log.warn (fun m -> m "%a" pp_failure f)) failures;
  let ranked =
    List.filter_map (function Solver.Solved s -> Some s | _ -> None) attempts
    |> Solution.rank
  in
  match ranked with
  | _ :: _ -> { solutions = ranked; failures; degraded = false }
  | [] -> (
    match degraded_solution a with
    | Some s ->
      Log.warn (fun m ->
          m "no solver produced a feasible answer; degraded to unbudgeted greedy");
      { solutions = [ s ]; failures; degraded = true }
    | None -> { solutions = []; failures; degraded = false })

let solutions ?exact_threshold ?only ?domains ?pool ?budget_ms (a : Arena.t) =
  (solutions_report ?exact_threshold ?only ?domains ?pool ?budget_ms a).solutions

(* ---- legacy entry points (pre-[Solution.t] dialect) ---- *)

let entry_of_solution (s : Solution.t) =
  {
    algorithm = s.Solution.algorithm;
    deletion = s.Solution.deleted;
    outcome = s.Solution.outcome;
    elapsed_ms = s.Solution.elapsed_ms;
  }

let run ?exact_threshold prov =
  solutions ?exact_threshold (Arena.build prov) |> List.map entry_of_solution

let run_parallel ?exact_threshold ?domains ?pool prov =
  let domains =
    (* historical default: fan out even with neither knob given *)
    match (domains, pool) with
    | None, None -> Some (Domain.recommended_domain_count ())
    | _ -> domains
  in
  solutions ?exact_threshold ?domains ?pool (Arena.build prov)
  |> List.map entry_of_solution

let best ?exact_threshold prov =
  match run ?exact_threshold prov with
  | e :: _ -> e
  | [] -> assert false (* primal-dual always yields a feasible entry *)
