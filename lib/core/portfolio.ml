module R = Relational
module Bitset = Setcover.Bitset

type entry = {
  algorithm : string;
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  elapsed_ms : float;
}

(* monotonic-enough wall clock: [Sys.time] is process CPU time, which
   lies once solvers run on parallel domains (it sums across cores) *)
let timed name f =
  let t0 = Unix.gettimeofday () in
  match f () with
  | None -> None
  | Some (deleted, outcome, certificate) ->
    Some
      { Solution.algorithm = name; deleted; outcome; certificate;
        elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 }

let solvers_for ?(exact_threshold = 16) (a : Arena.t) =
  let prov = a.Arena.prov in
  let candidates = Array.length (Arena.candidate_ids a) in
  let solvers =
    [
      (if candidates <= exact_threshold then
         Some
           ( "brute",
             fun () ->
               Brute.solve prov
               |> Option.map (fun (r : Brute.result) ->
                      (r.Brute.deletion, r.Brute.outcome, Solution.Exact)) )
       else None);
      Some
        ( "primal-dual",
          fun () ->
            (* [Primal_dual.solve] minus the arena compile: full deletable
               set, nothing ignored *)
            match
              Primal_dual.solve_arena a
                ~deletable:(Bitset.full (Arena.num_stuples a))
                ~ignored_preserved:(Bitset.create (Arena.num_vtuples a))
            with
            | None -> None
            | Some r ->
              Some
                ( r.Primal_dual.deletion, r.Primal_dual.outcome,
                  Solution.Dual_bound r.Primal_dual.dual_value ) );
      Some
        ( "lowdeg",
          fun () ->
            let r = Lowdeg.solve_arena a in
            (* Theorem 4's ratio 2√‖V‖, off the arena (no re-evaluation) *)
            Some
              ( r.Lowdeg.deletion, r.Lowdeg.outcome,
                Solution.Ratio (2.0 *. sqrt (float_of_int (Arena.num_vtuples a))) ) );
      Some
        ( "dp-tree",
          fun () ->
            match Dp_tree.solve prov with
            | Ok r -> Some (r.Dp_tree.deletion, r.Dp_tree.outcome, Solution.Exact)
            | Error _ -> None );
      Some
        ( "general",
          fun () ->
            General_approx.solve prov
            |> Option.map (fun (r : General_approx.result) ->
                   ( r.General_approx.deletion, r.General_approx.outcome,
                     Solution.Ratio r.General_approx.claimed_bound )) );
      Some
        ( "greedy",
          fun () ->
            let r = Single_query.solve_greedy_multi prov in
            Some (r.Single_query.deletion, r.Single_query.outcome, Solution.Heuristic) );
    ]
    |> List.filter_map Fun.id
  in
  solvers

let solutions ?exact_threshold ?only ?domains ?pool (a : Arena.t) =
  let solvers = solvers_for ?exact_threshold a in
  let solvers =
    match only with
    | None -> solvers
    | Some names -> List.filter (fun (name, _) -> List.mem name names) solvers
  in
  (match (domains, pool) with
  | None, None -> List.filter_map (fun (name, f) -> timed name f) solvers
  | _ ->
    Par.map ?domains ?pool (fun (name, f) -> timed name f) solvers
    |> List.filter_map Fun.id)
  |> Solution.rank

(* ---- legacy entry points (pre-[Solution.t] dialect) ---- *)

let entry_of_solution (s : Solution.t) =
  {
    algorithm = s.Solution.algorithm;
    deletion = s.Solution.deleted;
    outcome = s.Solution.outcome;
    elapsed_ms = s.Solution.elapsed_ms;
  }

let run ?exact_threshold prov =
  solutions ?exact_threshold (Arena.build prov) |> List.map entry_of_solution

let run_parallel ?exact_threshold ?domains ?pool prov =
  let domains =
    (* historical default: fan out even with neither knob given *)
    match (domains, pool) with
    | None, None -> Some (Domain.recommended_domain_count ())
    | _ -> domains
  in
  solutions ?exact_threshold ?domains ?pool (Arena.build prov)
  |> List.map entry_of_solution

let best ?exact_threshold prov =
  match run ?exact_threshold prov with
  | e :: _ -> e
  | [] -> assert false (* primal-dual always yields a feasible entry *)
