module R = Relational

type entry = {
  algorithm : string;
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  elapsed_ms : float;
}

(* monotonic-enough wall clock: [Sys.time] is process CPU time, which
   lies once solvers run on parallel domains (it sums across cores) *)
let timed name f =
  let t0 = Unix.gettimeofday () in
  match f () with
  | None -> None
  | Some (deletion, outcome) ->
    Some
      { algorithm = name; deletion; outcome;
        elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000.0 }

let solvers_for ?(exact_threshold = 16) (prov : Provenance.t) =
  let candidates = R.Stuple.Set.cardinal (Provenance.candidates prov) in
  let solvers =
    [
      (if candidates <= exact_threshold then
         Some
           ( "brute",
             fun () ->
               Brute.solve prov
               |> Option.map (fun (r : Brute.result) -> (r.Brute.deletion, r.Brute.outcome)) )
       else None);
      Some
        ( "primal-dual",
          fun () ->
            let r = Primal_dual.solve prov in
            Some (r.Primal_dual.deletion, r.Primal_dual.outcome) );
      Some
        ( "lowdeg",
          fun () ->
            let r = Lowdeg.solve prov in
            Some (r.Lowdeg.deletion, r.Lowdeg.outcome) );
      Some
        ( "dp-tree",
          fun () ->
            match Dp_tree.solve prov with
            | Ok r -> Some (r.Dp_tree.deletion, r.Dp_tree.outcome)
            | Error _ -> None );
      Some
        ( "general",
          fun () ->
            General_approx.solve prov
            |> Option.map (fun (r : General_approx.result) ->
                   (r.General_approx.deletion, r.General_approx.outcome)) );
      Some
        ( "greedy",
          fun () ->
            let r = Single_query.solve_greedy_multi prov in
            Some (r.Single_query.deletion, r.Single_query.outcome) );
    ]
    |> List.filter_map Fun.id
  in
  solvers

let rank entries =
  entries
  |> List.filter (fun e -> e.outcome.Side_effect.feasible)
  |> List.sort (fun a b ->
         let c = Float.compare a.outcome.Side_effect.cost b.outcome.Side_effect.cost in
         if c <> 0 then c else Float.compare a.elapsed_ms b.elapsed_ms)

let run ?exact_threshold prov =
  solvers_for ?exact_threshold prov
  |> List.filter_map (fun (name, f) -> timed name f)
  |> rank

let run_parallel ?exact_threshold ?domains prov =
  solvers_for ?exact_threshold prov
  |> Par.map ?domains (fun (name, f) -> timed name f)
  |> List.filter_map Fun.id
  |> rank

let best ?exact_threshold prov =
  match run ?exact_threshold prov with
  | e :: _ -> e
  | [] -> assert false (* primal-dual always yields a feasible entry *)
