module R = Relational
module Bitset = Setcover.Bitset

(* Source-tuple interning table keyed by the structural hash of
   [Tuple.hash] — the one place the codebase needs tuple hashing rather
   than ordering. (View tuples need no table: their ids fall out of the
   sorted witness-map traversal, and [containing] is recovered by
   inverting [witness].) *)

module Stuple_h = Hashtbl.Make (struct
  type t = R.Stuple.t

  let equal = R.Stuple.equal
  let hash (st : R.Stuple.t) =
    (R.Tuple.hash st.R.Stuple.tuple * 31) + Hashtbl.hash st.R.Stuple.rel
end)

type t = {
  prov : Provenance.t;
  stuples : R.Stuple.t array;
  vtuples : Vtuple.t array;
  witness : int array array;
  containing : int array array;
  bad : Bitset.t;
  preserved : Bitset.t;
  weights : float array;
  bad_order : int array;
  forest_case : bool;
  dead_s : Bitset.t;
  dead_v : Bitset.t;
  generation : int;
  depths : int array option;
}

(* Per-sid rel-tree depth, memoized per physical layout: [stuples] is
   sorted rel-first, so equal relations form contiguous runs and one
   tree lookup per run suffices. A relation outside the tree appears in
   no query body, hence in no witness — max_int is inert. [None] when
   the query set admits no tree order (the non-forest case). The array
   depends only on (queries, stuples), so every re-stamp and tombstone
   of the same layout shares it — this is what keeps [with_deletions]
   off the O(‖D‖) path. *)
let compute_depths (queries : Cq.Query.t list) (stuples : R.Stuple.t array) =
  match Hypergraph.Rel_tree.of_queries queries with
  | None -> None
  | Some tree ->
    let depth = Array.make (Array.length stuples) max_int in
    let run_rel = ref "" and run_depth = ref max_int in
    Array.iteri
      (fun sid (st : R.Stuple.t) ->
        if sid = 0 || not (String.equal st.R.Stuple.rel !run_rel) then begin
          run_rel := st.R.Stuple.rel;
          run_depth :=
            (match Hypergraph.Rel_tree.depth tree st.R.Stuple.rel with
             | d -> d
             | exception Not_found -> max_int)
        end;
        depth.(sid) <- !run_depth)
      stuples;
    Some depth

let processing_order ~depths ~witness ~bad =
  (* the order [Primal_dual.processing_order] computes, on ids: bad vids
     by decreasing lca depth (forest case) or decreasing witness size,
     ties by ascending vid (= ascending Vtuple.compare) *)
  let bad_ids = Bitset.elements bad in
  match depths with
  | Some depth ->
    let lca_depth vid =
      Array.fold_left (fun acc sid -> min acc depth.(sid)) max_int witness.(vid)
    in
    let keyed = List.map (fun vid -> (lca_depth vid, vid)) bad_ids in
    ( true,
      List.sort
        (fun (da, a) (db, b) -> if da <> db then Int.compare db da else Int.compare a b)
        keyed
      |> List.map snd )
  | None ->
    let size vid = Array.length witness.(vid) in
    let keyed = List.map (fun vid -> (size vid, vid)) bad_ids in
    ( false,
      List.sort
        (fun (sa, a) (sb, b) -> if sa <> sb then Int.compare sb sa else Int.compare a b)
        keyed
      |> List.map snd )

let build (prov : Provenance.t) =
  (* [containing] is total on D and the witness map is total on V; sorted
     Map traversal hands out sids/vids in Stuple.compare / Vtuple.compare
     order, so ascending-id iteration replays exactly the Set.fold order
     of the set-based solvers (bit-identical float accumulation). *)
  let ns = R.Stuple.Map.cardinal prov.Provenance.containing in
  let stuples = Array.make ns (R.Stuple.make "" (R.Tuple.of_list [])) in
  let stuple_tbl = Stuple_h.create (2 * ns + 1) in
  let i = ref 0 in
  R.Stuple.Map.iter
    (fun st _ ->
      stuples.(!i) <- st;
      Stuple_h.replace stuple_tbl st !i;
      incr i)
    prov.Provenance.containing;
  let nv = Vtuple.Map.cardinal prov.Provenance.witness in
  let vtuples = Array.make nv (Vtuple.make "" (R.Tuple.of_list [])) in
  let witness = Array.make nv [||] in
  let weights = Array.make nv 0.0 in
  let bad = Bitset.create nv in
  (* [bad] is a subset of the witness domain and both iterate in
     ascending Vtuple.compare order — a single merge walk suffices *)
  let bad_next = ref (Vtuple.Set.to_seq prov.Provenance.bad ()) in
  let wtbl = prov.Provenance.problem.Problem.weights in
  let i = ref 0 in
  Vtuple.Map.iter
    (fun vt ws ->
      let vid = !i in
      incr i;
      vtuples.(vid) <- vt;
      let w = Array.make (R.Stuple.Set.cardinal ws) 0 in
      let j = ref 0 in
      R.Stuple.Set.iter
        (fun st ->
          w.(!j) <- Stuple_h.find stuple_tbl st;
          incr j)
        ws;
      witness.(vid) <- w;
      weights.(vid) <- Weights.get wtbl vt;
      match !bad_next with
      | Seq.Cons (b, tl) when Vtuple.equal b vt ->
        Bitset.add bad vid;
        bad_next := tl ()
      | _ -> ())
    prov.Provenance.witness;
  (match !bad_next with
   | Seq.Nil -> ()
   | Seq.Cons (b, _) ->
     invalid_arg
       (Format.asprintf "Arena.build: bad view tuple %a has no witness" Vtuple.pp b));
  let preserved = Bitset.diff (Bitset.full nv) bad in
  (* invert [witness] rather than re-interning every containing set:
     filling in ascending vid keeps each row in Vtuple.compare order *)
  let deg = Array.make ns 0 in
  Array.iter (Array.iter (fun sid -> deg.(sid) <- deg.(sid) + 1)) witness;
  let containing = Array.init ns (fun sid -> Array.make deg.(sid) 0) in
  let fill = Array.make ns 0 in
  Array.iteri
    (fun vid w ->
      Array.iter
        (fun sid ->
          containing.(sid).(fill.(sid)) <- vid;
          fill.(sid) <- fill.(sid) + 1)
        w)
    witness;
  let depths = compute_depths prov.Provenance.problem.Problem.queries stuples in
  let forest_case, order = processing_order ~depths ~witness ~bad in
  {
    prov;
    stuples;
    vtuples;
    witness;
    containing;
    bad;
    preserved;
    weights;
    bad_order = Array.of_list order;
    forest_case;
    dead_s = Bitset.create ns;
    dead_v = Bitset.create nv;
    generation = 0;
    depths;
  }

let num_stuples t = Array.length t.stuples
let num_vtuples t = Array.length t.vtuples
let live_stuples t = num_stuples t - Bitset.cardinal t.dead_s
let live_vtuples t = num_vtuples t - Bitset.cardinal t.dead_v
let tombstoned t = not (Bitset.is_empty t.dead_s && Bitset.is_empty t.dead_v)

let tombstone_ratio t =
  let total = num_stuples t + num_vtuples t in
  if total = 0 then 0.0
  else
    float_of_int (Bitset.cardinal t.dead_s + Bitset.cardinal t.dead_v)
    /. float_of_int total

(* Id lookups: binary search over the sorted arrays. The hashtables used
   during [build] are not retained — the arena is immutable and shared
   across domains, and bisection over the sorted id order is collision-
   free and allocation-free. *)

let bisect ~compare arr x =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if compare arr.(mid) x <= 0 then lo := mid else hi := mid
  done;
  if Array.length arr > 0 && compare arr.(!lo) x = 0 then Some !lo else None

let stuple_id t st =
  match bisect ~compare:R.Stuple.compare t.stuples st with
  | Some sid -> sid
  | None ->
    invalid_arg (Format.asprintf "Arena.stuple_id: unknown %a" R.Stuple.pp st)

let vtuple_id t vt =
  match bisect ~compare:Vtuple.compare t.vtuples vt with
  | Some vid -> vid
  | None -> invalid_arg (Format.asprintf "Arena.vtuple_id: unknown %a" Vtuple.pp vt)

let of_stuple_set t s =
  let b = Bitset.create (num_stuples t) in
  R.Stuple.Set.iter
    (fun st ->
      match bisect ~compare:R.Stuple.compare t.stuples st with
      | Some sid -> Bitset.add b sid
      | None -> ())
    s;
  b

let of_vtuple_set t s =
  let b = Bitset.create (num_vtuples t) in
  Vtuple.Set.iter
    (fun vt ->
      match bisect ~compare:Vtuple.compare t.vtuples vt with
      | Some vid -> Bitset.add b vid
      | None -> ())
    s;
  b

let to_stuple_set t sids =
  List.fold_left (fun acc sid -> R.Stuple.Set.add t.stuples.(sid) acc)
    R.Stuple.Set.empty sids

(* ---- incremental maintenance ----

   Mirrors the ΔV-independent / ΔV-dependent split of the provenance
   index, with one extra axis: committed deletions are *tombstones*.
   [delete] marks slots dead and bumps the generation counter; the
   physical arrays (and so every id) stay put, and only [compact]
   rewrites them. Ids are assigned in sorted-tuple order and tombstones
   never move a slot, so gathering the live slots order-preservingly
   ([compact]) lands every survivor exactly where a fresh [build] of the
   patched provenance would put it — the differential property suite
   checks both paths field by field. *)

let with_deletions (a : t) (prov : Provenance.t) =
  (* ΔV re-stamp: bad vids are interned from the (live) view answers,
     preserved is live ∧ ¬bad, and the processing order re-sorts only
     the bad ids over the memoized per-sid depths — no O(‖D‖) sweep. *)
  let nv = num_vtuples a in
  let bad = Bitset.create nv in
  Vtuple.Set.iter (fun vt -> Bitset.add bad (vtuple_id a vt)) prov.Provenance.bad;
  let preserved = Bitset.diff (Bitset.full nv) bad in
  Bitset.diff_into ~into:preserved a.dead_v;
  let forest_case, order = processing_order ~depths:a.depths ~witness:a.witness ~bad in
  { a with prov; bad; preserved; bad_order = Array.of_list order; forest_case }

let delete (a : t) ~dd (prov : Provenance.t) =
  (* tombstone the deleted sids and every view tuple whose witness meets
     [dd]; no id moves, so every array is shared and the cost is
     O(‖dd‖ + Σ|containing(dd)|) plus a few bitset words. The stamps
     stay exact: removing elements from [bad] preserves the processing
     order of the survivors (their sort keys are untouched), so
     [bad_order] filters instead of re-sorting. *)
  let dead_s = Bitset.copy a.dead_s and dead_v = Bitset.copy a.dead_v in
  R.Stuple.Set.iter
    (fun st ->
      let sid = stuple_id a st in
      Bitset.add dead_s sid;
      Array.iter (Bitset.add dead_v) a.containing.(sid))
    dd;
  let bad = Bitset.diff a.bad dead_v in
  let preserved = Bitset.diff a.preserved dead_v in
  let bad_order =
    if Bitset.equal bad a.bad then a.bad_order
    else
      Array.of_list
        (List.filter
           (fun vid -> not (Bitset.mem dead_v vid))
           (Array.to_list a.bad_order))
  in
  { a with prov; bad; preserved; bad_order; dead_s; dead_v;
    generation = a.generation + 1 }

let compact (a : t) =
  if not (tombstoned a) then a
  else begin
    let ns = num_stuples a and nv = num_vtuples a in
    let smap = Array.make ns (-1) in
    let k = ref 0 in
    for sid = 0 to ns - 1 do
      if not (Bitset.mem a.dead_s sid) then begin
        smap.(sid) <- !k;
        incr k
      end
    done;
    let ns' = !k in
    let vmap = Array.make nv (-1) in
    let k = ref 0 in
    for vid = 0 to nv - 1 do
      if not (Bitset.mem a.dead_v vid) then begin
        vmap.(vid) <- !k;
        incr k
      end
    done;
    let nv' = !k in
    let stuples = Array.make ns' (R.Stuple.make "" (R.Tuple.of_list [])) in
    for sid = 0 to ns - 1 do
      if smap.(sid) >= 0 then stuples.(smap.(sid)) <- a.stuples.(sid)
    done;
    let vtuples = Array.make nv' (Vtuple.make "" (R.Tuple.of_list [])) in
    let witness = Array.make nv' [||] in
    let weights = Array.make nv' 0.0 in
    let bad = Bitset.create nv' in
    for vid = 0 to nv - 1 do
      let nvid = vmap.(vid) in
      if nvid >= 0 then begin
        vtuples.(nvid) <- a.vtuples.(vid);
        (* a live view tuple's witness contains no dead sid, so the
           remap below never hits a dead id *)
        witness.(nvid) <- Array.map (fun sid -> smap.(sid)) a.witness.(vid);
        weights.(nvid) <- a.weights.(vid);
        if Bitset.mem a.bad vid then Bitset.add bad nvid
      end
    done;
    let preserved = Bitset.diff (Bitset.full nv') bad in
    let deg = Array.make ns' 0 in
    Array.iter (Array.iter (fun sid -> deg.(sid) <- deg.(sid) + 1)) witness;
    let containing = Array.init ns' (fun sid -> Array.make deg.(sid) 0) in
    let fill = Array.make ns' 0 in
    Array.iteri
      (fun vid w ->
        Array.iter
          (fun sid ->
            containing.(sid).(fill.(sid)) <- vid;
            fill.(sid) <- fill.(sid) + 1)
          w)
      witness;
    let depths = compute_depths a.prov.Provenance.problem.Problem.queries stuples in
    let forest_case, order = processing_order ~depths ~witness ~bad in
    {
      prov = a.prov;
      stuples;
      vtuples;
      witness;
      containing;
      bad;
      preserved;
      weights;
      bad_order = Array.of_list order;
      forest_case;
      dead_s = Bitset.create ns';
      dead_v = Bitset.create nv';
      generation = 0;
      depths;
    }
  end

(* ---- resurrection fast path for [extend] ----

   A delete/re-insert workload re-creates tuples whose slots still sit
   dead in the arrays. If every inserted tuple bisects to a dead stuple
   slot, and every view answer it re-creates bisects to a dead vtuple
   slot whose stored witness row and weight match the new provenance
   exactly, then flipping those dead bits back *is* the extended arena —
   no sorted-run merge, no id movement, O(‖ins‖·log + Σ|containing(ins)|).
   Completeness: a gained view tuple's witness contains an inserted
   tuple (it is a delta answer), so enumerating [vtuples_containing] of
   each insert visits every gained answer. Any mismatch — a genuinely
   new tuple, an answer re-derived through a different witness, a row
   referencing a still-dead slot — falls back to compact-and-merge. *)
let try_resurrect (a : t) ~ins (prov' : Provenance.t) =
  let exception Fallback in
  try
    let dead_s = Bitset.copy a.dead_s and dead_v = Bitset.copy a.dead_v in
    R.Stuple.Set.iter
      (fun st ->
        match bisect ~compare:R.Stuple.compare a.stuples st with
        | Some sid when Bitset.mem dead_s sid -> Bitset.remove dead_s sid
        | _ -> raise Fallback)
      ins;
    let resurrected = ref [] in
    let wtbl = prov'.Provenance.problem.Problem.weights in
    R.Stuple.Set.iter
      (fun st ->
        Vtuple.Set.iter
          (fun vt ->
            match bisect ~compare:Vtuple.compare a.vtuples vt with
            | None -> raise Fallback
            | Some vid ->
              if Bitset.mem dead_v vid then begin
                (* the dead slot must reproduce the new derivation
                   bit-exactly: same witness row, same weight *)
                let row = to_stuple_set a (Array.to_list a.witness.(vid)) in
                if
                  (not (R.Stuple.Set.equal row (Provenance.witness_of prov' vt)))
                  || not (Float.equal a.weights.(vid) (Weights.get wtbl vt))
                then raise Fallback;
                Array.iter
                  (fun sid -> if Bitset.mem dead_s sid then raise Fallback)
                  a.witness.(vid);
                Bitset.remove dead_v vid;
                resurrected := vid :: !resurrected
              end
              else if not (Bitset.mem a.dead_v vid) then
                (* a live view tuple cannot contain a dead source tuple *)
                raise Fallback)
          (Provenance.vtuples_containing prov' st))
      ins;
    (* resurrected answers are live ∧ ¬bad (ΔV predates them), so only
       [preserved] grows; [bad]/[bad_order]/[depths] are untouched *)
    let preserved = Bitset.copy a.preserved in
    List.iter (Bitset.add preserved) !resurrected;
    Some
      { a with prov = prov'; preserved; dead_s; dead_v;
        generation = a.generation + 1 }
  with Fallback -> None

let can_extend_in_place (a : t) ~ins (prov' : Provenance.t) =
  Option.is_some (try_resurrect a ~ins prov')

let extend (a : t) ~ins (prov : Provenance.t) =
  match try_resurrect a ~ins prov with
  | Some r -> r
  | None ->
  (* merge path: ids move, so dead slots must be gathered out first —
     the merge below assumes the old arrays are exactly the old live
     state *)
  let a = compact a in
  let ns = num_stuples a in
  let ins_arr = Array.of_list (R.Stuple.Set.elements ins) in
  let ni = Array.length ins_arr in
  let ns' = ns + ni in
  let stuples = Array.make ns' (R.Stuple.make "" (R.Tuple.of_list [])) in
  let smap = Array.make ns (-1) in
  (* merge the two sorted runs: id order is sorted-tuple order, so an old
     sid shifts by exactly the number of inserted tuples before it *)
  let i = ref 0 and j = ref 0 in
  for sid' = 0 to ns' - 1 do
    let take_old =
      !j >= ni || (!i < ns && R.Stuple.compare a.stuples.(!i) ins_arr.(!j) < 0)
    in
    if take_old then begin
      stuples.(sid') <- a.stuples.(!i);
      smap.(!i) <- sid';
      incr i
    end
    else begin
      stuples.(sid') <- ins_arr.(!j);
      incr j
    end
  done;
  let nv = num_vtuples a in
  let nv' = Vtuple.Map.cardinal prov.Provenance.witness in
  let vtuples = Array.make nv' (Vtuple.make "" (R.Tuple.of_list [])) in
  let witness = Array.make nv' [||] in
  let weights = Array.make nv' 0.0 in
  let bad = Bitset.create nv' in
  let wtbl = prov.Provenance.problem.Problem.weights in
  (* the old vtuples are an ascending subsequence of the (sorted) new
     witness domain — one merge walk separates survivors (rows remapped,
     weights and bad bits copied) from gained view tuples (witness
     interned by bisection over the new stuple table) *)
  let old_vid = ref 0 in
  let vid = ref 0 in
  Vtuple.Map.iter
    (fun vt ws ->
      let v = !vid in
      incr vid;
      vtuples.(v) <- vt;
      if !old_vid < nv && Vtuple.equal a.vtuples.(!old_vid) vt then begin
        witness.(v) <- Array.map (fun sid -> smap.(sid)) a.witness.(!old_vid);
        weights.(v) <- a.weights.(!old_vid);
        if Bitset.mem a.bad !old_vid then Bitset.add bad v;
        incr old_vid
      end
      else begin
        let w = Array.make (R.Stuple.Set.cardinal ws) 0 in
        let k = ref 0 in
        R.Stuple.Set.iter
          (fun st ->
            (match bisect ~compare:R.Stuple.compare stuples st with
            | Some sid -> w.(!k) <- sid
            | None ->
              invalid_arg
                (Format.asprintf "Arena.extend: witness member %a outside D"
                   R.Stuple.pp st));
            incr k)
          ws;
        witness.(v) <- w;
        weights.(v) <- Weights.get wtbl vt
        (* a gained view tuple is never bad: ΔV predates it *)
      end)
    prov.Provenance.witness;
  assert (!old_vid = nv);
  let preserved = Bitset.diff (Bitset.full nv') bad in
  let deg = Array.make ns' 0 in
  Array.iter (Array.iter (fun sid -> deg.(sid) <- deg.(sid) + 1)) witness;
  let containing = Array.init ns' (fun sid -> Array.make deg.(sid) 0) in
  let fill = Array.make ns' 0 in
  Array.iteri
    (fun vid w ->
      Array.iter
        (fun sid ->
          containing.(sid).(fill.(sid)) <- vid;
          fill.(sid) <- fill.(sid) + 1)
        w)
    witness;
  let depths = compute_depths prov.Provenance.problem.Problem.queries stuples in
  let forest_case, order = processing_order ~depths ~witness ~bad in
  {
    prov;
    stuples;
    vtuples;
    witness;
    containing;
    bad;
    preserved;
    weights;
    bad_order = Array.of_list order;
    forest_case;
    dead_s = Bitset.create ns';
    dead_v = Bitset.create nv';
    generation = 0;
    depths;
  }

(* ---- connected components ----

   Components of the stuple↔vtuple incidence graph: two source tuples are
   connected iff some witness contains both. A view tuple's witness lies
   entirely inside one component, so solving per component and unioning
   the answers is exact for both feasibility and cost. Components are
   numbered canonically — by first appearance in ascending sid order —
   which makes any two membership-equal partitions bit-identical, in
   particular the incrementally patched one and a scratch recompute. *)

type partition = {
  comp_of_sid : int array;
  comp_of_vid : int array;
  num_components : int;
}

(* union-find with union-by-min (the root is the smallest member) and
   path compression — shared with [Setcover.Decompose] *)
let uf_find = Setcover.Unionfind.find
let uf_union = Setcover.Unionfind.union

(* canonical labels: scanning ascending *live* sid, each root gets the
   next fresh label on first sight ([labels] doubles as the root->label
   table — union-by-min guarantees the root is visited first, and a live
   class's root is live because dead slots are never unioned into live
   rows). Dead slots keep label -1. Labels therefore depend only on the
   live membership, which is exactly why tombstoned partitions come out
   bit-identical to their compacted form modulo the id gather. *)
let canonical_labels ~dead parent =
  let n = Array.length parent in
  let labels = Array.make n (-1) in
  let next = ref 0 in
  for sid = 0 to n - 1 do
    if not (Bitset.mem dead sid) then begin
      let r = uf_find parent sid in
      if labels.(r) = -1 then begin
        labels.(r) <- !next;
        incr next
      end;
      labels.(sid) <- labels.(r)
    end
  done;
  (labels, !next)

let comp_of_vid_of ~dead_v ~comp_of_sid witness =
  Array.mapi
    (fun vid w ->
      if Bitset.mem dead_v vid || Array.length w = 0 then -1
      else comp_of_sid.(w.(0)))
    witness

let partition (a : t) =
  let ns = num_stuples a in
  let parent = Setcover.Unionfind.create ns in
  Array.iteri
    (fun vid w ->
      if Array.length w > 1 && not (Bitset.mem a.dead_v vid) then begin
        let s0 = w.(0) in
        Array.iter (fun sid -> uf_union parent s0 sid) w
      end)
    a.witness;
  let comp_of_sid, num_components = canonical_labels ~dead:a.dead_s parent in
  {
    comp_of_sid;
    comp_of_vid = comp_of_vid_of ~dead_v:a.dead_v ~comp_of_sid a.witness;
    num_components;
  }

let compact_partition ~(before : t) (p : partition) =
  if not (tombstoned before) then p
  else begin
    (* canonical labels are assigned over live slots only, so gathering
       the live entries changes no label — dirty flags keyed by
       component id survive compaction untouched *)
    let ns = num_stuples before and nv = num_vtuples before in
    let comp_of_sid = Array.make (live_stuples before) (-1) in
    let k = ref 0 in
    for sid = 0 to ns - 1 do
      if not (Bitset.mem before.dead_s sid) then begin
        comp_of_sid.(!k) <- p.comp_of_sid.(sid);
        incr k
      end
    done;
    let comp_of_vid = Array.make (live_vtuples before) (-1) in
    let k = ref 0 in
    for vid = 0 to nv - 1 do
      if not (Bitset.mem before.dead_v vid) then begin
        comp_of_vid.(!k) <- p.comp_of_vid.(vid);
        incr k
      end
    done;
    { comp_of_sid; comp_of_vid; num_components = p.num_components }
  end

let partition_delete (p : partition) ~(before : t) ~dd (a' : t) =
  (* deletions only split components: no witness row gains members, so a
     component loses its dead tuples and possibly falls apart, while
     components containing no deleted tuple keep their membership (and,
     with canonical renumbering, end up exactly where a scratch recompute
     puts them). Only the rows of affected components are re-unioned. *)
  if before.stuples == a'.stuples then begin
    (* tombstone branch: [a' = delete before ~dd _] shares the physical
       arrays, so the correspondence is the identity — re-union only the
       affected components' live rows over the shared slots. The label
       scan walks ascending live sids exactly like a scratch
       [partition a'], so the result is bit-identical to it. *)
    let ns = num_stuples before in
    let affected = Array.make p.num_components false in
    R.Stuple.Set.iter
      (fun st -> affected.(p.comp_of_sid.(stuple_id before st)) <- true)
      dd;
    let parent = Setcover.Unionfind.create ns in
    Array.iteri
      (fun vid w ->
        if
          Array.length w > 1
          && (not (Bitset.mem a'.dead_v vid))
          && affected.(p.comp_of_sid.(w.(0)))
        then begin
          let s0 = w.(0) in
          Array.iter (fun sid -> uf_union parent s0 sid) w
        end)
      a'.witness;
    let label_of_old = Array.make p.num_components (-1) in
    let label_of_root = Array.make ns (-1) in
    let comp_of_sid = Array.make ns (-1) in
    let next = ref 0 in
    for sid = 0 to ns - 1 do
      if not (Bitset.mem a'.dead_s sid) then begin
        let c = p.comp_of_sid.(sid) in
        if affected.(c) then begin
          let r = uf_find parent sid in
          if label_of_root.(r) = -1 then begin
            label_of_root.(r) <- !next;
            incr next
          end;
          comp_of_sid.(sid) <- label_of_root.(r)
        end
        else begin
          if label_of_old.(c) = -1 then begin
            label_of_old.(c) <- !next;
            incr next
          end;
          comp_of_sid.(sid) <- label_of_old.(c)
        end
      end
    done;
    {
      comp_of_sid;
      comp_of_vid = comp_of_vid_of ~dead_v:a'.dead_v ~comp_of_sid a'.witness;
      num_components = !next;
    }
  end
  else begin
    (* gather branch: [a'] is compacted, [before] may itself carry older
       tombstones — the dead set below folds both axes into one
       old-to-new correspondence *)
    let ns = num_stuples before in
    let affected = Array.make p.num_components false in
    R.Stuple.Set.iter
      (fun st -> affected.(p.comp_of_sid.(stuple_id before st)) <- true)
      dd;
    let dead = Bitset.copy before.dead_s in
    R.Stuple.Set.iter (fun st -> Bitset.add dead (stuple_id before st)) dd;
    let ns' = num_stuples a' in
    let old_of_new = Array.make ns' (-1) in
    let k = ref 0 in
    for sid = 0 to ns - 1 do
      if not (Bitset.mem dead sid) then begin
        old_of_new.(!k) <- sid;
        incr k
      end
    done;
    assert (!k = ns');
    let old_comp sid' = p.comp_of_sid.(old_of_new.(sid')) in
    let parent = Setcover.Unionfind.create ns' in
    Array.iter
      (fun w ->
        if Array.length w > 1 && affected.(old_comp w.(0)) then begin
          let s0 = w.(0) in
          Array.iter (fun sid -> uf_union parent s0 sid) w
        end)
      a'.witness;
    (* fresh labels by first appearance: unaffected sids keyed by their
       old component, affected ones by their new union-find root *)
    let label_of_old = Array.make p.num_components (-1) in
    let label_of_root = Array.make ns' (-1) in
    let comp_of_sid = Array.make ns' (-1) in
    let next = ref 0 in
    for sid = 0 to ns' - 1 do
      let c = old_comp sid in
      if affected.(c) then begin
        let r = uf_find parent sid in
        if label_of_root.(r) = -1 then begin
          label_of_root.(r) <- !next;
          incr next
        end;
        comp_of_sid.(sid) <- label_of_root.(r)
      end
      else begin
        if label_of_old.(c) = -1 then begin
          label_of_old.(c) <- !next;
          incr next
        end;
        comp_of_sid.(sid) <- label_of_old.(c)
      end
    done;
    {
      comp_of_sid;
      comp_of_vid = comp_of_vid_of ~dead_v:a'.dead_v ~comp_of_sid a'.witness;
      num_components = !next;
    }
  end

let partition_insert (p : partition) ~(before : t) (a' : t) =
  (* insertions only merge components: every old witness row survives
     with its membership intact, so the old partition is a refinement of
     the new one. Chain-union each old component (its closure over the
     old rows, cheaper than replaying them), then union only the gained
     witness rows — the only rows that can bridge shards. Canonical
     labels are a function of connectivity alone, so the result is
     bit-identical to [partition a']. *)
  if before.stuples == a'.stuples then begin
    (* resurrect branch: the insertion flipped dead bits back in place,
       so the correspondence is the identity and the gained view tuples
       are exactly the newly-live vids *)
    let ns = num_stuples before in
    let parent = Setcover.Unionfind.create ns in
    let first_of_comp = Array.make p.num_components (-1) in
    for sid = 0 to ns - 1 do
      if not (Bitset.mem before.dead_s sid) then begin
        let c = p.comp_of_sid.(sid) in
        if first_of_comp.(c) = -1 then first_of_comp.(c) <- sid
        else uf_union parent first_of_comp.(c) sid
      end
    done;
    Bitset.iter_diff
      (fun vid ->
        let w = a'.witness.(vid) in
        if Array.length w > 1 then begin
          let s0 = w.(0) in
          Array.iter (fun sid -> uf_union parent s0 sid) w
        end)
      before.dead_v a'.dead_v;
    let comp_of_sid, num_components = canonical_labels ~dead:a'.dead_s parent in
    {
      comp_of_sid;
      comp_of_vid = comp_of_vid_of ~dead_v:a'.dead_v ~comp_of_sid a'.witness;
      num_components;
    }
  end
  else begin
    (* merge branch: [a'] came out of the sorted-run merge, which
       compacts first — fold any older tombstones of [before] away so
       the merge walk below sees exactly the old live run *)
    let p, before =
      if tombstoned before then (compact_partition ~before p, compact before)
      else (p, before)
    in
    let ns = num_stuples before and ns' = num_stuples a' in
    let parent = Setcover.Unionfind.create ns' in
    let first_of_comp = Array.make p.num_components (-1) in
    let i = ref 0 in
    for sid' = 0 to ns' - 1 do
      if !i < ns && R.Stuple.equal before.stuples.(!i) a'.stuples.(sid') then begin
        let c = p.comp_of_sid.(!i) in
        incr i;
        if first_of_comp.(c) = -1 then first_of_comp.(c) <- sid'
        else uf_union parent first_of_comp.(c) sid'
      end
    done;
    assert (!i = ns);
    let nv = num_vtuples before and nv' = num_vtuples a' in
    let j = ref 0 in
    for vid' = 0 to nv' - 1 do
      if !j < nv && Vtuple.equal before.vtuples.(!j) a'.vtuples.(vid') then incr j
      else begin
        let w = a'.witness.(vid') in
        if Array.length w > 1 then begin
          let s0 = w.(0) in
          Array.iter (fun sid -> uf_union parent s0 sid) w
        end
      end
    done;
    assert (!j = nv);
    let comp_of_sid, num_components = canonical_labels ~dead:a'.dead_s parent in
    {
      comp_of_sid;
      comp_of_vid = comp_of_vid_of ~dead_v:a'.dead_v ~comp_of_sid a'.witness;
      num_components;
    }
  end

(* ---- shattering ---- *)

type shard = {
  arena : t;
  component : int;
  global_sids : int array;
  global_vids : int array;
}

type proto_shard = {
  p_component : int;
  p_sids : int array;
  p_vids : int array;
}

let active_components ?partition:part (a : t) =
  let p = match part with Some p -> p | None -> partition a in
  (* only components with a bad view tuple need solving *)
  let active = Array.make p.num_components false in
  Bitset.iter (fun vid -> active.(p.comp_of_vid.(vid)) <- true) a.bad;
  let sids_of = Array.make p.num_components [] in
  for sid = num_stuples a - 1 downto 0 do
    let c = p.comp_of_sid.(sid) in
    if c >= 0 && active.(c) then sids_of.(c) <- sid :: sids_of.(c)
  done;
  let vids_of = Array.make p.num_components [] in
  for vid = num_vtuples a - 1 downto 0 do
    let c = p.comp_of_vid.(vid) in
    if c >= 0 && active.(c) then vids_of.(c) <- vid :: vids_of.(c)
  done;
  let protos = ref [] in
  for c = p.num_components - 1 downto 0 do
    if active.(c) then
      protos :=
        { p_component = c; p_sids = Array.of_list sids_of.(c);
          p_vids = Array.of_list vids_of.(c) }
        :: !protos
  done;
  Array.of_list !protos

let materialize (a : t) (ps : proto_shard) =
  let global_sids = ps.p_sids and global_vids = ps.p_vids in
  let stuples =
    Array.fold_left
      (fun acc sid -> R.Stuple.Set.add a.stuples.(sid) acc)
      R.Stuple.Set.empty global_sids
  in
  let vtuples =
    Array.fold_left
      (fun acc vid -> Vtuple.Set.add a.vtuples.(vid) acc)
      Vtuple.Set.empty global_vids
  in
  let prov = Provenance.restrict a.prov ~stuples ~vtuples in
  let arena = build prov in
  (* restrict+build assigns shard ids in sorted-tuple order; the
     global id buckets are ascending subsequences of the (sorted)
     parent arrays, so position k of the shard is global_sids.(k) *)
  assert (num_stuples arena = Array.length global_sids);
  assert (num_vtuples arena = Array.length global_vids);
  { arena; component = ps.p_component; global_sids; global_vids }

let shatter ?partition:part (a : t) =
  Array.map (materialize a) (active_components ?partition:part a)

let preserved_degree t sid =
  let d = ref 0 in
  Array.iter (fun vid -> if Bitset.mem t.preserved vid then incr d) t.containing.(sid);
  !d

let candidate_ids t =
  let mark = Bitset.create (num_stuples t) in
  Array.iter (fun vid -> Array.iter (Bitset.add mark) t.witness.(vid)) t.bad_order;
  Array.of_list (Bitset.elements mark)
