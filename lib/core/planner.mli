(** Shatter-and-plan: decompose an instance into independent components
    ({!Arena.shatter}), classify each shard, solve shards with the
    cheapest adequate strategy, and recombine.

    Component independence (a witness lies entirely inside one
    component) makes the recombination exact: the union of per-shard
    deletions is feasible, its cost is the sum of shard costs, and the
    instance optimum is the sum of shard optima — so per-shard
    guarantees compose into a {!Solution.Composite} certificate whose
    factor is the {e max} of the shard factors.

    Per-shard policy, in order:
    - {e exact-small} — the candidate set fits under [exact_threshold]:
      brute force, factor 1;
    - {e exact-forest} — {!Dp_tree.applicable}: the pivot-forest DP,
      factor 1;
    - {e approximate} — the full approximation portfolio (primal-dual,
      LowDeg, the general reduction, greedy) plus a LowDeg variant run
      with the {e parent} instance's √‖V‖ wide-pruning threshold, so the
      decomposed winner never costs more than the whole-instance LowDeg.
    An exact shard whose solver times out or crashes falls back to the
    approximate tier (and is reported as such).

    {2 Shard memoization}

    The same independence makes per-shard answers {e reusable}: a shard
    untouched by the deltas since it was last solved is the same
    sub-instance, and the solvers are deterministic, so its answer can
    be spliced back without running anything. {!solve} takes an optional
    {!cache} — a bounded LRU keyed by canonical content fingerprints
    ({!Fingerprint.arena}, invariant under component renumbering and id
    compaction) — together with a [dirty] predicate from the caller's
    delta tracking; only dirty shards re-solve, and the composite
    certificate is recomputed over {e all} shards (cost = sum,
    factor = max) so spliced rounds are solution-equivalent to fresh
    ones. See {!create_cache} for the invalidation rules. *)

type classification =
  | Exact_small     (** candidates ≤ [exact_threshold]: brute force *)
  | Exact_forest    (** pivot-forest instance: {!Dp_tree} *)
  | Approximate     (** approximation portfolio *)

type shard_decision = {
  component : int;          (** parent component id ({!Arena.partition}) *)
  stuples : int;
  vtuples : int;
  bad : int;
  classification : classification;
  winner : string;          (** algorithm of the shard's chosen solution *)
  cost : float;             (** its side-effect cost *)
  exact : bool;             (** did an exact tier produce the answer? *)
  degraded : bool;          (** shard fell to the unbudgeted-greedy ladder *)
  cached : bool;            (** spliced from the shard cache, no solver ran *)
  fingerprint : Fingerprint.t option;
      (** the shard's cache key when its answer entered (or was spliced
          from) the shard cache; [None] when nothing was memoized. The
          engine records these in its {!Component_index} memos, which
          {!seed_fragments} restricts onto surviving fragments. *)
}

type report = {
  solutions : Solution.t list;
      (** decomposed: the single recombined {!Solution.Composite};
          otherwise the whole-instance portfolio ranking *)
  failures : Portfolio.failure list;  (** across all shards *)
  degraded : bool;                    (** some shard degraded *)
  decomposed : bool;
      (** true iff the shard pipeline produced the result — any round
          with ≥ 1 active component under [decompose:true]; false when
          the instance had nothing to solve, [decompose:false] was
          passed, or an unsolvable shard forced the whole-instance
          fallback *)
  shards : shard_decision list;       (** ascending by component *)
  shards_cached : int;
      (** how many of [shards] were spliced from the cache this call *)
}

val pp_classification : Format.formatter -> classification -> unit
val pp_shard_decision : Format.formatter -> shard_decision -> unit

(** {2 Shard solution cache} *)

(** A bounded LRU ({!Setcover.Lru}) from {!Fingerprint.t} to memoized
    shard answers (winner, deleted set, cost, certificate,
    classification). Reuse rules:
    - {e exact} entries (brute / DP) depend on nothing outside the shard:
      reusable unconditionally;
    - {e approximate} entries also saw the parent instance's √‖V‖
      LowDeg wide-pruning threshold. The pruning test compares integer
      witness widths against the threshold, so behaviour depends only on
      its integer floor (“bucket”): an entry is reusable iff the bucket
      is unchanged. The parent-threshold variant's [Ratio (2·√‖V‖)]
      certificate quotes the exact float, so splicing rewrites it to the
      current threshold — exactly what a fresh solve would certify.
    Only deterministic answers are stored: a degraded shard, an
    [Anytime] winner, or any recorded timeout/crash is never cached.

    A cache must not be shared between sessions with different solver
    configurations ([exact_threshold] / [only]) — the engine owns one
    cache per session, whose configuration is fixed at [create]. *)
type cache

(** One memoized shard answer — {e plain data}, exactly what splicing a
    clean shard back needs (no arena, no closures): the engine's
    snapshot codec serializes entries verbatim and a recovered session
    restores them ({!cache_entries} / {!cache_restore}). *)
type cache_entry = {
  e_classification : classification;
  e_winner : string;             (** algorithm of the memoized answer *)
  e_deleted : Relational.Stuple.Set.t;
  e_cost : float;
  e_certificate : Solution.certificate;
  e_forest : bool;               (** the shard arena's forest flag *)
  e_threshold : float;
      (** the parent √‖V‖ wide-pruning threshold at solve time *)
  e_split : bool;
      (** entered the cache by fragment restriction ({!seed_fragments})
          rather than by solving; splicing it counts as a fragment
          reuse *)
  e_decomposition : Decomposition.t option;
      (** the winner's per-sub-structure cost decomposition, recorded at
          solve time — the raw material {!seed_fragments} projects onto
          surviving fragments. [None] only on entries loaded from
          pre-decomposition (v2) snapshots; such entries still splice
          but seed only through the [Exact_small] identity path. *)
}

(** [create_cache ?capacity ()] — an empty cache holding at most
    [capacity] (default 512) shard answers. *)
val create_cache : ?capacity:int -> unit -> cache

val cache_length : cache -> int

(** Lifetime hit / miss counters (a miss is a clean shard whose
    fingerprint was absent or whose entry failed the reuse rules). *)

val cache_hits : cache -> int
val cache_misses : cache -> int

(** Approximate-tier entries dropped by proactive bucket eviction: when
    the parent √‖V‖ threshold bucket drifts between rounds, entries
    solved under the old bucket can never be spliced again and are
    removed eagerly (one sweep per drift) instead of lingering in LRU
    slots until discovered stale at splice time. *)
val cache_evictions : cache -> int

(** Lifetime count of splices whose entry was seeded by
    {!seed_fragments} — cache hits that exist only because a split's
    surviving fragment inherited its parent's answer by restriction. *)
val cache_fragment_reuses : cache -> int

(** {!cache_fragment_reuses} split by the seeded entry's tier — which
    restriction path (identity, forest-tree replay, approximate
    identity-with-rewrite) produced the spliced answer. The three always
    sum to the total. *)

val cache_fragment_reuses_exact : cache -> int
val cache_fragment_reuses_forest : cache -> int
val cache_fragment_reuses_approx : cache -> int

val cache_clear : cache -> unit

(** {2 Snapshot hooks}

    A cache's observable state is plain data: the bindings in recency
    order plus the counters. [Engine]'s crash-consistent snapshots
    persist exactly this pair; restoring it rebuilds a cache
    bit-identical to the one written — same future eviction order, same
    lifetime counters, same bucket latch. *)

(** The counter block, exported and restored alongside the entries. *)
type cache_stats = {
  s_hits : int;
  s_misses : int;
  s_evictions : int;
  s_last_bucket : int option;
      (** the √‖V‖ threshold-bucket latch ({!cache_evictions}) *)
  s_fragment_reuses : int;
  s_fragment_reuses_exact : int;
  s_fragment_reuses_forest : int;
  s_fragment_reuses_approx : int;
}

val cache_stats : cache -> cache_stats

(** Current bindings, most-recently-used first. *)
val cache_entries : cache -> (Fingerprint.t * cache_entry) list

(** Replace the cache's content with [entries] (MRU-first, as
    {!cache_entries} returns them) and, when given, the counter block.
    Entries beyond the cache's capacity evict in LRU order, so restoring
    into a smaller cache keeps the most recent answers. *)
val cache_restore :
  ?stats:cache_stats -> cache -> (Fingerprint.t * cache_entry) list -> unit

(** Solve via shatter-and-plan. Every round with ≥ 1 active component
    routes through the shard pipeline — including the single-component
    case, which gets the whole [budget_ms] and still consults the shard
    cache; with ≥ 2 the shards fan out on [pool] / [domains]
    ({!Par.map_result}; each shard's inner portfolio stays sequential)
    and [budget_ms] splits evenly across shards. With no active
    component (or [decompose:false]) this is exactly
    [Portfolio.solutions_report ... a], compacting a tombstoned arena
    first — the shard pipeline itself never needs to: proto-shard
    sweeps, fingerprints, and materialization all skip dead slots.
    [partition] (default: computed fresh) lets the engine pass its
    incrementally maintained one.
    [only] restricts the participating algorithms as in
    {!Portfolio.solutions_report} (shards classify around missing
    tiers). If any shard produces no feasible answer at all, the planner
    falls back to the whole-instance portfolio rather than return an
    infeasible union.

    [index] replaces the active-component sweep with the engine's live
    {!Component_index} — O(‖ΔV‖ + active) enumeration off maintained
    rosters, bit-identical proto-shards. It wins over [partition] when
    both are given; [partition] remains the sweep path's reuse hook.

    [cache] enables shard memoization; [dirty component] says whether
    the caller's deltas may have touched that component since its answer
    was cached (default: every component — with no tracking the cache
    only ever stores). A shard is spliced iff it is clean, its
    fingerprint is present, and the entry passes the reuse rules; the
    budget splits across the shards actually re-solved (a spliced shard
    consumes no wall-clock), so fresh solves in a mostly-cached round
    get the deadline headroom the splices freed. *)
val solve :
  ?exact_threshold:int ->
  ?only:string list ->
  ?domains:int ->
  ?pool:Par.Pool.t ->
  ?budget_ms:float ->
  ?decompose:bool ->
  ?partition:Arena.partition ->
  ?index:Component_index.t ->
  ?cache:cache ->
  ?dirty:(int -> bool) ->
  Arena.t ->
  report

(** {2 Split-aware fragment seeding}

    [seed_fragments cache ~before ~before_index ~dd ~after ~after_index]
    — called by the engine right after committing a tombstoning deletion
    [dd] ([after = Arena.delete before ~dd _]; the identity on the
    gather path, returning []). For each component of [before] touched
    by [dd] whose {!Component_index.memo} points at a cached entry, if
    the memoized ΔV survived intact inside one non-empty fragment of
    [after], the parent's entry is restricted onto the fragment — all
    three tiers participate. The identity tiers ([Exact_small] /
    [Approximate]) additionally require that the deletion killed no
    view tuple whose witness meets the ΔV's candidate set; the forest
    tier replays killed weight through its recorded tree instead:

    - [Exact_small]: identity — the brute-force tier's result is a
      function of the candidates, the bad view tuples, and the preserved
      views incident to a candidate, all inherited verbatim;
    - [Exact_forest]: the recorded DP tree is replayed through
      {!Decomposition.restrict_forest}, discounting lost preserved
      endpoint weight (the entry's cost drops by the pivot's replayed
      discount) and refusing whenever a surviving node's cut decision
      could flip or the fragment would root at a different pivot;
    - [Approximate]: identity, additionally requiring the fragment's
      √‖V‖ bucket to equal the parent shard's recorded one, the fragment
      to stay outside the forest tier, and a rewritable winner
      certificate ([Ratio] of a shard-local LowDeg win is rewritten to
      the fragment's own [2√‖V‖]; a "general" winner never seeds).

    The restricted entry is re-keyed under the fragment's fingerprint
    (hashed with the memoized ΔV via [Fingerprint.shard ~bad]), marked
    [e_split], and the fragment's memo updated so reuse chains across
    successive splits.

    Returns the seeded fragment components (ascending) — the engine
    clears their dirty flags, so the next request splices them without
    materializing or solving anything. A fresh solve of a seeded
    fragment produces a bit-identical answer (lockstep-tested in
    [test/test_compindex.ml] and [test/test_decomp_splice.ml]). *)
val seed_fragments :
  cache ->
  before:Arena.t ->
  before_index:Component_index.t ->
  dd:Relational.Stuple.Set.t ->
  after:Arena.t ->
  after_index:Component_index.t ->
  int list
