(** Shatter-and-plan: decompose an instance into independent components
    ({!Arena.shatter}), classify each shard, solve shards with the
    cheapest adequate strategy, and recombine.

    Component independence (a witness lies entirely inside one
    component) makes the recombination exact: the union of per-shard
    deletions is feasible, its cost is the sum of shard costs, and the
    instance optimum is the sum of shard optima — so per-shard
    guarantees compose into a {!Solution.Composite} certificate whose
    factor is the {e max} of the shard factors.

    Per-shard policy, in order:
    - {e exact-small} — the candidate set fits under [exact_threshold]:
      brute force, factor 1;
    - {e exact-forest} — {!Dp_tree.applicable}: the pivot-forest DP,
      factor 1;
    - {e approximate} — the full approximation portfolio (primal-dual,
      LowDeg, the general reduction, greedy) plus a LowDeg variant run
      with the {e parent} instance's √‖V‖ wide-pruning threshold, so the
      decomposed winner never costs more than the whole-instance LowDeg.
    An exact shard whose solver times out or crashes falls back to the
    approximate tier (and is reported as such). *)

type classification =
  | Exact_small     (** candidates ≤ [exact_threshold]: brute force *)
  | Exact_forest    (** pivot-forest instance: {!Dp_tree} *)
  | Approximate     (** approximation portfolio *)

type shard_decision = {
  component : int;          (** parent component id ({!Arena.partition}) *)
  stuples : int;
  vtuples : int;
  bad : int;
  classification : classification;
  winner : string;          (** algorithm of the shard's chosen solution *)
  cost : float;             (** its side-effect cost *)
  exact : bool;             (** did an exact tier produce the answer? *)
  degraded : bool;          (** shard fell to the unbudgeted-greedy ladder *)
}

type report = {
  solutions : Solution.t list;
      (** decomposed: the single recombined {!Solution.Composite};
          otherwise the whole-instance portfolio ranking *)
  failures : Portfolio.failure list;  (** across all shards *)
  degraded : bool;                    (** some shard degraded *)
  decomposed : bool;
      (** false when the instance had ≤ 1 active component (or
          [decompose:false]) and the whole-instance portfolio ran *)
  shards : shard_decision list;       (** ascending by component *)
}

val pp_classification : Format.formatter -> classification -> unit
val pp_shard_decision : Format.formatter -> shard_decision -> unit

(** Solve via shatter-and-plan. With ≥ 2 active components the shards
    fan out on [pool] / [domains] ({!Par.map_result}; each shard's inner
    portfolio stays sequential) and [budget_ms] splits evenly across
    shards; otherwise this is exactly
    [Portfolio.solutions_report ... a]. [partition] (default: computed
    fresh) lets the engine pass its incrementally maintained one.
    [only] restricts the participating algorithms as in
    {!Portfolio.solutions_report} (shards classify around missing
    tiers). If any shard produces no feasible answer at all, the planner
    falls back to the whole-instance portfolio rather than return an
    infeasible union. *)
val solve :
  ?exact_threshold:int ->
  ?only:string list ->
  ?domains:int ->
  ?pool:Par.Pool.t ->
  ?budget_ms:float ->
  ?decompose:bool ->
  ?partition:Arena.partition ->
  Arena.t ->
  report
