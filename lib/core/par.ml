let reraise_first results =
  List.map (function Ok y -> y | Error e -> raise e) results

let sequential_map_result f xs =
  List.map (fun x -> try Ok (f x) with e -> Error e) xs

module Pool = struct
  type job = {
    run : int -> unit;          (* never raises: wraps into the out array *)
    n : int;
    next : int Atomic.t;
    completed : int Atomic.t;
  }

  type t = {
    size : int;
    mutex : Mutex.t;            (* guards [job]/[generation]/[stop] *)
    work : Condition.t;         (* new job published / shutdown *)
    done_ : Condition.t;        (* some job completed its last item *)
    mutable job : job option;
    mutable generation : int;
    mutable stop : bool;
    mutable workers : unit Domain.t list;
    worker_ids : Domain.id list ref;
    caller : Mutex.t;           (* serializes concurrent [map] callers *)
    mutable active_caller : Domain.id option;
        (* the domain currently driving a job; only it can observe its own
           id here, so the unsynchronized read in [map] is safe *)
  }

  (* claim items until the job runs dry; whoever finishes the last item
     wakes the caller *)
  let drain t (j : job) =
    let continue_ = ref true in
    while !continue_ do
      let i = Atomic.fetch_and_add j.next 1 in
      if i >= j.n then continue_ := false
      else begin
        j.run i;
        if Atomic.fetch_and_add j.completed 1 = j.n - 1 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.done_;
          Mutex.unlock t.mutex
        end
      end
    done

  let rec worker_loop t gen =
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = gen do
      Condition.wait t.work t.mutex
    done;
    let stop = t.stop and job = t.job and gen' = t.generation in
    Mutex.unlock t.mutex;
    if not stop then begin
      (match job with Some j -> drain t j | None -> ());
      worker_loop t gen'
    end

  let create ?domains () =
    let size =
      match domains with
      | Some d ->
        if d < 1 then
          invalid_arg
            (Printf.sprintf "Par.Pool.create: domains must be >= 1 (got %d)" d);
        d
      | None -> Domain.recommended_domain_count ()
    in
    let t =
      {
        size;
        mutex = Mutex.create ();
        work = Condition.create ();
        done_ = Condition.create ();
        job = None;
        generation = 0;
        stop = false;
        workers = [];
        worker_ids = ref [];
        caller = Mutex.create ();
        active_caller = None;
      }
    in
    if size > 1 then begin
      let ws = List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0)) in
      t.workers <- ws;
      t.worker_ids := List.map Domain.get_id ws
    end;
    t

  let size t = t.size

  let map_result t f xs =
    let n = List.length xs in
    let self = Domain.self () in
    let nested =
      (* from a pool worker, or re-entered from the driving caller itself:
         parallelizing again would deadlock, so degrade to sequential *)
      List.exists (fun id -> id = self) !(t.worker_ids)
      || (match t.active_caller with Some id -> id = self | None -> false)
    in
    if n <= 1 || t.size <= 1 || t.stop || nested then sequential_map_result f xs
    else begin
      Mutex.lock t.caller;
      t.active_caller <- Some self;
      let input = Array.of_list xs in
      let out = Array.make n None in
      let job =
        {
          run = (fun i -> out.(i) <- Some (try Ok (f input.(i)) with e -> Error e));
          n;
          next = Atomic.make 0;
          completed = Atomic.make 0;
        }
      in
      Mutex.lock t.mutex;
      t.job <- Some job;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      drain t job;
      Mutex.lock t.mutex;
      while Atomic.get job.completed < n do
        Condition.wait t.done_ t.mutex
      done;
      t.job <- None;
      Mutex.unlock t.mutex;
      t.active_caller <- None;
      Mutex.unlock t.caller;
      Array.to_list out
      |> List.map (function
           | Some r -> r
           | None -> assert false (* every index was claimed *))
    end

  let map t f xs = reraise_first (map_result t f xs)

  let shutdown t =
    Mutex.lock t.caller;
    Mutex.lock t.mutex;
    let ws = t.workers in
    t.stop <- true;
    t.workers <- [];
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join ws;
    Mutex.unlock t.caller
end

let spawn_map_result ?domains f xs =
  let n = List.length xs in
  let d =
    let requested =
      match domains with
      | Some d ->
        if d < 1 then
          invalid_arg (Printf.sprintf "Par.map: domains must be >= 1 (got %d)" d);
        d
      | None -> Domain.recommended_domain_count ()
    in
    max 1 (min requested n)
  in
  if d <= 1 then sequential_map_result f xs
  else begin
    let input = Array.of_list xs in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_ := false
        else out.(i) <- Some (try Ok (f input.(i)) with e -> Error e)
      done
    in
    let helpers = List.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list out
    |> List.map (function
         | Some r -> r
         | None -> assert false (* every index was claimed *))
  end

let map_result ?domains ?pool f xs =
  match pool with
  | Some p -> Pool.map_result p f xs
  | None -> spawn_map_result ?domains f xs

let map ?domains ?pool f xs = reraise_first (map_result ?domains ?pool f xs)
