let map ?domains f xs =
  let n = List.length xs in
  let d =
    let requested =
      match domains with Some d -> d | None -> Domain.recommended_domain_count ()
    in
    max 1 (min requested n)
  in
  if d <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_ := false
        else out.(i) <- Some (try Ok (f input.(i)) with e -> Error e)
      done
    in
    let helpers = List.init (d - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list out
    |> List.map (function
         | Some (Ok y) -> y
         | Some (Error e) -> raise e
         | None -> assert false (* every index was claimed *))
  end
