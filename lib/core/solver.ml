module type S = sig
  val name : string
  val exact : bool
  val applicable : Arena.t -> bool
  val solve : ?budget:Budget.t -> Arena.t -> Solution.t option
end

type failure_reason =
  | Timed_out
  | Crashed of string

type failure = {
  algorithm : string;
  elapsed_ms : float;
  reason : failure_reason;
}

type attempt =
  | Solved of Solution.t
  | Inapplicable
  | Failed of failure

let pp_failure ppf f =
  match f.reason with
  | Timed_out -> Format.fprintf ppf "%s: timed out after %.1fms" f.algorithm f.elapsed_ms
  | Crashed msg -> Format.fprintf ppf "%s: crashed (%s)" f.algorithm msg

let run ?budget (module M : S) a =
  let t0 = Unix.gettimeofday () in
  let elapsed () = (Unix.gettimeofday () -. t0) *. 1000.0 in
  match
    Failpoint.hit ("solver." ^ M.name);
    M.solve ?budget a
  with
  | None -> Inapplicable
  | Some s -> Solved { s with Solution.elapsed_ms = elapsed () }
  | exception Budget.Expired ->
    Failed { algorithm = M.name; elapsed_ms = elapsed (); reason = Timed_out }
  | exception e ->
    Failed
      { algorithm = M.name; elapsed_ms = elapsed ();
        reason = Crashed (Printexc.to_string e) }

(* insertion-ordered registry; replace-in-place on name collision *)
let registry : (module S) list ref = ref []

let name_of (module M : S) = M.name

let register m =
  let n = name_of m in
  (* [run] executes the "solver.<name>" failpoint, so every registered
     solver's site is a legal DELEPROP_FAILPOINTS name *)
  Failpoint.register ("solver." ^ n);
  if List.exists (fun m' -> String.equal (name_of m') n) !registry then
    registry := List.map (fun m' -> if String.equal (name_of m') n then m else m') !registry
  else registry := !registry @ [ m ]

let find n = List.find_opt (fun m -> String.equal (name_of m) n) !registry
let all () = !registry
let names () = List.map name_of !registry
