module R = Relational

(* A decomposable solution: the answer's structure, recorded at solve
   time, keyed by tuple *content* (fact strings / stuple sets) rather
   than arena ids — so a decomposition survives compaction, component
   renumbering and re-materialization without any remapping. *)

type cert_slice =
  | Slice_exact
  | Slice_ratio of float
  | Slice_heuristic

type part = {
  p_label : string;
  p_deleted : R.Stuple.Set.t;
  p_cost : float;
  p_cert : cert_slice;
}

type forest_node = {
  fn_parent : string option;
  fn_depth : int;
  fn_cut : bool;
  fn_value : float;
  fn_slack : float;
}

type forest_tree = {
  ft_pivot : string;
  ft_nodes : (string * forest_node) list;
}

type structure =
  | Witness_groups
  | Forest of forest_tree list
  | Contributions

type t = {
  d_vtuples : int;
  d_parts : part list;
  d_structure : structure;
}

let structure_name = function
  | Witness_groups -> "witness-groups"
  | Forest _ -> "forest"
  | Contributions -> "contributions"

let pp_cert_slice ppf = function
  | Slice_exact -> Format.fprintf ppf "exact"
  | Slice_ratio r -> Format.fprintf ppf "ratio %g" r
  | Slice_heuristic -> Format.fprintf ppf "heuristic"

let pp ppf d =
  Format.fprintf ppf "@[<v>%s over ‖V‖=%d, %d part(s)%a@]" (structure_name d.d_structure)
    d.d_vtuples (List.length d.d_parts)
    (fun ppf parts ->
      List.iter
        (fun p ->
          Format.fprintf ppf "@ - %s: cost %g, %d deleted, %a" p.p_label p.p_cost
            (R.Stuple.Set.cardinal p.p_deleted)
            pp_cert_slice p.p_cert)
        parts)
    d.d_parts

(* ---- generic constructors ---- *)

let key st = R.Stuple.to_string st

(* Per-candidate contribution parts for the approximate tier: every
   killed preserved view tuple's weight is charged to the
   content-minimal deleted member of its witness, so the part costs are
   disjoint slices summing to the outcome cost. *)
let contributions (prov : Provenance.t) ~deleted ~cert =
  let weights = prov.Provenance.problem.Problem.weights in
  let acc : (string, float) Hashtbl.t = Hashtbl.create 16 in
  Vtuple.Set.iter
    (fun vt ->
      let w = Provenance.witness_of prov vt in
      let hit = R.Stuple.Set.inter w deleted in
      if not (R.Stuple.Set.is_empty hit) then begin
        let owner = key (R.Stuple.Set.min_elt hit) in
        Hashtbl.replace acc owner
          (Weights.get weights vt +. Option.value ~default:0.0 (Hashtbl.find_opt acc owner))
      end)
    prov.Provenance.preserved;
  R.Stuple.Set.fold
    (fun st parts ->
      let k = key st in
      {
        p_label = k;
        p_deleted = R.Stuple.Set.singleton st;
        p_cost = Option.value ~default:0.0 (Hashtbl.find_opt acc k);
        p_cert = cert;
      }
      :: parts)
    deleted []
  |> List.rev

(* ---- forest restriction ---- *)

(* [restrict_forest tree ~surviving ~lost_end] — project a recorded
   forest-DP decomposition onto the fragment of surviving nodes.

   [surviving] tests a node key; [lost_end] charges the weight of every
   preserved view tuple lost with the split to its recorded endpoint
   (the deepest witness member under the recorded depths). The
   projection is sound — the restricted tree is what a fresh DP on the
   fragment computes, with the same cut frontier — iff:
   - the pivot survives (the caller separately checks it is still the
     content-minimal common witness member, so [find_pivot] re-picks it);
   - every lost node was uncut with value 0 (a lost region with a cut,
     or any positive value, would have contributed to surviving
     decisions);
   - no surviving uncut node flips to cut once the lost preserved
     weight leaves its subtree: with [lostAcc st] the lost endpoint
     weight inside [st]'s subtree and [delta st] the part of it the
     recorded frontier already deletes, the node stays uncut iff
     [lostAcc - delta <= slack] (slack = cut_cost - nocut_cost at
     solve time). Cut nodes can never flip: their inequality tightens
     in the keeping direction.
   The comparisons are float-exact when view weights are integers (sums
   and differences of integers are exact in double precision); with
   general floats they are conservative up to rounding of the recorded
   sums. Returns the restricted tree, with per-node values and slacks
   discounted by the lost weight so chained splits restrict again. *)
let restrict_forest (tree : forest_tree) ~surviving ~lost_end =
  let nodes : (string, forest_node) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (k, n) -> Hashtbl.replace nodes k n) tree.ft_nodes;
  let fail fmt = Format.kasprintf (fun m -> Error m) fmt in
  if not (surviving tree.ft_pivot) then fail "pivot %s lost" tree.ft_pivot
  else begin
    let bad_lost =
      List.find_opt
        (fun (k, n) -> (not (surviving k)) && (n.fn_cut || n.fn_value <> 0.0))
        tree.ft_nodes
    in
    let orphan =
      List.find_opt
        (fun (k, n) ->
          surviving k
          && match n.fn_parent with Some p -> not (surviving p) | None -> false)
        tree.ft_nodes
    in
    match (bad_lost, orphan) with
    | Some (k, _), _ -> fail "lost node %s carried value" k
    | _, Some (k, _) -> fail "surviving node %s lost its parent" k
    | None, None -> (
      (* accumulate lost endpoint weight bottom-up *)
      let acc : (string, float) Hashtbl.t = Hashtbl.create 64 in
      let get tbl k = Option.value ~default:0.0 (Hashtbl.find_opt tbl k) in
      let add tbl k v = Hashtbl.replace tbl k (get tbl k +. v) in
      let unknown =
        List.find_opt (fun (k, _) -> not (Hashtbl.mem nodes k)) lost_end
      in
      match unknown with
      | Some (k, _) -> fail "lost endpoint %s not a tree node" k
      | None ->
        List.iter (fun (k, w) -> add acc k w) lost_end;
        (* deepest first: ft_nodes is recorded in increasing depth *)
        let deepest_first = List.rev tree.ft_nodes in
        List.iter
          (fun (k, n) ->
            match n.fn_parent with
            | Some p -> add acc p (get acc k)
            | None -> ())
          deepest_first;
        (* delta: the lost weight the recorded cut frontier deletes *)
        let delta : (string, float) Hashtbl.t = Hashtbl.create 64 in
        let child_sum : (string, float) Hashtbl.t = Hashtbl.create 64 in
        List.iter
          (fun (k, n) ->
            let d = if n.fn_cut then get acc k else get child_sum k in
            Hashtbl.replace delta k d;
            match n.fn_parent with
            | Some p -> add child_sum p d
            | None -> ())
          deepest_first;
        let flip =
          List.find_opt
            (fun (k, n) ->
              surviving k && (not n.fn_cut)
              && get acc k -. get delta k > n.fn_slack)
            tree.ft_nodes
        in
        (match flip with
        | Some (k, _) -> fail "surviving node %s would flip to cut" k
        | None ->
          let nodes' =
            List.filter_map
              (fun (k, n) ->
                if not (surviving k) then None
                else
                  let d = get delta k in
                  Some
                    ( k,
                      {
                        n with
                        fn_value = n.fn_value -. d;
                        fn_slack =
                          (if n.fn_cut then n.fn_slack
                           else n.fn_slack -. (get acc k -. d));
                      } ))
              tree.ft_nodes
          in
          Ok { tree with ft_nodes = nodes' }))
    end
