type action =
  | Raise
  | Delay_ms of int
  | Crash_after_bytes of int
  | Corrupt_byte of int

exception Injected of string

let parse_action name = function
  | "raise" -> Raise
  | s -> (
    match String.index_opt s ':' with
    | Some i -> (
      let kind = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match (kind, int_of_string_opt arg) with
      | "delay", Some n when n >= 0 -> Delay_ms n
      | "crash_after_bytes", Some n when n >= 0 -> Crash_after_bytes n
      | "corrupt_byte", Some n when n >= 0 -> Corrupt_byte n
      | _ ->
        invalid_arg
          (Printf.sprintf "Failpoint.parse: bad action %S for %S" s name))
    | None ->
      invalid_arg (Printf.sprintf "Failpoint.parse: bad action %S for %S" s name))

let parse spec =
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.map (fun entry ->
         match String.index_opt entry '=' with
         | None ->
           invalid_arg
             (Printf.sprintf "Failpoint.parse: expected name=action, got %S" entry)
         | Some i ->
           let name = String.trim (String.sub entry 0 i) in
           let action =
             String.trim (String.sub entry (i + 1) (String.length entry - i - 1))
           in
           if name = "" then
             invalid_arg
               (Printf.sprintf "Failpoint.parse: empty name in %S" entry);
           (name, parse_action name action))

(* process-wide registry; [None] in the table = programmatically cleared,
   shadowing any environment entry of the same name *)
let table : (string, action option) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()
let env_loaded = ref false

(* Known site names: the static sites plus everything registered at
   module-init time (each solver adapter registers its "solver.<name>"
   site). [DELEPROP_FAILPOINTS] entries are validated against this set —
   a misspelled name must fail loudly, not silently disarm the
   injection. Programmatic {!set} registers its name, so test-local
   sites keep working. *)
let known : (string, unit) Hashtbl.t = Hashtbl.create 8

let () =
  List.iter
    (fun n -> Hashtbl.replace known n ())
    [
      "journal.append"; "journal.rewrite"; "snapshot.write"; "snapshot.rename";
      "snapshot.corrupt";
    ]

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register name = with_lock (fun () -> Hashtbl.replace known name ())
let names () = with_lock (fun () -> Hashtbl.fold (fun n () acc -> n :: acc) known [] |> List.sort compare)

let load_env_locked () =
  if not !env_loaded then begin
    env_loaded := true;
    match Sys.getenv_opt "DELEPROP_FAILPOINTS" with
    | None | Some "" -> ()
    | Some spec ->
      List.iter
        (fun (name, action) ->
          if not (Hashtbl.mem known name) then
            invalid_arg
              (Printf.sprintf
                 "DELEPROP_FAILPOINTS: unknown failpoint %S (known: %s)" name
                 (String.concat ", "
                    (Hashtbl.fold (fun n () acc -> n :: acc) known []
                    |> List.sort compare)));
          if not (Hashtbl.mem table name) then Hashtbl.replace table name (Some action))
        (parse spec)
  end

let set name action =
  with_lock (fun () ->
      Hashtbl.replace known name ();
      Hashtbl.replace table name (Some action))

let clear name = with_lock (fun () -> Hashtbl.replace table name None)

let reset () =
  with_lock (fun () ->
      Hashtbl.reset table;
      env_loaded := false)

let find name =
  with_lock (fun () ->
      load_env_locked ();
      Option.join (Hashtbl.find_opt table name))

let hit name =
  match find name with
  | None | Some (Crash_after_bytes _) | Some (Corrupt_byte _) -> ()
  | Some Raise -> raise (Injected name)
  | Some (Delay_ms n) -> if n > 0 then Unix.sleepf (float_of_int n /. 1000.0)
