module R = Relational
module Bitset = Setcover.Bitset

type memo = {
  m_fp : Fingerprint.t;
  m_bad : int array;  (* the solved ΔV as parent vids, ascending, all live *)
}

type t = {
  partition : Arena.partition;
  sids_of : int array array;  (* component -> live member sids, ascending *)
  vids_of : int array array;  (* component -> live member vids, ascending *)
  memo : memo option array;   (* component -> last solve memo *)
}

let partition t = t.partition
let sids_of t c = t.sids_of.(c)
let vids_of t c = t.vids_of.(c)

(* one count/fill pass per axis — the only full sweep in the module *)
let of_partition (p : Arena.partition) =
  let nc = p.num_components in
  let bucket comp_of =
    let counts = Array.make nc 0 in
    Array.iter (fun c -> if c >= 0 then counts.(c) <- counts.(c) + 1) comp_of;
    let rosters = Array.map (fun n -> Array.make n 0) counts in
    let fill = Array.make nc 0 in
    Array.iteri
      (fun id c ->
        if c >= 0 then begin
          rosters.(c).(fill.(c)) <- id;
          fill.(c) <- fill.(c) + 1
        end)
      comp_of;
    rosters
  in
  {
    partition = p;
    sids_of = bucket p.comp_of_sid;
    vids_of = bucket p.comp_of_vid;
    memo = Array.make nc None;
  }

let build (a : Arena.t) = of_partition (Arena.partition a)

let delete t ~(before : Arena.t) ~dd (a' : Arena.t) =
  let p = t.partition in
  let p' = Arena.partition_delete p ~before ~dd a' in
  if before.Arena.stuples == a'.Arena.stuples then begin
    (* tombstone branch: ids are stable, so unaffected components keep
       their rosters (and memos) verbatim under their new label, and
       only the affected components' survivors re-bucket — O(affected
       members), not O(‖D‖ + ‖V‖) *)
    let affected = Array.make p.num_components false in
    R.Stuple.Set.iter
      (fun st -> affected.(p.comp_of_sid.(Arena.stuple_id before st)) <- true)
      dd;
    let nc' = p'.num_components in
    let sids_of = Array.make nc' [||] in
    let vids_of = Array.make nc' [||] in
    let memo = Array.make nc' None in
    Array.iteri
      (fun c roster ->
        if not affected.(c) then begin
          (* every member survived; any one names the new label *)
          let c' = p'.comp_of_sid.(roster.(0)) in
          sids_of.(c') <- roster;
          vids_of.(c') <- t.vids_of.(c);
          memo.(c') <- t.memo.(c)
        end)
      t.sids_of;
    (* affected components shatter: walk their old rosters descending,
       consing live survivors onto their fragment's list keeps each
       fragment ascending. Fragment labels never collide with the
       unaffected labels above (labels partition the live slots). *)
    let frag_s = Array.make nc' [] in
    let frag_v = Array.make nc' [] in
    Array.iteri
      (fun c roster ->
        if affected.(c) then
          for i = Array.length roster - 1 downto 0 do
            let sid = roster.(i) in
            if not (Bitset.mem a'.Arena.dead_s sid) then
              frag_s.(p'.comp_of_sid.(sid)) <- sid :: frag_s.(p'.comp_of_sid.(sid))
          done)
      t.sids_of;
    Array.iteri
      (fun c roster ->
        if affected.(c) then
          for i = Array.length roster - 1 downto 0 do
            let vid = roster.(i) in
            if not (Bitset.mem a'.Arena.dead_v vid) then begin
              let c' = p'.comp_of_vid.(vid) in
              if c' >= 0 then frag_v.(c') <- vid :: frag_v.(c')
            end
          done)
      t.vids_of;
    for c' = 0 to nc' - 1 do
      match frag_s.(c') with
      | [] -> ()
      | l ->
        sids_of.(c') <- Array.of_list l;
        vids_of.(c') <- Array.of_list frag_v.(c')
    done;
    { partition = p'; sids_of; vids_of; memo }
  end
  else
    (* gather branch: ids moved under compaction — one full re-bucket *)
    of_partition p'

let insert t ~(before : Arena.t) (a' : Arena.t) =
  let p = t.partition in
  let p' = Arena.partition_insert p ~before a' in
  if before.Arena.stuples == a'.Arena.stuples then begin
    (* resurrect branch: dead bits flipped back in place. An old
       component's members stay together (insertions only merge), so
       each maps wholesale to one new label; a new label is [changed] if
       several old components landed on it or a newly-live slot joined
       it — those re-gather and sort, the rest share rosters and memos. *)
    let nc = p.num_components and nc' = p'.num_components in
    let target = Array.make nc (-1) in
    Array.iteri (fun c roster -> target.(c) <- p'.comp_of_sid.(roster.(0))) t.sids_of;
    let got = Array.make nc' 0 in
    Array.iter (fun c' -> if c' >= 0 then got.(c') <- got.(c') + 1) target;
    let fresh = Array.make nc' false in
    Bitset.iter_diff
      (fun sid -> fresh.(p'.comp_of_sid.(sid)) <- true)
      before.Arena.dead_s a'.Arena.dead_s;
    Bitset.iter_diff
      (fun vid ->
        let c' = p'.comp_of_vid.(vid) in
        if c' >= 0 then fresh.(c') <- true)
      before.Arena.dead_v a'.Arena.dead_v;
    let changed c' = got.(c') > 1 || fresh.(c') in
    let sids_of = Array.make nc' [||] in
    let vids_of = Array.make nc' [||] in
    let memo = Array.make nc' None in
    Array.iteri
      (fun c roster ->
        let c' = target.(c) in
        if not (changed c') then begin
          sids_of.(c') <- roster;
          vids_of.(c') <- t.vids_of.(c);
          memo.(c') <- t.memo.(c)
        end)
      t.sids_of;
    let frag_s = Array.make nc' [] in
    let frag_v = Array.make nc' [] in
    Array.iteri
      (fun c roster ->
        let c' = target.(c) in
        if changed c' then begin
          Array.iter (fun sid -> frag_s.(c') <- sid :: frag_s.(c')) roster;
          Array.iter (fun vid -> frag_v.(c') <- vid :: frag_v.(c')) t.vids_of.(c)
        end)
      t.sids_of;
    Bitset.iter_diff
      (fun sid ->
        let c' = p'.comp_of_sid.(sid) in
        if changed c' then frag_s.(c') <- sid :: frag_s.(c'))
      before.Arena.dead_s a'.Arena.dead_s;
    Bitset.iter_diff
      (fun vid ->
        let c' = p'.comp_of_vid.(vid) in
        if c' >= 0 && changed c' then frag_v.(c') <- vid :: frag_v.(c'))
      before.Arena.dead_v a'.Arena.dead_v;
    for c' = 0 to nc' - 1 do
      if changed c' then begin
        let s = Array.of_list frag_s.(c') in
        let v = Array.of_list frag_v.(c') in
        Array.sort Int.compare s;
        Array.sort Int.compare v;
        sids_of.(c') <- s;
        vids_of.(c') <- v
      end
    done;
    { partition = p'; sids_of; vids_of; memo }
  end
  else
    (* merge branch: the extend compacted and merged sorted runs — every
       id moved, so re-bucket from the patched partition *)
    of_partition p'

let compact t ~(before : Arena.t) =
  if not (Arena.tombstoned before) then t
  else begin
    let p' = Arena.compact_partition ~before t.partition in
    let rank dead n =
      let r = Array.make n (-1) in
      let k = ref 0 in
      for i = 0 to n - 1 do
        if not (Bitset.mem dead i) then begin
          r.(i) <- !k;
          incr k
        end
      done;
      r
    in
    let rs = rank before.Arena.dead_s (Arena.num_stuples before) in
    let rv = rank before.Arena.dead_v (Arena.num_vtuples before) in
    (* rosters hold live ids only and live ranks are monotone, so the
       remapped rosters stay ascending *)
    let remap r roster = Array.map (fun id -> r.(id)) roster in
    {
      partition = p';
      sids_of = Array.map (remap rs) t.sids_of;
      vids_of = Array.map (remap rv) t.vids_of;
      memo =
        Array.map
          (Option.map (fun m -> { m with m_bad = remap rv m.m_bad }))
          t.memo;
    }
  end

let active t (a : Arena.t) =
  let p = t.partition in
  let seen = Hashtbl.create 16 in
  Bitset.iter
    (fun vid ->
      let c = p.comp_of_vid.(vid) in
      if not (Hashtbl.mem seen c) then Hashtbl.add seen c ())
    a.Arena.bad;
  let comps = List.sort Int.compare (Hashtbl.fold (fun c () acc -> c :: acc) seen []) in
  Array.of_list
    (List.map
       (fun c -> { Arena.p_component = c; p_sids = t.sids_of.(c); p_vids = t.vids_of.(c) })
       comps)

let record_memo t ~component ~fp ~bad = t.memo.(component) <- Some { m_fp = fp; m_bad = bad }

let memo t c =
  match t.memo.(c) with None -> None | Some m -> Some (m.m_fp, m.m_bad)
