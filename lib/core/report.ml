(* Shared JSON encoding for machine-readable reports.

   One tiny JSON AST plus the encoders every front end shares —
   subcommand-specific code assembles [t] values instead of hand-rolling
   strings, so field spellings and escaping live in exactly one place.
   [schema_version] stamps every top-level report object; bump it
   whenever a field is renamed or removed (additions are compatible). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

(* version 3: the deprecated index_hits / cache_hits alias fields are
   gone (index_retargets is the only spelling) and stats gained the
   snapshot status object. Version 2 was the unified Engine.Stats
   encoding (index_retargets, shard_cache_hits, tombstone_ratio,
   compactions) with schema_version stamped on solve/batch reports;
   version 1 the implicit pre-PR-7 ad-hoc encoding. *)
let schema_version = 3

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_str f)
  | String s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        write b v)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        write b v)
      fields;
    Buffer.add_char b '}'
  | Raw s -> Buffer.add_string b s

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ---- shared encoders ---- *)

let solution (s : Solution.t) = Raw (Solution.to_json s)

let failure (f : Portfolio.failure) =
  Obj
    [
      ("algorithm", String f.Portfolio.algorithm);
      ("elapsed_ms", Raw (Printf.sprintf "%.3f" f.Portfolio.elapsed_ms));
      ( "reason",
        String
          (match f.Portfolio.reason with
          | Portfolio.Timed_out -> "timeout"
          | Portfolio.Crashed _ -> "crash") );
      ( "detail",
        match f.Portfolio.reason with
        | Portfolio.Timed_out -> Null
        | Portfolio.Crashed msg -> String msg );
    ]

let shard_decision (d : Planner.shard_decision) =
  Obj
    [
      ("component", Int d.Planner.component);
      ("stuples", Int d.Planner.stuples);
      ("vtuples", Int d.Planner.vtuples);
      ("bad", Int d.Planner.bad);
      ("winner", String d.Planner.winner);
      ("cost", Float d.Planner.cost);
      ("exact", Bool d.Planner.exact);
      ("degraded", Bool d.Planner.degraded);
      ("cached", Bool d.Planner.cached);
      ( "fingerprint",
        match d.Planner.fingerprint with
        | None -> Null
        | Some fp -> String (Fingerprint.to_hex fp) );
    ]

(* [versioned fields] — a top-level report object, schema stamp first *)
let versioned fields = Obj (("schema_version", Int schema_version) :: fields)
