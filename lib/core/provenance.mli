(** The unique-witness provenance index.

    For key-preserving queries every view tuple has exactly one witness —
    the key variables all appear in the head, and keys determine tuples
    (§II.C: "checking the view side-effect can be performed by finding
    the occurrences of key values of the deleted relation tuples in the
    view"). All solvers work on this index rather than re-evaluating
    queries. *)

type t = private {
  problem : Problem.t;
  views : Relational.Tuple.Set.t Smap.t;       (** query -> V_i *)
  witness : Relational.Stuple.Set.t Vtuple.Map.t;
      (** view tuple -> its unique witness (as a set) *)
  witness_path : Relational.Stuple.t list Vtuple.Map.t;
      (** witness in body-atom order, duplicates collapsed — the join path
          used by the tree algorithms *)
  containing : Vtuple.Set.t Relational.Stuple.Map.t;
      (** source tuple -> view tuples whose witness contains it; total on
          all tuples of D (empty set when in no witness) *)
  bad : Vtuple.Set.t;        (** ΔV as view tuples *)
  preserved : Vtuple.Set.t;  (** V \ ΔV *)
}

exception Ambiguous_witness of Vtuple.t
(** Raised by {!build} when a view tuple has two derivations — impossible
    for key-preserving queries, so its occurrence means the caller opted
    out of the key-preserving check yet used a witness-based solver. *)

val build : Problem.t -> t

(** [with_deletions t reqs] — the same index re-targeted at a new ΔV:
    [bad]/[preserved] recomputed from the requests, the (D, Q)-dependent
    maps ([views], [witness], [witness_path], [containing]) shared
    unchanged, and [t.problem] re-stamped via {!Problem.patch}. Equals
    [build] on the corresponding problem, at O(‖ΔV‖ log ‖V‖) cost.
    Raises [Invalid_argument] when a requested tuple is not a current
    view answer (use {!Delta_request.validate} for a typed error). *)
val with_deletions : t -> Delta_request.t list -> t

(** [delete t dd] — the index after committing the source deletion [dd]:
    killed view tuples ([kills t dd]) leave every map, [dd] leaves
    [containing] and the database, and realized deletions leave ΔV.
    Equals [build] on the patched problem (monotone queries: deletions
    never create answers), touching only the killed rows. *)
val delete : t -> Relational.Stuple.Set.t -> t

(** [insert t st] — the index after committing the source insertion
    [st] (which must be absent from the database; the underlying
    {!Relational.Instance.add_stuple} key check applies): the view
    tuples gained by [st] ({!Cq.Maintain.gained_answers}) enter
    [views], [witness], [witness_path] and [preserved], every member of
    a new witness gains the view tuple in its [containing] row, and
    [st] gets a (possibly empty) row of its own — the map stays total
    on D. ΔV is untouched: a gained tuple cannot be a requested
    deletion. Equals [build] on the extended problem, touching only the
    gained rows; raises {!Ambiguous_witness} when the insertion gives
    some view tuple a second derivation (the extended instance is then
    no longer key preserving — the same condition [build] rejects). *)
val insert : t -> Relational.Stuple.t -> t

(** [restrict t ~stuples ~vtuples] — the sub-index induced by a
    witness-closed pair: every witness of a [vtuples] member lies inside
    [stuples], and [stuples] joins into no view tuple outside [vtuples]
    (i.e. the pair is a union of connected components of the
    stuple↔vtuple incidence graph, which is what {!Arena.shatter}
    passes). Trusted constructor in the style of {!Problem.patch}: no
    validation, but for component-closed inputs the result equals
    [build] on the restricted database — queries are monotone, so the
    sub-database derives exactly the component's view tuples. The
    restricted database is rebuilt by insertion, so the cost is
    O(|shard| log |shard|), not O(‖D‖). *)
val restrict : t -> stuples:Relational.Stuple.Set.t -> vtuples:Vtuple.Set.t -> t

val all_vtuples : t -> Vtuple.Set.t

val witness_of : t -> Vtuple.t -> Relational.Stuple.Set.t

(** View tuples containing a source tuple (empty for tuples of [D] in no
    witness). *)
val vtuples_containing : t -> Relational.Stuple.t -> Vtuple.Set.t

(** [kills prov dd] — the view tuples eliminated by deleting [dd]:
    those whose witness intersects [dd]. *)
val kills : t -> Relational.Stuple.Set.t -> Vtuple.Set.t

(** Source tuples appearing in at least one bad witness — the only
    candidates an optimal solution ever deletes (deleting anything else
    can only hurt). *)
val candidates : t -> Relational.Stuple.Set.t

(** Sum of weights of preserved view tuples containing the source tuple —
    the "capacity" used by the primal-dual algorithm. *)
val preserved_weight_through : t -> Relational.Stuple.t -> float

val pp : Format.formatter -> t -> unit
