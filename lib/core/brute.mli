(** Exact optimum, exponential time — the reference the approximation
    experiments compare against.

    Two engines: branch-and-bound through the {!Reduction.to_red_blue}
    image (default, prunes well), and [solve_enum], a direct subset
    enumeration over candidate tuples used by tests to validate the
    reduction. *)

type result = {
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;
}

(** [None] when no feasible deletion exists (never happens for
    key-preserving instances with non-empty witnesses — deleting a whole
    witness is always feasible... unless a bad tuple shares its witness
    with nothing; feasibility always holds, so [None] only on empty
    candidate pathologies).

    [budget] is ticked once per branch-and-bound node (via the
    [Red_blue.solve_exact] tick hook); on expiry the search unwinds with
    {!Budget.Expired} — exact-or-nothing, no partial answer. *)
val solve : ?node_budget:int -> ?budget:Budget.t -> Provenance.t -> result option

(** The exact tier's decomposition skeleton: candidate groups connected
    through co-occurrence in a bad witness or a candidate-touched
    preserved witness, ascending by group minimum. Killed preserved
    view tuples never span two groups, so the answer's cost slices are
    disjoint along them ({!Decomposition.Witness_groups}). *)
val witness_groups : Provenance.t -> Relational.Stuple.Set.t list

(** Plain subset enumeration; [max_candidates] (default 20) guards the
    2^n blowup — raises [Invalid_argument] beyond it. *)
val solve_enum : ?max_candidates:int -> Provenance.t -> result option

(** Exact optimum under the {e general} (possibly non-key-preserving)
    semantics: candidates are the tuples occurring in {e any} witness of a
    bad view tuple, and every subset is scored by full re-evaluation
    ([Side_effect.eval_ground_truth]). This is the engine behind the
    paper's Fig. 1 discussion of query [Q3], whose projected view tuples
    have several witnesses. Exponential and slow — example scale only. *)
val solve_ground_truth : ?max_candidates:int -> Problem.t -> result option
