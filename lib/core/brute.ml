module R = Relational

type result = {
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
}

let result_of prov deletion =
  let outcome = Side_effect.eval prov deletion in
  if outcome.Side_effect.feasible then Some { deletion; outcome } else None

(* Witness groups: candidates connected through co-occurrence in a bad
   witness or a touched preserved witness (one containing a candidate) —
   exactly the inputs the branch-and-bound reads, so a group is the unit
   the exact answer decomposes along: killed preserved view tuples have
   their witness inside one group's closure, making the per-group cost
   slices disjoint. Returned ascending by content of the group minimum. *)
let witness_groups prov =
  let candidates = Provenance.candidates prov in
  if R.Stuple.Set.is_empty candidates then []
  else begin
    (* union-find over candidate stuples, keyed by content string *)
    let parent : (string, string) Hashtbl.t = Hashtbl.create 64 in
    let rec find k =
      match Hashtbl.find_opt parent k with
      | None | Some "" -> k
      | Some p ->
        let r = find p in
        if r <> p then Hashtbl.replace parent k r;
        r
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then Hashtbl.replace parent ra rb
    in
    let key st = R.Stuple.to_string st in
    let link_witness w =
      let members = R.Stuple.Set.inter w candidates in
      match R.Stuple.Set.min_elt_opt members with
      | None -> ()
      | Some first ->
        R.Stuple.Set.iter (fun st -> union (key st) (key first)) members
    in
    Vtuple.Map.iter
      (fun vt w ->
        if Vtuple.Set.mem vt prov.Provenance.bad then link_witness w
        else if not (R.Stuple.Set.is_empty (R.Stuple.Set.inter w candidates)) then
          link_witness w)
      prov.Provenance.witness;
    let groups : (string, R.Stuple.Set.t) Hashtbl.t = Hashtbl.create 16 in
    R.Stuple.Set.iter
      (fun st ->
        let r = find (key st) in
        let g = Option.value ~default:R.Stuple.Set.empty (Hashtbl.find_opt groups r) in
        Hashtbl.replace groups r (R.Stuple.Set.add st g))
      candidates;
    Hashtbl.fold (fun _ g acc -> g :: acc) groups []
    |> List.sort (fun a b -> R.Stuple.compare (R.Stuple.Set.min_elt a) (R.Stuple.Set.min_elt b))
  end

let solve ?node_budget ?budget prov =
  Budget.tick_o budget;
  let m = Reduction.to_red_blue prov in
  let tick () = Budget.tick_o budget in
  match Setcover.Red_blue.solve_exact ?node_budget ~tick m.Reduction.instance with
  | None -> None
  | Some sol -> result_of prov (Reduction.deletion_of_red_blue m sol)

let solve_enum ?(max_candidates = 20) prov =
  let candidates = Array.of_list (R.Stuple.Set.elements (Provenance.candidates prov)) in
  let n = Array.length candidates in
  if n > max_candidates then
    invalid_arg
      (Printf.sprintf "Brute.solve_enum: %d candidates exceed the limit %d" n
         max_candidates);
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let deletion = ref R.Stuple.Set.empty in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then deletion := R.Stuple.Set.add candidates.(i) !deletion
    done;
    let outcome = Side_effect.eval prov !deletion in
    if outcome.Side_effect.feasible then
      match !best with
      | Some b when b.outcome.Side_effect.cost <= outcome.Side_effect.cost -> ()
      | _ -> best := Some { deletion = !deletion; outcome }
  done;
  !best

let solve_ground_truth ?(max_candidates = 20) (problem : Problem.t) =
  (* candidates: tuples in any witness of a bad view tuple *)
  let candidates =
    List.fold_left
      (fun acc (q : Cq.Query.t) ->
        let bad = Problem.deletion problem q.name in
        if R.Tuple.Set.is_empty bad then acc
        else
          let prov = Cq.Eval.provenance problem.Problem.db q in
          R.Tuple.Set.fold
            (fun t acc ->
              match R.Tuple.Map.find_opt t prov with
              | None -> acc
              | Some witnesses ->
                List.fold_left
                  (fun acc w -> R.Stuple.Set.union acc (Cq.Eval.witness_set w))
                  acc witnesses)
            bad acc)
      R.Stuple.Set.empty problem.Problem.queries
  in
  let candidates = Array.of_list (R.Stuple.Set.elements candidates) in
  let n = Array.length candidates in
  if n > max_candidates then
    invalid_arg
      (Printf.sprintf "Brute.solve_ground_truth: %d candidates exceed the limit %d" n
         max_candidates);
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let deletion = ref R.Stuple.Set.empty in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then deletion := R.Stuple.Set.add candidates.(i) !deletion
    done;
    let outcome = Side_effect.eval_ground_truth problem !deletion in
    if outcome.Side_effect.feasible then
      match !best with
      | Some b when b.outcome.Side_effect.cost <= outcome.Side_effect.cost -> ()
      | _ -> best := Some { deletion = !deletion; outcome }
  done;
  !best
