module R = Relational
module Bitset = Setcover.Bitset

let src = Logs.Src.create "deleprop.lowdeg" ~doc:"LowDegTreeVSE (Algorithms 2-3)"

module Log = (val Logs.src_log src : Logs.LOG)

type result = {
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  tau : int;
  pruned_wide : int;
  complete : bool;
}

(* ---- arena path ---- *)

let wide_preserved_arena ?threshold (a : Arena.t) =
  let threshold =
    match threshold with
    | Some th -> th
    | None -> sqrt (float_of_int (Problem.view_size a.Arena.prov.Provenance.problem))
  in
  let wide = Bitset.create (Arena.num_vtuples a) in
  Bitset.iter
    (fun vid ->
      if float_of_int (Array.length a.Arena.witness.(vid)) > threshold then
        Bitset.add wide vid)
    a.Arena.preserved;
  wide

let solve_with_tau_arena ?(prune_wide = true) ?wide_threshold ?budget (a : Arena.t)
    ~tau =
  let ns = Arena.num_stuples a in
  let deletable = Bitset.create ns in
  for sid = 0 to ns - 1 do
    if Arena.preserved_degree a sid <= tau then Bitset.add deletable sid
  done;
  let ignored =
    if prune_wide then wide_preserved_arena ?threshold:wide_threshold a
    else Bitset.create (Arena.num_vtuples a)
  in
  Log.debug (fun m ->
      m "tau=%d: %d deletable tuples, %d wide preserved pruned" tau
        (Bitset.cardinal deletable) (Bitset.cardinal ignored));
  match Primal_dual.solve_arena ?budget a ~deletable ~ignored_preserved:ignored with
  | None ->
    Log.debug (fun m -> m "tau=%d infeasible" tau);
    None
  | Some pd ->
    Some
      {
        deletion = pd.Primal_dual.deletion;
        outcome = pd.Primal_dual.outcome;
        tau;
        pruned_wide = Bitset.cardinal ignored;
        complete = true;
      }

let solve_with_tau ?prune_wide ?budget (prov : Provenance.t) ~tau =
  solve_with_tau_arena ?prune_wide ?budget (Arena.build prov) ~tau

(* the default wide-pruning threshold √‖V‖ (Claim 2); exposed so a planner
   solving a shard can impose the parent instance's threshold instead.
   [Arena.live_vtuples] counts exactly Σ_q |view q| — the provenance
   indexes one vtuple per view tuple per query, and tombstoned slots are
   not view tuples — so this avoids [Problem.view_size]'s full query
   re-evaluation over the database (which used to dominate cheap solve
   calls on large instances) while staying invariant under compaction. *)
let default_wide_threshold (a : Arena.t) =
  sqrt (float_of_int (Arena.live_vtuples a))

let trivial_result prov =
  {
    deletion = R.Stuple.Set.empty;
    outcome = Side_effect.eval prov R.Stuple.Set.empty;
    tau = 0;
    pruned_wide = 0;
    complete = true;
  }

let best_of results =
  List.fold_left
    (fun best r ->
      match r with
      | None -> best
      | Some r -> (
        match best with
        | Some b when b.outcome.Side_effect.cost <= r.outcome.Side_effect.cost -> best
        | _ -> Some r))
    None results

let solve_arena ?(prune_wide = true) ?wide_threshold ?(domains = 1) ?pool ?budget
    (a : Arena.t) =
  if Bitset.is_empty a.Arena.bad then trivial_result a.Arena.prov
  else begin
    (* sweeping the distinct preserved-degrees of the candidate tuples is
       equivalent to sweeping 1..|R| *)
    let taus =
      Array.fold_left
        (fun acc sid -> Arena.preserved_degree a sid :: acc)
        [] (Arena.candidate_ids a)
      |> List.sort_uniq Int.compare
    in
    (* each threshold is an independent restricted run over the shared
       (immutable) arena; [Par.map_result] keeps result order, so the
       fold below is deterministic whatever the domain count or pool.
       The sweep is anytime: a threshold killed by the budget is dropped
       and the best of the finished ones is returned with
       [complete = false] — only a sweep with no survivor re-raises. *)
    let results =
      Par.map_result ~domains ?pool
        (fun tau -> solve_with_tau_arena ~prune_wide ?wide_threshold ?budget a ~tau)
        taus
    in
    let expired = ref false in
    let finished =
      List.filter_map
        (function
          | Ok r -> r
          | Error Budget.Expired ->
            expired := true;
            None
          | Error e -> raise e)
        results
    in
    match best_of (List.map Option.some finished) with
    | Some r -> if !expired then { r with complete = false } else r
    | None ->
      if !expired then raise Budget.Expired
      else
        (* cannot happen: the max preserved-degree bars no candidate *)
        assert false
  end

let solve ?prune_wide ?domains ?pool ?budget (prov : Provenance.t) =
  if Vtuple.Set.is_empty prov.Provenance.bad then trivial_result prov
  else solve_arena ?prune_wide ?domains ?pool ?budget (Arena.build prov)

(* the τ-sweep funnels through the primal-dual kernel, so its answer
   decomposes the same way: per-candidate contribution parts *)
let decomposition (a : Arena.t) (r : result) =
  Primal_dual.decomposition a ~deleted:r.deletion

let bound (problem : Problem.t) = 2.0 *. sqrt (float_of_int (Problem.view_size problem))
