exception Expired

let tick_mask = 63

type t = {
  deadline : float;          (* Unix.gettimeofday at which the budget dies *)
  mutable counter : int;     (* ticks since the last clock read *)
  mutable dead : bool;       (* sticky: once expired, stays expired *)
}

let of_ms ms =
  if Float.is_nan ms then invalid_arg "Budget.of_ms: NaN";
  { deadline = Unix.gettimeofday () +. (ms /. 1000.0); counter = 0; dead = ms <= 0.0 }

let expired t =
  if not t.dead then t.dead <- Unix.gettimeofday () > t.deadline;
  t.dead

let check t =
  if t.dead then true
  else begin
    t.counter <- t.counter + 1;
    if t.counter land tick_mask = 0 then expired t else false
  end

let tick t = if check t then raise Expired

let tick_o = function None -> () | Some t -> tick t

let remaining_ms t = Float.max 0.0 ((t.deadline -. Unix.gettimeofday ()) *. 1000.0)
