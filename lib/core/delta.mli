(** A symmetric source-side update: the one currency every mutation path
    in the stack trades in. The engine, the materialized-view manager,
    the provenance index and the arena all consume a [Delta.t] the same
    way — {e deletes first, then inserts} — so a key update (drop the old
    row, add its replacement under the same key) is a single well-formed
    delta rather than two ordered calls.

    Key preservation makes both directions incremental: a deleted tuple
    kills exactly the view tuples whose witness contains it, and an
    inserted tuple creates exactly the view tuples whose witness contains
    it (computable by specialized delta evaluation, {!Cq.Maintain} —
    no derivability check is ever needed, see DESIGN.md §11). *)

type t = {
  deletes : Relational.Stuple.Set.t;  (** source tuples removed, applied first *)
  inserts : Relational.Stuple.Set.t;  (** source tuples added, applied second *)
}

val empty : t
val is_empty : t -> bool

(** [make ?deletes ?inserts ()] — both default empty. *)
val make :
  ?deletes:Relational.Stuple.Set.t ->
  ?inserts:Relational.Stuple.Set.t ->
  unit ->
  t

val of_deletes : Relational.Stuple.Set.t -> t
val of_inserts : Relational.Stuple.Set.t -> t

(** Total number of tuples moved, [|deletes| + |inserts|]. *)
val cardinal : t -> int

val pp : Format.formatter -> t -> unit
