(** [LowDegTreeVSE] and [LowDegTreeVSETwo] (Algorithms 2–3, §IV.D):
    the 2√‖V‖-approximation for the forest case, refining Peleg's
    LowDegTwo [8] with the primal-dual l-approximation as the inner
    solver.

    For a degree threshold τ (Algorithm 2):
    + tuples joined into more than τ preserved view tuples are barred
      from deletion (the paper "removes" them from the instance);
    + preserved view tuples wider than √‖V‖ (witness size) are pruned
      from the cost function (the set [R'_>], whose size Claim 2 bounds
      by √‖V‖·τ);
    + the restricted instance goes to {!Primal_dual.solve_restricted}.

    Algorithm 3 sweeps τ (the optimum's max degree τ̂ is unknown) and
    keeps the best feasible outcome; Claim 3 + Theorem 4 give the
    2√‖V‖ ratio, validated against brute force in experiment E6. *)

type result = {
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;
  tau : int;             (** threshold that produced this solution *)
  pruned_wide : int;     (** |R'_>| at that threshold *)
  complete : bool;       (** false when a time budget cut the τ-sweep
                             short: the answer is the best of the
                             thresholds that finished (anytime), so
                             Theorem 4's ratio is void *)
}

(** Algorithm 2 at a fixed τ; [None] when the restricted instance is
    infeasible (some bad witness entirely barred). [prune_wide] (default
    true) controls the R'_> pruning of line 7 — disabling it is the
    ablation of experiment E15. Compiles a fresh arena; use
    {!solve_with_tau_arena} to share one across thresholds. [budget]
    flows into the inner primal-dual, which raises {!Budget.Expired} on
    expiry. *)
val solve_with_tau :
  ?prune_wide:bool -> ?budget:Budget.t -> Provenance.t -> tau:int -> result option

(** Algorithm 2 over a prebuilt {!Arena.t} — degree restriction, wide
    pruning and the inner primal-dual all run on arena ids.
    [wide_threshold] overrides the witness-width cutoff of the R'_>
    pruning (default [√‖V‖] of this arena's own problem) — the planner
    solving one shard of a larger instance passes the {e parent}
    instance's threshold so the shard run can never prune more than the
    whole-instance run would. *)
val solve_with_tau_arena :
  ?prune_wide:bool -> ?wide_threshold:float -> ?budget:Budget.t -> Arena.t ->
  tau:int -> result option

(** [√‖V‖] for this arena's problem: the default [wide_threshold]. *)
val default_wide_threshold : Arena.t -> float

(** Algorithm 3: sweep τ over the distinct preserved-degrees, return the
    cheapest feasible solution. Total sweep is never infeasible (the
    largest τ bars nothing). The arena is built once and shared by all
    thresholds; [domains] (default 1 = sequential) distributes the
    independent per-τ runs over fresh OCaml 5 domains, while [pool]
    (which wins when given) runs them on a persistent {!Par.Pool.t}
    instead — results are identical whatever the strategy.

    The sweep is {e anytime} under [budget]: thresholds that outlive the
    deadline are dropped, the best finished one is returned with
    [complete = false]; {!Budget.Expired} escapes only when not a single
    threshold finished. *)
val solve :
  ?prune_wide:bool -> ?domains:int -> ?pool:Par.Pool.t -> ?budget:Budget.t ->
  Provenance.t -> result

(** Algorithm 3 over a prebuilt arena — what a session solving many
    rounds against one compiled index calls. *)
val solve_arena :
  ?prune_wide:bool -> ?wide_threshold:float -> ?domains:int -> ?pool:Par.Pool.t ->
  ?budget:Budget.t -> Arena.t -> result

(** Theorem 4's claimed ratio for the instance: [2·sqrt ‖V‖]. *)
val bound : Problem.t -> float

(** The answer's decomposable-solution record: per-candidate
    contribution parts over the arena's live ‖V‖
    ({!Primal_dual.decomposition} — the sweep's winner came out of the
    same kernel). *)
val decomposition : Arena.t -> result -> Decomposition.t
