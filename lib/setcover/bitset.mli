(** Packed mutable bitsets over a fixed integer universe [0..len-1].

    The solver kernels (arena-backed primal-dual, LowDeg, the Red-Blue
    greedy family) run over dense tuple ids; this module gives them
    word-parallel membership, union, intersection and popcount instead of
    the O(log n) persistent {!Iset} operations. Sets are mutable and
    fixed-width: all binary operations require both operands to share the
    same [length] and raise [Invalid_argument] otherwise. *)

type t

(** [create n] — the empty set over universe [0..n-1]. *)
val create : int -> t

(** [full n] — the set containing every element of [0..n-1]. *)
val full : int -> t

(** Universe size [n] (not the cardinality). *)
val length : t -> int

val copy : t -> t

(** Membership / single-element updates; indexes out of [0..n-1] raise
    [Invalid_argument]. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

(** Number of elements present (popcount). *)
val cardinal : t -> int

val is_empty : t -> bool
val equal : t -> t -> bool

(** [subset a b] — is [a ⊆ b]? *)
val subset : t -> t -> bool

val disjoint : t -> t -> bool

(** In-place bulk updates: [union_into ~into a] is [into := into ∪ a],
    and similarly for intersection and difference. *)

val union_into : into:t -> t -> unit
val inter_into : into:t -> t -> unit
val diff_into : into:t -> t -> unit

(** Pure counterparts (allocate a fresh set). *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** Allocation-free cardinalities of binary combinations. *)

val inter_cardinal : t -> t -> int
val diff_cardinal : t -> t -> int

(** Ascending-order traversal. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [iter_diff f a b] applies [f] to every element of [a \ b] in
    ascending order, without materializing the difference. *)
val iter_diff : (int -> unit) -> t -> t -> unit

(** Ascending element list / inverse constructor. *)

val elements : t -> int list
val of_list : len:int -> int list -> t

val pp : Format.formatter -> t -> unit
