type t = int array

let create n = Array.init n Fun.id

let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let union parent i j =
  let ri = find parent i and rj = find parent j in
  if ri < rj then parent.(rj) <- ri else if rj < ri then parent.(ri) <- rj
