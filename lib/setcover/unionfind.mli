(** Union-find over dense integer ids, with union-by-min and path
    compression: the root of a class is always its {e smallest} member.

    That invariant is what the canonical component numberings in
    {!Decompose.shatter} and [Arena.partition] rely on — scanning ids in
    ascending order visits each root before any other member of its
    class, so "first appearance" labeling needs no second pass and two
    membership-equal partitions come out structurally equal. *)

type t = int array

(** [create n] — [n] singleton classes [{0}, ..., {n-1}]. *)
val create : int -> t

(** Representative (smallest member) of [i]'s class; compresses the
    path. *)
val find : t -> int -> int

(** Merge the classes of [i] and [j]; the smaller representative wins. *)
val union : t -> int -> int -> unit
