type set = {
  label : string;
  red : Iset.t;
  blue : Iset.t;
}

type t = {
  red_weights : float array;
  num_blue : int;
  sets : set array;
}

let make ~red_weights ~num_blue sets =
  let num_red = Array.length red_weights in
  List.iteri
    (fun i s ->
      let bad_red = Iset.exists (fun r -> r < 0 || r >= num_red) s.red in
      let bad_blue = Iset.exists (fun b -> b < 0 || b >= num_blue) s.blue in
      if bad_red || bad_blue then
        invalid_arg (Printf.sprintf "Red_blue.make: set %d (%s) out of range" i s.label))
    sets;
  { red_weights; num_blue; sets = Array.of_list sets }

let make_unit ~num_red ~num_blue sets =
  make ~red_weights:(Array.make num_red 1.0) ~num_blue sets

let num_red t = Array.length t.red_weights
let num_sets t = Array.length t.sets

type solution = {
  chosen : int list;
  red_covered : Iset.t;
  cost : float;
}

let red_weight t reds = Iset.fold (fun r acc -> acc +. t.red_weights.(r)) reds 0.0

let blue_union t chosen =
  List.fold_left (fun acc i -> Iset.union acc t.sets.(i).blue) Iset.empty chosen

let red_union t chosen =
  List.fold_left (fun acc i -> Iset.union acc t.sets.(i).red) Iset.empty chosen

let is_feasible t chosen = Iset.cardinal (blue_union t chosen) = t.num_blue

let solution_of t chosen =
  if not (is_feasible t chosen) then None
  else
    let red_covered = red_union t chosen in
    Some { chosen = List.sort_uniq Int.compare chosen; red_covered; cost = red_weight t red_covered }

let coverable t = is_feasible t (List.init (num_sets t) Fun.id)

(* ---- exact branch and bound ---- *)

let no_tick () = ()

let solve_exact ?(node_budget = 5_000_000) ?(tick = no_tick) t =
  if not (coverable t) then None
  else begin
    let nodes = ref 0 in
    let best = ref None in
    let best_cost = ref infinity in
    (* sets containing each blue element *)
    let containing = Array.make t.num_blue [] in
    Array.iteri
      (fun i s -> Iset.iter (fun b -> containing.(b) <- i :: containing.(b)) s.blue)
      t.sets;
    let rec go covered_blue covered_red cost chosen =
      incr nodes;
      tick ();
      if !nodes > node_budget then failwith "Red_blue.solve_exact: node budget exceeded";
      if cost >= !best_cost then ()
      else if Iset.cardinal covered_blue = t.num_blue then begin
        best_cost := cost;
        best := Some (List.rev chosen)
      end
      else begin
        (* branch on the uncovered blue element with fewest candidate sets *)
        let target =
          let best_b = ref (-1) and best_n = ref max_int in
          for b = 0 to t.num_blue - 1 do
            if not (Iset.mem b covered_blue) then begin
              let n = List.length containing.(b) in
              if n < !best_n then begin
                best_n := n;
                best_b := b
              end
            end
          done;
          !best_b
        in
        (* order candidates by incremental red weight *)
        let candidates =
          containing.(target)
          |> List.map (fun i ->
                 let extra = Iset.diff t.sets.(i).red covered_red in
                 (i, extra, red_weight t extra))
          |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b)
        in
        List.iter
          (fun (i, extra, w) ->
            go
              (Iset.union covered_blue t.sets.(i).blue)
              (Iset.union covered_red extra)
              (cost +. w) (i :: chosen))
          candidates
      end
    in
    go Iset.empty Iset.empty 0.0 [];
    Option.bind !best (solution_of t)
  end

(* ---- packed views of the instance (built once per solve) ---- *)

let blue_bitsets t =
  Array.map
    (fun s ->
      let b = Bitset.create t.num_blue in
      Iset.iter (Bitset.add b) s.blue;
      b)
    t.sets

let red_bitsets t =
  let nr = num_red t in
  Array.map
    (fun s ->
      let b = Bitset.create nr in
      Iset.iter (Bitset.add b) s.red;
      b)
    t.sets

(* ---- greedy ratio heuristic ---- *)

let solve_greedy ?(tick = no_tick) t =
  if not (coverable t) then None
  else begin
    let blue_bs = blue_bitsets t and red_bs = red_bitsets t in
    let covered_blue = Bitset.create t.num_blue in
    let covered_red = Bitset.create (num_red t) in
    let covered_count = ref 0 in
    let chosen = ref [] in
    while !covered_count < t.num_blue do
      tick ();
      let best = ref (-1) and best_score = ref neg_infinity in
      for i = 0 to num_sets t - 1 do
        let new_blue = Bitset.diff_cardinal blue_bs.(i) covered_blue in
        if new_blue > 0 then begin
          (* ascending fold, matching [red_weight] on the Iset path *)
          let new_red = ref 0.0 in
          Bitset.iter_diff
            (fun r -> new_red := !new_red +. t.red_weights.(r))
            red_bs.(i) covered_red;
          let score = float_of_int new_blue /. (1e-9 +. !new_red) in
          if score > !best_score then begin
            best_score := score;
            best := i
          end
        end
      done;
      let i = !best in
      assert (i >= 0) (* coverable *);
      covered_count := !covered_count + Bitset.diff_cardinal blue_bs.(i) covered_blue;
      Bitset.union_into ~into:covered_blue blue_bs.(i);
      Bitset.union_into ~into:covered_red red_bs.(i);
      chosen := i :: !chosen
    done;
    solution_of t !chosen
  end

(* ---- Peleg's low-degree threshold sweep ---- *)

(* max-heap of (gain, set index): largest gain first, smallest index on
   ties — the same argmax the eager scan of the reference implementation
   selects *)
module Gain_heap = struct
  type t = { mutable a : (int * int) array; mutable n : int }

  let create () = { a = Array.make 16 (0, 0); n = 0 }

  let better (g1, i1) (g2, i2) = g1 > g2 || (g1 = g2 && i1 < i2)

  let push h x =
    if h.n = Array.length h.a then begin
      let a' = Array.make (2 * h.n) (0, 0) in
      Array.blit h.a 0 a' 0 h.n;
      h.a <- a'
    end;
    h.a.(h.n) <- x;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && better h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.n && better h.a.(l) h.a.(!m) then m := l;
        if r < h.n && better h.a.(r) h.a.(!m) then m := r;
        if !m = !i then continue_ := false
        else begin
          let tmp = h.a.(!m) in
          h.a.(!m) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !m
        end
      done;
      Some top
    end
end

let greedy_cover_by_count ?(tick = no_tick) t blue_bs allowed =
  (* lazy-decreasing-gain greedy set cover over the blue universe: stale
     heap keys are upper bounds (gains only shrink as coverage grows), so
     a popped set whose recomputed gain equals its key is the true argmax
     — no per-step rescan of every set. Restricted to the [allowed] set
     indices; None when not coverable. *)
  let covered = Bitset.create t.num_blue in
  let covered_count = ref 0 in
  let chosen = ref [] in
  let heap = Gain_heap.create () in
  List.iter
    (fun i ->
      let g = Bitset.cardinal blue_bs.(i) in
      if g > 0 then Gain_heap.push heap (g, i))
    allowed;
  let feasible = ref true in
  let continue_ = ref (!covered_count < t.num_blue) in
  while !continue_ do
    tick ();
    match Gain_heap.pop heap with
    | None ->
      feasible := false;
      continue_ := false
    | Some (g, i) ->
      let g' = Bitset.diff_cardinal blue_bs.(i) covered in
      if g' = g then begin
        covered_count := !covered_count + g';
        Bitset.union_into ~into:covered blue_bs.(i);
        chosen := i :: !chosen;
        if !covered_count = t.num_blue then continue_ := false
      end
      else if g' > 0 then Gain_heap.push heap (g', i)
  done;
  if !feasible then Some !chosen else None

let solve_lowdeg ?(tick = no_tick) t =
  if not (coverable t) then None
  else begin
    let blue_bs = blue_bitsets t in
    let set_red_weight = Array.map (fun s -> red_weight t s.red) t.sets in
    let thresholds = Array.to_list set_red_weight |> List.sort_uniq Float.compare in
    let best = ref None in
    List.iter
      (fun tau ->
        tick ();
        let allowed =
          List.init (num_sets t) Fun.id
          |> List.filter (fun i -> set_red_weight.(i) <= tau)
        in
        match greedy_cover_by_count ~tick t blue_bs allowed with
        | None -> ()
        | Some chosen -> (
          match solution_of t chosen with
          | None -> ()
          | Some sol -> (
            match !best with
            | Some b when b.cost <= sol.cost -> ()
            | _ -> best := Some sol)))
      thresholds;
    !best
  end

let solve_approx ?tick t =
  match solve_greedy ?tick t, solve_lowdeg ?tick t with
  | None, s | s, None -> s
  | Some a, Some b -> Some (if a.cost <= b.cost then a else b)

let pp ppf t =
  Format.fprintf ppf "@[<v>red: %d, blue: %d, sets: %d@ %a@]" (num_red t) t.num_blue
    (num_sets t)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf s ->
         Format.fprintf ppf "%s: red=%a blue=%a" s.label Iset.pp s.red Iset.pp s.blue))
    (Array.to_list t.sets)
