(** Bounded least-recently-used map.

    A fixed-capacity associative cache: {!find} and {!add} refresh the
    binding's recency, and inserting a fresh key into a full cache evicts
    the least recently used one. Backed by a hash table over an intrusive
    doubly-linked list, so every operation is O(1) amortized.

    The planner's shard-solution cache ({!Deleprop.Planner}) keys this by
    canonical shard fingerprints; the module is generic so other bounded
    memo tables can share it. Not thread-safe — callers serialize access
    (the engine touches its cache only from the session's driving
    domain). *)

type ('k, 'v) t

(** [create ~capacity] — an empty cache holding at most [capacity]
    bindings. Raises [Invalid_argument] when [capacity < 1]. *)
val create : capacity:int -> ('k, 'v) t

val capacity : ('k, 'v) t -> int

(** Current number of bindings (≤ [capacity]). *)
val length : ('k, 'v) t -> int

(** [find t k] — the binding, refreshed to most-recently-used. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** Membership without touching recency. *)
val mem : ('k, 'v) t -> 'k -> bool

(** [add t k v] — insert or replace, making [k] the most recently used;
    a fresh key on a full cache evicts the least recently used one. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit

(** Fold over bindings, most recently used first. *)
val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a
