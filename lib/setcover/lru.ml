(* Bounded LRU map: a hash table over an intrusive doubly-linked recency
   list. [find] and [add] both move the touched binding to the front;
   inserting past [capacity] drops the back (least recently used). All
   operations are O(1) amortized. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards the front (most recent) *)
  mutable next : ('k, 'v) node option;  (* towards the back (least recent) *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable front : ('k, 'v) node option;
  mutable back : ('k, 'v) node option;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Lru.create: capacity %d < 1" capacity);
  { capacity; table = Hashtbl.create (min capacity 64); front = None; back = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

(* detach [n] from the recency list (it must be linked) *)
let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.front <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.front;
  n.prev <- None;
  (match t.front with Some f -> f.prev <- Some n | None -> t.back <- Some n);
  t.front <- Some n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
    unlink t n;
    push_front t n;
    Some n.value

let mem t k = Hashtbl.mem t.table k

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table k

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    n.value <- v;
    unlink t n;
    push_front t n
  | None ->
    if Hashtbl.length t.table >= t.capacity then (
      match t.back with
      | None -> ()
      | Some lru ->
        unlink t lru;
        Hashtbl.remove t.table lru.key);
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k n;
    push_front t n

let clear t =
  Hashtbl.reset t.table;
  t.front <- None;
  t.back <- None

(* most-recent-first — the order eviction would *not* take *)
let fold f t acc =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f n.key n.value acc) n.next
  in
  go acc t.front
