(* Packed bitsets: [Sys.int_size] bits per word (63 on 64-bit systems).
   The last word is kept masked so whole-word operations (cardinal, equal,
   full) need no per-call boundary handling. *)

type t = { len : int; words : int array }

let bits = Sys.int_size

let nwords len = (len + bits - 1) / bits

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  { len; words = Array.make (nwords len) 0 }

(* bits of the last word that lie inside the universe *)
let last_mask len =
  let r = len mod bits in
  if r = 0 then -1 else (1 lsl r) - 1

let full len =
  let t = create len in
  let n = Array.length t.words in
  if n > 0 then begin
    Array.fill t.words 0 n (-1);
    t.words.(n - 1) <- last_mask len
  end;
  t

let length t = t.len
let copy t = { t with words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Bitset: index %d out of range [0..%d)" i t.len)

let mem t i =
  check t i;
  t.words.(i / bits) land (1 lsl (i mod bits)) <> 0

let add t i =
  check t i;
  t.words.(i / bits) <- t.words.(i / bits) lor (1 lsl (i mod bits))

let remove t i =
  check t i;
  t.words.(i / bits) <- t.words.(i / bits) land lnot (1 lsl (i mod bits))

(* popcount of a 63-bit word via two 32-bit SWAR halves (64-bit literals
   would overflow OCaml's 63-bit ints) *)
let pop32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* mask before shifting: OCaml ints don't truncate the multiply to 32
     bits the way C's uint32 arithmetic does *)
  ((x * 0x01010101) land 0xFFFFFFFF) lsr 24

let popcount x = pop32 (x land 0xFFFFFFFF) + pop32 ((x lsr 32) land 0x7FFFFFFF)

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_universe op a b =
  if a.len <> b.len then
    invalid_arg (Printf.sprintf "Bitset.%s: universes differ (%d vs %d)" op a.len b.len)

let equal a b =
  same_universe "equal" a b;
  a.words = b.words

let subset a b =
  same_universe "subset" a b;
  let ok = ref true in
  for k = 0 to Array.length a.words - 1 do
    if a.words.(k) land lnot b.words.(k) <> 0 then ok := false
  done;
  !ok

let disjoint a b =
  same_universe "disjoint" a b;
  let ok = ref true in
  for k = 0 to Array.length a.words - 1 do
    if a.words.(k) land b.words.(k) <> 0 then ok := false
  done;
  !ok

let union_into ~into a =
  same_universe "union_into" into a;
  for k = 0 to Array.length into.words - 1 do
    into.words.(k) <- into.words.(k) lor a.words.(k)
  done

let inter_into ~into a =
  same_universe "inter_into" into a;
  for k = 0 to Array.length into.words - 1 do
    into.words.(k) <- into.words.(k) land a.words.(k)
  done

let diff_into ~into a =
  same_universe "diff_into" into a;
  for k = 0 to Array.length into.words - 1 do
    into.words.(k) <- into.words.(k) land lnot a.words.(k)
  done

let union a b = let t = copy a in union_into ~into:t b; t
let inter a b = let t = copy a in inter_into ~into:t b; t
let diff a b = let t = copy a in diff_into ~into:t b; t

let inter_cardinal a b =
  same_universe "inter_cardinal" a b;
  let c = ref 0 in
  for k = 0 to Array.length a.words - 1 do
    c := !c + popcount (a.words.(k) land b.words.(k))
  done;
  !c

let diff_cardinal a b =
  same_universe "diff_cardinal" a b;
  let c = ref 0 in
  for k = 0 to Array.length a.words - 1 do
    c := !c + popcount (a.words.(k) land lnot b.words.(k))
  done;
  !c

(* iterate the set bits of word [w] (ascending) as absolute indexes *)
let iter_word f base w =
  let w = ref w in
  while !w <> 0 do
    let b = !w land - !w in
    f (base + popcount (b - 1));
    w := !w lxor b
  done

let iter f t =
  Array.iteri (fun k w -> iter_word f (k * bits) w) t.words

let iter_diff f a b =
  same_universe "iter_diff" a b;
  for k = 0 to Array.length a.words - 1 do
    iter_word f (k * bits) (a.words.(k) land lnot b.words.(k))
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list ~len l =
  let t = create len in
  List.iter (add t) l;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements t)
