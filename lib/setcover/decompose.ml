type shard = {
  instance : Red_blue.t;
  sets : int array;
  reds : int array;
  blues : int array;
}

(* union-find over set indices ({!Unionfind}): union-by-min keeps the
   root the smallest member, so component numbering by ascending root is
   the order of each component's smallest set index *)
let find = Unionfind.find
let union = Unionfind.union

let shatter (t : Red_blue.t) =
  let ns = Red_blue.num_sets t in
  let nr = Red_blue.num_red t in
  let nb = t.Red_blue.num_blue in
  let parent = Unionfind.create ns in
  (* first set seen containing each element; later sets sharing it are
     unioned with it *)
  let first_red = Array.make nr (-1) in
  let first_blue = Array.make nb (-1) in
  Array.iteri
    (fun i (s : Red_blue.set) ->
      Iset.iter
        (fun r ->
          if first_red.(r) = -1 then first_red.(r) <- i else union parent i first_red.(r))
        s.Red_blue.red;
      Iset.iter
        (fun b ->
          if first_blue.(b) = -1 then first_blue.(b) <- i
          else union parent i first_blue.(b))
        s.Red_blue.blue)
    t.Red_blue.sets;
  (* canonical component ids: ascending root = ascending smallest member *)
  let comp_of_set = Array.make ns (-1) in
  let num_comps = ref 0 in
  for i = 0 to ns - 1 do
    let r = find parent i in
    if comp_of_set.(r) = -1 then begin
      comp_of_set.(r) <- !num_comps;
      incr num_comps
    end;
    comp_of_set.(i) <- comp_of_set.(r)
  done;
  let nc = !num_comps in
  (* bucket sets / elements per component, ascending parent ids *)
  let sets_of = Array.make nc [] in
  for i = ns - 1 downto 0 do
    sets_of.(comp_of_set.(i)) <- i :: sets_of.(comp_of_set.(i))
  done;
  let reds_of = Array.make nc [] in
  for r = nr - 1 downto 0 do
    if first_red.(r) >= 0 then begin
      let c = comp_of_set.(first_red.(r)) in
      reds_of.(c) <- r :: reds_of.(c)
    end
  done;
  let blues_of = Array.make nc [] in
  let orphan_blues = ref [] in
  for b = nb - 1 downto 0 do
    if first_blue.(b) >= 0 then begin
      let c = comp_of_set.(first_blue.(b)) in
      blues_of.(c) <- b :: blues_of.(c)
    end
    else orphan_blues := b :: !orphan_blues
  done;
  (* global -> local element maps, reused across components *)
  let red_local = Array.make nr (-1) in
  let blue_local = Array.make nb (-1) in
  let component c =
    let reds = Array.of_list reds_of.(c) in
    let blues = Array.of_list blues_of.(c) in
    let sets = Array.of_list sets_of.(c) in
    Array.iteri (fun l r -> red_local.(r) <- l) reds;
    Array.iteri (fun l b -> blue_local.(b) <- l) blues;
    let red_weights = Array.map (fun r -> t.Red_blue.red_weights.(r)) reds in
    let remap_set i =
      let s = t.Red_blue.sets.(i) in
      {
        Red_blue.label = s.Red_blue.label;
        red = Iset.map (fun r -> red_local.(r)) s.Red_blue.red;
        blue = Iset.map (fun b -> blue_local.(b)) s.Red_blue.blue;
      }
    in
    let instance =
      Red_blue.make ~red_weights ~num_blue:(Array.length blues)
        (List.map remap_set (Array.to_list sets))
    in
    { instance; sets; reds; blues }
  in
  let components = Array.init nc component in
  (* blue elements in no set: uncoverable singletons *)
  let orphans =
    List.map
      (fun b ->
        {
          instance = Red_blue.make ~red_weights:[||] ~num_blue:1 [];
          sets = [||];
          reds = [||];
          blues = [| b |];
        })
      !orphan_blues
  in
  Array.append components (Array.of_list orphans)

let recombine (t : Red_blue.t) shards solutions =
  if Array.length shards <> Array.length solutions then
    invalid_arg "Decompose.recombine: shard/solution arity mismatch";
  let exception Missing in
  match
    Array.to_list shards
    |> List.mapi (fun i (sh : shard) ->
           match solutions.(i) with
           | None -> raise Missing
           | Some (sol : Red_blue.solution) ->
             List.map (fun l -> sh.sets.(l)) sol.Red_blue.chosen)
    |> List.concat
  with
  | chosen -> Red_blue.solution_of t chosen
  | exception Missing -> None

let solve ~solver t =
  let shards = shatter t in
  let solutions = Array.map (fun sh -> solver sh.instance) shards in
  recombine t shards solutions
