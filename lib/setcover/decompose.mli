(** Component decomposition of a {!Red_blue.t} instance.

    Two sets are connected iff they share a red or blue element; the
    transitive closure partitions the sets (and the elements they touch)
    into independent sub-instances. Solving each shard separately and
    unioning the per-shard choices is exact: a set never covers a blue
    element outside its own component and never pays for a red element
    outside it either, so both feasibility and cost decompose.

    Blue elements contained in no set make the whole instance
    uncoverable; they surface as set-less singleton shards whose
    [instance] fails {!Red_blue.coverable}, so shard-wise solvers report
    the infeasibility locally. Red elements in no set belong to no shard
    (no sub-collection can ever pay for them). *)

type shard = {
  instance : Red_blue.t;  (** the sub-instance, re-indexed from 0 *)
  sets : int array;       (** shard set index -> parent set index *)
  reds : int array;       (** shard red id -> parent red id *)
  blues : int array;      (** shard blue id -> parent blue id *)
}

(** [shatter t] splits [t] into its connected components. Shards are
    ordered deterministically: components in order of their smallest
    parent set index, then uncoverable set-less blue singletons in
    ascending blue id; within a shard the remapping tables are in
    ascending parent-id order. An instance with no sets and no blue
    elements yields [[||]]. *)
val shatter : Red_blue.t -> shard array

(** [recombine t shards solutions] lifts per-shard solutions (aligned
    with [shards]) back to parent ids and revalidates the union against
    the parent instance via {!Red_blue.solution_of}. [None] if any shard
    solution is missing or the union does not cover the parent. *)
val recombine :
  Red_blue.t -> shard array -> Red_blue.solution option array -> Red_blue.solution option

(** [solve ~solver t] — shatter, run [solver] on every shard, recombine.
    Equivalent to [solver t] for exact solvers, and never worse on a
    per-shard basis for the monotone approximations in {!Red_blue}. *)
val solve : solver:(Red_blue.t -> Red_blue.solution option) -> Red_blue.t -> Red_blue.solution option
