(** The Red-Blue Set Cover problem (§II.D, Carr et al. [8]).

    Given disjoint red and blue element universes and a collection of
    sets over both, choose a sub-collection covering {e all} blue
    elements while minimizing the total weight of red elements covered.
    Red weights generalize the unit-cost problem; they carry the paper's
    user-preference weights through the VSE reduction (§IV.A).

    Inapproximability: within [O(2^{log^{1-δ} |C|})] unless P = NP
    (Thm 3.1 of [8]); reproduced empirically in experiment E2. *)

type set = {
  label : string;
  red : Iset.t;
  blue : Iset.t;
}

type t = private {
  red_weights : float array;   (** weight of each red element *)
  num_blue : int;
  sets : set array;
}

(** [make ~red_weights ~num_blue sets] — set members must be in range;
    raises [Invalid_argument] otherwise. *)
val make : red_weights:float array -> num_blue:int -> set list -> t

(** Unit red weights. *)
val make_unit : num_red:int -> num_blue:int -> set list -> t

val num_red : t -> int
val num_sets : t -> int

type solution = {
  chosen : int list;           (** indices into [sets], sorted *)
  red_covered : Iset.t;
  cost : float;                (** total weight of [red_covered] *)
}

(** [is_feasible t chosen] — do the chosen sets cover every blue element? *)
val is_feasible : t -> int list -> bool

(** [solution_of t chosen] — [None] if infeasible. *)
val solution_of : t -> int list -> solution option

(** Is the instance coverable at all (every blue in some set)? *)
val coverable : t -> bool

(** Exact optimum by branch-and-bound over uncovered blue elements.
    [node_budget] (default [5_000_000]) caps search nodes; raises
    [Failure] when exceeded. [None] iff uncoverable.

    All solvers below take an optional [tick] callback, called once per
    unit of work (search node, greedy step, threshold). Cooperative
    cancellation hook: callers thread a deadline check in and abort a
    run by raising from the callback — this library stays free of any
    clock or budget policy. *)
val solve_exact : ?node_budget:int -> ?tick:(unit -> unit) -> t -> solution option

(** Greedy heuristic: repeatedly take the set maximizing
    (newly covered blue) / (ε + weight of newly covered red). The inner
    loop runs on packed {!Bitset}s (word-parallel gain counting). *)
val solve_greedy : ?tick:(unit -> unit) -> t -> solution option

(** Peleg's low-degree sweep (the engine behind LowDegTreeVSE, Alg. 2-3):
    for each threshold τ discard sets whose red weight exceeds τ, cover
    blue greedily by number of sets, keep the cheapest feasible outcome
    over all τ. Ratio 2√(|C| log β) on unit weights. The per-τ cover is a
    lazy-decreasing-gain greedy over {!Bitset}s: stale priority-queue
    gains are upper bounds, so sets are rescored only when popped. *)
val solve_lowdeg : ?tick:(unit -> unit) -> t -> solution option

(** Best of {!solve_greedy} and {!solve_lowdeg}. *)
val solve_approx : ?tick:(unit -> unit) -> t -> solution option

val pp : Format.formatter -> t -> unit
