(** Crash-consistent shard-cache snapshots: the durable image that lets
    a recovered session start {e warm}.

    A snapshot captures the plain-data state of the engine's shard
    solution cache ({!Deleprop.Planner.cache_entries} /
    [cache_stats]) together with the coordinates that tie it to one
    moment of one journal: the journal [position] (how many records
    preceded the write) and [generation] (which rewrite lineage those
    records belong to), the arena's content fingerprint, the partition
    size, the ids of the components dirty at that moment, and the
    session database expressed as a [baseline] delta against the base.
    Recovery replays the journal as usual and — when the stored
    coordinates match the replayed state — installs the entries and
    dirty flags, so the first post-recovery round splices clean shards
    from the cache exactly as the uninterrupted session would have. When
    the baseline is present and the journal's generation matches,
    the engine skips replaying the [position]-record prefix entirely
    (applying the baseline as one delta instead) and reclaims the sealed
    segments that prefix lived in — see [Engine.create ~recover].

    On-disk format, version 3: the magic ["DLPSNAP1"] followed by CRC-32
    framed payloads in the journal's framing (u32 LE length, u32 LE
    CRC-32, payload) — one header payload, an optional baseline payload,
    one payload per cache entry (most-recently-used first, each carrying
    the entry's recorded {!Deleprop.Decomposition.t}), then any number
    of incremental {e delta groups} appended by {!append} between full
    images. Floats are serialized as the 16 hex digits of their IEEE-754
    bits, so a restored cache is bit-identical to the written one
    (costs, certificates, thresholds, decompositions). Version 2 images
    (no decompositions, no per-tier counters, no deltas) still load:
    their entries restore with [e_decomposition = None] and the per-tier
    counters at zero.

    {2 Degradation ladder}

    A snapshot is an optimization, never a correctness input, and no
    failure shape aborts a recovery:
    - missing file → {!warning.Missing}, cold cache;
    - unreadable header, bad magic, or a bit flip in the header frame →
      {!warning.Corrupt}, whole snapshot dropped, cold cache;
    - a version this build doesn't read (including v1 images from
      before the baseline/generation coordinates existed) →
      {!warning.Version_mismatch}, cold cache;
    - a bit flip or torn tail {e inside the entry region} → only the
      damaged entries drop (the [dropped] count reports how many), the
      rest re-warm;
    - a damaged baseline frame → the baseline degrades to [None] (the
      engine falls back to full journal replay; counted in [dropped]),
      the entries behind it still re-warm when delimitable;
    - coordinates that don't match the journal replay (the engine's
      check, not {!load}'s) → {!warning.Stale}, cold cache. *)

type t = {
  position : int;
      (** journal records preceding this snapshot — recovery installs
          the cache after replaying exactly this many *)
  generation : int;
      (** the journal generation those [position] records belong to.
          Within a generation the record sequence is append-only (only
          {!Journal.rewrite} bumps it), so a generation match proves the
          current journal's first [position] records are the ones this
          snapshot summarizes — the soundness basis for skipping them *)
  arena_fp : Deleprop.Fingerprint.t;
      (** {!Deleprop.Fingerprint.arena} of the session arena at the
          write, tombstone/compaction-invariant *)
  components : int;  (** partition size at the write *)
  dirty : int list;
      (** component ids whose cached answers the deltas since their last
          solve may have invalidated (canonical ids, ascending) *)
  stats : Deleprop.Planner.cache_stats;
      (** lifetime cache counters, restored so recovered sessions report
          the same hit/miss history *)
  baseline : (Relational.Stuple.Set.t * Relational.Stuple.Set.t) option;
      (** the live database at the write as (gone, added) fact sets
          against the session's base database — applying it to the base
          reproduces the state replaying the first [position] records
          would. [None] only when the writer had no baseline or the
          frame was damaged *)
  entries : (Deleprop.Fingerprint.t * Deleprop.Planner.cache_entry) list;
      (** cache bindings, most-recently-used first *)
}

(** One incremental append between full images ({!append}): the
    refreshed coordinates and counter block, the cache changes since the
    previous frame, and the round's database delta. {!load} folds the
    clean prefix of appended deltas over the base image, so the returned
    {!t} is what a full write at the last clean delta's moment would
    have produced. *)
type delta = {
  d_position : int;        (** journal position after the round *)
  d_generation : int;
  d_arena_fp : Deleprop.Fingerprint.t;
  d_components : int;
  d_dirty : int list;
  d_stats : Deleprop.Planner.cache_stats;
  d_removed : Deleprop.Fingerprint.t list;
      (** bindings gone since the previous frame (LRU evictions, bucket
          sweeps, clears) *)
  d_order : Deleprop.Fingerprint.t list;
      (** the {e full} MRU-first order after the round — authoritative:
          folding reorders the surviving bindings by it *)
  d_deletes : Relational.Stuple.Set.t;
      (** the round's committed deletes (as journalled) *)
  d_inserts : Relational.Stuple.Set.t;
      (** the round's committed inserts (as journalled) *)
  d_upserts : (Deleprop.Fingerprint.t * Deleprop.Planner.cache_entry) list;
      (** bindings new or changed since the previous frame *)
}

(** Why a snapshot did not (fully) re-warm — surfaced as a typed warning
    in [Engine.Stats], never as an error. *)
type warning =
  | Missing             (** no snapshot file on disk *)
  | Version_mismatch of int  (** written by a format this build doesn't read *)
  | Corrupt of string   (** header unreadable: bad magic, torn frame, bit flip *)
  | Stale
      (** intact, but its coordinates don't match the journal replay
          (e.g. the journal advanced past it before the crash) *)

val pp_warning : Format.formatter -> warning -> unit

(** Stable machine-readable tag for the stats JSON: ["missing"],
    ["version_mismatch"], ["corrupt"], ["stale"]. *)
val warning_label : warning -> string

(** Atomically write [t] to [path]: full image to [path ^ ".tmp"],
    flush, fsync, rename — a crash leaves either the previous snapshot
    or the new one, never a blend. Crosses three failpoints:
    ["snapshot.write"] ([Crash_after_bytes n] emits [n] bytes of the
    temp image then raises, the rename happening iff the allowance
    covered the whole image), ["snapshot.corrupt"] ([Corrupt_byte n]
    flips one bit of the committed file — silent at-rest damage for the
    degradation tests), and ["snapshot.rename"] (hit after the rename —
    arm with [raise] to simulate dying between the snapshot commit and
    the checkpoint's journal mark). *)
val write : string -> t -> unit

(** Append one delta group (a "D" frame plus the upserted entry frames)
    to the committed image at [path]. Appends are not atomic: a crash
    mid-append leaves a torn group, which {!load} ignores along with
    everything after it — the base image and every previously appended
    clean group still load, and the journal replay covers the dropped
    freshness. [fsync] (default false) forces the group to disk.
    Crosses the ["snapshot.append"] failpoint ([Crash_after_bytes n]
    emits [n] bytes of the group, then raises). *)
val append : ?fsync:bool -> string -> delta -> unit

(** [load path] is [Ok (t, dropped)] — [t.entries] holding the entries
    that survived verbatim, [dropped] how many the header promised but
    did not decode cleanly — or [Error w] when nothing is salvageable.
    Never raises on file content. [Error Stale] is never produced here:
    staleness is the engine's replay-time check. *)
val load : string -> (t * int, warning) result

(** Delete the snapshot at [path], if any. *)
val remove : string -> unit
