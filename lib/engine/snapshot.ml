module R = Relational
module D = Deleprop
module S = Deleprop.Solution

let magic = "DLPSNAP1"

(* v3: per-entry decomposition records (the per-fragment cost
   decompositions [Planner.seed_fragments] restricts across splits), the
   per-tier fragment-reuse counters, and incremental delta frames
   appended between full images ({!append}). v2 images still load —
   their entries carry no decomposition ([None]: they splice normally
   but seed only through the Exact_small identity path) and their
   per-tier counters restore as zero. v1 snapshots load as
   [Version_mismatch] and degrade to a cold cache, like any other
   unreadable image. *)
let version = 3

type t = {
  position : int;
  generation : int;
  arena_fp : D.Fingerprint.t;
  components : int;
  dirty : int list;
  stats : D.Planner.cache_stats;
  baseline : (R.Stuple.Set.t * R.Stuple.Set.t) option;
  entries : (D.Fingerprint.t * D.Planner.cache_entry) list;
}

(* one incremental append between full images: the refreshed
   coordinates, the cache changes since the previous frame (upserted
   bindings, removed fingerprints, the full MRU order), and the round's
   database delta — folding a delta group over the image it follows
   reproduces the [t] a full write at the same moment would have
   produced *)
type delta = {
  d_position : int;
  d_generation : int;
  d_arena_fp : D.Fingerprint.t;
  d_components : int;
  d_dirty : int list;
  d_stats : D.Planner.cache_stats;
  d_removed : D.Fingerprint.t list;
  d_order : D.Fingerprint.t list;
  d_deletes : R.Stuple.Set.t;
  d_inserts : R.Stuple.Set.t;
  d_upserts : (D.Fingerprint.t * D.Planner.cache_entry) list;
}

type warning =
  | Missing
  | Version_mismatch of int
  | Corrupt of string
  | Stale

let pp_warning ppf = function
  | Missing -> Format.pp_print_string ppf "no snapshot on disk"
  | Version_mismatch v ->
    Format.fprintf ppf "snapshot version %d unsupported (this build reads %d)" v version
  | Corrupt reason -> Format.fprintf ppf "snapshot corrupt: %s" reason
  | Stale ->
    Format.pp_print_string ppf "snapshot does not match the journal replay"

let warning_label = function
  | Missing -> "missing"
  | Version_mismatch _ -> "version_mismatch"
  | Corrupt _ -> "corrupt"
  | Stale -> "stale"

(* ---- framing (shared shape with the journal: u32 LE length, u32 LE
   CRC-32, payload) ---- *)

let u32_le n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 (n land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 3 ((n lsr 24) land 0xFF);
  Bytes.unsafe_to_string b

let read_u32_le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame payload =
  let crc = Int32.to_int (Journal.crc32 payload) land 0xFFFFFFFF in
  u32_le (String.length payload) ^ u32_le crc ^ payload

(* ---- payload codecs ----

   Floats travel as the 16 hex digits of [Int64.bits_of_float], so a
   restored entry is bit-identical to the cached one — the re-warm
   equivalence property compares costs and certificates exactly, not up
   to printing precision. *)

let hex_of_float f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

let float_of_hex s =
  match D.Fingerprint.of_hex s with
  | Some bits -> Int64.float_of_bits bits
  | None -> failwith "bad float bits"

let fp_of_hex s =
  match D.Fingerprint.of_hex s with
  | Some fp -> fp
  | None -> failwith "bad fingerprint"

(* "key value" with an exact key match; "" for a bare "key" line *)
let field key line =
  let klen = String.length key in
  if
    String.length line >= klen
    && String.sub line 0 klen = key
    && (String.length line = klen || line.[klen] = ' ')
  then
    if String.length line = klen then ""
    else String.sub line (klen + 1) (String.length line - klen - 1)
  else failwith (Printf.sprintf "expected %S field" key)

let string_of_cert = function
  | S.Exact -> "exact"
  | S.Dual_bound f -> "dual " ^ hex_of_float f
  | S.Ratio f -> "ratio " ^ hex_of_float f
  | S.Heuristic -> "heuristic"
  | S.Anytime -> "anytime"
  | S.Composite { shards; factor } ->
    Printf.sprintf "composite %d %s" shards
      (match factor with None -> "-" | Some f -> hex_of_float f)

let cert_of_string s =
  match String.split_on_char ' ' s with
  | [ "exact" ] -> S.Exact
  | [ "dual"; b ] -> S.Dual_bound (float_of_hex b)
  | [ "ratio"; b ] -> S.Ratio (float_of_hex b)
  | [ "heuristic" ] -> S.Heuristic
  | [ "anytime" ] -> S.Anytime
  | [ "composite"; n; f ] ->
    S.Composite
      {
        shards = int_of_string n;
        factor = (if f = "-" then None else Some (float_of_hex f));
      }
  | _ -> failwith "bad certificate"

let string_of_class = function
  | D.Planner.Exact_small -> "small"
  | D.Planner.Exact_forest -> "forest"
  | D.Planner.Approximate -> "approx"

let class_of_string = function
  | "small" -> D.Planner.Exact_small
  | "forest" -> D.Planner.Exact_forest
  | "approx" -> D.Planner.Approximate
  | _ -> failwith "bad classification"

(* the counter block travels identically in the header and in delta
   frames *)
let stats_lines (s : D.Planner.cache_stats) =
  [
    "hits " ^ string_of_int s.D.Planner.s_hits;
    "misses " ^ string_of_int s.D.Planner.s_misses;
    "evictions " ^ string_of_int s.D.Planner.s_evictions;
    ("bucket "
    ^
    match s.D.Planner.s_last_bucket with
    | None -> "-"
    | Some b -> string_of_int b);
    "splices " ^ string_of_int s.D.Planner.s_fragment_reuses;
    "splices_exact " ^ string_of_int s.D.Planner.s_fragment_reuses_exact;
    "splices_forest " ^ string_of_int s.D.Planner.s_fragment_reuses_forest;
    "splices_approx " ^ string_of_int s.D.Planner.s_fragment_reuses_approx;
  ]

(* decode the 5-line v2 prefix, then — when [tiered] — the 3 per-tier
   lines v3 adds; returns the stats and the remaining lines *)
let decode_stats ~tiered lines =
  match lines with
  | hits :: misses :: ev :: bucket :: splices :: rest ->
    let base =
      {
        D.Planner.s_hits = int_of_string (field "hits" hits);
        s_misses = int_of_string (field "misses" misses);
        s_evictions = int_of_string (field "evictions" ev);
        s_last_bucket =
          (match field "bucket" bucket with
          | "-" -> None
          | b -> Some (int_of_string b));
        s_fragment_reuses = int_of_string (field "splices" splices);
        s_fragment_reuses_exact = 0;
        s_fragment_reuses_forest = 0;
        s_fragment_reuses_approx = 0;
      }
    in
    if not tiered then (base, rest)
    else (
      match rest with
      | se :: sf :: sa :: rest ->
        ( {
            base with
            D.Planner.s_fragment_reuses_exact =
              int_of_string (field "splices_exact" se);
            s_fragment_reuses_forest =
              int_of_string (field "splices_forest" sf);
            s_fragment_reuses_approx =
              int_of_string (field "splices_approx" sa);
          },
          rest )
      | _ -> failwith "truncated counter block")
  | _ -> failwith "truncated counter block"

let header_payload t =
  String.concat "\n"
    ([
       "H";
       "version " ^ string_of_int version;
       "position " ^ string_of_int t.position;
       "generation " ^ string_of_int t.generation;
       "arena " ^ D.Fingerprint.to_hex t.arena_fp;
       "components " ^ string_of_int t.components;
       String.concat " " ("dirty" :: List.map string_of_int t.dirty);
     ]
    @ stats_lines t.stats
    @ [
        ("baseline " ^ match t.baseline with None -> "0" | Some _ -> "1");
        "entries " ^ string_of_int (List.length t.entries);
      ])

exception Bad_version of int

let decode_header payload =
  match String.split_on_char '\n' payload with
  | "H" :: v :: pos :: gen :: ar :: comp :: dirty :: rest -> (
    let v = int_of_string (field "version" v) in
    if v <> version && v <> 2 then raise (Bad_version v);
    let position = int_of_string (field "position" pos) in
    let generation = int_of_string (field "generation" gen) in
    let arena_fp = fp_of_hex (field "arena" ar) in
    let components = int_of_string (field "components" comp) in
    let dirty =
      field "dirty" dirty |> String.split_on_char ' '
      |> List.filter (fun s -> s <> "")
      |> List.map int_of_string
    in
    let stats, rest = decode_stats ~tiered:(v >= 3) rest in
    match rest with
    | [ baseline; entries ] ->
      let has_baseline =
        match field "baseline" baseline with
        | "1" -> true
        | "0" -> false
        | _ -> failwith "bad baseline flag"
      in
      let count = int_of_string (field "entries" entries) in
      ( { position; generation; arena_fp; components; dirty; stats;
          baseline = None; entries = [] },
        has_baseline, count )
    | _ -> failwith "malformed header")
  | _ -> failwith "malformed header"

(* ---- decomposition section (v3 entries; absent in v2) ---- *)

let cert_slice_token = function
  | D.Decomposition.Slice_exact -> "exact"
  | D.Decomposition.Slice_heuristic -> "heuristic"
  | D.Decomposition.Slice_ratio f -> "ratio:" ^ hex_of_float f

let cert_slice_of_token s =
  match s with
  | "exact" -> D.Decomposition.Slice_exact
  | "heuristic" -> D.Decomposition.Slice_heuristic
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "ratio" ->
      D.Decomposition.Slice_ratio
        (float_of_hex (String.sub s (i + 1) (String.length s - i - 1)))
    | _ -> failwith "bad certificate slice")

(* Labels, node keys and pivots are [Stuple.to_string] content — they
   may contain spaces, so each travels on its own line, delimited by the
   counts in the structural lines around it. *)
let decomp_lines = function
  | None -> [ "decomp none" ]
  | Some (d : D.Decomposition.t) ->
    let trees =
      match d.D.Decomposition.d_structure with
      | D.Decomposition.Forest ts -> ts
      | _ -> []
    in
    let tag =
      match d.D.Decomposition.d_structure with
      | D.Decomposition.Witness_groups -> "groups"
      | D.Decomposition.Forest _ -> "forest"
      | D.Decomposition.Contributions -> "contrib"
    in
    Printf.sprintf "decomp %s %d %d %d" tag d.D.Decomposition.d_vtuples
      (List.length d.D.Decomposition.d_parts)
      (List.length trees)
    :: List.concat_map
         (fun (p : D.Decomposition.part) ->
           Printf.sprintf "part %s %s %d"
             (hex_of_float p.D.Decomposition.p_cost)
             (cert_slice_token p.D.Decomposition.p_cert)
             (R.Stuple.Set.cardinal p.D.Decomposition.p_deleted)
           :: p.D.Decomposition.p_label
           :: List.map R.Stuple.to_string
                (R.Stuple.Set.elements p.D.Decomposition.p_deleted))
         d.D.Decomposition.d_parts
    @ List.concat_map
        (fun (tr : D.Decomposition.forest_tree) ->
          Printf.sprintf "tree %d" (List.length tr.D.Decomposition.ft_nodes)
          :: tr.D.Decomposition.ft_pivot
          :: List.concat_map
               (fun (k, (n : D.Decomposition.forest_node)) ->
                 Printf.sprintf "node %d %s %s %s %s"
                   n.D.Decomposition.fn_depth
                   (if n.D.Decomposition.fn_cut then "1" else "0")
                   (hex_of_float n.D.Decomposition.fn_value)
                   (hex_of_float n.D.Decomposition.fn_slack)
                   (match n.D.Decomposition.fn_parent with
                   | None -> "-"
                   | Some _ -> "P")
                 :: k
                 ::
                 (match n.D.Decomposition.fn_parent with
                 | None -> []
                 | Some pk -> [ pk ]))
               tr.D.Decomposition.ft_nodes)
        trees

let take n lines =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | x :: rest -> go (n - 1) (x :: acc) rest
    | [] -> failwith "truncated section"
  in
  go n [] lines

let fact_of_line line =
  let rel, tuple = R.Serial.fact_of_string line in
  R.Stuple.make rel tuple

let decode_decomp lines =
  match lines with
  | [] -> (None, []) (* v2 entry: no decomposition section *)
  | l :: rest -> (
    match String.split_on_char ' ' (field "decomp" l) with
    | [ "none" ] -> (None, rest)
    | [ tag; nv; np; nt ] ->
      let nv = int_of_string nv in
      let np = int_of_string np in
      let nt = int_of_string nt in
      let rec parts k acc rest =
        if k = 0 then (List.rev acc, rest)
        else
          match rest with
          | ph :: label :: rest -> (
            match String.split_on_char ' ' (field "part" ph) with
            | [ cost; cert; nd ] ->
              let facts, rest = take (int_of_string nd) rest in
              parts (k - 1)
                ({
                   D.Decomposition.p_label = label;
                   p_deleted =
                     R.Stuple.Set.of_list (List.map fact_of_line facts);
                   p_cost = float_of_hex cost;
                   p_cert = cert_slice_of_token cert;
                 }
                :: acc)
                rest
            | _ -> failwith "bad part")
          | _ -> failwith "bad part"
      in
      let d_parts, rest = parts np [] rest in
      let rec nodes j acc rest =
        if j = 0 then (List.rev acc, rest)
        else
          match rest with
          | nh :: key :: rest -> (
            match String.split_on_char ' ' (field "node" nh) with
            | [ depth; cut; value; slack; par ] ->
              let fn_parent, rest =
                if par = "P" then
                  match rest with
                  | pk :: rest -> (Some pk, rest)
                  | [] -> failwith "bad node"
                else (None, rest)
              in
              nodes (j - 1)
                (( key,
                   {
                     D.Decomposition.fn_parent;
                     fn_depth = int_of_string depth;
                     fn_cut = cut = "1";
                     fn_value = float_of_hex value;
                     fn_slack = float_of_hex slack;
                   } )
                :: acc)
                rest
            | _ -> failwith "bad node")
          | _ -> failwith "bad node"
      in
      let rec trees k acc rest =
        if k = 0 then (List.rev acc, rest)
        else
          match rest with
          | th :: pivot :: rest ->
            let nn = int_of_string (field "tree" th) in
            let ft_nodes, rest = nodes nn [] rest in
            trees (k - 1)
              ({ D.Decomposition.ft_pivot = pivot; ft_nodes } :: acc)
              rest
          | _ -> failwith "bad tree"
      in
      let d_trees, rest = trees nt [] rest in
      let d_structure =
        match tag with
        | "groups" when nt = 0 -> D.Decomposition.Witness_groups
        | "contrib" when nt = 0 -> D.Decomposition.Contributions
        | "forest" -> D.Decomposition.Forest d_trees
        | _ -> failwith "bad decomposition tag"
      in
      ( Some { D.Decomposition.d_vtuples = nv; d_parts; d_structure },
        rest )
    | _ -> failwith "bad decomposition")

let entry_payload (fp, (e : D.Planner.cache_entry)) =
  String.concat "\n"
    ([
       "E";
       "fp " ^ D.Fingerprint.to_hex fp;
       "class " ^ string_of_class e.D.Planner.e_classification;
       "winner " ^ e.D.Planner.e_winner;
       "cost " ^ hex_of_float e.D.Planner.e_cost;
       "cert " ^ string_of_cert e.D.Planner.e_certificate;
       "forest " ^ (if e.D.Planner.e_forest then "1" else "0");
       "threshold " ^ hex_of_float e.D.Planner.e_threshold;
       "split " ^ (if e.D.Planner.e_split then "1" else "0");
       "deleted " ^ string_of_int (R.Stuple.Set.cardinal e.D.Planner.e_deleted);
     ]
    @ List.map R.Stuple.to_string (R.Stuple.Set.elements e.D.Planner.e_deleted)
    @ decomp_lines e.D.Planner.e_decomposition)

let decode_entry payload =
  match String.split_on_char '\n' payload with
  | "E" :: fp :: cls :: winner :: cost :: cert :: forest :: threshold :: split
    :: deleted :: rest ->
    let fp = fp_of_hex (field "fp" fp) in
    let e_classification = class_of_string (field "class" cls) in
    let e_winner = field "winner" winner in
    let e_cost = float_of_hex (field "cost" cost) in
    let e_certificate = cert_of_string (field "cert" cert) in
    let flag name line =
      match field name line with
      | "1" -> true
      | "0" -> false
      | _ -> failwith ("bad " ^ name ^ " flag")
    in
    let e_forest = flag "forest" forest in
    let e_threshold = float_of_hex (field "threshold" threshold) in
    let e_split = flag "split" split in
    let m = int_of_string (field "deleted" deleted) in
    let facts, rest = take m rest in
    let e_deleted = R.Stuple.Set.of_list (List.map fact_of_line facts) in
    let e_decomposition, rest = decode_decomp rest in
    if rest <> [] then failwith "trailing entry lines";
    ( fp,
      {
        D.Planner.e_classification;
        e_winner;
        e_deleted;
        e_cost;
        e_certificate;
        e_forest;
        e_threshold;
        e_split;
        e_decomposition;
      } )
  | _ -> failwith "malformed entry"

(* the baseline delta: the session's live database expressed against its
   base as (gone, added) fact sets — what the fast recovery path applies
   instead of replaying the journal prefix the snapshot covers *)
let baseline_payload (gone, added) =
  String.concat "\n"
    ([
       "B";
       "gone " ^ string_of_int (R.Stuple.Set.cardinal gone);
       "added " ^ string_of_int (R.Stuple.Set.cardinal added);
     ]
    @ List.map R.Stuple.to_string (R.Stuple.Set.elements gone)
    @ List.map R.Stuple.to_string (R.Stuple.Set.elements added))

let decode_baseline payload =
  match String.split_on_char '\n' payload with
  | "B" :: gone :: added :: facts ->
    let ng = int_of_string (field "gone" gone) in
    let na = int_of_string (field "added" added) in
    if List.length facts <> ng + na then failwith "fact count mismatch";
    let rec split_at n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | x :: rest -> split_at (n - 1) (x :: acc) rest
      | [] -> failwith "fact count mismatch"
    in
    let gfacts, afacts = split_at ng [] facts in
    ( R.Stuple.Set.of_list (List.map fact_of_line gfacts),
      R.Stuple.Set.of_list (List.map fact_of_line afacts) )
  | _ -> failwith "malformed baseline"

(* ---- incremental delta frames ----

   A delta group is one "D" frame followed by [upserts]-many entry
   frames. The "D" frame carries the refreshed coordinates and counter
   block, the removed fingerprints, the full MRU order (authoritative:
   folding re-orders the surviving bindings by it), and the round's
   (deletes, inserts) against the live database. *)

let fps_line key fps =
  String.concat " " (key :: List.map D.Fingerprint.to_hex fps)

let fps_of_line key line =
  field key line |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")
  |> List.map fp_of_hex

let delta_payload (d : delta) =
  String.concat "\n"
    ([
       "D";
       "position " ^ string_of_int d.d_position;
       "generation " ^ string_of_int d.d_generation;
       "arena " ^ D.Fingerprint.to_hex d.d_arena_fp;
       "components " ^ string_of_int d.d_components;
       String.concat " " ("dirty" :: List.map string_of_int d.d_dirty);
     ]
    @ stats_lines d.d_stats
    @ [
        fps_line "removed" d.d_removed;
        fps_line "order" d.d_order;
        "gone " ^ string_of_int (R.Stuple.Set.cardinal d.d_deletes);
        "added " ^ string_of_int (R.Stuple.Set.cardinal d.d_inserts);
      ]
    @ List.map R.Stuple.to_string (R.Stuple.Set.elements d.d_deletes)
    @ List.map R.Stuple.to_string (R.Stuple.Set.elements d.d_inserts)
    @ [ "upserts " ^ string_of_int (List.length d.d_upserts) ])

(* returns the delta (with [d_upserts = []]) and the number of entry
   frames that follow it *)
let decode_delta payload =
  match String.split_on_char '\n' payload with
  | "D" :: pos :: gen :: ar :: comp :: dirty :: rest -> (
    let d_position = int_of_string (field "position" pos) in
    let d_generation = int_of_string (field "generation" gen) in
    let d_arena_fp = fp_of_hex (field "arena" ar) in
    let d_components = int_of_string (field "components" comp) in
    let d_dirty =
      field "dirty" dirty |> String.split_on_char ' '
      |> List.filter (fun s -> s <> "")
      |> List.map int_of_string
    in
    let d_stats, rest = decode_stats ~tiered:true rest in
    match rest with
    | removed :: order :: gone :: added :: rest -> (
      let d_removed = fps_of_line "removed" removed in
      let d_order = fps_of_line "order" order in
      let ng = int_of_string (field "gone" gone) in
      let na = int_of_string (field "added" added) in
      let gfacts, rest = take ng rest in
      let afacts, rest = take na rest in
      match rest with
      | [ ups ] ->
        ( {
            d_position;
            d_generation;
            d_arena_fp;
            d_components;
            d_dirty;
            d_stats;
            d_removed;
            d_order;
            d_deletes = R.Stuple.Set.of_list (List.map fact_of_line gfacts);
            d_inserts = R.Stuple.Set.of_list (List.map fact_of_line afacts);
            d_upserts = [];
          },
          int_of_string (field "upserts" ups) )
      | _ -> failwith "malformed delta")
    | _ -> failwith "malformed delta")
  | _ -> failwith "malformed delta"

(* Fold one delta group over the image state. The baseline advances by
   set algebra on the round's delta — deletes first, then inserts, the
   engine's own commit order — so the folded (gone, added) pair is
   exactly what a full write at the delta's moment would have stored. *)
let fold_delta (t : t) (d : delta) =
  let tbl = Hashtbl.create (List.length t.entries + List.length d.d_upserts) in
  List.iter (fun (fp, e) -> Hashtbl.replace tbl fp e) t.entries;
  List.iter (fun fp -> Hashtbl.remove tbl fp) d.d_removed;
  List.iter (fun (fp, e) -> Hashtbl.replace tbl fp e) d.d_upserts;
  let entries =
    List.filter_map
      (fun fp ->
        match Hashtbl.find_opt tbl fp with
        | None -> None
        | Some e -> Some (fp, e))
      d.d_order
  in
  let baseline =
    match t.baseline with
    | None -> None
    | Some (gone, added) ->
      let gone1 =
        R.Stuple.Set.union gone (R.Stuple.Set.diff d.d_deletes added)
      in
      Some
        ( R.Stuple.Set.diff gone1 d.d_inserts,
          R.Stuple.Set.union
            (R.Stuple.Set.diff added d.d_deletes)
            (R.Stuple.Set.diff d.d_inserts gone1) )
  in
  {
    position = d.d_position;
    generation = d.d_generation;
    arena_fp = d.d_arena_fp;
    components = d.d_components;
    dirty = d.d_dirty;
    stats = d.d_stats;
    baseline;
    entries;
  }

(* ---- i/o ---- *)

let encode t =
  String.concat ""
    ((magic :: frame (header_payload t)
     :: (match t.baseline with
        | None -> []
        | Some b -> [ frame (baseline_payload b) ]))
    @ List.map (fun e -> frame (entry_payload e)) t.entries)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* corruption injection ("snapshot.corrupt"): flip one bit of the
   committed snapshot in place — the damage a load must degrade on, not
   crash on *)
let flip_bit path n =
  let data = read_file path in
  let size = String.length data in
  if size > 0 then begin
    let i = ((n mod size) + size) mod size in
    let b = Bytes.of_string data in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    let oc =
      open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 path
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_bytes oc b;
        flush oc)
  end

let write path t =
  let image = encode t in
  let tmp = path ^ ".tmp" in
  let write_tmp k =
    let oc =
      open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 tmp
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (String.sub image 0 k);
        flush oc;
        if k = String.length image then Unix.fsync (Unix.descr_of_out_channel oc))
  in
  (match D.Failpoint.find "snapshot.write" with
  | Some (D.Failpoint.Crash_after_bytes n) ->
    (* die [n] bytes into the temp image: a torn [.tmp] that never
       replaces the previous snapshot — unless the allowance covered the
       whole image, in which case the rename committed and the kill
       struck just after *)
    let k = min n (String.length image) in
    write_tmp k;
    if k = String.length image then Sys.rename tmp path;
    raise (D.Failpoint.Injected "snapshot.write")
  | fp ->
    (match fp with
    | Some _ -> D.Failpoint.hit "snapshot.write"
    | None -> ());
    write_tmp (String.length image);
    Sys.rename tmp path);
  (match D.Failpoint.find "snapshot.corrupt" with
  | Some (D.Failpoint.Corrupt_byte n) -> flip_bit path n
  | _ -> ());
  (* crash window between the snapshot commit and the checkpoint's
     journal mark — arm ["snapshot.rename"] with [raise] to land here *)
  D.Failpoint.hit "snapshot.rename"

let load path =
  if not (Sys.file_exists path) then Error Missing
  else
    match read_file path with
    | exception Sys_error msg -> Error (Corrupt msg)
    | data ->
      let len = String.length data in
      let mlen = String.length magic in
      if len < mlen || String.sub data 0 mlen <> magic then
        Error (Corrupt "bad magic")
      else begin
        (* [None] = no complete frame at [pos] *)
        let next_frame pos =
          if len - pos < 8 then None
          else
            let plen = read_u32_le data pos in
            if plen < 0 || len - pos - 8 < plen then None
            else
              let crc = read_u32_le data (pos + 4) in
              let payload = String.sub data (pos + 8) plen in
              if Int32.to_int (Journal.crc32 payload) land 0xFFFFFFFF <> crc
              then Some (Error "checksum mismatch", pos + 8 + plen)
              else Some (Ok payload, pos + 8 + plen)
        in
        match next_frame mlen with
        | None -> Error (Corrupt "truncated header")
        | Some (Error reason, _) -> Error (Corrupt ("header " ^ reason))
        | Some (Ok hp, pos0) -> (
          match decode_header hp with
          | exception Bad_version v -> Error (Version_mismatch v)
          | exception Failure msg -> Error (Corrupt ("header: " ^ msg))
          | meta, has_baseline, count ->
            (* the baseline frame (if announced) sits between the header
               and the entries; damage to it degrades the baseline to
               [None] — the engine then falls back to full journal
               replay — without sacrificing the cache entries behind it
               (unless the frame cannot even be delimited, which loses
               the rest of the image like any torn tail) *)
            let baseline, pos0, base_dropped =
              if not has_baseline then (None, pos0, 0)
              else
                match next_frame pos0 with
                | None -> (None, String.length data, 1)
                | Some (Error _, next) -> (None, next, 1)
                | Some (Ok payload, next) -> (
                  match decode_baseline payload with
                  | exception (Failure _ | R.Serial.Parse_error (_, _)) ->
                    (None, next, 1)
                  | b -> (Some b, next, 0))
            in
            (* per-entry degradation: a frame that fails its checksum or
               doesn't decode drops that entry alone; a frame that can't
               even be delimited (torn tail, corrupted length) drops the
               rest. [dropped] = header count − entries loaded. *)
            let rec go pos k acc dropped =
              if k = count then (List.rev acc, dropped, pos)
              else
                match next_frame pos with
                | None -> (List.rev acc, dropped + (count - k), pos)
                | Some (Error _, next) -> go next (k + 1) acc (dropped + 1)
                | Some (Ok payload, next) -> (
                  match decode_entry payload with
                  | exception (Failure _ | R.Serial.Parse_error (_, _)) ->
                    go next (k + 1) acc (dropped + 1)
                  | pair -> go next (k + 1) (pair :: acc) dropped)
            in
            let entries, dropped, pos1 = go pos0 0 [] 0 in
            (* Incremental delta groups appended after the full image.
               Folding stops at the first bad or torn frame — deltas are
               a strictly ordered suffix, so a clean prefix of them is
               always a consistent (merely older) state; the journal
               replay covers whatever the dropped tail described. A
               group applies only when its "D" frame and all its entry
               frames decode — a torn group is ignored whole. *)
            let rec fold_groups t pos =
              match next_frame pos with
              | None | Some (Error _, _) -> t
              | Some (Ok payload, next) -> (
                match decode_delta payload with
                | exception (Failure _ | R.Serial.Parse_error (_, _)) -> t
                | d, nup -> (
                  let rec ups k acc pos =
                    if k = 0 then Some (List.rev acc, pos)
                    else
                      match next_frame pos with
                      | None | Some (Error _, _) -> None
                      | Some (Ok p, next) -> (
                        match decode_entry p with
                        | exception (Failure _ | R.Serial.Parse_error (_, _))
                          ->
                          None
                        | pair -> ups (k - 1) (pair :: acc) next)
                  in
                  match ups nup [] next with
                  | None -> t
                  | Some (d_upserts, next') ->
                    fold_groups (fold_delta t { d with d_upserts }) next'))
            in
            let t = fold_groups { meta with baseline; entries } pos1 in
            Ok (t, base_dropped + dropped))
      end

(* Append one delta group to the committed image. Appends are not
   atomic — a crash mid-append leaves a torn group — but the base image
   is never rewritten, and [load] stops folding at the first bad frame,
   so the torn tail costs only the freshness it would have added. The
   ["snapshot.append"] failpoint mirrors the journal's torn-tail
   injection: [Crash_after_bytes n] emits [n] bytes of the group and
   raises. *)
let append ?(fsync = false) path (d : delta) =
  let data =
    String.concat ""
      (frame (delta_payload d)
      :: List.map (fun e -> frame (entry_payload e)) d.d_upserts)
  in
  let write_k k =
    let oc =
      open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
        path
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (String.sub data 0 k);
        flush oc;
        if k = String.length data && fsync then
          Unix.fsync (Unix.descr_of_out_channel oc))
  in
  match D.Failpoint.find "snapshot.append" with
  | Some (D.Failpoint.Crash_after_bytes n) ->
    write_k (min n (String.length data));
    raise (D.Failpoint.Injected "snapshot.append")
  | fp ->
    (match fp with
    | Some _ -> D.Failpoint.hit "snapshot.append"
    | None -> ());
    write_k (String.length data)

let remove path = if Sys.file_exists path then Sys.remove path
