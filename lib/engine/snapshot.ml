module R = Relational
module D = Deleprop
module S = Deleprop.Solution

let magic = "DLPSNAP1"

(* v2: adds the journal generation, the cache's fragment-reuse counter,
   the per-entry split flag, and an optional baseline delta (the live
   database as gone/added sets against the base) — the coordinates the
   engine's fast recovery path needs to install the snapshot without
   replaying the journal prefix it covers. v1 snapshots load as
   [Version_mismatch] and degrade to a cold cache, like any other
   unreadable image. *)
let version = 2

type t = {
  position : int;
  generation : int;
  arena_fp : D.Fingerprint.t;
  components : int;
  dirty : int list;
  stats : D.Planner.cache_stats;
  baseline : (R.Stuple.Set.t * R.Stuple.Set.t) option;
  entries : (D.Fingerprint.t * D.Planner.cache_entry) list;
}

type warning =
  | Missing
  | Version_mismatch of int
  | Corrupt of string
  | Stale

let pp_warning ppf = function
  | Missing -> Format.pp_print_string ppf "no snapshot on disk"
  | Version_mismatch v ->
    Format.fprintf ppf "snapshot version %d unsupported (this build reads %d)" v version
  | Corrupt reason -> Format.fprintf ppf "snapshot corrupt: %s" reason
  | Stale ->
    Format.pp_print_string ppf "snapshot does not match the journal replay"

let warning_label = function
  | Missing -> "missing"
  | Version_mismatch _ -> "version_mismatch"
  | Corrupt _ -> "corrupt"
  | Stale -> "stale"

(* ---- framing (shared shape with the journal: u32 LE length, u32 LE
   CRC-32, payload) ---- *)

let u32_le n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 (n land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 3 ((n lsr 24) land 0xFF);
  Bytes.unsafe_to_string b

let read_u32_le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame payload =
  let crc = Int32.to_int (Journal.crc32 payload) land 0xFFFFFFFF in
  u32_le (String.length payload) ^ u32_le crc ^ payload

(* ---- payload codecs ----

   Floats travel as the 16 hex digits of [Int64.bits_of_float], so a
   restored entry is bit-identical to the cached one — the re-warm
   equivalence property compares costs and certificates exactly, not up
   to printing precision. *)

let hex_of_float f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

let float_of_hex s =
  match D.Fingerprint.of_hex s with
  | Some bits -> Int64.float_of_bits bits
  | None -> failwith "bad float bits"

let fp_of_hex s =
  match D.Fingerprint.of_hex s with
  | Some fp -> fp
  | None -> failwith "bad fingerprint"

(* "key value" with an exact key match; "" for a bare "key" line *)
let field key line =
  let klen = String.length key in
  if
    String.length line >= klen
    && String.sub line 0 klen = key
    && (String.length line = klen || line.[klen] = ' ')
  then
    if String.length line = klen then ""
    else String.sub line (klen + 1) (String.length line - klen - 1)
  else failwith (Printf.sprintf "expected %S field" key)

let string_of_cert = function
  | S.Exact -> "exact"
  | S.Dual_bound f -> "dual " ^ hex_of_float f
  | S.Ratio f -> "ratio " ^ hex_of_float f
  | S.Heuristic -> "heuristic"
  | S.Anytime -> "anytime"
  | S.Composite { shards; factor } ->
    Printf.sprintf "composite %d %s" shards
      (match factor with None -> "-" | Some f -> hex_of_float f)

let cert_of_string s =
  match String.split_on_char ' ' s with
  | [ "exact" ] -> S.Exact
  | [ "dual"; b ] -> S.Dual_bound (float_of_hex b)
  | [ "ratio"; b ] -> S.Ratio (float_of_hex b)
  | [ "heuristic" ] -> S.Heuristic
  | [ "anytime" ] -> S.Anytime
  | [ "composite"; n; f ] ->
    S.Composite
      {
        shards = int_of_string n;
        factor = (if f = "-" then None else Some (float_of_hex f));
      }
  | _ -> failwith "bad certificate"

let string_of_class = function
  | D.Planner.Exact_small -> "small"
  | D.Planner.Exact_forest -> "forest"
  | D.Planner.Approximate -> "approx"

let class_of_string = function
  | "small" -> D.Planner.Exact_small
  | "forest" -> D.Planner.Exact_forest
  | "approx" -> D.Planner.Approximate
  | _ -> failwith "bad classification"

let header_payload t =
  String.concat "\n"
    [
      "H";
      "version " ^ string_of_int version;
      "position " ^ string_of_int t.position;
      "generation " ^ string_of_int t.generation;
      "arena " ^ D.Fingerprint.to_hex t.arena_fp;
      "components " ^ string_of_int t.components;
      String.concat " " ("dirty" :: List.map string_of_int t.dirty);
      "hits " ^ string_of_int t.stats.D.Planner.s_hits;
      "misses " ^ string_of_int t.stats.D.Planner.s_misses;
      "evictions " ^ string_of_int t.stats.D.Planner.s_evictions;
      ("bucket "
      ^
      match t.stats.D.Planner.s_last_bucket with
      | None -> "-"
      | Some b -> string_of_int b);
      "splices " ^ string_of_int t.stats.D.Planner.s_fragment_reuses;
      ("baseline " ^ match t.baseline with None -> "0" | Some _ -> "1");
      "entries " ^ string_of_int (List.length t.entries);
    ]

exception Bad_version of int

let decode_header payload =
  match String.split_on_char '\n' payload with
  | [
      "H"; v; pos; gen; ar; comp; dirty; hits; misses; ev; bucket; splices;
      baseline; entries;
    ] ->
    let v = int_of_string (field "version" v) in
    if v <> version then raise (Bad_version v);
    let position = int_of_string (field "position" pos) in
    let generation = int_of_string (field "generation" gen) in
    let arena_fp = fp_of_hex (field "arena" ar) in
    let components = int_of_string (field "components" comp) in
    let dirty =
      field "dirty" dirty |> String.split_on_char ' '
      |> List.filter (fun s -> s <> "")
      |> List.map int_of_string
    in
    let stats =
      {
        D.Planner.s_hits = int_of_string (field "hits" hits);
        s_misses = int_of_string (field "misses" misses);
        s_evictions = int_of_string (field "evictions" ev);
        s_last_bucket =
          (match field "bucket" bucket with
          | "-" -> None
          | b -> Some (int_of_string b));
        s_fragment_reuses = int_of_string (field "splices" splices);
      }
    in
    let has_baseline =
      match field "baseline" baseline with
      | "1" -> true
      | "0" -> false
      | _ -> failwith "bad baseline flag"
    in
    let count = int_of_string (field "entries" entries) in
    ( { position; generation; arena_fp; components; dirty; stats;
        baseline = None; entries = [] },
      has_baseline, count )
  | _ -> failwith "malformed header"

let entry_payload (fp, (e : D.Planner.cache_entry)) =
  String.concat "\n"
    ([
       "E";
       "fp " ^ D.Fingerprint.to_hex fp;
       "class " ^ string_of_class e.D.Planner.e_classification;
       "winner " ^ e.D.Planner.e_winner;
       "cost " ^ hex_of_float e.D.Planner.e_cost;
       "cert " ^ string_of_cert e.D.Planner.e_certificate;
       "forest " ^ (if e.D.Planner.e_forest then "1" else "0");
       "threshold " ^ hex_of_float e.D.Planner.e_threshold;
       "split " ^ (if e.D.Planner.e_split then "1" else "0");
       "deleted " ^ string_of_int (R.Stuple.Set.cardinal e.D.Planner.e_deleted);
     ]
    @ List.map R.Stuple.to_string (R.Stuple.Set.elements e.D.Planner.e_deleted))

let fact_of_line line =
  let rel, tuple = R.Serial.fact_of_string line in
  R.Stuple.make rel tuple

let decode_entry payload =
  match String.split_on_char '\n' payload with
  | "E" :: fp :: cls :: winner :: cost :: cert :: forest :: threshold :: split
    :: deleted :: facts ->
    let fp = fp_of_hex (field "fp" fp) in
    let e_classification = class_of_string (field "class" cls) in
    let e_winner = field "winner" winner in
    let e_cost = float_of_hex (field "cost" cost) in
    let e_certificate = cert_of_string (field "cert" cert) in
    let flag name line =
      match field name line with
      | "1" -> true
      | "0" -> false
      | _ -> failwith ("bad " ^ name ^ " flag")
    in
    let e_forest = flag "forest" forest in
    let e_threshold = float_of_hex (field "threshold" threshold) in
    let e_split = flag "split" split in
    let m = int_of_string (field "deleted" deleted) in
    if List.length facts <> m then failwith "fact count mismatch";
    let e_deleted = R.Stuple.Set.of_list (List.map fact_of_line facts) in
    ( fp,
      {
        D.Planner.e_classification;
        e_winner;
        e_deleted;
        e_cost;
        e_certificate;
        e_forest;
        e_threshold;
        e_split;
      } )
  | _ -> failwith "malformed entry"

(* the baseline delta: the session's live database expressed against its
   base as (gone, added) fact sets — what the fast recovery path applies
   instead of replaying the journal prefix the snapshot covers *)
let baseline_payload (gone, added) =
  String.concat "\n"
    ([
       "B";
       "gone " ^ string_of_int (R.Stuple.Set.cardinal gone);
       "added " ^ string_of_int (R.Stuple.Set.cardinal added);
     ]
    @ List.map R.Stuple.to_string (R.Stuple.Set.elements gone)
    @ List.map R.Stuple.to_string (R.Stuple.Set.elements added))

let decode_baseline payload =
  match String.split_on_char '\n' payload with
  | "B" :: gone :: added :: facts ->
    let ng = int_of_string (field "gone" gone) in
    let na = int_of_string (field "added" added) in
    if List.length facts <> ng + na then failwith "fact count mismatch";
    let rec split_at n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | x :: rest -> split_at (n - 1) (x :: acc) rest
      | [] -> failwith "fact count mismatch"
    in
    let gfacts, afacts = split_at ng [] facts in
    ( R.Stuple.Set.of_list (List.map fact_of_line gfacts),
      R.Stuple.Set.of_list (List.map fact_of_line afacts) )
  | _ -> failwith "malformed baseline"

(* ---- i/o ---- *)

let encode t =
  String.concat ""
    ((magic :: frame (header_payload t)
     :: (match t.baseline with
        | None -> []
        | Some b -> [ frame (baseline_payload b) ]))
    @ List.map (fun e -> frame (entry_payload e)) t.entries)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* corruption injection ("snapshot.corrupt"): flip one bit of the
   committed snapshot in place — the damage a load must degrade on, not
   crash on *)
let flip_bit path n =
  let data = read_file path in
  let size = String.length data in
  if size > 0 then begin
    let i = ((n mod size) + size) mod size in
    let b = Bytes.of_string data in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    let oc =
      open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 path
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_bytes oc b;
        flush oc)
  end

let write path t =
  let image = encode t in
  let tmp = path ^ ".tmp" in
  let write_tmp k =
    let oc =
      open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 tmp
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (String.sub image 0 k);
        flush oc;
        if k = String.length image then Unix.fsync (Unix.descr_of_out_channel oc))
  in
  (match D.Failpoint.find "snapshot.write" with
  | Some (D.Failpoint.Crash_after_bytes n) ->
    (* die [n] bytes into the temp image: a torn [.tmp] that never
       replaces the previous snapshot — unless the allowance covered the
       whole image, in which case the rename committed and the kill
       struck just after *)
    let k = min n (String.length image) in
    write_tmp k;
    if k = String.length image then Sys.rename tmp path;
    raise (D.Failpoint.Injected "snapshot.write")
  | fp ->
    (match fp with
    | Some _ -> D.Failpoint.hit "snapshot.write"
    | None -> ());
    write_tmp (String.length image);
    Sys.rename tmp path);
  (match D.Failpoint.find "snapshot.corrupt" with
  | Some (D.Failpoint.Corrupt_byte n) -> flip_bit path n
  | _ -> ());
  (* crash window between the snapshot commit and the checkpoint's
     journal mark — arm ["snapshot.rename"] with [raise] to land here *)
  D.Failpoint.hit "snapshot.rename"

let load path =
  if not (Sys.file_exists path) then Error Missing
  else
    match read_file path with
    | exception Sys_error msg -> Error (Corrupt msg)
    | data ->
      let len = String.length data in
      let mlen = String.length magic in
      if len < mlen || String.sub data 0 mlen <> magic then
        Error (Corrupt "bad magic")
      else begin
        (* [None] = no complete frame at [pos] *)
        let next_frame pos =
          if len - pos < 8 then None
          else
            let plen = read_u32_le data pos in
            if plen < 0 || len - pos - 8 < plen then None
            else
              let crc = read_u32_le data (pos + 4) in
              let payload = String.sub data (pos + 8) plen in
              if Int32.to_int (Journal.crc32 payload) land 0xFFFFFFFF <> crc
              then Some (Error "checksum mismatch", pos + 8 + plen)
              else Some (Ok payload, pos + 8 + plen)
        in
        match next_frame mlen with
        | None -> Error (Corrupt "truncated header")
        | Some (Error reason, _) -> Error (Corrupt ("header " ^ reason))
        | Some (Ok hp, pos0) -> (
          match decode_header hp with
          | exception Bad_version v -> Error (Version_mismatch v)
          | exception Failure msg -> Error (Corrupt ("header: " ^ msg))
          | meta, has_baseline, count ->
            (* the baseline frame (if announced) sits between the header
               and the entries; damage to it degrades the baseline to
               [None] — the engine then falls back to full journal
               replay — without sacrificing the cache entries behind it
               (unless the frame cannot even be delimited, which loses
               the rest of the image like any torn tail) *)
            let baseline, pos0, base_dropped =
              if not has_baseline then (None, pos0, 0)
              else
                match next_frame pos0 with
                | None -> (None, String.length data, 1)
                | Some (Error _, next) -> (None, next, 1)
                | Some (Ok payload, next) -> (
                  match decode_baseline payload with
                  | exception (Failure _ | R.Serial.Parse_error (_, _)) ->
                    (None, next, 1)
                  | b -> (Some b, next, 0))
            in
            (* per-entry degradation: a frame that fails its checksum or
               doesn't decode drops that entry alone; a frame that can't
               even be delimited (torn tail, corrupted length) drops the
               rest. [dropped] = header count − entries loaded. *)
            let rec go pos k acc dropped =
              if k = count then (List.rev acc, dropped)
              else
                match next_frame pos with
                | None -> (List.rev acc, dropped + (count - k))
                | Some (Error _, next) -> go next (k + 1) acc (dropped + 1)
                | Some (Ok payload, next) -> (
                  match decode_entry payload with
                  | exception (Failure _ | R.Serial.Parse_error (_, _)) ->
                    go next (k + 1) acc (dropped + 1)
                  | pair -> go next (k + 1) (pair :: acc) dropped)
            in
            let entries, dropped = go pos0 0 [] 0 in
            Ok ({ meta with baseline; entries }, base_dropped + dropped))
      end

let remove path = if Sys.file_exists path then Sys.remove path
