(** A long-lived propagation session (the §V interactive loops: propose
    repairs, apply, re-solve, round after round).

    One {!t} owns the materialized views ({!Deleprop.Matview}), a
    provenance index ({!Deleprop.Provenance}), its compiled arena
    ({!Deleprop.Arena}) and a persistent {!Deleprop.Par.Pool} — all
    built once at {!create} and then maintained {e incrementally}:

    - {!request} re-targets the cached index at the round's ΔV
      ([Provenance.with_deletions] / [Arena.with_deletions] — the
      (D,Q)-dependent structure is shared, only bad/preserved re-stamp)
      and runs the solver portfolio on the session pool;
    - {!apply} / {!delete} / {!insert} / {!apply_delta} all commit
      through one symmetric transition on a {!Deleprop.Delta.t}:
      deletions {e patch} the index ([Provenance.delete] /
      [Arena.delete]: killed rows tombstone in place, no id moves) and
      insertions patch it too ([Provenance.insert] / [Arena.extend]:
      gained rows resurrect dead slots or splice in by delta
      evaluation) — the index is built exactly once, in {!create}, and
      the component partition stays live across both sides
      ([Arena.partition_delete] splits, [Arena.partition_insert]
      merges). Every patch is counted in {!stats} ([patches] /
      [inserts_patched]); [rebuilds] stays 1 for the whole session.
      Under the lazy tombstone regime (see {!create}'s
      [compact_threshold]) dead slots accumulate across rounds and the
      engine compacts ({!Deleprop.Arena.compact}) only when the
      tombstone ratio crosses the threshold — amortized O(1) slot
      movement per round instead of O(‖index‖) per delete.

    The session is {e resilient}: rounds run under an optional time
    budget with graceful degradation (see {!Deleprop.Portfolio}), solver
    crashes are isolated into {!plan.failures}, and committed operations
    can be journaled to disk ({!Journal}) so a killed session recovers
    to exactly its last committed state. With a [snapshot] path the
    shard solution cache itself is durable ({!Snapshot}): recovery
    re-warms it and the first post-recovery round splices clean shards
    instead of re-solving the world — and every snapshot failure shape
    (missing, torn, bit-flipped, stale, old version) degrades to a cold
    cache with a typed warning in {!stats}, never a failed recovery.

    The differential property suite ([test/test_engine.ml]) drives
    random delete/insert/solve streams through both this incremental
    path and rebuild-from-scratch and checks the indexes and ranked
    solver outputs are bit-identical; [test/test_resilience.ml] does the
    same across injected crashes and journal recovery.

    The query set must be key preserving ({!create} enforces it): the
    unique-witness index is what makes incremental deletion exact. *)

type t

(** How {!create}'s recovery left the shard cache. Stamped once per
    session; [Degraded] is the degradation ladder's typed warning — a
    snapshot problem is never an error. *)
type snapshot_status =
  | Cold
      (** no snapshot in play: fresh session, no [snapshot] path, or a
          session recovered without one *)
  | Warm of { entries : int; dropped : int }
      (** the snapshot installed: [entries] cache entries re-warmed,
          [dropped] entries the file promised but lost to damage *)
  | Degraded of Snapshot.warning
      (** recovery wanted the snapshot but fell back to a cold cache *)

val pp_snapshot_status : Format.formatter -> snapshot_status -> unit

type stats = {
  rounds : int;           (** {!request} calls that reached the solvers *)
  applies : int;          (** committed deletions ({!apply} + {!delete}) *)
  tuples_deleted : int;   (** source tuples removed, cumulative *)
  tuples_inserted : int;  (** source tuples added, cumulative *)
  patches : int;          (** commits whose deletions incrementally patched the index *)
  inserts_patched : int;  (** source-tuple insertions patched into the live
                              index (never by invalidate-and-rebuild) *)
  rebuilds : int;         (** full index builds — 1 for the whole session
                              (the one in {!create}); nothing invalidates *)
  index_retargets : int;  (** operations served by re-targeting the live
                              index (the historical spellings
                              [index_hits] / [cache_hits] were emitted as
                              JSON aliases for one release — schema
                              version 2 — and are gone as of version 3) *)
  last_solve_ms : float;  (** wall time of the last round (patch + portfolio) *)
  total_solve_ms : float; (** cumulative round wall time *)
  journal_records : int;  (** records appended to the journal this session *)
  recovered_records : int;(** records replayed from the journal at {!create} *)
  components : int;       (** connected components of the live index's
                              incidence graph *)
  shards_solved : int;    (** shards dispatched by the planner, cumulative *)
  shards_exact : int;     (** ... solved by an exact tier (brute / DP) *)
  shards_approx : int;    (** ... solved by the approximation portfolio *)
  shards_cached : int;    (** ... spliced from the shard solution cache
                              (no solver ran; see {!create}'s
                              [shard_cache]) *)
  shards_resolved : int;  (** ... actually re-solved — [shards_cached +
                              shards_resolved = shards_solved] *)
  shard_cache_hits : int; (** the shard cache's lifetime hit counter
                              ({!Deleprop.Planner.cache_hits}), read at
                              {!stats} time; 0 without a cache *)
  fragment_reuses : int;  (** lifetime splices of entries seeded by
                              split-aware fragment restriction
                              ({!Deleprop.Planner.cache_fragment_reuses}),
                              read at {!stats} time — cache hits that
                              exist only because a split's surviving
                              fragment inherited its parent component's
                              answer; 0 without a cache *)
  fragment_reuses_exact : int;
                          (** {!fragment_reuses} whose seeded entry came
                              through the brute-force identity
                              restriction ([Exact_small] parents) *)
  fragment_reuses_forest : int;
                          (** ... through the recorded-DP-tree replay
                              ([Exact_forest] parents) *)
  fragment_reuses_approx : int;
                          (** ... through the approximate identity
                              restriction with certificate rewrite
                              ([Approximate] parents). The three always
                              sum to [fragment_reuses] *)
  tombstone_ratio : float;(** dead slots / total slots in the live arena,
                              read at {!stats} time — 0.0 right after a
                              compaction (and always, under the eager
                              regime) *)
  compactions : int;      (** explicit index compactions: threshold
                              triggers, {!checkpoint}s and {!compact}
                              calls (eager-regime inline compaction is
                              not counted — it is part of the delete
                              itself) *)
  snapshot : snapshot_status;
                          (** how recovery left the shard cache: warm
                              from a durable snapshot, cold, or degraded
                              with the typed reason *)
}

(** The typed reporting surface. [Stats.t] is an alias of {!stats} (the
    same record — field access works through either path); what it adds
    is the one JSON encoding every front end shares, so the CLI's
    [--json] output and any embedding application serialize stats
    identically. {!Stats.to_json} emits every field above, spelling
    floats with 3 decimals and [snapshot] as a one-object summary
    ([{"state": "cold" | "warm" | "degraded", ...}] with [entries] /
    [dropped] counts when warm and the {!Snapshot.warning_label} reason
    when degraded). *)
module Stats : sig
  type t = stats = {
    rounds : int;
    applies : int;
    tuples_deleted : int;
    tuples_inserted : int;
    patches : int;
    inserts_patched : int;
    rebuilds : int;
    index_retargets : int;
    last_solve_ms : float;
    total_solve_ms : float;
    journal_records : int;
    recovered_records : int;
    components : int;
    shards_solved : int;
    shards_exact : int;
    shards_approx : int;
    shards_cached : int;
    shards_resolved : int;
    shard_cache_hits : int;
    fragment_reuses : int;
    fragment_reuses_exact : int;
    fragment_reuses_forest : int;
    fragment_reuses_approx : int;
    tombstone_ratio : float;
    compactions : int;
    snapshot : snapshot_status;
  }

  val zero : t
  val pp : Format.formatter -> t -> unit
  val to_json : t -> Deleprop.Report.t
end

(** A solved round: the requests it answered, the ranked feasible
    solutions (cheapest first), and the round's resilience report —
    solvers that timed out or crashed, and whether the answer came from
    the degradation ladder ({!Deleprop.Portfolio.report}). Planner
    sessions ([create ~plan:true]) additionally report the shatter:
    [decomposed] is true when the round solved ≥ 2 independent
    components ([solutions] is then the single recombined
    {!Deleprop.Solution.Composite}), and [shards] records each
    component's classification and winner. *)
type plan = {
  requests : Deleprop.Delta_request.t list;
  solutions : Deleprop.Solution.t list;
  failures : Deleprop.Portfolio.failure list;
  degraded : bool;
  decomposed : bool;
  shards : Deleprop.Planner.shard_decision list;
  shards_cached : int;
      (** how many of [shards] were spliced from the session's shard
          cache rather than re-solved this round *)
}

(** Build the session: evaluates the queries once (shared between the
    provenance index and the view manager), compiles the arena, spawns
    the domain pool. [algorithms] restricts the portfolio (names as in
    {!Deleprop.Portfolio.solutions}); [exact_threshold] as there;
    [domains] sizes the pool (default
    [Domain.recommended_domain_count ()]; pass [~domains:1] for a
    sequential session with no spawned domain). Raises
    [Invalid_argument] on non-key-preserving queries.

    [plan] (default [false]) routes rounds through the shatter-and-plan
    solver ({!Deleprop.Planner.solve}) instead of the flat portfolio:
    the session's incrementally maintained component partition shatters
    each round into independent sub-instances, solved per-component
    (exact where small or forest-shaped) on the session pool.

    [budget_ms] arms every round with a wall-clock deadline (overridable
    per {!request}).

    [compact_threshold] picks the tombstone regime. [<= 0.0]: {e eager}
    — every committed delete compacts the index inline, reproducing the
    pre-tombstone behaviour bit-for-bit. [> 0.0]: {e lazy} — deletes
    tombstone slots in place ({!Deleprop.Arena.delete}), inserts
    resurrect dead slots when they can
    ({!Deleprop.Arena.can_extend_in_place}), and the engine compacts
    only when {!Deleprop.Arena.tombstone_ratio} exceeds the threshold —
    per-round commit cost proportional to the delta, not the index. The
    two regimes are observationally identical (solutions, views,
    fingerprints, recovery — [test/test_tombstone.ml] is the
    differential proof); only wall-clock and the [tombstone_ratio] /
    [compactions] stats differ. Default: [0.5] with [~plan:true]
    (the planner's shard pipeline skips dead slots natively), [0.0]
    without (the flat portfolio would pay a compaction per round
    anyway).

    [journal] makes committed operations durable in an append-only log
    at that path. With [recover] (default [false]) an existing journal
    is replayed on top of [db] — a torn final record (killed mid-write)
    is truncated away, interior corruption raises {!Journal.Error} —
    and the session continues appending; without it any existing file
    (and snapshot) is discarded. [db] must be the same database the
    journal was recorded against. [fsync] (default [false]) upgrades
    every journal flush to a physical sync — durability against power
    loss at a per-append cost — and [segment_bytes] bounds the journal's
    file size by rotating sealed segments ({!Journal.open_writer}).

    [shard_cache] (default 512; [0] disables) bounds the planner
    session's shard solution cache ({!Deleprop.Planner.cache}): the
    engine tracks which components each committed delta touched
    (remapped through the same sid correspondences the index patches
    use) and {!request} re-solves only the dirty shards, splicing
    memoized answers for the clean ones. Cached rounds are
    solution-equivalent to fresh ones whenever the session is
    deterministic (no [budget_ms] expiring mid-solver) — the
    differential suite in [test/test_shardcache.ml] enforces this.
    Ignored without [~plan:true]. A session recovered {e without} a
    snapshot starts with a cold cache and every component dirty, so
    recovery never changes answers.

    [snapshot] (requires [journal] — [Invalid_argument] otherwise) makes
    the shard cache itself durable at that path: the engine writes a
    crash-consistent {!Snapshot} at every {!checkpoint} and, amortized,
    once [snapshot_every] (default 16; [<= 0] = checkpoint-only) records
    accumulate past the last one. With [recover], a snapshot whose
    coordinates (journal position, partition size, canonical arena
    fingerprint) match the replay installs mid-replay — restoring the
    entries, the lifetime counters, {e and} the dirty flags, which the
    remaining journal tail then remaps like live deltas — so the first
    post-recovery round re-solves only what the crashed session would
    have. When the snapshot additionally carries a database baseline and
    its recorded journal generation still matches the journal on disk,
    recovery takes the {e fast path}: the [position]-record prefix is
    never parsed — the baseline applies as one delta, only the tail
    replays, and an immediate checkpoint folds the sealed journal
    segments the prefix lived in away (sealed-segment reclamation, via
    the generation-bumping rewrite so a crash mid-reclaim can never
    orphan the snapshot's recorded position). Every failure shape degrades
    per the {!Snapshot} ladder (the fast path itself degrades to the
    full replay) and stamps [stats.snapshot]; [test/test_rewarm.ml]
    holds the crash+recover ≡ uninterrupted equivalence property.

    [indexed] (default [true]) routes planner rounds through the live
    {!Deleprop.Component_index} — active components enumerate off
    maintained per-component rosters in O(‖ΔV‖ + active) instead of the
    O(‖D‖ + ‖V‖) partition sweep — and arms split-aware cache reuse:
    after a committed deletion splits a memoized component, surviving
    fragments whose candidate neighborhood the delete did not touch
    inherit the parent's cached answer by restriction
    ({!Deleprop.Planner.seed_fragments}) and stay clean. [~indexed:false]
    keeps the sweep path (the component index is still maintained, so
    the two modes are lockstep-comparable — [test/test_compindex.ml]
    proves them bit-identical). *)
val create :
  ?weights:Deleprop.Weights.t ->
  ?exact_threshold:int ->
  ?algorithms:string list ->
  ?plan:bool ->
  ?domains:int ->
  ?budget_ms:float ->
  ?compact_threshold:float ->
  ?journal:string ->
  ?recover:bool ->
  ?shard_cache:int ->
  ?snapshot:string ->
  ?snapshot_every:int ->
  ?fsync:bool ->
  ?segment_bytes:int ->
  ?indexed:bool ->
  Relational.Instance.t ->
  Cq.Query.t list ->
  t

(** Solve one round of typed deletion intents against the current state.
    Nothing is committed — call {!apply} with the returned plan.
    [budget_ms] overrides the session default for this round. *)
val request :
  ?budget_ms:float ->
  t -> Deleprop.Delta_request.t list -> (plan, Deleprop.Delta_request.error) result

(** Commit a solution of [plan] — [solution] (default: the plan's
    cheapest) — and return it. [None] when the plan has no feasible
    solution (nothing committed). Tuples already gone from the database
    are skipped; the provenance index and arena are patched, never
    rebuilt. Journaled as an [Apply] record when the session has a
    journal. *)
val apply : ?solution:Deleprop.Solution.t -> t -> plan -> Deleprop.Solution.t option

(** Commit a direct source deletion (same incremental path as {!apply},
    no solver involved). Journaled as a [Delete] record. *)
val delete : t -> Relational.Stuple.Set.t -> unit

(** Insert a source tuple: views maintain incrementally and the
    provenance/arena index {e patches in place} — the gained view tuples
    (and only those) splice into every layer, the partition merges the
    components the new witnesses bridge ([Arena.partition_insert]), and
    [stats.inserts_patched] counts the tuple. Raises
    {!Relational.Relation.Key_violation} like the underlying instance
    and {!Deleprop.Provenance.Ambiguous_witness} when the insertion
    breaks key preservation; the session state is untouched and nothing
    is journaled then. Journaled as an [Insert] record. *)
val insert : t -> Relational.Stuple.t -> unit

val insert_all : t -> Relational.Stuple.Set.t -> unit

(** Commit a symmetric update in one transition: [delta.deletes] first,
    then [delta.inserts], both patching the live index (the same path
    {!apply}, {!delete} and {!insert} route through). Returns the
    subset actually applied — deletes of absent tuples and inserts of
    present ones are skipped (a tuple on both sides is a legal
    delete-then-reinsert). Journaled as a single [Delta] record when
    non-empty; on [Key_violation] / [Ambiguous_witness] nothing commits
    and nothing is journaled. *)
val apply_delta : t -> Deleprop.Delta.t -> Deleprop.Delta.t

(** Compact the live index now: drop tombstoned slots from the arena
    and re-gather the partition ({!Deleprop.Arena.compact} /
    {!Deleprop.Arena.compact_partition} — labels and dirty flags
    survive). No-op when the index has no tombstones. Counted in
    [stats.compactions]. The engine calls this itself when the
    tombstone ratio crosses [compact_threshold] and before every
    {!checkpoint}; exposing it lets an embedding application compact at
    its own quiet points. *)
val compact : t -> unit

(** Compact the journal: atomically rewrite it as the minimal diff
    between the database {!create} was given and the current one — a
    single symmetric [Delta] record (deletes replay before inserts, so
    key updates land cleanly). Recovery cost stops growing with session
    length. No-op for journal-less sessions. Compacts the live index
    first ({!compact}) so the durable baseline corresponds to the
    compact form; sealed journal segments of the old generation are
    superseded and unlinked. With a [snapshot] path, a fresh snapshot is
    written just before the journal mark — the crash window between the
    two is covered by recovery's end-of-replay staleness check. *)
val checkpoint : t -> unit

val db : t -> Relational.Instance.t

(** Current materialized view / manager (kept consistent by every
    operation). *)
val view : t -> string -> Relational.Tuple.Set.t

val matview : t -> Deleprop.Matview.t

(** The session's live baseline index (ΔV = ∅) — built once in
    {!create}, patched by every commit since; what the differential
    tests compare against scratch construction. Under the lazy regime
    the returned arena may carry tombstones; [Arena.compact] of it is
    bit-identical to a scratch build. *)
val index : t -> Deleprop.Provenance.t * Deleprop.Arena.t

(** The live index's component partition, maintained incrementally
    across commits ([Arena.partition_delete] splits on deletes,
    [Arena.partition_insert] merges on inserts) — bit-identical to
    [Arena.partition (snd (index t))] (over a tombstoned arena that
    partition labels live slots only; dead slots carry [-1]). *)
val partition : t -> Deleprop.Arena.partition

(** The session's live component index — the partition above plus the
    per-component member rosters and solve memos
    ({!Deleprop.Component_index}), maintained through every commit.
    What the lockstep differential tests compare against
    [Component_index.build (snd (index t))]. *)
val component_index : t -> Deleprop.Component_index.t

(** A point-in-time snapshot: the session's counters, with
    [shard_cache_hits], the [fragment_reuses*] family, and
    [tombstone_ratio] read off the live cache and arena at call time. *)
val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit

(** Close the journal (if any) and shut the domain pool down. The engine
    remains usable afterwards (parallel fan-outs degrade to sequential,
    further commits are no longer journaled). *)
val close : t -> unit

(** Line-oriented round scripts for [deleprop batch]:
    {v
    # comments and blank lines are skipped
    solve Q4(John, TKDE, XML); Q4(Tom, TKDE, XML)
    propose Q4(Ann, TODS, XML)
    insert T1(Ann, TODS)
    delete T2(TODS, XML, 30)
    v}
    [solve] takes view facts separated by [;] (grouped into one
    {!Deleprop.Delta_request.t} per view); [propose] is [solve] without
    the commit — the plan is reported, nothing applies (what-if rounds;
    under [create ~plan:true] repeated proposals over untouched
    components hit the shard cache); [insert]/[delete] take one source
    fact in {!Relational.Serial.fact_of_string} syntax. *)
module Script : sig
  type op =
    | Solve of Deleprop.Delta_request.t list
    | Propose of Deleprop.Delta_request.t list
    | Insert of Relational.Stuple.t
    | Delete of Relational.Stuple.t

  (** A parsed script line: the op plus where it came from — [lineno]
      is 1-based in the source text, [text] the trimmed line itself
      (what error messages quote). *)
  type line = {
    lineno : int;
    text : string;
    op : op;
  }

  (** One executed script line: [plan] is [Some] exactly for successful
      [Solve] ops (whose cheapest solution was applied) and [Propose]
      ops (nothing applied); [error] is [Some] only under
      [replay ~keep_going:true] for ops that failed. *)
  type round = {
    number : int;
    op : op;
    plan : plan option;
    error : string option;
  }

  val parse : string -> (line list, string) result
  val parse_file : string -> (line list, string) result

  (** Execute the ops in order — [Solve] rounds auto-apply their best
      solution. An op failure reports ["round %d (<line text>): %s"]:
      by default the replay stops there; with [keep_going] the failed
      round is recorded (its [error] set) and the rest of the script
      still runs. *)
  val replay : ?keep_going:bool -> t -> line list -> (round list, string) result
end

(** The session journal and the shard-cache snapshot machinery,
    re-exported ([Engine] is the library's interface module). *)
module Journal : module type of Journal

module Snapshot : module type of Snapshot
