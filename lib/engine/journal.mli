(** Durable session journal: an append-only log of the committed
    operations of one engine session, replayable against the database
    the session was created with.

    On-disk layout (all integers little-endian):
    {v
    +--------------------------------------------------+
    | magic "DLPJRNL1" (8 bytes)                       |
    +------------+------------+------------------------+
    | u32 length | u32 CRC-32 | payload (length bytes) |  record 0
    +------------+------------+------------------------+
    | u32 length | u32 CRC-32 | payload                |  record 1
    +------------+------------+------------------------+
    | ...                                              |
    v}
    A payload is the record tag on its own line ([A]pply / [D]elete /
    [I]nsert / [U]pdate) followed by one source fact per line in
    {!Relational.Serial.fact_of_string} syntax:
    {v
    A
    T1(john, tkde)
    T2(tkde, xml, 30)
    v}
    An update ({!record.Delta}) record carries signed facts, deleted
    tuples (prefix [-]) before inserted ones (prefix [+]) — the order
    the engine replays them in:
    {v
    U
    -T2(tkde, xml, 30)
    +T1(ann, tods)
    v}

    Every append is flushed before returning; a crash can therefore tear
    at most the {e final} record. {!load} distinguishes the two failure
    shapes: an incomplete or checksum-failing final record is a torn
    write (dropped, and truncated away when [repair] is set), while a
    checksum failure with intact records {e after} it is real corruption
    and surfaces as the typed {!error}. *)

type record =
  | Apply of Relational.Stuple.Set.t
      (** a solver-chosen deletion committed by [Engine.apply] *)
  | Delete of Relational.Stuple.Set.t
      (** a direct deletion ([Engine.delete]) *)
  | Insert of Relational.Stuple.t
  | Delta of {
      deletes : Relational.Stuple.Set.t;
      inserts : Relational.Stuple.Set.t;
    }
      (** a symmetric update ([Engine.apply_delta]; also what
          [Engine.checkpoint] compacts a whole session to) — replayed
          deletes first, so a key update lands cleanly *)

type error =
  | Bad_magic of string        (** not a journal (path in payload) *)
  | Corrupt of { index : int; reason : string }
      (** interior record [index] failed its checksum or didn't decode *)

exception Error of error

val pp_error : Format.formatter -> error -> unit

(** {1 Reading} *)

(** Replayable records of the journal at [path], in append order. A torn
    final record is dropped; with [repair] (default [false]) it is also
    truncated off the file so subsequent appends start clean. A missing
    file is an empty journal. *)
val load : ?repair:bool -> string -> (record list, error) result

(** {1 Writing} *)

type writer

(** Open [path] for appending, creating it (with the magic header) when
    missing or empty. The caller is responsible for having {!load}ed
    [~repair:true] first — appending after a torn record corrupts the
    log. *)
val open_writer : string -> writer

(** Append one record and flush. The write crosses the
    ["journal.append"] failpoint: [Crash_after_bytes n] emits only the
    first [n] bytes of the encoded record before raising
    {!Deleprop.Failpoint.Injected} — a simulated torn write. *)
val append : writer -> record -> unit

val close_writer : writer -> unit

(** Atomically replace the journal at [path] with exactly [records]
    (write to a temp file in the same directory, rename over). The
    engine's checkpoint compacts a long log into a single {!record.Delta}
    this way. Crosses the ["journal.rewrite"] failpoint:
    [Crash_after_bytes n] emits only the first [n] bytes of the
    replacement image before raising {!Deleprop.Failpoint.Injected} —
    the rename happens iff the allowance covered the whole image, so the
    journal holds either the complete old log or the complete new one,
    never a blend (what the atomicity claim means under a crash). *)
val rewrite : string -> record list -> unit

(** {1 Checksums} *)

(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]) of a whole string —
    exposed for the resilience tests to forge corrupt records. *)
val crc32 : string -> int32
