(** Durable session journal: an append-only log of the committed
    operations of one engine session, replayable against the database
    the session was created with.

    On-disk layout of one segment (all integers little-endian):
    {v
    +--------------------------------------------------+
    | magic "DLPJRNL1" (8 bytes)                       |
    +------------+------------+------------------------+
    | u32 length | u32 CRC-32 | payload (length bytes) |  record 0
    +------------+------------+------------------------+
    | u32 length | u32 CRC-32 | payload                |  record 1
    +------------+------------+------------------------+
    | ...                                              |
    v}
    A payload is the record tag on its own line ([A]pply / [D]elete /
    [I]nsert / [U]pdate) followed by one source fact per line in
    {!Relational.Serial.fact_of_string} syntax:
    {v
    A
    T1(john, tkde)
    T2(tkde, xml, 30)
    v}
    An update ({!record.Delta}) record carries signed facts, deleted
    tuples (prefix [-]) before inserted ones (prefix [+]) — the order
    the engine replays them in:
    {v
    U
    -T2(tkde, xml, 30)
    +T1(ann, tods)
    v}

    {2 Segments and generations}

    A journal is one {e active} file at [path] plus zero or more
    {e sealed} segments [path.seg-<gen>-<seq>]. With [segment_bytes] set,
    {!append} seals the active file by renaming it aside once it
    outgrows the bound and starts a fresh one — bounding every file a
    crash can tear while keeping the full record sequence replayable.
    Each segment a rotating writer creates opens with a framed
    generation marker ([G] payload, never surfaced as a record);
    {!rewrite} writes its replacement with the generation {e bumped}, so
    sealed segments of older generations are provably stale and ignored
    by {!load} even if a crash struck before they were unlinked — the
    multi-file journal commits at a single rename, exactly like the
    single-file one. Journals written before rotation existed carry no
    marker and read as generation 0 with no sealed segments.

    {2 Failure shapes}

    Every append is flushed before returning (and fsynced under
    [~fsync]); rotation only follows a completed append, so a crash can
    tear at most the final record {e of the active file}. {!load}
    distinguishes the failure shapes: an incomplete or checksum-failing
    final record there is a torn write (dropped, and truncated away when
    [repair] is set), while the same shape inside a sealed segment — or
    a checksum failure with intact records after it — is real corruption
    and surfaces as the typed {!error}. *)

type record =
  | Apply of Relational.Stuple.Set.t
      (** a solver-chosen deletion committed by [Engine.apply] *)
  | Delete of Relational.Stuple.Set.t
      (** a direct deletion ([Engine.delete]) *)
  | Insert of Relational.Stuple.t
  | Delta of {
      deletes : Relational.Stuple.Set.t;
      inserts : Relational.Stuple.Set.t;
    }
      (** a symmetric update ([Engine.apply_delta]; also what
          [Engine.checkpoint] compacts a whole session to) — replayed
          deletes first, so a key update lands cleanly *)

type error =
  | Bad_magic of string        (** not a journal (path in payload) *)
  | Corrupt of { index : int; reason : string }
      (** record [index] (counted across segments, markers excluded)
          failed its checksum or didn't decode *)

exception Error of error

val pp_error : Format.formatter -> error -> unit

(** {1 Reading} *)

(** Replayable records of the journal at [path] — current-generation
    sealed segments in sequence order, then the active file — in append
    order. A torn final record of the active file is dropped; with
    [repair] (default [false]) it is also truncated off so subsequent
    appends start clean. A typed error normally fails the load;
    [keep_going] (default [false]) instead salvages the valid prefix:
    every record before the first corruption is returned and everything
    at and after it is dropped, later segments included (replaying past
    a hole would desynchronize the rebuilt state). A missing file with
    no sealed segments is an empty journal. *)
val load :
  ?repair:bool -> ?keep_going:bool -> string -> (record list, error) result

(** The generation the journal at [path] is currently on: the active
    file's marker, else the newest sealed segment's, else 0. Within one
    generation the record sequence is append-only — only {!rewrite}
    starts a new one — so a caller that recorded [(generation, position)]
    and finds the generation unchanged knows the journal's first
    [position] records are still exactly the ones it summarized. *)
val current_gen : string -> int

(** What {!load_from} recovers: the records {e after} a snapshot-covered
    prefix, plus the coordinates to finish the reclamation. *)
type tail = {
  tail : record list;  (** records with global index ≥ [position] *)
  total : int;         (** record count of the whole journal *)
  covered : string list;
      (** sealed segments lying entirely inside the skipped prefix —
          safe to delete once the caller has committed to the snapshot *)
}

(** [load_from ~position path] — the journal's records from global index
    [position] on, {e without} parsing the prefix: sealed segments that
    lie entirely inside the first [position] records are skipped after a
    structural skim (frame hops only, no checksums — sound because the
    caller replays a snapshot baseline in their stead, never the records
    themselves) and reported in [covered] for reclamation. The partially
    covered boundary segment and the active file parse as in {!load}
    (torn-tail handling included), and structural damage anywhere that
    must be parsed is the same typed error. Callers must verify
    [total ≥ position] (and the generation) before trusting the tail. *)
val load_from : ?repair:bool -> position:int -> string -> (tail, error) result

(** {1 Writing} *)

type writer

(** Open [path] for appending, creating it (magic header + generation
    marker) when missing or empty; an existing journal's generation and
    next sequence number are adopted from disk. [fsync] (default
    [false]) upgrades every flush to [Unix.fsync] — durability against
    power loss, not just process death, at a per-append cost.
    [segment_bytes] enables rotation: once the active file's size
    reaches the bound, the {e next} append seals it (must be positive;
    the bound is a low-water mark — a segment always holds the whole
    record that crossed it). The caller is responsible for having
    {!load}ed [~repair:true] first — appending after a torn record
    corrupts the log. *)
val open_writer : ?fsync:bool -> ?segment_bytes:int -> string -> writer

(** Append one record and flush (fsync under [~fsync]), then rotate if
    the segment bound is crossed. The write crosses the
    ["journal.append"] failpoint: [Crash_after_bytes n] emits only the
    first [n] bytes of the encoded record before raising
    {!Deleprop.Failpoint.Injected} — a simulated torn write. *)
val append : writer -> record -> unit

val close_writer : writer -> unit

(** The generation [w] is appending to — what a snapshot written against
    this journal must record ({!current_gen} of a path the writer has
    open agrees with this). *)
val generation : writer -> int

(** Atomically replace the journal at [path] with exactly [records]:
    write a temp file in the same directory carrying the {e next}
    generation, fsync, rename over [path], then unlink the
    now-stale sealed segments (best-effort — the generation bump makes
    them invisible to {!load} regardless). The engine's checkpoint
    compacts a long log into a single {!record.Delta} this way. Crosses
    the ["journal.rewrite"] failpoint: [Crash_after_bytes n] emits only
    the first [n] bytes of the replacement image before raising
    {!Deleprop.Failpoint.Injected} — the rename happens iff the
    allowance covered the whole image (stale segments are left behind,
    as a real crash would), so the journal holds either the complete old
    log or the complete new one, never a blend. *)
val rewrite : string -> record list -> unit

(** Delete the journal at [path]: the active file and every sealed
    segment, any generation. Missing files are fine. *)
val remove : string -> unit

(** {1 Checksums} *)

(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]) of a whole string —
    exposed for the resilience tests to forge corrupt records. *)
val crc32 : string -> int32
