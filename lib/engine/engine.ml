module R = Relational
module D = Deleprop

let src = Logs.Src.create "deleprop.engine" ~doc:"Incremental propagation engine"

module Log = (val Logs.src_log src : Logs.LOG)

type stats = {
  rounds : int;
  applies : int;
  tuples_deleted : int;
  tuples_inserted : int;
  patches : int;
  rebuilds : int;
  cache_hits : int;
  last_solve_ms : float;
  total_solve_ms : float;
}

let zero_stats =
  {
    rounds = 0;
    applies = 0;
    tuples_deleted = 0;
    tuples_inserted = 0;
    patches = 0;
    rebuilds = 0;
    cache_hits = 0;
    last_solve_ms = 0.0;
    total_solve_ms = 0.0;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>rounds: %d, applies: %d@ deleted %d / inserted %d source tuple(s)@ index: \
     %d patch(es), %d rebuild(s), %d cache hit(s)@ solve: last %.2f ms, total %.2f \
     ms@]"
    s.rounds s.applies s.tuples_deleted s.tuples_inserted s.patches s.rebuilds
    s.cache_hits s.last_solve_ms s.total_solve_ms

type plan = {
  requests : D.Delta_request.t list;
  solutions : D.Solution.t list;
}

type index = { prov : D.Provenance.t; arena : D.Arena.t }

type t = {
  queries : Cq.Query.t list;
  weights : D.Weights.t option;
  exact_threshold : int option;
  algorithms : string list option;
  pool : D.Par.Pool.t;
  mutable mv : D.Matview.t;
  mutable index : index option;
  mutable stats : stats;
}

(* the baseline index always has ΔV = ∅: requests re-target it per round
   via [with_deletions] without disturbing the cached copy *)
let build_index t =
  let problem =
    D.Problem.make ~db:(D.Matview.db t.mv) ~queries:t.queries ~deletions:[]
      ?weights:t.weights ()
  in
  let prov = D.Provenance.build problem in
  let arena = D.Arena.build prov in
  let ix = { prov; arena } in
  t.index <- Some ix;
  t.stats <- { t.stats with rebuilds = t.stats.rebuilds + 1 };
  Log.debug (fun m ->
      m "index rebuilt: %d source tuples, %d view tuples"
        (D.Arena.num_stuples arena) (D.Arena.num_vtuples arena));
  ix

let index_of t =
  match t.index with
  | Some ix ->
    t.stats <- { t.stats with cache_hits = t.stats.cache_hits + 1 };
    ix
  | None -> build_index t

let create ?weights ?exact_threshold ?algorithms ?domains db queries =
  let problem = D.Problem.make ~db ~queries ~deletions:[] ?weights () in
  let prov = D.Provenance.build problem in
  let arena = D.Arena.build prov in
  {
    queries;
    weights;
    exact_threshold;
    algorithms;
    pool = D.Par.Pool.create ?domains ();
    mv = D.Matview.of_views db queries prov.D.Provenance.views;
    index = Some { prov; arena };
    stats = { zero_stats with rebuilds = 1 };
  }

let db t = D.Matview.db t.mv
let view t name = D.Matview.view t.mv name
let matview t = t.mv
let stats t = t.stats

let index t =
  let ix = index_of t in
  (ix.prov, ix.arena)

let request t requests =
  let ix = index_of t in
  match D.Delta_request.validate ~views:ix.prov.D.Provenance.views requests with
  | Error _ as e -> e
  | Ok () ->
    let t0 = Unix.gettimeofday () in
    let prov' = D.Provenance.with_deletions ix.prov requests in
    let arena' = D.Arena.with_deletions ix.arena prov' in
    let solutions =
      D.Portfolio.solutions ?exact_threshold:t.exact_threshold ?only:t.algorithms
        ~pool:t.pool arena'
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    t.stats <-
      {
        t.stats with
        rounds = t.stats.rounds + 1;
        last_solve_ms = ms;
        total_solve_ms = t.stats.total_solve_ms +. ms;
      };
    Log.debug (fun m ->
        m "round %d: %d solution(s) in %.2f ms" t.stats.rounds
          (List.length solutions) ms);
    Ok { requests; solutions }

let commit t dd =
  let dd = R.Stuple.Set.filter (fun st -> R.Instance.mem (D.Matview.db t.mv) st) dd in
  t.stats <-
    {
      t.stats with
      applies = t.stats.applies + 1;
      tuples_deleted = t.stats.tuples_deleted + R.Stuple.Set.cardinal dd;
    };
  if not (R.Stuple.Set.is_empty dd) then
    match t.index with
    | Some ix ->
      let prov' = D.Provenance.delete ix.prov dd in
      let arena' = D.Arena.delete ix.arena ~dd prov' in
      t.index <- Some { prov = prov'; arena = arena' };
      t.mv <-
        D.Matview.of_views prov'.D.Provenance.problem.D.Problem.db t.queries
          prov'.D.Provenance.views;
      t.stats <- { t.stats with patches = t.stats.patches + 1 }
    | None ->
      (* index already invalidated (pending inserts): just maintain the
         views; the next [request] rebuilds *)
      t.mv <- D.Matview.delete t.mv dd

let apply ?solution t plan =
  let chosen =
    match solution with
    | Some _ as s -> s
    | None -> ( match plan.solutions with s :: _ -> Some s | [] -> None)
  in
  match chosen with
  | None -> None
  | Some s ->
    commit t s.D.Solution.deleted;
    Some s

let delete t dd = commit t dd

let insert t st =
  t.mv <- D.Matview.insert t.mv st;
  t.index <- None;
  t.stats <- { t.stats with tuples_inserted = t.stats.tuples_inserted + 1 }

let insert_all t sts = R.Stuple.Set.iter (fun st -> insert t st) sts

let close t = D.Par.Pool.shutdown t.pool

(* ---- scripted sessions ---- *)

module Script = struct
  type op =
    | Solve of D.Delta_request.t list
    | Insert of R.Stuple.t
    | Delete of R.Stuple.t

  type round = {
    number : int;
    op : op;
    plan : plan option;
  }

  let parse_fact s =
    let rel, tuple = R.Serial.fact_of_string s in
    R.Stuple.make rel tuple

  (* group facts by view, preserving first-appearance order on both the
     views and their tuples *)
  let group_requests facts =
    List.fold_left
      (fun acc (view, tuple) ->
        if List.mem_assoc view acc then
          List.map
            (fun (v, ts) -> if String.equal v view then (v, ts @ [ tuple ]) else (v, ts))
            acc
        else acc @ [ (view, [ tuple ]) ])
      [] facts
    |> List.map (fun (view, tuples) -> D.Delta_request.make ~view tuples)

  let parse_line line =
    let keyword, rest =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line i (String.length line - i)) )
    in
    try
      match keyword with
      | "solve" ->
        let facts =
          String.split_on_char ';' rest
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
          |> List.map R.Serial.fact_of_string
        in
        if facts = [] then Error "solve: expected at least one view fact"
        else Ok (Solve (group_requests facts))
      | "insert" -> Ok (Insert (parse_fact rest))
      | "delete" -> Ok (Delete (parse_fact rest))
      | kw -> Error (Printf.sprintf "unknown op %S (expected solve|insert|delete)" kw)
    with R.Serial.Parse_error (_, msg) -> Error msg

  let parse text =
    let rec go n acc = function
      | [] -> Ok (List.rev acc)
      | line :: tl -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (n + 1) acc tl
        else
          match parse_line line with
          | Ok op -> go (n + 1) (op :: acc) tl
          | Error msg -> Error (Printf.sprintf "line %d: %s" n msg))
    in
    go 1 [] (String.split_on_char '\n' text)

  let parse_file path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> parse (really_input_string ic (in_channel_length ic)))

  let replay eng ops =
    let rec go n acc = function
      | [] -> Ok (List.rev acc)
      | op :: tl -> (
        match op with
        | Solve requests -> (
          match request eng requests with
          | Error e ->
            Error (Printf.sprintf "round %d: %s" n (D.Delta_request.error_to_string e))
          | Ok plan ->
            ignore (apply eng plan);
            go (n + 1) ({ number = n; op; plan = Some plan } :: acc) tl)
        | Insert st -> (
          match insert eng st with
          | () -> go (n + 1) ({ number = n; op; plan = None } :: acc) tl
          | exception R.Relation.Key_violation (rel, existing, _) ->
            Error
              (Format.asprintf "round %d: inserting %a violates the key of %s (%a)" n
                 R.Stuple.pp st rel R.Tuple.pp existing))
        | Delete st ->
          delete eng (R.Stuple.Set.singleton st);
          go (n + 1) ({ number = n; op; plan = None } :: acc) tl)
    in
    go 1 [] ops
end
