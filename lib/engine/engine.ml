module R = Relational
module D = Deleprop

let src = Logs.Src.create "deleprop.engine" ~doc:"Incremental propagation engine"

module Log = (val Logs.src_log src : Logs.LOG)

(* Did the shard cache survive the crash? Stamped once, at [create];
   [Degraded] carries the typed reason re-warming fell through — always
   a warning, never a failed recovery. *)
type snapshot_status =
  | Cold
  | Warm of { entries : int; dropped : int }
  | Degraded of Snapshot.warning

let pp_snapshot_status ppf = function
  | Cold -> Format.pp_print_string ppf "cold"
  | Warm { entries; dropped } ->
    Format.fprintf ppf "warm (%d entr%s re-warmed%s)" entries
      (if entries = 1 then "y" else "ies")
      (if dropped = 0 then "" else Printf.sprintf ", %d dropped" dropped)
  | Degraded w -> Format.fprintf ppf "degraded: %a" Snapshot.pp_warning w

let snapshot_status_to_json = function
  | Cold -> D.Report.Obj [ ("state", D.Report.String "cold") ]
  | Warm { entries; dropped } ->
    D.Report.Obj
      [
        ("state", D.Report.String "warm");
        ("entries", D.Report.Int entries);
        ("dropped", D.Report.Int dropped);
      ]
  | Degraded w ->
    D.Report.Obj
      [
        ("state", D.Report.String "degraded");
        ("reason", D.Report.String (Snapshot.warning_label w));
      ]

type stats = {
  rounds : int;
  applies : int;
  tuples_deleted : int;
  tuples_inserted : int;
  patches : int;
  inserts_patched : int;
  rebuilds : int;
  index_retargets : int;
  last_solve_ms : float;
  total_solve_ms : float;
  journal_records : int;
  recovered_records : int;
  components : int;
  shards_solved : int;
  shards_exact : int;
  shards_approx : int;
  shards_cached : int;
  shards_resolved : int;
  shard_cache_hits : int;
  fragment_reuses : int;
  fragment_reuses_exact : int;
  fragment_reuses_forest : int;
  fragment_reuses_approx : int;
  tombstone_ratio : float;
  compactions : int;
  snapshot : snapshot_status;
}

let zero_stats =
  {
    rounds = 0;
    applies = 0;
    tuples_deleted = 0;
    tuples_inserted = 0;
    patches = 0;
    inserts_patched = 0;
    rebuilds = 0;
    index_retargets = 0;
    last_solve_ms = 0.0;
    total_solve_ms = 0.0;
    journal_records = 0;
    recovered_records = 0;
    components = 0;
    shards_solved = 0;
    shards_exact = 0;
    shards_approx = 0;
    shards_cached = 0;
    shards_resolved = 0;
    shard_cache_hits = 0;
    fragment_reuses = 0;
    fragment_reuses_exact = 0;
    fragment_reuses_forest = 0;
    fragment_reuses_approx = 0;
    tombstone_ratio = 0.0;
    compactions = 0;
    snapshot = Cold;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>rounds: %d, applies: %d@ deleted %d / inserted %d source tuple(s)@ index: \
     %d patch(es), %d insert(s) patched, %d rebuild(s), %d retarget(s), %d \
     component(s)@ tombstones: ratio %.3f, %d compaction(s)@ solve: last %.2f ms, \
     total %.2f ms@ planner: %d shard(s) solved, %d exact, %d approximate, %d \
     cached / %d resolved (%d lifetime cache hit(s), %d fragment reuse(s): %d \
     exact / %d forest / %d approx)@ \
     journal: %d record(s) appended, %d recovered@ snapshot: %a@]"
    s.rounds s.applies s.tuples_deleted s.tuples_inserted s.patches s.inserts_patched
    s.rebuilds s.index_retargets s.components s.tombstone_ratio s.compactions
    s.last_solve_ms s.total_solve_ms s.shards_solved s.shards_exact s.shards_approx
    s.shards_cached s.shards_resolved s.shard_cache_hits s.fragment_reuses
    s.fragment_reuses_exact s.fragment_reuses_forest s.fragment_reuses_approx
    s.journal_records s.recovered_records pp_snapshot_status s.snapshot

(* The typed reporting surface: [Stats.t] is an alias of the flat record
   (field access through either path), plus the one JSON encoding every
   front end shares. The deprecated alias spellings [index_hits] /
   [cache_hits] served their one promised release (schema version 2) and
   are gone as of version 3 — [index_retargets] is the only name. *)
module Stats = struct
  type t = stats = {
    rounds : int;
    applies : int;
    tuples_deleted : int;
    tuples_inserted : int;
    patches : int;
    inserts_patched : int;
    rebuilds : int;
    index_retargets : int;
    last_solve_ms : float;
    total_solve_ms : float;
    journal_records : int;
    recovered_records : int;
    components : int;
    shards_solved : int;
    shards_exact : int;
    shards_approx : int;
    shards_cached : int;
    shards_resolved : int;
    shard_cache_hits : int;
    fragment_reuses : int;
    fragment_reuses_exact : int;
    fragment_reuses_forest : int;
    fragment_reuses_approx : int;
    tombstone_ratio : float;
    compactions : int;
    snapshot : snapshot_status;
  }

  let zero = zero_stats
  let pp = pp_stats

  let to_json (s : t) =
    D.Report.Obj
      [
        ("rounds", D.Report.Int s.rounds);
        ("applies", D.Report.Int s.applies);
        ("tuples_deleted", D.Report.Int s.tuples_deleted);
        ("tuples_inserted", D.Report.Int s.tuples_inserted);
        ("patches", D.Report.Int s.patches);
        ("inserts_patched", D.Report.Int s.inserts_patched);
        ("rebuilds", D.Report.Int s.rebuilds);
        ("index_retargets", D.Report.Int s.index_retargets);
        ("last_solve_ms", D.Report.Raw (Printf.sprintf "%.3f" s.last_solve_ms));
        ("total_solve_ms", D.Report.Raw (Printf.sprintf "%.3f" s.total_solve_ms));
        ("journal_records", D.Report.Int s.journal_records);
        ("recovered_records", D.Report.Int s.recovered_records);
        ("components", D.Report.Int s.components);
        ("shards_solved", D.Report.Int s.shards_solved);
        ("shards_exact", D.Report.Int s.shards_exact);
        ("shards_approx", D.Report.Int s.shards_approx);
        ("shards_cached", D.Report.Int s.shards_cached);
        ("shards_resolved", D.Report.Int s.shards_resolved);
        ("shard_cache_hits", D.Report.Int s.shard_cache_hits);
        ("fragment_reuses", D.Report.Int s.fragment_reuses);
        ("fragment_reuses_exact", D.Report.Int s.fragment_reuses_exact);
        ("fragment_reuses_forest", D.Report.Int s.fragment_reuses_forest);
        ("fragment_reuses_approx", D.Report.Int s.fragment_reuses_approx);
        ( "tombstone_ratio",
          D.Report.Raw (Printf.sprintf "%.3f" s.tombstone_ratio) );
        ("compactions", D.Report.Int s.compactions);
        ("snapshot", snapshot_status_to_json s.snapshot);
      ]
end

type plan = {
  requests : D.Delta_request.t list;
  solutions : D.Solution.t list;
  failures : D.Portfolio.failure list;
  degraded : bool;
  decomposed : bool;
  shards : D.Planner.shard_decision list;
  shards_cached : int;
}

type index = {
  prov : D.Provenance.t;
  arena : D.Arena.t;
  cindex : D.Component_index.t;
      (* the first-class live component index: the canonical partition
         plus per-component member rosters and solve memos, maintained
         with the arena on both sides of a delta — deletions re-roster
         only the affected components ([Component_index.delete]),
         insertions only the merged ones ([Component_index.insert]) *)
}

let part_of ix = D.Component_index.partition ix.cindex

(* Which components may have changed since the shard cache last saw
   them. [All] is the conservative top (fresh sessions, recovered
   sessions, cache-less sessions); [Flags] is a bitset over the *current*
   partition's component ids, remapped through every committed delta
   right alongside the partition itself. *)
type dirty =
  | All
  | Flags of Setcover.Bitset.t

type t = {
  queries : Cq.Query.t list;
  weights : D.Weights.t option;
  exact_threshold : int option;
  algorithms : string list option;
  plan_solver : bool;
  budget_ms : float option;
  compact_threshold : float;
      (* tombstone-ratio trigger for amortized compaction; ≤ 0 forces
         the eager regime (every delete compacts inline, the pre-PR-7
         behaviour, bit-identical by [Arena.compact]'s differential
         property) *)
  base_db : R.Instance.t;
  journal_path : string option;
  snapshot_path : string option;
  snapshot_every : int;
      (* amortized snapshot policy: re-snapshot once this many records
         accumulate past the last one; ≤ 0 = checkpoint-only *)
  fsync : bool;
  segment_bytes : int option;
  pool : D.Par.Pool.t;
  mutable journal : Journal.writer option;
  mutable journal_len : int;
      (* records currently in the journal = the position a snapshot
         written now would record *)
  mutable last_snapshot_len : int;
  mutable mv : D.Matview.t;
  mutable index : index;
  mutable stats : stats;
  shard_cache : D.Planner.cache option;
  mutable snap_mirror : (D.Fingerprint.t, D.Planner.cache_entry) Hashtbl.t option;
      (* what the last on-disk snapshot frame holds, binding by binding —
         the diff base for incremental [Snapshot.append] groups. [None]
         until the first full [write_snapshot] of THIS session: a
         recovered image is never delta-chained across sessions, so a
         torn tail can only lose freshness this session produced *)
  mutable dirty : dirty;
  indexed : bool;
      (* route planner rounds through the live [Component_index]
         ([Planner.solve ~index] + split-aware fragment seeding) rather
         than the partition-sweep path; the index itself is maintained
         either way, so the two modes are lockstep-comparable *)
}

let lazy_tombstones t = t.compact_threshold > 0.0

(* the baseline index always has ΔV = ∅: requests re-target it per round
   via [with_deletions] without disturbing the live copy. Built exactly
   once, in [create] — every mutation afterwards patches it. *)
let index_of t =
  t.stats <- { t.stats with index_retargets = t.stats.index_retargets + 1 };
  t.index

(* ---- dirty-component tracking (the shard cache's invalidation) ----

   The flags live over component ids, and component ids are canonical
   (first appearance in ascending live sid order) — so any delta can
   renumber even untouched components. Each stage below walks the same
   sid correspondence the arena patch itself used and carries each flag
   from its old component id to its new one. Tombstone deltas share the
   physical arrays (the correspondence is the identity over live slots);
   gather/merge deltas walk the compaction or sorted-run-merge mapping. *)

module B = Setcover.Bitset

(* after committing the deletion [dd]: the deleted tuples' components
   turn dirty (every fragment a split produces inherits the flag, since
   the flag travels per member), the rest keep their state under the
   renumbering *)
let dirty_after_delete ~(before : D.Arena.t) ~(p : D.Arena.partition) ~dd
    ~(a' : D.Arena.t) ~(p' : D.Arena.partition) flags =
  if before.D.Arena.stuples == a'.D.Arena.stuples then begin
    (* tombstone delete: identity correspondence over the shared slots *)
    let flags = B.copy flags in
    R.Stuple.Set.iter
      (fun st -> B.add flags p.D.Arena.comp_of_sid.(D.Arena.stuple_id before st))
      dd;
    let out = B.create p'.D.Arena.num_components in
    let ns = D.Arena.num_stuples before in
    for sid = 0 to ns - 1 do
      if
        (not (B.mem a'.D.Arena.dead_s sid))
        && B.mem flags p.D.Arena.comp_of_sid.(sid)
      then B.add out p'.D.Arena.comp_of_sid.(sid)
    done;
    out
  end
  else begin
    (* gather walk: [a'] is compact; fold [dd] and any older tombstones
       of [before] into one old-to-new correspondence *)
    let flags = B.copy flags in
    let ns = D.Arena.num_stuples before in
    let dead = B.copy before.D.Arena.dead_s in
    R.Stuple.Set.iter
      (fun st ->
        let sid = D.Arena.stuple_id before st in
        B.add dead sid;
        B.add flags p.D.Arena.comp_of_sid.(sid))
      dd;
    let out = B.create p'.D.Arena.num_components in
    let k = ref 0 in
    for sid = 0 to ns - 1 do
      if not (B.mem dead sid) then begin
        if B.mem flags p.D.Arena.comp_of_sid.(sid) then
          B.add out p'.D.Arena.comp_of_sid.(!k);
        incr k
      end
    done;
    out
  end

(* after committing an insertion: surviving tuples carry their flag to
   their (possibly merged, possibly renumbered) component; an inserted
   tuple dirties its component — which covers every component the insert
   merged, since they all share the new id *)
let dirty_after_insert ~(before : D.Arena.t) ~(p : D.Arena.partition)
    ~(after : D.Arena.t) ~(p' : D.Arena.partition) flags =
  if before.D.Arena.stuples == after.D.Arena.stuples then begin
    (* resurrection: live-before slots keep their flag, newly-live slots
       (dead before, live after) dirty their merged component *)
    let out = B.create p'.D.Arena.num_components in
    let ns = D.Arena.num_stuples after in
    for sid = 0 to ns - 1 do
      if not (B.mem after.D.Arena.dead_s sid) then
        if B.mem before.D.Arena.dead_s sid then
          B.add out p'.D.Arena.comp_of_sid.(sid)
        else if B.mem flags p.D.Arena.comp_of_sid.(sid) then
          B.add out p'.D.Arena.comp_of_sid.(sid)
    done;
    out
  end
  else begin
    (* merge walk — requires [before] compact, which [apply_delta_raw]
       guarantees by pre-compacting ahead of a merge-path extend *)
    let out = B.create p'.D.Arena.num_components in
    let ns = D.Arena.num_stuples before in
    let ns' = D.Arena.num_stuples after in
    let i = ref 0 in
    for sid' = 0 to ns' - 1 do
      if
        !i < ns
        && R.Stuple.equal before.D.Arena.stuples.(!i) after.D.Arena.stuples.(sid')
      then begin
        if B.mem flags p.D.Arena.comp_of_sid.(!i) then
          B.add out p'.D.Arena.comp_of_sid.(sid');
        incr i
      end
      else B.add out p'.D.Arena.comp_of_sid.(sid')
    done;
    out
  end

(* ---- raw state transitions (no journaling — the public ops and
   journal replay all commit through [apply_delta_raw]) ---- *)

(* amortized compaction: gather the index's live slots (labels — and so
   the component-keyed dirty flags and shard cache — survive untouched,
   see [Arena.compact_partition]); counted in [compactions] *)
let compact_index t =
  let ix = t.index in
  if D.Arena.tombstoned ix.arena then begin
    t.index <-
      {
        ix with
        arena = D.Arena.compact ix.arena;
        cindex = D.Component_index.compact ix.cindex ~before:ix.arena;
      };
    t.stats <- { t.stats with compactions = t.stats.compactions + 1 }
  end

(* Apply a symmetric update, deletes first then inserts, each side
   patching the live index ([Provenance.delete]/[Arena.delete]/
   [Arena.partition_delete] and [Provenance.insert]/[Arena.extend]/
   [Arena.partition_insert]). Returns the subset actually applied:
   deletes of tuples already gone and inserts of tuples already present
   are skipped (a tuple both deleted and re-inserted counts on both
   sides — a journalled no-op, not a conflict). The session state
   commits only after both patches succeed, so a [Key_violation] or
   [Ambiguous_witness] raised mid-insert leaves it untouched.

   Two tombstone regimes ([compact_threshold]):
   - eager (≤ 0): every delete compacts inline and every insert merges —
     the pre-tombstone behaviour, bit-identical via [Arena.compact]'s
     differential property. Inline compaction is not counted in
     [compactions]: it is the round's own cost, not amortized work.
   - lazy (> 0): deletes tombstone in place (O(touched) instead of
     O(‖D‖ + ‖V‖)), inserts resurrect dead slots when they can, and the
     index compacts only when the tombstone ratio crosses the threshold
     (or a merge-path insert / checkpoint forces it). *)
let apply_delta_raw t (delta : D.Delta.t) =
  let db = D.Matview.db t.mv in
  let dd =
    R.Stuple.Set.filter (fun st -> R.Instance.mem db st) delta.D.Delta.deletes
  in
  let ins =
    R.Stuple.Set.filter
      (fun st -> R.Stuple.Set.mem st dd || not (R.Instance.mem db st))
      delta.D.Delta.inserts
  in
  let ix = t.index in
  let (prov, arena, cindex), dirty, deletes_patched =
    if R.Stuple.Set.is_empty dd then
      ((ix.prov, ix.arena, ix.cindex), t.dirty, false)
    else begin
      let prov' = D.Provenance.delete ix.prov dd in
      let arena' =
        let tombstoned = D.Arena.delete ix.arena ~dd prov' in
        if lazy_tombstones t then tombstoned else D.Arena.compact tombstoned
      in
      let cindex' =
        D.Component_index.delete ix.cindex ~before:ix.arena ~dd arena'
      in
      let dirty =
        match t.dirty with
        | All -> All
        | Flags f ->
          let f' =
            dirty_after_delete ~before:ix.arena ~p:(part_of ix) ~dd ~a':arena'
              ~p':(D.Component_index.partition cindex') f
          in
          (* split-aware cache reuse: when the deletion shattered a
             memoized component and left a fragment's candidate
             neighborhood untouched, that fragment inherits the parent's
             cached answer by restriction and stays clean — only the
             touched fragments re-solve next round *)
          (match t.shard_cache with
          | Some c when t.indexed ->
            List.iter
              (fun comp -> B.remove f' comp)
              (D.Planner.seed_fragments c ~before:ix.arena
                 ~before_index:ix.cindex ~dd ~after:arena' ~after_index:cindex')
          | _ -> ());
          Flags f'
      in
      ((prov', arena', cindex'), dirty, true)
    end
  in
  let (prov, arena, cindex), dirty =
    if R.Stuple.Set.is_empty ins then ((prov, arena, cindex), dirty)
    else begin
      let prov' =
        R.Stuple.Set.fold (fun st p -> D.Provenance.insert p st) ins prov
      in
      (* a merge-path extend of a tombstoned arena would compact inside
         [Arena.extend], desynchronizing the rosters and flags from the
         physical layout — compact both sides first instead (labels
         survive, so the flags carry over as-is) *)
      let arena, cindex =
        if
          D.Arena.tombstoned arena
          && not (D.Arena.can_extend_in_place arena ~ins prov')
        then
          (D.Arena.compact arena, D.Component_index.compact cindex ~before:arena)
        else (arena, cindex)
      in
      let arena' = D.Arena.extend arena ~ins prov' in
      let cindex' = D.Component_index.insert cindex ~before:arena arena' in
      let dirty =
        match dirty with
        | All -> All
        | Flags f ->
          Flags
            (dirty_after_insert ~before:arena
               ~p:(D.Component_index.partition cindex) ~after:arena'
               ~p':(D.Component_index.partition cindex') f)
      in
      ((prov', arena', cindex'), dirty)
    end
  in
  t.index <- { prov; arena; cindex };
  t.dirty <- dirty;
  t.mv <-
    D.Matview.of_views prov.D.Provenance.problem.D.Problem.db t.queries
      prov.D.Provenance.views;
  t.stats <-
    {
      t.stats with
      tuples_deleted = t.stats.tuples_deleted + R.Stuple.Set.cardinal dd;
      tuples_inserted = t.stats.tuples_inserted + R.Stuple.Set.cardinal ins;
      patches = t.stats.patches + (if deletes_patched then 1 else 0);
      inserts_patched = t.stats.inserts_patched + R.Stuple.Set.cardinal ins;
      components = (D.Component_index.partition cindex).D.Arena.num_components;
    };
  (* amortized trigger, off the per-round critical path until the dead
     fraction actually matters *)
  if
    lazy_tombstones t
    && D.Arena.tombstone_ratio t.index.arena > t.compact_threshold
  then compact_index t;
  { D.Delta.deletes = dd; inserts = ins }

(* returns the subset actually deleted (tuples already gone are skipped) *)
let commit_raw t dd =
  t.stats <- { t.stats with applies = t.stats.applies + 1 };
  (apply_delta_raw t (D.Delta.of_deletes dd)).D.Delta.deletes

let insert_raw t st =
  ignore (apply_delta_raw t (D.Delta.of_inserts (R.Stuple.Set.singleton st)))

let replay_record t = function
  | Journal.Apply dd | Journal.Delete dd -> ignore (commit_raw t dd)
  | Journal.Insert st -> insert_raw t st
  | Journal.Delta { deletes; inserts } ->
    ignore (apply_delta_raw t (D.Delta.make ~deletes ~inserts ()))

(* Persist the shard cache's plain-data state, coordinates first: the
   journal position, the arena's canonical fingerprint, and the current
   dirty flags. [Snapshot.write] is atomic (temp + fsync + rename), so a
   crash mid-write leaves the previous snapshot intact — and stale
   coordinates merely degrade the next recovery to a cold cache. *)
let write_snapshot t =
  match (t.snapshot_path, t.shard_cache) with
  | Some spath, Some c ->
    let n = (part_of t.index).D.Arena.num_components in
    let dirty =
      match t.dirty with
      | All -> List.init n (fun i -> i)
      | Flags f -> List.rev (B.fold (fun i acc -> i :: acc) f [])
    in
    (* the generation the recorded position belongs to: the open
       writer's, or — during a checkpoint, where the writer is closed
       and the snapshot precedes the [Journal.rewrite] — the bumped one
       the rewrite is about to stamp *)
    let generation =
      match (t.journal, t.journal_path) with
      | Some w, _ -> Journal.generation w
      | None, Some path -> Journal.current_gen path + 1
      | None, None -> 0
    in
    (* the session database as a delta against the base: what the fast
       recovery path applies in place of replaying the [position]-record
       journal prefix *)
    let cur = D.Matview.db t.mv in
    let gone =
      R.Instance.fold
        (fun st acc ->
          if R.Instance.mem cur st then acc else R.Stuple.Set.add st acc)
        t.base_db R.Stuple.Set.empty
    in
    let added =
      R.Instance.fold
        (fun st acc ->
          if R.Instance.mem t.base_db st then acc else R.Stuple.Set.add st acc)
        cur R.Stuple.Set.empty
    in
    let entries = D.Planner.cache_entries c in
    Snapshot.write spath
      {
        Snapshot.position = t.journal_len;
        generation;
        arena_fp = D.Fingerprint.arena t.index.arena;
        components = n;
        dirty;
        stats = D.Planner.cache_stats c;
        baseline = Some (gone, added);
        entries;
      };
    t.last_snapshot_len <- t.journal_len;
    (* refresh the delta-append diff base: the on-disk image now holds
       exactly these bindings (physical identity — the LRU only ever
       reorders live entries, so [==] against the mirror detects every
       upsert) *)
    let mirror = Hashtbl.create (List.length entries * 2 + 1) in
    List.iter (fun (fp, e) -> Hashtbl.replace mirror fp e) entries;
    t.snap_mirror <- Some mirror
  | _ -> ()

(* The round's database delta as journalled — the same (deletes,
   inserts) the snapshot fold re-applies to its baseline. *)
let record_delta = function
  | Journal.Apply dd | Journal.Delete dd -> (dd, R.Stuple.Set.empty)
  | Journal.Insert st -> (R.Stuple.Set.empty, R.Stuple.Set.singleton st)
  | Journal.Delta { deletes; inserts } -> (deletes, inserts)

(* Between full images, persist the round as one incremental delta
   group: the refreshed coordinates, the cache bindings that changed
   since the mirror (by physical identity), and the round's database
   delta. Appends are cheap — O(changed entries), not O(cache) — so the
   snapshot stays one clean-prefix fold behind the journal even with
   [snapshot_every] set high. Never across sessions: the mirror is
   [None] until this session's first full write. *)
let append_snapshot_delta t record =
  match (t.snapshot_path, t.shard_cache, t.snap_mirror) with
  | Some spath, Some c, Some mirror -> (
    let entries = D.Planner.cache_entries c in
    let upserts =
      List.filter
        (fun (fp, e) ->
          match Hashtbl.find_opt mirror fp with
          | Some e0 -> not (e0 == e)
          | None -> true)
        entries
    in
    let live = Hashtbl.create (List.length entries * 2 + 1) in
    List.iter (fun (fp, _) -> Hashtbl.replace live fp ()) entries;
    let removed =
      Hashtbl.fold
        (fun fp _ acc -> if Hashtbl.mem live fp then acc else fp :: acc)
        mirror []
    in
    let deletes, inserts = record_delta record in
    let generation =
      match t.journal with Some w -> Journal.generation w | None -> 0
    in
    let n = (part_of t.index).D.Arena.num_components in
    let dirty =
      match t.dirty with
      | All -> List.init n (fun i -> i)
      | Flags f -> List.rev (B.fold (fun i acc -> i :: acc) f [])
    in
    match
      Snapshot.append ~fsync:t.fsync spath
        {
          Snapshot.d_position = t.journal_len;
          d_generation = generation;
          d_arena_fp = D.Fingerprint.arena t.index.arena;
          d_components = n;
          d_dirty = dirty;
          d_stats = D.Planner.cache_stats c;
          d_removed = removed;
          d_order = List.map fst entries;
          d_deletes = deletes;
          d_inserts = inserts;
          d_upserts = upserts;
        }
    with
    | () ->
      List.iter (fun fp -> Hashtbl.remove mirror fp) removed;
      List.iter (fun (fp, e) -> Hashtbl.replace mirror fp e) upserts
    | exception Sys_error msg ->
      (* an unappendable snapshot only costs freshness — drop the
         mirror so no later append chains past the gap *)
      t.snap_mirror <- None;
      Log.warn (fun m -> m "snapshot append failed (%s); disabled until \
                            the next full write" msg))
  | _ -> ()

let journal_append t record =
  match t.journal with
  | None -> ()
  | Some w ->
    Journal.append w record;
    t.journal_len <- t.journal_len + 1;
    t.stats <- { t.stats with journal_records = t.stats.journal_records + 1 };
    if
      t.snapshot_path <> None && t.snapshot_every > 0
      && t.journal_len - t.last_snapshot_len >= t.snapshot_every
    then write_snapshot t
    else append_snapshot_delta t record

let checkpoint t =
  (* a checkpoint is the durable summary of the session so far — fold
     the tombstones away first so the on-disk baseline corresponds to a
     compact index and recovery replays onto the same physical layout *)
  compact_index t;
  match t.journal_path with
  | None -> ()
  | Some path ->
    (match t.journal with
    | Some w ->
      Journal.close_writer w;
      t.journal <- None
    | None -> ());
    let cur = D.Matview.db t.mv in
    let gone =
      R.Instance.fold
        (fun st acc ->
          if R.Instance.mem cur st then acc else R.Stuple.Set.add st acc)
        t.base_db R.Stuple.Set.empty
    in
    let added =
      R.Instance.fold
        (fun st acc ->
          if R.Instance.mem t.base_db st then acc else st :: acc)
        cur []
    in
    (* a single symmetric record — deletes replay before inserts, so an
       update (same key, new tuple) drops the old row before its
       replacement lands *)
    let records =
      [ Journal.Delta { deletes = gone; inserts = R.Stuple.Set.of_list added } ]
    in
    (* snapshot first, at the post-checkpoint position (1 record: the
       baseline delta), then the journal mark. A crash between the two
       leaves a snapshot whose position describes a journal that never
       landed — recovery's end-of-replay fallback still re-warms it,
       because the old journal replays to the same state. *)
    t.journal_len <- List.length records;
    write_snapshot t;
    Journal.rewrite path records;
    t.journal <-
      Some (Journal.open_writer ~fsync:t.fsync ?segment_bytes:t.segment_bytes path);
    Log.info (fun m ->
        m "journal %s: checkpointed to %d record(s)" path (List.length records))

let create ?weights ?exact_threshold ?algorithms ?(plan = false) ?domains
    ?budget_ms ?compact_threshold ?journal ?(recover = false)
    ?(shard_cache = 512) ?snapshot ?(snapshot_every = 16) ?(fsync = false)
    ?segment_bytes ?(indexed = true) db queries =
  (match (snapshot, journal) with
  | Some _, None ->
    invalid_arg "Engine.create: ~snapshot requires ~journal (a snapshot is \
                 a position in a journal)"
  | _ -> ());
  let problem = D.Problem.make ~db ~queries ~deletions:[] ?weights () in
  let prov = D.Provenance.build problem in
  let arena = D.Arena.build prov in
  let cindex = D.Component_index.build arena in
  (* plan sessions default to lazy tombstones: the shard pipeline skips
     dead slots natively, so deltas stay sublinear. Flat sessions default
     to eager — the whole-instance portfolio wants a compact arena every
     round anyway, so tombstoning would only move the same work after the
     commit. Both are overridable. *)
  let compact_threshold =
    match compact_threshold with Some x -> x | None -> if plan then 0.5 else 0.0
  in
  let t =
    {
      queries;
      weights;
      exact_threshold;
      algorithms;
      plan_solver = plan;
      budget_ms;
      compact_threshold;
      base_db = db;
      journal_path = journal;
      snapshot_path = snapshot;
      snapshot_every;
      fsync;
      segment_bytes;
      journal = None;
      journal_len = 0;
      last_snapshot_len = 0;
      pool = D.Par.Pool.create ?domains ();
      mv = D.Matview.of_views db queries prov.D.Provenance.views;
      index = { prov; arena; cindex };
      stats =
        { zero_stats with rebuilds = 1;
          components =
            (D.Component_index.partition cindex).D.Arena.num_components };
      shard_cache =
        (if plan && shard_cache > 0 then
           Some (D.Planner.create_cache ~capacity:shard_cache ())
         else None);
      snap_mirror = None;
      (* a fresh (or recovered) session has solved nothing yet: every
         component is dirty until its first planner round lands *)
      dirty = All;
      indexed;
    }
  in
  (match journal with
  | None -> ()
  | Some path ->
    if not recover then begin
      Journal.remove path;
      Option.iter Snapshot.remove snapshot
    end;
    (* The snapshot candidate, loaded before replay (cheap; plain data).
       Any load failure is a typed warning and a cold cache — never a
       failed recovery. *)
    let snap =
      match snapshot with
      | Some spath when recover -> (
        match Snapshot.load spath with
        | Ok (s, dropped) -> Some (s, dropped)
        | Error w ->
          t.stats <- { t.stats with snapshot = Degraded w };
          Log.warn (fun m ->
              m "snapshot %s: %a — starting cold" spath Snapshot.pp_warning w);
          None)
      | _ -> None
    in
    (* A snapshot installs when its coordinates — journal position,
       partition size, canonical arena fingerprint — match the replayed
       state at that position. The fingerprint is tombstone/compaction
       invariant, so physical-layout differences between the crashed
       process and this replay don't matter. *)
    let install (s : Snapshot.t) dropped =
      match t.shard_cache with
      | None -> false
      | Some c ->
        let p = part_of t.index in
        if
          s.Snapshot.components = p.D.Arena.num_components
          && D.Fingerprint.equal s.Snapshot.arena_fp
               (D.Fingerprint.arena t.index.arena)
        then begin
          D.Planner.cache_restore ~stats:s.Snapshot.stats c s.Snapshot.entries;
          let f = B.create p.D.Arena.num_components in
          List.iter
            (fun cid ->
              if cid >= 0 && cid < p.D.Arena.num_components then B.add f cid)
            s.Snapshot.dirty;
          t.dirty <- Flags f;
          t.stats <-
            {
              t.stats with
              snapshot =
                Warm { entries = List.length s.Snapshot.entries; dropped };
            };
          true
        end
        else false
    in
    (* the fresh base state, reinstallable if a fast-path attempt below
       turns out stale: nothing before this point mutates [prov] /
       [arena] / [cindex] (arena patches copy the dead bitsets) *)
    let reset_state () =
      t.mv <- D.Matview.of_views db queries prov.D.Provenance.views;
      t.index <- { prov; arena; cindex };
      t.dirty <- All;
      (match t.shard_cache with
      | Some c -> D.Planner.cache_clear c
      | None -> ());
      t.stats <-
        {
          zero_stats with
          rebuilds = 1;
          snapshot = t.stats.snapshot;
          components =
            (D.Component_index.partition cindex).D.Arena.num_components;
        }
    in
    (* Fast path — sealed-segment reclamation (ROADMAP item 4): with a
       baseline in the snapshot and the journal still on the snapshot's
       generation, the journal's first [position] records are provably
       the ones the snapshot summarizes (within a generation the
       sequence is append-only; only [rewrite] bumps it). Apply the
       baseline as one delta in their stead, install, replay only the
       tail. The sealed segments the skipped prefix lives in are
       reclaimed by a checkpoint once the writer reopens — never by
       unlinking them in place, which would shift every surviving
       record's global index out from under the snapshot's recorded
       position and poison the *next* recovery. Any mismatch rebuilds
       the base state and falls back to the full replay below. *)
    let reclaim = ref false in
    let fast =
      match snap with
      | Some (s, dropped)
        when s.Snapshot.position > 0
             && s.Snapshot.baseline <> None
             && Journal.current_gen path = s.Snapshot.generation -> (
        match
          Journal.load_from ~repair:true ~position:s.Snapshot.position path
        with
        | Error _ -> false
        | Ok { Journal.tail; total; covered } ->
          if total < s.Snapshot.position then false
          else begin
            let gone, added = Option.get s.Snapshot.baseline in
            ignore
              (apply_delta_raw t (D.Delta.make ~deletes:gone ~inserts:added ()));
            if install s dropped then begin
              List.iter (replay_record t) tail;
              t.journal_len <- total;
              t.last_snapshot_len <- total;
              t.stats <- { t.stats with recovered_records = total };
              reclaim := covered <> [];
              Log.info (fun m ->
                  m "journal %s: fast recovery — baseline + %d tail record(s), \
                     %d sealed segment(s) to reclaim"
                    path (List.length tail) (List.length covered));
              true
            end
            else begin
              reset_state ();
              false
            end
          end)
      | _ -> false
    in
    if not fast then
    (match Journal.load ~repair:true path with
    | Error e -> raise (Journal.Error e)
    | Ok records ->
      let installed = ref false in
      (* install mid-replay, at exactly the position the snapshot was
         written; the tail records then remap the restored dirty flags
         through [apply_delta_raw] like any live delta *)
      List.iteri
        (fun i record ->
          (match snap with
          | Some (s, dropped) when (not !installed) && i = s.Snapshot.position
            ->
            installed := install s dropped
          | _ -> ());
          replay_record t record)
        records;
      let n = List.length records in
      t.journal_len <- n;
      (match snap with
      | Some (s, dropped) when not !installed ->
        (* position = n: the snapshot sits at the journal tip (the
           common kill-mid-append shape). Any other position is tried
           once more against the fully replayed state — that salvages
           the checkpoint crash window between the snapshot rename and
           the journal mark, where the recorded position describes a
           journal that was never written but the content still matches
           the end of the old one. *)
        installed := install s dropped;
        if !installed then t.last_snapshot_len <- n
        else begin
          t.stats <- { t.stats with snapshot = Degraded Snapshot.Stale };
          Log.warn (fun m ->
              m "snapshot %s: %a — starting cold"
                (Option.get snapshot) Snapshot.pp_warning Snapshot.Stale)
        end
      | Some _ -> t.last_snapshot_len <- n
      | None -> ());
      t.stats <- { t.stats with recovered_records = n };
      if records <> [] then
        Log.info (fun m ->
            m "journal %s: replayed %d record(s)%s" path n
              (match t.stats.snapshot with
              | Warm { entries; _ } ->
                Printf.sprintf ", re-warmed %d cache entr%s" entries
                  (if entries = 1 then "y" else "ies")
              | _ -> "")));
    t.journal <-
      Some (Journal.open_writer ~fsync ?segment_bytes path);
    (* fold the snapshot-covered prefix away for real: the checkpoint's
       generation-bumping rewrite unlinks the sealed segments atomically
       and leaves a journal+snapshot pair that is self-consistent for
       the next recovery *)
    if !reclaim then checkpoint t);
  t

let db t = D.Matview.db t.mv
let view t name = D.Matview.view t.mv name
let matview t = t.mv

(* the two derived fields are snapshots of live state, stamped at read
   time: the planner cache owns the hit counter, the arena the ratio *)
let stats t =
  {
    t.stats with
    shard_cache_hits =
      (match t.shard_cache with
      | None -> 0
      | Some c -> D.Planner.cache_hits c);
    fragment_reuses =
      (match t.shard_cache with
      | None -> 0
      | Some c -> D.Planner.cache_fragment_reuses c);
    fragment_reuses_exact =
      (match t.shard_cache with
      | None -> 0
      | Some c -> D.Planner.cache_fragment_reuses_exact c);
    fragment_reuses_forest =
      (match t.shard_cache with
      | None -> 0
      | Some c -> D.Planner.cache_fragment_reuses_forest c);
    fragment_reuses_approx =
      (match t.shard_cache with
      | None -> 0
      | Some c -> D.Planner.cache_fragment_reuses_approx c);
    tombstone_ratio = D.Arena.tombstone_ratio t.index.arena;
  }

let compact t = compact_index t

let index t =
  let ix = index_of t in
  (ix.prov, ix.arena)

let partition t = part_of (index_of t)
let component_index t = (index_of t).cindex

let request ?budget_ms t requests =
  let ix = index_of t in
  match D.Delta_request.validate ~views:ix.prov.D.Provenance.views requests with
  | Error _ as e -> e
  | Ok () ->
    let t0 = Unix.gettimeofday () in
    let prov' = D.Provenance.with_deletions ix.prov requests in
    let arena' = D.Arena.with_deletions ix.arena prov' in
    let budget_ms = match budget_ms with Some _ as b -> b | None -> t.budget_ms in
    let report =
      if t.plan_solver then begin
        let dirty_fn =
          match (t.shard_cache, t.dirty) with
          | None, _ | _, All -> None
          | Some _, Flags f -> Some (fun c -> B.mem f c)
        in
        (* the component index depends only on witness structure, so the
           session's incrementally maintained one re-targets for free —
           indexed sessions enumerate active components off the live
           rosters, sweep-path sessions off the partition arrays *)
        let report =
          if t.indexed then
            D.Planner.solve ?exact_threshold:t.exact_threshold
              ?only:t.algorithms ?budget_ms ~pool:t.pool ~index:ix.cindex
              ?cache:t.shard_cache ?dirty:dirty_fn arena'
          else
            D.Planner.solve ?exact_threshold:t.exact_threshold
              ?only:t.algorithms ?budget_ms ~pool:t.pool
              ~partition:(part_of ix) ?cache:t.shard_cache ?dirty:dirty_fn
              arena'
        in
        (* memoize each decided shard's (fingerprint, ΔV) on its
           component: what [Planner.seed_fragments] restricts onto
           surviving fragments when a later delete splits it *)
        (if t.indexed && report.D.Planner.decomposed then begin
           let p = part_of ix in
           let by_comp = Hashtbl.create 16 in
           B.iter
             (fun vid ->
               let c = p.D.Arena.comp_of_vid.(vid) in
               let prev = try Hashtbl.find by_comp c with Not_found -> [] in
               Hashtbl.replace by_comp c (vid :: prev))
             arena'.D.Arena.bad;
           List.iter
             (fun (d : D.Planner.shard_decision) ->
               match d.D.Planner.fingerprint with
               | None -> ()
               | Some fp ->
                 let bad =
                   Array.of_list
                     (List.rev
                        (try Hashtbl.find by_comp d.D.Planner.component
                         with Not_found -> []))
                 in
                 D.Component_index.record_memo ix.cindex
                   ~component:d.D.Planner.component ~fp ~bad)
             report.D.Planner.shards
         end);
        (* every shard that just solved (or spliced, staying valid) is
           now clean; components the round did not activate keep their
           state. [request] commits nothing, so the partition the flags
           index is unchanged. *)
        (if t.shard_cache <> None && report.D.Planner.decomposed then begin
           let f =
             match t.dirty with
             | All -> B.full (part_of ix).D.Arena.num_components
             | Flags f -> f
           in
           List.iter
             (fun (d : D.Planner.shard_decision) ->
               B.remove f d.D.Planner.component)
             report.D.Planner.shards;
           t.dirty <- Flags f
         end);
        report
      end
      else
        (* the flat portfolio iterates the physical arrays, so a
           tombstoned index must compact for this round's solve (the
           session index itself stays tombstoned; flat sessions default
           to eager compaction anyway) *)
        let arena' =
          if D.Arena.tombstoned arena' then D.Arena.compact arena' else arena'
        in
        let r =
          D.Portfolio.solutions_report ?exact_threshold:t.exact_threshold
            ?only:t.algorithms ?budget_ms ~pool:t.pool arena'
        in
        { D.Planner.solutions = r.D.Portfolio.solutions;
          failures = r.D.Portfolio.failures; degraded = r.D.Portfolio.degraded;
          decomposed = false; shards = []; shards_cached = 0 }
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let exact_shards =
      List.length
        (List.filter
           (fun (d : D.Planner.shard_decision) -> d.D.Planner.exact)
           report.D.Planner.shards)
    in
    let n_shards = List.length report.D.Planner.shards in
    let n_cached = report.D.Planner.shards_cached in
    t.stats <-
      {
        t.stats with
        rounds = t.stats.rounds + 1;
        last_solve_ms = ms;
        total_solve_ms = t.stats.total_solve_ms +. ms;
        shards_solved = t.stats.shards_solved + n_shards;
        shards_exact = t.stats.shards_exact + exact_shards;
        shards_approx = t.stats.shards_approx + (n_shards - exact_shards);
        shards_cached = t.stats.shards_cached + n_cached;
        shards_resolved = t.stats.shards_resolved + (n_shards - n_cached);
      };
    Log.debug (fun m ->
        m "round %d: %d solution(s), %d failure(s), %d shard(s) in %.2f ms"
          t.stats.rounds
          (List.length report.D.Planner.solutions)
          (List.length report.D.Planner.failures)
          n_shards ms);
    Ok
      {
        requests;
        solutions = report.D.Planner.solutions;
        failures = report.D.Planner.failures;
        degraded = report.D.Planner.degraded;
        decomposed = report.D.Planner.decomposed;
        shards = report.D.Planner.shards;
        shards_cached = report.D.Planner.shards_cached;
      }

let apply ?solution t plan =
  let chosen =
    match solution with
    | Some _ as s -> s
    | None -> ( match plan.solutions with s :: _ -> Some s | [] -> None)
  in
  match chosen with
  | None -> None
  | Some s ->
    let dd = commit_raw t s.D.Solution.deleted in
    journal_append t (Journal.Apply dd);
    Some s

let delete t dd =
  let dd = commit_raw t dd in
  journal_append t (Journal.Delete dd)

let insert t st =
  insert_raw t st;
  journal_append t (Journal.Insert st)

let insert_all t sts = R.Stuple.Set.iter (fun st -> insert t st) sts

let apply_delta t delta =
  let applied = apply_delta_raw t delta in
  if not (D.Delta.is_empty applied) then
    journal_append t
      (Journal.Delta
         { deletes = applied.D.Delta.deletes; inserts = applied.D.Delta.inserts });
  applied

let close t =
  (match t.journal with
  | Some w ->
    Journal.close_writer w;
    t.journal <- None
  | None -> ());
  D.Par.Pool.shutdown t.pool

(* ---- scripted sessions ---- *)

module Script = struct
  type op =
    | Solve of D.Delta_request.t list
    | Propose of D.Delta_request.t list
    | Insert of R.Stuple.t
    | Delete of R.Stuple.t

  type line = {
    lineno : int;
    text : string;
    op : op;
  }

  type round = {
    number : int;
    op : op;
    plan : plan option;
    error : string option;
  }

  let parse_fact s =
    let rel, tuple = R.Serial.fact_of_string s in
    R.Stuple.make rel tuple

  (* group facts by view, preserving first-appearance order on both the
     views and their tuples *)
  let group_requests facts =
    List.fold_left
      (fun acc (view, tuple) ->
        if List.mem_assoc view acc then
          List.map
            (fun (v, ts) -> if String.equal v view then (v, ts @ [ tuple ]) else (v, ts))
            acc
        else acc @ [ (view, [ tuple ]) ])
      [] facts
    |> List.map (fun (view, tuples) -> D.Delta_request.make ~view tuples)

  let parse_line line =
    let keyword, rest =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line i (String.length line - i)) )
    in
    try
      match keyword with
      | "solve" | "propose" ->
        let facts =
          String.split_on_char ';' rest
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
          |> List.map R.Serial.fact_of_string
        in
        if facts = [] then
          Error (Printf.sprintf "%s: expected at least one view fact" keyword)
        else
          let requests = group_requests facts in
          Ok (if keyword = "solve" then Solve requests else Propose requests)
      | "insert" -> Ok (Insert (parse_fact rest))
      | "delete" -> Ok (Delete (parse_fact rest))
      | kw ->
        Error
          (Printf.sprintf "unknown op %S (expected solve|propose|insert|delete)"
             kw)
    with R.Serial.Parse_error (_, msg) -> Error msg

  let parse text =
    let rec go n acc = function
      | [] -> Ok (List.rev acc)
      | raw :: tl -> (
        let trimmed = String.trim raw in
        if trimmed = "" || trimmed.[0] = '#' then go (n + 1) acc tl
        else
          match parse_line trimmed with
          | Ok op -> go (n + 1) ({ lineno = n; text = trimmed; op } :: acc) tl
          | Error msg -> Error (Printf.sprintf "line %d: %s" n msg))
    in
    go 1 [] (String.split_on_char '\n' text)

  let parse_file path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> parse (really_input_string ic (in_channel_length ic)))

  (* one op; [Ok] carries the plan of a solve round *)
  let execute eng = function
    | Solve requests -> (
      match request eng requests with
      | Error e -> Error (D.Delta_request.error_to_string e)
      | Ok plan ->
        ignore (apply eng plan);
        Ok (Some plan))
    | Propose requests -> (
      (* solve-without-apply: the round's plan is reported but nothing
         commits — repeated proposals over stable components are what
         the shard cache accelerates *)
      match request eng requests with
      | Error e -> Error (D.Delta_request.error_to_string e)
      | Ok plan -> Ok (Some plan))
    | Insert st -> (
      match insert eng st with
      | () -> Ok None
      | exception R.Relation.Key_violation (rel, existing, _) ->
        Error
          (Format.asprintf "inserting %a violates the key of %s (%a)" R.Stuple.pp st
             rel R.Tuple.pp existing))
    | Delete st ->
      delete eng (R.Stuple.Set.singleton st);
      Ok None

  let replay ?(keep_going = false) eng lines =
    let rec go n acc = function
      | [] -> Ok (List.rev acc)
      | (line : line) :: tl -> (
        match execute eng line.op with
        | Ok plan -> go (n + 1) ({ number = n; op = line.op; plan; error = None } :: acc) tl
        | Error msg ->
          (* the failing line's own text travels with the error — a
             script author debugs the script, not the round numbering *)
          let msg = Printf.sprintf "round %d (%s): %s" n line.text msg in
          if keep_going then
            go (n + 1) ({ number = n; op = line.op; plan = None; error = Some msg } :: acc) tl
          else Error msg)
    in
    go 1 [] lines
end

(* re-exports: [engine] is the library's interface module, so the
   journal and snapshot machinery are reachable from outside as
   [Engine.Journal] / [Engine.Snapshot] *)
module Journal = Journal
module Snapshot = Snapshot
