module R = Relational
module D = Deleprop

let magic = "DLPJRNL1"

type record =
  | Apply of R.Stuple.Set.t
  | Delete of R.Stuple.Set.t
  | Insert of R.Stuple.t
  | Delta of { deletes : R.Stuple.Set.t; inserts : R.Stuple.Set.t }

type error =
  | Bad_magic of string
  | Corrupt of { index : int; reason : string }

exception Error of error

let pp_error ppf = function
  | Bad_magic path -> Format.fprintf ppf "%s is not a session journal" path
  | Corrupt { index; reason } -> Format.fprintf ppf "journal record %d corrupt: %s" index reason

(* ---- CRC-32 (IEEE), table-driven ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ---- record codec ---- *)

let tag_of = function
  | Apply _ -> 'A'
  | Delete _ -> 'D'
  | Insert _ -> 'I'
  | Delta _ -> 'U'

let payload_of record =
  let facts =
    match record with
    | Apply dd | Delete dd -> List.map R.Stuple.to_string (R.Stuple.Set.elements dd)
    | Insert st -> [ R.Stuple.to_string st ]
    | Delta { deletes; inserts } ->
      (* signed facts, deletes first — the order [apply_delta] replays *)
      List.map (fun st -> "-" ^ R.Stuple.to_string st) (R.Stuple.Set.elements deletes)
      @ List.map (fun st -> "+" ^ R.Stuple.to_string st) (R.Stuple.Set.elements inserts)
  in
  String.concat "\n" (String.make 1 (tag_of record) :: facts)

let fact_of_line line =
  let rel, tuple = R.Serial.fact_of_string line in
  R.Stuple.make rel tuple

let signed_fact_of_line line =
  if String.length line = 0 then failwith "empty signed fact"
  else
    let rest = String.sub line 1 (String.length line - 1) in
    match line.[0] with
    | '-' -> (`Delete, fact_of_line rest)
    | '+' -> (`Insert, fact_of_line rest)
    | c -> failwith (Printf.sprintf "signed fact starts with %C, expected '-'/'+'" c)

let record_of_payload payload =
  match String.split_on_char '\n' payload with
  | tag :: facts -> (
    match tag with
    | "A" -> Apply (R.Stuple.Set.of_list (List.map fact_of_line facts))
    | "D" -> Delete (R.Stuple.Set.of_list (List.map fact_of_line facts))
    | "I" -> (
      match facts with
      | [ f ] -> Insert (fact_of_line f)
      | _ -> failwith "insert record needs exactly one fact")
    | "U" ->
      let deletes, inserts =
        List.fold_left
          (fun (dd, ins) line ->
            match signed_fact_of_line line with
            | `Delete, st -> (R.Stuple.Set.add st dd, ins)
            | `Insert, st -> (dd, R.Stuple.Set.add st ins))
          (R.Stuple.Set.empty, R.Stuple.Set.empty)
          facts
      in
      Delta { deletes; inserts }
    | t -> failwith (Printf.sprintf "unknown record tag %S" t))
  | [] -> failwith "empty payload"

let u32_le n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 (n land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 3 ((n lsr 24) land 0xFF);
  Bytes.unsafe_to_string b

let read_u32_le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let encode record =
  let payload = payload_of record in
  let crc = Int32.to_int (crc32 payload) land 0xFFFFFFFF in
  u32_le (String.length payload) ^ u32_le crc ^ payload

(* ---- reading ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ?(repair = false) path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let data = read_file path in
    let len = String.length data in
    if len = 0 then Ok []
    else if len < String.length magic || String.sub data 0 (String.length magic) <> magic
    then Error (Bad_magic path)
    else begin
      let truncate_to pos = if repair then Unix.truncate path pos in
      let rec go pos index acc =
        if pos = len then Ok (List.rev acc)
        else if len - pos < 8 then begin
          (* torn header *)
          truncate_to pos;
          Ok (List.rev acc)
        end
        else begin
          let plen = read_u32_le data pos in
          let crc = read_u32_le data (pos + 4) in
          if len - pos - 8 < plen then begin
            (* torn payload *)
            truncate_to pos;
            Ok (List.rev acc)
          end
          else begin
            let payload = String.sub data (pos + 8) plen in
            let next = pos + 8 + plen in
            if Int32.to_int (crc32 payload) land 0xFFFFFFFF <> crc then
              if next = len then begin
                (* checksum failure on the final record: torn write *)
                truncate_to pos;
                Ok (List.rev acc)
              end
              else Error (Corrupt { index; reason = "checksum mismatch" })
            else
              match record_of_payload payload with
              | record -> go next (index + 1) (record :: acc)
              | exception (Failure msg | R.Serial.Parse_error (_, msg)) ->
                (* a checksummed payload that does not decode is corruption
                   whatever its position — the bytes were written whole *)
                Error (Corrupt { index; reason = msg })
          end
        end
      in
      go (String.length magic) 0 []
    end
  end

(* ---- writing ---- *)

type writer = {
  path : string;
  mutable oc : out_channel;
}

let open_channel path =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path in
  if out_channel_length oc = 0 then begin
    output_string oc magic;
    flush oc
  end;
  oc

let open_writer path = { path; oc = open_channel path }

let append w record =
  let bytes = encode record in
  (match D.Failpoint.find "journal.append" with
  | Some (D.Failpoint.Crash_after_bytes n) ->
    let n = min n (String.length bytes) in
    output_string w.oc (String.sub bytes 0 n);
    flush w.oc;
    raise (D.Failpoint.Injected "journal.append")
  | Some _ -> D.Failpoint.hit "journal.append"
  | None -> ());
  output_string w.oc bytes;
  flush w.oc

let close_writer w = close_out_noerr w.oc

let rewrite path records =
  let tmp = path ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 tmp in
  match D.Failpoint.find "journal.rewrite" with
  | Some (D.Failpoint.Crash_after_bytes n) ->
    (* the compactor dies [n] bytes into the replacement file: a torn
       [.tmp] never renamed over the journal — unless the allowance
       covered the whole image, in which case the rename happened and
       the kill struck just after the compaction committed *)
    let bytes =
      String.concat "" (magic :: List.map (fun r -> encode r) records)
    in
    let k = min n (String.length bytes) in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (String.sub bytes 0 k);
        flush oc);
    if k = String.length bytes then Sys.rename tmp path;
    raise (D.Failpoint.Injected "journal.rewrite")
  | fp ->
    (match fp with
    | Some _ -> D.Failpoint.hit "journal.rewrite"
    | None -> ());
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        List.iter (fun r -> output_string oc (encode r)) records;
        flush oc);
    Sys.rename tmp path
