module R = Relational
module D = Deleprop

let magic = "DLPJRNL1"

type record =
  | Apply of R.Stuple.Set.t
  | Delete of R.Stuple.Set.t
  | Insert of R.Stuple.t
  | Delta of { deletes : R.Stuple.Set.t; inserts : R.Stuple.Set.t }

type error =
  | Bad_magic of string
  | Corrupt of { index : int; reason : string }

exception Error of error

let pp_error ppf = function
  | Bad_magic path -> Format.fprintf ppf "%s is not a session journal" path
  | Corrupt { index; reason } -> Format.fprintf ppf "journal record %d corrupt: %s" index reason

(* ---- CRC-32 (IEEE), table-driven ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ---- record codec ---- *)

let tag_of = function
  | Apply _ -> 'A'
  | Delete _ -> 'D'
  | Insert _ -> 'I'
  | Delta _ -> 'U'

let payload_of record =
  let facts =
    match record with
    | Apply dd | Delete dd -> List.map R.Stuple.to_string (R.Stuple.Set.elements dd)
    | Insert st -> [ R.Stuple.to_string st ]
    | Delta { deletes; inserts } ->
      (* signed facts, deletes first — the order [apply_delta] replays *)
      List.map (fun st -> "-" ^ R.Stuple.to_string st) (R.Stuple.Set.elements deletes)
      @ List.map (fun st -> "+" ^ R.Stuple.to_string st) (R.Stuple.Set.elements inserts)
  in
  String.concat "\n" (String.make 1 (tag_of record) :: facts)

let fact_of_line line =
  let rel, tuple = R.Serial.fact_of_string line in
  R.Stuple.make rel tuple

let signed_fact_of_line line =
  if String.length line = 0 then failwith "empty signed fact"
  else
    let rest = String.sub line 1 (String.length line - 1) in
    match line.[0] with
    | '-' -> (`Delete, fact_of_line rest)
    | '+' -> (`Insert, fact_of_line rest)
    | c -> failwith (Printf.sprintf "signed fact starts with %C, expected '-'/'+'" c)

let record_of_payload payload =
  match String.split_on_char '\n' payload with
  | tag :: facts -> (
    match tag with
    | "A" -> Apply (R.Stuple.Set.of_list (List.map fact_of_line facts))
    | "D" -> Delete (R.Stuple.Set.of_list (List.map fact_of_line facts))
    | "I" -> (
      match facts with
      | [ f ] -> Insert (fact_of_line f)
      | _ -> failwith "insert record needs exactly one fact")
    | "U" ->
      let deletes, inserts =
        List.fold_left
          (fun (dd, ins) line ->
            match signed_fact_of_line line with
            | `Delete, st -> (R.Stuple.Set.add st dd, ins)
            | `Insert, st -> (dd, R.Stuple.Set.add st ins))
          (R.Stuple.Set.empty, R.Stuple.Set.empty)
          facts
      in
      Delta { deletes; inserts }
    | t -> failwith (Printf.sprintf "unknown record tag %S" t))
  | [] -> failwith "empty payload"

let u32_le n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 (n land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 3 ((n lsr 24) land 0xFF);
  Bytes.unsafe_to_string b

let read_u32_le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame payload =
  let crc = Int32.to_int (crc32 payload) land 0xFFFFFFFF in
  u32_le (String.length payload) ^ u32_le crc ^ payload

let encode record = frame (payload_of record)

(* ---- segments ----

   The active segment lives at [path]; rotation seals it by renaming to
   [path ^ ".seg-<gen>-<seq>"] (seq ascending = chronological within a
   generation) and starting a fresh active file. Every segment written
   by a rotating or rewriting writer opens with a generation marker — a
   CRC-framed ['G'] record — and {!load} reads exactly the sealed
   segments whose filename generation matches the active file's marker,
   in sequence order, then the active itself. {!rewrite} bumps the
   generation in the replacement image {e before} renaming it over
   [path], so a crash between the rename and the stale-segment cleanup
   leaves old sealed segments that the next load provably ignores: the
   multi-file journal is atomic at the single rename, same as the
   single-file one. Pre-rotation journals carry no marker and parse as
   generation 0 with no sealed segments — fully backward compatible. *)

let gen_marker gen = frame (Printf.sprintf "G\n%d" gen)
let seal_name path gen seq = Printf.sprintf "%s.seg-%d-%d" path gen seq

(* every [path ^ ".seg-<gen>-<seq>"] in path's directory, sorted by
   (gen, seq) ascending *)
let sealed_segments path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".seg-" in
  let plen = String.length prefix in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun e ->
           if String.length e > plen && String.sub e 0 plen = prefix then
             match
               String.split_on_char '-' (String.sub e plen (String.length e - plen))
             with
             | [ g; s ] -> (
               match (int_of_string_opt g, int_of_string_opt s) with
               | Some g, Some s -> Some (g, s, Filename.concat dir e)
               | _ -> None)
             | _ -> None
           else None)
    |> List.sort compare

(* best-effort: the first record's generation marker, [None] for legacy
   files (whose first record is data). Integrity is not checked here —
   a corrupt marker surfaces as a typed [Corrupt] during {!load}. *)
let gen_of_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let mlen = String.length magic in
        let flen = in_channel_length ic in
        if flen < mlen + 8 then None
        else begin
          let head = really_input_string ic (mlen + 8) in
          if String.sub head 0 mlen <> magic then None
          else
            let plen = read_u32_le head mlen in
            if plen < 2 || flen < mlen + 8 + plen then None
            else
              let payload = really_input_string ic plen in
              if payload.[0] = 'G' && payload.[1] = '\n' then
                int_of_string_opt (String.sub payload 2 (plen - 2))
              else None
        end)

(* the generation the journal at [path] is currently on: the active
   file's marker, else (active legacy/absent) the newest sealed
   segment's, else 0 *)
let current_gen path =
  match (if Sys.file_exists path then gen_of_file path else None) with
  | Some g -> g
  | None ->
    List.fold_left (fun m (g, _, _) -> max m g) 0 (sealed_segments path)

(* ---- reading ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One segment's frames, as [(records, error option)] — the records
   parsed before any failure always travel back, so [keep_going] can
   salvage the valid prefix of a part-corrupt segment. [allow_torn] (the
   active segment only): an incomplete or checksum-failing final record
   is a torn write, dropped (and truncated off with [repair]); anywhere
   else the same shape is interior corruption. Generation markers are
   consumed, not emitted. [index0] offsets the typed error's record
   index so it is global across segments. *)
let parse_segment ?(repair = false) ~allow_torn ~index0 path =
  let data = read_file path in
  let len = String.length data in
  if len = 0 then ([], None)
  else if
    len < String.length magic || String.sub data 0 (String.length magic) <> magic
  then ([], Some (Bad_magic path))
  else begin
    let truncate_to pos = if repair && allow_torn then Unix.truncate path pos in
    let rec go pos index acc =
      if pos = len then (List.rev acc, None)
      else if len - pos < 8 then
        if allow_torn then begin
          (* torn header *)
          truncate_to pos;
          (List.rev acc, None)
        end
        else
          ( List.rev acc,
            Some (Corrupt { index; reason = "torn record in sealed segment" }) )
      else begin
        let plen = read_u32_le data pos in
        let crc = read_u32_le data (pos + 4) in
        if len - pos - 8 < plen then
          if allow_torn then begin
            (* torn payload *)
            truncate_to pos;
            (List.rev acc, None)
          end
          else
            ( List.rev acc,
              Some (Corrupt { index; reason = "torn record in sealed segment" })
            )
        else begin
          let payload = String.sub data (pos + 8) plen in
          let next = pos + 8 + plen in
          if Int32.to_int (crc32 payload) land 0xFFFFFFFF <> crc then
            if next = len && allow_torn then begin
              (* checksum failure on the final record: torn write *)
              truncate_to pos;
              (List.rev acc, None)
            end
            else
              (List.rev acc, Some (Corrupt { index; reason = "checksum mismatch" }))
          else if String.length payload >= 1 && payload.[0] = 'G' then
            (* generation marker: framing only, never replayed *)
            go next index acc
          else
            match record_of_payload payload with
            | record -> go next (index + 1) (record :: acc)
            | exception (Failure msg | R.Serial.Parse_error (_, msg)) ->
              (* a checksummed payload that does not decode is corruption
                 whatever its position — the bytes were written whole *)
              (List.rev acc, Some (Corrupt { index; reason = msg }))
        end
      end
    in
    go (String.length magic) index0 []
  end

(* structural record count of one segment: frame hops only — no CRC
   checks, no payload decoding — with generation markers excluded.
   [None] when the file is unreadable or not frame-delimitable end to
   end, in which case the caller must parse it properly. *)
let count_segment_records path =
  match read_file path with
  | exception Sys_error _ -> None
  | data ->
    let len = String.length data in
    let mlen = String.length magic in
    if len < mlen || String.sub data 0 mlen <> magic then None
    else begin
      let rec go pos n =
        if pos = len then Some n
        else if len - pos < 8 then None
        else
          let plen = read_u32_le data pos in
          if plen < 0 || len - pos - 8 < plen then None
          else
            let is_marker = plen >= 1 && data.[pos + 8] = 'G' in
            go (pos + 8 + plen) (if is_marker then n else n + 1)
      in
      go mlen 0
    end

type tail = {
  tail : record list;
  total : int;
  covered : string list;
}

(* [load_from ~position] — the journal's records with global index ≥
   [position], without decoding the prefix a snapshot already covers:
   sealed segments lying entirely inside the first [position] records
   are skipped after a structural skim-count (their paths come back in
   [covered] so the caller can reclaim them once the install sticks).
   Skimming checks framing only — a bit flip inside a covered segment is
   invisible here, which is sound exactly because the caller replaces
   those records with the snapshot's baseline and never replays them.
   Segments the prefix only partially covers (always including the
   active one) parse normally, and any structural damage is the same
   typed error [load] reports. *)
let load_from ?(repair = false) ~position path =
  let gen = current_gen path in
  let sealed =
    List.filter_map
      (fun (g, _, p) -> if g = gen then Some p else None)
      (sealed_segments path)
  in
  let files =
    List.map (fun p -> (p, false)) sealed
    @ (if Sys.file_exists path then [ (path, true) ] else [])
  in
  let rec go before acc covered = function
    | [] ->
      Ok
        { tail = List.concat (List.rev acc); total = before;
          covered = List.rev covered }
    | (p, final) :: rest -> (
      let skim =
        if final then None
        else
          match count_segment_records p with
          | Some n when before + n <= position -> Some n
          | _ -> None
      in
      match skim with
      | Some n -> go (before + n) acc (p :: covered) rest
      | None -> (
        match parse_segment ~repair ~allow_torn:final ~index0:before p with
        | records, None ->
          let n = List.length records in
          let keep = List.filteri (fun i _ -> before + i >= position) records in
          go (before + n) (keep :: acc) covered rest
        | _, Some e -> Error e))
  in
  go 0 [] [] files

let load ?(repair = false) ?(keep_going = false) path =
  let gen = current_gen path in
  let sealed =
    List.filter_map
      (fun (g, _, p) -> if g = gen then Some p else None)
      (sealed_segments path)
  in
  let files =
    List.map (fun p -> (p, false)) sealed
    @ (if Sys.file_exists path then [ (path, true) ] else [])
  in
  if files = [] then Ok []
  else begin
    (* [keep_going]: a typed error mid-stream salvages the valid prefix
       instead of failing the load — every record before the corruption
       replays, everything at and after it is dropped (later segments
       included: replaying past a hole would desynchronize the state) *)
    let rec go acc index0 = function
      | [] -> Ok (List.concat (List.rev acc))
      | (p, final) :: rest -> (
        match parse_segment ~repair ~allow_torn:final ~index0 p with
        | records, None -> go (records :: acc) (index0 + List.length records) rest
        | records, Some e ->
          if keep_going then Ok (List.concat (List.rev (records :: acc)))
          else Error e)
    in
    go [] 0 files
  end

(* ---- writing ---- *)

type writer = {
  path : string;
  fsync : bool;
  segment_bytes : int option;
  mutable gen : int;
  mutable seq : int;  (* the next rotation seals as (gen, seq) *)
  mutable oc : out_channel;
}

let flush_channel ~fsync oc =
  flush oc;
  if fsync then Unix.fsync (Unix.descr_of_out_channel oc)

let open_channel ~fsync ~gen path =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path in
  if out_channel_length oc = 0 then begin
    output_string oc magic;
    output_string oc (gen_marker gen);
    flush_channel ~fsync oc
  end;
  oc

let open_writer ?(fsync = false) ?segment_bytes path =
  (match segment_bytes with
  | Some n when n <= 0 ->
    invalid_arg "Journal.open_writer: segment_bytes must be positive"
  | _ -> ());
  let gen = current_gen path in
  let seq =
    1
    + List.fold_left
        (fun m (g, s, _) -> if g = gen then max m s else m)
        0 (sealed_segments path)
  in
  { path; fsync; segment_bytes; gen; seq; oc = open_channel ~fsync ~gen path }

(* seal the active segment once it outgrows the bound: rename (atomic),
   then start a fresh active of the same generation. A crash between the
   two leaves no active file — {!load} and {!open_writer} adopt the
   newest sealed generation, so nothing is lost. Rotation runs after a
   fully flushed append, which is why a sealed segment can never carry a
   torn tail of its own. *)
let maybe_rotate w =
  match w.segment_bytes with
  | None -> ()
  | Some limit ->
    if pos_out w.oc >= limit then begin
      close_out_noerr w.oc;
      Sys.rename w.path (seal_name w.path w.gen w.seq);
      w.seq <- w.seq + 1;
      w.oc <- open_channel ~fsync:w.fsync ~gen:w.gen w.path
    end

let append w record =
  let bytes = encode record in
  (match D.Failpoint.find "journal.append" with
  | Some (D.Failpoint.Crash_after_bytes n) ->
    let n = min n (String.length bytes) in
    output_string w.oc (String.sub bytes 0 n);
    flush w.oc;
    raise (D.Failpoint.Injected "journal.append")
  | Some _ -> D.Failpoint.hit "journal.append"
  | None -> ());
  output_string w.oc bytes;
  flush_channel ~fsync:w.fsync w.oc;
  maybe_rotate w

let close_writer w = close_out_noerr w.oc
let generation w = w.gen

let rewrite path records =
  let sealed = sealed_segments path in
  let gen = current_gen path + 1 in
  let image =
    String.concat "" (magic :: gen_marker gen :: List.map encode records)
  in
  let unlink_sealed () =
    List.iter (fun (_, _, p) -> try Sys.remove p with Sys_error _ -> ()) sealed
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 tmp in
  match D.Failpoint.find "journal.rewrite" with
  | Some (D.Failpoint.Crash_after_bytes n) ->
    (* the compactor dies [n] bytes into the replacement file: a torn
       [.tmp] never renamed over the journal — unless the allowance
       covered the whole image, in which case the rename happened and
       the kill struck just after the compaction committed (stale sealed
       segments survive the simulated crash; the generation bump makes
       the next load ignore them) *)
    let k = min n (String.length image) in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (String.sub image 0 k);
        flush oc);
    if k = String.length image then Sys.rename tmp path;
    raise (D.Failpoint.Injected "journal.rewrite")
  | fp ->
    (match fp with
    | Some _ -> D.Failpoint.hit "journal.rewrite"
    | None -> ());
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc image;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp path;
    (* cleanup after the commit point: crash-safe, see the gen bump *)
    unlink_sealed ()

let remove path =
  if Sys.file_exists path then Sys.remove path;
  List.iter
    (fun (_, _, p) -> try Sys.remove p with Sys_error _ -> ())
    (sealed_segments path)
