module R = Relational

(* specialize [q] by unifying body atom [i] with tuple [t]; None if the
   atom cannot match the tuple *)
let specialize (q : Query.t) i (t : R.Tuple.t) =
  let atom = List.nth q.body i in
  match Atom.matches atom t with
  | None -> None
  | Some bindings ->
    let f v =
      List.assoc_opt v bindings |> Option.map (fun value -> Term.Const value)
    in
    Some (Query.substitute f q)

(* candidate answers touching any deleted tuple: union over (tuple, atom)
   pairs of the specialized queries' answers on the old database *)
let candidates db (q : Query.t) dd =
  R.Stuple.Set.fold
    (fun (st : R.Stuple.t) acc ->
      List.fold_left
        (fun acc (i, (atom : Atom.t)) ->
          if atom.rel <> st.rel then acc
          else
            match specialize q i st.tuple with
            | None -> acc
            | Some q' -> R.Tuple.Set.union acc (Eval.evaluate db q'))
        acc
        (List.mapi (fun i a -> (i, a)) q.body))
    dd R.Tuple.Set.empty

(* is [answer] still derivable over db'? specialize the head variables to
   the answer's constants and evaluate *)
let derivable db' (q : Query.t) answer =
  let bindings =
    List.mapi (fun i term -> (term, R.Tuple.get answer i)) q.head
    |> List.filter_map (function
         | Term.Var v, value -> Some (v, value)
         | Term.Const c, value ->
           (* a constant head position must agree, else not derivable *)
           if R.Value.equal c value then None else Some ("", value))
  in
  if List.exists (fun (v, _) -> v = "") bindings then false
  else begin
    (* repeated head variables with conflicting values can never match *)
    let tbl = Hashtbl.create 8 in
    let consistent =
      List.for_all
        (fun (v, value) ->
          match Hashtbl.find_opt tbl v with
          | Some value' -> R.Value.equal value value'
          | None ->
            Hashtbl.add tbl v value;
            true)
        bindings
    in
    consistent
    &&
    let f v = Hashtbl.find_opt tbl v |> Option.map (fun value -> Term.Const value) in
    let q' = Query.substitute f q in
    not (R.Tuple.Set.is_empty (Eval.evaluate db' q'))
  end

let lost_answers db q dd =
  let db' = R.Instance.delete db dd in
  R.Tuple.Set.filter
    (fun answer -> not (derivable db' q answer))
    (candidates db q dd)

let refresh db q ~view dd = R.Tuple.Set.diff view (lost_answers db q dd)

(* ---- the insert dual ----

   An answer gained by inserting [st] has a derivation using [st] in at
   least one body atom; specializing each matching atom to [st]'s
   constants and evaluating on the database AFTER the insertion finds
   exactly those derivations (including ones using [st] several times —
   the other atoms range over db + st). No derivability check is needed:
   unlike deletion, insertion cannot take derivations away, so every
   match of a specialized query is a real answer of the extended view. *)

let witness_equal (a : Eval.witness) (b : Eval.witness) =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i st -> if not (R.Stuple.equal st b.(i)) then ok := false) a;
      !ok)

let gained_answers db (q : Query.t) (st : R.Stuple.t) =
  let db' = R.Instance.add_stuple db st in
  List.fold_left
    (fun acc (i, (atom : Atom.t)) ->
      if atom.rel <> st.R.Stuple.rel then acc
      else
        match specialize q i st.R.Stuple.tuple with
        | None -> acc
        | Some q' ->
          List.fold_left
            (fun acc (answer, w) ->
              (* a witness using [st] in atoms i and j is found by both
                 specializations; keep one copy per distinct assignment,
                 like [Eval.provenance] *)
              R.Tuple.Map.update answer
                (fun cur ->
                  let ws = Option.value ~default:[] cur in
                  if List.exists (witness_equal w) ws then Some ws
                  else Some (ws @ [ w ]))
                acc)
            acc (Eval.matches db' q'))
    R.Tuple.Map.empty
    (List.mapi (fun i a -> (i, a)) q.body)

let extend db q ~view st =
  R.Tuple.Map.fold
    (fun answer _ acc -> R.Tuple.Set.add answer acc)
    (gained_answers db q st) view
