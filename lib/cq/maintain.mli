(** Incremental view maintenance under deletions.

    Deletion propagation presumes materialized views; after a propagation
    plan [ΔD] is applied, the views must be refreshed. Re-evaluating
    every query costs full join time; the delta rule does better:

    + candidate lost answers = for each deleted tuple and each body atom
      of matching relation, the answers of the query specialized to that
      atom/tuple binding (evaluated over the {e old} database);
    + an answer is really lost iff it has no derivation left over
      [D \ ΔD] (checked by a fully-specialized derivability query).

    For key-preserving queries the derivability check can be skipped —
    the unique witness dies with any of its tuples — making maintenance a
    pure index lookup; this module implements the {e general} semantics
    and is validated against full re-evaluation. Benchmarked in E17. *)

(** [lost_answers db q dd] — the answers of [q] over [db] eliminated by
    deleting [dd], under general (multi-witness) semantics. *)
val lost_answers :
  Relational.Instance.t ->
  Query.t ->
  Relational.Stuple.Set.t ->
  Relational.Tuple.Set.t

(** [refresh db q ~view dd] — the view of [q] over [db \ dd], computed
    incrementally from the materialized [view] over [db]. *)
val refresh :
  Relational.Instance.t ->
  Query.t ->
  view:Relational.Tuple.Set.t ->
  Relational.Stuple.Set.t ->
  Relational.Tuple.Set.t

(** [gained_answers db q st] — the answers of [q] {e created} by
    inserting [st] into [db], each with all of its new witnesses (dual
    of {!lost_answers}). For each body atom of [st]'s relation the query
    is specialized to [st]'s constants and evaluated over [db + st], so
    derivations using the new tuple several times are found; every
    witness returned contains [st]. Insertion needs no derivability
    check — it cannot remove derivations — and for key-preserving
    queries a gained answer has exactly one witness (two would mean an
    ambiguous witness on the extended database, which {!Provenance}
    rejects). [st] must not already be in [db]. *)
val gained_answers :
  Relational.Instance.t ->
  Query.t ->
  Relational.Stuple.t ->
  Eval.witness list Relational.Tuple.Map.t

(** [extend db q ~view st] — the view of [q] over [db + st], computed
    incrementally from the materialized [view] over [db] (dual of
    {!refresh}). *)
val extend :
  Relational.Instance.t ->
  Query.t ->
  view:Relational.Tuple.Set.t ->
  Relational.Stuple.t ->
  Relational.Tuple.Set.t
