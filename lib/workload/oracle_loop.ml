module R = Relational
module D = Deleprop

type spec = {
  cleaning : Cleaning.spec;
  batch_size : int;
  max_questions : int;
}

let default = { cleaning = Cleaning.default; batch_size = 3; max_questions = 500 }

type outcome = {
  questions : int;
  repair_rounds : int;
  deleted : R.Stuple.Set.t;
  precision : float;
  recall : float;
  residual_wrong : int;
}

let run ~rng spec =
  let w = Cleaning.generate ~rng ~views_with_feedback:spec.cleaning.Cleaning.depth spec.cleaning in
  let clean = w.Cleaning.clean in
  let queries = w.Cleaning.problem.D.Problem.queries in
  let clean_views =
    List.map (fun (q : Cq.Query.t) -> (q.name, Cq.Eval.evaluate clean q)) queries
  in
  let oracle qname t = R.Tuple.Set.mem t (List.assoc qname clean_views) in
  let mv = ref (D.Matview.create w.Cleaning.problem.D.Problem.db queries) in
  let verified : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let key qname t = qname ^ "/" ^ R.Tuple.to_string t in
  let questions = ref 0 in
  let rounds = ref 0 in
  let deleted = ref R.Stuple.Set.empty in
  let continue_ = ref true in
  while !continue_ && !questions < spec.max_questions do
    (* collect the next batch of unverified answers *)
    let batch = ref [] in
    List.iter
      (fun (q : Cq.Query.t) ->
        R.Tuple.Set.iter
          (fun t ->
            if
              List.length !batch < spec.batch_size
              && (not (Hashtbl.mem verified (key q.name t)))
            then batch := (q.name, t) :: !batch)
          (D.Matview.view !mv q.name))
      queries;
    if !batch = [] then continue_ := false
    else begin
      (* oracle pass *)
      let wrong =
        List.filter
          (fun (qname, t) ->
            incr questions;
            Hashtbl.replace verified (key qname t) ();
            not (oracle qname t))
          !batch
      in
      if wrong <> [] then begin
        incr rounds;
        let deletions =
          List.fold_left
            (fun acc (qname, t) ->
              let cur = Option.value ~default:[] (List.assoc_opt qname acc) in
              (qname, t :: cur) :: List.remove_assoc qname acc)
            [] wrong
        in
        let problem =
          match
            D.Matview.problem ~requests:(D.Delta_request.of_legacy deletions) !mv
          with
          | Ok p -> p
          | Error e -> failwith (D.Delta_request.error_to_string e)
        in
        let prov = D.Provenance.build problem in
        match D.Brute.solve prov with
        | Some r ->
          deleted := R.Stuple.Set.union !deleted r.D.Brute.deletion;
          mv := D.Matview.delete !mv r.D.Brute.deletion
        | None -> continue_ := false
      end
    end
  done;
  (* final accounting *)
  let residual_wrong =
    List.fold_left
      (fun acc (q : Cq.Query.t) ->
        acc
        + R.Tuple.Set.cardinal
            (R.Tuple.Set.diff (D.Matview.view !mv q.name) (List.assoc q.name clean_views)))
      0 queries
  in
  let inter = R.Stuple.Set.inter !deleted w.Cleaning.corrupted in
  let precision =
    if R.Stuple.Set.is_empty !deleted then 1.0
    else
      float_of_int (R.Stuple.Set.cardinal inter)
      /. float_of_int (R.Stuple.Set.cardinal !deleted)
  in
  let recall =
    if R.Stuple.Set.is_empty w.Cleaning.corrupted then 1.0
    else
      float_of_int (R.Stuple.Set.cardinal inter)
      /. float_of_int (R.Stuple.Set.cardinal w.Cleaning.corrupted)
  in
  {
    questions = !questions;
    repair_rounds = !rounds;
    deleted = !deleted;
    precision;
    recall;
    residual_wrong;
  }
