(* The shard solution cache: canonical fingerprints, the bounded LRU,
   and the differential property suite proving cached planner sessions
   solution-equivalent (same costs, certificates, shard decisions) to
   cache-less ones at every round — across mixed delta streams, under
   eviction pressure, and through crash recovery. *)

open Util
module R = Relational
module D = Deleprop

let seeds = QCheck2.Gen.int_range 0 10_000

(* ---- Setcover.Lru ---- *)

let test_lru_basics () =
  let l = Setcover.Lru.create ~capacity:2 in
  Alcotest.(check int) "capacity" 2 (Setcover.Lru.capacity l);
  Setcover.Lru.add l 1 "a";
  Setcover.Lru.add l 2 "b";
  Alcotest.(check int) "two bindings" 2 (Setcover.Lru.length l);
  (* touching 1 makes 2 the eviction victim *)
  Alcotest.(check (option string)) "find refreshes" (Some "a")
    (Setcover.Lru.find l 1);
  Setcover.Lru.add l 3 "c";
  Alcotest.(check (option string)) "lru evicted" None (Setcover.Lru.find l 2);
  Alcotest.(check (option string)) "recent survives" (Some "a")
    (Setcover.Lru.find l 1);
  Alcotest.(check (option string)) "new binding" (Some "c")
    (Setcover.Lru.find l 3);
  (* replacing refreshes, never grows *)
  Setcover.Lru.add l 1 "a2";
  Alcotest.(check (option string)) "replaced" (Some "a2") (Setcover.Lru.find l 1);
  Alcotest.(check int) "still two bindings" 2 (Setcover.Lru.length l);
  Setcover.Lru.remove l 1;
  Alcotest.(check bool) "removed" false (Setcover.Lru.mem l 1);
  Setcover.Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Setcover.Lru.length l);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity 0 < 1") (fun () ->
      ignore (Setcover.Lru.create ~capacity:0))

let test_lru_eviction_order () =
  let l = Setcover.Lru.create ~capacity:3 in
  List.iter (fun k -> Setcover.Lru.add l k k) [ 1; 2; 3 ];
  ignore (Setcover.Lru.find l 1);
  (* recency now 1 > 3 > 2: inserting two fresh keys evicts 2 then 3 *)
  Setcover.Lru.add l 4 4;
  Setcover.Lru.add l 5 5;
  Alcotest.(check (list int)) "survivors (mru first)" [ 5; 4; 1 ]
    (Setcover.Lru.fold (fun k _ acc -> acc @ [ k ]) l []);
  Alcotest.(check int) "bounded" 3 (Setcover.Lru.length l)

(* ---- Fingerprint ---- *)

let fig1 () = Workload.Author_journal.scenario_q4 ()

let test_fingerprint_stable () =
  let a1 = D.Arena.build (D.Provenance.build (fig1 ())) in
  let a2 = D.Arena.build (D.Provenance.build (fig1 ())) in
  Alcotest.(check bool) "same content, same fingerprint" true
    (D.Fingerprint.equal (D.Fingerprint.arena a1) (D.Fingerprint.arena a2));
  Alcotest.(check string) "hex round-trip" (D.Fingerprint.to_hex (D.Fingerprint.arena a1))
    (Format.asprintf "%a" D.Fingerprint.pp (D.Fingerprint.arena a2))

let test_fingerprint_sensitive () =
  let prov = D.Provenance.build (fig1 ()) in
  let a = D.Arena.build prov in
  let fp = D.Fingerprint.arena a in
  (* a different ΔV re-stamp must hash differently *)
  let reqs =
    [ D.Delta_request.make ~view:"Q4" [ R.Tuple.strs [ "Tom"; "TKDE"; "XML" ] ] ]
  in
  let a' = D.Arena.with_deletions a (D.Provenance.with_deletions prov reqs) in
  Alcotest.(check bool) "ΔV changes the fingerprint" false
    (D.Fingerprint.equal fp (D.Fingerprint.arena a'));
  (* so must deleting a source tuple *)
  let dd = R.Stuple.Set.singleton (R.Stuple.make "T1" (R.Tuple.strs [ "Tom"; "TKDE" ])) in
  let prov_d = D.Provenance.delete prov dd in
  let a_d = D.Arena.delete a ~dd prov_d in
  Alcotest.(check bool) "content changes the fingerprint" false
    (D.Fingerprint.equal fp (D.Fingerprint.arena a_d))

(* three independent author/journal components: T1(x, Jk) ⋈ T2(Jk, X, 1) *)
let tri_schema () =
  R.Schema.Db.of_list
    [
      R.Schema.make ~name:"T1" ~attrs:[ "AuName"; "Journal" ] ~key:[ 0; 1 ];
      R.Schema.make ~name:"T2" ~attrs:[ "Journal"; "Topic"; "Papers" ] ~key:[ 0; 1 ];
    ]

let tri_db () =
  R.Instance.of_alist (tri_schema ())
    [
      ( "T1",
        [
          R.Tuple.strs [ "A"; "J1" ];
          R.Tuple.strs [ "B"; "J2" ];
          R.Tuple.strs [ "C"; "J3" ];
        ] );
      ( "T2",
        [
          R.Tuple.of_list [ R.Value.str "J1"; R.Value.str "X"; R.Value.int 1 ];
          R.Tuple.of_list [ R.Value.str "J2"; R.Value.str "X"; R.Value.int 1 ];
          R.Tuple.of_list [ R.Value.str "J3"; R.Value.str "X"; R.Value.int 1 ];
        ] );
    ]

let tri_queries () = [ Cq.Parser.query_of_string "Q4(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)" ]

let tri_view au j = R.Tuple.strs [ au; j; "X" ]

(* deleting T1(A, J1) compacts every id and renumbers every component —
   the untouched components' shard fingerprints must not move *)
let test_fingerprint_renumbering_invariant () =
  let shard_fps db deletions =
    let p = D.Problem.make ~db ~queries:(tri_queries ()) ~deletions () in
    let a = D.Arena.build (D.Provenance.build p) in
    Array.to_list
      (Array.map (fun (sh : D.Arena.shard) -> D.Fingerprint.arena sh.D.Arena.arena)
         (D.Arena.shatter a))
  in
  let before =
    shard_fps (tri_db ())
      [ ("Q4", [ tri_view "A" "J1"; tri_view "B" "J2"; tri_view "C" "J3" ]) ]
  in
  let after =
    shard_fps
      (R.Instance.remove (tri_db ()) (R.Stuple.make "T1" (R.Tuple.strs [ "A"; "J1" ])))
      [ ("Q4", [ tri_view "B" "J2"; tri_view "C" "J3" ]) ]
  in
  Alcotest.(check int) "three shards before" 3 (List.length before);
  Alcotest.(check int) "two shards after" 2 (List.length after);
  (* components renumber (J2: 1→0, J3: 2→1) but their content is
     untouched, so the fingerprints are exactly the old ones *)
  Alcotest.(check bool) "J2 shard fingerprint survives the renumbering" true
    (D.Fingerprint.equal (List.nth before 1) (List.nth after 0));
  Alcotest.(check bool) "J3 shard fingerprint survives the renumbering" true
    (D.Fingerprint.equal (List.nth before 2) (List.nth after 1))

(* the parent-side shard hash must agree with hashing the built shard
   arena — this equality is what lets the planner consult the cache
   without materializing clean components *)
let check_proto_fingerprint seed =
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng:(rng seed)
      {
        Workload.Forest_family.default with
        num_relations = 4;
        tuples_per_relation = 8;
        num_queries = 3;
        deletion_fraction = 0.3;
      }
  in
  let a = D.Arena.build (D.Provenance.build p) in
  Array.iter
    (fun (ps : D.Arena.proto_shard) ->
      let sh = D.Arena.materialize a ps in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d component %d: proto hash = built hash" seed
           ps.D.Arena.p_component)
        true
        (D.Fingerprint.equal (D.Fingerprint.shard a ps)
           (D.Fingerprint.arena sh.D.Arena.arena)))
    (D.Arena.active_components a);
  true

let prop_proto_fingerprint =
  qcheck ~count:50 "fingerprint: proto shard = materialized shard" seeds
    check_proto_fingerprint

(* ---- shard decisions: equality up to the [cached] flag ---- *)

let check_decisions_equal tag (es : D.Planner.shard_decision list)
    (ss : D.Planner.shard_decision list) =
  Alcotest.(check int) (tag ^ ": shard count") (List.length ss) (List.length es);
  List.iter2
    (fun (e : D.Planner.shard_decision) (s : D.Planner.shard_decision) ->
      Alcotest.(check int) (tag ^ ": component") s.D.Planner.component
        e.D.Planner.component;
      Alcotest.(check int) (tag ^ ": stuples") s.D.Planner.stuples e.D.Planner.stuples;
      Alcotest.(check int) (tag ^ ": vtuples") s.D.Planner.vtuples e.D.Planner.vtuples;
      Alcotest.(check int) (tag ^ ": bad") s.D.Planner.bad e.D.Planner.bad;
      Alcotest.(check bool) (tag ^ ": classification") true
        (e.D.Planner.classification = s.D.Planner.classification);
      Alcotest.(check string) (tag ^ ": winner") s.D.Planner.winner e.D.Planner.winner;
      Alcotest.(check bool) (tag ^ ": cost bit-identical") true
        (Float.equal e.D.Planner.cost s.D.Planner.cost);
      Alcotest.(check bool) (tag ^ ": exact") s.D.Planner.exact e.D.Planner.exact;
      Alcotest.(check bool) (tag ^ ": degraded") s.D.Planner.degraded
        e.D.Planner.degraded)
    es ss

let request_exn tag eng reqs =
  match Engine.request eng reqs with
  | Ok plan -> plan
  | Error e -> Alcotest.fail (tag ^ ": " ^ D.Delta_request.error_to_string e)

(* ---- predicted dirty sets on the three-component instance ---- *)

let test_dirty_set_prediction () =
  let eng = Engine.create ~plan:true ~domains:1 (tri_db ()) (tri_queries ()) in
  let req aus = [ D.Delta_request.make ~view:"Q4" (List.map (fun (a, j) -> tri_view a j) aus) ] in
  let all = req [ ("A", "J1"); ("B", "J2"); ("C", "J3") ] in
  (* cold session: everything resolves *)
  let p1 = request_exn "round 1" eng all in
  Alcotest.(check bool) "decomposed" true p1.Engine.decomposed;
  Alcotest.(check int) "3 shards" 3 (List.length p1.Engine.shards);
  Alcotest.(check int) "cold round: nothing cached" 0 p1.Engine.shards_cached;
  (* identical repeat: everything splices *)
  let p2 = request_exn "round 2" eng all in
  Alcotest.(check int) "repeat: everything cached" 3 p2.Engine.shards_cached;
  Test_engine.check_solutions_equal "repeat ≡ cold" p2.Engine.solutions
    p1.Engine.solutions;
  check_decisions_equal "repeat decisions" p2.Engine.shards p1.Engine.shards;
  (* a delta confined to J1's component: J2/J3 stay clean even though
     deleting T1(A, J1) renumbers both of them *)
  let dd = R.Stuple.Set.singleton (R.Stuple.make "T1" (R.Tuple.strs [ "A"; "J1" ])) in
  ignore (Engine.apply_delta eng (D.Delta.of_deletes dd));
  let p3 = request_exn "round 3" eng (req [ ("B", "J2"); ("C", "J3") ]) in
  Alcotest.(check int) "2 shards" 2 (List.length p3.Engine.shards);
  Alcotest.(check int) "both clean components splice" 2 p3.Engine.shards_cached;
  (* an insert into J2's component dirties exactly it *)
  Engine.insert eng (R.Stuple.make "T1" (R.Tuple.strs [ "D"; "J2" ]));
  let p4 = request_exn "round 4" eng (req [ ("B", "J2"); ("C", "J3") ]) in
  Alcotest.(check int) "only the untouched component splices" 1
    p4.Engine.shards_cached;
  let j2 =
    List.find (fun (d : D.Planner.shard_decision) -> d.D.Planner.stuples = 3)
      p4.Engine.shards
  in
  Alcotest.(check bool) "the re-solved shard is the inserted one" false
    j2.D.Planner.cached;
  let s = Engine.stats eng in
  Alcotest.(check int) "stats: cached total" (3 + 2 + 1) s.Engine.shards_cached;
  Alcotest.(check int) "stats: resolved total" (3 + 0 + 0 + 1) s.Engine.shards_resolved;
  Alcotest.(check int) "cached + resolved = solved"
    s.Engine.shards_solved
    (s.Engine.shards_cached + s.Engine.shards_resolved);
  Engine.close eng

(* ---- differential: cached session ≡ cache-less session, every round ---- *)

(* Drive one mixed delete/insert/solve stream through two planner
   engines in lockstep — [eng_c] with the shard cache, [eng_f] with it
   disabled — and require bit-identical ranked solutions and shard
   decisions at every request, including an immediate identical repeat
   (which must splice every non-degraded shard on [eng_c]). *)
let check_cached_stream ?exact_threshold ?(capacity = 512) ?(scale = 6) seed =
  let rng = rng seed in
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng
      {
        Workload.Forest_family.default with
        num_relations = 4;
        tuples_per_relation = scale;
        num_queries = 3;
        deletion_fraction = 0.0;
      }
  in
  let queries = p.D.Problem.queries in
  let mk shard_cache =
    Engine.create ?exact_threshold ~plan:true ~domains:1 ~shard_cache
      p.D.Problem.db queries
  in
  let eng_c = mk capacity in
  let eng_f = mk 0 in
  let deleted_pool = ref [] in
  for step = 1 to 10 do
    let tag = Printf.sprintf "cached seed %d step %d" seed step in
    let deletes =
      match R.Instance.stuples (Engine.db eng_c) with
      | [] -> R.Stuple.Set.empty
      | sts ->
        List.init
          (1 + Random.State.int rng 2)
          (fun _ -> List.nth sts (Random.State.int rng (List.length sts)))
        |> R.Stuple.Set.of_list
    in
    let inserts =
      match !deleted_pool with
      | [] -> R.Stuple.Set.empty
      | st :: rest ->
        deleted_pool := rest;
        R.Stuple.Set.singleton st
    in
    let delta = D.Delta.make ~deletes ~inserts () in
    let a_c = Engine.apply_delta eng_c delta in
    let a_f = Engine.apply_delta eng_f delta in
    Alcotest.check Util.stuple_set (tag ^ ": same deletes applied")
      a_f.D.Delta.deletes a_c.D.Delta.deletes;
    deleted_pool :=
      R.Stuple.Set.elements
        (R.Stuple.Set.diff a_c.D.Delta.deletes a_c.D.Delta.inserts)
      @ !deleted_pool;
    let prov_e, _ = Engine.index eng_c in
    match Test_engine.random_requests rng prov_e with
    | [] -> ()
    | reqs ->
      let p_c = request_exn tag eng_c reqs in
      let p_f = request_exn tag eng_f reqs in
      Alcotest.(check int) (tag ^ ": cache-less engine never splices") 0
        p_f.Engine.shards_cached;
      Test_engine.check_solutions_equal (tag ^ " post-delta") p_c.Engine.solutions
        p_f.Engine.solutions;
      check_decisions_equal (tag ^ " post-delta") p_c.Engine.shards
        p_f.Engine.shards;
      (* identical repeat: nothing moved, so every cacheable shard must
         splice — and the report must still be bit-identical *)
      let p_c' = request_exn tag eng_c reqs in
      let p_f' = request_exn tag eng_f reqs in
      Test_engine.check_solutions_equal (tag ^ " repeat") p_c'.Engine.solutions
        p_f'.Engine.solutions;
      check_decisions_equal (tag ^ " repeat") p_c'.Engine.shards p_f'.Engine.shards;
      if
        p_c'.Engine.decomposed
        && capacity >= List.length p_c'.Engine.shards
        && List.for_all
             (fun (d : D.Planner.shard_decision) -> not d.D.Planner.degraded)
             p_c'.Engine.shards
        && p_c'.Engine.failures = []
      then
        Alcotest.(check int)
          (tag ^ ": identical repeat splices every shard")
          (List.length p_c'.Engine.shards)
          p_c'.Engine.shards_cached;
      if step mod 3 = 0 then begin
        match (Engine.apply eng_c p_c, Engine.apply eng_f p_f) with
        | Some s_c, Some s_f ->
          Alcotest.check Util.stuple_set (tag ^ ": same solution applied")
            s_f.D.Solution.deleted s_c.D.Solution.deleted;
          deleted_pool :=
            R.Stuple.Set.elements s_c.D.Solution.deleted @ !deleted_pool
        | None, None -> ()
        | _ -> Alcotest.fail (tag ^ ": apply diverged")
      end
  done;
  Engine.close eng_c;
  Engine.close eng_f;
  true

let prop_cached_stream =
  qcheck ~count:10 "shardcache: cached session ≡ fresh (exact tiers)" seeds
    (fun seed -> check_cached_stream seed)

(* exact_threshold 0 pushes every shard to the approximate tier, so the
   parent-threshold reuse rules (bucket check, certificate rewrite) are
   on the hot path; ‖V‖ drifts with every committed delta *)
let prop_cached_stream_approx =
  qcheck ~count:10 "shardcache: cached session ≡ fresh (approx tier)" seeds
    (fun seed -> check_cached_stream ~exact_threshold:0 seed)

(* a capacity-1 cache thrashes constantly; equivalence must not care *)
let prop_cached_stream_tiny =
  qcheck ~count:10 "shardcache: cached session ≡ fresh (capacity 1)" seeds
    (fun seed -> check_cached_stream ~capacity:1 seed)

(* ---- flat (plan:false) sessions are untouched by the cache ---- *)

let test_flat_session_unaffected () =
  let p = fig1 () in
  let queries = p.D.Problem.queries in
  let eng = Engine.create ~plan:false ~domains:1 p.D.Problem.db queries in
  let reqs =
    [ D.Delta_request.make ~view:"Q4" [ R.Tuple.strs [ "John"; "TKDE"; "XML" ] ] ]
  in
  let plan = request_exn "flat" eng reqs in
  Alcotest.(check int) "no shards" 0 (List.length plan.Engine.shards);
  Alcotest.(check int) "no splices" 0 plan.Engine.shards_cached;
  Test_engine.check_solutions_equal "flat ≡ scratch portfolio"
    plan.Engine.solutions
    (Test_engine.scratch_solutions queries (Engine.db eng) reqs);
  let plan' = request_exn "flat repeat" eng reqs in
  Test_engine.check_solutions_equal "flat repeat" plan'.Engine.solutions
    plan.Engine.solutions;
  let s = Engine.stats eng in
  Alcotest.(check int) "stats stay zero" 0 s.Engine.shards_cached;
  Alcotest.(check int) "nothing resolved either" 0 s.Engine.shards_resolved;
  Engine.close eng

(* ---- crash recovery re-warms to an equivalent state ---- *)

let test_recover_rewarm () =
  let path = Filename.temp_file "shardcache" ".journal" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let db = tri_db () and queries = tri_queries () in
      let req aus =
        [ D.Delta_request.make ~view:"Q4" (List.map (fun (a, j) -> tri_view a j) aus) ]
      in
      let eng1 = Engine.create ~plan:true ~domains:1 ~journal:path db queries in
      ignore (request_exn "warm 1" eng1 (req [ ("A", "J1"); ("B", "J2"); ("C", "J3") ]));
      Engine.delete eng1
        (R.Stuple.Set.singleton (R.Stuple.make "T1" (R.Tuple.strs [ "A"; "J1" ])));
      let reqs = req [ ("B", "J2"); ("C", "J3") ] in
      ignore (request_exn "warm 2" eng1 reqs);
      (* "crash": the journal has everything committed; recovery replays
         it on the original baseline database *)
      Engine.close eng1;
      let eng2 =
        Engine.create ~plan:true ~domains:1 ~journal:path ~recover:true db queries
      in
      Alcotest.(check bool) "recovered database" true
        (R.Instance.equal (Engine.db eng1) (Engine.db eng2));
      let p1 = request_exn "survivor" eng1 reqs in
      let p2 = request_exn "recovered" eng2 reqs in
      (* the survivor splices from its warm cache; the recovered session
         starts cold and dirty — answers must be identical anyway *)
      Alcotest.(check int) "recovered session starts cold" 0 p2.Engine.shards_cached;
      Test_engine.check_solutions_equal "recovered ≡ survivor" p2.Engine.solutions
        p1.Engine.solutions;
      check_decisions_equal "recovered decisions" p2.Engine.shards p1.Engine.shards;
      (* and it re-warms: the identical repeat splices everything *)
      let p2' = request_exn "re-warmed" eng2 reqs in
      Alcotest.(check int) "re-warmed repeat splices every shard"
        (List.length p2'.Engine.shards) p2'.Engine.shards_cached;
      Test_engine.check_solutions_equal "re-warmed ≡ cold" p2'.Engine.solutions
        p2.Engine.solutions;
      Engine.close eng2)

let suite =
  [
    Alcotest.test_case "lru: basics" `Quick test_lru_basics;
    Alcotest.test_case "lru: eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "fingerprint: stable across rebuilds" `Quick
      test_fingerprint_stable;
    Alcotest.test_case "fingerprint: content/ΔV sensitive" `Quick
      test_fingerprint_sensitive;
    Alcotest.test_case "fingerprint: invariant under renumbering" `Quick
      test_fingerprint_renumbering_invariant;
    prop_proto_fingerprint;
    Alcotest.test_case "engine: dirty sets predict cache hits" `Quick
      test_dirty_set_prediction;
    prop_cached_stream;
    prop_cached_stream_approx;
    prop_cached_stream_tiny;
    Alcotest.test_case "engine: flat sessions unaffected" `Quick
      test_flat_session_unaffected;
    Alcotest.test_case "engine: recovery re-warms equivalently" `Quick
      test_recover_rewarm;
  ]
