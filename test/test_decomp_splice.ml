(* Decomposable solutions: split-aware fragment seeding on every cache
   tier. Deterministic instances drive each restriction path — the
   forest-DP tree replay (including its cost discount) and the
   approximate identity-with-rewrite — and assert the spliced answer
   bit-identical to a cache-less solve; negative gadgets pin the guards
   (undecomposed v2 entries, touched candidate neighborhood, drifted
   √‖V‖ bucket); a lockstep QCheck stream fuzzes the invariant over
   mixed delete/insert/solve rounds; and the incremental snapshot
   appends fold back bit-identically, torn tails included. *)

open Util
module R = Relational
module D = Deleprop
module S = Engine.Snapshot

let request_exn = Test_shardcache.request_exn
let check_decisions_equal = Test_shardcache.check_decisions_equal
let check_solutions_equal = Test_engine.check_solutions_equal
let seeds = QCheck2.Gen.int_range 0 10_000

let tier_counts eng =
  let s = Engine.stats eng in
  ( s.Engine.fragment_reuses_exact,
    s.Engine.fragment_reuses_forest,
    s.Engine.fragment_reuses_approx )

let with_paths f =
  let jpath = Filename.temp_file "deleprop_splice" ".journal" in
  let spath = jpath ^ ".snap" in
  Fun.protect
    ~finally:(fun () ->
      Engine.Journal.remove jpath;
      S.remove spath;
      try Sys.remove (spath ^ ".tmp") with Sys_error _ -> ())
    (fun () -> f jpath spath)

let load_exn tag spath =
  match S.load spath with
  | Ok (t, dropped) -> (t, dropped)
  | Error w ->
    Alcotest.fail (Format.asprintf "%s: load failed: %a" tag S.pp_warning w)

(* ---- forest tier: the recorded DP tree replays onto the fragment ----

   A hub-rooted tree — every view's witness passes through H(k1), so
   any deletion that kills a view meets the ΔV's candidate set. The
   identity tiers must refuse such a fragment; only the forest tier's
   tree replay, which discounts killed preserved weight explicitly,
   can carry the answer across. [exact_threshold = 0] closes the brute
   tier, so the component classifies [Exact_forest].

       H(k1) ─┬─ M(k1,a1) ─── L(a1,b1)
              └─ M(k1,a2) ─┬─ L(a2,b2)
                           └─ L(a2,b3)

   ΔV = QM(k1,a1); the optimum deletes M(k1,a1) at cost 1 (it also
   kills QL(k1,a1,b1)). Pruning L(a2,b3) loses a leaf on the uncut
   branch — values unchanged, slacks shrink; pruning L(a1,b1) loses
   the endpoint *under the recorded cut*, so the replayed cost drops
   to 0. Every splice must be bit-identical to a cache-less solve. *)

let hub_db () =
  R.Serial.instance_of_string
    {|rel H(K*)
H(k1)
rel M(K*, A*)
M(k1, a1)
M(k1, a2)
rel L(A*, B*)
L(a1, b1)
L(a2, b2)
L(a2, b3)|}

let hub_queries () =
  Cq.Parser.queries_of_string
    {|QM(K, A) :- H(K), M(K, A)
QL(K, A, B) :- H(K), M(K, A), L(A, B)|}

let qm () = [ D.Delta_request.make ~view:"QM" [ R.Tuple.strs [ "k1"; "a1" ] ] ]

let mk_hub cache =
  Engine.create ~plan:true ~domains:1 ~exact_threshold:0 ~shard_cache:cache
    (hub_db ()) (hub_queries ())

let del eng rel vs = Engine.delete eng (R.Stuple.Set.singleton (st rel vs))

let test_forest_splice () =
  let eng = mk_hub 512 in
  let fresh = mk_hub 0 in
  let round tag =
    let p = request_exn tag eng (qm ()) in
    let f = request_exn tag fresh (qm ()) in
    check_solutions_equal (tag ^ " ≡ fresh") p.Engine.solutions
      f.Engine.solutions;
    check_decisions_equal (tag ^ " decisions") p.Engine.shards f.Engine.shards;
    p
  in
  let p = round "warm" in
  (* the premise: with brute closed, the hub tree solves on the forest
     tier at cost 1 *)
  (match p.Engine.shards with
  | [ s ] ->
    Alcotest.(check bool) "warm shard is Exact_forest" true
      (s.D.Planner.classification = D.Planner.Exact_forest);
    Alcotest.(check (float 0.0)) "warm cost" 1.0 s.D.Planner.cost
  | _ -> Alcotest.fail "expected one hub shard");
  del eng "L" [ "a2"; "b3" ];
  del fresh "L" [ "a2"; "b3" ];
  let p = round "post-prune" in
  Alcotest.(check int) "the seeded fragment splices" 1 p.Engine.shards_cached;
  let ex, fo, ap = tier_counts eng in
  Alcotest.(check int) "counted on the forest tier" 1 fo;
  Alcotest.(check int) "not on the exact tier" 0 ex;
  Alcotest.(check int) "not on the approximate tier" 0 ap;
  (* splicing again off the seeded entry keeps counting *)
  let _ = round "re-splice" in
  let _, fo, _ = tier_counts eng in
  Alcotest.(check int) "re-splice counts again" 2 fo;
  (* lose the endpoint under the recorded cut: the chained restriction
     discounts the frontier's killed weight, so the spliced answer's
     cost drops to 0 — still the same deletion, still bit-identical *)
  del eng "L" [ "a1"; "b1" ];
  del fresh "L" [ "a1"; "b1" ];
  let p = round "post-discount" in
  Alcotest.(check int) "the re-seeded fragment splices" 1
    p.Engine.shards_cached;
  let _, fo, _ = tier_counts eng in
  Alcotest.(check int) "chained restriction counts" 3 fo;
  (match p.Engine.shards with
  | [ s ] ->
    Alcotest.(check (float 0.0)) "discounted cost" 0.0 s.D.Planner.cost
  | _ -> Alcotest.fail "expected one hub shard");
  Engine.close eng;
  Engine.close fresh

(* the v2-compatibility guard: entries restored without a recorded
   decomposition (as a pre-v3 snapshot loads) still splice clean
   components identically, but must never seed through the forest
   tier — the fragment re-solves, still bit-identically *)
let test_forest_undecomposed_guard () =
  with_paths (fun jpath spath ->
      let mk ?(recover = false) cache =
        Engine.create ~plan:true ~domains:1 ~exact_threshold:0
          ~shard_cache:cache ~journal:jpath ~snapshot:spath ~snapshot_every:1
          ~recover (hub_db ()) (hub_queries ())
      in
      let eng = mk 512 in
      ignore (request_exn "warm" eng (qm ()));
      (* a journalled round forces a full image holding the entry *)
      Engine.insert eng (st "L" [ "a9"; "b9" ]);
      Engine.close eng;
      (* strip the decompositions, exactly what a v2 snapshot yields *)
      let t, _ = load_exn "doctor" spath in
      S.write spath
        {
          t with
          S.entries =
            List.map
              (fun (f, e) -> (f, { e with D.Planner.e_decomposition = None }))
              t.S.entries;
        };
      let eng = mk ~recover:true 512 in
      let fresh = mk_hub 0 in
      Engine.insert fresh (st "L" [ "a9"; "b9" ]);
      ignore (request_exn "rewarm" eng (qm ()));
      ignore (request_exn "rewarm" fresh (qm ()));
      del eng "L" [ "a2"; "b3" ];
      del fresh "L" [ "a2"; "b3" ];
      let p = request_exn "guarded" eng (qm ()) in
      let f = request_exn "guarded" fresh (qm ()) in
      Alcotest.(check int) "undecomposed entry never seeds" 0
        p.Engine.shards_cached;
      let _, fo, _ = tier_counts eng in
      Alcotest.(check int) "no forest reuse" 0 fo;
      check_solutions_equal "guarded ≡ fresh" p.Engine.solutions
        f.Engine.solutions;
      Engine.close eng;
      Engine.close fresh)

(* ---- approximate tier: identity restriction under the bucket guard --

   A triangle (RA-RB-RC via Q1/Q2/Q3) keeps the component off the
   forest tier; a tail (RD, RE) hangs off it through Q4/Q5. With
   [exact_threshold = 0] the component classifies [Approximate].
   Deleting RE(w1, v1) prunes the tail's end — away from the Q1
   candidates, √‖V‖ bucket intact (⌊√5⌋ = ⌊√4⌋ = 2) — so the fragment
   inherits the portfolio answer identically. *)

let tri_db () =
  R.Serial.instance_of_string
    {|rel RA(X*, Z*)
RA(x1, z1)
rel RB(X*, Y*)
RB(x1, y1)
rel RC(Y*, Z*)
RC(y1, z1)
rel RD(Z*, W*)
RD(z1, w1)
rel RE(W*, V*)
RE(w1, v1)|}

let tri_queries () =
  Cq.Parser.queries_of_string
    {|Q1(X, Z, Y) :- RA(X, Z), RB(X, Y)
Q2(X, Y, Z) :- RB(X, Y), RC(Y, Z)
Q3(Y, Z, X) :- RC(Y, Z), RA(X, Z)
Q4(Y, Z, W) :- RC(Y, Z), RD(Z, W)
Q5(Z, W, V) :- RD(Z, W), RE(W, V)|}

let q1 () =
  [ D.Delta_request.make ~view:"Q1" [ R.Tuple.strs [ "x1"; "z1"; "y1" ] ] ]

let mk_tri cache =
  Engine.create ~plan:true ~domains:1 ~exact_threshold:0 ~shard_cache:cache
    (tri_db ()) (tri_queries ())

let test_approx_splice () =
  let eng = mk_tri 512 in
  let fresh = mk_tri 0 in
  let round tag =
    let p = request_exn tag eng (q1 ()) in
    let f = request_exn tag fresh (q1 ()) in
    check_solutions_equal (tag ^ " ≡ fresh") p.Engine.solutions
      f.Engine.solutions;
    check_decisions_equal (tag ^ " decisions") p.Engine.shards f.Engine.shards;
    p
  in
  let p = round "warm" in
  List.iter
    (fun (s : D.Planner.shard_decision) ->
      if s.D.Planner.bad > 0 then
        Alcotest.(check bool) "warm shard is Approximate" true
          (s.D.Planner.classification = D.Planner.Approximate))
    p.Engine.shards;
  del eng "RE" [ "w1"; "v1" ];
  del fresh "RE" [ "w1"; "v1" ];
  let p = round "post-prune" in
  Alcotest.(check int) "the seeded fragment splices" 1 p.Engine.shards_cached;
  let ex, fo, ap = tier_counts eng in
  Alcotest.(check int) "counted on the approximate tier" 1 ap;
  Alcotest.(check int) "not on the exact tiers" 0 (ex + fo);
  Engine.close eng;
  Engine.close fresh

(* the bucket guard: four star views on RW push the parent component to
   9 view tuples (bucket ⌊√9⌋ = 3); pruning the stars drops the
   fragment to 5 (bucket 2) — an approximate answer solved under the
   wider pruning threshold must NOT seed, and the fragment re-solves
   bit-identically *)
let star_db () =
  R.Serial.instance_of_string
    {|rel RA(X*, Z*)
RA(x1, z1)
rel RB(X*, Y*)
RB(x1, y1)
rel RC(Y*, Z*)
RC(y1, z1)
rel RD(Z*, W*)
RD(z1, w1)
rel RE(W*, V*)
RE(w1, v1)
rel RS1(W*, P*)
RS1(w1, p1)
rel RS2(W*, P*)
RS2(w1, p2)
rel RS3(W*, P*)
RS3(w1, p3)
rel RS4(W*, P*)
RS4(w1, p4)|}

let star_queries () =
  Cq.Parser.queries_of_string
    {|Q1(X, Z, Y) :- RA(X, Z), RB(X, Y)
Q2(X, Y, Z) :- RB(X, Y), RC(Y, Z)
Q3(Y, Z, X) :- RC(Y, Z), RA(X, Z)
Q4(Y, Z, W) :- RC(Y, Z), RD(Z, W)
Q5(Z, W, V) :- RD(Z, W), RE(W, V)
QS1(Z, W, P) :- RD(Z, W), RS1(W, P)
QS2(Z, W, P) :- RD(Z, W), RS2(W, P)
QS3(Z, W, P) :- RD(Z, W), RS3(W, P)
QS4(Z, W, P) :- RD(Z, W), RS4(W, P)|}

let test_approx_bucket_guard () =
  let mk cache =
    Engine.create ~plan:true ~domains:1 ~exact_threshold:0 ~shard_cache:cache
      (star_db ()) (star_queries ())
  in
  let eng = mk 512 in
  let fresh = mk 0 in
  ignore (request_exn "warm" eng (q1 ()));
  let stars =
    R.Stuple.Set.of_list
      [
        st "RS1" [ "w1"; "p1" ]; st "RS2" [ "w1"; "p2" ];
        st "RS3" [ "w1"; "p3" ]; st "RS4" [ "w1"; "p4" ];
      ]
  in
  Engine.delete eng stars;
  Engine.delete fresh stars;
  let p = request_exn "drifted" eng (q1 ()) in
  let f = request_exn "drifted" fresh (q1 ()) in
  Alcotest.(check int) "drifted bucket never splices" 0 p.Engine.shards_cached;
  let ex, fo, ap = tier_counts eng in
  Alcotest.(check int) "no reuse on any tier" 0 (ex + fo + ap);
  check_solutions_equal "drifted ≡ fresh" p.Engine.solutions f.Engine.solutions;
  Engine.close eng;
  Engine.close fresh

(* ---- the lockstep stream property ----

   Drive one mixed delete/insert/solve stream through a cached planner
   engine and a cache-less twin, both with the brute tier closed so
   every component answers on the forest or approximate tier — the
   tiers the decomposition machinery seeds. Bit-identical ranked
   solutions and shard decisions at every step, whatever mix of
   splits, seedings, refusals and re-solves the stream produces. *)
let check_lockstep_stream ?(scale = 6) seed =
  let rng = rng seed in
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng
      {
        Workload.Forest_family.default with
        num_relations = 4;
        tuples_per_relation = scale;
        num_queries = 3;
        deletion_fraction = 0.0;
      }
  in
  let queries = p.D.Problem.queries in
  let mk cache =
    Engine.create ~plan:true ~domains:1 ~exact_threshold:0 ~shard_cache:cache
      p.D.Problem.db queries
  in
  let eng = mk 512 in
  let fresh = mk 0 in
  for step = 1 to 10 do
    let tag = Printf.sprintf "splice seed %d step %d" seed step in
    let deletes =
      match R.Instance.stuples (Engine.db eng) with
      | [] -> R.Stuple.Set.empty
      | sts ->
        List.init
          (1 + Random.State.int rng 2)
          (fun _ -> List.nth sts (Random.State.int rng (List.length sts)))
        |> R.Stuple.Set.of_list
    in
    let delta = D.Delta.make ~deletes () in
    let a_e = Engine.apply_delta eng delta in
    let a_f = Engine.apply_delta fresh delta in
    Alcotest.check Util.stuple_set (tag ^ ": same deletes applied")
      a_f.D.Delta.deletes a_e.D.Delta.deletes;
    let prov_e, _ = Engine.index eng in
    match Test_engine.random_requests rng prov_e with
    | [] -> ()
    | reqs ->
      let p_e = request_exn tag eng reqs in
      let p_f = request_exn tag fresh reqs in
      check_solutions_equal (tag ^ " solutions") p_e.Engine.solutions
        p_f.Engine.solutions;
      check_decisions_equal (tag ^ " decisions") p_e.Engine.shards
        p_f.Engine.shards
  done;
  (* per-tier counters always recompose the total *)
  let s = Engine.stats eng in
  Alcotest.(check int) "tier counters sum to the total"
    s.Engine.fragment_reuses
    (s.Engine.fragment_reuses_exact + s.Engine.fragment_reuses_forest
   + s.Engine.fragment_reuses_approx);
  Engine.close eng;
  Engine.close fresh;
  true

let prop_lockstep =
  qcheck ~count:15 "splice: cached ≡ cache-less over mixed streams" seeds
    (fun seed -> check_lockstep_stream seed)

(* ---- incremental snapshot appends ---- *)

let fp hex =
  match D.Fingerprint.of_hex hex with
  | Some f -> f
  | None -> Alcotest.fail ("bad fingerprint hex: " ^ hex)

(* hand-built fold: a full image, then two delta groups — an upsert +
   removal + database delta each; [load] must return the state a full
   write at the second delta's moment would have produced *)
let test_append_fold () =
  with_paths (fun _jpath spath ->
      let base = Test_rewarm.sample_snapshot () in
      let fp1 = fp "0123456789abcdef" in
      let fp2 = fp "fedcba9876543210" in
      let fp3 = fp "00000000000000ff" in
      let entry f =
        match List.assoc_opt f base.S.entries with
        | Some e -> e
        | None -> Alcotest.fail "sample entry missing"
      in
      S.write spath base;
      (* group 1: drop fp2, refresh fp1's answer, delete a base fact *)
      let e1' = { (entry fp1) with D.Planner.e_cost = 9.5 } in
      let d1 =
        {
          S.d_position = 8;
          d_generation = base.S.generation;
          d_arena_fp = fp "00000000deadbe01";
          d_components = 4;
          d_dirty = [ 1 ];
          d_stats =
            { base.S.stats with D.Planner.s_hits = 12; s_fragment_reuses = 4 };
          d_removed = [ fp2 ];
          d_order = [ fp1; fp3 ];
          d_deletes = R.Stuple.Set.singleton (st "T1" [ "A"; "J1" ]);
          d_inserts = R.Stuple.Set.empty;
          d_upserts = [ (fp1, e1') ];
        }
      in
      S.append spath d1;
      (* group 2: a brand-new binding moves to the MRU front, the
         deleted fact comes back *)
      let e4 = { (entry fp3) with D.Planner.e_winner = "lowdeg" } in
      let fp4 = fp "1111111111111111" in
      let d2 =
        {
          d1 with
          S.d_position = 9;
          d_dirty = [];
          d_removed = [];
          d_order = [ fp4; fp1; fp3 ];
          d_deletes = R.Stuple.Set.empty;
          d_inserts = R.Stuple.Set.singleton (st "T1" [ "A"; "J1" ]);
          d_upserts = [ (fp4, e4) ];
        }
      in
      S.append spath d2;
      let t, dropped = load_exn "fold" spath in
      Alcotest.(check int) "nothing dropped" 0 dropped;
      Alcotest.(check int) "position is the last delta's" 9 t.S.position;
      Alcotest.(check int) "components follow" 4 t.S.components;
      Alcotest.(check bool) "dirty follows" true (t.S.dirty = []);
      Alcotest.(check int) "stats follow" 12 t.S.stats.D.Planner.s_hits;
      Alcotest.(check bool) "arena fp follows" true
        (D.Fingerprint.equal t.S.arena_fp d2.S.d_arena_fp);
      (* entries: fp2 removed, fp1 refreshed, fp4 added, MRU order d2's *)
      Alcotest.(check bool) "MRU order is the delta's" true
        (List.map fst t.S.entries = [ fp4; fp1; fp3 ]);
      let e1'' = List.assoc fp1 t.S.entries in
      Alcotest.(check bool) "upsert replaced the binding" true
        (Float.equal e1''.D.Planner.e_cost 9.5);
      Alcotest.(check string) "new binding decoded" "lowdeg"
        (List.assoc fp4 t.S.entries).D.Planner.e_winner;
      (* baseline: delete-then-reinsert cancels out *)
      (match (base.S.baseline, t.S.baseline) with
      | Some (g0, a0), Some (g, a) ->
        Alcotest.check Util.stuple_set "gone unchanged" g0 g;
        Alcotest.check Util.stuple_set "added unchanged" a0 a
      | _ -> Alcotest.fail "baseline dropped by the fold");
      (* a torn third group folds the clean prefix only *)
      Fun.protect
        ~finally:(fun () -> D.Failpoint.clear "snapshot.append")
        (fun () ->
          D.Failpoint.set "snapshot.append" (D.Failpoint.Crash_after_bytes 11);
          Alcotest.check_raises "torn append raises"
            (D.Failpoint.Injected "snapshot.append") (fun () ->
              S.append spath { d2 with S.d_position = 10 }));
      let t', dropped' = load_exn "torn tail" spath in
      Alcotest.(check int) "torn group ignored cleanly" 0 dropped';
      Alcotest.(check int) "clean prefix still folds" 9 t'.S.position;
      Alcotest.(check int) "entries unaffected" 3 (List.length t'.S.entries);
      (* ... and a later full write truncates the damage *)
      S.write spath base;
      let t'', _ = load_exn "rewrite" spath in
      Alcotest.(check int) "full write supersedes" base.S.position
        t''.S.position)

(* engine-level: between full images the engine appends one group per
   journalled round; the folded snapshot tracks the journal head, and a
   recovered session re-warms from it bit-identically *)
let test_engine_appends () =
  with_paths (fun jpath spath ->
      let mk ?(recover = false) () =
        Engine.create ~plan:true ~domains:1 ~journal:jpath ~snapshot:spath
          ~snapshot_every:4 ~recover
          (Test_compindex.split_db ())
          (Test_compindex.split_queries ())
      in
      let reqs =
        Test_compindex.q4 [ [ "Ann"; "J1"; "XML" ]; [ "Bob"; "J2"; "CUBE" ] ]
      in
      let eng = mk () in
      ignore (request_exn "warm" eng reqs);
      (* rounds 1-4: the 4th crosses [snapshot_every] — a full image *)
      del eng "T1" [ "Dan"; "J4" ];
      Engine.insert eng (st "T1" [ "Dan"; "J4" ]);
      del eng "T1" [ "Dan"; "J4" ];
      Engine.insert eng (st "T1" [ "Dan"; "J4" ]);
      let t, _ = load_exn "full image" spath in
      Alcotest.(check int) "full image at the boundary" 4 t.S.position;
      (* rounds 5-6: appended deltas keep the fold at the journal head *)
      ignore (request_exn "re-warm" eng reqs);
      del eng "T4" [ "ICDE"; "Rome" ];
      ignore (request_exn "post-split" eng reqs);
      Engine.insert eng (st "T1" [ "Eve"; "J4" ]);
      let t, dropped = load_exn "folded" spath in
      Alcotest.(check int) "nothing dropped" 0 dropped;
      Alcotest.(check int) "fold tracks the journal head" 6 t.S.position;
      let stats_live = Engine.stats eng in
      Alcotest.(check int) "folded reuse counters are live"
        stats_live.Engine.fragment_reuses
        t.S.stats.D.Planner.s_fragment_reuses;
      (* the uninterrupted answer to one more round *)
      let p_live = request_exn "live round" eng reqs in
      Engine.close eng;
      (* recovery folds the appended groups and starts warm *)
      let eng' = mk ~recover:true () in
      let s0 = Engine.stats eng' in
      (match s0.Engine.snapshot with
      | Engine.Warm _ -> ()
      | s ->
        Alcotest.fail
          (Format.asprintf "expected warm recovery, got %a"
             Engine.pp_snapshot_status s));
      (* the split-era splices ran on the exact tier (default threshold);
         their counter folds back through the appended groups *)
      Alcotest.(check int) "per-tier counters survive recovery"
        stats_live.Engine.fragment_reuses_exact s0.Engine.fragment_reuses_exact;
      let p_rec = request_exn "recovered round" eng' reqs in
      check_solutions_equal "recovered ≡ uninterrupted" p_rec.Engine.solutions
        p_live.Engine.solutions;
      check_decisions_equal "recovered decisions" p_rec.Engine.shards
        p_live.Engine.shards;
      Engine.close eng')

let suite =
  [
    Alcotest.test_case "forest tier: spliced fragment ≡ fresh solve" `Quick
      test_forest_splice;
    Alcotest.test_case "forest tier: undecomposed entries never seed" `Quick
      test_forest_undecomposed_guard;
    Alcotest.test_case "approx tier: spliced fragment ≡ fresh solve" `Quick
      test_approx_splice;
    Alcotest.test_case "approx tier: drifted bucket never seeds" `Quick
      test_approx_bucket_guard;
    prop_lockstep;
    Alcotest.test_case "snapshot appends fold bit-identically" `Quick
      test_append_fold;
    Alcotest.test_case "engine appends between full images" `Quick
      test_engine_appends;
  ]
