(* The tombstone arena regime: generation-stamped lazy deletion must be
   observationally identical to compact-every-round sessions — same
   solutions, same fingerprints, same partition labels, same recovery —
   with compaction an explicit, amortized event. The differential
   properties here drive the two regimes in lockstep; the unit tests pin
   the crash window between a committed delta and its compaction, the
   checkpoint-compacts invariant, the single-component cache routing and
   the proactive threshold-bucket eviction sweep. *)

open Util
module R = Relational
module D = Deleprop
module B = Setcover.Bitset

let seeds = QCheck2.Gen.int_range 0 10_000

(* ---- Arena.compact: idempotence and scratch equivalence ---- *)

let check_compact_idempotent family seed =
  let prov = family seed in
  let a = D.Arena.build prov in
  (* a freshly built arena has no tombstones: compact is the physical
     identity, not a copy *)
  Alcotest.(check bool) "compact of compact arena is physically it" true
    (D.Arena.compact a == a);
  Alcotest.(check bool) "fresh arena not tombstoned" false (D.Arena.tombstoned a);
  let rng = rng (seed + 13) in
  let n = D.Arena.num_stuples a in
  if n > 1 then begin
    let k = 1 + Random.State.int rng 2 in
    let dd = ref R.Stuple.Set.empty in
    for _ = 1 to k do
      dd := R.Stuple.Set.add a.D.Arena.stuples.(Random.State.int rng n) !dd
    done;
    let prov' = D.Provenance.delete prov !dd in
    let a' = D.Arena.delete a ~dd:!dd prov' in
    (* delete tombstones: slots never move *)
    Alcotest.(check bool) "delete shares the physical arrays" true
      (a'.D.Arena.stuples == a.D.Arena.stuples);
    Alcotest.(check bool) "delete tombstones" true (D.Arena.tombstoned a');
    Alcotest.(check bool) "ratio positive" true (D.Arena.tombstone_ratio a' > 0.0);
    Alcotest.(check int) "generation bumped" (a.D.Arena.generation + 1)
      a'.D.Arena.generation;
    let c1 = D.Arena.compact a' in
    Alcotest.(check bool) "compacted form has no tombstones" false
      (D.Arena.tombstoned c1);
    Alcotest.(check bool) "compacted ratio is zero" true
      (Float.equal (D.Arena.tombstone_ratio c1) 0.0);
    (* idempotence: a second compact is the physical identity *)
    Alcotest.(check bool) "compact idempotent" true (D.Arena.compact c1 == c1);
    (* and the compacted form is bit-identical to a scratch build *)
    Test_engine.check_arena_equal
      (Printf.sprintf "seed %d: compact (delete) = scratch" seed)
      c1 (D.Arena.build prov')
  end;
  true

let prop_compact_forest =
  qcheck ~count:50 "arena: compact (delete) = scratch build (forest)" seeds
    (check_compact_idempotent Test_decompose.forest_prov)

let prop_compact_random =
  qcheck ~count:50 "arena: compact (delete) = scratch build (random)" seeds
    (check_compact_idempotent Test_decompose.random_prov)

(* ---- lockstep differential: lazy tombstones ≡ compact every round ---- *)

(* Two sessions over the same database consume the same mixed
   delete/insert/solve stream: [eng_l] under the lazy regime
   (threshold 0.3, so the stream crosses it and real amortized
   compactions fire mid-run), [eng_e] eagerly compacting on every
   delete (the pre-tombstone behaviour). After every commit the live
   indexes must agree up to compaction — bit-identical arenas and
   partition labels once the lazy one compacts, equal content
   fingerprints *without* compacting — and every solve must rank
   bit-identical solutions. *)
let check_lazy_stream ~plan seed =
  let rng = rng seed in
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng
      {
        Workload.Forest_family.default with
        num_relations = 4;
        tuples_per_relation = 6;
        num_queries = 3;
        deletion_fraction = 0.0;
      }
  in
  let queries = p.D.Problem.queries in
  let mk ct =
    Engine.create ~plan ~domains:1 ~compact_threshold:ct p.D.Problem.db queries
  in
  let eng_l = mk 0.3 in
  let eng_e = mk 0.0 in
  let deleted_pool = ref [] in
  let check_indexes tag =
    let _, arena_l = Engine.index eng_l in
    let _, arena_e = Engine.index eng_e in
    (* the eager session never tombstones *)
    Alcotest.(check bool) (tag ^ ": eager arena compact") false
      (D.Arena.tombstoned arena_e);
    (* fingerprints are tombstone-invariant: equal without compacting *)
    Alcotest.(check bool) (tag ^ ": fingerprints agree") true
      (D.Fingerprint.equal (D.Fingerprint.arena arena_l)
         (D.Fingerprint.arena arena_e));
    Test_engine.check_arena_equal (tag ^ ": compact lazy = eager")
      (D.Arena.compact arena_l) arena_e;
    Test_engine.check_partition_equal (tag ^ ": partition labels")
      (D.Arena.compact_partition ~before:arena_l (Engine.partition eng_l))
      (Engine.partition eng_e);
    List.iter
      (fun (q : Cq.Query.t) ->
        Alcotest.check Util.tuple_set (tag ^ ": view " ^ q.name)
          (Engine.view eng_e q.name) (Engine.view eng_l q.name))
      queries
  in
  check_indexes "initial";
  for step = 1 to 10 do
    let tag = Printf.sprintf "lazy seed %d step %d" seed step in
    let deletes =
      match R.Instance.stuples (Engine.db eng_l) with
      | [] -> R.Stuple.Set.empty
      | sts ->
        List.init
          (1 + Random.State.int rng 2)
          (fun _ -> List.nth sts (Random.State.int rng (List.length sts)))
        |> R.Stuple.Set.of_list
    in
    let inserts =
      match !deleted_pool with
      | [] -> R.Stuple.Set.empty
      | st :: rest ->
        deleted_pool := rest;
        R.Stuple.Set.singleton st
    in
    let delta = D.Delta.make ~deletes ~inserts () in
    let a_l = Engine.apply_delta eng_l delta in
    let a_e = Engine.apply_delta eng_e delta in
    Alcotest.check Util.stuple_set (tag ^ ": same deletes applied")
      a_e.D.Delta.deletes a_l.D.Delta.deletes;
    Alcotest.check Util.stuple_set (tag ^ ": same inserts applied")
      a_e.D.Delta.inserts a_l.D.Delta.inserts;
    deleted_pool :=
      R.Stuple.Set.elements (R.Stuple.Set.diff a_l.D.Delta.deletes a_l.D.Delta.inserts)
      @ !deleted_pool;
    check_indexes tag;
    if step mod 3 = 0 then begin
      let prov_l, _ = Engine.index eng_l in
      match Test_engine.random_requests rng prov_l with
      | [] -> ()
      | reqs -> (
        match (Engine.request eng_l reqs, Engine.request eng_e reqs) with
        | Ok p_l, Ok p_e ->
          Test_engine.check_solutions_equal tag p_l.Engine.solutions
            p_e.Engine.solutions;
          (match (Engine.apply eng_l p_l, Engine.apply eng_e p_e) with
          | Some s_l, Some s_e ->
            Alcotest.check Util.stuple_set (tag ^ ": same solution applied")
              s_e.D.Solution.deleted s_l.D.Solution.deleted;
            deleted_pool :=
              R.Stuple.Set.elements s_l.D.Solution.deleted @ !deleted_pool
          | None, None -> ()
          | _ -> Alcotest.fail (tag ^ ": one session applied, the other not"));
          check_indexes (tag ^ " after solve")
        | Error e, _ | _, Error e ->
          Alcotest.fail (tag ^ ": " ^ D.Delta_request.error_to_string e))
    end
  done;
  check_indexes "final";
  let s_l = Engine.stats eng_l in
  let s_e = Engine.stats eng_e in
  (* the eager session never counts explicit compactions and never
     reports tombstones *)
  Alcotest.(check int) "eager: no explicit compactions" 0 s_e.Engine.compactions;
  Alcotest.(check bool) "eager: zero tombstone ratio" true
    (Float.equal s_e.Engine.tombstone_ratio 0.0);
  (* an explicit compact converges the lazy session to the eager form *)
  Engine.compact eng_l;
  let s_l' = Engine.stats eng_l in
  Alcotest.(check bool) "lazy: compactions monotone" true
    (s_l'.Engine.compactions >= s_l.Engine.compactions);
  Alcotest.(check bool) "lazy: ratio zero after compact" true
    (Float.equal s_l'.Engine.tombstone_ratio 0.0);
  Test_engine.check_arena_equal "post-compact index = eager index"
    (snd (Engine.index eng_l))
    (snd (Engine.index eng_e));
  Engine.close eng_l;
  Engine.close eng_e;
  true

let prop_lazy_stream_flat =
  qcheck ~count:10 "engine: lazy tombstones = eager (flat)" seeds
    (check_lazy_stream ~plan:false)

let prop_lazy_stream_planner =
  qcheck ~count:10 "engine: lazy tombstones = eager (planner)" seeds
    (check_lazy_stream ~plan:true)

(* ---- recovery: crash between a committed delta and its compaction ---- *)

let with_temp_journal f =
  let path = Filename.temp_file "deleprop_tomb" ".journal" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      let tmp = path ^ ".tmp" in
      if Sys.file_exists tmp then Sys.remove tmp)
    (fun () -> f path)

let mixed_problem seed =
  let rng = rng seed in
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng
      {
        Workload.Forest_family.default with
        num_relations = 4;
        tuples_per_relation = 6;
        num_queries = 3;
        deletion_fraction = 0.0;
      }
  in
  p

(* The journal records the delta at commit time; compaction is a pure
   in-memory reorganization that is never journaled. A session killed
   with tombstones outstanding (threshold 0.99 keeps the amortized
   trigger from firing) must recover to the same logical state. *)
let test_recovery_mid_tombstone () =
  with_temp_journal (fun path ->
      let p = mixed_problem 42 in
      let queries = p.D.Problem.queries in
      let mk ~recover =
        Engine.create ~plan:true ~domains:1 ~compact_threshold:0.99
          ~journal:path ~recover p.D.Problem.db queries
      in
      let eng1 = mk ~recover:false in
      let rng = rng 421 in
      for _ = 1 to 4 do
        match R.Instance.stuples (Engine.db eng1) with
        | [] -> ()
        | sts ->
          let st = List.nth sts (Random.State.int rng (List.length sts)) in
          Engine.delete eng1 (R.Stuple.Set.singleton st)
      done;
      let s1 = Engine.stats eng1 in
      Alcotest.(check bool) "crash point: tombstones outstanding" true
        (s1.Engine.tombstone_ratio > 0.0);
      Alcotest.(check int) "crash point: nothing compacted yet" 0
        s1.Engine.compactions;
      (* "crash": no close, no checkpoint — the journal holds every
         committed delete, the tombstones die with the process *)
      let eng2 = mk ~recover:true in
      Alcotest.(check bool) "recovered database" true
        (R.Instance.equal (Engine.db eng1) (Engine.db eng2));
      let _, a1 = Engine.index eng1 in
      let _, a2 = Engine.index eng2 in
      Test_engine.check_arena_equal "recovered index (up to compaction)"
        (D.Arena.compact a2) (D.Arena.compact a1);
      Alcotest.(check bool) "recovered fingerprint" true
        (D.Fingerprint.equal (D.Fingerprint.arena a2) (D.Fingerprint.arena a1));
      (* and both sessions keep answering identically *)
      let prov1, _ = Engine.index eng1 in
      (match Test_engine.random_requests (Util.rng 17) prov1 with
      | [] -> ()
      | reqs -> (
        match (Engine.request eng1 reqs, Engine.request eng2 reqs) with
        | Ok p1, Ok p2 ->
          Test_engine.check_solutions_equal "recovered ≡ survivor"
            p2.Engine.solutions p1.Engine.solutions
        | Error e, _ | _, Error e ->
          Alcotest.fail (D.Delta_request.error_to_string e)));
      Engine.close eng1;
      Engine.close eng2)

(* checkpoint compacts before writing: the durable baseline always
   corresponds to the compact index *)
let test_checkpoint_compacts () =
  with_temp_journal (fun path ->
      let p = mixed_problem 7 in
      let queries = p.D.Problem.queries in
      let eng =
        Engine.create ~plan:true ~domains:1 ~compact_threshold:0.99
          ~journal:path p.D.Problem.db queries
      in
      (match R.Instance.stuples (Engine.db eng) with
      | st :: _ -> Engine.delete eng (R.Stuple.Set.singleton st)
      | [] -> Alcotest.fail "empty instance");
      Alcotest.(check bool) "tombstoned before checkpoint" true
        ((Engine.stats eng).Engine.tombstone_ratio > 0.0);
      Engine.checkpoint eng;
      let s = Engine.stats eng in
      Alcotest.(check bool) "checkpoint compacted" true
        (Float.equal s.Engine.tombstone_ratio 0.0);
      Alcotest.(check int) "checkpoint counted one compaction" 1
        s.Engine.compactions;
      (* the checkpointed journal still recovers exactly *)
      let eng2 =
        Engine.create ~plan:true ~domains:1 ~compact_threshold:0.99
          ~journal:path ~recover:true p.D.Problem.db queries
      in
      Alcotest.(check bool) "checkpointed journal recovers" true
        (R.Instance.equal (Engine.db eng) (Engine.db eng2));
      Engine.close eng;
      Engine.close eng2)

(* ---- single-component rounds route through the shard cache ---- *)

(* three independent author/journal components (the shard-cache suite's
   instance): a ΔV touching exactly one component used to bypass the
   pipeline (n ≤ 1 solved whole, uncached); it must now classify,
   consult the cache, and splice on repeat *)
let test_single_component_cached () =
  let db = Test_shardcache.tri_db () in
  let queries = Test_shardcache.tri_queries () in
  let eng = Engine.create ~plan:true ~domains:1 db queries in
  let reqs =
    [ D.Delta_request.make ~view:"Q4" [ Test_shardcache.tri_view "A" "J1" ] ]
  in
  let p1 = Test_shardcache.request_exn "single round 1" eng reqs in
  Alcotest.(check bool) "single active component still decomposes" true
    p1.Engine.decomposed;
  Alcotest.(check int) "exactly one shard" 1 (List.length p1.Engine.shards);
  Alcotest.(check int) "cold cache: nothing spliced" 0 p1.Engine.shards_cached;
  let p2 = Test_shardcache.request_exn "single round 2" eng reqs in
  Alcotest.(check int) "identical repeat splices the single shard" 1
    p2.Engine.shards_cached;
  Test_engine.check_solutions_equal "spliced ≡ solved" p2.Engine.solutions
    p1.Engine.solutions;
  let s = Engine.stats eng in
  Alcotest.(check int) "stats: one lifetime shard cache hit" 1
    s.Engine.shard_cache_hits;
  Engine.close eng

(* ---- proactive threshold-bucket eviction ---- *)

(* an approximate-tier entry solved under one parent √‖V‖ bucket is
   swept out the first time the cache solves under another bucket —
   proactively, not lazily at splice time *)
let test_bucket_eviction () =
  let cache = D.Planner.create_cache () in
  let solve a = D.Planner.solve ~exact_threshold:1 ~domains:1 ~cache a in
  (* find an instance that stores an approximate-tier entry *)
  let rec find_approx s =
    if s > 500 then Alcotest.fail "no cacheable approximate shard in 500 seeds"
    else begin
      D.Planner.cache_clear cache;
      let a = D.Arena.build (Test_decompose.random_prov s) in
      let r = solve a in
      let ok =
        r.D.Planner.failures = []
        && List.exists
             (fun (d : D.Planner.shard_decision) ->
               d.D.Planner.classification = D.Planner.Approximate
               && not d.D.Planner.degraded)
             r.D.Planner.shards
        && D.Planner.cache_length cache > 0
      in
      if ok then a else find_approx (s + 1)
    end
  in
  let a = find_approx 0 in
  let bucket a = int_of_float (sqrt (float_of_int (D.Arena.live_vtuples a))) in
  let evictions0 = D.Planner.cache_evictions cache in
  (* same parent, same bucket: the sweep does not fire *)
  ignore (solve a);
  Alcotest.(check int) "same bucket, no eviction" evictions0
    (D.Planner.cache_evictions cache);
  (* a parent whose √‖V‖ bucket drifted: stale approximate entries
     sweep. The same family at every seed lands in the same bucket, so
     the drifted parent comes from a much smaller one. *)
  let small_prov seed =
    let p =
      Workload.Random_family.generate ~rng:(Util.rng seed)
        {
          Workload.Random_family.default with
          num_dimensions = 2;
          fact_tuples = 2;
          dim_tuples = 2;
          num_queries = 1;
          deletion_fraction = 0.5;
        }
    in
    D.Provenance.build p
  in
  let rec find_drifted s =
    if s > 1500 then Alcotest.fail "no bucket-drifted instance in 500 seeds"
    else
      let b = D.Arena.build (small_prov s) in
      if bucket b <> bucket a && D.Arena.num_vtuples b > 0 then b
      else find_drifted (s + 1)
  in
  let b = find_drifted 1000 in
  ignore (solve b);
  Alcotest.(check bool) "bucket drift evicts the stale approximate entry" true
    (D.Planner.cache_evictions cache > evictions0)

let suite =
  [
    prop_compact_forest;
    prop_compact_random;
    prop_lazy_stream_flat;
    prop_lazy_stream_planner;
    Alcotest.test_case "engine: recovery mid-tombstone" `Quick
      test_recovery_mid_tombstone;
    Alcotest.test_case "engine: checkpoint compacts first" `Quick
      test_checkpoint_compacts;
    Alcotest.test_case "planner: single component hits the shard cache" `Quick
      test_single_component_cached;
    Alcotest.test_case "planner: proactive bucket eviction" `Quick
      test_bucket_eviction;
  ]
