(* Resilience: time budgets with graceful degradation, failure-isolated
   portfolio fan-outs, the crash-recoverable session journal and the
   fault-injection registry driving all of it. The centerpiece is the
   randomized kill-point property: a journaled session killed mid-write
   at a random operation recovers and resumes to a state bit-identical
   to a session that was never interrupted. *)

open Util
module R = Relational
module D = Deleprop

let seeds = QCheck2.Gen.int_range 0 10_000

(* ---- Budget ---- *)

let test_budget_basic () =
  Alcotest.(check bool) "ms <= 0 is born expired" true
    (D.Budget.expired (D.Budget.of_ms 0.0));
  Alcotest.(check bool) "negative too" true (D.Budget.expired (D.Budget.of_ms (-5.0)));
  (* expiry is sticky: every tick raises, not just the first *)
  let b = D.Budget.of_ms 0.0 in
  for _ = 1 to 3 do
    Alcotest.check_raises "tick raises on expired budget" D.Budget.Expired (fun () ->
        D.Budget.tick b)
  done;
  Alcotest.(check bool) "remaining clamps at 0" true
    (Float.equal 0.0 (D.Budget.remaining_ms b));
  let generous = D.Budget.of_ms 1e9 in
  Alcotest.(check bool) "generous budget not expired" false (D.Budget.expired generous);
  D.Budget.tick generous;
  D.Budget.tick_o (Some generous);
  D.Budget.tick_o None;
  Alcotest.(check bool) "remaining positive" true (D.Budget.remaining_ms generous > 0.0);
  Alcotest.check_raises "NaN deadline rejected"
    (Invalid_argument "Budget.of_ms: NaN") (fun () -> ignore (D.Budget.of_ms Float.nan))

let test_budget_throttled_expiry () =
  (* a budget that expires while we sleep: the throttled probe must
     notice within one clock-read interval of ticks *)
  let b = D.Budget.of_ms 1.0 in
  Unix.sleepf 0.005;
  let raised = ref false in
  (try
     for _ = 0 to (2 * D.Budget.tick_mask) + 2 do
       D.Budget.tick b
     done
   with D.Budget.Expired -> raised := true);
  Alcotest.(check bool) "expiry detected within the throttle window" true !raised

(* ---- Failpoint ---- *)

let test_failpoint_parse () =
  let parsed = D.Failpoint.parse "a=raise, b=delay:5 ,c=crash_after_bytes:12," in
  Alcotest.(check int) "three entries" 3 (List.length parsed);
  Alcotest.(check bool) "raise" true (List.assoc "a" parsed = D.Failpoint.Raise);
  Alcotest.(check bool) "delay" true (List.assoc "b" parsed = D.Failpoint.Delay_ms 5);
  Alcotest.(check bool) "crash_after_bytes" true
    (List.assoc "c" parsed = D.Failpoint.Crash_after_bytes 12);
  let invalid spec =
    match D.Failpoint.parse spec with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unknown action rejected" true (invalid "a=bogus");
  Alcotest.(check bool) "missing = rejected" true (invalid "justaname");
  Alcotest.(check bool) "negative delay rejected" true (invalid "a=delay:-1");
  Alcotest.(check bool) "empty name rejected" true (invalid "=raise")

let test_failpoint_registry () =
  D.Failpoint.set "resil.x" D.Failpoint.Raise;
  Alcotest.check_raises "armed site raises" (D.Failpoint.Injected "resil.x") (fun () ->
      D.Failpoint.hit "resil.x");
  D.Failpoint.clear "resil.x";
  D.Failpoint.hit "resil.x" (* disarmed: no-op *);
  Alcotest.(check bool) "find after clear" true (D.Failpoint.find "resil.x" = None);
  D.Failpoint.set "resil.d" (D.Failpoint.Delay_ms 0);
  D.Failpoint.hit "resil.d" (* delay returns *);
  D.Failpoint.set "resil.c" (D.Failpoint.Crash_after_bytes 4);
  D.Failpoint.hit "resil.c" (* only the journal writer interprets this *);
  Alcotest.(check bool) "find sees the armed action" true
    (D.Failpoint.find "resil.c" = Some (D.Failpoint.Crash_after_bytes 4));
  D.Failpoint.clear "resil.d";
  D.Failpoint.clear "resil.c";
  (* the environment is read on first lookup after a reset — and only
     names some code path has registered are legal in it *)
  D.Failpoint.register "resil.env";
  let saved = Sys.getenv_opt "DELEPROP_FAILPOINTS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DELEPROP_FAILPOINTS" (Option.value ~default:"" saved);
      D.Failpoint.reset ())
    (fun () ->
      Unix.putenv "DELEPROP_FAILPOINTS" "resil.env=delay:7";
      D.Failpoint.reset ();
      Alcotest.(check bool) "env entry armed" true
        (D.Failpoint.find "resil.env" = Some (D.Failpoint.Delay_ms 7));
      (* programmatic clear shadows the environment entry *)
      D.Failpoint.clear "resil.env";
      Alcotest.(check bool) "clear shadows env" true
        (D.Failpoint.find "resil.env" = None);
      (* an unknown name in the environment is a loud, typed mistake —
         a typo'd site would otherwise arm nothing, silently *)
      Unix.putenv "DELEPROP_FAILPOINTS" "no.such.site=raise";
      D.Failpoint.reset ();
      (match D.Failpoint.find "resil.env" with
      | exception Invalid_argument msg ->
        Alcotest.(check bool) "error names the bad site" true
          (String.length msg > 0
          && Astring.String.is_infix ~affix:"no.such.site" msg)
      | _ -> Alcotest.fail "unknown env failpoint name accepted");
      (* the known-site registry is queryable and includes the engine's
         built-in sites *)
      let names = D.Failpoint.names () in
      List.iter
        (fun site ->
          Alcotest.(check bool) (site ^ " registered") true
            (List.mem site names))
        [
          "journal.append"; "journal.rewrite"; "snapshot.write";
          "snapshot.rename"; "snapshot.corrupt"; "solver.greedy";
        ])

(* ---- Par: pool validation, result dialect, concurrent shutdown ---- *)

let test_pool_validation () =
  let invalid f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "Pool.create ~domains:0" true
    (invalid (fun () -> D.Par.Pool.create ~domains:0 ()));
  Alcotest.(check bool) "Pool.create ~domains:-3" true
    (invalid (fun () -> D.Par.Pool.create ~domains:(-3) ()));
  Alcotest.(check bool) "Par.map ~domains:0" true
    (invalid (fun () -> D.Par.map ~domains:0 (fun x -> x) [ 1 ]));
  Alcotest.(check bool) "Par.map_result ~domains:0" true
    (invalid (fun () -> D.Par.map_result ~domains:0 (fun x -> x) [ 1 ]))

let test_map_result () =
  let f x = if x mod 2 = 0 then failwith (Printf.sprintf "boom %d" x) else x * 10 in
  let expect =
    [ Ok 10; Error (Failure "boom 2"); Ok 30; Error (Failure "boom 4"); Ok 50 ]
  in
  let check tag got =
    Alcotest.(check bool) tag true (got = expect)
  in
  check "sequential" (D.Par.map_result f [ 1; 2; 3; 4; 5 ]);
  check "fresh domains" (D.Par.map_result ~domains:2 f [ 1; 2; 3; 4; 5 ]);
  let pool = D.Par.Pool.create ~domains:3 () in
  check "pool" (D.Par.Pool.map_result pool f [ 1; 2; 3; 4; 5 ]);
  (* a failing job leaves the pool fully usable *)
  Alcotest.(check (list int)) "pool survives failures" [ 2; 3; 4 ]
    (D.Par.Pool.map pool (fun x -> x + 1) [ 1; 2; 3 ]);
  check "pool again" (D.Par.map_result ~pool f [ 1; 2; 3; 4; 5 ]);
  D.Par.Pool.shutdown pool;
  check "after shutdown: sequential" (D.Par.Pool.map_result pool f [ 1; 2; 3; 4; 5 ])

let test_pool_concurrent_shutdown () =
  let pool = D.Par.Pool.create ~domains:3 () in
  Alcotest.(check (list int)) "warm-up" [ 1; 2; 3 ]
    (D.Par.Pool.map pool (fun x -> x + 1) [ 0; 1; 2 ]);
  (* several domains racing to shut the same pool down: all return *)
  let racers =
    List.init 4 (fun _ -> Domain.spawn (fun () -> D.Par.Pool.shutdown pool))
  in
  D.Par.Pool.shutdown pool;
  List.iter Domain.join racers;
  Alcotest.(check (list int)) "degrades to sequential" [ 0; 2; 4 ]
    (D.Par.Pool.map pool (fun x -> 2 * x) [ 0; 1; 2 ]);
  D.Par.Pool.shutdown pool (* still idempotent *)

(* ---- Portfolio: failure isolation and the degradation ladder ---- *)

let fig1_arena () =
  let p = Workload.Author_journal.scenario_q4 () in
  D.Arena.build (D.Provenance.build p)

let is_crashed (f : D.Portfolio.failure) =
  match f.D.Portfolio.reason with D.Portfolio.Crashed _ -> true | _ -> false

let is_timed_out (f : D.Portfolio.failure) =
  f.D.Portfolio.reason = D.Portfolio.Timed_out

let test_portfolio_crash_isolated () =
  let a = fig1_arena () in
  Fun.protect
    ~finally:(fun () -> D.Failpoint.clear "solver.primal-dual")
    (fun () ->
      D.Failpoint.set "solver.primal-dual" D.Failpoint.Raise;
      let report = D.Portfolio.solutions_report a in
      Alcotest.(check bool) "primal-dual recorded as crashed" true
        (List.exists
           (fun (f : D.Portfolio.failure) ->
             f.D.Portfolio.algorithm = "primal-dual" && is_crashed f)
           report.D.Portfolio.failures);
      Alcotest.(check bool) "no primal-dual solution" false
        (List.exists
           (fun (s : D.Solution.t) -> s.D.Solution.algorithm = "primal-dual")
           report.D.Portfolio.solutions);
      Alcotest.(check bool) "siblings still answer" true
        (report.D.Portfolio.solutions <> []);
      Alcotest.(check bool) "not degraded: real solvers finished" false
        report.D.Portfolio.degraded;
      (* the same isolation holds on the parallel fan-out *)
      let par = D.Portfolio.solutions_report ~domains:2 a in
      Alcotest.(check bool) "parallel: crash isolated too" true
        (par.D.Portfolio.solutions <> []
        && List.exists
             (fun (f : D.Portfolio.failure) ->
               f.D.Portfolio.algorithm = "primal-dual")
             par.D.Portfolio.failures))

let test_portfolio_budget_degrades () =
  let a = fig1_arena () in
  (* an already-expired budget and a portfolio restricted to one budgeted
     solver: the round must still answer, via the unbudgeted greedy rung *)
  let report =
    D.Portfolio.solutions_report ~only:[ "primal-dual" ] ~budget_ms:0.0 a
  in
  Alcotest.(check bool) "primal-dual timed out" true
    (List.exists
       (fun (f : D.Portfolio.failure) ->
         f.D.Portfolio.algorithm = "primal-dual" && is_timed_out f)
       report.D.Portfolio.failures);
  Alcotest.(check bool) "degraded" true report.D.Portfolio.degraded;
  (match report.D.Portfolio.solutions with
  | [ s ] ->
    Alcotest.(check string) "ladder answer is greedy" "greedy"
      s.D.Solution.algorithm;
    Alcotest.(check bool) "feasible" true (D.Solution.feasible s);
    Alcotest.(check bool) "heuristic certificate" true
      (s.D.Solution.certificate = D.Solution.Heuristic)
  | ss ->
    Alcotest.fail
      (Printf.sprintf "expected exactly the ladder solution, got %d" (List.length ss)))

let test_portfolio_all_crash_degrades () =
  let a = fig1_arena () in
  let names = [ "brute"; "primal-dual"; "lowdeg"; "dp-tree"; "general"; "greedy" ] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun n -> D.Failpoint.clear ("solver." ^ n)) names)
    (fun () ->
      List.iter (fun n -> D.Failpoint.set ("solver." ^ n) D.Failpoint.Raise) names;
      let report = D.Portfolio.solutions_report a in
      Alcotest.(check bool) "every attempted solver crashed" true
        (report.D.Portfolio.failures <> []
        && List.for_all is_crashed report.D.Portfolio.failures);
      (* the ladder's greedy pass runs outside the registry *)
      Alcotest.(check bool) "degraded" true report.D.Portfolio.degraded;
      match report.D.Portfolio.solutions with
      | [ s ] -> Alcotest.(check bool) "ladder still answers" true (D.Solution.feasible s)
      | _ -> Alcotest.fail "expected the single ladder solution")

let test_lowdeg_budget () =
  let a = fig1_arena () in
  let unbudgeted = D.Lowdeg.solve_arena a in
  Alcotest.(check bool) "unbudgeted sweep is complete" true
    unbudgeted.D.Lowdeg.complete;
  let generous = D.Lowdeg.solve_arena ~budget:(D.Budget.of_ms 1e9) a in
  Alcotest.(check bool) "generous budget: same deletion" true
    (R.Stuple.Set.equal unbudgeted.D.Lowdeg.deletion generous.D.Lowdeg.deletion);
  Alcotest.(check bool) "generous budget: complete" true generous.D.Lowdeg.complete;
  (* born-expired budget: not a single threshold finishes *)
  Alcotest.check_raises "expired budget escapes" D.Budget.Expired (fun () ->
      ignore (D.Lowdeg.solve_arena ~budget:(D.Budget.of_ms 0.0) a))

(* ---- Journal: codec, torn writes, corruption ---- *)

let magic = "DLPJRNL1"

(* facts go through the serializer so values get the same typing a
   journal replay produces (numeric constants parse as [Int]) *)
let stf s =
  let rel, tuple = R.Serial.fact_of_string s in
  R.Stuple.make rel tuple

let record_equal (a : Engine.Journal.record) (b : Engine.Journal.record) =
  match (a, b) with
  | Engine.Journal.Apply x, Engine.Journal.Apply y
  | Engine.Journal.Delete x, Engine.Journal.Delete y ->
    R.Stuple.Set.equal x y
  | Engine.Journal.Insert x, Engine.Journal.Insert y -> R.Stuple.equal x y
  | ( Engine.Journal.Delta { deletes = d1; inserts = i1 },
      Engine.Journal.Delta { deletes = d2; inserts = i2 } ) ->
    R.Stuple.Set.equal d1 d2 && R.Stuple.Set.equal i1 i2
  | _ -> false

let records_equal a b = List.length a = List.length b && List.for_all2 record_equal a b

let with_temp_journal f =
  let path = Filename.temp_file "deleprop_resil" ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let sample_records =
  [
    Engine.Journal.Apply
      (R.Stuple.Set.of_list [ stf "T1(Tom, TKDE)"; stf "T2(TKDE, XML, 30)" ]);
    Engine.Journal.Delete R.Stuple.Set.empty;
    Engine.Journal.Insert (stf "T1(Ann, TODS)");
    Engine.Journal.Delete (R.Stuple.Set.singleton (stf "T1(Tom, TKDE)"));
    Engine.Journal.Delta
      {
        deletes = R.Stuple.Set.singleton (stf "T2(TKDE, XML, 30)");
        inserts = R.Stuple.Set.of_list [ stf "T1(Zoe, VLDB)"; stf "T2(TKDE, XML, 30)" ];
      };
  ]

let write_records path records =
  let w = Engine.Journal.open_writer path in
  List.iter (Engine.Journal.append w) records;
  Engine.Journal.close_writer w

let load_ok ?repair ?keep_going path =
  match Engine.Journal.load ?repair ?keep_going path with
  | Ok records -> records
  | Error e -> Alcotest.fail (Format.asprintf "%a" Engine.Journal.pp_error e)

let file_size path = (Unix.stat path).Unix.st_size

let append_raw path s =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

(* the record framing, reproduced byte for byte so tests can forge
   corrupt files: u32 LE length | u32 LE CRC-32(payload) | payload *)
let u32_le n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 (n land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 3 ((n lsr 24) land 0xFF);
  Bytes.unsafe_to_string b

let frame ?crc payload =
  let crc =
    match crc with
    | Some c -> c
    | None -> Int32.to_int (Engine.Journal.crc32 payload) land 0xFFFFFFFF
  in
  u32_le (String.length payload) ^ u32_le crc ^ payload

let test_journal_roundtrip () =
  with_temp_journal (fun path ->
      Sys.remove path;
      Alcotest.(check bool) "missing file loads empty" true (load_ok path = []);
      write_records path sample_records;
      Alcotest.(check bool) "round-trips" true
        (records_equal sample_records (load_ok path));
      (* appends accumulate across writer reopens *)
      write_records path [ List.hd sample_records ];
      Alcotest.(check bool) "reopen appends" true
        (records_equal
           (sample_records @ [ List.hd sample_records ])
           (load_ok path)))

let test_journal_crc32 () =
  (* the CRC-32/IEEE check value: crc("123456789") = 0xCBF43926 *)
  Alcotest.(check bool) "IEEE check value" true
    (Engine.Journal.crc32 "123456789" = 0xCBF43926l)

let test_journal_bad_magic () =
  with_temp_journal (fun path ->
      let oc = open_out_bin path in
      output_string oc "definitely not a journal";
      close_out oc;
      match Engine.Journal.load path with
      | Error (Engine.Journal.Bad_magic p) -> Alcotest.(check string) "path" path p
      | _ -> Alcotest.fail "expected Bad_magic")

let test_journal_torn_final () =
  with_temp_journal (fun path ->
      write_records path sample_records;
      let intact = file_size path in
      (* a torn header, then separately a torn payload, then a final
         record whose checksum fails: all three are dropped, and only
         [repair] shrinks the file *)
      List.iter
        (fun torn ->
          append_raw path torn;
          Alcotest.(check bool) "torn tail dropped" true
            (records_equal sample_records (load_ok path));
          Alcotest.(check bool) "no repair: file untouched" true
            (file_size path > intact);
          Alcotest.(check bool) "repair truncates" true
            (records_equal sample_records (load_ok ~repair:true path));
          Alcotest.(check int) "file back to the intact prefix" intact
            (file_size path))
        [
          "\x05";                                  (* 1 of 8 header bytes *)
          u32_le 1000 ^ u32_le 0 ^ "short";        (* payload shorter than length *)
          frame ~crc:42 "D";                       (* full final record, bad CRC *)
        ];
      (* a repaired journal keeps working *)
      write_records path [ Engine.Journal.Insert (stf "T1(Zoe, VLDB)") ];
      Alcotest.(check int) "append after repair" (List.length sample_records + 1)
        (List.length (load_ok path)))

let test_journal_interior_corrupt () =
  with_temp_journal (fun path ->
      let write_raw frames =
        let oc = open_out_bin path in
        output_string oc magic;
        List.iter (output_string oc) frames;
        close_out oc
      in
      (* checksum failure with a record after it: corruption, not a torn tail *)
      write_raw [ frame ~crc:42 "D"; frame "D" ];
      (match Engine.Journal.load path with
      | Error (Engine.Journal.Corrupt { index = 0; _ }) -> ()
      | _ -> Alcotest.fail "expected Corrupt at record 0");
      (* a checksummed payload that does not decode is corrupt wherever it
         sits — even in final position the bytes were written whole *)
      write_raw [ frame "D"; frame "Z\nwhat" ];
      (match Engine.Journal.load path with
      | Error (Engine.Journal.Corrupt { index = 1; _ }) -> ()
      | _ -> Alcotest.fail "expected Corrupt at record 1");
      (* corruption is an error even under repair *)
      match Engine.Journal.load ~repair:true path with
      | Error (Engine.Journal.Corrupt _) -> ()
      | _ -> Alcotest.fail "repair must not mask interior corruption")

let test_journal_crash_failpoint () =
  with_temp_journal (fun path ->
      Fun.protect
        ~finally:(fun () -> D.Failpoint.clear "journal.append")
        (fun () ->
          write_records path [ List.hd sample_records ];
          (* the writer dies 3 bytes into the next record: torn write *)
          D.Failpoint.set "journal.append" (D.Failpoint.Crash_after_bytes 3);
          let w = Engine.Journal.open_writer path in
          Alcotest.check_raises "injected crash" (D.Failpoint.Injected "journal.append")
            (fun () -> Engine.Journal.append w (List.nth sample_records 2));
          Engine.Journal.close_writer w;
          D.Failpoint.clear "journal.append";
          Alcotest.(check int) "torn record dropped on load" 1
            (List.length (load_ok ~repair:true path));
          (* an allowance larger than the record: the write completes
             before the injected kill, and recovery keeps it *)
          D.Failpoint.set "journal.append" (D.Failpoint.Crash_after_bytes 4096);
          let w = Engine.Journal.open_writer path in
          Alcotest.check_raises "kill after a complete write"
            (D.Failpoint.Injected "journal.append") (fun () ->
              Engine.Journal.append w (List.nth sample_records 2));
          Engine.Journal.close_writer w;
          D.Failpoint.clear "journal.append";
          Alcotest.(check int) "completed record recovered" 2
            (List.length (load_ok ~repair:true path))))

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_u32_le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

(* byte offset of data record [i]'s payload in the file — walks the
   frame chain, skipping the generation marker the writer now leads
   with *)
let payload_offset data i =
  let rec walk pos idx =
    let plen = read_u32_le data pos in
    let payload_start = pos + 8 in
    if data.[payload_start] = 'G' then walk (payload_start + plen) idx
    else if idx = i then payload_start
    else walk (payload_start + plen) (idx + 1)
  in
  walk (String.length magic) 0

let flip_byte path offset =
  let data = read_whole path in
  let b = Bytes.of_string data in
  Bytes.set b offset (Char.chr (Char.code (Bytes.get b offset) lxor 0x01));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

(* a single flipped bit in any record type — [A]pply, [D]elete,
   [I]nsert, [U] delta — is a typed [Corrupt] at that record's index,
   and [~keep_going] recovery salvages exactly the valid prefix *)
let test_journal_bitflip_every_tag () =
  (* one record of each tag, plus a trailing record so every flip is
     interior corruption (a checksum-failing *final* record is a torn
     tail by design, dropped silently) *)
  let records = sample_records @ [ Engine.Journal.Insert (stf "T1(Ned, ICDE)") ] in
  List.iteri
    (fun i (r : Engine.Journal.record) ->
      let tag =
        match r with
        | Engine.Journal.Apply _ -> "A"
        | Engine.Journal.Delete _ -> "D"
        | Engine.Journal.Insert _ -> "I"
        | Engine.Journal.Delta _ -> "U"
      in
      with_temp_journal (fun path ->
          write_records path records;
          flip_byte path (payload_offset (read_whole path) i);
          (match Engine.Journal.load path with
          | Error (Engine.Journal.Corrupt { index; _ }) ->
            Alcotest.(check int) (tag ^ ": Corrupt index") i index
          | Ok _ -> Alcotest.fail (tag ^ ": bit flip loaded cleanly")
          | Error e ->
            Alcotest.fail (Format.asprintf "%s: %a" tag Engine.Journal.pp_error e));
          (* corruption stays an error under repair... *)
          (match Engine.Journal.load ~repair:true path with
          | Error (Engine.Journal.Corrupt _) -> ()
          | _ -> Alcotest.fail (tag ^ ": repair masked the corruption"));
          (* ...and [keep_going] turns it into prefix salvage *)
          match Engine.Journal.load ~keep_going:true path with
          | Ok prefix ->
            Alcotest.(check bool) (tag ^ ": valid prefix salvaged") true
              (records_equal (List.filteri (fun j _ -> j < i) records) prefix)
          | Error e ->
            Alcotest.fail
              (Format.asprintf "%s keep_going: %a" tag Engine.Journal.pp_error e)))
    (List.filteri (fun i _ -> i < List.length records - 1) records);
  (* keep_going on an intact journal is the identity *)
  with_temp_journal (fun path ->
      write_records path records;
      Alcotest.(check bool) "keep_going, intact journal" true
        (records_equal records (load_ok ~keep_going:true path)))

(* ---- Journal segment rotation ---- *)

let sealed_segments path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".seg-" in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun e ->
         String.length e > String.length prefix
         && String.sub e 0 (String.length prefix) = prefix)
  |> List.sort compare

let with_temp_journal_segments f =
  with_temp_journal (fun path ->
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun e ->
              try Sys.remove (Filename.concat (Filename.dirname path) e)
              with Sys_error _ -> ())
            (sealed_segments path))
        (fun () -> f path))

let test_journal_rotation () =
  with_temp_journal_segments (fun path ->
      Sys.remove path;
      (* a tiny bound: every append crosses it, sealing one segment per
         record *)
      let w = Engine.Journal.open_writer ~segment_bytes:16 path in
      List.iter (Engine.Journal.append w) sample_records;
      Engine.Journal.close_writer w;
      Alcotest.(check bool) "appends sealed segments" true
        (List.length (sealed_segments path) >= List.length sample_records - 1);
      Alcotest.(check bool) "rotated journal replays in order" true
        (records_equal sample_records (load_ok path));
      (* reopening adopts the generation and keeps rotating *)
      let w = Engine.Journal.open_writer ~segment_bytes:16 path in
      Engine.Journal.append w (List.hd sample_records);
      Engine.Journal.close_writer w;
      Alcotest.(check bool) "reopen appends across rotation" true
        (records_equal (sample_records @ [ List.hd sample_records ]) (load_ok path));
      (* a torn write tears only the *active* file; every sealed record
         survives *)
      D.Failpoint.set "journal.append" (D.Failpoint.Crash_after_bytes 3);
      Fun.protect
        ~finally:(fun () -> D.Failpoint.clear "journal.append")
        (fun () ->
          let w = Engine.Journal.open_writer ~segment_bytes:16 path in
          Alcotest.check_raises "injected crash"
            (D.Failpoint.Injected "journal.append") (fun () ->
              Engine.Journal.append w (List.nth sample_records 2));
          Engine.Journal.close_writer w);
      Alcotest.(check bool) "sealed records survive the torn tail" true
        (records_equal
           (sample_records @ [ List.hd sample_records ])
           (load_ok ~repair:true path));
      (* rewrite: one baseline record, a bumped generation, stale
         segments unlinked *)
      Engine.Journal.rewrite path [ List.nth sample_records 4 ];
      Alcotest.(check int) "rewrite unlinks sealed segments" 0
        (List.length (sealed_segments path));
      Alcotest.(check bool) "rewrite leaves exactly the baseline" true
        (records_equal [ List.nth sample_records 4 ] (load_ok path));
      (* a stale sealed segment a crash left behind is ignored: its
         generation predates the active file's *)
      let stale = path ^ ".seg-0-99" in
      let oc = open_out_bin stale in
      output_string oc (magic ^ frame "D");
      close_out oc;
      Alcotest.(check bool) "stale-generation segment ignored" true
        (records_equal [ List.nth sample_records 4 ] (load_ok path));
      (* remove deletes the active file and every sealed segment *)
      Engine.Journal.remove path;
      Alcotest.(check bool) "remove clears everything" true
        ((not (Sys.file_exists path)) && sealed_segments path = []))

(* ---- Engine sessions over a journal ---- *)

let fig1 () = Workload.Author_journal.scenario_q4 ()

let q4 vs = R.Tuple.strs vs

let check_same_state tag (a : Engine.t) (b : Engine.t) queries =
  Alcotest.(check bool) (tag ^ ": same database") true
    (R.Instance.equal (Engine.db a) (Engine.db b));
  List.iter
    (fun (q : Cq.Query.t) ->
      Alcotest.check Util.tuple_set
        (Printf.sprintf "%s: view %s" tag q.Cq.Query.name)
        (Engine.view a q.Cq.Query.name)
        (Engine.view b q.Cq.Query.name))
    queries;
  let prov_a, arena_a = Engine.index a and prov_b, arena_b = Engine.index b in
  Test_engine.check_prov_equal (tag ^ ": index") prov_a prov_b;
  Test_engine.check_arena_equal (tag ^ ": arena") arena_a arena_b

let test_engine_journal_recover () =
  with_temp_journal (fun path ->
      let p = fig1 () in
      let db = p.D.Problem.db and queries = p.D.Problem.queries in
      let eng = Engine.create ~domains:1 ~journal:path db queries in
      Engine.delete eng (R.Stuple.Set.singleton (stf "T2(TODS, XML, 30)"));
      Engine.insert eng (stf "T1(Ann, TODS)");
      (match Engine.request eng [ D.Delta_request.make ~view:"Q4" [ q4 [ "John"; "TKDE"; "XML" ] ] ] with
      | Error e -> Alcotest.fail (D.Delta_request.error_to_string e)
      | Ok plan -> (
        match Engine.apply eng plan with
        | Some _ -> ()
        | None -> Alcotest.fail "fig1 round must be solvable"));
      let appended = (Engine.stats eng).Engine.journal_records in
      Alcotest.(check int) "three records appended" 3 appended;
      Engine.close eng;
      (* the same database recovers through the journal to the same state *)
      let rec_eng = Engine.create ~domains:1 ~journal:path ~recover:true db queries in
      Alcotest.(check int) "recovered every record" appended
        ((Engine.stats rec_eng).Engine.recovered_records);
      check_same_state "recovered" eng rec_eng queries;
      Engine.close rec_eng;
      (* without [recover] an existing journal is discarded, not replayed *)
      let fresh = Engine.create ~domains:1 ~journal:path db queries in
      Alcotest.(check int) "no recovery without ~recover" 0
        ((Engine.stats fresh).Engine.recovered_records);
      Alcotest.(check bool) "journal reset to empty" true (load_ok path = []);
      Alcotest.(check bool) "fresh session sees the base db" true
        (R.Instance.equal db (Engine.db fresh));
      Engine.close fresh)

let test_engine_checkpoint () =
  with_temp_journal (fun path ->
      let p = fig1 () in
      let db = p.D.Problem.db and queries = p.D.Problem.queries in
      let eng = Engine.create ~domains:1 ~journal:path db queries in
      (* several single-tuple deletes plus an insert: many records *)
      Engine.delete eng (R.Stuple.Set.singleton (stf "T2(TODS, XML, 30)"));
      Engine.delete eng (R.Stuple.Set.singleton (stf "T1(Tom, TKDE)"));
      Engine.insert eng (stf "T1(Ann, TODS)");
      Alcotest.(check int) "pre-compaction records" 3
        (List.length (load_ok path));
      Engine.checkpoint eng;
      (* compacted to the diff against the base db: one symmetric Delta
         record carrying both deletions and the insert *)
      let compacted = load_ok path in
      Alcotest.(check int) "compacted to the diff" 1 (List.length compacted);
      (match compacted with
      | [ Engine.Journal.Delta { deletes; inserts } ] ->
        Alcotest.(check int) "both deletions in the one record" 2
          (R.Stuple.Set.cardinal deletes);
        Alcotest.(check bool) "the insert survives" true
          (R.Stuple.Set.equal inserts (R.Stuple.Set.singleton (stf "T1(Ann, TODS)")))
      | _ -> Alcotest.fail "expected a single [Delta] after checkpoint");
      (* the session keeps appending after the compaction *)
      Engine.delete eng (R.Stuple.Set.singleton (stf "T1(Ann, TODS)"));
      let rec_eng = Engine.create ~domains:1 ~journal:path ~recover:true db queries in
      check_same_state "checkpoint + tail" eng rec_eng queries;
      Engine.close rec_eng;
      Engine.close eng)

(* a checkpoint killed mid-compaction must never lose the session: the
   rewrite is atomic, so recovery sees either the complete old log or
   the complete compacted one — both bit-identical to the killed
   session's committed state *)
let test_engine_checkpoint_crash () =
  with_temp_journal (fun path ->
      Fun.protect
        ~finally:(fun () ->
          D.Failpoint.clear "journal.rewrite";
          try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
        (fun () ->
          let p = fig1 () in
          let db = p.D.Problem.db and queries = p.D.Problem.queries in
          let run_to_checkpoint crash_bytes =
            let eng = Engine.create ~domains:1 ~journal:path db queries in
            Engine.delete eng (R.Stuple.Set.singleton (stf "T2(TODS, XML, 30)"));
            Engine.delete eng (R.Stuple.Set.singleton (stf "T1(Tom, TKDE)"));
            Engine.insert eng (stf "T1(Ann, TODS)");
            D.Failpoint.set "journal.rewrite"
              (D.Failpoint.Crash_after_bytes crash_bytes);
            Alcotest.check_raises "checkpoint dies at the failpoint"
              (D.Failpoint.Injected "journal.rewrite") (fun () ->
                Engine.checkpoint eng);
            D.Failpoint.clear "journal.rewrite";
            eng
          in
          (* killed a few bytes into the replacement image: the torn
             [.tmp] was never renamed, the full pre-checkpoint log
             survives and recovery replays it verbatim *)
          let eng = run_to_checkpoint 7 in
          Alcotest.(check int) "old log intact" 3 (List.length (load_ok path));
          let rec_eng = Engine.create ~domains:1 ~journal:path ~recover:true db queries in
          Alcotest.(check int) "all three records replayed" 3
            (Engine.stats rec_eng).Engine.recovered_records;
          check_same_state "crash mid-rewrite" eng rec_eng queries;
          Engine.close rec_eng;
          Engine.close eng;
          (* killed just after the rename: the compacted log is in
             place and recovery lands on the same state from it *)
          let eng = run_to_checkpoint max_int in
          Alcotest.(check int) "compacted log in place" 1
            (List.length (load_ok path));
          let rec_eng = Engine.create ~domains:1 ~journal:path ~recover:true db queries in
          check_same_state "crash post-rename" eng rec_eng queries;
          Engine.close rec_eng;
          Engine.close eng))

(* killed mid-append of an insert record: the in-memory patch had
   already committed when the write tore, but recovery only trusts the
   journal — it drops the torn record, replays the intact prefix
   (through the delta pipeline, no rebuild) and re-running the insert
   lands exactly where an uninterrupted session ends *)
let test_engine_crash_mid_insert () =
  with_temp_journal (fun path ->
      Fun.protect
        ~finally:(fun () -> D.Failpoint.clear "journal.append")
        (fun () ->
          let p = fig1 () in
          let db = p.D.Problem.db and queries = p.D.Problem.queries in
          let reference = Engine.create ~domains:1 db queries in
          Engine.delete reference (R.Stuple.Set.singleton (stf "T1(Tom, TKDE)"));
          Engine.insert reference (stf "T1(Ann, TODS)");
          let doomed = Engine.create ~domains:1 ~journal:path db queries in
          Engine.delete doomed (R.Stuple.Set.singleton (stf "T1(Tom, TKDE)"));
          D.Failpoint.set "journal.append" (D.Failpoint.Crash_after_bytes 5);
          Alcotest.check_raises "insert dies mid-append"
            (D.Failpoint.Injected "journal.append") (fun () ->
              Engine.insert doomed (stf "T1(Ann, TODS)"));
          D.Failpoint.clear "journal.append";
          Engine.close doomed;
          let revived =
            Engine.create ~domains:1 ~journal:path ~recover:true db queries
          in
          Alcotest.(check int) "torn insert record dropped" 1
            (Engine.stats revived).Engine.recovered_records;
          Engine.insert revived (stf "T1(Ann, TODS)");
          check_same_state "crash mid-insert" reference revived queries;
          Alcotest.(check int) "recovered session never rebuilt" 1
            (Engine.stats revived).Engine.rebuilds;
          Alcotest.(check bool) "the re-run insert was patched in" true
            ((Engine.stats revived).Engine.inserts_patched > 0);
          Engine.close revived;
          Engine.close reference))

let test_script_keep_going () =
  let p = fig1 () in
  let script =
    "solve Q4(John, TKDE, XML)\nsolve Q4(NoSuch, TKDE, XML)\ndelete T2(TODS, XML, 30)\n"
  in
  let lines =
    match Engine.Script.parse script with
    | Ok lines -> lines
    | Error e -> Alcotest.fail e
  in
  (* default: the replay stops at the failing line, quoting its text *)
  let eng = Engine.create ~domains:1 p.D.Problem.db p.D.Problem.queries in
  (match Engine.Script.replay eng lines with
  | Error e ->
    Alcotest.(check bool) "error quotes the script line" true
      (Astring.String.is_infix ~affix:"solve Q4(NoSuch, TKDE, XML)" e)
  | Ok _ -> Alcotest.fail "expected the replay to stop");
  Engine.close eng;
  (* keep_going: the failed round is recorded and the tail still runs *)
  let eng = Engine.create ~domains:1 p.D.Problem.db p.D.Problem.queries in
  (match Engine.Script.replay ~keep_going:true eng lines with
  | Error e -> Alcotest.fail e
  | Ok rounds ->
    Alcotest.(check int) "all rounds recorded" 3 (List.length rounds);
    let errors =
      List.map (fun (r : Engine.Script.round) -> r.Engine.Script.error <> None) rounds
    in
    Alcotest.(check (list bool)) "only the middle round failed"
      [ false; true; false ] errors;
    (match (List.nth rounds 1).Engine.Script.error with
    | Some msg ->
      Alcotest.(check bool) "failed round quotes its line" true
        (Astring.String.is_infix ~affix:"solve Q4(NoSuch, TKDE, XML)" msg)
    | None -> Alcotest.fail "middle round must carry its error");
    (* the delete after the failure really ran *)
    Alcotest.(check bool) "tail op applied" false
      (R.Instance.mem (Engine.db eng) (stf "T2(TODS, XML, 30)")));
  Engine.close eng

(* ---- the kill-point property: crash + recover = never crashed ---- *)

(* one concrete session operation, replayable on any engine at the same
   state (solvers are deterministic, so re-execution commits the same
   deletion the reference session committed) *)
type sop =
  | Osolve of D.Delta_request.t list
  | Odelete of R.Stuple.t
  | Oinsert of R.Stuple.t

(* returns [true] when the op appended a journal record: solve rounds
   journal exactly when a solution was applied, delete/insert always *)
let exec_op eng = function
  | Osolve reqs -> (
    match Engine.request eng reqs with
    | Error e -> Alcotest.fail (D.Delta_request.error_to_string e)
    | Ok plan -> ( match Engine.apply eng plan with Some _ -> true | None -> false))
  | Odelete stu ->
    Engine.delete eng (R.Stuple.Set.singleton stu);
    true
  | Oinsert stu ->
    Engine.insert eng stu;
    true

(* drop the op prefix the recovered journal already covers: [recovered]
   journaling ops, plus any interleaved non-journaling ops (state-less
   no-solution solves) *)
let rec resume_suffix recovered ops =
  if recovered = 0 then ops
  else
    match ops with
    | [] -> Alcotest.fail "journal recovered more records than ops committed"
    | (_, true) :: tl -> resume_suffix (recovered - 1) tl
    | (_, false) :: tl -> resume_suffix recovered tl

let check_crash_recovery seed =
  let rng = rng seed in
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng
      {
        Workload.Forest_family.default with
        num_relations = 3;
        tuples_per_relation = 5;
        num_queries = 2;
        deletion_fraction = 0.0;
      }
  in
  let db = p.D.Problem.db and queries = p.D.Problem.queries in
  (* reference run, never interrupted and never journaled; the ops it
     draws (with their journals-a-record flags) become the replay script *)
  let reference = Engine.create ~domains:1 db queries in
  let deleted_pool = ref [] in
  let ops = ref [] in
  for _ = 1 to 8 do
    match Random.State.int rng 3 with
    | 0 -> (
      let prov, _ = Engine.index reference in
      match Test_engine.random_requests rng prov with
      | [] -> ()
      | reqs ->
        let journaled = exec_op reference (Osolve reqs) in
        ops := (Osolve reqs, journaled) :: !ops)
    | 1 -> (
      match R.Instance.stuples (Engine.db reference) with
      | [] -> ()
      | sts ->
        let stu = List.nth sts (Random.State.int rng (List.length sts)) in
        let journaled = exec_op reference (Odelete stu) in
        deleted_pool := stu :: !deleted_pool;
        ops := (Odelete stu, journaled) :: !ops)
    | _ -> (
      match !deleted_pool with
      | [] -> ()
      | stu :: rest ->
        deleted_pool := rest;
        if not (R.Instance.mem (Engine.db reference) stu) then begin
          let journaled = exec_op reference (Oinsert stu) in
          ops := (Oinsert stu, journaled) :: !ops
        end)
  done;
  let ops = List.rev !ops in
  if ops = [] then begin
    Engine.close reference;
    true
  end
  else
    with_temp_journal (fun path ->
        (* the doomed run: journaled, and killed mid-append at a random
           byte of a random operation's record *)
        let crash_at = Random.State.int rng (List.length ops) in
        let crash_bytes = Random.State.int rng 48 in
        let doomed = Engine.create ~domains:1 ~journal:path db queries in
        Fun.protect
          ~finally:(fun () -> D.Failpoint.clear "journal.append")
          (fun () ->
            try
              List.iteri
                (fun i (op, _) ->
                  if i = crash_at then
                    D.Failpoint.set "journal.append"
                      (D.Failpoint.Crash_after_bytes crash_bytes);
                  ignore (exec_op doomed op))
                ops
            with D.Failpoint.Injected _ -> ());
        Engine.close doomed;
        (* recover on the base database and resume the remaining ops *)
        let revived = Engine.create ~domains:1 ~journal:path ~recover:true db queries in
        let recovered = (Engine.stats revived).Engine.recovered_records in
        List.iter
          (fun (op, _) -> ignore (exec_op revived op))
          (resume_suffix recovered ops);
        check_same_state (Printf.sprintf "seed %d" seed) reference revived queries;
        Engine.close revived;
        Engine.close reference;
        true)

let prop_crash_recovery =
  qcheck ~count:100 "journal: kill mid-write + recover = uninterrupted session" seeds
    check_crash_recovery

let suite =
  [
    Alcotest.test_case "budget: expiry, stickiness, validation" `Quick test_budget_basic;
    Alcotest.test_case "budget: throttled probe detects expiry" `Quick
      test_budget_throttled_expiry;
    Alcotest.test_case "failpoint: parse" `Quick test_failpoint_parse;
    Alcotest.test_case "failpoint: registry + environment" `Quick
      test_failpoint_registry;
    Alcotest.test_case "pool: domains < 1 rejected" `Quick test_pool_validation;
    Alcotest.test_case "par: map_result isolates failures" `Quick test_map_result;
    Alcotest.test_case "pool: concurrent shutdown" `Quick test_pool_concurrent_shutdown;
    Alcotest.test_case "portfolio: crashing solver isolated" `Quick
      test_portfolio_crash_isolated;
    Alcotest.test_case "portfolio: budget exhaustion degrades to greedy" `Quick
      test_portfolio_budget_degrades;
    Alcotest.test_case "portfolio: every solver dead, ladder answers" `Quick
      test_portfolio_all_crash_degrades;
    Alcotest.test_case "lowdeg: budgeted sweep" `Quick test_lowdeg_budget;
    Alcotest.test_case "journal: round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal: CRC-32 check value" `Quick test_journal_crc32;
    Alcotest.test_case "journal: bad magic" `Quick test_journal_bad_magic;
    Alcotest.test_case "journal: torn final record" `Quick test_journal_torn_final;
    Alcotest.test_case "journal: interior corruption" `Quick
      test_journal_interior_corrupt;
    Alcotest.test_case "journal: injected torn writes" `Quick
      test_journal_crash_failpoint;
    Alcotest.test_case "journal: bit flip in every record type" `Quick
      test_journal_bitflip_every_tag;
    Alcotest.test_case "journal: segment rotation" `Quick test_journal_rotation;
    Alcotest.test_case "engine: journal recover" `Quick test_engine_journal_recover;
    Alcotest.test_case "engine: checkpoint compaction" `Quick test_engine_checkpoint;
    Alcotest.test_case "engine: checkpoint killed mid-compaction" `Quick
      test_engine_checkpoint_crash;
    Alcotest.test_case "engine: crash mid-insert + recover" `Quick
      test_engine_crash_mid_insert;
    Alcotest.test_case "script: keep_going records failures" `Quick
      test_script_keep_going;
    prop_crash_recovery;
  ]
