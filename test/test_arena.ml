(* The arena compile step: interning consistency against the provenance
   index it lowers, and differential equivalence of the arena-backed
   solvers against the retained seed implementations — on all three
   workload families (forest / star-schema / hardness-reduced). *)

open Util
module R = Relational
module D = Deleprop
module B = Setcover.Bitset

(* ---- instance generators ---- *)

let forest_prov seed =
  let rng = rng seed in
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng
      { Workload.Forest_family.default with
        num_relations = 4; tuples_per_relation = 6; num_queries = 3;
        deletion_fraction = 0.4 }
  in
  D.Provenance.build p

let random_prov seed =
  let rng = rng seed in
  let p =
    Workload.Random_family.generate ~rng
      { Workload.Random_family.default with
        num_dimensions = 3; fact_tuples = 8; dim_tuples = 4; num_queries = 3;
        deletion_fraction = 0.4 }
  in
  D.Provenance.build p

let hard_prov seed =
  let rng = rng seed in
  let (h : D.Hardness.t), _ =
    Workload.Hard_family.generate ~rng
      { Workload.Hard_family.default with num_red = 4; num_blue = 4; num_sets = 5 }
  in
  D.Provenance.build h.D.Hardness.problem

let seeds = QCheck2.Gen.int_range 0 10_000

(* ---- interning consistency ---- *)

let strictly_ascending arr =
  let ok = ref true in
  for i = 1 to Array.length arr - 1 do
    if arr.(i - 1) >= arr.(i) then ok := false
  done;
  !ok

let check_arena_consistent prov =
  let a = D.Arena.build prov in
  Alcotest.(check int) "|D| source tuples"
    (R.Stuple.Map.cardinal prov.D.Provenance.containing)
    (D.Arena.num_stuples a);
  Alcotest.(check int) "|V| view tuples"
    (D.Vtuple.Set.cardinal (D.Provenance.all_vtuples prov))
    (D.Arena.num_vtuples a);
  (* id <-> tuple bijection *)
  Array.iteri
    (fun sid st -> Alcotest.(check int) "sid round-trip" sid (D.Arena.stuple_id a st))
    a.D.Arena.stuples;
  Array.iteri
    (fun vid vt -> Alcotest.(check int) "vid round-trip" vid (D.Arena.vtuple_id a vt))
    a.D.Arena.vtuples;
  (* witness rows = the witness map, in ascending id order *)
  Array.iteri
    (fun vid vt ->
      Alcotest.(check bool) "witness ascending" true (strictly_ascending a.D.Arena.witness.(vid));
      Alcotest.check stuple_set "witness row"
        (D.Provenance.witness_of prov vt)
        (D.Arena.to_stuple_set a (Array.to_list a.D.Arena.witness.(vid))))
    a.D.Arena.vtuples;
  (* containing rows = the containing map (witness inverted) *)
  Array.iteri
    (fun sid st ->
      Alcotest.(check bool) "containing ascending" true
        (strictly_ascending a.D.Arena.containing.(sid));
      Alcotest.check vtuple_set "containing row"
        (D.Provenance.vtuples_containing prov st)
        (Array.fold_left
           (fun acc vid -> D.Vtuple.Set.add a.D.Arena.vtuples.(vid) acc)
           D.Vtuple.Set.empty a.D.Arena.containing.(sid)))
    a.D.Arena.stuples;
  (* bad/preserved bitsets partition V and match the index *)
  Alcotest.(check bool) "bad bitset" true
    (B.equal a.D.Arena.bad (D.Arena.of_vtuple_set a prov.D.Provenance.bad));
  Alcotest.(check bool) "preserved bitset" true
    (B.equal a.D.Arena.preserved (D.Arena.of_vtuple_set a prov.D.Provenance.preserved));
  Alcotest.(check bool) "disjoint" true (B.disjoint a.D.Arena.bad a.D.Arena.preserved);
  Alcotest.(check bool) "cover V" true
    (B.equal (B.union a.D.Arena.bad a.D.Arena.preserved) (B.full (D.Arena.num_vtuples a)));
  (* weights *)
  Array.iteri
    (fun vid vt ->
      check_float "weight"
        (D.Weights.get prov.D.Provenance.problem.D.Problem.weights vt)
        a.D.Arena.weights.(vid))
    a.D.Arena.vtuples;
  (* candidates and preserved degrees agree with the set-based answers *)
  Alcotest.check stuple_set "candidate ids"
    (D.Provenance.candidates prov)
    (D.Arena.to_stuple_set a (Array.to_list (D.Arena.candidate_ids a)));
  Array.iteri
    (fun sid st ->
      let expect =
        D.Vtuple.Set.cardinal
          (D.Vtuple.Set.inter (D.Provenance.vtuples_containing prov st)
             prov.D.Provenance.preserved)
      in
      Alcotest.(check int) "preserved degree" expect (D.Arena.preserved_degree a sid))
    a.D.Arena.stuples

let test_arena_consistent_forest () = check_arena_consistent (forest_prov 11)
let test_arena_consistent_random () = check_arena_consistent (random_prov 12)
let test_arena_consistent_hard () = check_arena_consistent (hard_prov 13)

let test_arena_unknown_tuples () =
  let prov = forest_prov 5 in
  let a = D.Arena.build prov in
  let ghost = R.Stuple.make "nosuchrel" (R.Tuple.strs [ "x" ]) in
  Alcotest.(check bool) "stuple_id raises" true
    (try ignore (D.Arena.stuple_id a ghost); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "of_stuple_set drops" true
    (B.is_empty (D.Arena.of_stuple_set a (R.Stuple.Set.singleton ghost)))

let prop_arena_consistent =
  qcheck ~count:25 "arena: interning consistent on random forests" seeds (fun seed ->
      check_arena_consistent (forest_prov seed);
      true)

(* ---- differential: arena solvers vs seed implementations ---- *)

let pd_equal (a : D.Primal_dual.result) (b : D.Primal_dual.result) =
  R.Stuple.Set.equal a.D.Primal_dual.deletion b.D.Primal_dual.deletion
  && feq a.D.Primal_dual.outcome.D.Side_effect.cost b.D.Primal_dual.outcome.D.Side_effect.cost
  && a.D.Primal_dual.outcome.D.Side_effect.feasible
     = b.D.Primal_dual.outcome.D.Side_effect.feasible
  && feq a.D.Primal_dual.dual_value b.D.Primal_dual.dual_value
  && a.D.Primal_dual.forest_case = b.D.Primal_dual.forest_case
  && D.Vtuple.Map.equal feq a.D.Primal_dual.duals b.D.Primal_dual.duals

let lowdeg_equal (a : D.Lowdeg.result) (b : D.Lowdeg.result) =
  R.Stuple.Set.equal a.D.Lowdeg.deletion b.D.Lowdeg.deletion
  && feq a.D.Lowdeg.outcome.D.Side_effect.cost b.D.Lowdeg.outcome.D.Side_effect.cost
  && a.D.Lowdeg.outcome.D.Side_effect.feasible = b.D.Lowdeg.outcome.D.Side_effect.feasible
  && a.D.Lowdeg.tau = b.D.Lowdeg.tau
  && a.D.Lowdeg.pruned_wide = b.D.Lowdeg.pruned_wide

let pd_matches prov =
  pd_equal (D.Primal_dual.solve prov) (Reference.Pd_reference.solve_reference prov)
  && pd_equal
       (D.Primal_dual.solve ~reverse_delete:false prov)
       (Reference.Pd_reference.solve_reference ~reverse_delete:false prov)

let prop_pd_forest =
  qcheck ~count:60 "primal-dual: arena = seed on forests" seeds (fun seed ->
      pd_matches (forest_prov seed))

let prop_pd_random =
  qcheck ~count:40 "primal-dual: arena = seed on star schemas" seeds (fun seed ->
      pd_matches (random_prov seed))

let prop_pd_hard =
  qcheck ~count:40 "primal-dual: arena = seed on hard family" seeds (fun seed ->
      pd_matches (hard_prov seed))

let lowdeg_matches prov =
  lowdeg_equal (D.Lowdeg.solve prov) (Reference.Lowdeg_reference.solve_reference prov)
  && lowdeg_equal
       (D.Lowdeg.solve ~prune_wide:false prov)
       (Reference.Lowdeg_reference.solve_reference ~prune_wide:false prov)

let prop_lowdeg_forest =
  qcheck ~count:30 "lowdeg: arena sweep = seed sweep on forests" seeds (fun seed ->
      lowdeg_matches (forest_prov seed))

let prop_lowdeg_random =
  qcheck ~count:20 "lowdeg: arena sweep = seed sweep on star schemas" seeds (fun seed ->
      lowdeg_matches (random_prov seed))

let prop_lowdeg_hard =
  qcheck ~count:20 "lowdeg: arena sweep = seed sweep on hard family" seeds (fun seed ->
      lowdeg_matches (hard_prov seed))

let prop_lowdeg_domains =
  (* the parallel sweep partitions the same τ list: identical result *)
  qcheck ~count:10 "lowdeg: domains=2 = sequential" seeds (fun seed ->
      let prov = forest_prov seed in
      lowdeg_equal (D.Lowdeg.solve ~domains:2 prov) (D.Lowdeg.solve ~domains:1 prov))

let rb_solution_equal a b =
  match a, b with
  | None, None -> true
  | Some (a : Setcover.Red_blue.solution), Some (b : Setcover.Red_blue.solution) ->
    a.Setcover.Red_blue.chosen = b.Setcover.Red_blue.chosen
    && feq a.Setcover.Red_blue.cost b.Setcover.Red_blue.cost
    && Setcover.Iset.equal a.Setcover.Red_blue.red_covered b.Setcover.Red_blue.red_covered
  | _ -> false

let prop_rb_approx =
  qcheck ~count:100 "red-blue: bitset solve_approx = seed" seeds (fun seed ->
      let rng = rng seed in
      let t =
        Workload.Rbsc_gen.red_blue ~rng
          ~num_red:(1 + Random.State.int rng 8)
          ~num_blue:(1 + Random.State.int rng 8)
          ~num_sets:(2 + Random.State.int rng 10)
          ~red_density:0.3 ~blue_density:0.4
      in
      rb_solution_equal
        (Setcover.Red_blue.solve_approx t)
        (Reference.Rb_reference.solve_approx_reference t))

let suite =
  [
    Alcotest.test_case "arena: consistent (forest)" `Quick test_arena_consistent_forest;
    Alcotest.test_case "arena: consistent (star schema)" `Quick test_arena_consistent_random;
    Alcotest.test_case "arena: consistent (hard family)" `Quick test_arena_consistent_hard;
    Alcotest.test_case "arena: unknown tuples" `Quick test_arena_unknown_tuples;
    prop_arena_consistent;
    prop_pd_forest;
    prop_pd_random;
    prop_pd_hard;
    prop_lowdeg_forest;
    prop_lowdeg_random;
    prop_lowdeg_hard;
    prop_lowdeg_domains;
    prop_rb_approx;
  ]
