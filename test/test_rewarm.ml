(* Warm recovery: the snapshot codec, the degradation ladder, the
   snapshot failpoints, and the kill-point fuzz property showing a
   crashed-recovered-re-warmed session indistinguishable from one that
   never crashed — bit-identical solutions, shard decisions, partition
   sizes, and (at checkpoint boundaries) shard-cache hit counters. *)

open Util
module R = Relational
module D = Deleprop
module S = Engine.Snapshot

(* elevated in CI's recovery-fuzz step via DELEPROP_REWARM_COUNT *)
let fuzz_count =
  match Sys.getenv_opt "DELEPROP_REWARM_COUNT" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with Failure _ -> 40)
  | None -> 40

(* the three-component instance from the shard-cache suite: J1/J2/J3
   are independent, so a single-component delta leaves two shards
   clean — exactly what a snapshot is supposed to keep warm *)
let tri_db = Test_shardcache.tri_db
let tri_queries = Test_shardcache.tri_queries
let tri_view = Test_shardcache.tri_view
let request_exn = Test_shardcache.request_exn
let check_decisions_equal = Test_shardcache.check_decisions_equal
let check_solutions_equal = Test_engine.check_solutions_equal

let all_reqs () =
  [
    D.Delta_request.make ~view:"Q4"
      [ tri_view "A" "J1"; tri_view "B" "J2"; tri_view "C" "J3" ];
  ]

let with_paths f =
  let jpath = Filename.temp_file "deleprop_rewarm" ".journal" in
  let spath = jpath ^ ".snap" in
  Fun.protect
    ~finally:(fun () ->
      Engine.Journal.remove jpath;
      S.remove spath;
      try Sys.remove (spath ^ ".tmp") with Sys_error _ -> ())
    (fun () -> f jpath spath)

let fp hex =
  match D.Fingerprint.of_hex hex with
  | Some f -> f
  | None -> Alcotest.fail ("bad fingerprint hex: " ^ hex)

(* ---- the codec, round-tripped on hand-built data ---- *)

(* awkward floats on purpose: an unrepresentable decimal sum, a
   subnormal-adjacent tiny, infinity — the hex-bits encoding must bring
   every one back bit-identical *)
let sample_entries () =
  [
    ( fp "0123456789abcdef",
      {
        D.Planner.e_classification = D.Planner.Exact_small;
        e_winner = "brute";
        e_deleted =
          R.Stuple.Set.of_list
            [ st "T1" [ "A"; "J1" ]; st "T2" [ "J1"; "X"; "W1" ] ];
        e_cost = 0.1 +. 0.2;
        e_certificate = D.Solution.Exact;
        e_forest = false;
        e_threshold = Float.pi;
        e_split = true;
        e_decomposition =
          Some
            {
              D.Decomposition.d_vtuples = 4;
              d_parts =
                [
                  {
                    D.Decomposition.p_label = "g0";
                    p_deleted = R.Stuple.Set.singleton (st "T1" [ "A"; "J1" ]);
                    p_cost = 0.1 +. 0.2;
                    p_cert = D.Decomposition.Slice_exact;
                  };
                ];
              d_structure = D.Decomposition.Witness_groups;
            };
      } );
    ( fp "fedcba9876543210",
      {
        D.Planner.e_classification = D.Planner.Approximate;
        e_winner = "primal-dual";
        e_deleted = R.Stuple.Set.empty;
        e_cost = 1e-300;
        e_certificate =
          D.Solution.Composite { shards = 3; factor = Some (1. /. 3.) };
        e_forest = true;
        e_threshold = infinity;
        e_split = false;
        e_decomposition =
          Some
            {
              D.Decomposition.d_vtuples = 9;
              d_parts =
                [
                  {
                    D.Decomposition.p_label = "c A J1";
                    p_deleted = R.Stuple.Set.empty;
                    p_cost = 1e-300;
                    p_cert = D.Decomposition.Slice_ratio (2.0 *. Float.sqrt 9.0);
                  };
                  {
                    D.Decomposition.p_label = "c B J2";
                    p_deleted = R.Stuple.Set.singleton (st "T2" [ "J1"; "X"; "W1" ]);
                    p_cost = 0.0;
                    p_cert = D.Decomposition.Slice_heuristic;
                  };
                ];
              d_structure = D.Decomposition.Contributions;
            };
      } );
    ( fp "00000000000000ff",
      {
        D.Planner.e_classification = D.Planner.Exact_forest;
        e_winner = "forest-dp";
        e_deleted = R.Stuple.Set.singleton (st "T1" [ "B"; "J2" ]);
        e_cost = 42.0;
        e_certificate = D.Solution.Dual_bound 41.5;
        e_forest = true;
        e_threshold = Float.sqrt 6.0;
        e_split = false;
        e_decomposition =
          Some
            {
              D.Decomposition.d_vtuples = 6;
              d_parts =
                [
                  {
                    D.Decomposition.p_label = "t0";
                    p_deleted =
                      R.Stuple.Set.singleton (st "T1" [ "B"; "J2" ]);
                    p_cost = 42.0;
                    p_cert = D.Decomposition.Slice_exact;
                  };
                ];
              d_structure =
                D.Decomposition.Forest
                  [
                    {
                      D.Decomposition.ft_pivot =
                        R.Stuple.to_string (st "T1" [ "B"; "J2" ]);
                      ft_nodes =
                        [
                          ( R.Stuple.to_string (st "T1" [ "B"; "J2" ]),
                            {
                              D.Decomposition.fn_parent = None;
                              fn_depth = 0;
                              fn_cut = true;
                              fn_value = 42.0;
                              fn_slack = 0.0;
                            } );
                          ( R.Stuple.to_string (st "T2" [ "J1"; "X"; "W1" ]),
                            {
                              D.Decomposition.fn_parent =
                                Some (R.Stuple.to_string (st "T1" [ "B"; "J2" ]));
                              fn_depth = 1;
                              fn_cut = false;
                              fn_value = 0.25;
                              fn_slack = 1.5;
                            } );
                        ];
                    };
                  ];
            };
      } );
  ]

let sample_snapshot () =
  {
    S.position = 7;
    generation = 2;
    arena_fp = fp "00000000deadbeef";
    components = 3;
    dirty = [ 0; 2 ];
    stats =
      {
        D.Planner.s_hits = 11;
        s_misses = 4;
        s_evictions = 1;
        s_last_bucket = Some 5;
        s_fragment_reuses = 3;
        s_fragment_reuses_exact = 1;
        s_fragment_reuses_forest = 1;
        s_fragment_reuses_approx = 1;
      };
    baseline =
      Some
        ( R.Stuple.Set.singleton (st "T2" [ "J1"; "X"; "W1" ]),
          R.Stuple.Set.of_list [ st "T1" [ "A"; "J1" ]; st "T1" [ "B"; "J2" ] ]
        );
    entries = sample_entries ();
  }

let bits = Int64.bits_of_float

let check_entry_equal tag (e : D.Planner.cache_entry)
    (a : D.Planner.cache_entry) =
  Alcotest.(check bool) (tag ^ ": classification") true
    (e.D.Planner.e_classification = a.D.Planner.e_classification);
  Alcotest.(check string) (tag ^ ": winner") e.D.Planner.e_winner
    a.D.Planner.e_winner;
  Alcotest.(check bool) (tag ^ ": deleted set") true
    (R.Stuple.Set.equal e.D.Planner.e_deleted a.D.Planner.e_deleted);
  Alcotest.(check int64) (tag ^ ": cost bits") (bits e.D.Planner.e_cost)
    (bits a.D.Planner.e_cost);
  Alcotest.(check bool) (tag ^ ": certificate") true
    (e.D.Planner.e_certificate = a.D.Planner.e_certificate);
  Alcotest.(check bool) (tag ^ ": forest") e.D.Planner.e_forest
    a.D.Planner.e_forest;
  Alcotest.(check int64) (tag ^ ": threshold bits")
    (bits e.D.Planner.e_threshold)
    (bits a.D.Planner.e_threshold)

let load_snapshot_exn tag spath =
  match S.load spath with
  | Ok r -> r
  | Error w ->
    Alcotest.fail (Format.asprintf "%s: load failed: %a" tag S.pp_warning w)

let test_codec_roundtrip () =
  with_paths (fun _jpath spath ->
      let t = sample_snapshot () in
      S.write spath t;
      let t', dropped = load_snapshot_exn "round-trip" spath in
      Alcotest.(check int) "nothing dropped" 0 dropped;
      Alcotest.(check int) "position" t.S.position t'.S.position;
      Alcotest.(check int) "generation" t.S.generation t'.S.generation;
      Alcotest.(check bool) "arena fingerprint" true
        (D.Fingerprint.equal t.S.arena_fp t'.S.arena_fp);
      Alcotest.(check int) "components" t.S.components t'.S.components;
      Alcotest.(check (list int)) "dirty ids" t.S.dirty t'.S.dirty;
      Alcotest.(check bool) "cache counters" true (t.S.stats = t'.S.stats);
      (match (t.S.baseline, t'.S.baseline) with
      | Some (g, a), Some (g', a') ->
        Alcotest.(check bool) "baseline gone" true (R.Stuple.Set.equal g g');
        Alcotest.(check bool) "baseline added" true (R.Stuple.Set.equal a a')
      | _ -> Alcotest.fail "baseline did not round-trip");
      Alcotest.(check int) "entry count" (List.length t.S.entries)
        (List.length t'.S.entries);
      List.iteri
        (fun i ((f, e), (f', e')) ->
          let tag = Printf.sprintf "entry %d" i in
          Alcotest.(check bool) (tag ^ ": fingerprint") true
            (D.Fingerprint.equal f f');
          check_entry_equal tag e e')
        (List.combine t.S.entries t'.S.entries))

(* ---- the degradation ladder, straight on [load] ---- *)

let write_whole path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* forge a future-version snapshot: patch the "version 1" header line
   and re-stamp the frame's CRC so only the version is wrong *)
let set_header_version data v =
  let hlen = Test_resilience.read_u32_le data 8 in
  let payload = Bytes.of_string (String.sub data 16 hlen) in
  Bytes.set payload 10 v (* "H\nversion 1" — the digit sits at offset 10 *);
  let payload = Bytes.to_string payload in
  let crc = Int32.to_int (Engine.Journal.crc32 payload) land 0xFFFFFFFF in
  String.sub data 0 8
  ^ Test_resilience.u32_le hlen
  ^ Test_resilience.u32_le crc
  ^ payload
  ^ String.sub data (16 + hlen) (String.length data - 16 - hlen)

(* byte offset of the baseline payload: magic, header frame, then the
   baseline frame's own 8-byte header (every engine-written snapshot —
   and [sample_snapshot] — carries a baseline) *)
let baseline_offset data = 8 + 8 + Test_resilience.read_u32_le data 8 + 8

(* byte offset of the first entry payload: one more frame hop past the
   baseline *)
let first_entry_offset data =
  let b = 8 + 8 + Test_resilience.read_u32_le data 8 in
  b + 8 + Test_resilience.read_u32_le data b + 8

let expect_corrupt tag spath =
  match S.load spath with
  | Error (S.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail (tag ^ ": expected Corrupt, loaded cleanly")
  | Error w ->
    Alcotest.fail
      (Format.asprintf "%s: expected Corrupt, got %a" tag S.pp_warning w)

let test_load_ladder () =
  with_paths (fun _jpath spath ->
      (match S.load spath with
      | Error S.Missing -> ()
      | _ -> Alcotest.fail "expected Missing");
      write_whole spath "DLPSNAPX definitely not a snapshot";
      expect_corrupt "bad magic" spath;
      S.write spath (sample_snapshot ());
      let intact = Test_resilience.read_whole spath in
      (* torn mid-header *)
      write_whole spath (String.sub intact 0 12);
      expect_corrupt "torn header" spath;
      (* a bit flip inside the header frame drops the whole snapshot *)
      write_whole spath intact;
      Test_resilience.flip_byte spath 20;
      expect_corrupt "header bit flip" spath;
      (* a version this build does not read *)
      write_whole spath (set_header_version intact '9');
      (match S.load spath with
      | Error (S.Version_mismatch 9) -> ()
      | Ok _ -> Alcotest.fail "future version loaded"
      | Error w ->
        Alcotest.fail
          (Format.asprintf "expected Version_mismatch 9, got %a" S.pp_warning w));
      (* a bit flip inside the baseline frame drops only the baseline —
         the entries behind it still re-warm *)
      write_whole spath intact;
      Test_resilience.flip_byte spath (baseline_offset intact);
      let tb, droppedb = load_snapshot_exn "baseline bit flip" spath in
      Alcotest.(check bool) "baseline degrades to None" true
        (tb.S.baseline = None);
      Alcotest.(check int) "baseline damage counted" 1 droppedb;
      Alcotest.(check int) "entries behind it survive" 3
        (List.length tb.S.entries);
      (* a bit flip inside one entry drops exactly that entry *)
      write_whole spath intact;
      Test_resilience.flip_byte spath (first_entry_offset intact);
      let t', dropped = load_snapshot_exn "entry bit flip" spath in
      Alcotest.(check int) "one entry dropped" 1 dropped;
      Alcotest.(check int) "the others survive" 2 (List.length t'.S.entries);
      (* a torn tail drops the final entry, keeps the prefix *)
      write_whole spath (String.sub intact 0 (String.length intact - 5));
      let t'', dropped'' = load_snapshot_exn "torn entry tail" spath in
      Alcotest.(check int) "torn final entry dropped" 1 dropped'';
      Alcotest.(check int) "prefix survives" 2 (List.length t''.S.entries))

(* ---- the snapshot writer's failpoints ---- *)

let test_snapshot_failpoints () =
  with_paths (fun _jpath spath ->
      Fun.protect
        ~finally:(fun () ->
          D.Failpoint.clear "snapshot.write";
          D.Failpoint.clear "snapshot.corrupt";
          D.Failpoint.clear "snapshot.rename")
        (fun () ->
          let old = sample_snapshot () in
          S.write spath old;
          (* dying mid-temp-write never touches the committed file *)
          let nu = { old with S.position = 99 } in
          D.Failpoint.set "snapshot.write" (D.Failpoint.Crash_after_bytes 10);
          Alcotest.check_raises "torn snapshot write raises"
            (D.Failpoint.Injected "snapshot.write") (fun () ->
              S.write spath nu);
          D.Failpoint.clear "snapshot.write";
          let t', _ = load_snapshot_exn "after torn write" spath in
          Alcotest.(check int) "previous snapshot survives a torn write"
            old.S.position t'.S.position;
          (* an allowance covering the whole image: the rename commits
             before the injected kill *)
          D.Failpoint.set "snapshot.write"
            (D.Failpoint.Crash_after_bytes 1_000_000);
          Alcotest.check_raises "kill lands after the commit"
            (D.Failpoint.Injected "snapshot.write") (fun () ->
              S.write spath nu);
          D.Failpoint.clear "snapshot.write";
          let t', _ = load_snapshot_exn "after covered write" spath in
          Alcotest.(check int) "completed image is committed" 99 t'.S.position;
          (* dying between the rename and the checkpoint's journal mark:
             the new snapshot is already durable *)
          D.Failpoint.set "snapshot.rename" D.Failpoint.Raise;
          Alcotest.check_raises "rename-window kill"
            (D.Failpoint.Injected "snapshot.rename") (fun () ->
              S.write spath old);
          D.Failpoint.clear "snapshot.rename";
          let t', _ = load_snapshot_exn "after rename-window kill" spath in
          Alcotest.(check int) "snapshot committed before the kill"
            old.S.position t'.S.position;
          (* silent at-rest damage: a flipped bit in the committed
             header degrades, never crashes *)
          D.Failpoint.set "snapshot.corrupt" (D.Failpoint.Corrupt_byte 20);
          S.write spath old;
          D.Failpoint.clear "snapshot.corrupt";
          expect_corrupt "injected at-rest corruption" spath))

(* ---- engine integration ---- *)

let create_session ?(recover = false) jpath spath =
  Engine.create ~plan:true ~domains:1 ~journal:jpath ~snapshot:spath
    ~snapshot_every:1 ~recover (tri_db ()) (tri_queries ())

(* one warm session: a full round (fills all three cache slots), then a
   single-component insert — the append snapshots the warm cache with
   exactly J2's component dirty *)
let seed_session jpath spath =
  let eng = create_session jpath spath in
  ignore (request_exn "seed round" eng (all_reqs ()));
  Engine.insert eng (st "T1" [ "D"; "J2" ]);
  Engine.close eng

(* the uninterrupted twin of [seed_session] + one more round, journal-free *)
let reference_round () =
  let eng = Engine.create ~plan:true ~domains:1 (tri_db ()) (tri_queries ()) in
  ignore (request_exn "reference seed" eng (all_reqs ()));
  Engine.insert eng (st "T1" [ "D"; "J2" ]);
  let p = request_exn "reference round" eng (all_reqs ()) in
  Engine.close eng;
  p

let recover_and_round tag jpath spath =
  let eng = create_session ~recover:true jpath spath in
  let status = (Engine.stats eng).Engine.snapshot in
  let p = request_exn tag eng (all_reqs ()) in
  let stats = Engine.stats eng in
  Engine.close eng;
  (status, p, stats)

let test_snapshot_requires_journal () =
  match
    Engine.create ~plan:true ~domains:1 ~snapshot:"/tmp/never-written.snap"
      (tri_db ()) (tri_queries ())
  with
  | exception Invalid_argument _ -> ()
  | eng ->
    Engine.close eng;
    Alcotest.fail "~snapshot without ~journal must be rejected"

let test_fresh_session_clears_snapshot () =
  with_paths (fun jpath spath ->
      seed_session jpath spath;
      Alcotest.(check bool) "seed left a snapshot" true (Sys.file_exists spath);
      (* a non-recovering session starts from scratch: stale journal and
         snapshot are both discarded *)
      let eng = create_session jpath spath in
      Alcotest.(check bool) "fresh session discards the snapshot" false
        (Sys.file_exists spath);
      (match (Engine.stats eng).Engine.snapshot with
      | Engine.Cold -> ()
      | s ->
        Alcotest.fail
          (Format.asprintf "expected Cold, got %a" Engine.pp_snapshot_status s));
      Engine.close eng)

(* the acceptance shape: recovery installs the snapshot, and the first
   post-recovery round splices the two clean shards instead of
   re-solving the world *)
let test_recover_warm () =
  with_paths (fun jpath spath ->
      seed_session jpath spath;
      let refp = reference_round () in
      let status, p, stats = recover_and_round "first warm round" jpath spath in
      (match status with
      | Engine.Warm { entries; dropped } ->
        Alcotest.(check int) "all three entries re-warmed" 3 entries;
        Alcotest.(check int) "nothing dropped" 0 dropped
      | s ->
        Alcotest.fail
          (Format.asprintf "expected Warm, got %a" Engine.pp_snapshot_status s));
      Alcotest.(check int) "three shards" 3 (List.length p.Engine.shards);
      Alcotest.(check int) "the two clean shards splice" 2
        p.Engine.shards_cached;
      Alcotest.(check bool) "resolved strictly less than solved" true
        (stats.Engine.shards_resolved < stats.Engine.shards_solved);
      Alcotest.(check bool) "cache hits counted" true
        (stats.Engine.shard_cache_hits > 0);
      check_solutions_equal "warm recovery ≡ uninterrupted" p.Engine.solutions
        refp.Engine.solutions;
      check_decisions_equal "warm recovery decisions" p.Engine.shards
        refp.Engine.shards)

(* every damage shape: the typed warning lands in stats, the cache goes
   cold, and the answers never change *)
let test_recover_degraded () =
  let refp = reference_round () in
  let check_cold tag p =
    Alcotest.(check int) (tag ^ ": cold cache, nothing splices") 0
      p.Engine.shards_cached;
    check_solutions_equal (tag ^ " ≡ uninterrupted") p.Engine.solutions
      refp.Engine.solutions;
    check_decisions_equal (tag ^ " decisions") p.Engine.shards
      refp.Engine.shards
  in
  (* missing snapshot *)
  with_paths (fun jpath spath ->
      seed_session jpath spath;
      S.remove spath;
      let status, p, _ = recover_and_round "missing" jpath spath in
      (match status with
      | Engine.Degraded S.Missing -> ()
      | s ->
        Alcotest.fail
          (Format.asprintf "expected Degraded Missing, got %a"
             Engine.pp_snapshot_status s));
      check_cold "missing" p);
  (* corrupted header *)
  with_paths (fun jpath spath ->
      seed_session jpath spath;
      Test_resilience.flip_byte spath 20;
      let status, p, _ = recover_and_round "corrupt" jpath spath in
      (match status with
      | Engine.Degraded (S.Corrupt _) -> ()
      | s ->
        Alcotest.fail
          (Format.asprintf "expected Degraded Corrupt, got %a"
             Engine.pp_snapshot_status s));
      check_cold "corrupt" p);
  (* future version *)
  with_paths (fun jpath spath ->
      seed_session jpath spath;
      write_whole spath
        (set_header_version (Test_resilience.read_whole spath) '9');
      let status, p, _ = recover_and_round "version" jpath spath in
      (match status with
      | Engine.Degraded (S.Version_mismatch 9) -> ()
      | s ->
        Alcotest.fail
          (Format.asprintf "expected Degraded (Version_mismatch 9), got %a"
             Engine.pp_snapshot_status s));
      check_cold "version" p);
  (* stale coordinates: the journal the snapshot describes is gone *)
  with_paths (fun jpath spath ->
      seed_session jpath spath;
      Engine.Journal.remove jpath;
      let status, p, _ = recover_and_round "stale" jpath spath in
      (match status with
      | Engine.Degraded S.Stale -> ()
      | s ->
        Alcotest.fail
          (Format.asprintf "expected Degraded Stale, got %a"
             Engine.pp_snapshot_status s));
      (* the replayed state is the baseline here, so compare against a
         cold baseline session rather than [refp] *)
      Alcotest.(check int) "stale: cold cache" 0 p.Engine.shards_cached;
      let eng = Engine.create ~plan:true ~domains:1 (tri_db ()) (tri_queries ()) in
      let base = request_exn "baseline" eng (all_reqs ()) in
      Engine.close eng;
      check_solutions_equal "stale ≡ cold baseline" p.Engine.solutions
        base.Engine.solutions);
  (* one damaged entry: partial warmth, identical answers *)
  with_paths (fun jpath spath ->
      seed_session jpath spath;
      Test_resilience.flip_byte spath
        (first_entry_offset (Test_resilience.read_whole spath));
      let status, p, _ = recover_and_round "partial" jpath spath in
      (match status with
      | Engine.Warm { entries = 2; dropped = 1 } -> ()
      | s ->
        Alcotest.fail
          (Format.asprintf "expected Warm {entries = 2; dropped = 1}, got %a"
             Engine.pp_snapshot_status s));
      Alcotest.(check bool) "surviving clean entries still splice" true
        (p.Engine.shards_cached >= 1);
      check_solutions_equal "partial warmth ≡ uninterrupted"
        p.Engine.solutions refp.Engine.solutions;
      check_decisions_equal "partial warmth decisions" p.Engine.shards
        refp.Engine.shards)

(* killed exactly at a checkpoint, the restored cache counters are the
   crashed session's counters — the stats surface reports the same
   lifetime hit count the uninterrupted twin reports *)
let test_checkpoint_boundary_counters () =
  with_paths (fun jpath spath ->
      let twin = Engine.create ~plan:true ~domains:1 (tri_db ()) (tri_queries ()) in
      let eng = create_session jpath spath in
      List.iter
        (fun e ->
          ignore (request_exn "round 1" e (all_reqs ()));
          Engine.insert e (st "T1" [ "D"; "J2" ]);
          ignore (request_exn "round 2" e (all_reqs ())))
        [ twin; eng ];
      Engine.checkpoint eng;
      Engine.close eng (* the kill: nothing after the checkpoint *);
      let eng' = create_session ~recover:true jpath spath in
      (* 4 entries: one per component from round 1, plus round 2's entry
         for J2's post-insert fingerprint (the stale one ages out) *)
      (match (Engine.stats eng').Engine.snapshot with
      | Engine.Warm { entries = 4; dropped = 0 } -> ()
      | s ->
        Alcotest.fail
          (Format.asprintf "expected Warm {entries = 4; dropped = 0}, got %a"
             Engine.pp_snapshot_status s));
      let p' = request_exn "post-recovery round" eng' (all_reqs ()) in
      let p = request_exn "twin round" twin (all_reqs ()) in
      Alcotest.(check int) "both rounds splice everything"
        p.Engine.shards_cached p'.Engine.shards_cached;
      Alcotest.(check int) "lifetime hit counters bit-identical"
        (Engine.stats twin).Engine.shard_cache_hits
        (Engine.stats eng').Engine.shard_cache_hits;
      check_solutions_equal "checkpoint boundary ≡ twin" p'.Engine.solutions
        p.Engine.solutions;
      check_decisions_equal "checkpoint boundary decisions" p'.Engine.shards
        p.Engine.shards;
      Engine.close eng';
      Engine.close twin)

(* snapshot-covered sealed segments are reclaimed at recovery: the fast
   path replays only the tail, deletes the covered segment files, and
   the pruned journal still recovers a second time bit-identically *)
let test_sealed_segment_reclamation () =
  with_paths (fun jpath spath ->
      let seg_count () =
        let dir = Filename.dirname jpath in
        let prefix = Filename.basename jpath ^ ".seg-" in
        Array.fold_left
          (fun n f ->
            if String.length f >= String.length prefix
               && String.sub f 0 (String.length prefix) = prefix
            then n + 1
            else n)
          0 (Sys.readdir dir)
      in
      (* tiny segments force rotation on nearly every append *)
      let mk recover =
        Engine.create ~plan:true ~domains:1 ~journal:jpath ~snapshot:spath
          ~snapshot_every:1 ~segment_bytes:32 ~recover (tri_db ())
          (tri_queries ())
      in
      let twin =
        Engine.create ~plan:true ~domains:1 (tri_db ()) (tri_queries ())
      in
      let drive e =
        ignore (request_exn "seed round" e (all_reqs ()));
        Engine.insert e (st "T1" [ "D"; "J2" ]);
        Engine.insert e (st "T1" [ "E"; "J3" ]);
        Engine.delete e (R.Stuple.Set.singleton (st "T1" [ "D"; "J2" ]))
      in
      let eng = mk false in
      drive eng;
      drive twin;
      Engine.close eng;
      let before = seg_count () in
      Alcotest.(check bool) "the tiny segments actually rotated" true
        (before >= 2);
      let eng' = mk true in
      (match (Engine.stats eng').Engine.snapshot with
      | Engine.Warm _ -> ()
      | s ->
        Alcotest.fail
          (Format.asprintf "expected Warm, got %a" Engine.pp_snapshot_status s));
      Alcotest.(check bool)
        (Printf.sprintf "covered segments reclaimed (%d -> %d)" before
           (seg_count ()))
        true
        (seg_count () < before);
      let p' = request_exn "post-reclaim round" eng' (all_reqs ()) in
      let p = request_exn "twin round" twin (all_reqs ()) in
      check_solutions_equal "reclaimed recovery ≡ uninterrupted"
        p'.Engine.solutions p.Engine.solutions;
      check_decisions_equal "reclaimed recovery decisions" p'.Engine.shards
        p.Engine.shards;
      Alcotest.(check bool) "database identical" true
        (R.Instance.equal (Engine.db eng') (Engine.db twin));
      Engine.close eng';
      (* the pruned journal must stand on its own: recover again *)
      let eng'' = mk true in
      let p'' = request_exn "second recovery round" eng'' (all_reqs ()) in
      check_solutions_equal "second recovery ≡ uninterrupted"
        p''.Engine.solutions p.Engine.solutions;
      Alcotest.(check bool) "database still identical" true
        (R.Instance.equal (Engine.db eng'') (Engine.db twin));
      Engine.close eng'';
      Engine.close twin)

(* ---- the kill-point fuzz property ---- *)

type op = Round | Ins of string * string | Del of string * string

(* 10 rounds, 7 single-component deltas — inserts and deletes confined
   to one of J1/J2/J3 so clean components stay cacheable throughout *)
let script =
  [
    Round;
    Ins ("D", "J2");
    Round;
    Ins ("E", "J3");
    Round;
    Del ("D", "J2");
    Round;
    Ins ("F", "J1");
    Round;
    Round;
    Del ("E", "J3");
    Round;
    Ins ("G", "J2");
    Round;
    Del ("F", "J1");
    Round;
    Round;
  ]

let run_op eng tag = function
  | Round -> Some (request_exn tag eng (all_reqs ()))
  | Ins (a, j) ->
    Engine.insert eng (st "T1" [ a; j ]);
    None
  | Del (a, j) ->
    Engine.delete eng (R.Stuple.Set.singleton (st "T1" [ a; j ]));
    None

(* the uninterrupted reference: per-round plans, final database, final
   component count — computed once, shared by every fuzz iteration *)
let reference_run =
  lazy
    (let eng =
       Engine.create ~plan:true ~domains:1 (tri_db ()) (tri_queries ())
     in
     let rounds = List.filter_map (fun o -> run_op eng "reference" o) script in
     let db = Engine.db eng in
     let components = (Engine.stats eng).Engine.components in
     Engine.close eng;
     (rounds, db, components))

let rec drop n = function
  | l when n <= 0 -> l
  | [] -> []
  | _ :: tl -> drop (n - 1) tl

(* kill the session at step [k] — either cleanly between steps or with
   a torn journal append at step [k] itself — then recover, finish the
   script, and demand the uninterrupted run's results to the bit *)
let check_kill_point (k, torn) =
  with_paths (fun jpath spath ->
      let ref_rounds, ref_db, ref_components = Lazy.force reference_run in
      let eng = create_session jpath spath in
      let pre_rounds = ref 0 in
      List.iteri
        (fun i o ->
          if i < k then
            match run_op eng "pre-crash" o with
            | Some _ -> incr pre_rounds
            | None -> ())
        script;
      (* a torn append: the in-memory state moved, the journal did not —
         recovery must land on the pre-op state and the op re-runs *)
      (if torn then
         match List.nth script k with
         | Round -> ()
         | (Ins _ | Del _) as o ->
           D.Failpoint.set "journal.append" (D.Failpoint.Crash_after_bytes 3);
           (try ignore (run_op eng "torn op" o)
            with D.Failpoint.Injected _ -> ());
           D.Failpoint.clear "journal.append");
      Engine.close eng;
      let eng' = create_session ~recover:true jpath spath in
      (* never an error; warm from the first delta append onward *)
      (match (Engine.stats eng').Engine.snapshot with
      | Engine.Warm _ when k >= 2 -> ()
      | Engine.Degraded S.Missing when k < 2 -> ()
      | s ->
        Alcotest.fail
          (Format.asprintf "kill at %d: unexpected snapshot status %a" k
             Engine.pp_snapshot_status s));
      let post_rounds =
        List.filteri (fun i _ -> i >= k) script
        |> List.filter_map (fun o -> run_op eng' "post-recovery" o)
      in
      List.iteri
        (fun i (rp, p) ->
          let tag = Printf.sprintf "kill at %d, round %d" k (!pre_rounds + i) in
          check_solutions_equal (tag ^ " ≡ uninterrupted") p.Engine.solutions
            rp.Engine.solutions;
          check_decisions_equal (tag ^ " decisions") p.Engine.shards
            rp.Engine.shards)
        (List.combine (drop !pre_rounds ref_rounds) post_rounds);
      Alcotest.(check bool) "final database identical" true
        (R.Instance.equal (Engine.db eng') ref_db);
      Alcotest.(check int) "final partition size identical" ref_components
        (Engine.stats eng').Engine.components;
      Engine.close eng';
      true)

let prop_kill_point =
  qcheck ~count:fuzz_count "rewarm: kill + recover + re-warm ≡ uninterrupted"
    QCheck2.Gen.(pair (int_range 1 (List.length script - 1)) bool)
    check_kill_point

let suite =
  [
    Alcotest.test_case "snapshot codec round-trips bit-identically" `Quick
      test_codec_roundtrip;
    Alcotest.test_case "snapshot load: the degradation ladder" `Quick
      test_load_ladder;
    Alcotest.test_case "snapshot failpoints: torn, committed, at-rest" `Quick
      test_snapshot_failpoints;
    Alcotest.test_case "engine: ~snapshot requires ~journal" `Quick
      test_snapshot_requires_journal;
    Alcotest.test_case "engine: fresh sessions discard stale snapshots" `Quick
      test_fresh_session_clears_snapshot;
    Alcotest.test_case "engine: recovery re-warms the shard cache" `Quick
      test_recover_warm;
    Alcotest.test_case "engine: every damage shape degrades to cold" `Quick
      test_recover_degraded;
    Alcotest.test_case "checkpoint boundary: counters bit-identical" `Quick
      test_checkpoint_boundary_counters;
    Alcotest.test_case "recovery reclaims snapshot-covered segments" `Quick
      test_sealed_segment_reclamation;
    prop_kill_point;
  ]
