(* Shatter-and-plan: the set-cover decomposition, the arena's component
   partition (scratch and incrementally maintained), honest shard
   arenas, planner differentials against the whole-instance portfolio,
   and the engine's planner sessions. *)

open Util
module R = Relational
module D = Deleprop
module SC = Setcover
module B = Setcover.Bitset

let seeds = QCheck2.Gen.int_range 0 10_000

(* ---- instance families ---- *)

let forest_prov seed =
  let rng = rng seed in
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng
      { Workload.Forest_family.default with
        num_relations = 4; tuples_per_relation = 6; num_queries = 3;
        deletion_fraction = 0.4 }
  in
  D.Provenance.build p

(* many independent root components by construction *)
let pivot_prov ?(num_roots = 5) ?(tuples_per_relation = 4) seed =
  let rng = rng seed in
  let p =
    Workload.Pivot_family.generate ~rng
      { Workload.Pivot_family.depth = 3; num_roots; tuples_per_relation;
        num_queries = 2; deletion_fraction = 0.4 }
  in
  D.Provenance.build p

let random_prov seed =
  let rng = rng seed in
  let p =
    Workload.Random_family.generate ~rng
      { Workload.Random_family.default with
        num_dimensions = 3; fact_tuples = 8; dim_tuples = 4; num_queries = 3;
        deletion_fraction = 0.4 }
  in
  D.Provenance.build p

(* ---- red-blue set cover decomposition ---- *)

let random_rb rng =
  Workload.Rbsc_gen.red_blue ~rng
    ~num_red:(3 + Random.State.int rng 5)
    ~num_blue:(3 + Random.State.int rng 5)
    ~num_sets:(2 + Random.State.int rng 6)
    ~red_density:0.3 ~blue_density:0.3

let check_rb_shatter (t : SC.Red_blue.t) =
  let shards = SC.Decompose.shatter t in
  let set_seen = Array.make (SC.Red_blue.num_sets t) 0 in
  let red_seen = Array.make (SC.Red_blue.num_red t) 0 in
  let blue_seen = Array.make t.SC.Red_blue.num_blue 0 in
  Array.iter
    (fun (sh : SC.Decompose.shard) ->
      Array.iter (fun s -> set_seen.(s) <- set_seen.(s) + 1) sh.SC.Decompose.sets;
      Array.iter (fun r -> red_seen.(r) <- red_seen.(r) + 1) sh.SC.Decompose.reds;
      Array.iter (fun b -> blue_seen.(b) <- blue_seen.(b) + 1) sh.SC.Decompose.blues;
      (* the shard instance's sets are the global sets, remapped *)
      Array.iteri
        (fun l g ->
          let local = sh.SC.Decompose.instance.SC.Red_blue.sets.(l) in
          let back f = SC.Iset.map (fun i -> f i) in
          Alcotest.(check bool) "set red remap" true
            (SC.Iset.equal
               (back (fun i -> sh.SC.Decompose.reds.(i)) local.SC.Red_blue.red)
               t.SC.Red_blue.sets.(g).SC.Red_blue.red);
          Alcotest.(check bool) "set blue remap" true
            (SC.Iset.equal
               (back (fun i -> sh.SC.Decompose.blues.(i)) local.SC.Red_blue.blue)
               t.SC.Red_blue.sets.(g).SC.Red_blue.blue))
        sh.SC.Decompose.sets)
    shards;
  Array.iter (fun n -> Alcotest.(check int) "each set in one shard" 1 n) set_seen;
  Array.iter (fun n -> Alcotest.(check int) "each blue in one shard" 1 n) blue_seen;
  (* reds may be untouched by every set; those appear in no shard *)
  Array.iter
    (fun n -> Alcotest.(check bool) "red in at most one shard" true (n <= 1))
    red_seen;
  (* connectivity: sets sharing an element land in the same shard *)
  let shard_of_set = Array.make (SC.Red_blue.num_sets t) (-1) in
  Array.iteri
    (fun i (sh : SC.Decompose.shard) ->
      Array.iter (fun s -> shard_of_set.(s) <- i) sh.SC.Decompose.sets)
    shards;
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j sj ->
          if i < j
             && (not
                   (SC.Iset.disjoint si.SC.Red_blue.red sj.SC.Red_blue.red
                   && SC.Iset.disjoint si.SC.Red_blue.blue sj.SC.Red_blue.blue))
          then
            Alcotest.(check int) "sharing sets same shard" shard_of_set.(i)
              shard_of_set.(j))
        t.SC.Red_blue.sets)
    t.SC.Red_blue.sets

let prop_rb_shatter =
  qcheck ~count:100 "setcover: shatter partitions the instance" seeds (fun seed ->
      check_rb_shatter (random_rb (rng seed));
      true)

let prop_rb_exact =
  qcheck ~count:100 "setcover: decomposed exact = direct exact" seeds (fun seed ->
      let t = random_rb (rng seed) in
      let direct = SC.Red_blue.solve_exact t in
      let dec = SC.Decompose.solve ~solver:(fun i -> SC.Red_blue.solve_exact i) t in
      match (direct, dec) with
      | None, None -> true
      | Some a, Some b -> feq a.SC.Red_blue.cost b.SC.Red_blue.cost
      | _ -> false)

let prop_rb_approx =
  qcheck ~count:100 "setcover: decomposed approx stays feasible" seeds
    (fun seed ->
      let t = random_rb (rng seed) in
      match SC.Decompose.solve ~solver:(fun i -> SC.Red_blue.solve_approx i) t with
      | None -> not (SC.Red_blue.coverable t)
      | Some s -> SC.Red_blue.is_feasible t s.SC.Red_blue.chosen)

(* ---- arena partition ---- *)

let partition_equal (a : D.Arena.partition) (b : D.Arena.partition) =
  a.D.Arena.num_components = b.D.Arena.num_components
  && a.D.Arena.comp_of_sid = b.D.Arena.comp_of_sid
  && a.D.Arena.comp_of_vid = b.D.Arena.comp_of_vid

let check_partition_invariants (a : D.Arena.t) (p : D.Arena.partition) =
  (* witness rows are monochromatic and name the view tuple's component *)
  Array.iteri
    (fun vid row ->
      if Array.length row = 0 then
        Alcotest.(check int) "empty witness comp" (-1) p.D.Arena.comp_of_vid.(vid)
      else begin
        let c = p.D.Arena.comp_of_sid.(row.(0)) in
        Array.iter
          (fun sid ->
            Alcotest.(check int) "witness monochromatic" c
              p.D.Arena.comp_of_sid.(sid))
          row;
        Alcotest.(check int) "comp_of_vid" c p.D.Arena.comp_of_vid.(vid)
      end)
    a.D.Arena.witness;
  (* canonical numbering: component ids appear for the first time in
     ascending sid order, densely from 0 *)
  let next = ref 0 in
  Array.iter
    (fun c ->
      if c = !next then incr next
      else Alcotest.(check bool) "canonical labels" true (c >= 0 && c < !next))
    p.D.Arena.comp_of_sid;
  Alcotest.(check int) "num_components" !next p.D.Arena.num_components

let check_partition_family family seed =
  let prov = family seed in
  let a = D.Arena.build prov in
  check_partition_invariants a (D.Arena.partition a);
  true

let prop_partition_forest =
  qcheck ~count:50 "arena: partition invariants (forest)" seeds
    (check_partition_family forest_prov)

let prop_partition_random =
  qcheck ~count:50 "arena: partition invariants (random)" seeds
    (check_partition_family random_prov)

(* random deletion streams: the patched partition must be bit-identical
   to the scratch one after every commit. Deletes tombstone
   ([Arena.delete] never moves slots), so the stream exercises iterated
   tombstoning: targets are drawn from the live slots, the patched
   partition compares against a scratch partition of the tombstoned
   arena, and the structural invariants are checked on the compacted
   form (where every slot is live again) — [compact_partition] must
   carry the patched labels over unchanged. *)
let check_partition_stream family seed =
  let rng = rng (seed + 7919) in
  let prov = ref (family seed) in
  let arena = ref (D.Arena.build !prov) in
  let part = ref (D.Arena.partition !arena) in
  for _ = 1 to 6 do
    let live =
      Array.of_list
        (List.filter
           (fun sid -> not (B.mem !arena.D.Arena.dead_s sid))
           (List.init (D.Arena.num_stuples !arena) Fun.id))
    in
    let n = Array.length live in
    if n > 1 then begin
      let k = 1 + Random.State.int rng 2 in
      let dd = ref R.Stuple.Set.empty in
      for _ = 1 to k do
        dd :=
          R.Stuple.Set.add
            !arena.D.Arena.stuples.(live.(Random.State.int rng n))
            !dd
      done;
      let prov' = D.Provenance.delete !prov !dd in
      let arena' = D.Arena.delete !arena ~dd:!dd prov' in
      let part' = D.Arena.partition_delete !part ~before:!arena ~dd:!dd arena' in
      Alcotest.(check bool) "patched partition = scratch" true
        (partition_equal part' (D.Arena.partition arena'));
      let compacted = D.Arena.compact arena' in
      let cpart = D.Arena.compact_partition ~before:arena' part' in
      check_partition_invariants compacted cpart;
      Alcotest.(check bool) "compacted partition = scratch of compacted" true
        (partition_equal cpart (D.Arena.partition compacted));
      prov := prov';
      arena := arena';
      part := part'
    end
  done;
  true

let prop_partition_stream_forest =
  qcheck ~count:25 "arena: partition_delete = scratch (forest)" seeds
    (check_partition_stream forest_prov)

let prop_partition_stream_pivot =
  qcheck ~count:25 "arena: partition_delete = scratch (pivot)" seeds
    (check_partition_stream (pivot_prov ?num_roots:None ?tuples_per_relation:None))

let prop_partition_stream_random =
  qcheck ~count:25 "arena: partition_delete = scratch (random)" seeds
    (check_partition_stream random_prov)

(* ---- shard honesty ---- *)

let check_shatter prov =
  let a = D.Arena.build prov in
  let part = D.Arena.partition a in
  let shards = D.Arena.shatter ~partition:part a in
  let bad_total = ref 0 in
  Array.iter
    (fun (sh : D.Arena.shard) ->
      let sa = sh.D.Arena.arena in
      Alcotest.(check int) "sid count"
        (Array.length sh.D.Arena.global_sids)
        (D.Arena.num_stuples sa);
      Alcotest.(check int) "vid count"
        (Array.length sh.D.Arena.global_vids)
        (D.Arena.num_vtuples sa);
      Alcotest.(check bool) "shard is active" true (not (B.is_empty sa.D.Arena.bad));
      bad_total := !bad_total + B.cardinal sa.D.Arena.bad;
      (* the id maps carry the parent's tuples verbatim *)
      Array.iteri
        (fun k sid ->
          Alcotest.check stuple "stuple map" a.D.Arena.stuples.(sid)
            sa.D.Arena.stuples.(k);
          Alcotest.(check int) "sid in component" sh.D.Arena.component
            part.D.Arena.comp_of_sid.(sid))
        sh.D.Arena.global_sids;
      Array.iteri
        (fun k vid ->
          Alcotest.check vtuple "vtuple map" a.D.Arena.vtuples.(vid)
            sa.D.Arena.vtuples.(k);
          (* weights replay bit-identically *)
          Alcotest.(check bool) "weight bit-identical" true
            (Float.equal sa.D.Arena.weights.(k) a.D.Arena.weights.(vid));
          (* bad/preserved stamps agree with the parent *)
          Alcotest.(check bool) "bad stamp" (B.mem a.D.Arena.bad vid)
            (B.mem sa.D.Arena.bad k))
        sh.D.Arena.global_vids;
      (* witness rows map through the id tables *)
      Array.iteri
        (fun vk row ->
          let lifted = Array.map (fun sk -> sh.D.Arena.global_sids.(sk)) row in
          Alcotest.(check bool) "witness row maps" true
            (lifted = a.D.Arena.witness.(sh.D.Arena.global_vids.(vk))))
        sa.D.Arena.witness)
    shards;
  Alcotest.(check int) "every bad vtuple in some shard" (B.cardinal a.D.Arena.bad)
    !bad_total

let check_shatter_family family seed =
  check_shatter (family seed);
  true

let prop_shatter_forest =
  qcheck ~count:30 "arena: shards are honest (forest)" seeds
    (check_shatter_family forest_prov)

let prop_shatter_pivot =
  qcheck ~count:30 "arena: shards are honest (pivot)" seeds
    (check_shatter_family (pivot_prov ?num_roots:None ?tuples_per_relation:None))

let prop_shatter_random =
  qcheck ~count:30 "arena: shards are honest (random)" seeds
    (check_shatter_family random_prov)

(* per-shard exact solves recombine to the whole-instance optimum —
   component independence is what makes decomposition sound *)
let check_exact_recombination seed =
  let prov = pivot_prov ~num_roots:3 ~tuples_per_relation:2 seed in
  let a = D.Arena.build prov in
  match D.Brute.solve prov with
  | None -> true
  | Some whole ->
    let shards = D.Arena.shatter a in
    let union = ref R.Stuple.Set.empty in
    let solved_all =
      Array.for_all
        (fun (sh : D.Arena.shard) ->
          match D.Brute.solve sh.D.Arena.arena.D.Arena.prov with
          | Some r ->
            union := R.Stuple.Set.union !union r.D.Brute.deletion;
            true
          | None -> false)
        shards
    in
    Alcotest.(check bool) "every shard solvable" true solved_all;
    let o = D.Side_effect.eval prov !union in
    Alcotest.(check bool) "recombined union feasible" true o.D.Side_effect.feasible;
    check_float "recombined cost = whole optimum"
      whole.D.Brute.outcome.D.Side_effect.cost o.D.Side_effect.cost;
    true

let prop_exact_recombination =
  qcheck ~count:30 "arena: exact shards recombine to the optimum" seeds
    check_exact_recombination

(* ---- planner ---- *)

(* the decomposed winner never costs more than the whole-instance
   portfolio winner (every portfolio algorithm either decomposes
   componentwise or is dominated by a shard tier) *)
let check_planner_dominates family seed =
  let prov = family seed in
  let a = D.Arena.build prov in
  if B.is_empty a.D.Arena.bad then true
  else
    let r = D.Planner.solve a in
    match (r.D.Planner.solutions, D.Portfolio.solutions a) with
    | s :: _, w :: _ ->
      D.Solution.feasible s
      && D.Solution.cost s <= D.Solution.cost w +. 1e-9
    | [], [] -> true
    | _ -> false

let prop_planner_forest =
  qcheck ~count:25 "planner: cost <= portfolio winner (forest)" seeds
    (check_planner_dominates forest_prov)

let prop_planner_pivot =
  qcheck ~count:25 "planner: cost <= portfolio winner (pivot)" seeds
    (check_planner_dominates (pivot_prov ?num_roots:None ?tuples_per_relation:None))

(* small components: every shard lands in an exact tier, so the planner
   must return the instance optimum with a factor-1 composite *)
let check_planner_exact seed =
  let prov = pivot_prov ~num_roots:3 ~tuples_per_relation:2 seed in
  let a = D.Arena.build prov in
  let shards = D.Arena.shatter a in
  if Array.length shards < 2 then true
  else begin
    let r = D.Planner.solve a in
    Alcotest.(check bool) "decomposed" true r.D.Planner.decomposed;
    Alcotest.(check int) "one decision per shard" (Array.length shards)
      (List.length r.D.Planner.shards);
    match (r.D.Planner.solutions, D.Brute.solve prov) with
    | [ s ], Some whole ->
      Alcotest.(check bool) "all shards exact" true
        (List.for_all
           (fun (d : D.Planner.shard_decision) -> d.D.Planner.exact)
           r.D.Planner.shards);
      (match s.D.Solution.certificate with
      | D.Solution.Composite { shards = n; factor = Some f } ->
        Alcotest.(check int) "composite shard count" (Array.length shards) n;
        check_float "factor 1" 1.0 f
      | c ->
        Alcotest.failf "expected a factor-1 composite, got %a"
          D.Solution.pp_certificate c);
      check_float "planner = optimum" whole.D.Brute.outcome.D.Side_effect.cost
        (D.Solution.cost s);
      true
    | _ -> Alcotest.fail "planner or brute found nothing"
  end

let prop_planner_exact =
  qcheck ~count:30 "planner: exact shards give a factor-1 optimum" seeds
    check_planner_exact

let test_planner_no_decompose () =
  let prov = pivot_prov 42 in
  let a = D.Arena.build prov in
  let r = D.Planner.solve ~decompose:false a in
  Alcotest.(check bool) "not decomposed" false r.D.Planner.decomposed;
  let whole = D.Portfolio.solutions a in
  Alcotest.(check (list string)) "same ranking as the portfolio"
    (List.map (fun (s : D.Solution.t) -> s.D.Solution.algorithm) whole)
    (List.map (fun (s : D.Solution.t) -> s.D.Solution.algorithm) r.D.Planner.solutions);
  List.iter2
    (fun (x : D.Solution.t) (y : D.Solution.t) ->
      Alcotest.(check bool) "cost bit-identical" true
        (Float.equal (D.Solution.cost x) (D.Solution.cost y)))
    whole r.D.Planner.solutions

(* ---- engine ---- *)

(* the engine's incrementally maintained partition must match scratch
   after any mix of applies, deletes and (partition-merging) inserts *)
let check_engine_partition seed =
  let rng = rng seed in
  let p =
    Workload.Pivot_family.generate ~rng
      { Workload.Pivot_family.depth = 3; num_roots = 4;
        tuples_per_relation = 3; num_queries = 2; deletion_fraction = 0.0 }
  in
  let queries = p.D.Problem.queries in
  let eng = Engine.create ~domains:1 p.D.Problem.db queries in
  let deleted_pool = ref [] in
  let check tag =
    let _, arena = Engine.index eng in
    Alcotest.(check bool) (tag ^ ": partition = scratch") true
      (partition_equal (Engine.partition eng) (D.Arena.partition arena));
    Alcotest.(check int) (tag ^ ": components stat")
      (Engine.partition eng).D.Arena.num_components
      (Engine.stats eng).Engine.components
  in
  check "initial";
  for step = 1 to 8 do
    let tag = Printf.sprintf "seed %d step %d" seed step in
    match Random.State.int rng 3 with
    | 0 -> (
      match R.Instance.stuples (Engine.db eng) with
      | [] -> ()
      | sts ->
        let st = List.nth sts (Random.State.int rng (List.length sts)) in
        Engine.delete eng (R.Stuple.Set.singleton st);
        deleted_pool := st :: !deleted_pool;
        check tag)
    | 1 -> (
      match !deleted_pool with
      | [] -> ()
      | st :: rest ->
        deleted_pool := rest;
        if not (R.Instance.mem (Engine.db eng) st) then begin
          Engine.insert eng st;
          check tag
        end)
    | _ -> check tag
  done;
  Engine.close eng;
  true

let prop_engine_partition =
  qcheck ~count:15 "engine: incremental partition = scratch" seeds
    check_engine_partition

(* a planner session tracks a flat session move for move and never pays
   a worse cost on the rounds they both solve *)
let check_engine_plan_session seed =
  let rng = rng seed in
  let p =
    Workload.Pivot_family.generate ~rng
      { Workload.Pivot_family.depth = 3; num_roots = 4;
        tuples_per_relation = 3; num_queries = 2; deletion_fraction = 0.0 }
  in
  let queries = p.D.Problem.queries in
  let planned = Engine.create ~plan:true ~domains:1 p.D.Problem.db queries in
  let flat = Engine.create ~domains:1 p.D.Problem.db queries in
  let pick_requests () =
    let prov, _ = Engine.index planned in
    let all =
      D.Smap.fold
        (fun view ts acc ->
          R.Tuple.Set.fold (fun t acc -> (view, t) :: acc) ts acc)
        prov.D.Provenance.views []
    in
    match all with
    | [] -> []
    | _ ->
      let view, t = List.nth all (Random.State.int rng (List.length all)) in
      [ D.Delta_request.make ~view [ t ] ]
  in
  for _ = 1 to 4 do
    match pick_requests () with
    | [] -> ()
    | reqs -> (
      match (Engine.request planned reqs, Engine.request flat reqs) with
      | Ok rp, Ok rf -> (
        match (rp.Engine.solutions, rf.Engine.solutions) with
        | sp :: _, sf :: _ ->
          Alcotest.(check bool) "planned cost <= flat cost" true
            (D.Solution.cost sp <= D.Solution.cost sf +. 1e-9);
          (* commit the same deletion on both sessions *)
          ignore (Engine.apply planned rp);
          ignore (Engine.apply ~solution:sp flat rf);
          Alcotest.(check bool) "databases stay identical" true
            (R.Instance.equal (Engine.db planned) (Engine.db flat))
        | [], [] -> ()
        | _ -> Alcotest.fail "one session found no solution")
      | _ -> Alcotest.fail "request failed")
  done;
  let s = Engine.stats planned in
  Alcotest.(check bool) "planner stats consistent" true
    (s.Engine.shards_solved = s.Engine.shards_exact + s.Engine.shards_approx);
  Engine.close planned;
  Engine.close flat;
  true

let prop_engine_plan_session =
  qcheck ~count:10 "engine: planner session = flat session, never worse" seeds
    check_engine_plan_session

let suite =
  [
    prop_rb_shatter;
    prop_rb_exact;
    prop_rb_approx;
    prop_partition_forest;
    prop_partition_random;
    prop_partition_stream_forest;
    prop_partition_stream_pivot;
    prop_partition_stream_random;
    prop_shatter_forest;
    prop_shatter_pivot;
    prop_shatter_random;
    prop_exact_recombination;
    prop_planner_forest;
    prop_planner_pivot;
    prop_planner_exact;
    Alcotest.test_case "planner: --no-decompose = portfolio" `Quick
      test_planner_no_decompose;
    prop_engine_partition;
    prop_engine_plan_session;
  ]
