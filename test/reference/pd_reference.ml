(* The seed primal-dual implementation over persistent sets and
   string-keyed hashtables, moved verbatim from lib/core/primal_dual.ml:
   the arena kernel must match it result for result. *)

module R = Relational
open Deleprop

let eps = 1e-9

(* Processing order of the bad view tuples: by decreasing depth of the
   shallowest witness tuple ("lca") when the query set admits a relation
   forest, else by decreasing witness size. Deterministic tie-break. *)
let processing_order (prov : Provenance.t) =
  let bad = Vtuple.Set.elements prov.Provenance.bad in
  match Hypergraph.Rel_tree.of_queries prov.Provenance.problem.Problem.queries with
  | Some tree ->
    let lca_depth vt =
      R.Stuple.Set.fold
        (fun st acc -> min acc (Hypergraph.Rel_tree.depth tree st.R.Stuple.rel))
        (Provenance.witness_of prov vt)
        max_int
    in
    let keyed = List.map (fun vt -> (lca_depth vt, vt)) bad in
    ( true,
      List.sort
        (fun (da, a) (db, b) ->
          if da <> db then Int.compare db da else Vtuple.compare a b)
        keyed
      |> List.map snd )
  | None ->
    let size vt = R.Stuple.Set.cardinal (Provenance.witness_of prov vt) in
    let keyed = List.map (fun vt -> (size vt, vt)) bad in
    ( false,
      List.sort
        (fun (sa, a) (sb, b) ->
          if sa <> sb then Int.compare sb sa else Vtuple.compare a b)
        keyed
      |> List.map snd )

let reverse_delete_reference (prov : Provenance.t) chosen_in_order =
  (* drop a chosen tuple (scanning in reverse addition order) whenever all
     bad witnesses remain hit without it — lines 7-10 of Algorithm 1 *)
  let hits st =
    Vtuple.Set.inter (Provenance.vtuples_containing prov st) prov.Provenance.bad
  in
  let count = Hashtbl.create 64 in
  let bump vt d =
    let k = Vtuple.to_string vt in
    Hashtbl.replace count k (d + Option.value ~default:0 (Hashtbl.find_opt count k))
  in
  let get vt = Option.value ~default:0 (Hashtbl.find_opt count (Vtuple.to_string vt)) in
  List.iter (fun st -> Vtuple.Set.iter (fun vt -> bump vt 1) (hits st)) chosen_in_order;
  List.fold_left
    (fun kept st ->
      let h = hits st in
      if Vtuple.Set.for_all (fun vt -> get vt >= 2) h then begin
        Vtuple.Set.iter (fun vt -> bump vt (-1)) h;
        kept
      end
      else R.Stuple.Set.add st kept)
    R.Stuple.Set.empty
    (List.rev chosen_in_order)

let solve_general_reference (prov : Provenance.t) ~reverse_delete:do_rd ~deletable
    ~ignored_preserved =
  let forest_case, order = processing_order prov in
  let weights = prov.Provenance.problem.Problem.weights in
  let capacity st =
    Vtuple.Set.fold
      (fun vt acc ->
        if
          Vtuple.Set.mem vt prov.Provenance.preserved
          && not (Vtuple.Set.mem vt ignored_preserved)
        then acc +. Weights.get weights vt
        else acc)
      (Provenance.vtuples_containing prov st)
      0.0
  in
  let used : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let headroom st =
    capacity st -. Option.value ~default:0.0 (Hashtbl.find_opt used (R.Stuple.to_string st))
  in
  let draw st d =
    let k = R.Stuple.to_string st in
    Hashtbl.replace used k (d +. Option.value ~default:0.0 (Hashtbl.find_opt used k))
  in
  let chosen = ref [] in
  let chosen_set = ref R.Stuple.Set.empty in
  let duals = ref Vtuple.Map.empty in
  let infeasible = ref false in
  List.iter
    (fun vt ->
      if not !infeasible then begin
        let witness =
          R.Stuple.Set.filter (fun st -> R.Stuple.Set.mem st deletable)
            (Provenance.witness_of prov vt)
        in
        if R.Stuple.Set.is_empty witness then infeasible := true
        else if R.Stuple.Set.is_empty (R.Stuple.Set.inter witness !chosen_set) then begin
          (* raise the dual as much as possible: up to the smallest headroom *)
          let delta =
            R.Stuple.Set.fold (fun st acc -> min acc (headroom st)) witness infinity
          in
          let delta = max 0.0 delta in
          duals := Vtuple.Map.add vt delta !duals;
          R.Stuple.Set.iter (fun st -> draw st delta) witness;
          (* all saturated witness tuples are chosen (line 5) *)
          R.Stuple.Set.iter
            (fun st ->
              if headroom st <= eps && not (R.Stuple.Set.mem st !chosen_set) then begin
                chosen := st :: !chosen;
                chosen_set := R.Stuple.Set.add st !chosen_set
              end)
            witness
        end
        else duals := Vtuple.Map.add vt 0.0 !duals
      end)
    order;
  if !infeasible then None
  else begin
    let chosen_in_order = List.rev !chosen in
    let deletion =
      if do_rd then reverse_delete_reference prov chosen_in_order
      else R.Stuple.Set.of_list chosen_in_order
    in
    let outcome = Side_effect.eval prov deletion in
    let dual_value = Vtuple.Map.fold (fun _ v acc -> acc +. v) !duals 0.0 in
    Some
      {
        Primal_dual.deletion;
        outcome;
        duals = !duals;
        dual_value;
        forest_case;
      }
  end

let all_tuples (prov : Provenance.t) =
  R.Instance.fold R.Stuple.Set.add prov.Provenance.problem.Problem.db R.Stuple.Set.empty

let solve_reference ?(reverse_delete = true) prov =
  match
    solve_general_reference prov ~reverse_delete ~deletable:(all_tuples prov)
      ~ignored_preserved:Vtuple.Set.empty
  with
  | Some r -> r
  | None -> assert false

let solve_restricted_reference prov ~deletable ~ignored_preserved =
  solve_general_reference prov ~reverse_delete:true ~deletable ~ignored_preserved
