(* The pre-bitset Red-Blue Set Cover solvers (eager per-step rescans over
   persistent Isets), moved verbatim from lib/setcover/red_blue.ml: the
   packed implementations must match them selection for selection. *)

open Setcover

let red_weight (t : Red_blue.t) reds =
  Iset.fold (fun r acc -> acc +. t.Red_blue.red_weights.(r)) reds 0.0

let greedy_reference (t : Red_blue.t) =
  if not (Red_blue.coverable t) then None
  else begin
    let covered_blue = ref Iset.empty in
    let covered_red = ref Iset.empty in
    let chosen = ref [] in
    while Iset.cardinal !covered_blue < t.Red_blue.num_blue do
      let best = ref None and best_score = ref neg_infinity in
      Array.iteri
        (fun i (s : Red_blue.set) ->
          let new_blue = Iset.cardinal (Iset.diff s.Red_blue.blue !covered_blue) in
          if new_blue > 0 then begin
            let new_red = red_weight t (Iset.diff s.Red_blue.red !covered_red) in
            let score = float_of_int new_blue /. (1e-9 +. new_red) in
            if score > !best_score then begin
              best_score := score;
              best := Some i
            end
          end)
        t.Red_blue.sets;
      match !best with
      | Some i ->
        covered_blue := Iset.union !covered_blue t.Red_blue.sets.(i).Red_blue.blue;
        covered_red := Iset.union !covered_red t.Red_blue.sets.(i).Red_blue.red;
        chosen := i :: !chosen
      | None -> assert false (* coverable *)
    done;
    Red_blue.solution_of t !chosen
  end

let greedy_cover_by_count_reference (t : Red_blue.t) allowed =
  (* classic greedy set cover over the blue universe, restricted to the
     [allowed] set indices; returns None when not coverable *)
  let covered = ref Iset.empty in
  let chosen = ref [] in
  let continue_ = ref true in
  let feasible = ref true in
  while !continue_ do
    if Iset.cardinal !covered = t.Red_blue.num_blue then continue_ := false
    else begin
      let best = ref None and best_gain = ref 0 in
      List.iter
        (fun i ->
          let gain =
            Iset.cardinal (Iset.diff t.Red_blue.sets.(i).Red_blue.blue !covered)
          in
          if gain > !best_gain then begin
            best_gain := gain;
            best := Some i
          end)
        allowed;
      match !best with
      | Some i ->
        covered := Iset.union !covered t.Red_blue.sets.(i).Red_blue.blue;
        chosen := i :: !chosen
      | None ->
        feasible := false;
        continue_ := false
    end
  done;
  if !feasible then Some !chosen else None

let lowdeg_reference (t : Red_blue.t) =
  if not (Red_blue.coverable t) then None
  else begin
    let set_red_weight i = red_weight t t.Red_blue.sets.(i).Red_blue.red in
    let thresholds =
      Array.to_list (Array.mapi (fun i _ -> set_red_weight i) t.Red_blue.sets)
      |> List.sort_uniq Float.compare
    in
    let best = ref None in
    List.iter
      (fun tau ->
        let allowed =
          List.init (Red_blue.num_sets t) Fun.id
          |> List.filter (fun i -> set_red_weight i <= tau)
        in
        match greedy_cover_by_count_reference t allowed with
        | None -> ()
        | Some chosen -> (
          match Red_blue.solution_of t chosen with
          | None -> ()
          | Some sol -> (
            match !best with
            | Some (b : Red_blue.solution) when b.Red_blue.cost <= sol.Red_blue.cost
              -> ()
            | _ -> best := Some sol)))
      thresholds;
    !best
  end

let solve_approx_reference t =
  match greedy_reference t, lowdeg_reference t with
  | None, s | s, None -> s
  | Some (a : Red_blue.solution), Some b ->
    Some (if a.Red_blue.cost <= b.Red_blue.cost then a else b)
