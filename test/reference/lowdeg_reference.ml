(* The seed LowDeg implementation (per-τ set-based restriction over the
   seed primal-dual), moved verbatim from lib/core/lowdeg.ml. *)

module R = Relational
open Deleprop

let preserved_degree (prov : Provenance.t) st =
  Vtuple.Set.cardinal
    (Vtuple.Set.inter (Provenance.vtuples_containing prov st) prov.Provenance.preserved)

let wide_preserved (prov : Provenance.t) =
  let v = float_of_int (Problem.view_size prov.Provenance.problem) in
  let threshold = sqrt v in
  Vtuple.Set.filter
    (fun vt ->
      float_of_int (R.Stuple.Set.cardinal (Provenance.witness_of prov vt)) > threshold)
    prov.Provenance.preserved

let trivial_result prov =
  {
    Lowdeg.deletion = R.Stuple.Set.empty;
    outcome = Side_effect.eval prov R.Stuple.Set.empty;
    tau = 0;
    pruned_wide = 0;
    complete = true;
  }

let best_of results =
  List.fold_left
    (fun best r ->
      match r with
      | None -> best
      | Some (r : Lowdeg.result) -> (
        match best with
        | Some (b : Lowdeg.result)
          when b.Lowdeg.outcome.Side_effect.cost <= r.Lowdeg.outcome.Side_effect.cost
          -> best
        | _ -> Some r))
    None results

let solve_with_tau_reference ?(prune_wide = true) (prov : Provenance.t) ~tau =
  let deletable =
    R.Instance.fold
      (fun st acc -> if preserved_degree prov st <= tau then R.Stuple.Set.add st acc else acc)
      prov.Provenance.problem.Problem.db R.Stuple.Set.empty
  in
  let ignored = if prune_wide then wide_preserved prov else Vtuple.Set.empty in
  match
    Pd_reference.solve_restricted_reference prov ~deletable ~ignored_preserved:ignored
  with
  | None -> None
  | Some pd ->
    Some
      {
        Lowdeg.deletion = pd.Primal_dual.deletion;
        outcome = pd.Primal_dual.outcome;
        tau;
        pruned_wide = Vtuple.Set.cardinal ignored;
        complete = true;
      }

let solve_reference ?(prune_wide = true) (prov : Provenance.t) =
  if Vtuple.Set.is_empty prov.Provenance.bad then trivial_result prov
  else begin
    let taus =
      R.Stuple.Set.fold
        (fun st acc -> preserved_degree prov st :: acc)
        (Provenance.candidates prov) []
      |> List.sort_uniq Int.compare
    in
    let results =
      List.map (fun tau -> solve_with_tau_reference ~prune_wide prov ~tau) taus
    in
    match best_of results with
    | Some r -> r
    | None -> assert false
  end
