let () =
  Alcotest.run "deleprop"
    [
      ("relational", Test_relational.suite);
      ("cq", Test_cq.suite);
      ("hypergraph", Test_hypergraph.suite);
      ("setcover", Test_setcover.suite);
      ("lp", Test_lp.suite);
      ("core", Test_core.suite);
      ("solvers", Test_solvers.suite);
      ("hardness", Test_hardness.suite);
      ("examples", Test_examples.suite);
      ("landscape", Test_landscape.suite);
      ("phase3", Test_phase3.suite);
      ("phase4", Test_phase4.suite);
      ("fuzz", Test_fuzz.suite);
      ("system", Test_system.suite);
      ("phase5", Test_phase5.suite);
      ("phase6", Test_phase6.suite);
      ("phase8", Test_phase8.suite);
      ("frontend", Test_frontend.suite);
      ("matrix", Test_matrix.suite);
      ("polish", Test_polish.suite);
      ("arena", Test_arena.suite);
      ("engine", Test_engine.suite);
      ("resilience", Test_resilience.suite);
      ("decompose", Test_decompose.suite);
      ("shardcache", Test_shardcache.suite);
      ("tombstone", Test_tombstone.suite);
      ("rewarm", Test_rewarm.suite);
      ("compindex", Test_compindex.suite);
      ("splice", Test_decomp_splice.suite);
    ]
