(* The first-class live component index: per-component rosters lockstep
   with scratch recomputation across mixed delta streams (splits,
   merges, resurrections, compactions), O(active) enumeration
   bit-identical to the partition sweep, and split-aware fragment
   reuse — a shattered component's untouched fragment inherits its
   parent's cached answer by restriction, bit-identical to a fresh
   solve. *)

open Util
module R = Relational
module D = Deleprop

let seeds = QCheck2.Gen.int_range 0 10_000
let request_exn = Test_shardcache.request_exn
let check_decisions_equal = Test_shardcache.check_decisions_equal
let check_solutions_equal = Test_engine.check_solutions_equal

(* ---- rosters ≡ scratch, labels ≡ scratch ---- *)

let check_index_matches tag cindex (arena : D.Arena.t) =
  let p = D.Component_index.partition cindex in
  let ps = D.Arena.partition arena in
  Alcotest.(check int)
    (tag ^ ": num_components")
    ps.D.Arena.num_components p.D.Arena.num_components;
  Alcotest.(check bool) (tag ^ ": comp_of_sid ≡ scratch") true
    (p.D.Arena.comp_of_sid = ps.D.Arena.comp_of_sid);
  Alcotest.(check bool) (tag ^ ": comp_of_vid ≡ scratch") true
    (p.D.Arena.comp_of_vid = ps.D.Arena.comp_of_vid);
  let scratch = D.Component_index.of_partition ps in
  for c = 0 to p.D.Arena.num_components - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "%s: sids_of %d ≡ scratch" tag c)
      true
      (D.Component_index.sids_of cindex c = D.Component_index.sids_of scratch c);
    Alcotest.(check bool)
      (Printf.sprintf "%s: vids_of %d ≡ scratch" tag c)
      true
      (D.Component_index.vids_of cindex c = D.Component_index.vids_of scratch c)
  done

(* indexed enumeration ≡ the O(‖D‖ + ‖V‖) sweep, proto by proto *)
let check_active_equal tag cindex (arena' : D.Arena.t) =
  let fast = D.Component_index.active cindex arena' in
  let sweep =
    D.Arena.active_components
      ~partition:(D.Component_index.partition cindex)
      arena'
  in
  Alcotest.(check int)
    (tag ^ ": active count")
    (Array.length sweep) (Array.length fast);
  Array.iteri
    (fun i (s : D.Arena.proto_shard) ->
      let f = fast.(i) in
      Alcotest.(check int) (tag ^ ": component") s.D.Arena.p_component
        f.D.Arena.p_component;
      Alcotest.(check bool) (tag ^ ": p_sids") true
        (f.D.Arena.p_sids = s.D.Arena.p_sids);
      Alcotest.(check bool) (tag ^ ": p_vids") true
        (f.D.Arena.p_vids = s.D.Arena.p_vids))
    sweep

(* ---- the lockstep stream property ----

   Drive one mixed delete/insert/solve stream through two planner
   engines — [eng_i] routed through the live component index, [eng_s]
   on the partition-sweep path — plus scratch recomputation, and
   require at every step: bit-identical partitions and rosters,
   bit-identical active proto-shards, and bit-identical ranked
   solutions and shard decisions. Deltas resurrect from a deleted pool,
   so tombstone, resurrect, merge and compaction branches all fire. *)
let check_lockstep_stream ?(scale = 6) seed =
  let rng = rng seed in
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng
      {
        Workload.Forest_family.default with
        num_relations = 4;
        tuples_per_relation = scale;
        num_queries = 3;
        deletion_fraction = 0.0;
      }
  in
  let queries = p.D.Problem.queries in
  let mk indexed =
    Engine.create ~plan:true ~domains:1 ~indexed p.D.Problem.db queries
  in
  let eng_i = mk true in
  let eng_s = mk false in
  let deleted_pool = ref [] in
  for step = 1 to 10 do
    let tag = Printf.sprintf "compindex seed %d step %d" seed step in
    let deletes =
      match R.Instance.stuples (Engine.db eng_i) with
      | [] -> R.Stuple.Set.empty
      | sts ->
        List.init
          (1 + Random.State.int rng 2)
          (fun _ -> List.nth sts (Random.State.int rng (List.length sts)))
        |> R.Stuple.Set.of_list
    in
    let inserts =
      match !deleted_pool with
      | [] -> R.Stuple.Set.empty
      | st :: rest ->
        deleted_pool := rest;
        R.Stuple.Set.singleton st
    in
    let delta = D.Delta.make ~deletes ~inserts () in
    let a_i = Engine.apply_delta eng_i delta in
    let a_s = Engine.apply_delta eng_s delta in
    Alcotest.check Util.stuple_set (tag ^ ": same deletes applied")
      a_s.D.Delta.deletes a_i.D.Delta.deletes;
    deleted_pool :=
      R.Stuple.Set.elements
        (R.Stuple.Set.diff a_i.D.Delta.deletes a_i.D.Delta.inserts)
      @ !deleted_pool;
    (* an explicit compaction now and then exercises the roster/memo
       remap outside the threshold trigger *)
    if step mod 4 = 0 then begin
      Engine.compact eng_i;
      Engine.compact eng_s
    end;
    let prov_i, arena_i = Engine.index eng_i in
    let cindex = Engine.component_index eng_i in
    check_index_matches tag cindex arena_i;
    (* both engines maintain the index; their labels must agree too *)
    let p_i = Engine.partition eng_i in
    let p_s = Engine.partition eng_s in
    Alcotest.(check int)
      (tag ^ ": engines agree on num_components")
      p_s.D.Arena.num_components p_i.D.Arena.num_components;
    match Test_engine.random_requests rng prov_i with
    | [] -> ()
    | reqs ->
      (* the ΔV re-stamp the planner sees: indexed enumeration must be
         bit-identical to the sweep on it *)
      let prov' = D.Provenance.with_deletions prov_i reqs in
      let arena' = D.Arena.with_deletions arena_i prov' in
      check_active_equal tag cindex arena';
      let p_i = request_exn tag eng_i reqs in
      let p_s = request_exn tag eng_s reqs in
      check_solutions_equal (tag ^ " solutions") p_i.Engine.solutions
        p_s.Engine.solutions;
      check_decisions_equal (tag ^ " decisions") p_i.Engine.shards
        p_s.Engine.shards;
      if step mod 3 = 0 then begin
        match (Engine.apply eng_i p_i, Engine.apply eng_s p_s) with
        | Some s_i, Some s_s ->
          Alcotest.check Util.stuple_set (tag ^ ": same solution applied")
            s_s.D.Solution.deleted s_i.D.Solution.deleted;
          deleted_pool :=
            R.Stuple.Set.elements s_i.D.Solution.deleted @ !deleted_pool
        | None, None -> ()
        | _ -> Alcotest.fail (tag ^ ": apply diverged")
      end
  done;
  Engine.close eng_i;
  Engine.close eng_s;
  true

let prop_lockstep =
  qcheck ~count:15 "compindex: indexed ≡ sweep ≡ scratch over mixed streams"
    seeds
    (fun seed -> check_lockstep_stream seed)

(* ---- split-aware fragment reuse ----

   Two disjoint author→journal→topic→conference→city chains, each
   connected only through its T4 row (the committed data/authors_split.*
   files mirror this instance). Deleting a T4 tuple shatters the chain;
   the proposed Q4 answer's fragment is untouched and must splice the
   parent's cached answer — bit-identical to a cache-less solve. *)

let split_db () =
  R.Serial.instance_of_string
    {|rel T1(AuName*, Journal*)
T1(Ann, J1)
T1(Cal, J3)
T1(Bob, J2)
T1(Dan, J4)
rel T2(Journal*, Topic*, Papers)
T2(J1, XML, 30)
T2(J3, KDD, 5)
T2(J2, CUBE, 20)
T2(J4, SQL, 8)
rel T3(Topic*, Conf*)
T3(XML, ICDE)
T3(KDD, ICDE)
T3(CUBE, VLDB)
T3(SQL, VLDB)
rel T4(Conf*, City*)
T4(ICDE, Rome)
T4(VLDB, Oslo)|}

let split_queries () =
  Cq.Parser.queries_of_string
    {|Q4(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)
Q6(Y, Z, C) :- T2(Y, Z, W), T3(Z, C)
Q7(Z, C, L) :- T3(Z, C), T4(C, L)|}

let q4 rows = [ D.Delta_request.make ~view:"Q4" (List.map R.Tuple.strs rows) ]
let del eng rel vs = Engine.delete eng (R.Stuple.Set.singleton (st rel vs))

let frag_reuses eng = (Engine.stats eng).Engine.fragment_reuses

let test_fragment_reuse_bitidentical () =
  let mk cache =
    Engine.create ~plan:true ~domains:1 ~shard_cache:cache (split_db ())
      (split_queries ())
  in
  let eng = mk 512 in
  let fresh = mk 0 in
  let round tag reqs =
    let p = request_exn tag eng reqs in
    let f = request_exn tag fresh reqs in
    check_solutions_equal (tag ^ " ≡ fresh") p.Engine.solutions
      f.Engine.solutions;
    check_decisions_equal (tag ^ " decisions") p.Engine.shards f.Engine.shards;
    p
  in
  (* warm the memos: one Exact_small answer per conference component *)
  ignore
    (round "warm"
       (q4 [ [ "Ann"; "J1"; "XML" ]; [ "Bob"; "J2"; "CUBE" ] ]));
  Alcotest.(check int) "two components" 2
    (Engine.partition eng).D.Arena.num_components;
  (* split the ICDE chain: Ann's fragment inherits the cached answer *)
  del eng "T4" [ "ICDE"; "Rome" ];
  del fresh "T4" [ "ICDE"; "Rome" ];
  let p = round "post-split" (q4 [ [ "Ann"; "J1"; "XML" ] ]) in
  Alcotest.(check int) "the seeded fragment splices" 1 p.Engine.shards_cached;
  Alcotest.(check int) "one fragment reuse" 1 (frag_reuses eng);
  (* the VLDB chain the same way; Ann's fragment splices again (the
     seeded entry stays valid), so reuses reach 3 *)
  del eng "T4" [ "VLDB"; "Oslo" ];
  del fresh "T4" [ "VLDB"; "Oslo" ];
  let p =
    round "both split"
      (q4 [ [ "Bob"; "J2"; "CUBE" ]; [ "Ann"; "J1"; "XML" ] ])
  in
  Alcotest.(check int) "both fragments splice" 2 p.Engine.shards_cached;
  Alcotest.(check int) "three fragment reuses" 3 (frag_reuses eng);
  Alcotest.(check int) "fresh engine never reuses" 0 (frag_reuses fresh);
  (* the fragment the split *did* touch stayed dirty: a fresh solve,
     still bit-identical *)
  let p = round "touched fragment" (q4 [ [ "Cal"; "J3"; "KDD" ] ]) in
  Alcotest.(check int) "touched fragment re-solves" 0 p.Engine.shards_cached;
  Engine.close eng;
  Engine.close fresh

(* the negative guard: a deletion that kills a view tuple whose witness
   meets the memoized answer's candidate set must NOT seed — the
   restriction would be unsound, so the fragment re-solves *)
let test_fragment_guard () =
  let mk cache =
    Engine.create ~plan:true ~domains:1 ~shard_cache:cache (split_db ())
      (split_queries ())
  in
  let eng = mk 512 in
  let fresh = mk 0 in
  ignore (request_exn "warm" eng (q4 [ [ "Ann"; "J1"; "XML" ] ]));
  (* T3(XML, ICDE) kills Q6(J1, XML, ICDE), whose witness contains the
     candidate T2(J1, XML, 30) — the candidate neighborhood is touched *)
  del eng "T3" [ "XML"; "ICDE" ];
  del fresh "T3" [ "XML"; "ICDE" ];
  let p = request_exn "guarded" eng (q4 [ [ "Ann"; "J1"; "XML" ] ]) in
  let f = request_exn "guarded" fresh (q4 [ [ "Ann"; "J1"; "XML" ] ]) in
  Alcotest.(check int) "no unsound splice" 0 p.Engine.shards_cached;
  Alcotest.(check int) "no fragment reuse" 0 (frag_reuses eng);
  check_solutions_equal "guarded ≡ fresh" p.Engine.solutions f.Engine.solutions;
  (* killing the memoized ΔV itself also refuses to seed *)
  ignore (request_exn "rewarm" eng (q4 [ [ "Bob"; "J2"; "CUBE" ] ]));
  Engine.delete eng
    (R.Stuple.Set.singleton
       (R.Stuple.make "T2"
          (R.Tuple.of_list
             [ R.Value.str "J2"; R.Value.str "CUBE"; R.Value.int 20 ])));
  Alcotest.(check int) "dead ΔV never seeds" 0 (frag_reuses eng);
  Engine.close eng;
  Engine.close fresh

(* seeding composes with durability: reuse counters live in the cache
   stats block, so a snapshotted session restores them *)
let test_reuse_counter_durable () =
  let c = D.Planner.create_cache ~capacity:8 () in
  let stats = D.Planner.cache_stats c in
  Alcotest.(check int) "fresh cache: zero reuses" 0
    stats.D.Planner.s_fragment_reuses;
  let c' = D.Planner.create_cache ~capacity:8 () in
  D.Planner.cache_restore
    ~stats:{ stats with D.Planner.s_fragment_reuses = 7 }
    c' [];
  Alcotest.(check int) "restored reuse counter" 7
    (D.Planner.cache_fragment_reuses c')

let suite =
  [
    prop_lockstep;
    Alcotest.test_case "split: fragment reuse ≡ fresh solve" `Quick
      test_fragment_reuse_bitidentical;
    Alcotest.test_case "split: candidate-touching deletes never seed" `Quick
      test_fragment_guard;
    Alcotest.test_case "split: reuse counter survives restore" `Quick
      test_reuse_counter_durable;
  ]
