(* Tests for Red-Blue Set Cover and Positive-Negative Partial Set Cover:
   exact solvers, approximations, and the linear reductions between them. *)

open Util
module SC = Setcover

let iset = SC.Iset.of_list

let rb_instance sets ~num_red ~num_blue =
  SC.Red_blue.make_unit ~num_red ~num_blue
    (List.mapi
       (fun i (red, blue) ->
         { SC.Red_blue.label = Printf.sprintf "C%d" i; red = iset red; blue = iset blue })
       sets)

(* ---- Red-Blue ---- *)

let test_rb_feasibility () =
  let t = rb_instance ~num_red:2 ~num_blue:2 [ ([ 0 ], [ 0 ]); ([ 1 ], [ 1 ]) ] in
  Alcotest.(check bool) "coverable" true (SC.Red_blue.coverable t);
  Alcotest.(check bool) "both sets" true (SC.Red_blue.is_feasible t [ 0; 1 ]);
  Alcotest.(check bool) "one set" false (SC.Red_blue.is_feasible t [ 0 ])

let test_rb_uncoverable () =
  let t = rb_instance ~num_red:1 ~num_blue:2 [ ([ 0 ], [ 0 ]) ] in
  Alcotest.(check bool) "uncoverable" false (SC.Red_blue.coverable t);
  Alcotest.(check bool) "exact none" true (SC.Red_blue.solve_exact t = None);
  Alcotest.(check bool) "greedy none" true (SC.Red_blue.solve_greedy t = None);
  Alcotest.(check bool) "lowdeg none" true (SC.Red_blue.solve_lowdeg t = None)

let test_rb_exact_simple () =
  (* set 0 covers both blues at red cost 2; sets 1+2 cover them at cost 1 *)
  let t =
    rb_instance ~num_red:3 ~num_blue:2
      [ ([ 0; 1 ], [ 0; 1 ]); ([ 2 ], [ 0 ]); ([ 2 ], [ 1 ]) ]
  in
  match SC.Red_blue.solve_exact t with
  | None -> Alcotest.fail "expected solution"
  | Some s ->
    check_float "optimal cost" 1.0 s.SC.Red_blue.cost;
    Alcotest.(check (list int)) "chosen" [ 1; 2 ] s.SC.Red_blue.chosen

let test_rb_exact_zero_cost () =
  let t = rb_instance ~num_red:1 ~num_blue:1 [ ([ 0 ], [ 0 ]); ([], [ 0 ]) ] in
  match SC.Red_blue.solve_exact t with
  | None -> Alcotest.fail "expected solution"
  | Some s -> check_float "free cover" 0.0 s.SC.Red_blue.cost

let test_rb_weighted () =
  let sets =
    [
      { SC.Red_blue.label = "a"; red = iset [ 0 ]; blue = iset [ 0 ] };
      { SC.Red_blue.label = "b"; red = iset [ 1 ]; blue = iset [ 0 ] };
    ]
  in
  let t = SC.Red_blue.make ~red_weights:[| 10.0; 1.0 |] ~num_blue:1 sets in
  match SC.Red_blue.solve_exact t with
  | None -> Alcotest.fail "expected solution"
  | Some s ->
    check_float "picks the light red" 1.0 s.SC.Red_blue.cost;
    Alcotest.(check (list int)) "chosen" [ 1 ] s.SC.Red_blue.chosen

let test_rb_out_of_range () =
  Alcotest.(check bool) "rejected" true
    (try ignore (rb_instance ~num_red:1 ~num_blue:1 [ ([ 5 ], [ 0 ]) ]); false
     with Invalid_argument _ -> true)

(* random instance generator for properties *)
let rb_gen =
  QCheck2.Gen.(
    int_range 0 10_000 |> map (fun seed ->
        let rng = Util.rng seed in
        Workload.Rbsc_gen.red_blue ~rng ~num_red:(1 + Random.State.int rng 6)
          ~num_blue:(1 + Random.State.int rng 6)
          ~num_sets:(2 + Random.State.int rng 6)
          ~red_density:0.3 ~blue_density:0.4))

let prop_approx_feasible_and_bounded =
  qcheck ~count:100 "greedy & lowdeg: feasible and >= exact" rb_gen (fun t ->
      match SC.Red_blue.solve_exact t with
      | None -> true
      | Some opt ->
        let check = function
          | None -> false
          | Some (s : SC.Red_blue.solution) ->
            SC.Red_blue.is_feasible t s.chosen && s.cost +. 1e-9 >= opt.SC.Red_blue.cost
        in
        check (SC.Red_blue.solve_greedy t) && check (SC.Red_blue.solve_lowdeg t))

let prop_lowdeg_ratio =
  (* Peleg's bound 2*sqrt(|C| * log(beta+1)) on unit weights, with a +1
     cushion for the additive edge cases (opt = 0) *)
  qcheck ~count:100 "lowdeg within the Peleg ratio" rb_gen (fun t ->
      match SC.Red_blue.solve_exact t, SC.Red_blue.solve_lowdeg t with
      | Some opt, Some sol ->
        let c = float_of_int (SC.Red_blue.num_sets t) in
        let beta = float_of_int t.SC.Red_blue.num_blue in
        let bound = 2.0 *. sqrt (c *. log (beta +. 1.0)) in
        sol.SC.Red_blue.cost <= (bound *. opt.SC.Red_blue.cost) +. 1e-9
        || feq opt.SC.Red_blue.cost 0.0 && feq sol.SC.Red_blue.cost 0.0
        || (feq opt.SC.Red_blue.cost 0.0 && sol.SC.Red_blue.cost <= bound)
      | _ -> true)

let prop_solution_of_consistent =
  qcheck ~count:50 "solution_of agrees with manual cost" rb_gen (fun t ->
      let all = List.init (SC.Red_blue.num_sets t) Fun.id in
      match SC.Red_blue.solution_of t all with
      | None -> not (SC.Red_blue.coverable t)
      | Some s ->
        let manual =
          SC.Iset.fold (fun r acc -> acc +. t.SC.Red_blue.red_weights.(r)) s.red_covered 0.0
        in
        feq manual s.SC.Red_blue.cost)

(* ---- Bitset (differential against Iset) ---- *)

module B = SC.Bitset

let test_bitset_basics () =
  let b = B.create 100 in
  Alcotest.(check bool) "fresh empty" true (B.is_empty b);
  B.add b 0; B.add b 62; B.add b 63; B.add b 99;
  Alcotest.(check int) "cardinal" 4 (B.cardinal b);
  Alcotest.(check (list int)) "elements" [ 0; 62; 63; 99 ] (B.elements b);
  B.remove b 63;
  Alcotest.(check bool) "removed" false (B.mem b 63);
  Alcotest.(check int) "cardinal after remove" 3 (B.cardinal b);
  Alcotest.(check int) "full cardinal" 100 (B.cardinal (B.full 100));
  Alcotest.(check bool) "out of range rejected" true
    (try ignore (B.mem b 100); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "universe mismatch rejected" true
    (try ignore (B.union b (B.create 99)); false with Invalid_argument _ -> true)

(* random (universe, xs, ys) triples; lengths straddle the 63-bit word
   boundary so the last-word masking is exercised *)
let bitset_gen =
  QCheck2.Gen.(
    int_range 0 10_000 |> map (fun seed ->
        let rng = Util.rng seed in
        let len = Random.State.int rng 200 in
        let pick () =
          List.init (Random.State.int rng (2 * len + 1)) (fun _ ->
              Random.State.int rng (max 1 len))
        in
        (len, (if len = 0 then [] else pick ()), if len = 0 then [] else pick ())))

let prop_bitset_matches_iset =
  qcheck ~count:200 "bitset: ops agree with Iset" bitset_gen (fun (len, xs, ys) ->
      let bx = B.of_list ~len xs and by = B.of_list ~len ys in
      let ix = iset xs and iy = iset ys in
      let agrees b i = B.elements b = SC.Iset.elements i in
      agrees bx ix
      && agrees (B.union bx by) (SC.Iset.union ix iy)
      && agrees (B.inter bx by) (SC.Iset.inter ix iy)
      && agrees (B.diff bx by) (SC.Iset.diff ix iy)
      && B.cardinal bx = SC.Iset.cardinal ix
      && B.inter_cardinal bx by = SC.Iset.cardinal (SC.Iset.inter ix iy)
      && B.diff_cardinal bx by = SC.Iset.cardinal (SC.Iset.diff ix iy)
      && B.subset bx by = SC.Iset.subset ix iy
      && B.disjoint bx by = SC.Iset.disjoint ix iy
      && B.equal bx by = SC.Iset.equal ix iy
      && B.is_empty bx = SC.Iset.is_empty ix
      && List.for_all (B.mem bx) (SC.Iset.elements ix))

let prop_bitset_iteration =
  qcheck ~count:200 "bitset: iter/fold/iter_diff ascending" bitset_gen
    (fun (len, xs, ys) ->
      let bx = B.of_list ~len xs and by = B.of_list ~len ys in
      let via_iter = ref [] in
      B.iter (fun i -> via_iter := i :: !via_iter) bx;
      let via_diff = ref [] in
      B.iter_diff (fun i -> via_diff := i :: !via_diff) bx by;
      List.rev !via_iter = B.elements bx
      && List.rev !via_diff = B.elements (B.diff bx by)
      && B.fold (fun i acc -> acc + i) bx 0
         = List.fold_left ( + ) 0 (B.elements bx))

let prop_bitset_into_ops =
  qcheck ~count:200 "bitset: *_into match the pure ops" bitset_gen
    (fun (len, xs, ys) ->
      let bx = B.of_list ~len xs and by = B.of_list ~len ys in
      let check_into into_op pure =
        let t = B.copy bx in
        into_op ~into:t by;
        B.equal t (pure bx by)
      in
      check_into B.union_into B.union
      && check_into B.inter_into B.inter
      && check_into B.diff_into B.diff)

(* ---- Pos-Neg ---- *)

let pn_instance sets ~num_pos ~num_neg =
  SC.Pos_neg.make_unit ~num_pos ~num_neg
    (List.mapi
       (fun i (pos, neg) ->
         { SC.Pos_neg.label = Printf.sprintf "C%d" i; pos = iset pos; neg = iset neg })
       sets)

let test_pn_empty_choice () =
  let t = pn_instance ~num_pos:2 ~num_neg:1 [ ([ 0 ], [ 0 ]) ] in
  let s = SC.Pos_neg.solution_of t [] in
  check_float "cost = uncovered positives" 2.0 s.SC.Pos_neg.cost

let test_pn_exact_tradeoff () =
  (* covering positive 0 costs negative 0; leaving it uncovered costs 1:
     tie — exact must find cost 1. Positive 1 is free via set 1. *)
  let t = pn_instance ~num_pos:2 ~num_neg:1 [ ([ 0 ], [ 0 ]); ([ 1 ], []) ] in
  let s = SC.Pos_neg.solve_exact t in
  check_float "optimal" 1.0 s.SC.Pos_neg.cost

let test_pn_exact_prefers_cover () =
  (* cover both positives with one negative: cost 1 < leaving them (2) *)
  let t = pn_instance ~num_pos:2 ~num_neg:1 [ ([ 0; 1 ], [ 0 ]) ] in
  let s = SC.Pos_neg.solve_exact t in
  check_float "optimal" 1.0 s.SC.Pos_neg.cost;
  Alcotest.(check (list int)) "chosen" [ 0 ] s.SC.Pos_neg.chosen

let pn_gen =
  QCheck2.Gen.(
    int_range 0 10_000 |> map (fun seed ->
        let rng = Util.rng seed in
        Workload.Rbsc_gen.pos_neg ~rng ~num_pos:(1 + Random.State.int rng 5)
          ~num_neg:(1 + Random.State.int rng 5)
          ~num_sets:(1 + Random.State.int rng 5)
          ~pos_density:0.4 ~neg_density:0.3))

let prop_pn_reduction_preserves_cost =
  (* Miettinen's reduction: solving the RBSC image exactly yields the PNPSC
     optimum, mapped back *)
  qcheck ~count:100 "PNPSC -> RBSC reduction is cost-preserving" pn_gen (fun t ->
      let rb = SC.Pos_neg.to_red_blue t in
      match SC.Red_blue.solve_exact rb with
      | None -> false (* singleton sets always make it coverable *)
      | Some rb_opt ->
        let mapped = SC.Pos_neg.of_red_blue_solution t rb_opt in
        let direct = SC.Pos_neg.solve_exact t in
        feq rb_opt.SC.Red_blue.cost direct.SC.Pos_neg.cost
        && feq mapped.SC.Pos_neg.cost direct.SC.Pos_neg.cost)

let prop_pn_approx_sound =
  qcheck ~count:100 "PNPSC approx >= exact" pn_gen (fun t ->
      let approx = SC.Pos_neg.solve_approx t in
      let exact = SC.Pos_neg.solve_exact t in
      approx.SC.Pos_neg.cost +. 1e-9 >= exact.SC.Pos_neg.cost)

let prop_rb_to_pn_forces_coverage =
  (* reverse reduction: positives are priced so high that an optimal PNPSC
     solution covers all of them, matching the RBSC optimum *)
  qcheck ~count:60 "RBSC -> PNPSC reduction preserves the optimum" rb_gen (fun t ->
      match SC.Red_blue.solve_exact t with
      | None -> true
      | Some rb_opt ->
        let pn = SC.Pos_neg.of_red_blue t in
        let pn_opt = SC.Pos_neg.solve_exact pn in
        SC.Iset.is_empty pn_opt.SC.Pos_neg.pos_uncovered
        && feq pn_opt.SC.Pos_neg.cost rb_opt.SC.Red_blue.cost)

let suite =
  [
    Alcotest.test_case "rb: feasibility" `Quick test_rb_feasibility;
    Alcotest.test_case "rb: uncoverable" `Quick test_rb_uncoverable;
    Alcotest.test_case "rb: exact simple" `Quick test_rb_exact_simple;
    Alcotest.test_case "rb: exact zero cost" `Quick test_rb_exact_zero_cost;
    Alcotest.test_case "rb: weighted reds" `Quick test_rb_weighted;
    Alcotest.test_case "rb: out-of-range rejected" `Quick test_rb_out_of_range;
    prop_approx_feasible_and_bounded;
    prop_lowdeg_ratio;
    prop_solution_of_consistent;
    Alcotest.test_case "bitset: basics" `Quick test_bitset_basics;
    prop_bitset_matches_iset;
    prop_bitset_iteration;
    prop_bitset_into_ops;
    Alcotest.test_case "pn: empty choice cost" `Quick test_pn_empty_choice;
    Alcotest.test_case "pn: exact tradeoff" `Quick test_pn_exact_tradeoff;
    Alcotest.test_case "pn: exact prefers covering" `Quick test_pn_exact_prefers_cover;
    prop_pn_reduction_preserves_cost;
    prop_pn_approx_sound;
    prop_rb_to_pn_forces_coverage;
  ]
