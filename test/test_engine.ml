(* The incremental engine: the differential property suite proving the
   incrementally patched provenance/arena bit-identical to
   rebuild-from-scratch over random delete/insert/solve streams, plus the
   Par pool, typed delta requests, Solution JSON round-tripping and the
   batch script parser. *)

open Util
module R = Relational
module D = Deleprop
module B = Setcover.Bitset

let seeds = QCheck2.Gen.int_range 0 10_000

(* ---- Par.Pool ---- *)

let test_pool_map () =
  let pool = D.Par.Pool.create ~domains:3 () in
  for n = 0 to 40 do
    let xs = List.init n (fun i -> i) in
    Alcotest.(check (list int)) "pool map = List.map"
      (List.map (fun x -> (x * x) + 1) xs)
      (D.Par.Pool.map pool (fun x -> (x * x) + 1) xs)
  done;
  (* same pool, reused across jobs of different types *)
  Alcotest.(check (list string)) "reuse, other type" [ "0"; "1"; "2" ]
    (D.Par.Pool.map pool string_of_int [ 0; 1; 2 ]);
  D.Par.Pool.shutdown pool;
  Alcotest.(check (list int)) "after shutdown: sequential fallback" [ 2; 4 ]
    (D.Par.Pool.map pool (fun x -> 2 * x) [ 1; 2 ]);
  D.Par.Pool.shutdown pool (* idempotent *)

let test_pool_exception () =
  let pool = D.Par.Pool.create ~domains:2 () in
  Alcotest.check_raises "first exception re-raised" (Failure "boom") (fun () ->
      ignore
        (D.Par.Pool.map pool
           (fun x -> if x = 3 then failwith "boom" else x)
           [ 0; 1; 2; 3; 4; 5 ]));
  (* the pool survives a failing job *)
  Alcotest.(check (list int)) "pool still works" [ 1; 2; 3 ]
    (D.Par.Pool.map pool (fun x -> x + 1) [ 0; 1; 2 ]);
  D.Par.Pool.shutdown pool

let test_pool_nested () =
  let pool = D.Par.Pool.create ~domains:3 () in
  (* inner maps degrade to sequential instead of deadlocking — whether
     the item runs on a worker or on the driving caller *)
  let rows = List.init 6 (fun i -> List.init 5 (fun j -> (i * 10) + j)) in
  let expect = List.map (List.map (fun x -> x + 1)) rows in
  Alcotest.(check (list (list int))) "nested pool map"
    expect
    (D.Par.Pool.map pool (fun row -> D.Par.Pool.map pool (fun x -> x + 1) row) rows);
  D.Par.Pool.shutdown pool

let test_par_map_pool_arg () =
  let pool = D.Par.Pool.create ~domains:2 () in
  Alcotest.(check (list int)) "Par.map ?pool" [ 0; 2; 4 ]
    (D.Par.map ~pool (fun x -> 2 * x) [ 0; 1; 2 ]);
  D.Par.Pool.shutdown pool

(* ---- Delta_request ---- *)

let fig1 () = Workload.Author_journal.scenario_q4 ()

let q4 vs = R.Tuple.strs vs

let test_delta_request_validate () =
  let p = fig1 () in
  let mv = D.Matview.create p.D.Problem.db p.D.Problem.queries in
  let views =
    List.fold_left
      (fun m (q : Cq.Query.t) -> D.Smap.add q.name (D.Matview.view mv q.name) m)
      D.Smap.empty p.D.Problem.queries
  in
  Alcotest.(check bool) "valid request" true
    (D.Delta_request.validate ~views
       [ D.Delta_request.make ~view:"Q4" [ q4 [ "John"; "TKDE"; "XML" ] ] ]
    = Ok ());
  (match
     D.Delta_request.validate ~views
       [ D.Delta_request.make ~view:"Q9" [ q4 [ "John"; "TKDE"; "XML" ] ] ]
   with
  | Error (D.Delta_request.Unknown_view { view; known }) ->
    Alcotest.(check string) "unknown view name" "Q9" view;
    Alcotest.(check (list string)) "known views" [ "Q4" ] known
  | _ -> Alcotest.fail "expected Unknown_view");
  match
    D.Delta_request.validate ~views
      [
        D.Delta_request.make ~view:"Q4" [ q4 [ "John"; "TKDE"; "XML" ] ];
        D.Delta_request.make ~view:"Q4" [ q4 [ "Nobody"; "TKDE"; "XML" ] ];
      ]
  with
  | Error (D.Delta_request.Not_in_view { view; tuple }) ->
    Alcotest.(check string) "view of bad tuple" "Q4" view;
    Alcotest.check Util.tuple "bad tuple" (q4 [ "Nobody"; "TKDE"; "XML" ]) tuple
  | _ -> Alcotest.fail "expected Not_in_view"

let test_matview_typed_problem () =
  let p = fig1 () in
  let mv = D.Matview.create p.D.Problem.db p.D.Problem.queries in
  let reqs = [ D.Delta_request.make ~view:"Q4" [ q4 [ "John"; "TKDE"; "XML" ] ] ] in
  (match D.Matview.problem ~requests:reqs mv with
  | Ok built ->
    (* the untyped problem the removed [Matview.problem_legacy] built *)
    let legacy =
      D.Problem.make ~db:p.D.Problem.db ~queries:p.D.Problem.queries
        ~deletions:(D.Delta_request.to_legacy reqs)
        ~allow_non_key_preserving:true ()
    in
    Alcotest.check Util.tuple_set "same ΔV as legacy path"
      (D.Problem.deletion legacy "Q4") (D.Problem.deletion built "Q4")
  | Error e -> Alcotest.fail (D.Delta_request.error_to_string e));
  match
    D.Matview.problem
      ~requests:[ D.Delta_request.make ~view:"Q4" [ q4 [ "Ghost"; "X"; "Y" ] ] ]
      mv
  with
  | Error (D.Delta_request.Not_in_view _) -> ()
  | _ -> Alcotest.fail "expected typed validation error"

(* ---- Solution JSON round-trip ---- *)

(* minimal extraction helpers for the flat one-line objects Solution.to_json
   emits (no nested arrays except "deleted", no escaped quotes in facts) *)

let field_string json key =
  let pat = Printf.sprintf "\"%s\":\"" key in
  match Astring.String.find_sub ~sub:pat json with
  | None -> Alcotest.fail (Printf.sprintf "field %s not found in %s" key json)
  | Some i ->
    let start = i + String.length pat in
    let stop = String.index_from json start '"' in
    String.sub json start (stop - start)

let field_raw json key =
  let pat = Printf.sprintf "\"%s\":" key in
  match Astring.String.find_sub ~sub:pat json with
  | None -> Alcotest.fail (Printf.sprintf "field %s not found in %s" key json)
  | Some i ->
    let start = i + String.length pat in
    let stop = ref start in
    while
      !stop < String.length json
      && (match json.[!stop] with ',' | '}' | ']' -> false | _ -> true)
    do
      incr stop
    done;
    String.sub json start (!stop - start)

let deleted_of_json json =
  let pat = "\"deleted\":[" in
  match Astring.String.find_sub ~sub:pat json with
  | None -> Alcotest.fail "deleted field not found"
  | Some i ->
    let start = i + String.length pat in
    let stop = String.index_from json start ']' in
    let body = String.sub json start (stop - start) in
    if String.trim body = "" then R.Stuple.Set.empty
    else
      String.split_on_char ',' body
      (* fact strings contain commas: re-join on fact boundaries "," *)
      |> List.fold_left
           (fun (acc, cur) piece ->
             let cur = if cur = "" then piece else cur ^ "," ^ piece in
             if String.length cur > 0 && cur.[String.length cur - 1] = '"' then
               (cur :: acc, "")
             else (acc, cur))
           ([], "")
      |> fst
      |> List.map (fun s ->
             let s = String.trim s in
             let s = String.sub s 1 (String.length s - 2) in
             let rel, tuple = R.Serial.fact_of_string s in
             R.Stuple.make rel tuple)
      |> R.Stuple.Set.of_list

let test_solution_json_roundtrip () =
  let prov = D.Provenance.build (fig1 ()) in
  let solutions = D.Portfolio.solutions (D.Arena.build prov) in
  Alcotest.(check bool) "portfolio not empty" true (solutions <> []);
  List.iter
    (fun (s : D.Solution.t) ->
      let json = D.Solution.to_json s in
      Alcotest.(check string) "algorithm" s.D.Solution.algorithm
        (field_string json "algorithm");
      Alcotest.check Util.stuple_set "deleted round-trips" s.D.Solution.deleted
        (deleted_of_json json);
      Alcotest.(check bool) "cost round-trips" true
        (Float.equal (D.Solution.cost s) (float_of_string (field_raw json "cost")));
      Alcotest.(check bool) "elapsed round-trips" true
        (Float.equal s.D.Solution.elapsed_ms
           (float_of_string (field_raw json "elapsed_ms")));
      Alcotest.(check string) "feasible" "true" (field_raw json "feasible"))
    solutions

(* ---- engine vs rebuild-from-scratch: the differential property ---- *)

let cert_equal (a : D.Solution.certificate) (b : D.Solution.certificate) =
  match (a, b) with
  | D.Solution.Exact, D.Solution.Exact
  | D.Solution.Heuristic, D.Solution.Heuristic
  | D.Solution.Anytime, D.Solution.Anytime ->
    true
  | D.Solution.Dual_bound x, D.Solution.Dual_bound y
  | D.Solution.Ratio x, D.Solution.Ratio y ->
    Float.equal x y
  | ( D.Solution.Composite { shards = x; factor = fx },
      D.Solution.Composite { shards = y; factor = fy } ) ->
    x = y && Option.equal Float.equal fx fy
  | _ -> false

let float_array_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (Float.equal x b.(i)) then ok := false) a;
  !ok

let check_prov_equal tag (e : D.Provenance.t) (s : D.Provenance.t) =
  Alcotest.(check bool) (tag ^ ": views") true
    (D.Smap.equal R.Tuple.Set.equal e.D.Provenance.views s.D.Provenance.views);
  Alcotest.(check bool) (tag ^ ": witness") true
    (D.Vtuple.Map.equal R.Stuple.Set.equal e.D.Provenance.witness
       s.D.Provenance.witness);
  Alcotest.(check bool) (tag ^ ": witness_path") true
    (D.Vtuple.Map.equal (List.equal R.Stuple.equal) e.D.Provenance.witness_path
       s.D.Provenance.witness_path);
  Alcotest.(check bool) (tag ^ ": containing") true
    (R.Stuple.Map.equal D.Vtuple.Set.equal e.D.Provenance.containing
       s.D.Provenance.containing);
  Alcotest.check Util.vtuple_set (tag ^ ": bad") s.D.Provenance.bad e.D.Provenance.bad;
  Alcotest.check Util.vtuple_set (tag ^ ": preserved") s.D.Provenance.preserved
    e.D.Provenance.preserved;
  Alcotest.(check bool) (tag ^ ": db") true
    (R.Instance.equal e.D.Provenance.problem.D.Problem.db
       s.D.Provenance.problem.D.Problem.db)

let check_arena_equal tag (e : D.Arena.t) (s : D.Arena.t) =
  Alcotest.(check bool) (tag ^ ": stuples") true
    (e.D.Arena.stuples = s.D.Arena.stuples);
  Alcotest.(check bool) (tag ^ ": vtuples") true
    (Array.length e.D.Arena.vtuples = Array.length s.D.Arena.vtuples
    && Array.for_all2 D.Vtuple.equal e.D.Arena.vtuples s.D.Arena.vtuples);
  Alcotest.(check bool) (tag ^ ": witness") true (e.D.Arena.witness = s.D.Arena.witness);
  Alcotest.(check bool) (tag ^ ": containing") true
    (e.D.Arena.containing = s.D.Arena.containing);
  Alcotest.(check bool) (tag ^ ": bad") true (B.equal e.D.Arena.bad s.D.Arena.bad);
  Alcotest.(check bool) (tag ^ ": preserved") true
    (B.equal e.D.Arena.preserved s.D.Arena.preserved);
  Alcotest.(check bool) (tag ^ ": weights bit-identical") true
    (float_array_equal e.D.Arena.weights s.D.Arena.weights);
  Alcotest.(check bool) (tag ^ ": bad_order") true
    (e.D.Arena.bad_order = s.D.Arena.bad_order);
  Alcotest.(check bool) (tag ^ ": forest_case") true
    (Bool.equal e.D.Arena.forest_case s.D.Arena.forest_case)

let check_solutions_equal tag (es : D.Solution.t list) (ss : D.Solution.t list) =
  Alcotest.(check int) (tag ^ ": same solution count") (List.length ss)
    (List.length es);
  List.iter2
    (fun (e : D.Solution.t) (s : D.Solution.t) ->
      Alcotest.(check string) (tag ^ ": algorithm") s.D.Solution.algorithm
        e.D.Solution.algorithm;
      Alcotest.check Util.stuple_set (tag ^ ": deleted") s.D.Solution.deleted
        e.D.Solution.deleted;
      let oe = e.D.Solution.outcome and os = s.D.Solution.outcome in
      Alcotest.(check bool) (tag ^ ": cost bit-identical") true
        (Float.equal oe.D.Side_effect.cost os.D.Side_effect.cost);
      Alcotest.(check bool) (tag ^ ": balanced bit-identical") true
        (Float.equal oe.D.Side_effect.balanced_cost os.D.Side_effect.balanced_cost);
      Alcotest.check Util.vtuple_set (tag ^ ": killed") os.D.Side_effect.killed
        oe.D.Side_effect.killed;
      Alcotest.check Util.vtuple_set (tag ^ ": side_effect")
        os.D.Side_effect.side_effect oe.D.Side_effect.side_effect;
      Alcotest.check Util.vtuple_set (tag ^ ": residual_bad")
        os.D.Side_effect.residual_bad oe.D.Side_effect.residual_bad;
      Alcotest.(check bool) (tag ^ ": feasible") os.D.Side_effect.feasible
        oe.D.Side_effect.feasible;
      Alcotest.(check bool) (tag ^ ": certificate") true
        (cert_equal e.D.Solution.certificate s.D.Solution.certificate))
    es ss

(* rebuild everything from the engine's current database, from scratch *)
let scratch_index queries (db : R.Instance.t) =
  let problem = D.Problem.make ~db ~queries ~deletions:[] () in
  let prov = D.Provenance.build problem in
  (prov, D.Arena.build prov)

let scratch_solutions queries (db : R.Instance.t) reqs =
  let problem =
    D.Problem.make ~db ~queries ~deletions:(D.Delta_request.to_legacy reqs) ()
  in
  let prov = D.Provenance.build problem in
  D.Portfolio.solutions (D.Arena.build prov)

(* random view tuples of the current index, as per-view requests *)
let random_requests rng (prov : D.Provenance.t) =
  let all =
    D.Smap.fold
      (fun view ts acc ->
        R.Tuple.Set.fold (fun t acc -> (view, t) :: acc) ts acc)
      prov.D.Provenance.views []
  in
  match all with
  | [] -> []
  | _ ->
    let n = 1 + Random.State.int rng (min 3 (List.length all)) in
    let picked =
      List.init n (fun _ -> List.nth all (Random.State.int rng (List.length all)))
    in
    (* group per view, dropping duplicate tuples *)
    List.fold_left
      (fun acc (view, t) ->
        if List.exists (fun (v, ts) -> v = view && List.mem t ts) acc then acc
        else if List.mem_assoc view acc then
          List.map (fun (v, ts) -> if v = view then (v, t :: ts) else (v, ts)) acc
        else (view, [ t ]) :: acc)
      [] picked
    |> List.map (fun (view, ts) -> D.Delta_request.make ~view ts)

let check_stream seed =
  let rng = rng seed in
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng
      {
        Workload.Forest_family.default with
        num_relations = 4;
        tuples_per_relation = 6;
        num_queries = 3;
        deletion_fraction = 0.0;
      }
  in
  let queries = p.D.Problem.queries in
  let eng = Engine.create ~domains:1 p.D.Problem.db queries in
  let deleted_pool = ref [] in
  let check_index tag =
    let prov_e, arena_e = Engine.index eng in
    let prov_s, arena_s = scratch_index queries (Engine.db eng) in
    check_prov_equal tag prov_e prov_s;
    check_arena_equal tag arena_e arena_s;
    (* the engine's materialized views track the index *)
    List.iter
      (fun (q : Cq.Query.t) ->
        Alcotest.check Util.tuple_set (tag ^ ": view " ^ q.name)
          (Option.value ~default:R.Tuple.Set.empty
             (D.Smap.find_opt q.name prov_s.D.Provenance.views))
          (Engine.view eng q.name))
      queries
  in
  check_index "initial";
  for step = 1 to 10 do
    let tag = Printf.sprintf "seed %d step %d" seed step in
    match Random.State.int rng 4 with
    | 0 | 1 -> (
      (* solve + apply best *)
      let prov_e, _ = Engine.index eng in
      match random_requests rng prov_e with
      | [] -> ()
      | reqs -> (
        let scratch = scratch_solutions queries (Engine.db eng) reqs in
        match Engine.request eng reqs with
        | Error e -> Alcotest.fail (tag ^ ": " ^ D.Delta_request.error_to_string e)
        | Ok plan ->
          check_solutions_equal tag plan.Engine.solutions scratch;
          (match Engine.apply eng plan with
          | Some s ->
            deleted_pool :=
              R.Stuple.Set.elements s.D.Solution.deleted @ !deleted_pool
          | None -> ());
          check_index tag))
    | 2 -> (
      (* direct source deletion *)
      match R.Instance.stuples (Engine.db eng) with
      | [] -> ()
      | sts ->
        let st = List.nth sts (Random.State.int rng (List.length sts)) in
        Engine.delete eng (R.Stuple.Set.singleton st);
        deleted_pool := st :: !deleted_pool;
        check_index tag)
    | _ -> (
      (* re-insert a previously deleted tuple: patches the index in place *)
      match !deleted_pool with
      | [] -> ()
      | st :: rest ->
        deleted_pool := rest;
        if not (R.Instance.mem (Engine.db eng) st) then begin
          Engine.insert eng st;
          check_index tag
        end)
  done;
  check_index "final";
  let s = Engine.stats eng in
  Alcotest.(check int) "index built exactly once" 1 s.Engine.rebuilds;
  Engine.close eng;
  true

let prop_stream =
  qcheck ~count:15 "engine: incremental = rebuild over random streams" seeds
    check_stream

(* ---- mixed delta streams: symmetric updates through [apply_delta] ---- *)

let check_partition_equal tag (e : D.Arena.partition) (s : D.Arena.partition) =
  Alcotest.(check int) (tag ^ ": num_components") s.D.Arena.num_components
    e.D.Arena.num_components;
  Alcotest.(check bool) (tag ^ ": comp_of_sid identical") true
    (e.D.Arena.comp_of_sid = s.D.Arena.comp_of_sid);
  Alcotest.(check bool) (tag ^ ": comp_of_vid identical") true
    (e.D.Arena.comp_of_vid = s.D.Arena.comp_of_vid)

(* Ten rounds of interleaved deletes + re-inserts committed as ONE
   symmetric [Engine.apply_delta] transition each (solve + apply every
   third round); after every commit the live index, its maintained
   partition — component numbering included — and the views must be
   bit-identical to a scratch rebuild of the engine's database. *)
let check_mixed_stream ?(scale = 6) ~plan seed =
  let rng = rng seed in
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng
      {
        Workload.Forest_family.default with
        num_relations = 4;
        tuples_per_relation = scale;
        num_queries = 3;
        deletion_fraction = 0.0;
      }
  in
  let queries = p.D.Problem.queries in
  let eng = Engine.create ~plan ~domains:1 p.D.Problem.db queries in
  let deleted_pool = ref [] in
  let inserts_applied = ref 0 in
  let check_index tag =
    let prov_e, arena_e = Engine.index eng in
    let prov_s, arena_s = scratch_index queries (Engine.db eng) in
    check_prov_equal tag prov_e prov_s;
    (* under the lazy regime (the planner default) the live arena may
       carry tombstones; its compacted form must be bit-identical to a
       scratch build, and the maintained partition must carry its labels
       through compaction unchanged *)
    check_arena_equal tag (D.Arena.compact arena_e) arena_s;
    check_partition_equal tag
      (D.Arena.compact_partition ~before:arena_e (Engine.partition eng))
      (D.Arena.partition arena_s);
    List.iter
      (fun (q : Cq.Query.t) ->
        Alcotest.check Util.tuple_set (tag ^ ": view " ^ q.name)
          (Option.value ~default:R.Tuple.Set.empty
             (D.Smap.find_opt q.name prov_s.D.Provenance.views))
          (Engine.view eng q.name))
      queries
  in
  check_index "mixed initial";
  for step = 1 to 10 do
    let tag = Printf.sprintf "mixed seed %d step %d" seed step in
    (* a symmetric update: up to two source deletions plus the re-insert
       of a previously deleted tuple, committed in one transition *)
    let deletes =
      match R.Instance.stuples (Engine.db eng) with
      | [] -> R.Stuple.Set.empty
      | sts ->
        List.init
          (1 + Random.State.int rng 2)
          (fun _ -> List.nth sts (Random.State.int rng (List.length sts)))
        |> R.Stuple.Set.of_list
    in
    let inserts =
      match !deleted_pool with
      | [] -> R.Stuple.Set.empty
      | st :: rest ->
        deleted_pool := rest;
        R.Stuple.Set.singleton st
    in
    let applied = Engine.apply_delta eng (D.Delta.make ~deletes ~inserts ()) in
    deleted_pool :=
      R.Stuple.Set.elements
        (R.Stuple.Set.diff applied.D.Delta.deletes applied.D.Delta.inserts)
      @ !deleted_pool;
    inserts_applied := !inserts_applied + R.Stuple.Set.cardinal applied.D.Delta.inserts;
    check_index tag;
    if step mod 3 = 0 then begin
      let prov_e, _ = Engine.index eng in
      match random_requests rng prov_e with
      | [] -> ()
      | reqs -> (
        match Engine.request eng reqs with
        | Error e -> Alcotest.fail (tag ^ ": " ^ D.Delta_request.error_to_string e)
        | Ok plan ->
          (match Engine.apply eng plan with
          | Some s ->
            deleted_pool :=
              R.Stuple.Set.elements s.D.Solution.deleted @ !deleted_pool
          | None -> ());
          check_index (tag ^ " after solve"))
    end
  done;
  check_index "mixed final";
  let s = Engine.stats eng in
  Alcotest.(check int) "one rebuild for the whole mixed session" 1 s.Engine.rebuilds;
  Alcotest.(check int) "patched inserts counted separately" !inserts_applied
    s.Engine.inserts_patched;
  Alcotest.(check bool) "some inserts were patched" true (s.Engine.inserts_patched > 0);
  Engine.close eng;
  true

let prop_mixed_stream =
  qcheck ~count:10 "engine: mixed delta stream = rebuild (flat)" seeds
    (check_mixed_stream ~plan:false)

let prop_mixed_stream_plan =
  qcheck ~count:10 "engine: mixed delta stream = rebuild (planner)" seeds
    (check_mixed_stream ~plan:true)

(* the acceptance bar pinned at forest scale 40: one 10-round mixed
   session, exactly one index build, every insert patched, state
   bit-identical to rebuild-per-round throughout *)
let test_engine_mixed_scale40 () = ignore (check_mixed_stream ~scale:40 ~plan:false 40)

(* ---- engine session on Fig. 1 ---- *)

let test_engine_fig1 () =
  let p = fig1 () in
  let eng = Engine.create ~domains:1 p.D.Problem.db p.D.Problem.queries in
  let reqs = [ D.Delta_request.make ~view:"Q4" [ q4 [ "John"; "TKDE"; "XML" ] ] ] in
  (match Engine.request eng reqs with
  | Error e -> Alcotest.fail (D.Delta_request.error_to_string e)
  | Ok plan ->
    Alcotest.(check bool) "has feasible solutions" true (plan.Engine.solutions <> []);
    let best = List.hd plan.Engine.solutions in
    check_float "optimal cost is 1" 1.0 (D.Solution.cost best);
    (match Engine.apply eng plan with
    | None -> Alcotest.fail "apply returned no solution"
    | Some s ->
      Alcotest.(check bool) "applied the ranked best" true
        (R.Stuple.Set.equal s.D.Solution.deleted best.D.Solution.deleted));
    (* the retracted answer is gone from the maintained view *)
    Alcotest.(check bool) "view updated" false
      (R.Tuple.Set.mem (q4 [ "John"; "TKDE"; "XML" ]) (Engine.view eng "Q4")));
  (* unknown view -> typed error, not an exception *)
  (match Engine.request eng [ D.Delta_request.make ~view:"Q9" [] ] with
  | Error (D.Delta_request.Unknown_view _) -> ()
  | _ -> Alcotest.fail "expected Unknown_view");
  (* an insert patches the live index; it never triggers a rebuild *)
  Engine.insert eng (R.Stuple.make "T1" (R.Tuple.strs [ "Zoe"; "VLDB" ]));
  let s = Engine.stats eng in
  Alcotest.(check int) "rounds" 1 s.Engine.rounds;
  Alcotest.(check int) "applies" 1 s.Engine.applies;
  Alcotest.(check int) "patches" 1 s.Engine.patches;
  Alcotest.(check int) "inserts patched" 1 s.Engine.inserts_patched;
  Alcotest.(check int) "rebuilds (initial only)" 1 s.Engine.rebuilds;
  Alcotest.(check bool) "tuples deleted" true (s.Engine.tuples_deleted >= 1);
  Alcotest.(check int) "tuples inserted" 1 s.Engine.tuples_inserted;
  Engine.close eng

let test_engine_domains_equal () =
  let p = fig1 () in
  let reqs = [ D.Delta_request.make ~view:"Q4" [ q4 [ "John"; "TKDE"; "XML" ] ] ] in
  let solve domains =
    let eng = Engine.create ~domains p.D.Problem.db p.D.Problem.queries in
    let r =
      match Engine.request eng reqs with
      | Ok plan -> plan.Engine.solutions
      | Error e -> Alcotest.fail (D.Delta_request.error_to_string e)
    in
    Engine.close eng;
    r
  in
  check_solutions_equal "domains 2 = domains 1" (solve 2) (solve 1)

(* ---- Script ---- *)

let test_script_parse () =
  let text =
    "# comment\n\
     solve Q4(John, TKDE, XML); Q4(Tom, TKDE, XML)\n\
     \n\
     insert T1(Ann, TODS)\n\
     delete T2(TODS, XML, 30)\n"
  in
  match Engine.Script.parse text with
  | Error e -> Alcotest.fail e
  | Ok lines -> (
    Alcotest.(check int) "three ops" 3 (List.length lines);
    Alcotest.(check (list int)) "source line numbers" [ 2; 4; 5 ]
      (List.map (fun (l : Engine.Script.line) -> l.Engine.Script.lineno) lines);
    (match List.nth lines 0 with
    | { Engine.Script.op = Engine.Script.Solve [ r ]; text; _ } ->
      Alcotest.(check string) "solve view" "Q4" r.D.Delta_request.view;
      Alcotest.(check int) "grouped tuples" 2 (List.length r.D.Delta_request.tuples);
      Alcotest.(check bool) "line text kept" true
        (Astring.String.is_prefix ~affix:"solve Q4" text)
    | _ -> Alcotest.fail "expected one grouped solve request");
    (match List.nth lines 1 with
    | { Engine.Script.op = Engine.Script.Insert st; _ } ->
      Alcotest.(check string) "insert rel" "T1" st.R.Stuple.rel
    | _ -> Alcotest.fail "expected insert");
    match List.nth lines 2 with
    | { Engine.Script.op = Engine.Script.Delete st; _ } ->
      Alcotest.(check string) "delete rel" "T2" st.R.Stuple.rel
    | _ -> Alcotest.fail "expected delete")

let test_script_parse_errors () =
  (match Engine.Script.parse "solve\n" with
  | Error e -> Alcotest.(check bool) "line number reported" true
                 (Astring.String.is_prefix ~affix:"line 1" e)
  | Ok _ -> Alcotest.fail "bare solve must fail");
  (match Engine.Script.parse "# ok\nfrobnicate T1(x)\n" with
  | Error e -> Alcotest.(check bool) "unknown op on line 2" true
                 (Astring.String.is_prefix ~affix:"line 2" e)
  | Ok _ -> Alcotest.fail "unknown op must fail");
  match Engine.Script.parse "insert T1(unterminated\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad fact must fail"

let test_script_replay () =
  let p = fig1 () in
  let eng = Engine.create ~domains:1 p.D.Problem.db p.D.Problem.queries in
  let ops =
    match
      Engine.Script.parse
        "solve Q4(John, TKDE, XML)\nsolve Q4(Tom, TKDE, XML)\ndelete T2(TODS, XML, 30)\n"
    with
    | Ok ops -> ops
    | Error e -> Alcotest.fail e
  in
  (match Engine.Script.replay eng ops with
  | Error e -> Alcotest.fail e
  | Ok rounds ->
    Alcotest.(check int) "three rounds" 3 (List.length rounds);
    List.iteri
      (fun i (r : Engine.Script.round) ->
        Alcotest.(check int) "numbered in order" (i + 1) r.Engine.Script.number)
      rounds;
    (match (List.nth rounds 0).Engine.Script.plan with
    | Some plan -> Alcotest.(check bool) "solved" true (plan.Engine.solutions <> [])
    | None -> Alcotest.fail "solve round must carry a plan"));
  (* a solve for a now-deleted answer fails with its round number *)
  (match
     Engine.Script.replay eng
       (match Engine.Script.parse "solve Q4(NoSuch, TKDE, XML)\n" with
       | Ok ops -> ops
       | Error e -> Alcotest.fail e)
   with
  | Error e -> Alcotest.(check bool) "round number in error" true
                 (Astring.String.is_prefix ~affix:"round 1" e)
  | Ok _ -> Alcotest.fail "expected replay error");
  Engine.close eng

let suite =
  [
    Alcotest.test_case "pool: map = List.map, reuse, shutdown" `Quick test_pool_map;
    Alcotest.test_case "pool: exception propagation" `Quick test_pool_exception;
    Alcotest.test_case "pool: nested map degrades" `Quick test_pool_nested;
    Alcotest.test_case "par: ?pool argument" `Quick test_par_map_pool_arg;
    Alcotest.test_case "delta request: validation" `Quick test_delta_request_validate;
    Alcotest.test_case "matview: typed problem" `Quick test_matview_typed_problem;
    Alcotest.test_case "solution: JSON round-trip" `Quick test_solution_json_roundtrip;
    prop_stream;
    prop_mixed_stream;
    prop_mixed_stream_plan;
    Alcotest.test_case "engine: mixed session, scale 40" `Quick test_engine_mixed_scale40;
    Alcotest.test_case "engine: Fig. 1 session + stats" `Quick test_engine_fig1;
    Alcotest.test_case "engine: domains 2 = domains 1" `Quick test_engine_domains_equal;
    Alcotest.test_case "script: parse" `Quick test_script_parse;
    Alcotest.test_case "script: parse errors" `Quick test_script_parse_errors;
    Alcotest.test_case "script: replay" `Quick test_script_replay;
  ]
