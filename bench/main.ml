(* Bechamel timing benchmarks, one group per experiment of EXPERIMENTS.md.

   Quality (approximation-ratio) tables come from `bin/experiments.exe`;
   this harness times the algorithms that produce them. Every workload is
   generated once, outside the timed thunk, from a fixed seed. *)

open Bechamel
open Toolkit

module R = Relational
module D = Deleprop
module SC = Setcover

let rng seed = Random.State.make [| seed |]

(* ---- prepared workloads (built once) ---- *)

let forest ?(scale = 10) seed =
  let { Workload.Forest_family.problem; _ } =
    Workload.Forest_family.generate ~rng:(rng seed)
      { Workload.Forest_family.default with num_relations = 5; tuples_per_relation = scale;
        num_queries = 5; max_path_len = 3; deletion_fraction = 0.15 }
  in
  problem

let star seed =
  Workload.Random_family.generate ~rng:(rng seed)
    { Workload.Random_family.default with num_queries = 4; fact_tuples = 12; dim_tuples = 6 }

let pivot ?(scale = 12) seed =
  Workload.Pivot_family.generate ~rng:(rng seed)
    { Workload.Pivot_family.default with depth = 4; tuples_per_relation = scale; num_queries = 4 }

let hard seed =
  fst
    (Workload.Hard_family.generate ~rng:(rng seed)
       { Workload.Hard_family.default with num_red = 8; num_blue = 8; num_sets = 10 })

let prov p = D.Provenance.build p

(* ---- benchmark groups ---- *)

(* E1 (Fig. 1): end-to-end on the running example *)
let bench_e1 =
  Test.make_grouped ~name:"e1_fig1"
    [
      Test.make ~name:"provenance"
        (Staged.stage (fun () -> prov (Workload.Author_journal.scenario_q4 ())));
      (let prov = prov (Workload.Author_journal.scenario_q4 ()) in
       Test.make ~name:"brute" (Staged.stage (fun () -> D.Brute.solve prov)));
    ]

(* E2/E8: hard-family reduction + solvers *)
let bench_e2 =
  let h = hard 11 in
  let pv = prov h.D.Hardness.problem in
  Test.make_grouped ~name:"e2_hard_family"
    [
      Test.make ~name:"reduce_thm1"
        (Staged.stage (fun () ->
             let rb =
               Workload.Rbsc_gen.red_blue ~rng:(rng 11) ~num_red:8 ~num_blue:8 ~num_sets:10
                 ~red_density:0.3 ~blue_density:0.35
             in
             D.Hardness.of_red_blue rb));
      Test.make ~name:"brute" (Staged.stage (fun () -> D.Brute.solve pv));
      Test.make ~name:"general_approx" (Staged.stage (fun () -> D.General_approx.solve pv));
    ]

(* E3: general-case approximation on star joins *)
let bench_e3 =
  let pv = prov (star 23) in
  Test.make_grouped ~name:"e3_general"
    [
      Test.make ~name:"to_red_blue" (Staged.stage (fun () -> D.Reduction.to_red_blue pv));
      Test.make ~name:"general_approx" (Staged.stage (fun () -> D.General_approx.solve pv));
    ]

(* E4/E5: primal-dual across scales (Prop. 1 runtime) *)
let bench_e5 =
  Test.make_grouped ~name:"e5_primal_dual"
    (List.map
       (fun scale ->
         let pv = prov (forest ~scale 31) in
         Test.make ~name:(Printf.sprintf "scale_%d" scale)
           (Staged.stage (fun () -> D.Primal_dual.solve pv)))
       [ 10; 20; 40; 80 ])

(* E6: LowDeg sweep *)
let bench_e6 =
  let pv = prov (forest ~scale:10 41) in
  Test.make_grouped ~name:"e6_lowdeg"
    [
      Test.make ~name:"single_tau" (Staged.stage (fun () -> D.Lowdeg.solve_with_tau pv ~tau:2));
      Test.make ~name:"full_sweep" (Staged.stage (fun () -> D.Lowdeg.solve pv));
    ]

(* E7: DP vs brute force on pivot forests *)
let bench_e7 =
  let small = prov (pivot ~scale:8 53) in
  let large = prov (pivot ~scale:100 53) in
  Test.make_grouped ~name:"e7_dp_tree"
    [
      Test.make ~name:"dp_small" (Staged.stage (fun () -> D.Dp_tree.solve small));
      Test.make ~name:"brute_small" (Staged.stage (fun () -> D.Brute.solve small));
      Test.make ~name:"dp_large" (Staged.stage (fun () -> D.Dp_tree.solve large));
    ]

(* E8: balanced solvers *)
let bench_e8 =
  let pv = prov (forest ~scale:8 61) in
  Test.make_grouped ~name:"e8_balanced"
    [
      Test.make ~name:"exact" (Staged.stage (fun () -> D.Balanced.solve_exact pv));
      Test.make ~name:"general" (Staged.stage (fun () -> D.Balanced.solve_general pv));
    ]

(* E9: single-query polynomial case *)
let bench_e9 =
  let pv =
    prov
      (Workload.Random_family.generate_single ~rng:(rng 71)
         { Workload.Random_family.default with fact_tuples = 40; dim_tuples = 20 })
  in
  Test.make_grouped ~name:"e9_single_query"
    [
      Test.make ~name:"single_query" (Staged.stage (fun () -> D.Single_query.solve pv));
      Test.make ~name:"greedy_multi" (Staged.stage (fun () -> D.Single_query.solve_greedy_multi pv));
    ]

(* E10: hypergraph machinery *)
let bench_e10 =
  let qs = (forest ~scale:10 83).D.Problem.queries in
  Test.make_grouped ~name:"e10_hypergraph"
    [
      Test.make ~name:"dual+forest_check"
        (Staged.stage (fun () -> Hypergraph.Dual.is_forest_case qs));
      Test.make ~name:"rel_tree" (Staged.stage (fun () -> Hypergraph.Rel_tree.of_queries qs));
    ]

(* E11: LP build + simplex *)
let bench_e11 =
  let pv = prov (forest ~scale:6 97) in
  Test.make_grouped ~name:"e11_lp"
    [
      Test.make ~name:"build" (Staged.stage (fun () -> D.Lp_formulation.build pv));
      Test.make ~name:"simplex" (Staged.stage (fun () -> D.Lp_formulation.lower_bound pv));
    ]

(* E12: source side-effect *)
let bench_e12 =
  let pv = prov (forest ~scale:10 113) in
  Test.make_grouped ~name:"e12_source"
    [
      Test.make ~name:"exact" (Staged.stage (fun () -> D.Source_side_effect.solve_exact pv));
      Test.make ~name:"greedy" (Staged.stage (fun () -> D.Source_side_effect.solve_greedy pv));
    ]

(* E14: cleaning workloads end-to-end *)
let bench_e14 =
  let w =
    Workload.Cleaning.generate ~rng:(rng 127) ~views_with_feedback:4
      { Workload.Cleaning.default with tuples_per_relation = 5 }
  in
  let pv = prov w.Workload.Cleaning.problem in
  Test.make_grouped ~name:"e14_cleaning"
    [
      Test.make ~name:"generate"
        (Staged.stage (fun () ->
             Workload.Cleaning.generate ~rng:(rng 127) ~views_with_feedback:4
               { Workload.Cleaning.default with tuples_per_relation = 5 }));
      Test.make ~name:"repair_exact" (Staged.stage (fun () -> D.Brute.solve pv));
    ]

(* E15: ablation variants *)
let bench_e15 =
  let pv = prov (forest ~scale:20 131) in
  Test.make_grouped ~name:"e15_ablations"
    [
      Test.make ~name:"pd_full" (Staged.stage (fun () -> D.Primal_dual.solve pv));
      Test.make ~name:"pd_no_reverse_delete"
        (Staged.stage (fun () -> D.Primal_dual.solve ~reverse_delete:false pv));
      Test.make ~name:"lowdeg_no_prune"
        (Staged.stage (fun () -> D.Lowdeg.solve ~prune_wide:false pv));
    ]

(* E16: bounded deletion *)
let bench_e16 =
  let pv = prov (forest ~scale:8 137) in
  Test.make_grouped ~name:"e16_bounded"
    [
      Test.make ~name:"min_budget" (Staged.stage (fun () -> D.Bounded.min_budget pv));
      Test.make ~name:"solve_k3" (Staged.stage (fun () -> D.Bounded.solve ~k:3 pv));
    ]

(* E17: incremental maintenance vs full re-evaluation *)
let bench_e17 =
  let p = forest ~scale:60 139 in
  let db = p.D.Problem.db in
  let q = List.hd p.D.Problem.queries in
  let view = Cq.Eval.evaluate db q in
  let dd =
    match R.Instance.stuples db with
    | a :: b :: _ -> R.Stuple.Set.of_list [ a; b ]
    | l -> R.Stuple.Set.of_list l
  in
  Test.make_grouped ~name:"e17_maintenance"
    [
      Test.make ~name:"full_reeval"
        (Staged.stage (fun () -> Cq.Eval.evaluate (R.Instance.delete db dd) q));
      Test.make ~name:"incremental"
        (Staged.stage (fun () -> Cq.Maintain.refresh db q ~view dd));
    ]

(* E18: join planning *)
let bench_e18 =
  let p =
    Workload.Random_family.generate ~rng:(rng 149)
      { Workload.Random_family.default with num_dimensions = 3; dims_per_query = 3;
        fact_tuples = 30; dim_tuples = 10; num_queries = 1 }
  in
  let q = List.hd p.D.Problem.queries in
  let adversarial = { q with Cq.Query.body = List.rev q.Cq.Query.body } in
  Test.make_grouped ~name:"e18_planning"
    [
      Test.make ~name:"naive"
        (Staged.stage (fun () -> Cq.Eval.evaluate ~planned:false p.D.Problem.db adversarial));
      Test.make ~name:"planned"
        (Staged.stage (fun () -> Cq.Eval.evaluate ~planned:true p.D.Problem.db adversarial));
    ]

(* phase-5 substrates: indexes, lineage, causality, UCQ *)
let bench_phase5 =
  let p = forest ~scale:40 151 in
  let db = p.D.Problem.db in
  let q = List.hd p.D.Problem.queries in
  let answer =
    match R.Tuple.Set.elements (Cq.Eval.evaluate db q) with
    | t :: _ -> Some t
    | [] -> None
  in
  let u =
    Cq.Ucq.make ~name:"U"
      [ Cq.Parser.query_of_string "U(K, A) :- R0(K, A)";
        Cq.Parser.query_of_string "U(K, A) :- R1(K, A, P)" ]
  in
  Test.make_grouped ~name:"phase5"
    ([
       Test.make ~name:"ucq_eval" (Staged.stage (fun () -> Cq.Ucq.evaluate db u));
     ]
    @
    match answer with
    | None -> []
    | Some a ->
      [
        Test.make ~name:"why_provenance" (Staged.stage (fun () -> Cq.Lineage.why db q a));
        Test.make ~name:"where_provenance" (Staged.stage (fun () -> Cq.Lineage.where_ db q a));
        Test.make ~name:"causality_ranking"
          (Staged.stage (fun () -> Cq.Causality.ranking db q ~answer:a));
      ])

(* arena: compile cost of the dense representation, and old-vs-new solver
   timings across forest scales. `pd_seed_*` / `lowdeg_seed_*` /
   `rbsc_approx_seed` are the pre-arena reference paths; their `_arena`
   (resp. `_bitset`) counterparts include every cost of the new path —
   e.g. `pd_arena_*` is Arena.build + kernel. BENCH_arena.json tracks
   this group from PR 1 onward. *)
let bench_arena =
  let scales = [ 10; 20; 40; 80 ] in
  let scale_tests =
    List.concat_map
      (fun scale ->
        let pv = prov (forest ~scale 31) in
        [
          Test.make ~name:(Printf.sprintf "build_scale_%d" scale)
            (Staged.stage (fun () -> D.Arena.build pv));
          Test.make ~name:(Printf.sprintf "pd_seed_scale_%d" scale)
            (Staged.stage (fun () -> Reference.Pd_reference.solve_reference pv));
          Test.make ~name:(Printf.sprintf "pd_arena_scale_%d" scale)
            (Staged.stage (fun () -> D.Primal_dual.solve pv));
        ])
      scales
  in
  let lowdeg_tests =
    let pv = prov (forest ~scale:20 31) in
    [
      Test.make ~name:"lowdeg_seed_scale_20"
        (Staged.stage (fun () -> Reference.Lowdeg_reference.solve_reference pv));
      Test.make ~name:"lowdeg_arena_scale_20"
        (Staged.stage (fun () -> D.Lowdeg.solve pv));
    ]
  in
  let rbsc_tests =
    let rb =
      Workload.Rbsc_gen.red_blue ~rng:(rng 17) ~num_red:60 ~num_blue:60 ~num_sets:80
        ~red_density:0.2 ~blue_density:0.2
    in
    [
      Test.make ~name:"rbsc_approx_seed"
        (Staged.stage (fun () -> Reference.Rb_reference.solve_approx_reference rb));
      Test.make ~name:"rbsc_approx_bitset"
        (Staged.stage (fun () -> SC.Red_blue.solve_approx rb));
    ]
  in
  Test.make_grouped ~name:"arena" (scale_tests @ lowdeg_tests @ rbsc_tests)

(* engine: 10-round deletion sessions, incremental index maintenance vs
   rebuild-per-round, plus the index patch/rebuild micro pair. Both
   session paths replay the identical round sequence (the request is a
   pure function of the current views, and the differential tests prove
   the two indexes bit-identical), so the timing difference is exactly
   the maintenance strategy. BENCH_engine.json tracks this group. *)
(* cheapest answer of the first nonempty view — deterministic and
   state-derived, so every session variant picks the same ΔV every round *)
let pick_request view_of queries =
  List.find_map
    (fun (q : Cq.Query.t) ->
      let v = view_of q.Cq.Query.name in
      if R.Tuple.Set.is_empty v then None
      else Some (D.Delta_request.make ~view:q.Cq.Query.name [ R.Tuple.Set.min_elt v ]))
    queries

let bench_engine =
  let rounds = 10 in
  let engine_session db queries () =
    let eng = Engine.create ~algorithms:[ "primal-dual" ] ~domains:1 db queries in
    for _round = 1 to rounds do
      match pick_request (Engine.view eng) queries with
      | None -> ()
      | Some req -> (
        match Engine.request eng [ req ] with
        | Ok plan -> ignore (Engine.apply eng plan)
        | Error _ -> assert false)
    done;
    Engine.close eng
  in
  let rebuild_session db queries () =
    let db = ref db in
    for _round = 1 to rounds do
      let p = D.Problem.make ~db:!db ~queries ~deletions:[] () in
      let pv = D.Provenance.build p in
      let view_of name =
        Option.value ~default:R.Tuple.Set.empty (D.Smap.find_opt name pv.D.Provenance.views)
      in
      match pick_request view_of queries with
      | None -> ()
      | Some req -> (
        let pv' = D.Provenance.with_deletions pv [ req ] in
        match D.Portfolio.solutions ~only:[ "primal-dual" ] (D.Arena.build pv') with
        | best :: _ -> db := R.Instance.delete !db best.D.Solution.deleted
        | [] -> ())
    done
  in
  let session_tests =
    List.concat_map
      (fun scale ->
        let p = forest ~scale 167 in
        let db = p.D.Problem.db and queries = p.D.Problem.queries in
        [
          Test.make ~name:(Printf.sprintf "session%d_rebuild_scale_%d" rounds scale)
            (Staged.stage (rebuild_session db queries));
          Test.make ~name:(Printf.sprintf "session%d_incremental_scale_%d" rounds scale)
            (Staged.stage (engine_session db queries));
        ])
      [ 20; 40; 80 ]
  in
  let micro_tests =
    let p = forest ~scale:40 167 in
    let base = D.Problem.make ~db:p.D.Problem.db ~queries:p.D.Problem.queries ~deletions:[] () in
    let pv = D.Provenance.build base in
    let arena = D.Arena.build pv in
    let dd =
      match R.Instance.stuples p.D.Problem.db with
      | a :: b :: _ -> R.Stuple.Set.of_list [ a; b ]
      | l -> R.Stuple.Set.of_list l
    in
    [
      Test.make ~name:"index_rebuild_scale_40"
        (Staged.stage (fun () -> D.Arena.build (D.Provenance.build base)));
      Test.make ~name:"index_patch_scale_40"
        (Staged.stage (fun () -> D.Arena.delete arena ~dd (D.Provenance.delete pv dd)));
    ]
  in
  Test.make_grouped ~name:"engine" (session_tests @ micro_tests)

(* mixed: 10-round mixed-workload sessions — every round commits a
   source-side edit (odd rounds delete a tuple, even rounds re-insert
   it: a steady churn of deletes and inserts) and then solves one
   deletion request. The patched engine carries ONE index through the
   whole session (deletes patch, inserts splice, the partition splits
   and merges); the invalidate-and-rebuild baseline is what inserts used
   to force — any insert invalidates the compiled index, so every solve
   rebuilds provenance + arena from the current database. Both variants
   replay the identical deterministic round sequence (each round's edit
   and request are pure functions of the current state, and the
   differential tests prove the two indexes bit-identical), so the
   timing difference is exactly the maintenance strategy.
   BENCH_mixed.json tracks this group. *)
let bench_mixed =
  let rounds = 10 in
  let solve_engine eng queries =
    match pick_request (Engine.view eng) queries with
    | None -> ()
    | Some req -> (
      match Engine.request eng [ req ] with
      | Ok plan -> ignore (Engine.apply eng plan)
      | Error _ -> assert false)
  in
  let patched_session db queries () =
    let eng = Engine.create ~algorithms:[ "primal-dual" ] ~domains:1 db queries in
    let pool = ref [] in
    for round = 1 to rounds do
      (if round mod 2 = 1 then (
         match R.Instance.stuples (Engine.db eng) with
         | [] -> ()
         | st :: _ ->
           Engine.delete eng (R.Stuple.Set.singleton st);
           pool := st :: !pool)
       else
         match !pool with
         | [] -> ()
         | st :: rest ->
           pool := rest;
           Engine.insert eng st);
      solve_engine eng queries
    done;
    Engine.close eng
  in
  let rebuild_session db queries () =
    let db = ref db in
    let pool = ref [] in
    for round = 1 to rounds do
      (if round mod 2 = 1 then (
         match R.Instance.stuples !db with
         | [] -> ()
         | st :: _ ->
           db := R.Instance.delete !db (R.Stuple.Set.singleton st);
           pool := st :: !pool)
       else
         match !pool with
         | [] -> ()
         | st :: rest ->
           pool := rest;
           db := R.Instance.add_stuple !db st);
      let p = D.Problem.make ~db:!db ~queries ~deletions:[] () in
      let pv = D.Provenance.build p in
      let view_of name =
        Option.value ~default:R.Tuple.Set.empty
          (D.Smap.find_opt name pv.D.Provenance.views)
      in
      match pick_request view_of queries with
      | None -> ()
      | Some req -> (
        let pv' = D.Provenance.with_deletions pv [ req ] in
        match D.Portfolio.solutions ~only:[ "primal-dual" ] (D.Arena.build pv') with
        | best :: _ -> db := R.Instance.delete !db best.D.Solution.deleted
        | [] -> ())
    done
  in
  Test.make_grouped ~name:"mixed"
    (List.concat_map
       (fun scale ->
         let p = forest ~scale 167 in
         let db = p.D.Problem.db and queries = p.D.Problem.queries in
         [
           Test.make ~name:(Printf.sprintf "session%d_rebuild_scale_%d" rounds scale)
             (Staged.stage (rebuild_session db queries));
           Test.make ~name:(Printf.sprintf "session%d_patched_scale_%d" rounds scale)
             (Staged.stage (patched_session db queries));
         ])
       [ 40; 80 ])

(* resilience: what durability and deadlines cost at forest scale 40.
   The same 10-round session as the engine group, crossed over
   {budget off/on} × {journal off/on} — the budget is generous enough to
   never expire, so the variants time pure bookkeeping (deadline ticks;
   append + flush per commit), not degraded rounds. `recover` times
   reopening a session from the journal such a session leaves behind.
   BENCH_resilience.json tracks this group; the journal column is the
   durability overhead EXPERIMENTS.md bounds at 10%. *)
let bench_resilience =
  let rounds = 10 in
  let p = forest ~scale:40 167 in
  let db = p.D.Problem.db and queries = p.D.Problem.queries in
  let journal_path =
    Filename.concat (Filename.get_temp_dir_name ()) "deleprop_bench.journal"
  in
  let session ?budget_ms ?journal () =
    let eng =
      Engine.create ~algorithms:[ "primal-dual" ] ~domains:1 ?budget_ms ?journal db
        queries
    in
    for _round = 1 to rounds do
      match pick_request (Engine.view eng) queries with
      | None -> ()
      | Some req -> (
        match Engine.request eng [ req ] with
        | Ok plan -> ignore (Engine.apply eng plan)
        | Error _ -> assert false)
    done;
    Engine.close eng
  in
  (* a finished session's journal, kept on disk for the recover bench *)
  let recover_path = journal_path ^ ".recover" in
  session ~journal:recover_path ();
  Test.make_grouped ~name:"resilience"
    [
      Test.make ~name:(Printf.sprintf "session%d_plain_scale_40" rounds)
        (Staged.stage (fun () -> session ()));
      Test.make ~name:(Printf.sprintf "session%d_budget_scale_40" rounds)
        (Staged.stage (fun () -> session ~budget_ms:10_000.0 ()));
      Test.make ~name:(Printf.sprintf "session%d_journal_scale_40" rounds)
        (Staged.stage (fun () -> session ~journal:journal_path ()));
      Test.make ~name:(Printf.sprintf "session%d_budget_journal_scale_40" rounds)
        (Staged.stage (fun () -> session ~budget_ms:10_000.0 ~journal:journal_path ()));
      Test.make ~name:"recover_scale_40"
        (Staged.stage (fun () ->
             let eng =
               Engine.create ~algorithms:[ "primal-dual" ] ~domains:1
                 ~journal:recover_path ~recover:true db queries
             in
             Engine.close eng));
    ]

(* decompose: the whole-instance portfolio vs the shatter-and-plan
   planner on the same prebuilt arena, both sequential — the timing
   difference is exactly what component decomposition buys. Forest
   scales 40/80 plus a many-small-components pivot family (40 roots of
   ~9 tuples each: every shard classifies exact-small, so the planner
   runs per-component brute force where the portfolio sweeps four
   approximation algorithms over the whole instance).
   BENCH_decompose.json tracks this group. *)
let bench_decompose =
  let pair tag a =
    [
      Test.make ~name:(Printf.sprintf "portfolio_whole_%s" tag)
        (Staged.stage (fun () -> D.Portfolio.solutions a));
      Test.make ~name:(Printf.sprintf "planner_shatter_%s" tag)
        (Staged.stage (fun () -> D.Planner.solve a));
    ]
  in
  let forest_tests =
    List.concat_map
      (fun scale ->
        pair (Printf.sprintf "forest_%d" scale) (D.Arena.build (prov (forest ~scale 31))))
      [ 40; 80 ]
  in
  let many_components =
    let p =
      Workload.Pivot_family.generate ~rng:(rng 179)
        { Workload.Pivot_family.depth = 4; num_roots = 40; tuples_per_relation = 240;
          num_queries = 4; deletion_fraction = 0.3 }
    in
    pair "pivot_40roots" (D.Arena.build (prov p))
  in
  Test.make_grouped ~name:"decompose" (forest_tests @ many_components)

(* shardcache: what memoized shard solving buys on delta sessions that
   touch one component per round. Both variants replay the identical
   10-round sequence on a long-lived planner session — each round
   commits a delete + re-insert of one source tuple (a state-restoring
   delta confined to component `round mod num_components`) and then
   solves the workload's full ΔV without applying it. The cached
   session re-solves only the touched shard and splices the memoized
   answers for every clean one (the differential suite in
   test/test_shardcache.ml proves the reports bit-identical); the
   `nocache` baseline (`~shard_cache:0`) re-solves every shard every
   round — exactly what every session did before the cache existed.

   Engine construction and the cold first solve happen once, in the
   lazily-forced setup outside the timed thunk: the cache exists for
   long-lived sessions, so the steady-state cost of a 10-round delta
   batch is the honest comparison (a fresh engine would bill one
   identical full solve to both variants and dilute nothing but the
   measurement). BENCH_shardcache.json tracks this group. *)
let bench_shardcache =
  let rounds = 10 in
  let requests_of (p : D.Problem.t) =
    D.Smap.fold
      (fun name ts acc ->
        if R.Tuple.Set.is_empty ts then acc
        else D.Delta_request.make ~view:name (R.Tuple.Set.elements ts) :: acc)
      p.D.Problem.deletions []
  in
  let run_rounds eng reqs rep ncomp =
    for round = 1 to rounds do
      (match rep.(round mod max ncomp 1) with
      | Some st ->
        let s = R.Stuple.Set.singleton st in
        ignore (Engine.apply_delta eng (D.Delta.make ~deletes:s ~inserts:s ()))
      | None -> ());
      match Engine.request eng reqs with
      | Ok _ -> ()
      | Error _ -> assert false
    done
  in
  let setup ~shard_cache (p : D.Problem.t) =
    lazy
      (let eng =
         Engine.create ~plan:true ~domains:1 ~shard_cache p.D.Problem.db
           p.D.Problem.queries
       in
       let reqs = requests_of p in
       let part = Engine.partition eng in
       let _, arena = Engine.index eng in
       let ncomp = part.D.Arena.num_components in
       (* one representative source tuple per component — the session
          state is bit-restored after every round's delta, so these stay
          valid across invocations *)
       let rep = Array.make (max ncomp 1) None in
       Array.iteri
         (fun sid c ->
           if rep.(c) = None then rep.(c) <- Some arena.D.Arena.stuples.(sid))
         part.D.Arena.comp_of_sid;
       (* one warm pass: the first measured invocation already sees the
          steady state (for `nocache` this is a no-op beyond warming the
          allocator — it re-solves everything every round regardless) *)
       run_rounds eng reqs rep ncomp;
       (eng, reqs, rep, ncomp))
  in
  let session prep () =
    let eng, reqs, rep, ncomp = Lazy.force prep in
    run_rounds eng reqs rep ncomp
  in
  let pair tag p =
    [
      Test.make ~name:(Printf.sprintf "session%d_nocache_%s" rounds tag)
        (Staged.stage (session (setup ~shard_cache:0 p)));
      Test.make ~name:(Printf.sprintf "session%d_cached_%s" rounds tag)
        (Staged.stage (session (setup ~shard_cache:512 p)));
    ]
  in
  (* denser and deeper than the other groups' forest helper: the
     standing what-if request covers half of every view and the join
     chains span up to 7 relations, so components are few and each
     active shard carries real solver work — the regime the cache
     exists for *)
  let forest_dense scale =
    let { Workload.Forest_family.problem; _ } =
      Workload.Forest_family.generate ~rng:(rng 31)
        { Workload.Forest_family.default with num_relations = 7;
          tuples_per_relation = scale; num_queries = 5; max_path_len = 7;
          deletion_fraction = 0.5 }
    in
    problem
  in
  let many_components =
    Workload.Pivot_family.generate ~rng:(rng 179)
      { Workload.Pivot_family.depth = 4; num_roots = 40; tuples_per_relation = 240;
        num_queries = 4; deletion_fraction = 0.3 }
  in
  Test.make_grouped ~name:"shardcache"
    (List.concat_map
       (fun (tag, p) -> pair tag p)
       [
         ("forest_40", forest_dense 40);
         ("forest_80", forest_dense 80);
         ("pivot_40roots", many_components);
       ])

(* deltafloor: the per-round cost floor of component-local delta
   sessions — what the tombstone arenas buy. The session shape is the
   shardcache group's (each round commits a delete + re-insert confined
   to one component, then solves the standing ΔV without applying), but
   the variants cross the compaction regime instead of the cache:
   `eager` (compact_threshold 0) compacts the whole index on every
   delete and sorted-run-merges every insert — every session's
   behaviour before the tombstone arenas — while `lazy` (0.5) tombstones
   and resurrects in place, so its per-round delta work is O(component)
   and the only index-sized cost left is the clean-shard fingerprint
   sweep. The scales double the database (pivot roots 40/80/160 with
   tuples growing in step) while the touched component's size stays
   constant: the lazy round cost must grow sublinearly in ‖D‖ (only the
   proto-shard sweep scales) while eager pays the full O(‖index‖)
   gather every round. BENCH_deltafloor.json tracks this group. *)
let bench_deltafloor =
  let rounds = 10 in
  (* the standing ΔV is confined to ONE component's view tuples: the
     round's solve work is O(component) no matter how large the database
     grows, so the per-round floor isolates the index-maintenance cost
     the regimes differ on *)
  let requests_of part (arena : D.Arena.t) =
    let tbl = Hashtbl.create 7 in
    Array.iteri
      (fun vid (vt : D.Vtuple.t) ->
        if part.D.Arena.comp_of_vid.(vid) = 0 then
          Hashtbl.replace tbl vt.D.Vtuple.query
            (vt.D.Vtuple.tuple
            :: (try Hashtbl.find tbl vt.D.Vtuple.query with Not_found -> [])))
      arena.D.Arena.vtuples;
    Hashtbl.fold (fun view ts acc -> D.Delta_request.make ~view ts :: acc) tbl []
  in
  let run_rounds eng reqs rep ncomp =
    for round = 1 to rounds do
      (match rep.(round mod max ncomp 1) with
      | Some st ->
        let s = R.Stuple.Set.singleton st in
        ignore (Engine.apply_delta eng (D.Delta.make ~deletes:s ~inserts:s ()))
      | None -> ());
      match Engine.request eng reqs with
      | Ok _ -> ()
      | Error _ -> assert false
    done
  in
  let setup ~compact_threshold (p : D.Problem.t) =
    lazy
      (let eng =
         Engine.create ~plan:true ~domains:1 ~compact_threshold p.D.Problem.db
           p.D.Problem.queries
       in
       let part = Engine.partition eng in
       let _, arena = Engine.index eng in
       let reqs = requests_of part arena in
       let ncomp = part.D.Arena.num_components in
       let rep = Array.make (max ncomp 1) None in
       Array.iteri
         (fun sid c ->
           if rep.(c) = None then rep.(c) <- Some arena.D.Arena.stuples.(sid))
         part.D.Arena.comp_of_sid;
       run_rounds eng reqs rep ncomp;
       (eng, reqs, rep, ncomp))
  in
  let session prep () =
    let eng, reqs, rep, ncomp = Lazy.force prep in
    run_rounds eng reqs rep ncomp
  in
  let pair tag p =
    [
      Test.make ~name:(Printf.sprintf "session%d_eager_%s" rounds tag)
        (Staged.stage (session (setup ~compact_threshold:0.0 p)));
      Test.make ~name:(Printf.sprintf "session%d_lazy_%s" rounds tag)
        (Staged.stage (session (setup ~compact_threshold:0.5 p)));
    ]
  in
  (* roots and tuples grow together so the database doubles while each
     root's component keeps ~constant expected size (~6 tuples per level
     per root) — the index scales, the touched component does not *)
  let pivot_scale scale =
    Workload.Pivot_family.generate ~rng:(rng 179)
      { Workload.Pivot_family.depth = 3; num_roots = scale;
        tuples_per_relation = 6 * scale; num_queries = 3;
        deletion_fraction = 0.3 }
  in
  Test.make_grouped ~name:"deltafloor"
    (List.concat_map
       (fun (tag, p) -> pair tag p)
       [
         ("pivot_40", pivot_scale 40);
         ("pivot_80", pivot_scale 80);
         ("pivot_160", pivot_scale 160);
       ])

(* compindex: what the first-class live component index buys per round.
   The session shape is the deltafloor group's (each round commits a
   delete + re-insert confined to one component, then solves the
   standing single-component ΔV), both variants on lazy compaction with
   the shard cache on — so the dirty tracking already confines
   re-solving to the touched component, and the variants differ only in
   how the planner enumerates: `indexed` walks the live per-component
   rosters, O(‖ΔV‖ + active), while `sweep` rebuilds every proto-shard
   from the partition arrays, O(‖D‖ + ‖V‖) per round. The scales double
   the database while the touched component stays constant-sized, so
   the indexed curve must stay ~flat while the sweep grows linearly —
   the O(active) enumeration claim of DESIGN.md §15.
   BENCH_compindex.json tracks this group. *)
let bench_compindex =
  let rounds = 10 in
  let requests_of part (arena : D.Arena.t) =
    let tbl = Hashtbl.create 7 in
    Array.iteri
      (fun vid (vt : D.Vtuple.t) ->
        if part.D.Arena.comp_of_vid.(vid) = 0 then
          Hashtbl.replace tbl vt.D.Vtuple.query
            (vt.D.Vtuple.tuple
            :: (try Hashtbl.find tbl vt.D.Vtuple.query with Not_found -> [])))
      arena.D.Arena.vtuples;
    Hashtbl.fold (fun view ts acc -> D.Delta_request.make ~view ts :: acc) tbl []
  in
  let run_rounds eng reqs rep ncomp =
    for round = 1 to rounds do
      (match rep.(round mod max ncomp 1) with
      | Some st ->
        let s = R.Stuple.Set.singleton st in
        ignore (Engine.apply_delta eng (D.Delta.make ~deletes:s ~inserts:s ()))
      | None -> ());
      match Engine.request eng reqs with
      | Ok _ -> ()
      | Error _ -> assert false
    done
  in
  let setup ~indexed (p : D.Problem.t) =
    lazy
      (let eng =
         Engine.create ~plan:true ~domains:1 ~compact_threshold:0.5 ~indexed
           p.D.Problem.db p.D.Problem.queries
       in
       let part = Engine.partition eng in
       let _, arena = Engine.index eng in
       let reqs = requests_of part arena in
       let ncomp = part.D.Arena.num_components in
       let rep = Array.make (max ncomp 1) None in
       Array.iteri
         (fun sid c ->
           if rep.(c) = None then rep.(c) <- Some arena.D.Arena.stuples.(sid))
         part.D.Arena.comp_of_sid;
       run_rounds eng reqs rep ncomp;
       (eng, reqs, rep, ncomp))
  in
  let session prep () =
    let eng, reqs, rep, ncomp = Lazy.force prep in
    run_rounds eng reqs rep ncomp
  in
  (* the enumeration step in isolation — the exact call Planner.solve
     makes per round to group the standing ΔV into active proto-shards.
     The ΔV touches one constant-sized component, so `active_indexed`
     (live rosters) must stay flat across the scales while
     `active_sweep` (the partition-array walk) pays O(‖D‖ + ‖V‖) on
     every call *)
  let enum_setup (p : D.Problem.t) =
    lazy
      (let eng =
         Engine.create ~plan:true ~domains:1 ~compact_threshold:0.5
           p.D.Problem.db p.D.Problem.queries
       in
       let part = Engine.partition eng in
       let prov, arena = Engine.index eng in
       let cindex = Engine.component_index eng in
       let reqs = requests_of part arena in
       let arena' =
         D.Arena.with_deletions arena (D.Provenance.with_deletions prov reqs)
       in
       (part, cindex, arena'))
  in
  let pair tag p =
    let enum = enum_setup p in
    [
      Test.make ~name:(Printf.sprintf "session%d_indexed_%s" rounds tag)
        (Staged.stage (session (setup ~indexed:true p)));
      Test.make ~name:(Printf.sprintf "session%d_sweep_%s" rounds tag)
        (Staged.stage (session (setup ~indexed:false p)));
      (* batched ×100: a single enumeration is sub-µs on the indexed
         path, below the harness noise floor *)
      Test.make ~name:("active100_indexed_" ^ tag)
        (Staged.stage (fun () ->
             let _, cindex, arena' = Lazy.force enum in
             for _ = 1 to 100 do
               ignore (D.Component_index.active cindex arena')
             done));
      Test.make ~name:("active100_sweep_" ^ tag)
        (Staged.stage (fun () ->
             let part, _, arena' = Lazy.force enum in
             for _ = 1 to 100 do
               ignore (D.Arena.active_components ~partition:part arena')
             done));
    ]
  in
  let pivot_scale scale =
    Workload.Pivot_family.generate ~rng:(rng 179)
      { Workload.Pivot_family.depth = 3; num_roots = scale;
        tuples_per_relation = 6 * scale; num_queries = 3;
        deletion_fraction = 0.3 }
  in
  Test.make_grouped ~name:"compindex"
    (List.concat_map
       (fun (tag, p) -> pair tag p)
       [
         ("pivot_40", pivot_scale 40);
         ("pivot_80", pivot_scale 80);
         ("pivot_160", pivot_scale 160);
       ])

(* rewarm: what a durable shard-cache snapshot buys at recovery time.
   A seeding session (run once, at init) solves the standing workload —
   filling the shard cache — then commits one component-confined delta
   and leaves its journal and snapshot on disk. The timed variants
   re-open that session and run the first post-recovery round:
   `recover_cold` replays the journal alone (a snapshot-less recovery
   starts cold and re-solves every shard), `recover_warm` also installs
   the snapshot, so the round re-solves only the dirty component and
   splices every clean shard from the re-warmed cache (the equivalence
   suite in test/test_rewarm.ml proves the answers bit-identical).
   BENCH_rewarm.json tracks this group; the cold/warm gap is the
   restart-to-first-answer saving EXPERIMENTS.md reports. *)
let bench_rewarm =
  let requests_of (p : D.Problem.t) =
    D.Smap.fold
      (fun name ts acc ->
        if R.Tuple.Set.is_empty ts then acc
        else D.Delta_request.make ~view:name (R.Tuple.Set.elements ts) :: acc)
      p.D.Problem.deletions []
  in
  (* the shardcache group's dense forest: few components, each shard
     carrying real solver work — the regime where warmth matters *)
  let p =
    let { Workload.Forest_family.problem; _ } =
      Workload.Forest_family.generate ~rng:(rng 31)
        { Workload.Forest_family.default with num_relations = 7;
          tuples_per_relation = 40; num_queries = 5; max_path_len = 7;
          deletion_fraction = 0.5 }
    in
    problem
  in
  let db = p.D.Problem.db and queries = p.D.Problem.queries in
  let reqs = requests_of p in
  let jpath =
    Filename.concat (Filename.get_temp_dir_name ()) "deleprop_bench_rewarm.journal"
  in
  let spath = jpath ^ ".snap" in
  (* the crashed session being recovered, seeded once: warm cache, one
     dirty component, journal + snapshot on disk *)
  let () =
    let eng =
      Engine.create ~plan:true ~domains:1 ~journal:jpath ~snapshot:spath
        ~snapshot_every:1 db queries
    in
    (match Engine.request eng reqs with Ok _ -> () | Error _ -> assert false);
    let part = Engine.partition eng in
    let _, arena = Engine.index eng in
    (match
       Array.find_index (fun c -> c = 0) part.D.Arena.comp_of_sid
     with
    | Some sid ->
      let s = R.Stuple.Set.singleton arena.D.Arena.stuples.(sid) in
      ignore (Engine.apply_delta eng (D.Delta.make ~deletes:s ~inserts:s ()))
    | None -> ());
    Engine.close eng
  in
  (* recovery appends nothing and the round journals nothing, so the
     on-disk session is bit-stable across timed invocations *)
  let recover ?snapshot () =
    let eng =
      Engine.create ~plan:true ~domains:1 ~journal:jpath ?snapshot
        ~recover:true db queries
    in
    (match Engine.request eng reqs with Ok _ -> () | Error _ -> assert false);
    Engine.close eng
  in
  Test.make_grouped ~name:"rewarm"
    [
      Test.make ~name:"recover_cold_forest_40"
        (Staged.stage (fun () -> recover ()));
      Test.make ~name:"recover_warm_forest_40"
        (Staged.stage (fun () -> recover ~snapshot:spath ()));
    ]

(* splice: what per-fragment decomposition buys when a memoized
   component keeps splitting. One hub-rooted tree per scale — H(k1)
   fanning out to `scale` branches M(k1, aᵢ), each carrying three
   L(aᵢ, bᵢⱼ) leaves — solved with the brute tier closed so the single
   component classifies Exact_forest. Each timed session warms the memo
   once, then runs `rounds` split rounds: a leaf delete prunes the
   component (invalidating the standing fingerprint every time),
   followed by the standing propose. The `spliced` variant carries the
   answer across every split by restricting the recorded DP tree — no
   shard re-solves or re-materializes after the warm round (the session
   asserts fragment_reuses_forest = rounds, so a guard regression fails
   the bench instead of silently timing re-solves) — while the
   `resolve` twin (~shard_cache:0) re-solves the whole component on
   every round, exactly what every session paid before decompositions
   existed. Engine construction and the warm solve are identical in
   both variants, so the gap is the per-split saving; it must widen
   with the scale (a DP re-solve re-materializes the shard arena and
   re-runs the solver over the whole component, the tree replay only
   walks the recorded nodes). BENCH_splice.json tracks this group. *)
let bench_splice =
  let rounds = 8 in
  let hub scale =
    let b = Buffer.create 4096 in
    Buffer.add_string b "rel H(K*)\nH(k1)\nrel M(K*, A*)\n";
    for i = 1 to scale do
      Buffer.add_string b (Printf.sprintf "M(k1, a%d)\n" i)
    done;
    Buffer.add_string b "rel L(A*, B*)\n";
    for i = 1 to scale do
      for j = 1 to 3 do
        Buffer.add_string b (Printf.sprintf "L(a%d, b%d_%d)\n" i i j)
      done
    done;
    ( R.Serial.instance_of_string (Buffer.contents b),
      Cq.Parser.queries_of_string
        "QM(K, A) :- H(K), M(K, A)\nQL(K, A, B) :- H(K), M(K, A), L(A, B)" )
  in
  let session ~shard_cache (db, queries) () =
    let eng =
      Engine.create ~plan:true ~domains:1 ~exact_threshold:0 ~shard_cache db
        queries
    in
    let reqs =
      [ D.Delta_request.make ~view:"QM" [ R.Tuple.strs [ "k1"; "a1" ] ] ]
    in
    let propose () =
      match Engine.request eng reqs with Ok _ -> () | Error _ -> assert false
    in
    propose ();
    (* branch 1 holds the ΔV and is never touched; round r prunes the
       third leaf of branch r, so every split leaves the recorded tree
       replayable and the next propose splices the seeded fragment *)
    for r = 2 to rounds + 1 do
      Engine.delete eng
        (R.Stuple.Set.singleton
           (R.Stuple.make "L"
              (R.Tuple.strs [ Printf.sprintf "a%d" r; Printf.sprintf "b%d_3" r ])));
      propose ()
    done;
    if shard_cache > 0 then begin
      let s = Engine.stats eng in
      assert (s.Engine.fragment_reuses_forest = rounds)
    end;
    Engine.close eng
  in
  let pair tag p =
    [
      Test.make ~name:(Printf.sprintf "session%d_resolve_%s" rounds tag)
        (Staged.stage (session ~shard_cache:0 p));
      Test.make ~name:(Printf.sprintf "session%d_spliced_%s" rounds tag)
        (Staged.stage (session ~shard_cache:512 p));
    ]
  in
  Test.make_grouped ~name:"splice"
    (List.concat_map
       (fun (tag, scale) -> pair tag (hub scale))
       [ ("hub_40", 40); ("hub_80", 80); ("hub_160", 160) ])

(* E21 scaling stages + parallel portfolio + SQL front end *)
let bench_e21 =
  let biblio =
    Workload.Bibliography.generate ~rng:(rng 163)
      { Workload.Bibliography.default with num_authors = 200; num_journals = 25 }
  in
  let pv = prov biblio in
  let sql_schema = R.Instance.schema biblio.D.Problem.db in
  Test.make_grouped ~name:"e21_pipeline"
    [
      Test.make ~name:"provenance_build" (Staged.stage (fun () -> D.Provenance.build biblio));
      Test.make ~name:"primal_dual" (Staged.stage (fun () -> D.Primal_dual.solve pv));
      Test.make ~name:"portfolio_seq"
        (Staged.stage (fun () -> D.Portfolio.run ~exact_threshold:0 pv));
      Test.make ~name:"portfolio_parallel"
        (Staged.stage (fun () -> D.Portfolio.run_parallel ~exact_threshold:0 pv));
      Test.make ~name:"sql_parse"
        (Staged.stage (fun () ->
             Cq.Sql.query_of_string ~schema:sql_schema ~name:"Q"
               "SELECT a.name, j.topic FROM Author a, Journal j WHERE a.journal = j.journal"));
    ]

(* containment / minimization micro-benchmarks *)
let bench_containment =
  let q_path =
    Cq.Parser.query_of_string "Q(X, Z) :- R(X, Y), R(Y, Z)"
  in
  let q_big =
    Cq.Parser.query_of_string
      "Q(X) :- R(X, Y1), R(X, Y2), R(X, Y3), R(X, Y4), R(Y1, Y2)"
  in
  Test.make_grouped ~name:"containment"
    [
      Test.make ~name:"equivalence"
        (Staged.stage (fun () -> Cq.Containment.equivalent q_path q_path));
      Test.make ~name:"minimize" (Staged.stage (fun () -> Cq.Containment.minimize q_big));
    ]

(* substrate micro-benchmarks *)
let bench_substrate =
  let p = forest ~scale:20 103 in
  let rb =
    Workload.Rbsc_gen.red_blue ~rng:(rng 5) ~num_red:10 ~num_blue:10 ~num_sets:14
      ~red_density:0.3 ~blue_density:0.35
  in
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"eval_views"
        (Staged.stage (fun () ->
             List.map (fun q -> Cq.Eval.evaluate p.D.Problem.db q) p.D.Problem.queries));
      Test.make ~name:"provenance_build" (Staged.stage (fun () -> D.Provenance.build p));
      Test.make ~name:"rbsc_greedy" (Staged.stage (fun () -> SC.Red_blue.solve_greedy rb));
      Test.make ~name:"rbsc_lowdeg" (Staged.stage (fun () -> SC.Red_blue.solve_lowdeg rb));
      Test.make ~name:"rbsc_exact" (Staged.stage (fun () -> SC.Red_blue.solve_exact rb));
    ]

let all_tests =
  [
    bench_e1; bench_e2; bench_e3; bench_e5; bench_e6; bench_e7; bench_e8; bench_e9;
    bench_e10; bench_e11; bench_e12; bench_e14; bench_e15; bench_e16; bench_e17;
    bench_e18; bench_arena; bench_engine; bench_mixed; bench_resilience; bench_decompose;
    bench_shardcache; bench_deltafloor; bench_compindex; bench_rewarm;
    bench_splice; bench_e21;
    bench_containment; bench_phase5;
    bench_substrate;
  ]

(* ---- CLI: main.exe [--json FILE] [--dry-run] [--quota S] [--limit N]
   [group ...] ---- *)

type cli = {
  json : string option;   (* dump results to this file *)
  dry_run : bool;         (* run every thunk once, no timing *)
  quota : float;          (* seconds of measurement per benchmark *)
  limit : int;            (* max samples per benchmark *)
  groups : string list;   (* empty = all *)
}

let usage () =
  Printf.eprintf
    "usage: main.exe [--json FILE] [--dry-run] [--quota SECONDS] [--limit N] \
     [group ...]\navailable groups: %s\n"
    (String.concat ", " (List.map Test.name all_tests));
  exit 2

let parse_cli () =
  let rec go acc = function
    | [] -> acc
    | "--json" :: file :: rest -> go { acc with json = Some file } rest
    | "--json" :: [] -> usage ()
    | "--dry-run" :: rest -> go { acc with dry_run = true } rest
    | "--quota" :: s :: rest -> (
      match float_of_string_opt s with
      | Some q when q > 0.0 -> go { acc with quota = q } rest
      | _ -> usage ())
    | "--quota" :: [] -> usage ()
    | "--limit" :: s :: rest -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> go { acc with limit = n } rest
      | _ -> usage ())
    | "--limit" :: [] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | g :: rest ->
      if not (List.exists (fun t -> Test.name t = g) all_tests) then begin
        Printf.eprintf "unknown group %S\n" g;
        usage ()
      end;
      go { acc with groups = acc.groups @ [ g ] } rest
  in
  (* quota 1 s (was 0.25 s): the long session benches were landing under
     a handful of samples, and their r² showed it (BENCH_arena.json had
     entries below 0.6); --quota/--limit override per run *)
  go { json = None; dry_run = false; quota = 1.0; limit = 1000; groups = [] }
    (List.tl (Array.to_list Sys.argv))

let selected_tests cli =
  match cli.groups with
  | [] -> all_tests
  | gs -> List.filter (fun t -> List.mem (Test.name t) gs) all_tests

(* run every benchmark body exactly once — the `dune runtest` smoke that
   keeps this harness from bit-rotting silently *)
let dry_run_elt elt =
  match Test.Elt.fn elt with
  | Test.V { fn; kind = Test.Uniq; allocate; free } ->
    let v = allocate () in
    ignore (fn `Init (Test.Uniq.prj v));
    free v
  | Test.V { fn; kind = Test.Multiple; allocate; free } ->
    let v = allocate 1 in
    Array.iter (fun x -> ignore (fn `Init x)) (Test.Multiple.prj v);
    free v

(* ---- run + report ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x = if Float.is_nan x then "null" else Printf.sprintf "%.6g" x

let dump_json file measured =
  let oc = open_out file in
  let group (gname, rows) =
    Printf.sprintf "    {\"group\": \"%s\", \"results\": [\n%s\n    ]}"
      (json_escape gname)
      (rows
      |> List.map (fun (name, est_ns, r2) ->
             Printf.sprintf "      {\"name\": \"%s\", \"time_ns_per_run\": %s, \"r2\": %s}"
               (json_escape name) (json_float est_ns) (json_float r2))
      |> String.concat ",\n")
  in
  Printf.fprintf oc
    "{\n  \"unit\": \"ns/run\",\n  \"clock\": \"monotonic\",\n  \"groups\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map group measured));
  close_out oc;
  Printf.printf "\nresults written to %s\n" file

let () =
  let cli = parse_cli () in
  (* fail on an unwritable --json target now, not after minutes of timing *)
  (match cli.json with
   | Some file ->
     (try close_out (open_out file)
      with Sys_error e ->
        Printf.eprintf "cannot write --json file: %s\n" e;
        exit 2)
   | None -> ());
  let tests = selected_tests cli in
  if cli.dry_run then begin
    List.iter
      (fun test ->
        List.iter
          (fun elt ->
            dry_run_elt elt;
            Printf.printf "dry-run %-50s ok\n%!" (Test.Elt.name elt))
          (Test.elements test))
      tests;
    Printf.printf "dry-run: %d groups ok\n" (List.length tests)
  end
  else begin
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let instance = Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:cli.limit ~quota:(Time.second cli.quota)
        ~kde:(Some 500) ()
    in
    Printf.printf "%-40s  %14s  %8s\n" "benchmark" "time/run" "r2";
    print_endline (String.make 68 '-');
    let measured =
      List.map
        (fun test ->
          let raw = Benchmark.all cfg [ instance ] test in
          let results = Analyze.all ols instance raw in
          let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
          let rows =
            rows
            |> List.map (fun (name, r) ->
                   let est =
                     match Analyze.OLS.estimates r with Some (e :: _) -> e | _ -> nan
                   in
                   let r2 =
                     match Analyze.OLS.r_square r with Some r2 -> r2 | None -> nan
                   in
                   (name, est, r2))
            |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
          in
          List.iter
            (fun (name, est, r2) ->
              let time =
                if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
                else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
                else if est > 1e3 then Printf.sprintf "%.3f us" (est /. 1e3)
                else Printf.sprintf "%.1f ns" est
              in
              Printf.printf "%-40s  %14s  %8.4f\n%!" name time r2)
            rows;
          (Test.name test, rows))
        tests
    in
    Option.iter (fun file -> dump_json file measured) cli.json;
    print_endline "\nquality tables: run `dune exec bin/experiments.exe` (see EXPERIMENTS.md)"
  end
