test/test_phase3.ml: Alcotest Array Cq Deleprop List QCheck2 Random Relational Setcover String Util Workload
