test/test_core.ml: Alcotest Cq Deleprop List Lp QCheck2 Random Relational Util Workload
