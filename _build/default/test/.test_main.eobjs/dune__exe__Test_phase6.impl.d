test/test_phase6.ml: Alcotest Array Cq Deleprop Float Fun Int List Printf QCheck2 Random Relational Setcover Util Workload
