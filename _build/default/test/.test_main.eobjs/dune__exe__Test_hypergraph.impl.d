test/test_hypergraph.ml: Alcotest Array Cq Hypergraph Int List Printf QCheck2 Random Relational Util
