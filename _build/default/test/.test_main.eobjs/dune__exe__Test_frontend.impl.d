test/test_frontend.ml: Alcotest Cq Deleprop List Relational Util Workload
