test/test_matrix.ml: Alcotest Deleprop Float List Option Printf Relational Util Workload
