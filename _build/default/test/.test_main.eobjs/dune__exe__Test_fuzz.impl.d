test/test_fuzz.ml: Array Cq Deleprop Fun List Printf QCheck2 Random Relational Util Workload
