test/test_phase5.ml: Alcotest Array Cq Deleprop Fun List QCheck2 Random Relational Result Util Workload
