test/test_hardness.ml: Alcotest Cq Deleprop List QCheck2 Relational Setcover Util Workload
