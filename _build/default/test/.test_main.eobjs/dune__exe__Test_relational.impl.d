test/test_relational.ml: Alcotest Fun List QCheck2 Relational Util
