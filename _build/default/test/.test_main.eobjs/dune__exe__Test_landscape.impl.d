test/test_landscape.ml: Alcotest Array Cq Deleprop Fun List Printf QCheck2 Random Relational Setcover Util Workload
