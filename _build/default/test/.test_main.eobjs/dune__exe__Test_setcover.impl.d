test/test_setcover.ml: Alcotest Array Fun List Printf QCheck2 Random Setcover Util Workload
