test/test_phase4.ml: Alcotest Cq Deleprop Hypergraph List Printf QCheck2 Random Relational Util Workload
