test/test_examples.ml: Alcotest Deleprop Relational Util Workload
