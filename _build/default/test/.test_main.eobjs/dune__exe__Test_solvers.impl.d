test/test_solvers.ml: Alcotest Cq Deleprop List QCheck2 Relational Util Workload
