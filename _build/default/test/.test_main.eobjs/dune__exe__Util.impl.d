test/util.ml: Alcotest Deleprop Float Format QCheck2 QCheck_alcotest Random Relational
