test/test_system.ml: Alcotest Cq Deleprop List QCheck2 Random Relational Util Workload
