test/test_phase8.ml: Alcotest Cq Deleprop List QCheck2 Random Relational Util Workload
