test/test_cq.ml: Alcotest Array Cq List QCheck2 Random Relational Util
