test/test_polish.ml: Alcotest Astring Cq Deleprop Filename Format Hypergraph List QCheck2 Relational Sys Util Workload
