(* Shared helpers for the test suites. *)

module R = Relational
module D = Deleprop

let rng seed = Random.State.make [| seed |]

let check_float = Alcotest.(check (float 1e-9))

let feq a b = Float.abs (a -. b) < 1e-9

(* Alcotest testables *)
let value = Alcotest.testable R.Value.pp R.Value.equal
let tuple = Alcotest.testable R.Tuple.pp R.Tuple.equal
let stuple = Alcotest.testable R.Stuple.pp R.Stuple.equal
let vtuple = Alcotest.testable D.Vtuple.pp D.Vtuple.equal

let stuple_set =
  Alcotest.testable
    (fun ppf s ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") R.Stuple.pp)
        (R.Stuple.Set.elements s))
    R.Stuple.Set.equal

let tuple_set =
  Alcotest.testable
    (fun ppf s ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") R.Tuple.pp)
        (R.Tuple.Set.elements s))
    R.Tuple.Set.equal

let vtuple_set =
  Alcotest.testable
    (fun ppf s ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") D.Vtuple.pp)
        (D.Vtuple.Set.elements s))
    D.Vtuple.Set.equal

let st rel vs = R.Stuple.make rel (R.Tuple.strs vs)

(* QCheck -> Alcotest adaptor *)
let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
