(* Tests for the relational substrate: values, tuples, schemas, keys,
   relations, instances, serialization. *)

open Util
module R = Relational

(* ---- values ---- *)

let test_value_order () =
  Alcotest.(check bool) "Int < Str" true (R.Value.compare (R.Value.int 5) (R.Value.str "a") < 0);
  Alcotest.(check bool) "int order" true (R.Value.compare (R.Value.int 1) (R.Value.int 2) < 0);
  Alcotest.(check bool) "str order" true (R.Value.compare (R.Value.str "a") (R.Value.str "b") < 0);
  Alcotest.(check bool) "equal" true (R.Value.equal (R.Value.str "x") (R.Value.str "x"))

let test_value_parse () =
  Alcotest.check value "int literal" (R.Value.int 42) (R.Value.of_string "42");
  Alcotest.check value "negative int" (R.Value.int (-7)) (R.Value.of_string "-7");
  Alcotest.check value "bare string" (R.Value.str "abc") (R.Value.of_string "abc");
  Alcotest.check value "quoted string" (R.Value.str "a b") (R.Value.of_string "'a b'");
  Alcotest.check value "trimmed" (R.Value.int 3) (R.Value.of_string "  3 ")

let test_value_fresh () =
  R.Value.reset_fresh ();
  let a = R.Value.fresh () and b = R.Value.fresh () in
  Alcotest.(check bool) "fresh distinct" false (R.Value.equal a b);
  R.Value.reset_fresh ();
  let a' = R.Value.fresh () in
  Alcotest.check value "reset reproduces" a a'

(* ---- tuples ---- *)

let test_tuple_basics () =
  let t = R.Tuple.ints [ 1; 2; 3 ] in
  Alcotest.(check int) "arity" 3 (R.Tuple.arity t);
  Alcotest.check value "get" (R.Value.int 2) (R.Tuple.get t 1);
  Alcotest.check tuple "project" (R.Tuple.ints [ 3; 1 ]) (R.Tuple.project t [ 2; 0 ]);
  Alcotest.(check bool) "project out of range" true
    (try ignore (R.Tuple.project t [ 5 ]); false with Invalid_argument _ -> true)

let test_tuple_compare () =
  Alcotest.(check bool) "shorter first" true
    (R.Tuple.compare (R.Tuple.ints [ 1 ]) (R.Tuple.ints [ 1; 1 ]) < 0);
  Alcotest.(check bool) "lexicographic" true
    (R.Tuple.compare (R.Tuple.ints [ 1; 2 ]) (R.Tuple.ints [ 1; 3 ]) < 0);
  Alcotest.(check bool) "equal" true (R.Tuple.equal (R.Tuple.strs [ "a" ]) (R.Tuple.strs [ "a" ]))

let tuple_gen =
  QCheck2.Gen.(map (fun l -> R.Tuple.ints l) (list_size (int_range 1 5) (int_range 0 9)))

let prop_tuple_compare_refl =
  qcheck "tuple compare reflexive" tuple_gen (fun t -> R.Tuple.compare t t = 0)

let prop_tuple_project_id =
  qcheck "projecting all positions is identity" tuple_gen (fun t ->
      R.Tuple.equal t (R.Tuple.project t (List.init (R.Tuple.arity t) Fun.id)))

(* ---- schemas ---- *)

let test_schema_make () =
  let s = R.Schema.make ~name:"T" ~attrs:[ "a"; "b"; "c" ] ~key:[ 2; 0 ] in
  Alcotest.(check (list int)) "key sorted" [ 0; 2 ] s.R.Schema.key;
  Alcotest.(check (list int)) "non-key" [ 1 ] (R.Schema.non_key s);
  Alcotest.(check int) "attr index" 1 (R.Schema.attr_index s "b");
  Alcotest.check tuple "key_of_tuple" (R.Tuple.ints [ 1; 3 ])
    (R.Schema.key_of_tuple s (R.Tuple.ints [ 1; 2; 3 ]))

let test_schema_invalid () =
  let fails f = Alcotest.(check bool) "rejected" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  fails (fun () -> R.Schema.make ~name:"T" ~attrs:[] ~key:[ 0 ]);
  fails (fun () -> R.Schema.make ~name:"T" ~attrs:[ "a" ] ~key:[]);
  fails (fun () -> R.Schema.make ~name:"T" ~attrs:[ "a" ] ~key:[ 1 ]);
  fails (fun () -> R.Schema.make ~name:"T" ~attrs:[ "a"; "a" ] ~key:[ 0 ]);
  fails (fun () -> R.Schema.make ~name:"T" ~attrs:[ "a"; "b" ] ~key:[ 0; 0 ])

let test_schema_db () =
  let s1 = R.Schema.make_anon ~name:"A" ~arity:2 ~key:[ 0 ] in
  let s2 = R.Schema.make_anon ~name:"B" ~arity:1 ~key:[ 0 ] in
  let db = R.Schema.Db.of_list [ s1; s2 ] in
  Alcotest.(check (list string)) "names" [ "A"; "B" ] (R.Schema.Db.names db);
  Alcotest.(check bool) "mem" true (R.Schema.Db.mem db "A");
  Alcotest.(check bool) "not mem" false (R.Schema.Db.mem db "C");
  Alcotest.(check bool) "duplicate rejected" true
    (try ignore (R.Schema.Db.of_list [ s1; s1 ]); false with Invalid_argument _ -> true)

(* ---- relations and keys ---- *)

let abc_schema = R.Schema.make ~name:"T" ~attrs:[ "k"; "v" ] ~key:[ 0 ]

let test_relation_key_enforcement () =
  let r = R.Relation.empty abc_schema in
  let r = R.Relation.add r (R.Tuple.ints [ 1; 10 ]) in
  let r = R.Relation.add r (R.Tuple.ints [ 2; 20 ]) in
  (* same tuple again: idempotent *)
  let r = R.Relation.add r (R.Tuple.ints [ 1; 10 ]) in
  Alcotest.(check int) "cardinal" 2 (R.Relation.cardinal r);
  (* same key, different tuple: violation *)
  Alcotest.(check bool) "key violation" true
    (try ignore (R.Relation.add r (R.Tuple.ints [ 1; 99 ])); false
     with R.Relation.Key_violation _ -> true)

let test_relation_arity_mismatch () =
  let r = R.Relation.empty abc_schema in
  Alcotest.(check bool) "arity mismatch" true
    (try ignore (R.Relation.add r (R.Tuple.ints [ 1; 2; 3 ])); false
     with R.Relation.Arity_mismatch _ -> true)

let test_relation_find_by_key () =
  let r = R.Relation.of_tuples abc_schema [ R.Tuple.ints [ 1; 10 ]; R.Tuple.ints [ 2; 20 ] ] in
  Alcotest.(check (option tuple)) "hit" (Some (R.Tuple.ints [ 2; 20 ]))
    (R.Relation.find_by_key r (R.Tuple.ints [ 2 ]));
  Alcotest.(check (option tuple)) "miss" None (R.Relation.find_by_key r (R.Tuple.ints [ 3 ]))

let test_relation_remove () =
  let r = R.Relation.of_tuples abc_schema [ R.Tuple.ints [ 1; 10 ]; R.Tuple.ints [ 2; 20 ] ] in
  let r = R.Relation.remove r (R.Tuple.ints [ 1; 10 ]) in
  Alcotest.(check int) "cardinal after remove" 1 (R.Relation.cardinal r);
  Alcotest.(check (option tuple)) "key index updated" None
    (R.Relation.find_by_key r (R.Tuple.ints [ 1 ]));
  (* removing an absent tuple is a no-op *)
  let r = R.Relation.remove r (R.Tuple.ints [ 9; 9 ]) in
  Alcotest.(check int) "noop remove" 1 (R.Relation.cardinal r)

let test_relation_remove_then_readd () =
  let r = R.Relation.of_tuples abc_schema [ R.Tuple.ints [ 1; 10 ] ] in
  let r = R.Relation.remove r (R.Tuple.ints [ 1; 10 ]) in
  let r = R.Relation.add r (R.Tuple.ints [ 1; 99 ]) in
  Alcotest.(check bool) "re-add same key ok" true (R.Relation.mem r (R.Tuple.ints [ 1; 99 ]))

(* ---- instances ---- *)

let two_rel_schema =
  R.Schema.Db.of_list
    [ R.Schema.make ~name:"A" ~attrs:[ "k"; "v" ] ~key:[ 0 ];
      R.Schema.make ~name:"B" ~attrs:[ "k" ] ~key:[ 0 ] ]

let test_instance_basics () =
  let db =
    R.Instance.of_alist two_rel_schema
      [ ("A", [ R.Tuple.ints [ 1; 10 ]; R.Tuple.ints [ 2; 20 ] ]); ("B", [ R.Tuple.ints [ 7 ] ]) ]
  in
  Alcotest.(check int) "size" 3 (R.Instance.size db);
  Alcotest.(check bool) "mem" true (R.Instance.mem db (R.Stuple.make "A" (R.Tuple.ints [ 1; 10 ])));
  let dd = R.Stuple.Set.singleton (R.Stuple.make "A" (R.Tuple.ints [ 1; 10 ])) in
  let db' = R.Instance.delete db dd in
  Alcotest.(check int) "size after delete" 2 (R.Instance.size db');
  Alcotest.(check bool) "original unchanged" true
    (R.Instance.mem db (R.Stuple.make "A" (R.Tuple.ints [ 1; 10 ])))

let test_instance_unknown_relation () =
  let db = R.Instance.empty two_rel_schema in
  Alcotest.(check bool) "unknown relation" true
    (try ignore (R.Instance.add db "Z" (R.Tuple.ints [ 1 ])); false
     with Invalid_argument _ -> true)

let test_instance_stuples () =
  let db =
    R.Instance.of_alist two_rel_schema
      [ ("A", [ R.Tuple.ints [ 1; 10 ] ]); ("B", [ R.Tuple.ints [ 7 ] ]) ]
  in
  Alcotest.(check int) "stuples" 2 (List.length (R.Instance.stuples db))

(* ---- serialization ---- *)

let roundtrip_text = {|
# comment line
rel T1(name*, journal)
T1(john, tkde)
T1(tom, tkde)
rel T2(journal*, topic*, n)
T2(tkde, xml, 30)
|}

let test_serial_roundtrip () =
  let db = R.Serial.instance_of_string roundtrip_text in
  Alcotest.(check int) "size" 3 (R.Instance.size db);
  let s = R.Serial.instance_to_string db in
  let db2 = R.Serial.instance_of_string s in
  Alcotest.(check bool) "roundtrip equal" true (R.Instance.equal db db2)

let test_serial_errors () =
  let fails text =
    Alcotest.(check bool) "parse error" true
      (try ignore (R.Serial.instance_of_string text); false with R.Serial.Parse_error _ -> true)
  in
  fails "rel T(a)\nT(1)";                      (* no key *)
  fails "rel T(a*)\nU(1)";                     (* undeclared relation *)
  fails "rel T(a*)\nT(1, 2)";                  (* arity mismatch *)
  fails "rel T(a*, b)\nT(1, 2)\nT(1, 3)";      (* key violation *)
  fails "rel T(a*";                            (* unterminated decl *)
  fails "rel T(a*)\nT(1"                       (* unterminated fact *)

let test_serial_values () =
  let db = R.Serial.instance_of_string "rel T(a*, b)\nT(5, 'x y')" in
  let r = R.Instance.relation db "T" in
  Alcotest.(check bool) "typed values" true
    (R.Relation.mem r (R.Tuple.of_list [ R.Value.int 5; R.Value.str "x y" ]))

let suite =
  [
    Alcotest.test_case "value: ordering" `Quick test_value_order;
    Alcotest.test_case "value: parsing" `Quick test_value_parse;
    Alcotest.test_case "value: fresh constants" `Quick test_value_fresh;
    Alcotest.test_case "tuple: basics" `Quick test_tuple_basics;
    Alcotest.test_case "tuple: compare" `Quick test_tuple_compare;
    prop_tuple_compare_refl;
    prop_tuple_project_id;
    Alcotest.test_case "schema: make / key projection" `Quick test_schema_make;
    Alcotest.test_case "schema: invalid inputs rejected" `Quick test_schema_invalid;
    Alcotest.test_case "schema: database schema" `Quick test_schema_db;
    Alcotest.test_case "relation: key enforcement" `Quick test_relation_key_enforcement;
    Alcotest.test_case "relation: arity mismatch" `Quick test_relation_arity_mismatch;
    Alcotest.test_case "relation: find_by_key" `Quick test_relation_find_by_key;
    Alcotest.test_case "relation: remove" `Quick test_relation_remove;
    Alcotest.test_case "relation: remove then re-add same key" `Quick test_relation_remove_then_readd;
    Alcotest.test_case "instance: add/delete/mem" `Quick test_instance_basics;
    Alcotest.test_case "instance: unknown relation" `Quick test_instance_unknown_relation;
    Alcotest.test_case "instance: stuples" `Quick test_instance_stuples;
    Alcotest.test_case "serial: roundtrip" `Quick test_serial_roundtrip;
    Alcotest.test_case "serial: error reporting" `Quick test_serial_errors;
    Alcotest.test_case "serial: typed values" `Quick test_serial_values;
  ]
