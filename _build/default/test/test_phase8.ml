(* Tests for phase-8 modules: diagnosis across optimal plans, combined
   delete+insert repairs, semiring provenance polynomials. *)

open Util
module R = Relational
module D = Deleprop

let parse = Cq.Parser.query_of_string

(* ---- diagnosis ---- *)

let test_diagnosis_fig1_q4 () =
  let prov = D.Provenance.build (Workload.Author_journal.scenario_q4 ()) in
  match D.Diagnosis.diagnose prov with
  | None -> Alcotest.fail "expected diagnosis"
  | Some d ->
    check_float "optimal cost" 1.0 d.D.Diagnosis.optimal_cost;
    Alcotest.(check int) "single optimal plan" 1 (List.length d.D.Diagnosis.plans);
    Alcotest.check stuple_set "certain = the author tuple"
      (R.Stuple.Set.singleton (st "T1" [ "John"; "TKDE" ]))
      d.D.Diagnosis.certain

let test_diagnosis_ambiguity () =
  (* two equal-cost plans: certain set is empty, possible has both *)
  let db =
    R.Serial.instance_of_string
      "rel A(k*, v)\nA(1, x)\nrel B(k*, v)\nB(1, x)"
  in
  let q = parse "Q(K1, V1, K2, V2) :- A(K1, V1), B(K2, V2)" in
  let p =
    D.Problem.make ~db ~queries:[ q ]
      ~deletions:[ ("Q", [ R.Tuple.of_list
                             [ R.Value.int 1; R.Value.str "x"; R.Value.int 1; R.Value.str "x" ] ]) ]
      ()
  in
  let prov = D.Provenance.build p in
  match D.Diagnosis.diagnose prov with
  | None -> Alcotest.fail "expected diagnosis"
  | Some d ->
    Alcotest.(check int) "two optimal plans" 2 (List.length d.D.Diagnosis.plans);
    Alcotest.(check int) "no certain tuple" 0 (R.Stuple.Set.cardinal d.D.Diagnosis.certain);
    Alcotest.(check int) "two possible tuples" 2 (R.Stuple.Set.cardinal d.D.Diagnosis.possible)

let test_diagnosis_ground_truth_q3 () =
  (* the paper's Q3 scenario: several optimal plans; John's TKDE row is in
     every one (certain), journal rows only in some *)
  let p = Workload.Author_journal.scenario_q3 () in
  match D.Diagnosis.diagnose_ground_truth p with
  | None -> Alcotest.fail "expected diagnosis"
  | Some d ->
    check_float "optimal cost 1" 1.0 d.D.Diagnosis.optimal_cost;
    Alcotest.(check bool) "several plans" true (List.length d.D.Diagnosis.plans >= 2);
    Alcotest.(check bool) "both John rows possible" true
      (R.Stuple.Set.mem (st "T1" [ "John"; "TKDE" ]) d.D.Diagnosis.possible
      && R.Stuple.Set.mem (st "T1" [ "John"; "TODS" ]) d.D.Diagnosis.possible)

let prop_diagnosis_consistent =
  qcheck ~count:30 "diagnosis: certain ⊆ every plan ⊆ possible; costs match brute"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let { Workload.Forest_family.problem = p; _ } =
        Workload.Forest_family.generate ~rng
          { Workload.Forest_family.default with num_relations = 3; tuples_per_relation = 4 }
      in
      let prov = D.Provenance.build p in
      if R.Stuple.Set.cardinal (D.Provenance.candidates prov) > 14 then true
      else
        match D.Diagnosis.diagnose prov, D.Brute.solve prov with
        | Some d, Some b ->
          feq d.D.Diagnosis.optimal_cost b.D.Brute.outcome.D.Side_effect.cost
          && List.for_all
               (fun plan ->
                 R.Stuple.Set.subset d.D.Diagnosis.certain plan
                 && R.Stuple.Set.subset plan d.D.Diagnosis.possible
                 && feq (D.Side_effect.eval prov plan).D.Side_effect.cost
                      d.D.Diagnosis.optimal_cost)
               d.D.Diagnosis.plans
        | None, None -> true
        | _ -> false)

let test_top_plans () =
  let prov = D.Provenance.build (Workload.Author_journal.scenario_q4 ()) in
  let buckets = D.Diagnosis.top_plans ~k:2 prov in
  Alcotest.(check int) "two cost buckets" 2 (List.length buckets);
  match buckets with
  | (c1, _) :: (c2, _) :: _ ->
    check_float "best bucket" 1.0 c1;
    check_float "second bucket" 2.0 c2
  | _ -> Alcotest.fail "expected two buckets"

(* ---- combined repair ---- *)

let test_repair_both_directions () =
  let db = Workload.Author_journal.db () in
  let queries = [ Workload.Author_journal.q4 ] in
  match
    D.Repair.solve ~db ~queries
      ~wrong:[ ("Q4", [ R.Tuple.strs [ "John"; "TKDE"; "XML" ] ]) ]
      ~missing:[ ("Q4", R.Tuple.strs [ "Alice"; "TODS"; "XML" ]) ]
      ()
  with
  | Error e -> Alcotest.failf "unexpected: %a" D.Repair.pp_error e
  | Ok plan ->
    Alcotest.(check bool) "deletes the author row" true
      (R.Stuple.Set.mem (st "T1" [ "John"; "TKDE" ]) plan.D.Repair.deletions);
    Alcotest.(check bool) "inserts Alice" true
      (R.Stuple.Set.mem (st "T1" [ "Alice"; "TODS" ]) plan.D.Repair.insertions);
    (* final database: wrong answer gone, missing answer present *)
    let view = Cq.Eval.evaluate plan.D.Repair.repaired Workload.Author_journal.q4 in
    Alcotest.(check bool) "wrong gone" false
      (R.Tuple.Set.mem (R.Tuple.strs [ "John"; "TKDE"; "XML" ]) view);
    Alcotest.(check bool) "missing present" true
      (R.Tuple.Set.mem (R.Tuple.strs [ "Alice"; "TODS"; "XML" ]) view)

let test_repair_conflict_detected () =
  (* ask to remove an answer AND to add one that needs the same witness *)
  let db = Workload.Author_journal.db () in
  let queries = [ Workload.Author_journal.q4 ] in
  match
    D.Repair.solve ~db ~queries
      ~wrong:[ ("Q4", [ R.Tuple.strs [ "John"; "TODS"; "XML" ] ]) ]
      ~missing:[ ("Q4", R.Tuple.strs [ "John"; "TODS"; "XML" ]) ]
      ()
  with
  | Error (D.Repair.Conflicting _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" D.Repair.pp_error e
  | Ok _ -> Alcotest.fail "expected a conflict"

let test_repair_deletion_only () =
  let db = Workload.Author_journal.db () in
  match
    D.Repair.solve ~db ~queries:[ Workload.Author_journal.q4 ]
      ~wrong:[ ("Q4", [ R.Tuple.strs [ "John"; "TKDE"; "XML" ] ]) ]
      ~missing:[] ()
  with
  | Ok plan ->
    check_float "cost = deletion side-effect" 1.0 plan.D.Repair.cost;
    Alcotest.(check int) "no insertions" 0 (R.Stuple.Set.cardinal plan.D.Repair.insertions)
  | Error e -> Alcotest.failf "unexpected: %a" D.Repair.pp_error e

(* ---- semiring provenance ---- *)

let test_polynomial_fig1 () =
  let db = Workload.Author_journal.db () in
  let q3 = Workload.Author_journal.q3 in
  let p = Cq.Semiring.polynomial db q3 (R.Tuple.strs [ "John"; "XML" ]) in
  Alcotest.(check int) "two derivations" 2 (Cq.Semiring.count p);
  Alcotest.(check int) "two why-witnesses" 2 (List.length (Cq.Semiring.why p));
  Alcotest.(check int) "non-answer: zero polynomial" 0
    (Cq.Semiring.count (Cq.Semiring.polynomial db q3 (R.Tuple.strs [ "Zed"; "XML" ])))

let test_polynomial_self_join_exponent () =
  let schema = R.Schema.Db.of_list [ R.Schema.make ~name:"E" ~attrs:[ "a"; "b" ] ~key:[ 0; 1 ] ] in
  let db = R.Instance.of_alist schema [ ("E", [ R.Tuple.ints [ 1; 1 ] ]) ] in
  let q = parse "Q(X) :- E(X, Y), E(Y, X)" in
  let p = Cq.Semiring.polynomial db q (R.Tuple.ints [ 1 ]) in
  match p with
  | [ ([ (_, e) ], 1) ] -> Alcotest.(check int) "squared variable" 2 e
  | _ -> Alcotest.fail "expected a single squared monomial"

let prop_survives_equals_eval =
  qcheck ~count:60 "PosBool specialization = deletion semantics"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let db = Workload.Author_journal.db () in
      let q = Workload.Author_journal.q3 in
      let dd =
        R.Instance.stuples db
        |> List.filter (fun _ -> Random.State.bool rng)
        |> R.Stuple.Set.of_list
      in
      let db' = R.Instance.delete db dd in
      let after = Cq.Eval.evaluate db' q in
      Cq.Eval.evaluate db q
      |> R.Tuple.Set.for_all (fun answer ->
             let p = Cq.Semiring.polynomial db q answer in
             Cq.Semiring.survives p ~kept:(fun st -> not (R.Stuple.Set.mem st dd))
             = R.Tuple.Set.mem answer after))

let test_best_confidence () =
  let db = Workload.Author_journal.db () in
  let q3 = Workload.Author_journal.q3 in
  let p = Cq.Semiring.polynomial db q3 (R.Tuple.strs [ "John"; "XML" ]) in
  (* score TODS tuples low: the best derivation goes through TKDE *)
  let score (st : R.Stuple.t) =
    match R.Tuple.to_list st.tuple with
    | v :: _ when R.Value.equal v (R.Value.str "John") -> 0.5
    | R.Value.Str "TODS" :: _ -> 0.2
    | _ -> 0.8
  in
  (* TKDE derivation: 0.5 * 0.8 = 0.4; TODS derivation: 0.5 * 0.2 = 0.1 *)
  check_float "viterbi picks TKDE" 0.4 (Cq.Semiring.best_confidence p ~score)

let suite =
  [
    Alcotest.test_case "diagnosis: Fig. 1 Q4 certain tuple" `Quick test_diagnosis_fig1_q4;
    Alcotest.test_case "diagnosis: ambiguity leaves certain empty" `Quick
      test_diagnosis_ambiguity;
    Alcotest.test_case "diagnosis: ground truth on Q3" `Quick test_diagnosis_ground_truth_q3;
    prop_diagnosis_consistent;
    Alcotest.test_case "diagnosis: top plans" `Quick test_top_plans;
    Alcotest.test_case "repair: both directions" `Quick test_repair_both_directions;
    Alcotest.test_case "repair: conflict detected" `Quick test_repair_conflict_detected;
    Alcotest.test_case "repair: deletion only" `Quick test_repair_deletion_only;
    Alcotest.test_case "semiring: Fig. 1 polynomial" `Quick test_polynomial_fig1;
    Alcotest.test_case "semiring: self-join exponents" `Quick test_polynomial_self_join_exponent;
    prop_survives_equals_eval;
    Alcotest.test_case "semiring: viterbi confidence" `Quick test_best_confidence;
  ]
