(* Tests for the system layer: the materialized-view manager and the
   QOCO-style oracle cleaning loop. *)

open Util
module R = Relational
module D = Deleprop

let seeds = QCheck2.Gen.int_range 0 10_000

(* ---- matview ---- *)

let prop_matview_consistent =
  qcheck ~count:60 "matview: incremental views = from-scratch after mixed updates" seeds
    (fun seed ->
      let rng = rng seed in
      let { Workload.Forest_family.problem = p; _ } =
        Workload.Forest_family.generate ~rng
          { Workload.Forest_family.default with num_relations = 3; tuples_per_relation = 5;
            num_queries = 3; deletion_fraction = 0.0 }
      in
      let mv = ref (D.Matview.create p.D.Problem.db p.D.Problem.queries) in
      (* random deletions *)
      let dd =
        R.Instance.stuples p.D.Problem.db
        |> List.filter (fun _ -> Random.State.int rng 5 = 0)
        |> R.Stuple.Set.of_list
      in
      mv := D.Matview.delete !mv dd;
      (* random re-insertions of some deleted tuples *)
      let back =
        R.Stuple.Set.filter (fun _ -> Random.State.bool rng) dd
      in
      mv := D.Matview.insert_all !mv back;
      List.for_all
        (fun (q : Cq.Query.t) ->
          R.Tuple.Set.equal (D.Matview.view !mv q.name)
            (Cq.Eval.evaluate (D.Matview.db !mv) q))
        p.D.Problem.queries)

let test_matview_insert_key_violation () =
  let p = Workload.Author_journal.scenario_q4 () in
  let mv = D.Matview.create p.D.Problem.db p.D.Problem.queries in
  Alcotest.(check bool) "key violation surfaces" true
    (try
       ignore
         (D.Matview.insert mv
            (R.Stuple.make "T2"
               (R.Tuple.of_list
                  [ R.Value.str "TKDE"; R.Value.str "XML"; R.Value.int 99 ])));
       false
     with R.Relation.Key_violation _ -> true)

let test_matview_unknown_view () =
  let p = Workload.Author_journal.scenario_q4 () in
  let mv = D.Matview.create p.D.Problem.db p.D.Problem.queries in
  Alcotest.(check bool) "unknown view" true
    (try ignore (D.Matview.view mv "Zed"); false with Invalid_argument _ -> true)

let test_matview_self_join_insert () =
  (* delta insertion where the new tuple is used twice in one derivation *)
  let schema = R.Schema.Db.of_list [ R.Schema.make ~name:"E" ~attrs:[ "a"; "b" ] ~key:[ 0; 1 ] ] in
  let db = R.Instance.of_alist schema [ ("E", [ R.Tuple.ints [ 1; 2 ] ]) ] in
  let q = Cq.Parser.query_of_string "Q(X, Y, Z) :- E(X, Y), E(Y, Z)" in
  let mv = D.Matview.create db [ q ] in
  Alcotest.(check int) "initially empty" 0 (R.Tuple.Set.cardinal (D.Matview.view mv "Q"));
  (* inserting (2, 2) creates (1,2,2), (2,2,2) — the latter uses the new
     tuple in both atoms *)
  let mv = D.Matview.insert mv (R.Stuple.make "E" (R.Tuple.ints [ 2; 2 ])) in
  Alcotest.check tuple_set "both new answers"
    (R.Tuple.Set.of_list [ R.Tuple.ints [ 1; 2; 2 ]; R.Tuple.ints [ 2; 2; 2 ] ])
    (D.Matview.view mv "Q")

(* ---- oracle loop ---- *)

let loop_spec batch =
  {
    Workload.Oracle_loop.cleaning =
      { Workload.Cleaning.default with depth = 3; tuples_per_relation = 4 };
    batch_size = batch;
    max_questions = 2000;
  }

let prop_oracle_loop_cleans =
  qcheck ~count:25 "oracle loop: terminates with no wrong answers visible" seeds
    (fun seed ->
      let rng = rng seed in
      let o = Workload.Oracle_loop.run ~rng (loop_spec 3) in
      o.Workload.Oracle_loop.residual_wrong = 0
      && o.Workload.Oracle_loop.questions <= 2000)

let prop_oracle_batch_no_worse =
  qcheck ~count:15 "oracle loop: batching never needs more repair rounds" seeds
    (fun seed ->
      let run batch =
        Workload.Oracle_loop.run ~rng:(rng seed) (loop_spec batch)
      in
      let sequential = run 1 and batched = run 5 in
      batched.Workload.Oracle_loop.repair_rounds
      <= sequential.Workload.Oracle_loop.repair_rounds)

let suite =
  [
    prop_matview_consistent;
    Alcotest.test_case "matview: key violation on insert" `Quick
      test_matview_insert_key_violation;
    Alcotest.test_case "matview: unknown view" `Quick test_matview_unknown_view;
    Alcotest.test_case "matview: self-join delta insert" `Quick test_matview_self_join_insert;
    prop_oracle_loop_cleans;
    prop_oracle_batch_no_worse;
  ]
