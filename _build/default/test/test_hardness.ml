(* Tests for the Theorem 1/2 reductions: structure of the produced
   instances and exact cost preservation in both directions. *)

open Util
module R = Relational
module D = Deleprop
module SC = Setcover

let seeds = QCheck2.Gen.int_range 0 10_000

let small_spec =
  { Workload.Hard_family.default with num_red = 4; num_blue = 4; num_sets = 5 }

(* ---- structure ---- *)

let test_structure () =
  let rng = rng 1 in
  let h, rb = Workload.Hard_family.generate ~rng small_spec in
  let p = h.D.Hardness.problem in
  (* single relation, one tuple per set *)
  Alcotest.(check int) "tuples = sets" (SC.Red_blue.num_sets rb)
    (R.Instance.size p.D.Problem.db);
  (* all queries project-free and key-preserving *)
  let schema = R.Instance.schema p.D.Problem.db in
  List.iter
    (fun q ->
      Alcotest.(check bool) "project-free" true (Cq.Classify.is_project_free q);
      Alcotest.(check bool) "key-preserving" true (Cq.Classify.is_key_preserving schema q))
    p.D.Problem.queries;
  (* each view has exactly one tuple *)
  List.iter
    (fun (q : Cq.Query.t) ->
      Alcotest.(check int) ("one view tuple for " ^ q.name) 1
        (R.Tuple.Set.cardinal (D.Problem.view p q.name)))
    p.D.Problem.queries;
  (* ΔV covers exactly the blue queries *)
  Alcotest.(check int) "deletions = blues" (List.length h.D.Hardness.blue_query)
    (D.Problem.deletion_size p)

let test_uncoverable_rejected () =
  let sets = [ { SC.Red_blue.label = "C0"; red = SC.Iset.of_list [ 0 ]; blue = SC.Iset.empty } ] in
  let rb = SC.Red_blue.make_unit ~num_red:1 ~num_blue:1 sets in
  match D.Hardness.of_red_blue rb with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection of uncoverable blue"

let test_red_in_no_set_skipped () =
  let sets = [ { SC.Red_blue.label = "C0"; red = SC.Iset.empty; blue = SC.Iset.of_list [ 0 ] } ] in
  let rb = SC.Red_blue.make_unit ~num_red:1 ~num_blue:1 sets in
  match D.Hardness.of_red_blue rb with
  | Error m -> Alcotest.failf "unexpected error %s" m
  | Ok h ->
    Alcotest.(check int) "no red query" 0 (List.length h.D.Hardness.red_query);
    (* instance solvable at zero side-effect *)
    let prov = D.Provenance.build h.D.Hardness.problem in
    (match D.Brute.solve prov with
    | Some r -> check_float "zero cost" 0.0 r.D.Brute.outcome.D.Side_effect.cost
    | None -> Alcotest.fail "expected solution")

(* ---- Theorem 1: cost preservation ---- *)

let prop_thm1_cost_preserved =
  qcheck ~count:40 "VSE optimum = RBSC optimum through the Thm 1 reduction" seeds
    (fun seed ->
      let rng = rng seed in
      let h, rb = Workload.Hard_family.generate ~rng small_spec in
      let prov = D.Provenance.build h.D.Hardness.problem in
      match D.Brute.solve prov, SC.Red_blue.solve_exact rb with
      | Some v, Some s -> feq v.D.Brute.outcome.D.Side_effect.cost s.SC.Red_blue.cost
      | _ -> false)

let prop_thm1_solution_maps_back =
  qcheck ~count:40 "deletions map back to covers of equal cost" seeds (fun seed ->
      let rng = rng seed in
      let h, rb = Workload.Hard_family.generate ~rng small_spec in
      let prov = D.Provenance.build h.D.Hardness.problem in
      match D.Brute.solve prov with
      | None -> false
      | Some v ->
        let chosen = D.Hardness.chosen_sets h v.D.Brute.deletion in
        (match SC.Red_blue.solution_of rb chosen with
        | None -> false (* must be a feasible cover *)
        | Some s -> feq s.SC.Red_blue.cost v.D.Brute.outcome.D.Side_effect.cost))

(* ---- Theorem 2: balanced cost preservation ---- *)

let prop_thm2_cost_preserved =
  qcheck ~count:40 "balanced optimum = PNPSC optimum through the Thm 2 reduction" seeds
    (fun seed ->
      let rng = rng seed in
      match Workload.Hard_family.generate_balanced ~rng small_spec with
      | exception Invalid_argument _ -> true (* uncoverable positive: skip *)
      | h, pn ->
        let prov = D.Provenance.build h.D.Hardness.problem in
        let v = D.Balanced.solve_exact prov in
        let s = SC.Pos_neg.solve_exact pn in
        feq v.D.Balanced.outcome.D.Side_effect.balanced_cost s.SC.Pos_neg.cost)

(* approximations on hard instances stay within the Claim 1 bound *)
let prop_hard_approx_bounded =
  qcheck ~count:30 "general approx within Claim 1 bound on hard family" seeds (fun seed ->
      let rng = rng seed in
      let h, _ = Workload.Hard_family.generate ~rng small_spec in
      let prov = D.Provenance.build h.D.Hardness.problem in
      match D.Brute.solve prov, D.General_approx.solve prov with
      | Some opt, Some ga ->
        let oc = opt.D.Brute.outcome.D.Side_effect.cost in
        ga.D.General_approx.outcome.D.Side_effect.feasible
        && (ga.D.General_approx.outcome.D.Side_effect.cost
            <= (ga.D.General_approx.claimed_bound *. oc) +. 1e-9
           || feq oc 0.0)
      | _ -> false)

let suite =
  [
    Alcotest.test_case "reduction structure" `Quick test_structure;
    Alcotest.test_case "uncoverable blue rejected" `Quick test_uncoverable_rejected;
    Alcotest.test_case "red in no set skipped" `Quick test_red_in_no_set_skipped;
    prop_thm1_cost_preserved;
    prop_thm1_solution_maps_back;
    prop_thm2_cost_preserved;
    prop_hard_approx_bounded;
  ]
