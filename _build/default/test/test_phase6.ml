(* Tests for phase-6 substrates: Selinger optimizer, budgeted max
   coverage, greedy bounded deletion, Zipf sampling. *)

open Util
module R = Relational
module D = Deleprop
module SC = Setcover

let parse = Cq.Parser.query_of_string

(* ---- Selinger optimizer ---- *)

let opt_db () =
  let schema =
    R.Schema.Db.of_list
      [
        R.Schema.make ~name:"Big" ~attrs:[ "k"; "v" ] ~key:[ 0 ];
        R.Schema.make ~name:"Small" ~attrs:[ "k"; "v" ] ~key:[ 0 ];
      ]
  in
  let db = ref (R.Instance.empty schema) in
  for k = 0 to 99 do
    db := R.Instance.add !db "Big" (R.Tuple.ints [ k; k mod 10 ])
  done;
  for k = 0 to 4 do
    db := R.Instance.add !db "Small" (R.Tuple.ints [ k; k ])
  done;
  !db

let test_optimizer_small_first () =
  let db = opt_db () in
  (* joining on v: starting from Small (5 rows) beats starting from Big *)
  let q = parse "Q(K1, K2, V) :- Big(K1, V), Small(K2, V)" in
  let order = Cq.Optimizer.order db q in
  Alcotest.(check int) "small relation first" 1 order.(0)

let test_optimizer_constant_first () =
  let db = opt_db () in
  let q = parse "Q(K1, V, K2, W) :- Big(K1, V), Big2(K2, W)" in
  ignore q;
  (* constant selection on Big is more selective than tiny Small scan *)
  let q2 = parse "Q(K1, K2, V) :- Small(K2, V), Big(K1, 3)" in
  let order = Cq.Optimizer.order db q2 in
  (* Big with k bound by constant? column v = 3: |Big|/distinct(v) = 10 > 5,
     so Small still first; just check the plan is a valid permutation *)
  Alcotest.(check (list int)) "valid permutation" [ 0; 1 ]
    (List.sort Int.compare (Array.to_list order))

let test_optimizer_estimate_monotone () =
  let db = opt_db () in
  let unconstrained = parse "Q(K, V) :- Big(K, V)" in
  let constrained = parse "Q(K) :- Big(K, 3)" in
  Alcotest.(check bool) "selection shrinks the estimate" true
    (Cq.Optimizer.estimated_rows db constrained
    < Cq.Optimizer.estimated_rows db unconstrained)

let prop_optimizer_permutation =
  qcheck ~count:80 "optimizer returns a permutation; eval unchanged"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let p =
        Workload.Random_family.generate ~rng
          { Workload.Random_family.default with num_queries = 2; fact_tuples = 8;
            dim_tuples = 4 }
      in
      List.for_all
        (fun (q : Cq.Query.t) ->
          let order = Cq.Optimizer.order p.D.Problem.db q in
          let n = List.length q.Cq.Query.body in
          List.sort Int.compare (Array.to_list order) = List.init n Fun.id)
        p.D.Problem.queries)

(* ---- budgeted max coverage ---- *)

let mc sets ~universe =
  SC.Max_coverage.make_unit ~universe
    (List.mapi
       (fun i els ->
         { SC.Max_coverage.label = Printf.sprintf "S%d" i; elements = SC.Iset.of_list els })
       sets)

let test_max_coverage_greedy () =
  let t = mc ~universe:5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ] in
  let s = SC.Max_coverage.solve_greedy t ~k:2 in
  check_float "greedy covers all 5" 5.0 s.SC.Max_coverage.weight;
  let s1 = SC.Max_coverage.solve_greedy t ~k:1 in
  check_float "k=1 takes the big set" 3.0 s1.SC.Max_coverage.weight

let prop_max_coverage_ratio =
  qcheck ~count:80 "greedy max coverage within (1 - 1/e) of exact"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let universe = 1 + Random.State.int rng 8 in
      let sets =
        List.init (1 + Random.State.int rng 6) (fun i ->
            { SC.Max_coverage.label = Printf.sprintf "S%d" i;
              elements =
                SC.Iset.of_list
                  (List.filter (fun _ -> Random.State.bool rng) (List.init universe Fun.id)) })
      in
      let t = SC.Max_coverage.make_unit ~universe sets in
      let k = 1 + Random.State.int rng 3 in
      let g = SC.Max_coverage.solve_greedy t ~k in
      let e = SC.Max_coverage.solve_exact t ~k in
      g.SC.Max_coverage.weight +. 1e-9 >= (1.0 -. (1.0 /. Float.exp 1.0)) *. e.SC.Max_coverage.weight
      && g.SC.Max_coverage.weight <= e.SC.Max_coverage.weight +. 1e-9
      && List.length g.SC.Max_coverage.chosen <= k)

(* ---- greedy bounded deletion ---- *)

let prop_bounded_greedy_sound =
  qcheck ~count:40 "bounded greedy: feasible when Some, respects k, >= exact"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let { Workload.Forest_family.problem = p; _ } =
        Workload.Forest_family.generate ~rng
          { Workload.Forest_family.default with num_relations = 3; tuples_per_relation = 5 }
      in
      let prov = D.Provenance.build p in
      let k = 3 in
      match D.Bounded.solve_greedy ~k prov with
      | None -> true
      | Some g ->
        g.D.Bounded.outcome.D.Side_effect.feasible
        && R.Stuple.Set.cardinal g.D.Bounded.deletion <= k
        &&
        (match D.Bounded.solve ~k prov with
        | Some e ->
          g.D.Bounded.outcome.D.Side_effect.cost +. 1e-9
          >= e.D.Bounded.outcome.D.Side_effect.cost
        | None -> false (* greedy feasible implies exact feasible *)))

(* ---- Zipf ---- *)

let test_zipf_pmf () =
  let z = Workload.Zipf.make ~n:4 ~s:1.0 in
  (* pmf proportional to 1, 1/2, 1/3, 1/4 *)
  let h = 1.0 +. 0.5 +. (1.0 /. 3.0) +. 0.25 in
  check_float "rank 0" (1.0 /. h) (Workload.Zipf.pmf z 0);
  check_float "rank 3" (0.25 /. h) (Workload.Zipf.pmf z 3);
  (* s = 0 is uniform *)
  let u = Workload.Zipf.make ~n:5 ~s:0.0 in
  check_float "uniform" 0.2 (Workload.Zipf.pmf u 2)

let test_zipf_sampling_skew () =
  let rng = rng 42 in
  let z = Workload.Zipf.make ~n:10 ~s:1.5 in
  let counts = Array.make 10 0 in
  for _ = 1 to 5000 do
    let i = Workload.Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 dominates rank 9" true (counts.(0) > 5 * counts.(9));
  Alcotest.(check bool) "all mass accounted" true
    (Array.fold_left ( + ) 0 counts = 5000)

let test_skewed_workload_runs () =
  let rng = rng 7 in
  let p =
    Workload.Random_family.generate ~rng
      { Workload.Random_family.default with skew = 1.2; fact_tuples = 15; dim_tuples = 6 }
  in
  let prov = D.Provenance.build p in
  let r = D.Lowdeg.solve prov in
  Alcotest.(check bool) "skewed instance solvable" true
    r.D.Lowdeg.outcome.D.Side_effect.feasible

let suite =
  [
    Alcotest.test_case "optimizer: small relation first" `Quick test_optimizer_small_first;
    Alcotest.test_case "optimizer: valid permutation with constants" `Quick
      test_optimizer_constant_first;
    Alcotest.test_case "optimizer: selection shrinks estimates" `Quick
      test_optimizer_estimate_monotone;
    prop_optimizer_permutation;
    Alcotest.test_case "max coverage: greedy basics" `Quick test_max_coverage_greedy;
    prop_max_coverage_ratio;
    prop_bounded_greedy_sound;
    Alcotest.test_case "zipf: pmf" `Quick test_zipf_pmf;
    Alcotest.test_case "zipf: sampling skew" `Quick test_zipf_sampling_skew;
    Alcotest.test_case "zipf: skewed workload end-to-end" `Quick test_skewed_workload_runs;
  ]
