(* Tests for the LP toolkit: problem representation, feasibility checking,
   and the two-phase simplex. *)

open Util

let cstr coeffs op rhs cname = { Lp.Problem.coeffs; op; rhs; cname }

(* ---- problem / feasibility ---- *)

let test_value_and_feasibility () =
  let p =
    Lp.Problem.make ~direction:Lp.Problem.Minimize ~objective:[| 1.0; 2.0 |]
      ~constraints:
        [ cstr [| 1.0; 1.0 |] Lp.Problem.Ge 1.0 "c1"; cstr [| 1.0; 0.0 |] Lp.Problem.Le 5.0 "c2" ]
      ()
  in
  check_float "objective" 5.0 (Lp.Problem.value p [| 1.0; 2.0 |]);
  Alcotest.(check bool) "feasible point" true (Lp.Problem.is_feasible p [| 1.0; 0.0 |]);
  Alcotest.(check (list string)) "violations named" [ "c1" ]
    (Lp.Problem.violations p [| 0.0; 0.5 |]);
  Alcotest.(check (list string)) "negativity violation" [ "x1 >= 0" ]
    (Lp.Problem.violations p [| 2.0; -1.0 |])

let test_dimension_check () =
  Alcotest.(check bool) "bad width rejected" true
    (try
       ignore
         (Lp.Problem.make ~direction:Lp.Problem.Minimize ~objective:[| 1.0 |]
            ~constraints:[ cstr [| 1.0; 1.0 |] Lp.Problem.Ge 1.0 "c" ]
            ());
       false
     with Invalid_argument _ -> true)

(* ---- simplex ---- *)

let solve = Lp.Simplex.solve

let test_simplex_min_basic () =
  (* min x + y  s.t. x + y >= 2, x <= 1  ->  opt 2 *)
  let p =
    Lp.Problem.make ~direction:Lp.Problem.Minimize ~objective:[| 1.0; 1.0 |]
      ~constraints:
        [ cstr [| 1.0; 1.0 |] Lp.Problem.Ge 2.0 "sum"; cstr [| 1.0; 0.0 |] Lp.Problem.Le 1.0 "cap" ]
      ()
  in
  match solve p with
  | Lp.Simplex.Optimal { value; x; _ } ->
    check_float "value" 2.0 value;
    Alcotest.(check bool) "feasible" true (Lp.Problem.is_feasible p x)
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Simplex.pp_outcome o

let test_simplex_max_basic () =
  (* max 3x + 2y s.t. x + y <= 4, x <= 2 -> 2*3 + 2*2 = 10 *)
  let p =
    Lp.Problem.make ~direction:Lp.Problem.Maximize ~objective:[| 3.0; 2.0 |]
      ~constraints:
        [ cstr [| 1.0; 1.0 |] Lp.Problem.Le 4.0 "sum"; cstr [| 1.0; 0.0 |] Lp.Problem.Le 2.0 "cap" ]
      ()
  in
  match solve p with
  | Lp.Simplex.Optimal { value; _ } -> check_float "value" 10.0 value
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Simplex.pp_outcome o

let test_simplex_equality () =
  (* min x + y s.t. x + 2y = 3, x >= 1 (as Ge) -> x=1, y=1, value 2 *)
  let p =
    Lp.Problem.make ~direction:Lp.Problem.Minimize ~objective:[| 1.0; 1.0 |]
      ~constraints:
        [ cstr [| 1.0; 2.0 |] Lp.Problem.Eq 3.0 "eq"; cstr [| 1.0; 0.0 |] Lp.Problem.Ge 1.0 "lb" ]
      ()
  in
  match solve p with
  | Lp.Simplex.Optimal { value; _ } -> check_float "value" 2.0 value
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Simplex.pp_outcome o

let test_simplex_infeasible () =
  let p =
    Lp.Problem.make ~direction:Lp.Problem.Minimize ~objective:[| 1.0 |]
      ~constraints:
        [ cstr [| 1.0 |] Lp.Problem.Ge 2.0 "lb"; cstr [| 1.0 |] Lp.Problem.Le 1.0 "ub" ]
      ()
  in
  Alcotest.(check bool) "infeasible" true (solve p = Lp.Simplex.Infeasible)

let test_simplex_unbounded () =
  let p =
    Lp.Problem.make ~direction:Lp.Problem.Maximize ~objective:[| 1.0 |]
      ~constraints:[ cstr [| 1.0 |] Lp.Problem.Ge 0.0 "lb" ]
      ()
  in
  Alcotest.(check bool) "unbounded" true (solve p = Lp.Simplex.Unbounded)

let test_simplex_negative_rhs () =
  (* constraints with negative rhs get normalized: min x s.t. -x <= -3 -> x >= 3 *)
  let p =
    Lp.Problem.make ~direction:Lp.Problem.Minimize ~objective:[| 1.0 |]
      ~constraints:[ cstr [| -1.0 |] Lp.Problem.Le (-3.0) "neg" ]
      ()
  in
  match solve p with
  | Lp.Simplex.Optimal { value; _ } -> check_float "value" 3.0 value
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Simplex.pp_outcome o

let test_simplex_degenerate () =
  (* redundant constraints should not cycle thanks to Bland's rule *)
  let p =
    Lp.Problem.make ~direction:Lp.Problem.Minimize ~objective:[| 1.0; 1.0; 1.0 |]
      ~constraints:
        [
          cstr [| 1.0; 1.0; 0.0 |] Lp.Problem.Ge 1.0 "a";
          cstr [| 1.0; 1.0; 0.0 |] Lp.Problem.Ge 1.0 "a2";
          cstr [| 0.0; 1.0; 1.0 |] Lp.Problem.Ge 1.0 "b";
          cstr [| 1.0; 0.0; 1.0 |] Lp.Problem.Ge 1.0 "c";
        ]
      ()
  in
  match solve p with
  | Lp.Simplex.Optimal { value; _ } -> check_float "vertex-cover LP on a triangle" 1.5 value
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Simplex.pp_outcome o

(* random LPs: whenever simplex reports Optimal the point is feasible and
   no better than a reference grid scan over the integral box *)
let random_lp seed =
  let rng = rng seed in
  let n = 1 + Random.State.int rng 3 in
  let m = 1 + Random.State.int rng 4 in
  let objective = Array.init n (fun _ -> float_of_int (1 + Random.State.int rng 5)) in
  let constraints =
    List.init m (fun i ->
        let coeffs = Array.init n (fun _ -> float_of_int (Random.State.int rng 4 - 1)) in
        let op = if Random.State.bool rng then Lp.Problem.Ge else Lp.Problem.Le in
        let rhs = float_of_int (Random.State.int rng 6 - 1) in
        cstr coeffs op rhs (Printf.sprintf "c%d" i))
  in
  Lp.Problem.make ~direction:Lp.Problem.Minimize ~objective ~constraints ()

let prop_simplex_sound =
  qcheck ~count:200 "simplex: optimal points are feasible and dominate the grid"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let p = random_lp seed in
      match solve p with
      | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> true
      | Lp.Simplex.Optimal { x; value; _ } ->
        if not (Lp.Problem.is_feasible ~eps:1e-6 p x) then false
        else begin
          (* scan the integer grid [0..4]^n for feasible points *)
          let n = Lp.Problem.num_vars p in
          let ok = ref true in
          let point = Array.make n 0.0 in
          let rec scan i =
            if i = n then begin
              if Lp.Problem.is_feasible p point then
                if Lp.Problem.value p point < value -. 1e-6 then ok := false
            end
            else
              for v = 0 to 4 do
                point.(i) <- float_of_int v;
                scan (i + 1)
              done
          in
          scan 0;
          !ok
        end)

let suite =
  [
    Alcotest.test_case "problem: value / feasibility / violations" `Quick
      test_value_and_feasibility;
    Alcotest.test_case "problem: dimension check" `Quick test_dimension_check;
    Alcotest.test_case "simplex: min basic" `Quick test_simplex_min_basic;
    Alcotest.test_case "simplex: max basic" `Quick test_simplex_max_basic;
    Alcotest.test_case "simplex: equality constraints" `Quick test_simplex_equality;
    Alcotest.test_case "simplex: infeasible" `Quick test_simplex_infeasible;
    Alcotest.test_case "simplex: unbounded" `Quick test_simplex_unbounded;
    Alcotest.test_case "simplex: negative rhs normalization" `Quick test_simplex_negative_rhs;
    Alcotest.test_case "simplex: degeneracy (Bland)" `Quick test_simplex_degenerate;
    prop_simplex_sound;
  ]

(* ---- duals and strong duality ---- *)

let test_duals_basic () =
  (* min x + y s.t. x + y >= 2, x <= 1: optimum 2 at the Ge constraint.
     Strong duality: y1*2 + y2*1 = 2 with y1 = 1 (binding Ge), y2 = 0. *)
  let p =
    Lp.Problem.make ~direction:Lp.Problem.Minimize ~objective:[| 1.0; 1.0 |]
      ~constraints:
        [ cstr [| 1.0; 1.0 |] Lp.Problem.Ge 2.0 "sum"; cstr [| 1.0; 0.0 |] Lp.Problem.Le 1.0 "cap" ]
      ()
  in
  match solve p with
  | Lp.Simplex.Optimal { duals; value; _ } ->
    check_float "dual of the binding Ge" 1.0 duals.(0);
    check_float "dual of the slack Le" 0.0 duals.(1);
    check_float "strong duality" value ((duals.(0) *. 2.0) +. (duals.(1) *. 1.0))
  | o -> Alcotest.failf "expected optimal, got %a" Lp.Simplex.pp_outcome o

let prop_strong_duality =
  qcheck ~count:200 "strong duality on random minimize LPs"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let p = random_lp seed in
      match solve p with
      | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> true
      | Lp.Simplex.Optimal { value; duals; _ } ->
        let dual_value =
          List.fold_left2
            (fun acc (c : Lp.Problem.cstr) y -> acc +. (y *. c.Lp.Problem.rhs))
            0.0 p.Lp.Problem.constraints (Array.to_list duals)
        in
        Float.abs (value -. dual_value) < 1e-5)

let suite =
  suite
  @ [
      Alcotest.test_case "simplex: duals on a small LP" `Quick test_duals_basic;
      prop_strong_duality;
    ]
