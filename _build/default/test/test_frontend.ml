(* Tests for the data/query front ends: the SQL translator and the CSV
   loader. *)

open Util
module R = Relational

let schema =
  R.Schema.Db.of_list
    [
      R.Schema.make ~name:"T1" ~attrs:[ "AuName"; "Journal" ] ~key:[ 0; 1 ];
      R.Schema.make ~name:"T2" ~attrs:[ "Journal"; "Topic"; "Papers" ] ~key:[ 0; 1 ];
    ]

let sql s =
  match Cq.Sql.query_of_string ~schema ~name:"Q" s with
  | Ok q -> q
  | Error e -> Alcotest.failf "sql failed: %a" Cq.Sql.pp_error e

let sql_fails s =
  match Cq.Sql.query_of_string ~schema ~name:"Q" s with
  | Ok _ -> Alcotest.failf "expected failure for %s" s
  | Error _ -> ()

let db () = Workload.Author_journal.db ()

(* ---- SQL translation ---- *)

let test_sql_join () =
  let q = sql "SELECT a.AuName, j.Topic FROM T1 a, T2 j WHERE a.Journal = j.Journal" in
  Alcotest.(check int) "two atoms" 2 (List.length q.Cq.Query.body);
  Alcotest.(check int) "arity 2" 2 (Cq.Query.arity q);
  (* same answers as the datalog Q3 *)
  let q3 = Workload.Author_journal.q3 in
  Alcotest.check tuple_set "equals Q3" (Cq.Eval.evaluate (db ()) q3)
    (Cq.Eval.evaluate (db ()) q)

let test_sql_constants () =
  let q =
    sql "SELECT a.AuName FROM T1 a, T2 j WHERE a.Journal = j.Journal AND j.Topic = 'XML'"
  in
  Alcotest.check tuple_set "XML authors"
    (R.Tuple.Set.of_list
       [ R.Tuple.strs [ "Joe" ]; R.Tuple.strs [ "John" ]; R.Tuple.strs [ "Tom" ] ])
    (Cq.Eval.evaluate (db ()) q)

let test_sql_int_constant () =
  let q = sql "SELECT j.Journal FROM T2 j WHERE j.Papers = 30" in
  Alcotest.(check int) "both journals" 2
    (R.Tuple.Set.cardinal (Cq.Eval.evaluate (db ()) q))

let test_sql_star () =
  let q = sql "SELECT * FROM T1 a" in
  Alcotest.(check int) "full arity" 2 (Cq.Query.arity q);
  Alcotest.(check int) "four rows" 4 (R.Tuple.Set.cardinal (Cq.Eval.evaluate (db ()) q))

let test_sql_self_join () =
  (* co-authorship through a shared journal, via two aliases of T1 *)
  let q =
    sql "SELECT x.AuName, y.AuName FROM T1 x, T1 y WHERE x.Journal = y.Journal"
  in
  Alcotest.(check bool) "self-join detected" false (Cq.Classify.is_self_join_free q);
  Alcotest.(check bool) "John-Joe co-journal" true
    (R.Tuple.Set.mem (R.Tuple.strs [ "John"; "Joe" ]) (Cq.Eval.evaluate (db ()) q))

let test_sql_bare_columns () =
  (* AuName is unambiguous; Journal is not *)
  let q = sql "SELECT AuName FROM T1 a" in
  Alcotest.(check int) "bare ok" 1 (Cq.Query.arity q);
  sql_fails "SELECT Journal FROM T1 a, T2 j"

let test_sql_errors () =
  sql_fails "SELECTT x FROM T1 a";
  sql_fails "SELECT a.Nope FROM T1 a";
  sql_fails "SELECT a.AuName FROM Missing a";
  sql_fails "SELECT a.AuName FROM T1 a, T1 a";             (* duplicate alias *)
  sql_fails "SELECT a.AuName FROM T1 a WHERE a.AuName = 'x' AND a.AuName = 'y'";
  sql_fails "SELECT a.AuName FROM T1 a WHERE a.AuName"     (* missing '=' *)

let test_sql_case_insensitive_keywords () =
  let q = sql "select a.AuName from T1 a where a.Journal = 'TKDE'" in
  Alcotest.(check int) "three TKDE authors" 3
    (R.Tuple.Set.cardinal (Cq.Eval.evaluate (db ()) q))

let test_sql_propagation_end_to_end () =
  (* the SQL-defined view participates in deletion propagation *)
  let q =
    match
      Cq.Sql.query_of_string ~schema ~name:"Qs"
        "SELECT a.AuName, a.Journal, j.Topic FROM T1 a, T2 j WHERE a.Journal = j.Journal"
    with
    | Ok q -> q
    | Error e -> Alcotest.failf "sql: %a" Cq.Sql.pp_error e
  in
  let p =
    Deleprop.Problem.make ~db:(db ()) ~queries:[ q ]
      ~deletions:[ ("Qs", [ R.Tuple.strs [ "John"; "TKDE"; "XML" ] ]) ]
      ()
  in
  let prov = Deleprop.Provenance.build p in
  match Deleprop.Brute.solve prov with
  | Some r -> check_float "same optimum as the datalog Q4" 1.0 r.Deleprop.Brute.outcome.Deleprop.Side_effect.cost
  | None -> Alcotest.fail "expected solution"

(* ---- CSV ---- *)

let csv_text = "sku,qty\np1,10\np2,0\n\"p3,x\",7\n"

let test_csv_load () =
  let rel = R.Csv.relation_of_string ~name:"Stock" ~key:[ "sku" ] csv_text in
  Alcotest.(check int) "three rows" 3 (R.Relation.cardinal rel);
  Alcotest.(check bool) "quoted comma preserved" true
    (R.Relation.mem rel (R.Tuple.of_list [ R.Value.str "p3,x"; R.Value.int 7 ]));
  Alcotest.(check int) "int typing" 1
    (List.length (R.Relation.find_by_column rel 1 (R.Value.int 10)))

let test_csv_roundtrip () =
  let rel = R.Csv.relation_of_string ~name:"Stock" ~key:[ "sku" ] csv_text in
  let rel2 =
    R.Csv.relation_of_string ~name:"Stock" ~key:[ "sku" ] (R.Csv.relation_to_string rel)
  in
  Alcotest.(check bool) "roundtrip equal" true (R.Relation.equal rel rel2)

let test_csv_errors () =
  let fails csv key =
    Alcotest.(check bool) "rejected" true
      (try ignore (R.Csv.relation_of_string ~name:"T" ~key csv); false
       with R.Csv.Csv_error _ -> true)
  in
  fails "a,b\n1\n" [ "a" ];                 (* field count *)
  fails "a,b\n1,2\n1,3\n" [ "a" ];          (* key violation *)
  fails "a,b\n1,2\n" [ "zed" ];             (* unknown key attr *)
  fails "" [ "a" ];                          (* empty *)
  fails "a,b\n\"unterminated\n" [ "a" ]     (* quoting *)

let test_csv_into_instance () =
  let db =
    R.Csv.add_to_instance (db ()) ~name:"Stock" ~key:[ "sku" ] csv_text
  in
  Alcotest.(check int) "old + new tuples" 10 (R.Instance.size db);
  Alcotest.(check bool) "old data intact" true
    (R.Instance.mem db (st "T1" [ "John"; "TKDE" ]))

let suite =
  [
    Alcotest.test_case "sql: join = datalog Q3" `Quick test_sql_join;
    Alcotest.test_case "sql: string constants" `Quick test_sql_constants;
    Alcotest.test_case "sql: int constants" `Quick test_sql_int_constant;
    Alcotest.test_case "sql: SELECT *" `Quick test_sql_star;
    Alcotest.test_case "sql: self-join via aliases" `Quick test_sql_self_join;
    Alcotest.test_case "sql: bare columns" `Quick test_sql_bare_columns;
    Alcotest.test_case "sql: errors" `Quick test_sql_errors;
    Alcotest.test_case "sql: case-insensitive keywords" `Quick
      test_sql_case_insensitive_keywords;
    Alcotest.test_case "sql: end-to-end propagation" `Quick test_sql_propagation_end_to_end;
    Alcotest.test_case "csv: load with quoting and typing" `Quick test_csv_load;
    Alcotest.test_case "csv: roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv: errors" `Quick test_csv_errors;
    Alcotest.test_case "csv: append to instance" `Quick test_csv_into_instance;
  ]
