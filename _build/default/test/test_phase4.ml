(* Tests for phase-4 substrates: multicut on trees, insertion propagation,
   the solver portfolio. *)

open Util
module R = Relational
module D = Deleprop
module H = Hypergraph

(* ---- multicut on trees ---- *)

let e u v cost = { H.Multicut.u; v; cost }

let test_multicut_path () =
  (* path a-b-c-d, pair (a, d): cut the cheapest edge *)
  let edges = [ e "a" "b" 3.0; e "b" "c" 1.0; e "c" "d" 2.0 ] in
  match H.Multicut.solve ~edges ~pairs:[ ("a", "d") ] with
  | Error _ -> Alcotest.fail "expected success"
  | Ok r ->
    check_float "cuts the cheap edge" 1.0 r.H.Multicut.cost;
    Alcotest.(check int) "one edge" 1 (List.length r.H.Multicut.cut)

let test_multicut_star () =
  (* star: center x, leaves a b c; pairs (a,b), (b,c), (a,c): must cut at
     least two spokes *)
  let edges = [ e "x" "a" 1.0; e "x" "b" 1.0; e "x" "c" 1.0 ] in
  match H.Multicut.solve ~edges ~pairs:[ ("a", "b"); ("b", "c"); ("a", "c") ] with
  | Error _ -> Alcotest.fail "expected success"
  | Ok r ->
    Alcotest.(check bool) "cost at least 2" true (r.H.Multicut.cost >= 2.0 -. 1e-9);
    (* and within factor 2 of the optimum 2 *)
    Alcotest.(check bool) "within factor 2" true (r.H.Multicut.cost <= 4.0 +. 1e-9)

let test_multicut_errors () =
  let tri = [ e "a" "b" 1.0; e "b" "c" 1.0; e "c" "a" 1.0 ] in
  Alcotest.(check bool) "cycle rejected" true
    (H.Multicut.solve ~edges:tri ~pairs:[] = Error H.Multicut.Not_a_tree);
  Alcotest.(check bool) "unknown vertex" true
    (H.Multicut.solve ~edges:[ e "a" "b" 1.0 ] ~pairs:[ ("a", "z") ]
    = Error (H.Multicut.Unknown_vertex "z"));
  Alcotest.(check bool) "nonpositive cost" true
    (H.Multicut.solve ~edges:[ e "a" "b" 0.0 ] ~pairs:[] = Error H.Multicut.Nonpositive_cost)

let random_tree_instance seed =
  let rng = rng seed in
  let n = 4 + Random.State.int rng 6 in
  let name i = Printf.sprintf "v%d" i in
  let edges =
    List.init (n - 1) (fun i ->
        e (name (i + 1)) (name (Random.State.int rng (i + 1)))
          (1.0 +. float_of_int (Random.State.int rng 4)))
  in
  let pairs =
    List.init (1 + Random.State.int rng 4) (fun _ ->
        let a = Random.State.int rng n in
        let b = (a + 1 + Random.State.int rng (n - 1)) mod n in
        (name a, name b))
    |> List.filter (fun (a, b) -> a <> b)
  in
  (edges, pairs)

let prop_multicut_factor2 =
  qcheck ~count:80 "multicut: feasible, within factor 2, dual <= opt"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let edges, pairs = random_tree_instance seed in
      match
        H.Multicut.solve ~edges ~pairs, H.Multicut.solve_exact ~pairs edges
      with
      | Ok approx, Ok exact ->
        approx.H.Multicut.cost +. 1e-9 >= exact.H.Multicut.cost
        && approx.H.Multicut.cost <= (2.0 *. exact.H.Multicut.cost) +. 1e-9
        && approx.H.Multicut.dual_value <= exact.H.Multicut.cost +. 1e-9
      | _ -> pairs = [])

(* ---- insertion propagation ---- *)

let test_insertion_reuses_existing () =
  (* Alice joins TKDE: only the author row must be inserted; the XML and
     CUBE topic rows already exist. Side-effect: the other topic appears. *)
  let p =
    D.Problem.make ~db:(Workload.Author_journal.db ())
      ~queries:[ Workload.Author_journal.q4 ] ~deletions:[] ()
  in
  match
    D.Insertion.solve p ~query:"Q4" ~target:(R.Tuple.strs [ "Alice"; "TKDE"; "XML" ])
  with
  | Error err -> Alcotest.failf "unexpected: %a" D.Insertion.pp_error err
  | Ok r ->
    Alcotest.(check int) "one insertion" 1 (R.Stuple.Set.cardinal r.D.Insertion.insertions);
    Alcotest.(check bool) "inserts the author row" true
      (R.Stuple.Set.mem (st "T1" [ "Alice"; "TKDE" ]) r.D.Insertion.insertions);
    (* (Alice, TKDE, CUBE) appears collaterally *)
    check_float "side effect 1" 1.0 r.D.Insertion.side_effect

let test_insertion_fresh_values () =
  (* a brand new journal: both rows must be inserted; with a fresh value
     for the papers column there is no way to avoid... and no collateral *)
  let p =
    D.Problem.make ~db:(Workload.Author_journal.db ())
      ~queries:[ Workload.Author_journal.q4 ] ~deletions:[] ()
  in
  match
    D.Insertion.solve p ~query:"Q4" ~target:(R.Tuple.strs [ "Bob"; "JDBM"; "GRAPHS" ])
  with
  | Error err -> Alcotest.failf "unexpected: %a" D.Insertion.pp_error err
  | Ok r ->
    Alcotest.(check int) "two insertions" 2 (R.Stuple.Set.cardinal r.D.Insertion.insertions);
    check_float "no collateral views" 0.0 r.D.Insertion.side_effect

let test_insertion_errors () =
  let p =
    D.Problem.make ~db:(Workload.Author_journal.db ())
      ~queries:[ Workload.Author_journal.q4 ] ~deletions:[] ()
  in
  (match D.Insertion.solve p ~query:"Q4" ~target:(R.Tuple.strs [ "John"; "TKDE"; "XML" ]) with
  | Error D.Insertion.Already_present -> ()
  | _ -> Alcotest.fail "expected Already_present");
  (match D.Insertion.solve p ~query:"Zed" ~target:(R.Tuple.strs [ "x" ]) with
  | Error (D.Insertion.Unknown_query _) -> ()
  | _ -> Alcotest.fail "expected Unknown_query");
  match D.Insertion.solve p ~query:"Q4" ~target:(R.Tuple.strs [ "x" ]) with
  | Error D.Insertion.Arity_mismatch -> ()
  | _ -> Alcotest.fail "expected Arity_mismatch"

let prop_insertion_sound =
  qcheck ~count:40 "insertion: target derivable afterwards, new_views correct"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng2 = rng seed in
      let p =
        Workload.Random_family.generate ~rng:rng2
          { Workload.Random_family.default with num_queries = 2; fact_tuples = 6;
            dim_tuples = 3; deletion_fraction = 0.0 }
      in
      (* invent a target: take an existing fact key + 1000 to be fresh *)
      match p.D.Problem.queries with
      | q :: _ -> (
        let view = Cq.Eval.evaluate p.D.Problem.db q in
        if R.Tuple.Set.is_empty view then true
        else
          let sample = R.Tuple.Set.choose view in
          let target =
            R.Tuple.of_list
              (match R.Tuple.to_list sample with
              | _ :: rest -> R.Value.int 1000 :: rest
              | [] -> [])
          in
          match D.Insertion.solve p ~query:q.Cq.Query.name ~target with
          | Error _ -> true (* key conflicts are legitimate *)
          | Ok r ->
            let db' =
              R.Stuple.Set.fold
                (fun st acc -> R.Instance.add_stuple acc st)
                r.D.Insertion.insertions p.D.Problem.db
            in
            R.Tuple.Set.mem target (Cq.Eval.evaluate db' q))
      | [] -> false)

(* ---- portfolio ---- *)

let prop_portfolio_sound =
  qcheck ~count:40 "portfolio: all feasible, best = optimum when brute runs"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng2 = rng seed in
      let { Workload.Forest_family.problem = p; _ } =
        Workload.Forest_family.generate ~rng:rng2
          { Workload.Forest_family.default with num_relations = 3; tuples_per_relation = 5 }
      in
      let prov = D.Provenance.build p in
      let entries = D.Portfolio.run prov in
      entries <> []
      && List.for_all (fun e -> e.D.Portfolio.outcome.D.Side_effect.feasible) entries
      && (let costs = List.map (fun e -> e.D.Portfolio.outcome.D.Side_effect.cost) entries in
          List.sort compare costs = costs)
      &&
      let brute_ran = List.exists (fun e -> e.D.Portfolio.algorithm = "brute") entries in
      (not brute_ran)
      ||
      match D.Brute.solve prov with
      | Some opt ->
        feq (D.Portfolio.best prov).D.Portfolio.outcome.D.Side_effect.cost
          opt.D.Brute.outcome.D.Side_effect.cost
      | None -> false)

let suite =
  [
    Alcotest.test_case "multicut: path" `Quick test_multicut_path;
    Alcotest.test_case "multicut: star" `Quick test_multicut_star;
    Alcotest.test_case "multicut: errors" `Quick test_multicut_errors;
    prop_multicut_factor2;
    Alcotest.test_case "insertion: reuses existing tuples" `Quick test_insertion_reuses_existing;
    Alcotest.test_case "insertion: fresh values" `Quick test_insertion_fresh_values;
    Alcotest.test_case "insertion: errors" `Quick test_insertion_errors;
    prop_insertion_sound;
    prop_portfolio_sound;
  ]
