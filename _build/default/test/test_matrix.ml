(* The solver × workload-family matrix: one driver that runs every
   applicable solver over every generator family and asserts the shared
   invariants (feasibility, dominance by the exact optimum, bound
   satisfaction). Each (family, seed) pair becomes one alcotest case, so
   failures name the exact combination. *)

open Util
module R = Relational
module D = Deleprop

type family = {
  fname : string;
  gen : int -> D.Problem.t;   (* seed -> problem *)
}

let families =
  [
    {
      fname = "forest";
      gen =
        (fun seed ->
          (Workload.Forest_family.generate ~rng:(rng seed)
             { Workload.Forest_family.default with num_relations = 3; tuples_per_relation = 5 })
            .Workload.Forest_family.problem);
    };
    {
      fname = "pivot";
      gen =
        (fun seed ->
          Workload.Pivot_family.generate ~rng:(rng seed)
            { Workload.Pivot_family.default with depth = 3; tuples_per_relation = 5 });
    };
    {
      fname = "star";
      gen =
        (fun seed ->
          Workload.Random_family.generate ~rng:(rng seed)
            { Workload.Random_family.default with fact_tuples = 8; dim_tuples = 4;
              num_queries = 3 });
    };
    {
      fname = "star-skewed";
      gen =
        (fun seed ->
          Workload.Random_family.generate ~rng:(rng seed)
            { Workload.Random_family.default with fact_tuples = 8; dim_tuples = 4;
              num_queries = 3; skew = 1.2 });
    };
    {
      fname = "hard";
      gen =
        (fun seed ->
          (fst
             (Workload.Hard_family.generate ~rng:(rng seed)
                { Workload.Hard_family.default with num_red = 4; num_blue = 4; num_sets = 5 }))
            .D.Hardness.problem);
    };
    {
      fname = "cleaning";
      gen =
        (fun seed ->
          (Workload.Cleaning.generate ~rng:(rng seed) ~views_with_feedback:3
             { Workload.Cleaning.default with depth = 3; tuples_per_relation = 4 })
            .Workload.Cleaning.problem);
    };
  ]

let check_family f seed () =
  let p = f.gen seed in
  let prov = D.Provenance.build p in
  let opt =
    if R.Stuple.Set.cardinal (D.Provenance.candidates prov) <= 16 then
      Option.map
        (fun (r : D.Brute.result) -> r.D.Brute.outcome.D.Side_effect.cost)
        (D.Brute.solve prov)
    else None
  in
  let dominated name cost =
    match opt with
    | Some o ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s >= optimum" f.fname name)
        true
        (cost +. 1e-9 >= o)
    | None -> ()
  in
  (* primal-dual *)
  let pd = D.Primal_dual.solve prov in
  Alcotest.(check bool) "pd feasible" true pd.D.Primal_dual.outcome.D.Side_effect.feasible;
  dominated "primal-dual" pd.D.Primal_dual.outcome.D.Side_effect.cost;
  (* lowdeg *)
  let ld = D.Lowdeg.solve prov in
  Alcotest.(check bool) "lowdeg feasible" true ld.D.Lowdeg.outcome.D.Side_effect.feasible;
  dominated "lowdeg" ld.D.Lowdeg.outcome.D.Side_effect.cost;
  (* general *)
  (match D.General_approx.solve prov with
  | Some ga ->
    Alcotest.(check bool) "general feasible" true
      ga.D.General_approx.outcome.D.Side_effect.feasible;
    dominated "general" ga.D.General_approx.outcome.D.Side_effect.cost;
    (match opt with
    | Some o when o > 1e-9 ->
      Alcotest.(check bool) "general within Claim 1" true
        (ga.D.General_approx.outcome.D.Side_effect.cost
        <= (ga.D.General_approx.claimed_bound *. o) +. 1e-9)
    | _ -> ())
  | None -> Alcotest.fail "general approx failed");
  (* dp where applicable: must equal the optimum *)
  (match (D.Dp_tree.solve prov, opt) with
  | Ok dp, Some o ->
    Alcotest.(check bool) "dp = optimum when applicable" true
      (Float.abs (dp.D.Dp_tree.outcome.D.Side_effect.cost -. o) < 1e-9)
  | _ -> ());
  (* balanced: exact <= standard optimum; general >= exact *)
  let bal = D.Balanced.solve_exact prov in
  (match opt with
  | Some o ->
    Alcotest.(check bool) "balanced <= standard optimum" true
      (bal.D.Balanced.outcome.D.Side_effect.balanced_cost <= o +. 1e-9)
  | None -> ());
  let balg = D.Balanced.solve_general prov in
  Alcotest.(check bool) "balanced general >= exact" true
    (balg.D.Balanced.outcome.D.Side_effect.balanced_cost +. 1e-9
    >= bal.D.Balanced.outcome.D.Side_effect.balanced_cost);
  (* source: greedy >= exact, both feasible *)
  (match (D.Source_side_effect.solve_exact prov, D.Source_side_effect.solve_greedy prov) with
  | Some se, Some sg ->
    Alcotest.(check bool) "source both feasible" true
      (se.D.Source_side_effect.outcome.D.Side_effect.feasible
      && sg.D.Source_side_effect.outcome.D.Side_effect.feasible);
    Alcotest.(check bool) "source greedy >= exact" true
      (sg.D.Source_side_effect.source_cost +. 1e-9 >= se.D.Source_side_effect.source_cost)
  | _ -> Alcotest.fail "source solvers failed");
  (* bounded at the minimal budget exists and is feasible *)
  (match D.Bounded.min_budget prov with
  | Some k -> (
    match D.Bounded.solve ~k prov with
    | Some b ->
      Alcotest.(check bool) "bounded feasible at min budget" true
        b.D.Bounded.outcome.D.Side_effect.feasible
    | None -> Alcotest.fail "bounded: min budget not solvable")
  | None -> Alcotest.fail "bounded: no feasible budget");
  (* portfolio: sequential and parallel agree on the best cost *)
  let seq = D.Portfolio.best prov in
  let par = List.hd (D.Portfolio.run_parallel prov) in
  Alcotest.(check bool) "portfolio par = seq best cost" true
    (Float.abs
       (seq.D.Portfolio.outcome.D.Side_effect.cost
       -. par.D.Portfolio.outcome.D.Side_effect.cost)
    < 1e-9)

let suite =
  List.concat_map
    (fun f ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "matrix: %s (seed %d)" f.fname seed)
            `Quick (check_family f seed))
        [ 1; 2; 3 ])
    families
