(* Cross-cutting fuzz tests: random schemas, random safe conjunctive
   queries (self-joins, constants, projections included), random data —
   asserting invariants that tie the substrates together. *)

open Util
module R = Relational
module D = Deleprop

(* ---- random instance / query generation ---- *)

let random_schema rng =
  let num_rels = 1 + Random.State.int rng 3 in
  R.Schema.Db.of_list
    (List.init num_rels (fun i ->
         let arity = 1 + Random.State.int rng 3 in
         R.Schema.make_anon ~name:(Printf.sprintf "T%d" i) ~arity
           ~key:[ Random.State.int rng arity ]))

let random_db rng schema =
  List.fold_left
    (fun db (s : R.Schema.t) ->
      let n = 1 + Random.State.int rng 6 in
      List.fold_left
        (fun db _ ->
          let t =
            R.Tuple.of_list
              (List.init s.R.Schema.arity (fun _ -> R.Value.int (Random.State.int rng 4)))
          in
          try R.Instance.add db s.R.Schema.name t with R.Relation.Key_violation _ -> db)
        db (List.init n Fun.id))
    (R.Instance.empty schema)
    (R.Schema.Db.relations schema)

let var_pool = [| "X"; "Y"; "Z"; "U"; "V" |]

let random_query rng schema name =
  let rels = R.Schema.Db.relations schema in
  let num_atoms = 1 + Random.State.int rng 3 in
  let atoms =
    List.init num_atoms (fun _ ->
        let s = List.nth rels (Random.State.int rng (List.length rels)) in
        let args =
          List.init s.R.Schema.arity (fun _ ->
              if Random.State.int rng 5 = 0 then Cq.Term.int (Random.State.int rng 4)
              else Cq.Term.var var_pool.(Random.State.int rng (Array.length var_pool)))
        in
        Cq.Atom.make s.R.Schema.name args)
  in
  let body_vars =
    List.fold_left
      (fun acc a -> Cq.Term.Vars.union acc (Cq.Atom.var_set a))
      Cq.Term.Vars.empty atoms
  in
  match Cq.Term.Vars.elements body_vars with
  | [] -> None (* all-constant body: head would be empty *)
  | vars ->
    let head_vars = List.filter (fun _ -> Random.State.bool rng) vars in
    let head_vars = if head_vars = [] then [ List.hd vars ] else head_vars in
    Some (Cq.Query.make ~name ~head:(List.map Cq.Term.var head_vars) ~body:atoms)

let with_random_instance seed f =
  let rng = rng seed in
  let schema = random_schema rng in
  let db = random_db rng schema in
  match random_query rng schema "Q" with
  | None -> true
  | Some q -> f rng schema db q

let seeds = QCheck2.Gen.int_range 0 100_000

(* ---- invariants ---- *)

let prop_eval_plan_agnostic =
  qcheck ~count:150 "fuzz: planned = naive on arbitrary CQs" seeds (fun seed ->
      with_random_instance seed (fun _ _ db q ->
          R.Tuple.Set.equal
            (Cq.Eval.evaluate ~planned:true db q)
            (Cq.Eval.evaluate ~planned:false db q)))

let prop_witnesses_in_db =
  qcheck ~count:150 "fuzz: every witness tuple is in the database" seeds (fun seed ->
      with_random_instance seed (fun _ _ db q ->
          Cq.Eval.matches db q
          |> List.for_all (fun (_, w) ->
                 Array.for_all (fun st -> R.Instance.mem db st) w)))

let prop_deleting_all_witnesses_kills =
  qcheck ~count:100 "fuzz: deleting every witness removes the answer" seeds (fun seed ->
      with_random_instance seed (fun _ _ db q ->
          let prov = Cq.Eval.provenance db q in
          R.Tuple.Map.for_all
            (fun answer witnesses ->
              let dd =
                List.fold_left
                  (fun acc w -> R.Stuple.Set.union acc (Cq.Eval.witness_set w))
                  R.Stuple.Set.empty witnesses
              in
              not (R.Tuple.Set.mem answer (Cq.Eval.evaluate (R.Instance.delete db dd) q)))
            prov))

let prop_project_free_implies_kp =
  qcheck ~count:150 "fuzz: project-free implies key-preserving" seeds (fun seed ->
      with_random_instance seed (fun _ schema _ q ->
          (not (Cq.Classify.is_project_free q)) || Cq.Classify.is_key_preserving schema q))

let prop_minimize_preserves_semantics =
  qcheck ~count:100 "fuzz: minimized query has the same answers" seeds (fun seed ->
      with_random_instance seed (fun _ _ db q ->
          let m = Cq.Containment.minimize q in
          List.length m.Cq.Query.body <= List.length q.Cq.Query.body
          && R.Tuple.Set.equal (Cq.Eval.evaluate db q) (Cq.Eval.evaluate db m)))

let prop_maintenance_fuzz =
  qcheck ~count:100 "fuzz: incremental refresh = re-evaluation on arbitrary CQs" seeds
    (fun seed ->
      with_random_instance seed (fun rng _ db q ->
          let dd =
            R.Instance.stuples db
            |> List.filter (fun _ -> Random.State.int rng 4 = 0)
            |> R.Stuple.Set.of_list
          in
          let view = Cq.Eval.evaluate db q in
          R.Tuple.Set.equal
            (Cq.Maintain.refresh db q ~view dd)
            (Cq.Eval.evaluate (R.Instance.delete db dd) q)))

let prop_serial_roundtrip_fuzz =
  qcheck ~count:100 "fuzz: instance serialization roundtrips" seeds (fun seed ->
      let rng = rng seed in
      let schema = random_schema rng in
      let db = random_db rng schema in
      let db2 = R.Serial.instance_of_string (R.Serial.instance_to_string db) in
      R.Instance.equal db db2)

let prop_ground_truth_brute_consistent =
  (* on random key-preserving instances: witness-based brute = ground-truth
     brute *)
  qcheck ~count:30 "fuzz: witness brute = ground-truth brute (key-preserving)" seeds
    (fun seed ->
      let rng = rng seed in
      let { Workload.Forest_family.problem = p; _ } =
        Workload.Forest_family.generate ~rng
          { Workload.Forest_family.default with num_relations = 3; tuples_per_relation = 4;
            num_queries = 2 }
      in
      let prov = D.Provenance.build p in
      if R.Stuple.Set.cardinal (D.Provenance.candidates prov) > 12 then true
      else
        match D.Brute.solve prov, D.Brute.solve_ground_truth p with
        | Some a, Some b ->
          feq a.D.Brute.outcome.D.Side_effect.cost b.D.Brute.outcome.D.Side_effect.cost
        | None, None -> true
        | _ -> false)

let prop_query_pp_parse_roundtrip =
  qcheck ~count:150 "fuzz: query pretty-print parses back" seeds (fun seed ->
      with_random_instance seed (fun _ _ _ q ->
          let q2 = Cq.Parser.query_of_string (Cq.Query.to_string q) in
          Cq.Query.equal q q2))

let suite =
  [
    prop_eval_plan_agnostic;
    prop_witnesses_in_db;
    prop_deleting_all_witnesses_kills;
    prop_project_free_implies_kp;
    prop_minimize_preserves_semantics;
    prop_maintenance_fuzz;
    prop_serial_roundtrip_fuzz;
    prop_ground_truth_brute_consistent;
    prop_query_pp_parse_roundtrip;
  ]
