(* Tests for conjunctive queries: parsing, classification, evaluation,
   provenance. *)

open Util
module R = Relational

let schema =
  R.Schema.Db.of_list
    [
      R.Schema.make ~name:"T1" ~attrs:[ "a"; "b" ] ~key:[ 0; 1 ];
      R.Schema.make ~name:"T2" ~attrs:[ "b"; "c"; "d" ] ~key:[ 0; 1 ];
      R.Schema.make ~name:"T3" ~attrs:[ "k"; "v" ] ~key:[ 0 ];
    ]

let parse = Cq.Parser.query_of_string

(* ---- parser ---- *)

let test_parse_basic () =
  let q = parse "Q(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  Alcotest.(check string) "name" "Q" q.Cq.Query.name;
  Alcotest.(check int) "arity" 2 (Cq.Query.arity q);
  Alcotest.(check int) "atoms" 2 (List.length q.Cq.Query.body)

let test_parse_constants () =
  let q = parse "Q(X) :- T3(X, 42), T3(X, tag), T3(X, 'two words')" in
  match List.map (fun (a : Cq.Atom.t) -> a.args.(1)) q.Cq.Query.body with
  | [ c1; c2; c3 ] ->
    Alcotest.(check bool) "int const" true (Cq.Term.equal c1 (Cq.Term.int 42));
    Alcotest.(check bool) "lowercase is const" true (Cq.Term.equal c2 (Cq.Term.str "tag"));
    Alcotest.(check bool) "quoted const" true (Cq.Term.equal c3 (Cq.Term.str "two words"))
  | _ -> Alcotest.fail "expected three atoms"

let test_parse_variables () =
  let q = parse "Q(X, _y) :- T3(X, _y)" in
  Alcotest.(check bool) "underscore var" true
    (Cq.Term.Vars.mem "_y" (Cq.Query.head_vars q))

let test_parse_errors () =
  let fails s =
    Alcotest.(check bool) ("rejects " ^ s) true
      (try ignore (parse s); false with Cq.Parser.Parse_error _ -> true)
  in
  fails "Q(X)";                       (* no body *)
  fails "Q(X) : T(X)";                (* bad turnstile *)
  fails "Q(X) :- T(X";                (* unterminated *)
  fails "Q() :- T(X)";                (* empty head *)
  fails "Q(X) :- T(X,)";              (* trailing comma... parsed as missing term *)
  fails "Q(X) :- "                    (* empty body *)

let test_parse_multi () =
  let qs = Cq.Parser.queries_of_string "# comment\nQ1(X) :- T3(X, Y)\n\nQ2(X) :- T3(X, Z)\n" in
  Alcotest.(check (list string)) "names" [ "Q1"; "Q2" ]
    (List.map (fun (q : Cq.Query.t) -> q.name) qs)

(* ---- classification ---- *)

let test_classify_project_free () =
  let pf = parse "Q(X, Y, Z, W) :- T1(X, Y), T2(Y, Z, W)" in
  let non_pf = parse "Q(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  Alcotest.(check bool) "project-free" true (Cq.Classify.is_project_free pf);
  Alcotest.(check bool) "not project-free" false (Cq.Classify.is_project_free non_pf)

let test_classify_sj_free () =
  let sj = parse "Q(X, Y, Z) :- T3(X, Y), T3(Y, Z)" in
  let sjf = parse "Q(X, Y) :- T1(X, Y), T2(Y, Y, Y)" in
  Alcotest.(check bool) "self-join" false (Cq.Classify.is_self_join_free sj);
  Alcotest.(check bool) "sj-free" true (Cq.Classify.is_self_join_free sjf)

let test_classify_key_preserving () =
  (* paper's Q4: keys (a,b) of T1 and (b,c) of T2 all in head *)
  let q4 = parse "Q4(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)" in
  (* paper's Q3: key var Y projected away *)
  let q3 = parse "Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  Alcotest.(check bool) "Q4 key preserving" true (Cq.Classify.is_key_preserving schema q4);
  Alcotest.(check bool) "Q3 not key preserving" false (Cq.Classify.is_key_preserving schema q3);
  Alcotest.(check int) "Q3 violations: Y twice (T1 and T2)" 2
    (List.length (Cq.Classify.key_preserving_violations schema q3))

let test_classify_project_free_implies_kp () =
  (* §II.B: a project-free CQ is always key preserved *)
  let pf = parse "Q(X, Y, Z, W) :- T1(X, Y), T2(Y, Z, W)" in
  Alcotest.(check bool) "pf => kp" true (Cq.Classify.is_key_preserving schema pf)

let test_classify_constant_key () =
  (* a constant at a key position needs no head variable *)
  let q = parse "Q(V) :- T3(pin, V)" in
  Alcotest.(check bool) "constant key ok" true (Cq.Classify.is_key_preserving schema q)

let test_check_key_preserving_raises () =
  let q3 = parse "Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  Alcotest.(check bool) "raises" true
    (try Cq.Classify.check_key_preserving schema [ q3 ]; false
     with Invalid_argument _ -> true)

(* ---- query well-formedness ---- *)

let test_query_check () =
  let ok = parse "Q(X) :- T3(X, Y)" in
  Cq.Query.check schema ok;
  let unsafe = Cq.Query.make ~name:"Q" ~head:[ Cq.Term.var "Z" ]
      ~body:[ Cq.Atom.make "T3" [ Cq.Term.var "X"; Cq.Term.var "Y" ] ] in
  Alcotest.(check bool) "unsafe head" true
    (try Cq.Query.check schema unsafe; false with Invalid_argument _ -> true);
  let bad_arity = parse "Q(X) :- T3(X)" in
  Alcotest.(check bool) "bad arity" true
    (try Cq.Query.check schema bad_arity; false with Invalid_argument _ -> true);
  let unknown = parse "Q(X) :- T9(X)" in
  Alcotest.(check bool) "unknown relation" true
    (try Cq.Query.check schema unknown; false with Invalid_argument _ -> true)

let test_query_vars () =
  let q = parse "Q(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  Alcotest.(check (list string)) "existential" [ "W"; "Y" ]
    (Cq.Term.Vars.elements (Cq.Query.existential_vars q));
  Alcotest.(check (list string)) "head" [ "X"; "Z" ]
    (Cq.Term.Vars.elements (Cq.Query.head_vars q));
  Alcotest.(check (list string)) "relations" [ "T1"; "T2" ] (Cq.Query.relations q)

(* ---- evaluation ---- *)

let db () =
  R.Instance.of_alist schema
    [
      ("T1", [ R.Tuple.strs [ "john"; "tkde" ]; R.Tuple.strs [ "joe"; "tkde" ];
               R.Tuple.strs [ "john"; "tods" ] ]);
      ("T2", [ R.Tuple.of_list [ R.Value.str "tkde"; R.Value.str "xml"; R.Value.int 30 ];
               R.Tuple.of_list [ R.Value.str "tods"; R.Value.str "xml"; R.Value.int 30 ] ]);
      ("T3", [ R.Tuple.ints [ 1; 2 ]; R.Tuple.ints [ 2; 3 ]; R.Tuple.ints [ 3; 4 ] ]);
    ]

let test_eval_join () =
  let q = parse "Q(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  let res = Cq.Eval.evaluate (db ()) q in
  Alcotest.check tuple_set "join result"
    (R.Tuple.Set.of_list
       [ R.Tuple.strs [ "john"; "xml" ]; R.Tuple.strs [ "joe"; "xml" ] ])
    res

let test_eval_constants_filter () =
  let q = parse "Q(X) :- T1(X, tods)" in
  Alcotest.check tuple_set "selection"
    (R.Tuple.Set.of_list [ R.Tuple.strs [ "john" ] ])
    (Cq.Eval.evaluate (db ()) q)

let test_eval_self_join () =
  let q = parse "Q(X, Y, Z) :- T3(X, Y), T3(Y, Z)" in
  Alcotest.check tuple_set "path of length 2"
    (R.Tuple.Set.of_list [ R.Tuple.ints [ 1; 2; 3 ]; R.Tuple.ints [ 2; 3; 4 ] ])
    (Cq.Eval.evaluate (db ()) q)

let test_eval_repeated_var () =
  (* repeated variable within an atom forces equality *)
  let q = parse "Q(X) :- T3(X, X)" in
  Alcotest.check tuple_set "no loops" R.Tuple.Set.empty (Cq.Eval.evaluate (db ()) q)

let test_eval_head_constants () =
  let q = Cq.Query.make ~name:"Q"
      ~head:[ Cq.Term.var "X"; Cq.Term.str "tag" ]
      ~body:[ Cq.Atom.make "T3" [ Cq.Term.var "X"; Cq.Term.var "Y" ] ] in
  let res = Cq.Eval.evaluate (db ()) q in
  Alcotest.(check int) "three results" 3 (R.Tuple.Set.cardinal res);
  Alcotest.(check bool) "constant column" true
    (R.Tuple.Set.for_all (fun t -> R.Value.equal (R.Tuple.get t 1) (R.Value.str "tag")) res)

let test_provenance_unique_witness () =
  (* key-preserving query: exactly one witness per answer *)
  let q = parse "Q4(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)" in
  let prov = Cq.Eval.provenance (db ()) q in
  R.Tuple.Map.iter
    (fun _ ws -> Alcotest.(check int) "unique witness" 1 (List.length ws))
    prov

let test_provenance_multiple_witnesses () =
  (* paper's Q3: (john, xml) derivable via tkde and via tods *)
  let q = parse "Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  let prov = Cq.Eval.provenance (db ()) q in
  let ws = R.Tuple.Map.find (R.Tuple.strs [ "john"; "xml" ]) prov in
  Alcotest.(check int) "two witnesses" 2 (List.length ws)

let test_witness_content () =
  let q = parse "Q4(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)" in
  let prov = Cq.Eval.provenance (db ()) q in
  let ws = R.Tuple.Map.find (R.Tuple.strs [ "john"; "tods"; "xml" ]) prov in
  match ws with
  | [ w ] ->
    Alcotest.check stuple "first atom" (st "T1" [ "john"; "tods" ]) w.(0);
    Alcotest.(check string) "second atom rel" "T2" w.(1).R.Stuple.rel
  | _ -> Alcotest.fail "expected unique witness"

(* deleting a witness tuple removes exactly the witnessed answers *)
let prop_deletion_semantics =
  let gen = QCheck2.Gen.int_range 0 4 in
  qcheck ~count:50 "evaluate after deletion = answers whose every witness is hit" gen
    (fun seed ->
      let rng = rng (100 + seed) in
      let database = db () in
      let q = parse "Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
      let all = R.Instance.stuples database in
      let dd =
        List.filter (fun _ -> Random.State.bool rng) all |> R.Stuple.Set.of_list
      in
      let after = Cq.Eval.evaluate (R.Instance.delete database dd) q in
      let expected =
        Cq.Eval.provenance database q
        |> R.Tuple.Map.filter (fun _ ws ->
               List.exists
                 (fun w ->
                   R.Stuple.Set.is_empty (R.Stuple.Set.inter (Cq.Eval.witness_set w) dd))
                 ws)
        |> R.Tuple.Map.bindings |> List.map fst |> R.Tuple.Set.of_list
      in
      R.Tuple.Set.equal after expected)

let suite =
  [
    Alcotest.test_case "parser: basic query" `Quick test_parse_basic;
    Alcotest.test_case "parser: constants" `Quick test_parse_constants;
    Alcotest.test_case "parser: variables" `Quick test_parse_variables;
    Alcotest.test_case "parser: errors" `Quick test_parse_errors;
    Alcotest.test_case "parser: multiple queries" `Quick test_parse_multi;
    Alcotest.test_case "classify: project-free" `Quick test_classify_project_free;
    Alcotest.test_case "classify: self-join-free" `Quick test_classify_sj_free;
    Alcotest.test_case "classify: key-preserving (paper Q3/Q4)" `Quick test_classify_key_preserving;
    Alcotest.test_case "classify: project-free implies key-preserving" `Quick
      test_classify_project_free_implies_kp;
    Alcotest.test_case "classify: constant at key position" `Quick test_classify_constant_key;
    Alcotest.test_case "classify: check_key_preserving raises" `Quick
      test_check_key_preserving_raises;
    Alcotest.test_case "query: check (safety, arity, unknown rel)" `Quick test_query_check;
    Alcotest.test_case "query: variable sets" `Quick test_query_vars;
    Alcotest.test_case "eval: join" `Quick test_eval_join;
    Alcotest.test_case "eval: constant selection" `Quick test_eval_constants_filter;
    Alcotest.test_case "eval: self-join" `Quick test_eval_self_join;
    Alcotest.test_case "eval: repeated variable" `Quick test_eval_repeated_var;
    Alcotest.test_case "eval: constants in head" `Quick test_eval_head_constants;
    Alcotest.test_case "provenance: unique witness (key-preserving)" `Quick
      test_provenance_unique_witness;
    Alcotest.test_case "provenance: multiple witnesses (projection)" `Quick
      test_provenance_multiple_witnesses;
    Alcotest.test_case "provenance: witness content" `Quick test_witness_content;
    prop_deletion_semantics;
  ]
