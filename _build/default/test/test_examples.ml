(* End-to-end reproduction of the paper's worked examples (Figs. 1-3). *)

open Util
module R = Relational
module D = Deleprop

(* ---- Fig. 1, scenario 1: ΔV = (John, XML) on Q3 ---- *)

let test_q3_optimum_is_one () =
  let p = Workload.Author_journal.scenario_q3 () in
  match D.Brute.solve_ground_truth p with
  | None -> Alcotest.fail "expected a solution"
  | Some r ->
    check_float "minimum view side-effect is 1" 1.0 r.D.Brute.outcome.D.Side_effect.cost

let eval_q3 deletion =
  let p = Workload.Author_journal.scenario_q3 () in
  D.Side_effect.eval_ground_truth p (R.Stuple.Set.of_list deletion)

let test_q3_paper_solutions () =
  (* the paper names two optimal solutions, each with side-effect 1 *)
  let sol1 = eval_q3 [ st "T1" [ "John"; "TKDE" ]; st "T1" [ "John"; "TODS" ] ] in
  Alcotest.(check bool) "solution 1 feasible" true sol1.D.Side_effect.feasible;
  check_float "solution 1 side-effect" 1.0 sol1.D.Side_effect.cost;
  let sol2 =
    eval_q3
      [ st "T1" [ "John"; "TKDE" ];
        R.Stuple.make "T2" (R.Tuple.of_list [ R.Value.str "TODS"; R.Value.str "XML"; R.Value.int 30 ]) ]
  in
  Alcotest.(check bool) "solution 2 feasible" true sol2.D.Side_effect.feasible;
  check_float "solution 2 side-effect" 1.0 sol2.D.Side_effect.cost

let test_q3_bad_solutions () =
  (* deleting both T2 XML rows kills XML for everyone: side-effect 2 *)
  let o =
    eval_q3
      [ R.Stuple.make "T2" (R.Tuple.of_list [ R.Value.str "TKDE"; R.Value.str "XML"; R.Value.int 30 ]);
        R.Stuple.make "T2" (R.Tuple.of_list [ R.Value.str "TODS"; R.Value.str "XML"; R.Value.int 30 ]) ]
  in
  Alcotest.(check bool) "feasible" true o.D.Side_effect.feasible;
  check_float "side-effect 2" 2.0 o.D.Side_effect.cost

let test_q3_views () =
  (* the view of Fig. 1(c): six tuples *)
  let p = Workload.Author_journal.scenario_q3 () in
  Alcotest.(check int) "Q3 view size" 6 (R.Tuple.Set.cardinal (D.Problem.view p "Q3"))

(* ---- Fig. 1, scenario 2: ΔV = (John, TKDE, XML) on Q4 ---- *)

let test_q4_views () =
  let p = Workload.Author_journal.scenario_q4 () in
  Alcotest.(check int) "Q4 view size" 7 (R.Tuple.Set.cardinal (D.Problem.view p "Q4"))

let test_q4_witness_choices () =
  let p = Workload.Author_journal.scenario_q4 () in
  let prov = D.Provenance.build p in
  (* "deleting either (John, TKDE) from Author or (TKDE, XML, 30) from
     Journal works due to the key preserving property" *)
  let del_author = D.Side_effect.eval prov (R.Stuple.Set.singleton (st "T1" [ "John"; "TKDE" ])) in
  Alcotest.(check bool) "author deletion feasible" true del_author.D.Side_effect.feasible;
  check_float "author deletion side-effect" 1.0 del_author.D.Side_effect.cost;
  let del_journal =
    D.Side_effect.eval prov
      (R.Stuple.Set.singleton
         (R.Stuple.make "T2" (R.Tuple.of_list [ R.Value.str "TKDE"; R.Value.str "XML"; R.Value.int 30 ])))
  in
  Alcotest.(check bool) "journal deletion feasible" true del_journal.D.Side_effect.feasible;
  check_float "journal deletion side-effect" 2.0 del_journal.D.Side_effect.cost;
  (* the optimum picks the author deletion *)
  match D.Brute.solve prov with
  | Some r ->
    Alcotest.check stuple_set "optimal ΔD"
      (R.Stuple.Set.singleton (st "T1" [ "John"; "TKDE" ]))
      r.D.Brute.deletion
  | None -> Alcotest.fail "expected solution"

let test_q4_all_solvers_agree () =
  let p = Workload.Author_journal.scenario_q4 () in
  let prov = D.Provenance.build p in
  let pd = D.Primal_dual.solve prov in
  let ld = D.Lowdeg.solve prov in
  check_float "primal-dual optimal here" 1.0 pd.D.Primal_dual.outcome.D.Side_effect.cost;
  check_float "lowdeg optimal here" 1.0 ld.D.Lowdeg.outcome.D.Side_effect.cost;
  match D.Single_query.solve prov with
  | Ok r -> check_float "single-query solver" 1.0 r.D.Single_query.outcome.D.Side_effect.cost
  | Error e -> Alcotest.failf "single query refused: %a" D.Single_query.pp_error e

(* ---- multi-view scenario ---- *)

let test_multi_query_scenario () =
  let p = Workload.Author_journal.scenario_multi () in
  match D.Brute.solve_ground_truth p with
  | None -> Alcotest.fail "expected solution"
  | Some r ->
    Alcotest.(check bool) "feasible" true r.D.Brute.outcome.D.Side_effect.feasible;
    (* deleting (John,TKDE)+(John,TODS) removes both ΔV tuples; on Q3 it
       side-effects (John,CUBE), on Q4 (John,TKDE,CUBE)+(John,TODS,XML):
       total 3; the optimum is at most that *)
    Alcotest.(check bool) "cost bounded by the combined solution" true
      (r.D.Brute.outcome.D.Side_effect.cost <= 3.0 +. 1e-9)

(* ---- the balanced trade-off on Fig. 1 ---- *)

let test_balanced_q4 () =
  let p = Workload.Author_journal.scenario_q4 () in
  let prov = D.Provenance.build p in
  let bal = D.Balanced.solve_exact prov in
  (* killing (John,TKDE,XML) costs 1 side-effect; keeping it also costs 1:
     both are optimal at balanced cost 1 *)
  check_float "balanced optimum" 1.0 bal.D.Balanced.outcome.D.Side_effect.balanced_cost

let test_balanced_prefers_keeping () =
  (* weight the bad tuple low and its killers' side-effects high: balanced
     optimum keeps the bad tuple *)
  let bad = D.Vtuple.make "Q4" (R.Tuple.strs [ "John"; "TKDE"; "XML" ]) in
  let weights = D.Weights.set D.Weights.uniform bad 0.1 in
  let db = Workload.Author_journal.db () in
  let p =
    D.Problem.make ~db ~queries:[ Workload.Author_journal.q4 ]
      ~deletions:[ ("Q4", [ R.Tuple.strs [ "John"; "TKDE"; "XML" ] ]) ]
      ~weights ()
  in
  let prov = D.Provenance.build p in
  let bal = D.Balanced.solve_exact prov in
  Alcotest.(check bool) "keeps the bad tuple" false
    bal.D.Balanced.outcome.D.Side_effect.feasible;
  check_float "balanced cost = bad weight" 0.1
    bal.D.Balanced.outcome.D.Side_effect.balanced_cost

let suite =
  [
    Alcotest.test_case "fig1/Q3: optimum is 1" `Quick test_q3_optimum_is_one;
    Alcotest.test_case "fig1/Q3: the paper's two optimal solutions" `Quick
      test_q3_paper_solutions;
    Alcotest.test_case "fig1/Q3: suboptimal solution costs 2" `Quick test_q3_bad_solutions;
    Alcotest.test_case "fig1/Q3: view contents" `Quick test_q3_views;
    Alcotest.test_case "fig1/Q4: view contents" `Quick test_q4_views;
    Alcotest.test_case "fig1/Q4: witness choices and optimum" `Quick test_q4_witness_choices;
    Alcotest.test_case "fig1/Q4: all solvers find the optimum" `Quick test_q4_all_solvers_agree;
    Alcotest.test_case "fig1: multi-query scenario" `Quick test_multi_query_scenario;
    Alcotest.test_case "fig1: balanced objective" `Quick test_balanced_q4;
    Alcotest.test_case "fig1: balanced keeps cheap bad tuples" `Quick
      test_balanced_prefers_keeping;
  ]
