(* Edge-case and API-surface tests that belong to no single substrate:
   substitution, pretty printers, file round trips, boundary inputs. *)

open Util
module R = Relational
module D = Deleprop

let parse = Cq.Parser.query_of_string

let test_query_substitute () =
  let q = parse "Q(X, Y) :- R(X, Y), S(Y, Z)" in
  let q' =
    Cq.Query.substitute
      (fun v -> if v = "Y" then Some (Cq.Term.int 7) else None)
      q
  in
  Alcotest.(check bool) "Y gone from head" false
    (Cq.Term.Vars.mem "Y" (Cq.Query.head_vars q'));
  Alcotest.(check bool) "Z untouched" true
    (Cq.Term.Vars.mem "Z" (Cq.Query.existential_vars q'));
  (* substitution reaches every atom *)
  List.iter
    (fun (a : Cq.Atom.t) ->
      Alcotest.(check bool) "no Y left" false (Cq.Term.Vars.mem "Y" (Cq.Atom.var_set a)))
    q'.Cq.Query.body

let test_serial_fact_of_string () =
  let rel, t = R.Serial.fact_of_string "T2(TKDE, XML, 30)" in
  Alcotest.(check string) "relation" "T2" rel;
  Alcotest.check tuple "typed tuple"
    (R.Tuple.of_list [ R.Value.str "TKDE"; R.Value.str "XML"; R.Value.int 30 ])
    t;
  Alcotest.(check bool) "garbage rejected" true
    (try ignore (R.Serial.fact_of_string "nope"); false
     with R.Serial.Parse_error _ -> true)

let test_value_negative_ints () =
  let t = R.Tuple.ints [ -3; 0 ] in
  Alcotest.check value "negative survives parse" (R.Tuple.get t 0)
    (R.Value.of_string (R.Value.to_string (R.Tuple.get t 0)))

let test_instance_of_alist_duplicates () =
  let schema = R.Schema.Db.of_list [ R.Schema.make ~name:"T" ~attrs:[ "k" ] ~key:[ 0 ] ] in
  (* the same tuple twice is idempotent, not an error *)
  let db = R.Instance.of_alist schema [ ("T", [ R.Tuple.ints [ 1 ]; R.Tuple.ints [ 1 ] ]) ] in
  Alcotest.(check int) "idempotent" 1 (R.Instance.size db)

let test_problem_file_disk_roundtrip () =
  let p = Workload.Author_journal.scenario_q4 () in
  let path = Filename.temp_file "deleprop" ".problem" in
  D.Problem_file.to_file path p;
  let p2 = D.Problem_file.of_file path in
  Sys.remove path;
  Alcotest.(check bool) "db equal" true
    (R.Instance.equal p.D.Problem.db p2.D.Problem.db);
  Alcotest.(check int) "deletions equal" (D.Problem.deletion_size p)
    (D.Problem.deletion_size p2)

let test_multicut_forest_rejected () =
  (* two disconnected trees: the contract says tree, so Not_a_tree *)
  let e u v cost = { Hypergraph.Multicut.u; v; cost } in
  Alcotest.(check bool) "forest rejected" true
    (Hypergraph.Multicut.solve
       ~edges:[ e "a" "b" 1.0; e "c" "d" 1.0 ]
       ~pairs:[ ("a", "b") ]
    = Error Hypergraph.Multicut.Not_a_tree)

let test_explain_pp_smoke () =
  let prov = D.Provenance.build (Workload.Author_journal.scenario_q4 ()) in
  let e = D.Explain.explain prov (R.Stuple.Set.singleton (st "T1" [ "John"; "TKDE" ])) in
  let s = Format.asprintf "%a" D.Explain.pp e in
  Alcotest.(check bool) "mentions the kill" true
    (Astring.String.is_infix ~affix:"removed by" s);
  Alcotest.(check bool) "mentions the damage" true
    (Astring.String.is_infix ~affix:"lost collaterally" s)

let test_stats_pp_smoke () =
  let prov = D.Provenance.build (Workload.Author_journal.scenario_q4 ()) in
  let s = Format.asprintf "%a" D.Stats.pp (D.Stats.compute prov) in
  Alcotest.(check bool) "mentions the bound" true
    (Astring.String.is_infix ~affix:"Claim 1 bound" s)

let test_weights_introspection () =
  let vt = D.Vtuple.make "Q" (R.Tuple.ints [ 1 ]) in
  let w = D.Weights.set (D.Weights.with_default 3.0) vt 9.0 in
  check_float "default_of" 3.0 (D.Weights.default_of w);
  Alcotest.(check int) "one override" 1 (List.length (D.Weights.overrides w))

let test_empty_deletions_problem () =
  (* no ΔV: every solver returns the empty plan at zero cost *)
  let p =
    D.Problem.make ~db:(Workload.Author_journal.db ())
      ~queries:[ Workload.Author_journal.q4 ] ~deletions:[] ()
  in
  let prov = D.Provenance.build p in
  let pd = D.Primal_dual.solve prov in
  check_float "pd zero" 0.0 pd.D.Primal_dual.outcome.D.Side_effect.cost;
  Alcotest.(check int) "pd empty" 0 (R.Stuple.Set.cardinal pd.D.Primal_dual.deletion);
  let ld = D.Lowdeg.solve prov in
  Alcotest.(check int) "lowdeg empty" 0 (R.Stuple.Set.cardinal ld.D.Lowdeg.deletion);
  match D.Brute.solve prov with
  | Some b -> Alcotest.(check int) "brute empty" 0 (R.Stuple.Set.cardinal b.D.Brute.deletion)
  | None -> Alcotest.fail "brute on empty ΔV"

let test_rel_tree_root_choice () =
  let qs = [ parse "Q1(X, Y, Z) :- T1(X, Y), T2(Y, Z)" ] in
  match Hypergraph.Rel_tree.of_queries ~root:"T2" qs with
  | Some t ->
    Alcotest.(check int) "chosen root depth 0" 0 (Hypergraph.Rel_tree.depth t "T2");
    Alcotest.(check int) "other depth 1" 1 (Hypergraph.Rel_tree.depth t "T1")
  | None -> Alcotest.fail "expected forest"

let test_ucq_pp_smoke () =
  let u =
    Cq.Ucq.make ~name:"U" [ parse "U(X) :- R(X, Y)"; parse "U(X) :- S(X, Y)" ]
  in
  let s = Format.asprintf "%a" Cq.Ucq.pp u in
  Alcotest.(check bool) "mentions union" true (Astring.String.is_infix ~affix:"union" s)

let suite =
  [
    Alcotest.test_case "query: substitute" `Quick test_query_substitute;
    Alcotest.test_case "serial: fact_of_string" `Quick test_serial_fact_of_string;
    Alcotest.test_case "value: negative int roundtrip" `Quick test_value_negative_ints;
    Alcotest.test_case "instance: of_alist idempotence" `Quick test_instance_of_alist_duplicates;
    Alcotest.test_case "problem file: disk roundtrip" `Quick test_problem_file_disk_roundtrip;
    Alcotest.test_case "multicut: forests rejected per contract" `Quick
      test_multicut_forest_rejected;
    Alcotest.test_case "explain: pp smoke" `Quick test_explain_pp_smoke;
    Alcotest.test_case "stats: pp smoke" `Quick test_stats_pp_smoke;
    Alcotest.test_case "weights: introspection" `Quick test_weights_introspection;
    Alcotest.test_case "problem: empty ΔV" `Quick test_empty_deletions_problem;
    Alcotest.test_case "rel tree: explicit root" `Quick test_rel_tree_root_choice;
    Alcotest.test_case "ucq: pp smoke" `Quick test_ucq_pp_smoke;
  ]

(* ---- balanced tree primal-dual ---- *)

let prop_balanced_tree_sound =
  qcheck ~count:40 "balanced tree PD: >= exact, <= standard PD and empty plan"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let { Workload.Forest_family.problem = p; _ } =
        Workload.Forest_family.generate ~rng
          { Workload.Forest_family.default with num_relations = 3; tuples_per_relation = 5 }
      in
      let prov = D.Provenance.build p in
      let tree = D.Balanced.solve_tree prov in
      let exact = D.Balanced.solve_exact prov in
      let pd = D.Primal_dual.solve prov in
      let empty = D.Side_effect.eval prov R.Stuple.Set.empty in
      let bc (o : D.Side_effect.outcome) = o.D.Side_effect.balanced_cost in
      bc tree.D.Balanced.outcome +. 1e-9 >= bc exact.D.Balanced.outcome
      && bc tree.D.Balanced.outcome <= bc pd.D.Primal_dual.outcome +. 1e-9
      && bc tree.D.Balanced.outcome <= bc empty +. 1e-9)

let test_balanced_tree_keeps_overpriced () =
  (* the Fig. 1 shop scenario: repairing costs 3, keeping costs 1 — the
     tree variant must keep *)
  let db =
    R.Serial.instance_of_string
      {|
        rel Shop(shop*, rating)
        Shop(acme, 4)
        rel Listing(id*, shop)
        Listing(l1, acme)
        Listing(l2, acme)
        Listing(l3, acme)
      |}
  in
  let qr = parse "Qr(S, RS) :- Shop(S, RS)" in
  let ql = parse "Ql(L, S, RS) :- Listing(L, S), Shop(S, RS)" in
  let p =
    D.Problem.make ~db ~queries:[ qr; ql ]
      ~deletions:[ ("Qr", [ R.Tuple.of_list [ R.Value.str "acme"; R.Value.int 4 ] ]) ]
      ()
  in
  let prov = D.Provenance.build p in
  let r = D.Balanced.solve_tree prov in
  Alcotest.(check bool) "keeps the flagged tuple" false
    r.D.Balanced.outcome.D.Side_effect.feasible;
  check_float "balanced cost 1" 1.0 r.D.Balanced.outcome.D.Side_effect.balanced_cost

let suite =
  suite
  @ [
      prop_balanced_tree_sound;
      Alcotest.test_case "balanced tree PD keeps overpriced flags" `Quick
        test_balanced_tree_keeps_overpriced;
    ]
