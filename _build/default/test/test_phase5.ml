(* Tests for phase-5 substrates: secondary indexes, why/where provenance,
   causality/responsibility, UCQ views. *)

open Util
module R = Relational
module D = Deleprop

let parse = Cq.Parser.query_of_string

(* ---- secondary indexes ---- *)

let idx_schema = R.Schema.make ~name:"T" ~attrs:[ "k"; "v"; "w" ] ~key:[ 0 ]

let idx_rel () =
  R.Relation.of_tuples idx_schema
    [ R.Tuple.ints [ 1; 10; 7 ]; R.Tuple.ints [ 2; 10; 8 ]; R.Tuple.ints [ 3; 20; 7 ] ]

let test_find_by_column () =
  let r = idx_rel () in
  Alcotest.(check int) "two tuples with v=10" 2
    (List.length (R.Relation.find_by_column r 1 (R.Value.int 10)));
  Alcotest.(check int) "none with v=99" 0
    (List.length (R.Relation.find_by_column r 1 (R.Value.int 99)));
  Alcotest.(check bool) "out of range" true
    (try ignore (R.Relation.find_by_column r 9 (R.Value.int 1)); false
     with Invalid_argument _ -> true)

let test_index_maintained_under_remove () =
  let r = R.Relation.remove (idx_rel ()) (R.Tuple.ints [ 1; 10; 7 ]) in
  Alcotest.(check int) "one tuple with v=10 left" 1
    (List.length (R.Relation.find_by_column r 1 (R.Value.int 10)));
  Alcotest.(check int) "distinct v" 2 (R.Relation.distinct_in_column r 1);
  Alcotest.(check int) "distinct w" 2 (R.Relation.distinct_in_column r 2)

let prop_index_agrees_with_scan =
  qcheck ~count:100 "secondary index = scan" QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let r =
        List.fold_left
          (fun r k ->
            try
              R.Relation.add r
                (R.Tuple.ints [ k; Random.State.int rng 4; Random.State.int rng 4 ])
            with R.Relation.Key_violation _ -> r)
          (R.Relation.empty idx_schema)
          (List.init 12 Fun.id)
      in
      List.for_all
        (fun col ->
          List.for_all
            (fun v ->
              let via_index =
                R.Relation.find_by_column r col (R.Value.int v) |> R.Tuple.Set.of_list
              in
              let via_scan =
                R.Relation.to_set r
                |> R.Tuple.Set.filter (fun t ->
                       R.Value.equal (R.Tuple.get t col) (R.Value.int v))
              in
              R.Tuple.Set.equal via_index via_scan)
            (List.init 5 Fun.id))
        [ 0; 1; 2 ])

(* ---- lineage (why / where provenance) ---- *)

let aj_db () = Workload.Author_journal.db ()

let test_why_provenance () =
  let db = aj_db () in
  let q3 = Workload.Author_journal.q3 in
  let ws = Cq.Lineage.why db q3 (R.Tuple.strs [ "John"; "XML" ]) in
  Alcotest.(check int) "two derivations (TKDE, TODS)" 2 (List.length ws);
  let q4 = Workload.Author_journal.q4 in
  let ws4 = Cq.Lineage.why db q4 (R.Tuple.strs [ "John"; "TKDE"; "XML" ]) in
  Alcotest.(check int) "unique witness" 1 (List.length ws4);
  Alcotest.(check int) "non-answer: empty" 0
    (List.length (Cq.Lineage.why db q4 (R.Tuple.strs [ "Nobody"; "X"; "Y" ])))

let test_minimal_why_self_join () =
  (* with a self-join, one derivation can strictly contain another *)
  let schema = R.Schema.Db.of_list [ R.Schema.make ~name:"E" ~attrs:[ "a"; "b" ] ~key:[ 0; 1 ] ] in
  let db =
    R.Instance.of_alist schema
      [ ("E", [ R.Tuple.ints [ 1; 1 ]; R.Tuple.ints [ 1; 2 ] ]) ]
  in
  let q = parse "Q(X) :- E(X, Y), E(Y, X)" in
  ignore (Cq.Eval.evaluate db q);
  (* answer 1 via (1,1)+(1,1): witness {E(1,1)} — minimal *)
  let minimal = Cq.Lineage.minimal_why db q (R.Tuple.ints [ 1 ]) in
  Alcotest.(check int) "one minimal witness" 1 (List.length minimal);
  Alcotest.(check int) "of size one" 1 (R.Stuple.Set.cardinal (List.hd minimal))

let test_where_provenance () =
  let db = aj_db () in
  let q4 = Workload.Author_journal.q4 in
  let cells = Cq.Lineage.where_ db q4 (R.Tuple.strs [ "John"; "TKDE"; "XML" ]) in
  (* position 0 (X) copies from T1's first column *)
  (match cells.(0) with
  | [ c ] ->
    Alcotest.(check string) "X from T1" "T1" c.Cq.Lineage.rel;
    Alcotest.(check int) "column 0" 0 c.Cq.Lineage.column
  | l -> Alcotest.failf "expected one cell for X, got %d" (List.length l));
  (* position 1 (Y) occurs in BOTH T1 and T2 *)
  Alcotest.(check int) "Y from two cells" 2 (List.length cells.(1));
  (* a constant head position has no where-provenance *)
  let qc =
    Cq.Query.make ~name:"Qc"
      ~head:[ Cq.Term.var "X"; Cq.Term.str "lit" ]
      ~body:[ Cq.Atom.make "T1" [ Cq.Term.var "X"; Cq.Term.var "Y" ] ]
  in
  let answer = R.Tuple.of_list [ R.Value.str "Tom"; R.Value.str "lit" ] in
  let cc = Cq.Lineage.where_ db qc answer in
  Alcotest.(check int) "constant: no cells" 0 (List.length cc.(1))

(* ---- causality / responsibility ---- *)

let test_counterfactual () =
  let db = aj_db () in
  let q4 = Workload.Author_journal.q4 in
  let answer = R.Tuple.strs [ "John"; "TODS"; "XML" ] in
  (* unique witness: both tuples are counterfactual *)
  Alcotest.(check bool) "author row counterfactual" true
    (Cq.Causality.is_counterfactual db q4 ~answer (st "T1" [ "John"; "TODS" ]));
  check_float "responsibility 1" 1.0
    (Cq.Causality.responsibility db q4 ~answer (st "T1" [ "John"; "TODS" ]))

let test_actual_cause_with_contingency () =
  let db = aj_db () in
  let q3 = Workload.Author_journal.q3 in
  let answer = R.Tuple.strs [ "John"; "XML" ] in
  (* two derivations: T1(John,TKDE) alone is not counterfactual, but with
     contingency {T1(John,TODS)} (or the TODS journal row) it is *)
  let t = st "T1" [ "John"; "TKDE" ] in
  Alcotest.(check bool) "not counterfactual" false
    (Cq.Causality.is_counterfactual db q3 ~answer t);
  Alcotest.(check bool) "actual cause" true (Cq.Causality.is_cause db q3 ~answer t);
  check_float "responsibility 1/2" 0.5 (Cq.Causality.responsibility db q3 ~answer t)

let test_non_cause () =
  let db = aj_db () in
  let q4 = Workload.Author_journal.q4 in
  let answer = R.Tuple.strs [ "John"; "TODS"; "XML" ] in
  check_float "unrelated tuple: responsibility 0" 0.0
    (Cq.Causality.responsibility db q4 ~answer (st "T1" [ "Joe"; "TKDE" ]))

let test_ranking () =
  let db = aj_db () in
  let q3 = Workload.Author_journal.q3 in
  let ranking = Cq.Causality.ranking db q3 ~answer:(R.Tuple.strs [ "John"; "XML" ]) in
  Alcotest.(check int) "four lineage tuples" 4 (List.length ranking);
  List.iter
    (fun (_, r) -> check_float "all responsibility 1/2" 0.5 r)
    ranking

(* every counterfactual cause has responsibility 1; responsibilities lie
   in [0, 1] *)
let prop_responsibility_bounds =
  qcheck ~count:30 "responsibility in [0,1]; counterfactual => 1"
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let rng = rng seed in
      let p =
        Workload.Pivot_family.generate ~rng
          { Workload.Pivot_family.default with depth = 2; tuples_per_relation = 4;
            num_queries = 1 }
      in
      match p.D.Problem.queries with
      | [ q ] ->
        let db = p.D.Problem.db in
        let answers = Cq.Eval.evaluate db q in
        R.Tuple.Set.for_all
          (fun answer ->
            Cq.Causality.ranking db q ~answer
            |> List.for_all (fun (t, r) ->
                   r >= 0.0 && r <= 1.0
                   && ((not (Cq.Causality.is_counterfactual db q ~answer t)) || feq r 1.0)))
          answers
      | _ -> false)

(* ---- UCQ ---- *)

let ucq_schema =
  R.Schema.Db.of_list
    [
      R.Schema.make ~name:"A" ~attrs:[ "k"; "v" ] ~key:[ 0 ];
      R.Schema.make ~name:"B" ~attrs:[ "k"; "v" ] ~key:[ 0 ];
    ]

let ucq_db () =
  R.Instance.of_alist ucq_schema
    [
      ("A", [ R.Tuple.ints [ 1; 5 ]; R.Tuple.ints [ 2; 6 ] ]);
      ("B", [ R.Tuple.ints [ 1; 5 ]; R.Tuple.ints [ 3; 7 ] ]);
    ]

let ucq () =
  Cq.Ucq.make ~name:"U"
    [ parse "U(K, V) :- A(K, V)"; parse "U(K, V) :- B(K, V)" ]

let test_ucq_eval () =
  let u = ucq () in
  Cq.Ucq.check ucq_schema u;
  Alcotest.(check int) "union size" 3 (R.Tuple.Set.cardinal (Cq.Ucq.evaluate (ucq_db ()) u));
  Alcotest.(check int) "arity" 2 (Cq.Ucq.arity u);
  Alcotest.(check bool) "mismatched arity rejected" true
    (try ignore (Cq.Ucq.make ~name:"Z" [ parse "Z(K) :- A(K, V)"; parse "Z(K, V) :- B(K, V)" ]); false
     with Invalid_argument _ -> true)

let test_ucq_why () =
  let u = ucq () in
  (* (1, 5) is derived by BOTH disjuncts *)
  Alcotest.(check int) "two derivations" 2
    (List.length (Cq.Ucq.why (ucq_db ()) u (R.Tuple.ints [ 1; 5 ])));
  Alcotest.(check int) "one derivation" 1
    (List.length (Cq.Ucq.why (ucq_db ()) u (R.Tuple.ints [ 2; 6 ])))

let test_ucq_propagate_multi_derivation () =
  let u = ucq () in
  (* killing (1,5) needs BOTH A(1,5) and B(1,5) deleted; no side effect *)
  match Cq.Ucq.propagate (ucq_db ()) [ u ] ~deletions:[ ("U", [ R.Tuple.ints [ 1; 5 ] ]) ] with
  | None -> Alcotest.fail "expected a solution"
  | Some o ->
    Alcotest.(check int) "two source deletions" 2 (R.Stuple.Set.cardinal o.Cq.Ucq.deletion);
    Alcotest.(check int) "no side effect" 0 o.Cq.Ucq.side_effect

let test_ucq_propagate_single_derivation () =
  let u = ucq () in
  match Cq.Ucq.propagate (ucq_db ()) [ u ] ~deletions:[ ("U", [ R.Tuple.ints [ 3; 7 ] ]) ] with
  | None -> Alcotest.fail "expected a solution"
  | Some o ->
    Alcotest.(check int) "one deletion" 1 (R.Stuple.Set.cardinal o.Cq.Ucq.deletion);
    Alcotest.(check int) "no side effect" 0 o.Cq.Ucq.side_effect

let test_ucq_propagate_not_an_answer () =
  let u = ucq () in
  Alcotest.(check bool) "non-answer rejected" true
    (Cq.Ucq.propagate (ucq_db ()) [ u ] ~deletions:[ ("U", [ R.Tuple.ints [ 9; 9 ] ]) ] = None)

let suite =
  [
    Alcotest.test_case "index: find_by_column" `Quick test_find_by_column;
    Alcotest.test_case "index: maintained under remove" `Quick test_index_maintained_under_remove;
    prop_index_agrees_with_scan;
    Alcotest.test_case "lineage: why-provenance (Fig. 1)" `Quick test_why_provenance;
    Alcotest.test_case "lineage: minimal why with self-joins" `Quick test_minimal_why_self_join;
    Alcotest.test_case "lineage: where-provenance" `Quick test_where_provenance;
    Alcotest.test_case "causality: counterfactual" `Quick test_counterfactual;
    Alcotest.test_case "causality: actual cause via contingency" `Quick
      test_actual_cause_with_contingency;
    Alcotest.test_case "causality: non-cause" `Quick test_non_cause;
    Alcotest.test_case "causality: ranking" `Quick test_ranking;
    prop_responsibility_bounds;
    Alcotest.test_case "ucq: evaluation" `Quick test_ucq_eval;
    Alcotest.test_case "ucq: why across disjuncts" `Quick test_ucq_why;
    Alcotest.test_case "ucq: propagate multi-derivation answer" `Quick
      test_ucq_propagate_multi_derivation;
    Alcotest.test_case "ucq: propagate single-derivation answer" `Quick
      test_ucq_propagate_single_derivation;
    Alcotest.test_case "ucq: non-answer rejected" `Quick test_ucq_propagate_not_an_answer;
  ]

(* ---- non-recursive datalog programs (views over views) ---- *)

let prog_schema =
  R.Schema.Db.of_list
    [
      R.Schema.make ~name:"T1" ~attrs:[ "a"; "b" ] ~key:[ 0; 1 ];
      R.Schema.make ~name:"T2" ~attrs:[ "b"; "c"; "d" ] ~key:[ 0; 1 ];
    ]

let prog_db () =
  R.Instance.of_alist prog_schema
    [
      ("T1", [ R.Tuple.strs [ "john"; "tkde" ]; R.Tuple.strs [ "joe"; "tkde" ];
               R.Tuple.strs [ "john"; "tods" ] ]);
      ("T2", [ R.Tuple.strs [ "tkde"; "xml"; "n" ]; R.Tuple.strs [ "tkde"; "cube"; "n" ];
               R.Tuple.strs [ "tods"; "xml"; "n" ] ]);
    ]

let test_program_unfold_composition () =
  let rules =
    [
      parse "V1(X, Z) :- T1(X, Y), T2(Y, Z, W)";
      parse "V2(X) :- V1(X, xml)";
    ]
  in
  match Cq.Program.make ~schema:prog_schema rules with
  | Error e -> Alcotest.failf "make: %a" Cq.Program.pp_error e
  | Ok prog -> (
    Alcotest.(check (list string)) "predicates" [ "V1"; "V2" ] (Cq.Program.predicates prog);
    Alcotest.(check (list string)) "V2 depends on V1" [ "V1" ]
      (Cq.Program.depends_on prog "V2");
    match Cq.Program.unfold prog ~schema:prog_schema "V2" with
    | Error e -> Alcotest.failf "unfold: %a" Cq.Program.pp_error e
    | Ok u ->
      (* the unfolding is a single CQ over T1, T2 *)
      Alcotest.(check int) "one disjunct" 1 (List.length u.Cq.Ucq.disjuncts);
      let direct = parse "V2(X) :- T1(X, Y), T2(Y, xml, W)" in
      Alcotest.(check bool) "equivalent to the manual unfolding" true
        (Cq.Containment.equivalent (List.hd u.Cq.Ucq.disjuncts) direct);
      Alcotest.check tuple_set "evaluates like the manual unfolding"
        (Cq.Eval.evaluate (prog_db ()) direct)
        (Cq.Ucq.evaluate (prog_db ()) u))

let test_program_union_rules () =
  (* two rules for the same predicate become a union *)
  let rules =
    [ parse "V(X) :- T1(X, tkde)"; parse "V(X) :- T1(X, tods)" ]
  in
  match Cq.Program.make ~schema:prog_schema rules with
  | Error e -> Alcotest.failf "make: %a" Cq.Program.pp_error e
  | Ok prog -> (
    match Cq.Program.evaluate prog (prog_db ()) "V" with
    | Error e -> Alcotest.failf "eval: %a" Cq.Program.pp_error e
    | Ok view ->
      Alcotest.check tuple_set "union of both rules"
        (R.Tuple.Set.of_list [ R.Tuple.strs [ "john" ]; R.Tuple.strs [ "joe" ] ])
        view)

let test_program_deep_stack () =
  (* three levels with a union in the middle *)
  let rules =
    [
      parse "V1(X, Y) :- T1(X, Y)";
      parse "V2(X) :- V1(X, tkde)";
      parse "V2(X) :- V1(X, tods)";
      parse "V3(X, XX) :- V2(X), V2(XX)";
    ]
  in
  match Cq.Program.make ~schema:prog_schema rules with
  | Error e -> Alcotest.failf "make: %a" Cq.Program.pp_error e
  | Ok prog -> (
    match Cq.Program.unfold prog ~schema:prog_schema "V3" with
    | Error e -> Alcotest.failf "unfold: %a" Cq.Program.pp_error e
    | Ok u ->
      (* 2 x 2 rule choices = up to 4 disjuncts (all distinct here) *)
      Alcotest.(check int) "four disjuncts" 4 (List.length u.Cq.Ucq.disjuncts);
      (match Cq.Program.evaluate prog (prog_db ()) "V3" with
      | Ok view ->
        (* authors {john, joe} x {john, joe} = 4 pairs (john in both venues) *)
        Alcotest.(check int) "pairs" 4 (R.Tuple.Set.cardinal view)
      | Error e -> Alcotest.failf "eval: %a" Cq.Program.pp_error e))

let test_program_rejects_recursion () =
  let rules =
    [ parse "P(X) :- Q(X)"; parse "Q(X) :- P(X)" ]
  in
  match Cq.Program.make ~schema:prog_schema rules with
  | Error (Cq.Program.Recursive _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Cq.Program.pp_error e
  | Ok _ -> Alcotest.fail "expected recursion error"

let test_program_rejects_unknown_edb () =
  match Cq.Program.make ~schema:prog_schema [ parse "P(X) :- Zed(X, Y)" ] with
  | Error (Cq.Program.Unknown_predicate _) -> ()
  | _ -> Alcotest.fail "expected unknown predicate"

let test_program_propagation_through_views () =
  (* deletion propagation on a stacked view, via unfolding to UCQ *)
  let rules =
    [
      parse "V1(X, Z) :- T1(X, Y), T2(Y, Z, W)";
      parse "V2(X) :- V1(X, xml)";
    ]
  in
  let prog = Result.get_ok (Cq.Program.make ~schema:prog_schema rules) in
  let u = Result.get_ok (Cq.Program.unfold prog ~schema:prog_schema "V2") in
  let db = prog_db () in
  match
    Cq.Ucq.propagate db [ u ] ~deletions:[ ("V2", [ R.Tuple.strs [ "john" ] ]) ]
  with
  | None -> Alcotest.fail "expected a propagation plan"
  | Some o ->
    (* john must vanish from the stacked view; joe must survive where
       possible — deleting john's two author rows costs nothing else *)
    Alcotest.(check bool) "john removed" true
      (List.mem ("V2", R.Tuple.strs [ "john" ]) o.Cq.Ucq.killed);
    Alcotest.(check int) "no collateral" 0 o.Cq.Ucq.side_effect

let suite =
  suite
  @ [
      Alcotest.test_case "program: unfold composition" `Quick test_program_unfold_composition;
      Alcotest.test_case "program: union rules" `Quick test_program_union_rules;
      Alcotest.test_case "program: deep stack" `Quick test_program_deep_stack;
      Alcotest.test_case "program: recursion rejected" `Quick test_program_rejects_recursion;
      Alcotest.test_case "program: unknown EDB rejected" `Quick test_program_rejects_unknown_edb;
      Alcotest.test_case "program: propagation through stacked views" `Quick
        test_program_propagation_through_views;
    ]
