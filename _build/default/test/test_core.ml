(* Tests for the core problem/provenance/side-effect layer. *)

open Util
module R = Relational
module D = Deleprop

let parse = Cq.Parser.query_of_string

let schema =
  R.Schema.Db.of_list
    [
      R.Schema.make ~name:"T1" ~attrs:[ "a"; "b" ] ~key:[ 0; 1 ];
      R.Schema.make ~name:"T2" ~attrs:[ "b"; "c"; "d" ] ~key:[ 0; 1 ];
    ]

let db () =
  R.Instance.of_alist schema
    [
      ("T1", [ R.Tuple.strs [ "john"; "tkde" ]; R.Tuple.strs [ "joe"; "tkde" ];
               R.Tuple.strs [ "tom"; "tkde" ]; R.Tuple.strs [ "john"; "tods" ] ]);
      ("T2", [ R.Tuple.strs [ "tkde"; "xml"; "n" ]; R.Tuple.strs [ "tkde"; "cube"; "n" ];
               R.Tuple.strs [ "tods"; "xml"; "n" ] ]);
    ]

let q4 = parse "Q4(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)"
let q3 = parse "Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)"

(* ---- Problem.make validation ---- *)

let test_problem_rejects_non_kp () =
  Alcotest.(check bool) "q3 rejected" true
    (try ignore (D.Problem.make ~db:(db ()) ~queries:[ q3 ] ~deletions:[] ()); false
     with Invalid_argument _ -> true);
  (* explicit opt-out accepted *)
  ignore (D.Problem.make ~db:(db ()) ~queries:[ q3 ] ~deletions:[] ~allow_non_key_preserving:true ())

let test_problem_rejects_bad_deletion () =
  Alcotest.(check bool) "deletion outside view" true
    (try
       ignore
         (D.Problem.make ~db:(db ()) ~queries:[ q4 ]
            ~deletions:[ ("Q4", [ R.Tuple.strs [ "nobody"; "x"; "y" ] ]) ]
            ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "deletion on unknown query" true
    (try
       ignore (D.Problem.make ~db:(db ()) ~queries:[ q4 ] ~deletions:[ ("Zed", []) ] ());
       false
     with Invalid_argument _ -> true)

let test_problem_rejects_duplicates () =
  Alcotest.(check bool) "duplicate names" true
    (try ignore (D.Problem.make ~db:(db ()) ~queries:[ q4; q4 ] ~deletions:[] ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty query set" true
    (try ignore (D.Problem.make ~db:(db ()) ~queries:[] ~deletions:[] ()); false
     with Invalid_argument _ -> true)

let test_problem_sizes () =
  let p =
    D.Problem.make ~db:(db ()) ~queries:[ q4 ]
      ~deletions:[ ("Q4", [ R.Tuple.strs [ "john"; "tkde"; "xml" ] ]) ]
      ()
  in
  Alcotest.(check int) "max arity" 3 (D.Problem.max_arity p);
  Alcotest.(check int) "view size" 7 (D.Problem.view_size p);
  Alcotest.(check int) "deletion size" 1 (D.Problem.deletion_size p)

(* ---- Provenance ---- *)

let problem () =
  D.Problem.make ~db:(db ()) ~queries:[ q4 ]
    ~deletions:[ ("Q4", [ R.Tuple.strs [ "john"; "tkde"; "xml" ] ]) ]
    ()

let test_provenance_witness () =
  let prov = D.Provenance.build (problem ()) in
  let vt = D.Vtuple.make "Q4" (R.Tuple.strs [ "john"; "tkde"; "xml" ]) in
  Alcotest.check stuple_set "witness"
    (R.Stuple.Set.of_list [ st "T1" [ "john"; "tkde" ]; st "T2" [ "tkde"; "xml"; "n" ] ])
    (D.Provenance.witness_of prov vt)

let test_provenance_containing () =
  let prov = D.Provenance.build (problem ()) in
  let vts = D.Provenance.vtuples_containing prov (st "T2" [ "tkde"; "xml"; "n" ]) in
  Alcotest.(check int) "three view tuples through (tkde,xml)" 3 (D.Vtuple.Set.cardinal vts);
  (* a tuple of D in no witness still has an (empty) entry *)
  Alcotest.(check int) "tuple in no view" 0
    (D.Vtuple.Set.cardinal (D.Provenance.vtuples_containing prov (st "T2" [ "nowhere"; "x"; "y" ])))

let test_provenance_bad_preserved_partition () =
  let prov = D.Provenance.build (problem ()) in
  Alcotest.(check int) "bad" 1 (D.Vtuple.Set.cardinal prov.D.Provenance.bad);
  Alcotest.(check int) "preserved" 6 (D.Vtuple.Set.cardinal prov.D.Provenance.preserved);
  Alcotest.(check bool) "disjoint" true
    (D.Vtuple.Set.is_empty (D.Vtuple.Set.inter prov.D.Provenance.bad prov.D.Provenance.preserved))

let test_provenance_ambiguous () =
  let p =
    D.Problem.make ~db:(db ()) ~queries:[ q3 ] ~deletions:[] ~allow_non_key_preserving:true ()
  in
  Alcotest.(check bool) "ambiguous witness raises" true
    (try ignore (D.Provenance.build p); false with D.Provenance.Ambiguous_witness _ -> true)

let test_provenance_candidates () =
  let prov = D.Provenance.build (problem ()) in
  Alcotest.check stuple_set "candidates = bad witness"
    (R.Stuple.Set.of_list [ st "T1" [ "john"; "tkde" ]; st "T2" [ "tkde"; "xml"; "n" ] ])
    (D.Provenance.candidates prov)

(* ---- Side_effect: fast vs ground truth ---- *)

let test_side_effect_known () =
  let prov = D.Provenance.build (problem ()) in
  (* deleting T1(john, tkde) also kills (john, tkde, cube): side effect 1 *)
  let o = D.Side_effect.eval prov (R.Stuple.Set.singleton (st "T1" [ "john"; "tkde" ])) in
  Alcotest.(check bool) "feasible" true o.D.Side_effect.feasible;
  check_float "cost" 1.0 o.D.Side_effect.cost;
  (* deleting T2(tkde, xml) kills joe/tom... here joe and john: side effect 2 *)
  let o2 = D.Side_effect.eval prov (R.Stuple.Set.singleton (st "T2" [ "tkde"; "xml"; "n" ])) in
  check_float "cost 2" 2.0 o2.D.Side_effect.cost

let test_side_effect_infeasible () =
  let prov = D.Provenance.build (problem ()) in
  let o = D.Side_effect.eval prov R.Stuple.Set.empty in
  Alcotest.(check bool) "not feasible" false o.D.Side_effect.feasible;
  check_float "balanced = residual bad" 1.0 o.D.Side_effect.balanced_cost

let prop_fast_equals_ground_truth =
  qcheck ~count:100 "index-based evaluation = re-evaluation"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let { Workload.Forest_family.problem = p; _ } =
        Workload.Forest_family.generate ~rng
          { Workload.Forest_family.default with num_relations = 3; tuples_per_relation = 5 }
      in
      let prov = D.Provenance.build p in
      let all = R.Instance.stuples p.D.Problem.db in
      let dd = List.filter (fun _ -> Random.State.bool rng) all |> R.Stuple.Set.of_list in
      let fast = D.Side_effect.eval prov dd in
      let truth = D.Side_effect.eval_ground_truth p dd in
      D.Vtuple.Set.equal fast.D.Side_effect.killed truth.D.Side_effect.killed
      && feq fast.D.Side_effect.cost truth.D.Side_effect.cost
      && fast.D.Side_effect.feasible = truth.D.Side_effect.feasible
      && feq fast.D.Side_effect.balanced_cost truth.D.Side_effect.balanced_cost)

(* ---- Weights ---- *)

let test_weights () =
  let vt = D.Vtuple.make "Q" (R.Tuple.ints [ 1 ]) in
  let w = D.Weights.set (D.Weights.with_default 2.0) vt 5.0 in
  check_float "override" 5.0 (D.Weights.get w vt);
  check_float "default" 2.0 (D.Weights.get w (D.Vtuple.make "Q" (R.Tuple.ints [ 2 ])));
  check_float "total" 7.0
    (D.Weights.total w (D.Vtuple.Set.of_list [ vt; D.Vtuple.make "Q" (R.Tuple.ints [ 2 ]) ]))

let test_weighted_side_effect () =
  let base = problem () in
  let heavy = D.Vtuple.make "Q4" (R.Tuple.strs [ "john"; "tkde"; "cube" ]) in
  let p =
    D.Problem.make ~db:(db ()) ~queries:[ q4 ]
      ~deletions:[ ("Q4", [ R.Tuple.strs [ "john"; "tkde"; "xml" ] ]) ]
      ~weights:(D.Weights.set D.Weights.uniform heavy 10.0) ()
  in
  ignore base;
  let prov = D.Provenance.build p in
  let o = D.Side_effect.eval prov (R.Stuple.Set.singleton (st "T1" [ "john"; "tkde" ])) in
  check_float "weighted cost" 10.0 o.D.Side_effect.cost;
  (* the optimum now avoids the heavy tuple: deletes T2(tkde,xml) at cost 2 *)
  match D.Brute.solve prov with
  | Some r -> check_float "weighted optimum" 2.0 r.D.Brute.outcome.D.Side_effect.cost
  | None -> Alcotest.fail "expected solution"

(* ---- LP formulation ---- *)

let test_lp_lower_bound () =
  let prov = D.Provenance.build (problem ()) in
  match D.Lp_formulation.lower_bound prov, D.Brute.solve prov with
  | Some lb, Some opt ->
    Alcotest.(check bool) "lb <= opt" true
      (lb <= opt.D.Brute.outcome.D.Side_effect.cost +. 1e-6);
    Alcotest.(check bool) "lb > 0 here" true (lb > 0.0)
  | _ -> Alcotest.fail "expected both"

let test_lp_integral_point_feasible () =
  let prov = D.Provenance.build (problem ()) in
  let f = D.Lp_formulation.build prov in
  match D.Brute.solve prov with
  | None -> Alcotest.fail "expected solution"
  | Some r ->
    let x = D.Lp_formulation.point_of_deletion f prov r.D.Brute.deletion in
    Alcotest.(check (list string)) "integral optimum is LP-feasible" []
      (Lp.Problem.violations f.D.Lp_formulation.lp x);
    check_float "objective matches cost" r.D.Brute.outcome.D.Side_effect.cost
      (Lp.Problem.value f.D.Lp_formulation.lp x)

let prop_lp_lower_bound =
  qcheck ~count:40 "LP relaxation lower-bounds the optimum"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let { Workload.Forest_family.problem = p; _ } =
        Workload.Forest_family.generate ~rng
          { Workload.Forest_family.default with num_relations = 3; tuples_per_relation = 4;
            num_queries = 3 }
      in
      let prov = D.Provenance.build p in
      match D.Lp_formulation.lower_bound prov, D.Brute.solve prov with
      | Some lb, Some opt -> lb <= opt.D.Brute.outcome.D.Side_effect.cost +. 1e-6
      | None, _ -> false
      | _, None -> true)

let suite =
  [
    Alcotest.test_case "problem: rejects non-key-preserving" `Quick test_problem_rejects_non_kp;
    Alcotest.test_case "problem: rejects bad deletions" `Quick test_problem_rejects_bad_deletion;
    Alcotest.test_case "problem: rejects duplicates / empty" `Quick test_problem_rejects_duplicates;
    Alcotest.test_case "problem: sizes (l, ||V||, ||ΔV||)" `Quick test_problem_sizes;
    Alcotest.test_case "provenance: unique witness content" `Quick test_provenance_witness;
    Alcotest.test_case "provenance: containing index total" `Quick test_provenance_containing;
    Alcotest.test_case "provenance: bad/preserved partition" `Quick
      test_provenance_bad_preserved_partition;
    Alcotest.test_case "provenance: ambiguous witness detected" `Quick test_provenance_ambiguous;
    Alcotest.test_case "provenance: candidates" `Quick test_provenance_candidates;
    Alcotest.test_case "side-effect: known costs (Fig. 1)" `Quick test_side_effect_known;
    Alcotest.test_case "side-effect: infeasible / balanced" `Quick test_side_effect_infeasible;
    prop_fast_equals_ground_truth;
    Alcotest.test_case "weights: get/total" `Quick test_weights;
    Alcotest.test_case "weights: change the optimum" `Quick test_weighted_side_effect;
    Alcotest.test_case "lp: lower bound on Fig. 1" `Quick test_lp_lower_bound;
    Alcotest.test_case "lp: integral point feasible" `Quick test_lp_integral_point_feasible;
    prop_lp_lower_bound;
  ]
