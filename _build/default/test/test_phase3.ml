(* Tests for the phase-3 substrates: containment/minimization, incremental
   maintenance, join planning, bounded deletion, problem files, LP
   rounding, statistics. *)

open Util
module R = Relational
module D = Deleprop
module SC = Setcover

let parse = Cq.Parser.query_of_string

(* ---- containment / equivalence / minimization ---- *)

let test_containment_basic () =
  (* Q1 = R(X,Y),R(Y,Z) (paths of length 2); Q2 = R(X,Y) heads differ in
     arity: not comparable. Use same-arity examples. *)
  let q_path = parse "Q(X, Z) :- R(X, Y), R(Y, Z)" in
  let q_edge_pair = parse "Q(X, Z) :- R(X, Y1), R(Y2, Z)" in
  (* every 2-path is also a pair of edges: q_path ⊆ q_edge_pair *)
  Alcotest.(check bool) "path ⊆ pair" true (Cq.Containment.contained q_path q_edge_pair);
  Alcotest.(check bool) "pair ⊄ path" false (Cq.Containment.contained q_edge_pair q_path);
  Alcotest.(check bool) "not equivalent" false (Cq.Containment.equivalent q_path q_edge_pair)

let test_containment_constants () =
  let q_any = parse "Q(X) :- R(X, Y)" in
  let q_pin = parse "Q(X) :- R(X, tag)" in
  Alcotest.(check bool) "pinned ⊆ any" true (Cq.Containment.contained q_pin q_any);
  Alcotest.(check bool) "any ⊄ pinned" false (Cq.Containment.contained q_any q_pin)

let test_containment_self () =
  let q = parse "Q(X, Z) :- R(X, Y), S(Y, Z)" in
  Alcotest.(check bool) "q ≡ q" true (Cq.Containment.equivalent q q)

let test_minimize_redundant_atom () =
  (* R(X,Y), R(X,Y2): the second atom is subsumed (map Y2 -> Y) *)
  let q = parse "Q(X) :- R(X, Y), R(X, Y2)" in
  let m = Cq.Containment.minimize q in
  Alcotest.(check int) "one atom survives" 1 (List.length m.Cq.Query.body);
  Alcotest.(check bool) "equivalent to original" true (Cq.Containment.equivalent q m)

let test_minimize_keeps_core () =
  (* no atom droppable: both atoms constrain the head *)
  let q = parse "Q(X, Z) :- R(X, Y), S(Y, Z)" in
  let m = Cq.Containment.minimize q in
  Alcotest.(check int) "core unchanged" 2 (List.length m.Cq.Query.body)

let test_dedupe () =
  let q1 = parse "Q1(X) :- R(X, Y)" in
  let q2 = parse "Q2(X) :- R(X, Z)" in
  (* renamed variable: equivalent *)
  let q3 = parse "Q3(X) :- S(X, Y)" in
  Alcotest.(check (list string)) "dedupe keeps first of each class" [ "Q1"; "Q3" ]
    (List.map (fun (q : Cq.Query.t) -> q.name) (Cq.Containment.dedupe [ q1; q2; q3 ]))

(* semantic check of containment on random data: if contained q1 q2 then
   answers(q1) ⊆ answers(q2) on every instance *)
let prop_containment_semantic =
  qcheck ~count:60 "containment is sound on random instances"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let schema =
        R.Schema.Db.of_list [ R.Schema.make ~name:"R" ~attrs:[ "x"; "y" ] ~key:[ 0; 1 ] ]
      in
      let db = ref (R.Instance.empty schema) in
      for _ = 1 to 10 do
        let t = R.Tuple.ints [ Random.State.int rng 4; Random.State.int rng 4 ] in
        try db := R.Instance.add !db "R" t with R.Relation.Key_violation _ -> ()
      done;
      let q_path = parse "Q(X, Z) :- R(X, Y), R(Y, Z)" in
      let q_pair = parse "Q(X, Z) :- R(X, Y1), R(Y2, Z)" in
      R.Tuple.Set.subset (Cq.Eval.evaluate !db q_path) (Cq.Eval.evaluate !db q_pair))

(* ---- incremental maintenance ---- *)

let random_star_db seed =
  let rng = rng seed in
  let p =
    Workload.Random_family.generate ~rng
      { Workload.Random_family.default with num_queries = 2; fact_tuples = 10; dim_tuples = 5 }
  in
  p

let prop_maintenance_correct =
  qcheck ~count:60 "incremental refresh = full re-evaluation"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng2 = rng (seed + 1) in
      let p = random_star_db seed in
      let db = p.D.Problem.db in
      let dd =
        R.Instance.stuples db
        |> List.filter (fun _ -> Random.State.float rng2 1.0 < 0.15)
        |> R.Stuple.Set.of_list
      in
      List.for_all
        (fun (q : Cq.Query.t) ->
          let view = Cq.Eval.evaluate db q in
          let incremental = Cq.Maintain.refresh db q ~view dd in
          let full = Cq.Eval.evaluate (R.Instance.delete db dd) q in
          R.Tuple.Set.equal incremental full)
        p.D.Problem.queries)

let prop_maintenance_projection =
  (* multi-witness answers survive when only one derivation dies *)
  qcheck ~count:40 "maintenance respects multiple witnesses"
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let rng2 = rng (seed + 7) in
      let p = Workload.Author_journal.scenario_q3 () in
      let db = p.D.Problem.db in
      let q = Workload.Author_journal.q3 in
      let dd =
        R.Instance.stuples db
        |> List.filter (fun _ -> Random.State.bool rng2)
        |> R.Stuple.Set.of_list
      in
      let view = Cq.Eval.evaluate db q in
      R.Tuple.Set.equal
        (Cq.Maintain.refresh db q ~view dd)
        (Cq.Eval.evaluate (R.Instance.delete db dd) q))

let test_maintenance_empty_delta () =
  let p = Workload.Author_journal.scenario_q4 () in
  let db = p.D.Problem.db in
  let q = Workload.Author_journal.q4 in
  let view = Cq.Eval.evaluate db q in
  Alcotest.check tuple_set "no deletion, no change" view
    (Cq.Maintain.refresh db q ~view R.Stuple.Set.empty)

(* ---- join planning ---- *)

let test_plan_selective_first () =
  (* constant-bearing atom should come first even if listed last *)
  let schema =
    R.Schema.Db.of_list
      [ R.Schema.make ~name:"Big" ~attrs:[ "k"; "v" ] ~key:[ 0 ];
        R.Schema.make ~name:"Small" ~attrs:[ "k"; "v" ] ~key:[ 0 ] ]
  in
  let db =
    R.Instance.of_alist schema
      [ ("Big", List.init 50 (fun i -> R.Tuple.ints [ i; i mod 7 ]));
        ("Small", [ R.Tuple.ints [ 1; 5 ] ]) ]
  in
  let q = parse "Q(K, V, K2) :- Big(K, V), Small(K2, 5)" in
  let order = Cq.Plan.order db q in
  Alcotest.(check int) "selective atom first" 1 order.(0)

let prop_plan_preserves_semantics =
  qcheck ~count:60 "planned = naive evaluation" QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let p = random_star_db seed in
      List.for_all
        (fun (q : Cq.Query.t) ->
          let planned = Cq.Eval.evaluate ~planned:true p.D.Problem.db q in
          let naive = Cq.Eval.evaluate ~planned:false p.D.Problem.db q in
          R.Tuple.Set.equal planned naive
          &&
          (* witnesses also agree as multisets *)
          let norm l =
            List.map (fun (t, w) -> (t, Array.to_list w)) l |> List.sort compare
          in
          norm (Cq.Eval.matches ~planned:true p.D.Problem.db q)
          = norm (Cq.Eval.matches ~planned:false p.D.Problem.db q))
        p.D.Problem.queries)

(* ---- bounded deletion ---- *)

let test_bounded_fig1 () =
  let prov = D.Provenance.build (Workload.Author_journal.scenario_q4 ()) in
  (* k = 0: infeasible; k = 1: optimal cost 1 *)
  Alcotest.(check bool) "k=0 infeasible" true (D.Bounded.solve ~k:0 prov = None);
  (match D.Bounded.solve ~k:1 prov with
  | Some r -> check_float "k=1 cost" 1.0 r.D.Bounded.outcome.D.Side_effect.cost
  | None -> Alcotest.fail "k=1 should be feasible");
  Alcotest.(check (option int)) "min budget" (Some 1) (D.Bounded.min_budget prov)

let prop_bounded_matches_unbounded =
  qcheck ~count:40 "with k = |candidates|, bounded = unbounded optimum"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let { Workload.Forest_family.problem = p; _ } =
        Workload.Forest_family.generate ~rng
          { Workload.Forest_family.default with num_relations = 3; tuples_per_relation = 5 }
      in
      let prov = D.Provenance.build p in
      let k = R.Stuple.Set.cardinal (D.Provenance.candidates prov) in
      match D.Bounded.solve ~k prov, D.Brute.solve prov with
      | Some b, Some u ->
        feq b.D.Bounded.outcome.D.Side_effect.cost u.D.Brute.outcome.D.Side_effect.cost
      | None, None -> true
      | _ -> false)

let prop_bounded_monotone =
  qcheck ~count:30 "larger budgets never cost more" QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let { Workload.Forest_family.problem = p; _ } =
        Workload.Forest_family.generate ~rng
          { Workload.Forest_family.default with num_relations = 3; tuples_per_relation = 5 }
      in
      let prov = D.Provenance.build p in
      let frontier = D.Bounded.frontier ~slack:3 prov in
      let costs = List.map (fun (_, r) -> r.D.Bounded.outcome.D.Side_effect.cost) frontier in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a +. 1e-9 >= b && non_increasing rest
        | _ -> true
      in
      non_increasing costs)

(* ---- problem files ---- *)

let fig1_problem_text =
  {|
rel T1(AuName*, Journal*)
T1(Joe, TKDE)
T1(John, TKDE)
T1(Tom, TKDE)
T1(John, TODS)
rel T2(Journal*, Topic*, Papers)
T2(TKDE, XML, 30)
T2(TKDE, CUBE, 30)
T2(TODS, XML, 30)
query Q4(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)
delete Q4(John, TKDE, XML)
weight Q4(John, TKDE, CUBE) 5
|}

let test_problem_file_parse () =
  let p = D.Problem_file.of_string fig1_problem_text in
  Alcotest.(check int) "db size" 7 (R.Instance.size p.D.Problem.db);
  Alcotest.(check int) "one deletion" 1 (D.Problem.deletion_size p);
  check_float "weight override" 5.0
    (D.Weights.get p.D.Problem.weights
       (D.Vtuple.make "Q4" (R.Tuple.strs [ "John"; "TKDE"; "CUBE" ])));
  (* the weighted optimum now avoids killing CUBE *)
  let prov = D.Provenance.build p in
  match D.Brute.solve prov with
  | Some r -> check_float "weighted optimum" 2.0 r.D.Brute.outcome.D.Side_effect.cost
  | None -> Alcotest.fail "expected solution"

let test_problem_file_roundtrip () =
  let p = D.Problem_file.of_string fig1_problem_text in
  let p2 = D.Problem_file.of_string (D.Problem_file.to_string p) in
  Alcotest.(check bool) "db equal" true (R.Instance.equal p.D.Problem.db p2.D.Problem.db);
  Alcotest.(check int) "same deletions" (D.Problem.deletion_size p) (D.Problem.deletion_size p2);
  check_float "same weight" 5.0
    (D.Weights.get p2.D.Problem.weights
       (D.Vtuple.make "Q4" (R.Tuple.strs [ "John"; "TKDE"; "CUBE" ])))

let test_problem_file_errors () =
  let fails text =
    Alcotest.(check bool) "rejected" true
      (try ignore (D.Problem_file.of_string text); false
       with D.Problem_file.Parse_error _ -> true)
  in
  fails "query Q(X) :-";                        (* bad query *)
  fails "rel T(a*)\nT(1)\ndelete Q(1)";         (* deletion on unknown query *)
  fails "rel T(a*)\nT(1)\nquery Q(X) :- T(X)\nweight Q(1) abc"  (* bad weight *)

(* ---- LP rounding for RBSC ---- *)

let rbsc_gen =
  QCheck2.Gen.(
    int_range 0 10_000 |> map (fun seed ->
        let rng = Util.rng seed in
        Workload.Rbsc_gen.red_blue ~rng ~num_red:(1 + Random.State.int rng 5)
          ~num_blue:(1 + Random.State.int rng 5)
          ~num_sets:(2 + Random.State.int rng 5)
          ~red_density:0.3 ~blue_density:0.4))

let prop_rounding_feasible =
  qcheck ~count:60 "LP rounding: feasible and bounded below by the LP" rbsc_gen
    (fun t ->
      match SC.Rounding.solve t with
      | None -> false
      | Some { solution; lp_bound } -> (
        match solution, SC.Red_blue.solve_exact t with
        | Some sol, Some opt ->
          SC.Red_blue.is_feasible t sol.SC.Red_blue.chosen
          && lp_bound <= opt.SC.Red_blue.cost +. 1e-6
          && sol.SC.Red_blue.cost +. 1e-9 >= lp_bound -. 1e-6
        | None, None -> true
        | _ -> false))

(* ---- stats ---- *)

let test_stats () =
  let prov = D.Provenance.build (Workload.Author_journal.scenario_q4 ()) in
  let s = D.Stats.compute prov in
  Alcotest.(check int) "relations" 2 s.D.Stats.num_relations;
  Alcotest.(check int) "db size" 7 s.D.Stats.db_size;
  Alcotest.(check int) "l" 3 s.D.Stats.max_arity;
  Alcotest.(check int) "view size" 7 s.D.Stats.view_size;
  Alcotest.(check int) "candidates" 2 s.D.Stats.num_candidates;
  Alcotest.(check int) "witness sizes" 2 s.D.Stats.witness_max;
  Alcotest.(check bool) "forest" true s.D.Stats.forest_case;
  (* CSV row has as many fields as the header *)
  let fields s = List.length (String.split_on_char ',' s) in
  Alcotest.(check int) "csv arity" (fields D.Stats.csv_header) (fields (D.Stats.to_csv s))

let suite =
  [
    Alcotest.test_case "containment: path vs pair" `Quick test_containment_basic;
    Alcotest.test_case "containment: constants" `Quick test_containment_constants;
    Alcotest.test_case "containment: reflexive" `Quick test_containment_self;
    Alcotest.test_case "minimize: drops subsumed atom" `Quick test_minimize_redundant_atom;
    Alcotest.test_case "minimize: keeps core" `Quick test_minimize_keeps_core;
    Alcotest.test_case "dedupe equivalent queries" `Quick test_dedupe;
    prop_containment_semantic;
    prop_maintenance_correct;
    prop_maintenance_projection;
    Alcotest.test_case "maintenance: empty delta" `Quick test_maintenance_empty_delta;
    Alcotest.test_case "plan: selective atom first" `Quick test_plan_selective_first;
    prop_plan_preserves_semantics;
    Alcotest.test_case "bounded: Fig. 1 budgets" `Quick test_bounded_fig1;
    prop_bounded_matches_unbounded;
    prop_bounded_monotone;
    Alcotest.test_case "problem file: parse + weighted optimum" `Quick test_problem_file_parse;
    Alcotest.test_case "problem file: roundtrip" `Quick test_problem_file_roundtrip;
    Alcotest.test_case "problem file: errors" `Quick test_problem_file_errors;
    prop_rounding_feasible;
    Alcotest.test_case "stats: Fig. 1" `Quick test_stats;
  ]
